#!/usr/bin/env bash
# e2e_smoke.sh — end-to-end smoke of the three binaries working together:
#
#   1. pgbench | matex            one-shot CLI over a generated deck
#   2. matexd TCP loopback        distributed run over a real worker,
#                                 then a SIGTERM graceful-drain check
#   3. matexsrv submit-and-stream curl submit, NDJSON stream, /stats and
#                                 /healthz checks, SIGTERM drain, exit 0
#
# CI runs this on every PR; it is also runnable locally (only needs curl).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
cleanup() {
    # Kill anything we left running, ignore failures.
    [[ -n "${MATEXD_PID:-}" ]] && kill "$MATEXD_PID" 2>/dev/null || true
    [[ -n "${MATEXSRV_PID:-}" ]] && kill "$MATEXSRV_PID" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

say() { printf '\n== %s\n' "$*"; }

say "building binaries"
go build -o "$workdir/pgbench" ./cmd/pgbench
go build -o "$workdir/matex" ./cmd/matex
go build -o "$workdir/matexd" ./cmd/matexd
go build -o "$workdir/matexsrv" ./cmd/matexsrv

say "pgbench | matex one-shot"
"$workdir/pgbench" -case ibmpg1t -scale 0.25 > "$workdir/deck.sp"
"$workdir/matex" "$workdir/deck.sp" > "$workdir/oneshot.tsv"
lines=$(wc -l < "$workdir/oneshot.tsv")
[[ "$lines" -gt 2 ]] || { echo "matex produced only $lines lines"; exit 1; }
head -3 "$workdir/oneshot.tsv"

say "matex -stream matches buffered output"
"$workdir/matex" -stream "$workdir/deck.sp" > "$workdir/streamed.tsv"
cmp "$workdir/oneshot.tsv" "$workdir/streamed.tsv"
echo "streamed TSV identical to buffered"

say "matexd TCP loopback"
"$workdir/matexd" -listen 127.0.0.1:19090 > "$workdir/matexd.log" 2>&1 &
MATEXD_PID=$!
for i in $(seq 1 50); do
    grep -q "listening" "$workdir/matexd.log" && break
    sleep 0.1
done
grep -q "listening" "$workdir/matexd.log" || { echo "matexd never came up"; cat "$workdir/matexd.log"; exit 1; }
"$workdir/matex" -workers 127.0.0.1:19090 "$workdir/deck.sp" > "$workdir/dist.tsv"
dlines=$(wc -l < "$workdir/dist.tsv")
[[ "$dlines" -gt 2 ]] || { echo "distributed run produced only $dlines lines"; exit 1; }

say "matexd SIGTERM graceful drain"
kill -TERM "$MATEXD_PID"
drain_rc=0
for i in $(seq 1 100); do
    if ! kill -0 "$MATEXD_PID" 2>/dev/null; then break; fi
    sleep 0.1
done
if kill -0 "$MATEXD_PID" 2>/dev/null; then
    echo "matexd still alive 10s after SIGTERM"; exit 1
fi
wait "$MATEXD_PID" || drain_rc=$?
[[ "$drain_rc" -eq 0 ]] || { echo "matexd exited $drain_rc after SIGTERM, want 0"; cat "$workdir/matexd.log"; exit 1; }
grep -q "drained" "$workdir/matexd.log" || { echo "matexd did not report a drain"; cat "$workdir/matexd.log"; exit 1; }
MATEXD_PID=""
echo "matexd drained and exited 0"

say "matexsrv submit-and-stream"
"$workdir/matexsrv" -listen 127.0.0.1:18080 > "$workdir/matexsrv.log" 2>&1 &
MATEXSRV_PID=$!
for i in $(seq 1 50); do
    curl -sf "http://127.0.0.1:18080/healthz" > /dev/null 2>&1 && break
    sleep 0.1
done
curl -sf "http://127.0.0.1:18080/healthz" | grep -q '"ok":true' || { echo "healthz failed"; cat "$workdir/matexsrv.log"; exit 1; }

# Submit-and-stream with the generated deck as an inline netlist.
python3 - "$workdir/deck.sp" > "$workdir/job.json" <<'EOF'
import json, sys
print(json.dumps({"netlist": open(sys.argv[1]).read()}))
EOF
curl -sf -X POST --data-binary @"$workdir/job.json" \
    "http://127.0.0.1:18080/v1/simulate" > "$workdir/stream.ndjson"
nlines=$(wc -l < "$workdir/stream.ndjson")
[[ "$nlines" -gt 3 ]] || { echo "stream produced only $nlines chunks"; cat "$workdir/stream.ndjson"; exit 1; }
head -2 "$workdir/stream.ndjson"
tail -1 "$workdir/stream.ndjson" | grep -q '"done":true' || { echo "stream missing done chunk"; tail -3 "$workdir/stream.ndjson"; exit 1; }
tail -1 "$workdir/stream.ndjson" | grep -q '"state":"done"' || { echo "job did not finish done"; tail -1 "$workdir/stream.ndjson"; exit 1; }

# A second identical job must hit the shared factorization cache.
curl -sf -X POST --data-binary @"$workdir/job.json" \
    "http://127.0.0.1:18080/v1/simulate" > /dev/null
curl -sf "http://127.0.0.1:18080/stats" > "$workdir/stats.json"
python3 - "$workdir/stats.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["jobs_completed"] >= 2, s
assert s["totals"]["cache_hits"] > 0, "no shared-cache hits across jobs: %r" % (s["totals"],)
print("stats ok: %d jobs, %d cache hits" % (s["jobs_completed"], s["totals"]["cache_hits"]))
EOF

say "matexsrv SIGTERM graceful drain"
kill -TERM "$MATEXSRV_PID"
srv_rc=0
for i in $(seq 1 100); do
    if ! kill -0 "$MATEXSRV_PID" 2>/dev/null; then break; fi
    sleep 0.1
done
if kill -0 "$MATEXSRV_PID" 2>/dev/null; then
    echo "matexsrv still alive 10s after SIGTERM"; exit 1
fi
wait "$MATEXSRV_PID" || srv_rc=$?
[[ "$srv_rc" -eq 0 ]] || { echo "matexsrv exited $srv_rc after SIGTERM, want 0"; cat "$workdir/matexsrv.log"; exit 1; }
grep -q "drained" "$workdir/matexsrv.log" || { echo "matexsrv did not report a drain"; cat "$workdir/matexsrv.log"; exit 1; }
MATEXSRV_PID=""
echo "matexsrv drained and exited 0"

say "e2e smoke PASS"
