#!/usr/bin/env bash
# e2e_smoke.sh — end-to-end smoke of the three binaries working together:
#
#   1. pgbench | matex            one-shot CLI over a generated deck
#   2. matexd TCP loopback        distributed run over a real worker,
#                                 then a SIGTERM graceful-drain check
#   3. matexd chaos               kill -9 one of two workers mid-run; the
#                                 pool must fail over, report retries, and
#                                 still match the local waveform
#   4. matexsrv submit-and-stream curl submit, NDJSON stream, /stats and
#                                 /healthz checks, SIGTERM drain, exit 0
#   5. matexsrv crash-restart     kill -9 mid-job with -state-dir set; a
#                                 restart must resume from the journaled
#                                 checkpoint and finish with the same
#                                 waveform as an uninterrupted run
#
# CI runs this on every PR; it is also runnable locally (only needs curl).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
cleanup() {
    # Kill anything we left running, ignore failures.
    [[ -n "${MATEXD_PID:-}" ]] && kill "$MATEXD_PID" 2>/dev/null || true
    [[ -n "${W1_PID:-}" ]] && kill "$W1_PID" 2>/dev/null || true
    [[ -n "${W2_PID:-}" ]] && kill -9 "$W2_PID" 2>/dev/null || true
    [[ -n "${MATEXSRV_PID:-}" ]] && kill "$MATEXSRV_PID" 2>/dev/null || true
    [[ -n "${MATEXSRV2_PID:-}" ]] && kill -9 "$MATEXSRV2_PID" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

say() { printf '\n== %s\n' "$*"; }

say "building binaries"
go build -o "$workdir/pgbench" ./cmd/pgbench
go build -o "$workdir/matex" ./cmd/matex
go build -o "$workdir/matexd" ./cmd/matexd
go build -o "$workdir/matexsrv" ./cmd/matexsrv

say "pgbench | matex one-shot"
"$workdir/pgbench" -case ibmpg1t -scale 0.25 > "$workdir/deck.sp"
"$workdir/matex" "$workdir/deck.sp" > "$workdir/oneshot.tsv"
lines=$(wc -l < "$workdir/oneshot.tsv")
[[ "$lines" -gt 2 ]] || { echo "matex produced only $lines lines"; exit 1; }
head -3 "$workdir/oneshot.tsv"

say "matex -stream matches buffered output"
"$workdir/matex" -stream "$workdir/deck.sp" > "$workdir/streamed.tsv"
cmp "$workdir/oneshot.tsv" "$workdir/streamed.tsv"
echo "streamed TSV identical to buffered"

say "matexd TCP loopback"
"$workdir/matexd" -listen 127.0.0.1:19090 > "$workdir/matexd.log" 2>&1 &
MATEXD_PID=$!
for i in $(seq 1 50); do
    grep -q "listening" "$workdir/matexd.log" && break
    sleep 0.1
done
grep -q "listening" "$workdir/matexd.log" || { echo "matexd never came up"; cat "$workdir/matexd.log"; exit 1; }
"$workdir/matex" -workers 127.0.0.1:19090 "$workdir/deck.sp" > "$workdir/dist.tsv"
dlines=$(wc -l < "$workdir/dist.tsv")
[[ "$dlines" -gt 2 ]] || { echo "distributed run produced only $dlines lines"; exit 1; }

say "matexd SIGTERM graceful drain"
kill -TERM "$MATEXD_PID"
drain_rc=0
for i in $(seq 1 100); do
    if ! kill -0 "$MATEXD_PID" 2>/dev/null; then break; fi
    sleep 0.1
done
if kill -0 "$MATEXD_PID" 2>/dev/null; then
    echo "matexd still alive 10s after SIGTERM"; exit 1
fi
wait "$MATEXD_PID" || drain_rc=$?
[[ "$drain_rc" -eq 0 ]] || { echo "matexd exited $drain_rc after SIGTERM, want 0"; cat "$workdir/matexd.log"; exit 1; }
grep -q "drained" "$workdir/matexd.log" || { echo "matexd did not report a drain"; cat "$workdir/matexd.log"; exit 1; }
MATEXD_PID=""
echo "matexd drained and exited 0"

say "matexd chaos: kill -9 one of two workers mid-run"
# A bigger deck with a slow fixed-step method so the distributed run lasts
# long enough (~1s) for the kill to land while subtasks are in flight.
"$workdir/pgbench" -case ibmpg1t -scale 0.5 > "$workdir/deck05.sp"
"$workdir/matexd" -listen 127.0.0.1:19191 > "$workdir/w1.log" 2>&1 &
W1_PID=$!
for i in $(seq 1 50); do
    grep -q "listening" "$workdir/w1.log" && break
    sleep 0.1
done
# Fault-free reference over the same superposition grid: a single-worker
# distributed run (the GTS grid is set by the decomposition, not the pool).
"$workdir/matex" -method tr -step 1e-12 \
    -workers 127.0.0.1:19191 "$workdir/deck05.sp" > "$workdir/chaos_ref.tsv"
retried=0
for attempt in 1 2 3; do
    "$workdir/matexd" -listen 127.0.0.1:19192 > "$workdir/w2.log" 2>&1 &
    W2_PID=$!
    for i in $(seq 1 50); do
        grep -q "listening" "$workdir/w2.log" && break
        sleep 0.1
    done
    "$workdir/matex" -stats -method tr -step 1e-12 \
        -workers 127.0.0.1:19191,127.0.0.1:19192 \
        "$workdir/deck05.sp" > "$workdir/chaos.tsv" 2> "$workdir/chaos.err" &
    CHAOS_PID=$!
    sleep 0.3
    kill -9 "$W2_PID" 2>/dev/null || true
    wait "$W2_PID" 2>/dev/null || true
    W2_PID=""
    chaos_rc=0
    wait "$CHAOS_PID" || chaos_rc=$?
    [[ "$chaos_rc" -eq 0 ]] || { echo "chaos run exited $chaos_rc"; cat "$workdir/chaos.err"; exit 1; }
    retried=$(grep -o 'retried=[0-9]*' "$workdir/chaos.err" | head -1 | cut -d= -f2)
    [[ -n "$retried" && "$retried" -gt 0 ]] && break
    echo "attempt $attempt: run finished before the kill landed (retried=${retried:-?}), retrying"
    retried=0
done
[[ "$retried" -gt 0 ]] || { echo "worker kill never interrupted a subtask after 3 attempts"; exit 1; }
python3 - "$workdir/chaos_ref.tsv" "$workdir/chaos.tsv" <<'EOF'
import sys
ref = [l.split("\t") for l in open(sys.argv[1]) if l.strip()]
got = [l.split("\t") for l in open(sys.argv[2]) if l.strip()]
assert len(ref) == len(got), "row count %d vs %d" % (len(ref), len(got))
worst = 0.0
for r, g in zip(ref[1:], got[1:]):
    assert r[0] == g[0], "time column diverged: %s vs %s" % (r[0], g[0])
    worst = max(worst, max(abs(float(a) - float(b)) for a, b in zip(r[1:], g[1:])))
assert worst <= 1e-9, "post-failover waveform deviates %g V" % worst
print("failover waveform matches local run (max deviation %g V)" % worst)
EOF
kill "$W1_PID" 2>/dev/null || true
wait "$W1_PID" 2>/dev/null || true
W1_PID=""
echo "chaos run survived kill -9 with retried=$retried"

say "matexsrv submit-and-stream"
"$workdir/matexsrv" -listen 127.0.0.1:18080 > "$workdir/matexsrv.log" 2>&1 &
MATEXSRV_PID=$!
for i in $(seq 1 50); do
    curl -sf "http://127.0.0.1:18080/healthz" > /dev/null 2>&1 && break
    sleep 0.1
done
curl -sf "http://127.0.0.1:18080/healthz" | grep -q '"ok":true' || { echo "healthz failed"; cat "$workdir/matexsrv.log"; exit 1; }

# Submit-and-stream with the generated deck as an inline netlist.
python3 - "$workdir/deck.sp" > "$workdir/job.json" <<'EOF'
import json, sys
print(json.dumps({"netlist": open(sys.argv[1]).read()}))
EOF
curl -sf -X POST --data-binary @"$workdir/job.json" \
    "http://127.0.0.1:18080/v1/simulate" > "$workdir/stream.ndjson"
nlines=$(wc -l < "$workdir/stream.ndjson")
[[ "$nlines" -gt 3 ]] || { echo "stream produced only $nlines chunks"; cat "$workdir/stream.ndjson"; exit 1; }
head -2 "$workdir/stream.ndjson"
tail -1 "$workdir/stream.ndjson" | grep -q '"done":true' || { echo "stream missing done chunk"; tail -3 "$workdir/stream.ndjson"; exit 1; }
tail -1 "$workdir/stream.ndjson" | grep -q '"state":"done"' || { echo "job did not finish done"; tail -1 "$workdir/stream.ndjson"; exit 1; }

# A second identical job must hit the shared factorization cache.
curl -sf -X POST --data-binary @"$workdir/job.json" \
    "http://127.0.0.1:18080/v1/simulate" > /dev/null
curl -sf "http://127.0.0.1:18080/stats" > "$workdir/stats.json"
python3 - "$workdir/stats.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["jobs_completed"] >= 2, s
assert s["totals"]["cache_hits"] > 0, "no shared-cache hits across jobs: %r" % (s["totals"],)
print("stats ok: %d jobs, %d cache hits" % (s["jobs_completed"], s["totals"]["cache_hits"]))
EOF

say "matexsrv POST /sweep + SSE stream"
# Three corner variants of the same deck: typ plus two global intensity
# corners — a collinear family, so the server must plan fewer lanes than
# variants and still stream every variant's waveform.
python3 - "$workdir/deck.sp" > "$workdir/sweepjob.json" <<'EOF'
import json, sys
print(json.dumps({
    "netlist": open(sys.argv[1]).read(),
    "variants": [
        {"name": "typ"},
        {"name": "low", "scale": 0.875},
        {"name": "high", "scale": 1.25},
    ],
}))
EOF
curl -sf -X POST --data-binary @"$workdir/sweepjob.json" \
    "http://127.0.0.1:18080/sweep" > "$workdir/sweep_submit.json"
sweep_id=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["id"])' "$workdir/sweep_submit.json")
curl -sf "http://127.0.0.1:18080/v1/jobs/$sweep_id/stream?sse=1" > "$workdir/sweep.sse"
python3 - "$workdir/sweep.sse" <<'EOF'
import json, sys
samples, tail, last_vseq = {}, None, {}
for block in open(sys.argv[1]).read().split("\n\n"):
    data = "".join(l[5:].lstrip() for l in block.splitlines() if l.startswith("data:"))
    if not data:
        continue
    c = json.loads(data)
    if c.get("done"):
        tail = c
    elif c.get("variant"):
        v = c["variant"]
        samples[v] = samples.get(v, 0) + 1
        assert c["vseq"] == last_vseq.get(v, 0) + 1, \
            "variant %s vseq gap: %r after %r" % (v, c["vseq"], last_vseq.get(v))
        last_vseq[v] = c["vseq"]
assert tail is not None, "SSE stream has no done chunk"
assert tail.get("state") == "done", "sweep ended %r" % (tail.get("state"),)
rep = tail.get("sweep")
assert rep, "done chunk missing the sweep report: %r" % (tail,)
assert sorted(samples) == ["high", "low", "typ"], "variants seen: %r" % (samples,)
counts = set(samples.values())
assert len(counts) == 1, "per-variant sample counts diverge: %r" % (samples,)
assert rep["lanes"] < 3, "collinear family did not share lanes: %r" % (rep,)
print("sweep streamed %d samples x %d variants over %d lane(s)"
      % (samples["typ"], len(samples), rep["lanes"]))
EOF

say "matexsrv SIGTERM graceful drain"
kill -TERM "$MATEXSRV_PID"
srv_rc=0
for i in $(seq 1 100); do
    if ! kill -0 "$MATEXSRV_PID" 2>/dev/null; then break; fi
    sleep 0.1
done
if kill -0 "$MATEXSRV_PID" 2>/dev/null; then
    echo "matexsrv still alive 10s after SIGTERM"; exit 1
fi
wait "$MATEXSRV_PID" || srv_rc=$?
[[ "$srv_rc" -eq 0 ]] || { echo "matexsrv exited $srv_rc after SIGTERM, want 0"; cat "$workdir/matexsrv.log"; exit 1; }
grep -q "drained" "$workdir/matexsrv.log" || { echo "matexsrv did not report a drain"; cat "$workdir/matexsrv.log"; exit 1; }
MATEXSRV_PID=""
echo "matexsrv drained and exited 0"

say "matexsrv kill -9 crash-restart resumes from checkpoint"
"$workdir/matexsrv" -listen 127.0.0.1:18081 \
    -state-dir "$workdir/state" -checkpoint-every 200 > "$workdir/srv2a.log" 2>&1 &
MATEXSRV2_PID=$!
for i in $(seq 1 50); do
    curl -sf "http://127.0.0.1:18081/healthz" > /dev/null 2>&1 && break
    sleep 0.1
done
# A long fixed-step job (100k steps) so the server is killed with the
# integrator still deep in the run.
python3 - "$workdir/deck.sp" > "$workdir/slowjob.json" <<'EOF'
import json, sys
print(json.dumps({"netlist": open(sys.argv[1]).read(), "method": "tr", "step": 1e-13}))
EOF
curl -sf -X POST --data-binary @"$workdir/slowjob.json" \
    "http://127.0.0.1:18081/v1/jobs" > "$workdir/submit.json"
job_id=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["id"])' "$workdir/submit.json")
for i in $(seq 1 100); do
    grep -q '"rec":"checkpoint"' "$workdir/state/journal.jsonl" 2>/dev/null && break
    sleep 0.1
done
grep -q '"rec":"checkpoint"' "$workdir/state/journal.jsonl" || { echo "no checkpoint journaled in 10s"; cat "$workdir/srv2a.log"; exit 1; }
kill -9 "$MATEXSRV2_PID"
wait "$MATEXSRV2_PID" 2>/dev/null || true
echo "killed matexsrv mid-job (pid $MATEXSRV2_PID)"

"$workdir/matexsrv" -listen 127.0.0.1:18081 \
    -state-dir "$workdir/state" -checkpoint-every 200 > "$workdir/srv2b.log" 2>&1 &
MATEXSRV2_PID=$!
for i in $(seq 1 50); do
    curl -sf "http://127.0.0.1:18081/healthz" > /dev/null 2>&1 && break
    sleep 0.1
done
curl -sf "http://127.0.0.1:18081/stats" > "$workdir/stats2.json"
python3 - "$workdir/stats2.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["jobs_resumed"] == 1, "jobs_resumed=%r after restart, want 1" % (s.get("jobs_resumed"),)
print("restart resumed 1 interrupted job")
EOF
# Stream the resumed job to completion, then run the identical spec fresh on
# the same server and demand the two waveforms agree to 1e-12.
curl -sf "http://127.0.0.1:18081/v1/jobs/$job_id/stream" > "$workdir/resumed.ndjson"
curl -sf -X POST --data-binary @"$workdir/slowjob.json" \
    "http://127.0.0.1:18081/v1/simulate" > "$workdir/fresh.ndjson"
python3 - "$workdir/resumed.ndjson" "$workdir/fresh.ndjson" <<'EOF'
import json, sys
def load(path):
    samples, state = [], None
    for line in open(path):
        if not line.strip():
            continue
        c = json.loads(line)
        if c.get("done"):
            state = c.get("state")
        elif c.get("seq", 0) > 0:
            samples.append((c["seq"], c["t"], c["v"]))
    return samples, state
res, res_state = load(sys.argv[1])
ref, ref_state = load(sys.argv[2])
assert res_state == "done", "resumed job ended %r" % (res_state,)
assert ref_state == "done", "fresh job ended %r" % (ref_state,)
assert len(res) == len(ref), "resumed job has %d samples, fresh %d" % (len(res), len(ref))
assert [s[0] for s in res] == list(range(1, len(res) + 1)), "resumed stream has a seq gap"
worst = 0.0
for (_, rt, rv), (_, ft, fv) in zip(res, ref):
    assert rt == ft, "time grid diverged: %r vs %r" % (rt, ft)
    worst = max(worst, max(abs(a - b) for a, b in zip(rv, fv)))
assert worst <= 1e-12, "resumed waveform deviates %g V from uninterrupted run" % worst
print("resumed waveform matches uninterrupted run over %d samples (max deviation %g V)" % (len(res), worst))
EOF

say "restarted matexsrv SIGTERM drain"
kill -TERM "$MATEXSRV2_PID"
for i in $(seq 1 100); do
    if ! kill -0 "$MATEXSRV2_PID" 2>/dev/null; then break; fi
    sleep 0.1
done
if kill -0 "$MATEXSRV2_PID" 2>/dev/null; then
    echo "restarted matexsrv still alive 10s after SIGTERM"; exit 1
fi
srv2_rc=0
wait "$MATEXSRV2_PID" || srv2_rc=$?
[[ "$srv2_rc" -eq 0 ]] || { echo "restarted matexsrv exited $srv2_rc after SIGTERM, want 0"; cat "$workdir/srv2b.log"; exit 1; }
MATEXSRV2_PID=""
echo "restarted matexsrv drained and exited 0"

say "e2e smoke PASS"
