// Command benchcmp compares a fresh scripts/bench.sh JSON trajectory
// against a committed baseline and fails when any selected row slowed down
// past a tolerance factor — the CI bench-regression gate.
//
// Usage:
//
//	go run ./scripts/benchcmp -base BENCH_PR6.json -new bench-ci.json \
//	    -rows '^Benchmark(Factor_|Refactor|Solve)' -max-ratio 2.5
//
// It prints a Markdown comparison table (pipe it into
// "$GITHUB_STEP_SUMMARY" for the job summary) and exits non-zero on a
// regression. The tolerance is deliberately generous: CI machines are
// noisy and the gate is meant to catch order-of-magnitude regressions
// (a lost fast path, an accidental re-analysis per step), not jitter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

type benchFile struct {
	Benchtime  string           `json:"benchtime"`
	Benchmarks []map[string]any `json:"benchmarks"`
}

// load reads a bench JSON file into name → ns/op.
func load(path string) (map[string]float64, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	rows := make(map[string]float64, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		name, _ := b["name"].(string)
		ns, ok := b["ns/op"].(float64)
		if name == "" || !ok {
			continue
		}
		rows[name] = ns
	}
	return rows, f.Benchtime, nil
}

func main() {
	basePath := flag.String("base", "BENCH_PR6.json", "committed baseline JSON")
	newPath := flag.String("new", "bench-ci.json", "freshly measured JSON")
	rowsPat := flag.String("rows", "^Benchmark(Factor_|Refactor|SolvePar|SolveSeq|SolveMulti)", "regexp selecting the gated rows")
	maxRatio := flag.Float64("max-ratio", 2.5, "fail when new/base ns/op exceeds this on any gated row")
	parMaxRatio := flag.Float64("par-max-ratio", 1.15, "fail when a fresh SolvePar_* row is slower than its SolveSeq_* twin past this factor (small headroom for CI jitter; a broken task schedule blows well past it)")
	sweepMaxRatio := flag.Float64("sweep-max-ratio", 5.0, "fail when the fresh BenchmarkSweep_k8 row costs more than this many fresh BenchmarkSweepSolo walls (8 variants for under 5 solo runs; lost sharing or batching blows past it)")
	flag.Parse()

	sel, err := regexp.Compile(*rowsPat)
	if err != nil {
		fatal(err)
	}
	base, baseTime, err := load(*basePath)
	if err != nil {
		fatal(err)
	}
	fresh, freshTime, err := load(*newPath)
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		if sel.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fatal(fmt.Errorf("no baseline rows match %q", *rowsPat))
	}

	fmt.Printf("## Solver bench regression gate\n\n")
	fmt.Printf("Baseline `%s` (%s) vs fresh `%s` (%s); gate: ratio ≤ %.2fx on gated rows.\n\n",
		*basePath, baseTime, *newPath, freshTime, *maxRatio)
	fmt.Printf("| benchmark | base ns/op | new ns/op | ratio | gated | status |\n")
	fmt.Printf("|---|---:|---:|---:|:-:|:-:|\n")

	failed := 0
	missing := 0
	for _, name := range names {
		b := base[name]
		n, ok := fresh[name]
		if !ok {
			fmt.Printf("| %s | %.0f | (missing) | — | yes | :x: |\n", name, b)
			missing++
			continue
		}
		ratio := n / b
		status := ":white_check_mark:"
		if ratio > *maxRatio {
			status = ":x:"
			failed++
		}
		fmt.Printf("| %s | %.0f | %.0f | %.2fx | yes | %s |\n", name, b, n, ratio, status)
	}
	// Ungated rows ride along for context, never failing the gate.
	var rest []string
	for name := range base {
		if !sel.MatchString(name) {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		n, ok := fresh[name]
		if !ok {
			continue
		}
		fmt.Printf("| %s | %.0f | %.0f | %.2fx | no | — |\n", name, base[name], n, n/base[name])
	}

	// Parallel-solve sanity gate: every fresh SolvePar_<shape> row must not
	// be slower than its SolveSeq_<shape> twin. A parallel path that loses
	// to sequential means the fallback heuristic broke, not that the
	// machine is slow, so this gate checks the fresh run against itself.
	parFailed := 0
	var parNames []string
	for name := range fresh {
		if strings.HasPrefix(name, "BenchmarkSolvePar_") {
			parNames = append(parNames, name)
		}
	}
	sort.Strings(parNames)
	if len(parNames) > 0 {
		fmt.Printf("\n### Parallel vs sequential solve (fresh run, gate: par ≤ %.2fx seq)\n\n", *parMaxRatio)
		fmt.Printf("| shape | seq ns/op | par ns/op | ratio | status |\n")
		fmt.Printf("|---|---:|---:|---:|:-:|\n")
		for _, name := range parNames {
			shape := strings.TrimPrefix(name, "BenchmarkSolvePar_")
			seq, ok := fresh["BenchmarkSolveSeq_"+shape]
			if !ok {
				continue
			}
			par := fresh[name]
			ratio := par / seq
			status := ":white_check_mark:"
			if ratio > *parMaxRatio {
				status = ":x:"
				parFailed++
			}
			fmt.Printf("| %s | %.0f | %.0f | %.2fx | %s |\n", shape, seq, par, ratio, status)
		}
	}

	// Sweep amortization gate: a fresh k-variant sweep must beat k solo
	// runs by a healthy margin — the whole point of the sweep engine. Like
	// the parallel gate this checks the fresh run against itself, so a slow
	// CI machine cannot trip it; only a lost sharing/batching path can.
	sweepFailed := 0
	if solo, ok := fresh["BenchmarkSweepSolo"]; ok {
		var sweepNames []string
		for name := range fresh {
			if strings.HasPrefix(name, "BenchmarkSweep_k") {
				sweepNames = append(sweepNames, name)
			}
		}
		sort.Strings(sweepNames)
		if len(sweepNames) > 0 {
			fmt.Printf("\n### Sweep vs solo (fresh run, gate: Sweep_k8 ≤ %.2fx SweepSolo)\n\n", *sweepMaxRatio)
			fmt.Printf("| sweep | solo ns/op | sweep ns/op | ratio | gated | status |\n")
			fmt.Printf("|---|---:|---:|---:|:-:|:-:|\n")
			for _, name := range sweepNames {
				ratio := fresh[name] / solo
				gated := name == "BenchmarkSweep_k8"
				status := "—"
				if gated {
					status = ":white_check_mark:"
					if ratio > *sweepMaxRatio {
						status = ":x:"
						sweepFailed++
					}
				}
				fmt.Printf("| %s | %.0f | %.0f | %.2fx | %v | %s |\n",
					strings.TrimPrefix(name, "Benchmark"), solo, fresh[name], ratio, gated, status)
			}
		}
	}

	fmt.Println()
	if sweepFailed > 0 {
		fmt.Printf("**FAIL**: Sweep_k8 costs more than %.2fx a solo run.\n", *sweepMaxRatio)
		os.Exit(1)
	}
	if parFailed > 0 {
		fmt.Printf("**FAIL**: %d parallel-solve row(s) slower than sequential past %.2fx.\n", parFailed, *parMaxRatio)
		os.Exit(1)
	}
	if failed > 0 || missing > 0 {
		fmt.Printf("**FAIL**: %d row(s) past %.2fx, %d missing from the fresh run.\n", failed, *maxRatio, missing)
		os.Exit(1)
	}
	fmt.Printf("**PASS**: all %d gated rows within %.2fx.\n", len(names), *maxRatio)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
