#!/usr/bin/env bash
# bench.sh — run the solver-layer benchmark suite (Krylov fast path +
# factorization engine) and emit a JSON trajectory file (name → ns/op,
# B/op, allocs/op, custom metrics).
#
# Usage:
#   scripts/bench.sh [out.json]          # default out: BENCH_PR10.json
#   BENCHTIME=200x scripts/bench.sh      # longer runs for stable numbers
#   BENCH_PATTERN='^Benchmark' scripts/bench.sh all.json   # whole suite
#
# CI runs this with a short BENCHTIME and uploads the JSON as an artifact;
# the committed BENCH_PR10.json is regenerated manually with the default
# settings when the solver layer changes. The default pattern covers the
# Krylov spot pipeline (PR 3), the factorization engine rows (PR 4-6),
# and the scenario-sweep rows (PR 10):
# BenchmarkFactor vs BenchmarkRefactor is the symbolic/numeric split,
# BenchmarkRefactorScalar/SolveSeqScalar pin the scalar engine against the
# supernodal default, BenchmarkSolveSeq_k* vs BenchmarkSolveMulti_k* the
# blocked panel solves, BenchmarkSolveSeq/Par_4dom the task-parallel solve
# on separate domains, BenchmarkSolveSeq/Par_mesh96nd the coupled mesh
# that only nested dissection can parallelize, and BenchmarkSweepSolo vs
# BenchmarkSweep_k{4,8} the scenario-sweep amortization (benchcmp gates
# Sweep_k8 ≤ 5x SweepSolo within the fresh run).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR10.json}"
benchtime="${BENCHTIME:-100x}"
pattern="${BENCH_PATTERN:-^Benchmark(Krylov|Factor_|Refactor|SolveSeq|SolvePar|SolveMulti|Sweep)}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem . | tee "$tmp"

awk -v benchtime="$benchtime" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    iters = $2
    metrics = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i
        unit = $(i + 1)
        if (metrics != "") metrics = metrics ", "
        metrics = metrics "\"" unit "\": " val
    }
    line = "    {\"name\": \"" name "\", \"iters\": " iters ", " metrics "}"
    lines[n++] = line
    next
}
END {
    print "{"
    print "  \"benchtime\": \"" benchtime "\","
    print "  \"benchmarks\": ["
    for (i = 0; i < n; i++) {
        printf "%s%s\n", lines[i], (i + 1 < n ? "," : "")
    }
    print "  ]"
    print "}"
}' "$tmp" > "$out"

echo "wrote $out"
