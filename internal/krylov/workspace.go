package krylov

import (
	"sync"

	"github.com/matex-sim/matex/internal/dense"
)

// Workspace is a reusable arena for subspace generation: basis vectors,
// B-products, tridiagonal coefficients, eigendecomposition buffers and the
// small dense scratch the convergence checks need. A solver acquires one
// workspace per run (WorkspacePool.Get), passes it through Options.Workspace
// for every transition spot, and releases it at the end; steady-state
// subspace generation then performs zero heap allocations — every make that
// used to happen per basis vector per spot is replaced by a buffer reuse.
//
// A workspace owns the memory of the Subspace it returns: generating the
// next subspace from the same workspace invalidates the previous one, and a
// workspace must not be shared by concurrent generations. Passing nil in
// Options.Workspace gives every call its own private arena (the pre-arena
// allocation behavior, still correct for callers holding several subspaces
// alive at once).
type Workspace struct {
	basis  [][]float64 // basis vectors v_i, length n each
	bbasis [][]float64 // B·v_i companions (Lanczos fast path)
	w, bw  []float64   // iteration vectors

	alpha, beta []float64 // Lanczos three-term coefficients
	nu          []float64 // Euclidean norms of the B-orthonormal basis vectors
	omega, omg1 []float64 // ω-recurrence rows (orthogonality loss estimate)

	hFull   *dense.Matrix // Arnoldi growing Hessenberg
	hhatBuf []float64     // m×m Hessenberg slice backing
	hhatHdr dense.Matrix  // header over hhatBuf handed to the checks
	prevU   [][]float64   // last checked e^{hH}e₁ per step size

	eigD, eigE []float64 // tridiagonal diagonal / subdiagonal copies
	eigZ       []float64 // m×m eigenvector backing
	eigQ       dense.Matrix
	mu         []float64 // converted eigenvalues f(λ_k)

	estU []float64 // estimate vector u = e^{hH}e₁

	// sub is the returned subspace (reused); the small dense scratch for
	// the augmented-expm checks and the spectral evaluation lives on it
	// (scrAug/scrHm/scrU/evalC/evalY), retained across resetSub.
	sub Subspace
}

// WorkspacePool hands out workspaces for concurrent solvers. It is the
// krylov-level analogue of the sparse factorization cache threaded through
// the stack in PR 2: the distributed scheduler and matexd workers keep one
// pool per process, so repeated subtasks reuse each other's arenas instead
// of re-growing them, while concurrent subtasks still get exclusive
// workspaces (Get transfers ownership).
type WorkspacePool struct{ p sync.Pool }

// NewWorkspacePool returns an empty pool.
func NewWorkspacePool() *WorkspacePool {
	wp := &WorkspacePool{}
	wp.p.New = func() any { return &Workspace{} }
	return wp
}

// Get returns a workspace for exclusive use until Put.
func (wp *WorkspacePool) Get() *Workspace { return wp.p.Get().(*Workspace) }

// Put returns a workspace to the pool.
func (wp *WorkspacePool) Put(ws *Workspace) {
	if ws != nil {
		wp.p.Put(ws)
	}
}

// DefaultWorkspaces is the process-wide pool used when a caller does not
// bring its own.
var DefaultWorkspaces = NewWorkspacePool()

// growF returns s resized to n, reusing capacity.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n) //matex:alloc-ok(grow path: workspace slice resized once per larger problem)
	}
	return s[:n]
}

// vec returns the i-th vector of the list resized to length n, growing the
// list and the vector as needed. Contents are unspecified.
func vec(list *[][]float64, i, n int) []float64 {
	for len(*list) <= i {
		*list = append(*list, nil) //matex:alloc-ok(grow path: basis list extended once per larger subspace)
	}
	(*list)[i] = growF((*list)[i], n)
	return (*list)[i]
}

// matrix resizes m (allocating on first use) to r×c, zeroed.
func matrix(m **dense.Matrix, r, c int) *dense.Matrix {
	if *m == nil || cap((*m).Data) < r*c {
		*m = dense.New(r, c)
	} else {
		(*m).R, (*m).C = r, c
		(*m).Data = (*m).Data[:r*c]
		for i := range (*m).Data {
			(*m).Data[i] = 0
		}
	}
	return *m
}

// prepPrevU readies the per-step-size estimate history for k step sizes of
// dimension up to maxDim, clearing previous contents.
func (ws *Workspace) prepPrevU(k, maxDim int) {
	for len(ws.prevU) < k {
		ws.prevU = append(ws.prevU, nil) //matex:alloc-ok(grow path: estimate history sized once per step-size count)
	}
	for i := 0; i < k; i++ {
		ws.prevU[i] = growF(ws.prevU[i], maxDim)
		for j := range ws.prevU[i] {
			ws.prevU[i][j] = 0
		}
	}
}

// resetSub clears the reusable Subspace for a new generation, retaining its
// lazily-grown scratch buffers.
func (ws *Workspace) resetSub(op *Op) *Subspace {
	s := &ws.sub
	s.op = op
	s.v = nil
	s.hhat = nil
	s.hm = nil
	s.hsub = 0
	s.beta = 0
	s.m = 0
	s.tri = false
	s.mu = nil
	s.q = nil
	return s
}

// eig prepares the eigendecomposition buffers for an m×m tridiagonal with
// diagonal alpha[:m] and subdiagonal beta[:m-1], runs SymTriEig, and leaves
// the eigenvalues in ws.eigD and the eigenvectors in ws.eigQ.
func (ws *Workspace) eig(alpha, beta []float64, m int) error {
	ws.eigD = growF(ws.eigD, m)
	ws.eigE = growF(ws.eigE, m)
	copy(ws.eigD, alpha[:m])
	for i := 0; i+1 < m; i++ {
		ws.eigE[i] = beta[i]
	}
	if m > 0 {
		ws.eigE[m-1] = 0
	}
	ws.eigZ = growF(ws.eigZ, m*m)
	ws.eigQ = dense.Matrix{R: m, C: m, Data: ws.eigZ[:m*m]}
	for i := range ws.eigQ.Data {
		ws.eigQ.Data[i] = 0
	}
	for i := 0; i < m; i++ {
		ws.eigQ.Data[i*m+i] = 1
	}
	return dense.SymTriEig(ws.eigD, ws.eigE, &ws.eigQ)
}
