package krylov

import (
	"errors"
	"fmt"
	"math"

	"github.com/matex-sim/matex/internal/dense"
)

// breakdownTol declares a happy breakdown when the next Arnoldi vector's
// norm falls below this fraction of the starting vector's norm.
const breakdownTol = 1e-14

// ErrNoConvergence is returned when the posterior error estimate stays above
// tolerance at the maximum subspace dimension. Callers react by shortening
// the time step (Alg. 2 fallback).
var ErrNoConvergence = errors.New("krylov: posterior error above tolerance at maximum dimension")

// Options controls the Arnoldi process.
type Options struct {
	// MaxDim caps the subspace dimension (paper: small for I-/R-MATEX,
	// hundreds for MEXP on stiff circuits). Default 256.
	MaxDim int
	// Tol is the posterior error budget ε for e^{hA}v. Default 1e-7.
	Tol float64
	// CheckEvery controls how often the O(m³) convergence check runs once
	// the dimension passes 30 (below that it runs every iteration).
	// Default 5.
	CheckEvery int
	// Reorthogonalize enables a second modified Gram-Schmidt pass,
	// restoring orthogonality for ill-conditioned bases.
	Reorthogonalize bool
	// ForceDim disables the convergence test and builds exactly MaxDim
	// dimensions (short of a happy breakdown) — for fixed-dimension studies
	// like the paper's Fig. 5.
	ForceDim bool
}

func (o Options) withDefaults(n int) Options {
	if o.MaxDim <= 0 {
		o.MaxDim = 256
	}
	if o.MaxDim > n {
		o.MaxDim = n
	}
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = 5
	}
	return o
}

// Subspace is a generated Krylov subspace ready for matrix-exponential
// evaluation, including everything needed to reuse it at different step
// sizes (the paper's snapshot mechanism).
type Subspace struct {
	op   *Op
	v    [][]float64   // m basis vectors, each length n
	hhat *dense.Matrix // m×m projection of the generated operator
	hsub float64       // ĥ_{m+1,m}, the subdiagonal residual weight
	hm   *dense.Matrix // m×m projection of A (converted)
	beta float64       // ‖v‖ of the starting vector
	m    int
}

// Dim returns the subspace dimension m.
func (s *Subspace) Dim() int { return s.m }

// Beta returns the starting vector norm ‖v‖.
func (s *Subspace) Beta() float64 { return s.beta }

// Hm returns the m×m projection of A.
func (s *Subspace) Hm() *dense.Matrix { return s.hm }

// Arnoldi generates a Krylov subspace for e^{hA}·v with the given operator,
// growing the dimension until the posterior error estimate at step h is
// below opts.Tol (paper Alg. 1). hCheck lists the step sizes the subspace
// must be accurate for; the estimate is evaluated at each and the maximum
// must pass.
func Arnoldi(op *Op, v []float64, hCheck []float64, opts Options) (*Subspace, error) {
	n := op.N()
	opts = opts.withDefaults(n)
	if len(v) != n {
		return nil, fmt.Errorf("krylov: starting vector length %d != operator dimension %d", len(v), n)
	}
	if len(hCheck) == 0 {
		return nil, errors.New("krylov: no step sizes to check")
	}
	beta := norm2(v)
	sub := &Subspace{op: op, beta: beta}
	if beta == 0 {
		// Zero starting vector: e^{hA}·0 = 0; a dimension-1 dummy keeps the
		// caller's bookkeeping simple.
		sub.m = 1
		sub.v = [][]float64{make([]float64, n)}
		sub.hhat = dense.New(1, 1)
		sub.hm = dense.New(1, 1)
		if op.Count != nil {
			op.Count.Dims = append(op.Count.Dims, 1)
		}
		return sub, nil
	}

	hFull := dense.New(opts.MaxDim+1, opts.MaxDim) // growing Hessenberg
	prevU := make([][]float64, len(hCheck))        // last checked e^{hH}e₁ per step
	basis := make([][]float64, 0, 16)
	// Best-effort fallback state: the dimension with the smallest estimate
	// seen, used when the tolerance is unreachable.
	bestWorst := math.Inf(1)
	bestM := 0
	var bestHm *dense.Matrix
	var bestHsub float64
	v1 := make([]float64, n)
	for i := range v {
		v1[i] = v[i] / beta
	}
	basis = append(basis, v1)
	w := make([]float64, n)

	happy := false
	for j := 0; j < opts.MaxDim; j++ {
		op.Apply(w, basis[j])
		wScale := norm2(w)
		if math.IsNaN(wScale) || math.IsInf(wScale, 0) {
			return nil, fmt.Errorf("krylov: %v operator produced a non-finite vector at dimension %d (system too stiff for this subspace; use I-MATEX or R-MATEX)", op.Mode, j+1)
		}
		// Modified Gram-Schmidt.
		for i := 0; i <= j; i++ {
			hij := dot(w, basis[i])
			hFull.Set(i, j, hij)
			axpy(w, -hij, basis[i])
		}
		if opts.Reorthogonalize {
			for i := 0; i <= j; i++ {
				c := dot(w, basis[i])
				hFull.Set(i, j, hFull.At(i, j)+c)
				axpy(w, -c, basis[i])
			}
		}
		hnext := norm2(w)
		hFull.Set(j+1, j, hnext)
		m := j + 1
		if hnext <= breakdownTol*(1+wScale) || m == n {
			// Happy breakdown: the subspace is invariant (or spans the whole
			// space, making the projection a similarity), result exact.
			sub.m = m
			happy = true
			if m == n {
				hnext = 0
			}
		} else {
			vnext := make([]float64, n)
			for i := range w {
				vnext[i] = w[i] / hnext
			}
			basis = append(basis, vnext)
		}

		if opts.ForceDim && !happy && m < opts.MaxDim {
			continue
		}
		check := happy || m == opts.MaxDim || m <= 30 || m%opts.CheckEvery == 0
		if !check {
			continue
		}
		hhat := hFull.Slice(m, m)
		hm, err := sub.op.ConvertH(hhat)
		if err != nil {
			if happy || m == opts.MaxDim {
				return nil, err
			}
			continue // singular leading block can resolve at higher m
		}
		worst := 0.0
		ok := m >= 2 || m == opts.MaxDim
		if ok {
			for k, h := range hCheck {
				est, u, err := errEstimate(op, hm, hnext, beta, h)
				if err != nil || math.IsNaN(est) {
					ok = false
					break
				}
				// Guard the residual bound with the change between this and
				// the previously checked approximation: projected residuals
				// can miss error carried by fast modes outside the subspace
				// (inverted/rational spaces capture slow modes first).
				if prev := prevU[k]; prev != nil {
					var d float64
					for i := 0; i < m; i++ {
						pi := 0.0
						if i < len(prev) {
							pi = prev[i]
						}
						d += (u[i] - pi) * (u[i] - pi)
					}
					if d = beta * math.Sqrt(d); d > est {
						est = d
					}
				} else if !happy {
					est = math.Inf(1) // need two checks before trusting
				}
				prevU[k] = u
				if est > worst {
					worst = est
				}
			}
			if op.Count != nil {
				op.Count.ExpmEvals += len(hCheck)
			}
			if ok && worst < bestWorst {
				bestWorst = worst
				bestM = m
				bestHm = hm
				bestHsub = hnext
			}
		}
		if happy || (opts.ForceDim && m == opts.MaxDim) || (ok && worst <= opts.Tol) {
			sub.m = m
			sub.v = basis[:m]
			sub.hhat = hhat
			sub.hsub = hnext
			sub.hm = hm
			if op.Count != nil {
				op.Count.Dims = append(op.Count.Dims, m)
			}
			return sub, nil
		}
	}
	// Best effort: hand back the subspace at the dimension with the smallest
	// estimate seen, along with the error, so callers can proceed with the
	// achievable accuracy after exhausting their step-splitting options.
	if bestM == 0 {
		return nil, fmt.Errorf("%w (dim %d, tol %g)", ErrNoConvergence, opts.MaxDim, opts.Tol)
	}
	sub.m = bestM
	sub.v = basis[:bestM]
	sub.hhat = hFull.Slice(bestM, bestM)
	sub.hsub = bestHsub
	sub.hm = bestHm
	if op.Count != nil {
		op.Count.Dims = append(op.Count.Dims, bestM)
	}
	return sub, fmt.Errorf("%w (best dim %d, estimate %.3g, tol %g)", ErrNoConvergence, bestM, bestWorst, opts.Tol)
}

// errEstimate bounds the Krylov approximation error over the whole interval
// (0, h] — the subspace is reused for snapshots anywhere inside it. The ODE
// residual of the Krylov approximation is
//
//	r(s) = ‖v‖·ĥ_{m+1,m}·[e^{sH_m}e₁]_m·v_{m+1},
//
// and for a dissipative A the error is bounded by its time integral, which
// the φ₁ function gives in closed form:
//
//	err(h) ≤ ‖v‖·|ĥ_{m+1,m}|·|[h·φ₁(hH_m)·e₁]_m|.
//
// h·φ₁(hH)e₁ is the top-right block of exp([[hH, he₁],[0, 0]]) (the
// standard augmented-matrix trick). This integrated form degrades gracefully
// on stiff spectra where the endpoint value e_mᵀe^{hH}e₁ of the paper's
// Eq. 7 underflows and would declare false convergence; on converged
// subspaces the two agree in magnitude.
// The inverted and rational residuals (paper Eqs. 8 and 10) carry an extra
// operator factor — A·v_{m+1} and (I-γA)·v_{m+1}/γ respectively — whose norm
// cannot be formed without factorizing C. Following the spectral
// transformation algebra (H̃⁻¹ = I - γH_m for the rational space, Ĥ⁻¹ = H_m
// for the inverted one) we bound it by the corresponding projected norm.
// It also returns the approximation vector u = e^{hH_m}e₁ (the top-left
// block's first column of the augmented exponential), which the caller uses
// for a successive-difference convergence guard.
func errEstimate(op *Op, hm *dense.Matrix, hsub, beta, h float64) (float64, []float64, error) {
	m := hm.R
	aug := dense.New(m+1, m+1)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			aug.Set(i, j, h*hm.At(i, j))
		}
	}
	aug.Set(0, m, h)
	e, err := dense.Expm(aug)
	if err != nil {
		return 0, nil, err
	}
	u := make([]float64, m)
	for i := 0; i < m; i++ {
		u[i] = e.At(i, 0)
	}
	// The inverted/rational residuals (Eqs. 8, 10) carry operator factors
	// (‖A·v_{m+1}‖, ‖(I-γA)·v_{m+1}‖/γ) that cannot be formed without
	// factorizing C and that amplify rounding noise in ĥ_{m+1,m} by ~‖A‖
	// near convergence. Following the paper's Sec. 3.3.3 we keep the
	// unscaled empirical form here; the caller guards it with a
	// successive-difference check, which covers the error carried by modes
	// outside the subspace.
	return beta * math.Abs(hsub) * math.Abs(e.At(m-1, m)), u, nil
}

// ErrEstimate evaluates the subspace's posterior error estimate at step h.
func (s *Subspace) ErrEstimate(h float64) (float64, error) {
	if s.beta == 0 {
		return 0, nil
	}
	est, _, err := errEstimate(s.op, s.hm, s.hsub, s.beta, h)
	return est, err
}

// EvalExp computes dst = ‖v‖·V_m·e^{hH_m}·e₁ ≈ e^{hA}·v. This is the
// snapshot-reuse path: it costs one m×m expm plus one n×m multiply and no
// substitutions, for any h.
func (s *Subspace) EvalExp(h float64, dst []float64) error {
	if len(dst) != s.op.N() {
		return fmt.Errorf("krylov: EvalExp dst length %d != %d", len(dst), s.op.N())
	}
	if s.beta == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	e, err := dense.Expm(s.hm.Clone().Scale(h))
	if err != nil {
		return err
	}
	if s.op.Count != nil {
		s.op.Count.ExpmEvals++
	}
	for i := range dst {
		dst[i] = 0
	}
	for j := 0; j < s.m; j++ {
		c := s.beta * e.At(j, 0)
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("krylov: %v subspace evaluation overflowed at h=%g", s.op.Mode, h)
		}
		if c == 0 {
			continue
		}
		axpy(dst, c, s.v[j])
	}
	return nil
}

func norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// axpy computes dst += alpha * x.
func axpy(dst []float64, alpha float64, x []float64) {
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}
