// Package krylov implements the matrix-exponential kernels of MATEX: the
// Arnoldi process over three operator families —
//
//   - standard   K_m(A, v) with A = -C⁻¹G           (MEXP, Weng et al.)
//   - inverted   K_m(A⁻¹, v) with A⁻¹ = -G⁻¹C        (I-MATEX)
//   - rational   K_m((I-γA)⁻¹, v) via (C+γG)⁻¹C      (R-MATEX)
//
// — the conversion of the projected Hessenberg matrix back to an
// approximation of A, posterior error estimates (paper Eqs. 7, 8, 10 and the
// regularization-free variant of Sec. 3.3.3), and the evaluation
// x ≈ ‖v‖·V_m·e^{hH_m}·e₁ with subspace reuse across time steps.
//
// The Op type (operator.go) hides the family behind a single
// apply-one-solve interface backed by a sparse.Factorization, so the
// Arnoldi driver (arnoldi.go) and the symmetric Lanczos fast path
// (lanczos.go; Method selects between them) are family-agnostic.
// Workspace pools (workspace.go) amortize the V_m panel and Hessenberg
// storage across steps and across concurrent runs; the hot paths are
// annotated //matex:noalloc and enforced by matexcheck.
//
// A Subspace survives its generating step: EvalExp re-evaluates e^{hH} on
// the same basis for any h within the validated radius, which is what
// makes MATEX's substitution-free snapshots (and the distributed GTS grid
// of internal/dist) cheap.
package krylov
