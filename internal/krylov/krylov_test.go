package krylov

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/matex-sim/matex/internal/dense"
	"github.com/matex-sim/matex/internal/sparse"
)

// rcSystem builds a small RC-like pair: G a grid Laplacian with ground leak,
// C a positive diagonal with the given spread (stiffness knob).
func rcSystem(n int, spread float64, seed int64) (cm, gm *sparse.CSC) {
	rng := rand.New(rand.NewSource(seed))
	gt := sparse.NewTriplet(n, n)
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = 0.05 // ground leak
	}
	for i := 0; i < n-1; i++ {
		g := 0.5 + rng.Float64()
		gt.Add(i, i+1, -g)
		gt.Add(i+1, i, -g)
		diag[i] += g
		diag[i+1] += g
	}
	for i := 0; i < n; i++ {
		gt.Add(i, i, diag[i])
	}
	ct := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		ct.Add(i, i, 1e-12*math.Pow(spread, -frac))
	}
	return ct.ToCSC(), gt.ToCSC()
}

// denseA returns A = -C⁻¹G densely for reference computations.
func denseA(cm, gm *sparse.CSC) *dense.Matrix {
	n := cm.Rows
	cd := cm.Dense()
	gd := gm.Dense()
	a := dense.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, -gd[i][j]/cd[i][i]) // C diagonal
		}
	}
	return a
}

func buildOps(t testing.TB, cm, gm *sparse.CSC, gamma float64) (std, inv, rat *Op) {
	t.Helper()
	factC, err := sparse.Factor(cm, sparse.FactorAuto, sparse.OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	factG, err := sparse.Factor(gm, sparse.FactorAuto, sparse.OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	factS, err := sparse.Factor(sparse.Add(1, cm, gamma, gm), sparse.FactorAuto, sparse.OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	cnt1, cnt2, cnt3 := &Counters{}, &Counters{}, &Counters{}
	return NewStandardOp(factC, cm, gm, cnt1),
		NewInvertedOp(factG, cm, gm, cnt2),
		NewRationalOp(factS, cm, gm, gamma, cnt3)
}

// aug embeds an MNA-space vector into the augmented space with zero input
// columns: e^{hÃ}[v;0;1] then has x-part e^{hA}v. For the plain (inverted)
// operator it returns v unchanged.
func aug(op *Op, v []float64) []float64 {
	if op.N() == len(v) {
		return append([]float64(nil), v...)
	}
	out := make([]float64, len(v)+2)
	copy(out, v)
	out[len(v)+1] = 1
	return out
}

func TestModeString(t *testing.T) {
	if Standard.String() != "MEXP" || Inverted.String() != "I-MATEX" || Rational.String() != "R-MATEX" {
		t.Error("mode strings changed")
	}
	if Mode(9).String() != "unknown" {
		t.Error("unknown mode string")
	}
}

func TestAllModesMatchDenseExpm(t *testing.T) {
	n := 12
	cm, gm := rcSystem(n, 1e3, 1)
	a := denseA(cm, gm)
	h := 2e-13
	gamma := 1e-13
	std, inv, rat := buildOps(t, cm, gm, gamma)

	rng := rand.New(rand.NewSource(2))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	want, err := dense.ExpmVec(a, h, v)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		op   *Op
	}{{"standard", std}, {"inverted", inv}, {"rational", rat}} {
		sub, err := Arnoldi(tc.op, aug(tc.op, v), []float64{h}, Options{MaxDim: n + 2, Tol: 1e-10})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := make([]float64, tc.op.N())
		if err := sub.EvalExp(h, got); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var maxAbs, diff float64
		for i := range want {
			if a := math.Abs(want[i]); a > maxAbs {
				maxAbs = a
			}
			if d := math.Abs(got[i] - want[i]); d > diff {
				diff = d
			}
		}
		// The posterior estimators are empirical (paper Sec. 3.3.3); the
		// achieved accuracy class is ~1e-4 of signal (Table 1 reports
		// 0.004% errors), so assert that, not the raw Arnoldi tolerance.
		if diff > 1e-3*(1+maxAbs) {
			t.Errorf("%s: max deviation %g vs dense expm (m=%d)", tc.name, diff, sub.Dim())
		}
		// Auxiliary block invariant for augmented modes: e^{hN} on the
		// polynomial part gives y1 = h, y2 = 1.
		if tc.op.N() == n+2 {
			if math.Abs(got[n]-h) > 1e-9*(1+h) || math.Abs(got[n+1]-1) > 1e-9 {
				t.Errorf("%s: aux block = (%g, %g), want (%g, 1)", tc.name, got[n], got[n+1], h)
			}
		}
	}
}

func TestInputColumnsMatchPhiForm(t *testing.T) {
	// With nonzero segment vectors, the augmented evaluation must equal
	// x(h) = e^{hA}x + h·φ1(hA)b0 + h²·φ2(hA)b1, which for this diagonal
	// test system is computable analytically per mode.
	n := 4
	ct := sparse.NewTriplet(n, n)
	gt := sparse.NewTriplet(n, n)
	lams := []float64{1e11, 3e11, 1e12, 2e12}
	for i := 0; i < n; i++ {
		ct.Add(i, i, 1e-12)
		gt.Add(i, i, lams[i]*1e-12) // A = -diag(lams)
	}
	cm, gm := ct.ToCSC(), gt.ToCSC()
	gamma := 1e-12
	std, _, rat := buildOps(t, cm, gm, gamma)

	x := []float64{1, -2, 0.5, 3}
	buRaw := []float64{2e-12 * 1e11, 0, 1e-12 * 1e12, 0} // so b0 = C⁻¹bu has nice values
	sRaw := []float64{0, 1e-12 * 3e11 * 1e10, 0, 0}
	h := 2e-12
	phi1 := func(z float64) float64 {
		if math.Abs(z) < 1e-8 {
			return 1 + z/2
		}
		return (math.Exp(z) - 1) / z
	}
	phi2 := func(z float64) float64 {
		if math.Abs(z) < 1e-8 {
			return 0.5 + z/6
		}
		return (math.Exp(z) - 1 - z) / (z * z)
	}
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		z := -lams[i] * h
		b0 := buRaw[i] / 1e-12
		b1 := sRaw[i] / 1e-12
		want[i] = math.Exp(z)*x[i] + h*phi1(z)*b0 + h*h*phi2(z)*b1
	}
	for _, tc := range []struct {
		name string
		op   *Op
	}{{"standard", std}, {"rational", rat}} {
		tc.op.SetSegment(buRaw, sRaw)
		sub, err := Arnoldi(tc.op, aug(tc.op, x), []float64{h}, Options{MaxDim: n + 2, Tol: 1e-12})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := make([]float64, n+2)
		if err := sub.EvalExp(h, got); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i := 0; i < n; i++ {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Errorf("%s: x[%d] = %g, want %g", tc.name, i, got[i], want[i])
			}
		}
	}
}

func TestRationalNeedsFewerDimensionsOnStiff(t *testing.T) {
	n := 30
	cm, gm := rcSystem(n, 1e8, 3) // stiff
	gamma := 1e-12
	std, _, rat := buildOps(t, cm, gm, gamma)
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	h := 5e-12
	subStd, errStd := Arnoldi(std, aug(std, v), []float64{h}, Options{MaxDim: n + 2, Tol: 1e-8})
	subRat, errRat := Arnoldi(rat, aug(rat, v), []float64{h}, Options{MaxDim: n + 2, Tol: 1e-8})
	if errRat != nil {
		t.Fatalf("rational failed: %v", errRat)
	}
	if errStd == nil && subStd.Dim() <= subRat.Dim() {
		t.Errorf("standard dim %d <= rational dim %d on stiff problem", subStd.Dim(), subRat.Dim())
	}
	if subRat.Dim() > 18 {
		t.Errorf("rational dim %d unexpectedly large", subRat.Dim())
	}
}

func TestArnoldiRelationAndOrthogonality(t *testing.T) {
	n := 20
	cm, gm := rcSystem(n, 1e2, 4)
	_, inv, _ := buildOps(t, cm, gm, 1e-13)
	rng := rand.New(rand.NewSource(5))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	sub, err := Arnoldi(inv, v, []float64{1e-12}, Options{MaxDim: 15, Tol: 1e-3, Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	m := sub.Dim()
	// V orthonormal.
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			d := dot(sub.v[i], sub.v[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > 1e-10 {
				t.Fatalf("VᵀV[%d][%d] = %g", i, j, d)
			}
		}
	}
	// Arnoldi relation M·V_m = V_m·Ĥ_m + ĥ_{m+1,m}·v_{m+1}·e_mᵀ.
	w := make([]float64, inv.N())
	for j := 0; j < m; j++ {
		inv.Apply(w, sub.v[j])
		for i := 0; i < m; i++ {
			axpy(w, -sub.hhat.At(i, j), sub.v[i])
		}
		res := norm2(w)
		if j < m-1 {
			if res > 1e-9 {
				t.Fatalf("Arnoldi relation residual %g at column %d", res, j)
			}
		} else if math.Abs(res-math.Abs(sub.hsub)) > 1e-9*(1+res) {
			t.Fatalf("last-column residual %g != ĥ_{m+1,m} %g", res, sub.hsub)
		}
	}
}

func TestEigenvectorInvariantSubspace(t *testing.T) {
	// C = I, G diagonal: a unit vector is an eigenvector of A, so the plain
	// inverted Krylov space is invariant at dimension 1 (happy breakdown)
	// and the answer exact.
	n := 6
	ct := sparse.NewTriplet(n, n)
	gt := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		ct.Add(i, i, 1)
		gt.Add(i, i, float64(i+1))
	}
	cm, gm := ct.ToCSC(), gt.ToCSC()
	_, inv, _ := buildOps(t, cm, gm, 0.1)
	v := make([]float64, n)
	v[2] = 3.0 // eigenvector with A = -G, eigenvalue -3
	sub, err := Arnoldi(inv, v, []float64{0.5}, Options{MaxDim: 8, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Dim() != 1 {
		t.Fatalf("dim = %d, want 1 (happy breakdown)", sub.Dim())
	}
	got := make([]float64, n)
	if err := sub.EvalExp(0.5, got); err != nil {
		t.Fatal(err)
	}
	want := 3 * math.Exp(-1.5)
	if math.Abs(got[2]-want) > 1e-9 {
		t.Errorf("EvalExp = %v, want %v at index 2", got[2], want)
	}
}

func TestZeroVector(t *testing.T) {
	cm, gm := rcSystem(5, 10, 6)
	_, inv, _ := buildOps(t, cm, gm, 1e-13)
	sub, err := Arnoldi(inv, make([]float64, 5), []float64{1e-12}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dst := []float64{1, 1, 1, 1, 1}
	if err := sub.EvalExp(1e-12, dst); err != nil {
		t.Fatal(err)
	}
	for _, v := range dst {
		if v != 0 {
			t.Fatal("expm of zero vector not zero")
		}
	}
	if est, _ := sub.ErrEstimate(1e-12); est != 0 {
		t.Fatal("zero vector error estimate not zero")
	}
}

func TestNoConvergence(t *testing.T) {
	cm, gm := rcSystem(40, 1e12, 7)
	std, _, _ := buildOps(t, cm, gm, 1e-13)
	v := make([]float64, 40)
	for i := range v {
		v[i] = 1
	}
	_, err := Arnoldi(std, aug(std, v), []float64{1e-11}, Options{MaxDim: 4, Tol: 1e-14})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("expected ErrNoConvergence, got %v", err)
	}
}

func TestFig5ErrorDecreasesWithH(t *testing.T) {
	// The paper's Fig. 5 property: for the rational subspace, the actual
	// error against dense expm decreases as the step h increases.
	n := 14
	cm, gm := rcSystem(n, 1e6, 8)
	a := denseA(cm, gm)
	gamma := 1e-12
	_, _, rat := buildOps(t, cm, gm, gamma)
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	m := 6
	vp := make([]float64, n+2) // [v;0;0]: the aux chain never enters the space
	copy(vp, v)
	sub, err := Arnoldi(rat, vp, []float64{1e-10}, Options{MaxDim: m, ForceDim: true})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = math.Inf(1)
	for _, h := range []float64{1e-13, 1e-12, 1e-11, 1e-10} {
		want, err := dense.ExpmVec(a, h, v)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n+2)
		if err := sub.EvalExp(h, got); err != nil {
			t.Fatal(err)
		}
		var diff float64
		for i := range want {
			diff += (got[i] - want[i]) * (got[i] - want[i])
		}
		diff = math.Sqrt(diff)
		if diff > prev*1.5 {
			t.Errorf("error grew from %g to %g as h increased to %g", prev, diff, h)
		}
		prev = diff
	}
}

func TestCounters(t *testing.T) {
	cm, gm := rcSystem(10, 1e2, 9)
	_, inv, _ := buildOps(t, cm, gm, 1e-13)
	v := make([]float64, 10)
	for i := range v {
		v[i] = 1
	}
	if _, err := Arnoldi(inv, v, []float64{1e-12}, Options{MaxDim: 12, Tol: 1e-9}); err != nil {
		t.Fatal(err)
	}
	c := inv.Count
	if c.SolvePairs == 0 || c.SpMVs == 0 || len(c.Dims) != 1 {
		t.Fatalf("counters not updated: %+v", c)
	}
	if c.MA() != float64(c.Dims[0]) || c.MP() != c.Dims[0] {
		t.Fatal("MA/MP wrong for single entry")
	}
	other := &Counters{SolvePairs: 5, Dims: []int{99}}
	c.Merge(other)
	if c.MP() != 99 {
		t.Fatal("Merge lost dims")
	}
}

func TestSetSegmentAndClear(t *testing.T) {
	cm, gm := rcSystem(6, 10, 11)
	_, _, rat := buildOps(t, cm, gm, 1e-12)
	bu := []float64{1, 0, 0, 0, 0, 0}
	s := []float64{0, 2, 0, 0, 0, 0}
	rat.SetSegment(bu, s)
	if rat.bcol0[0] != 1 || rat.bcol1[1] != 2 {
		t.Fatal("rational SetSegment should store raw vectors")
	}
	rat.ClearSegment()
	for i := range rat.bcol0 {
		if rat.bcol0[i] != 0 || rat.bcol1[i] != 0 {
			t.Fatal("ClearSegment left residue")
		}
	}
}

// Property: for random small RC systems, the rational-Krylov result at
// convergence matches dense expm within the empirical accuracy class.
func TestQuickRationalAccuracy(t *testing.T) {
	f := func(seed int64) bool {
		n := 6 + int(seed%7+7)%7
		cm, gm := rcSystem(n, 1e4, seed)
		a := denseA(cm, gm)
		gamma := 1e-12
		_, _, rat := buildOps(t, cm, gm, gamma)
		rng := rand.New(rand.NewSource(seed + 1000))
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		h := 1e-12
		sub, err := Arnoldi(rat, aug(rat, v), []float64{h}, Options{MaxDim: n + 2, Tol: 1e-9})
		if err != nil {
			return false
		}
		want, err := dense.ExpmVec(a, h, v)
		if err != nil {
			return false
		}
		got := make([]float64, n+2)
		if err := sub.EvalExp(h, got); err != nil {
			return false
		}
		var scale float64 = 1
		for i := range want {
			if math.Abs(want[i]) > scale {
				scale = math.Abs(want[i])
			}
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-5*scale {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(77))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
