package krylov

import (
	"errors"
	"fmt"
	"math"

	"github.com/matex-sim/matex/internal/dense"
)

// Method selects how subspaces are generated.
type Method int

const (
	// MethodAuto picks the symmetric Lanczos fast path whenever the
	// operator and start vector qualify (SymmetricFor) and falls back to
	// Arnoldi otherwise. This is the default.
	MethodAuto Method = iota
	// MethodArnoldi always runs the full modified Gram-Schmidt Arnoldi
	// process — the pre-fast-path behavior, kept selectable as the
	// reference baseline.
	MethodArnoldi
	// MethodLanczos prefers the Lanczos fast path like MethodAuto; the
	// distinct value exists so flags and wire requests can state the
	// preference explicitly.
	MethodLanczos
)

func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodArnoldi:
		return "arnoldi"
	case MethodLanczos:
		return "lanczos"
	}
	return "unknown"
}

// ParseMethod parses a -krylov flag value.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "", "auto":
		return MethodAuto, nil
	case "arnoldi":
		return MethodArnoldi, nil
	case "lanczos":
		return MethodLanczos, nil
	}
	return MethodAuto, fmt.Errorf("krylov: unknown method %q (want auto, arnoldi or lanczos)", s)
}

// Generate builds a Krylov subspace for e^{hA}·v, routing to the symmetric
// Lanczos fast path when the operator is self-adjoint in its B-inner product
// and the start vector qualifies, and to Arnoldi otherwise. This is the
// entry point the transient solvers use; Arnoldi and Lanczos remain callable
// directly for studies that pin the process.
func Generate(op *Op, v []float64, hCheck []float64, opts Options) (*Subspace, error) {
	if opts.Method != MethodArnoldi && op.SymmetricFor(v) {
		sub, err := Lanczos(op, v, hCheck, opts)
		if err != nil && !errors.Is(err, ErrNoConvergence) {
			// The fast path is best-effort in both auto and lanczos modes:
			// an eigensolver hiccup on a degenerate projection must not
			// fail the run when Arnoldi can still serve. (ErrNoConvergence
			// is not a hiccup — it carries the best-effort subspace the
			// solvers' step-splitting logic reacts to.)
			return Arnoldi(op, v, hCheck, opts)
		}
		return sub, err
	}
	return Arnoldi(op, v, hCheck, opts)
}

// reorthThreshold is the orthogonality-loss level (estimated by the
// ω-recurrence) above which the Lanczos guard falls back to full
// reorthogonalization for the next iterations: the classic √ε criterion.
const reorthThreshold = 1.4901161193847656e-08 // sqrt(machine epsilon)

// Lanczos generates a Krylov subspace with the symmetric three-term
// recurrence in the operator's B-inner product (see Op.ApplySym), under the
// same contract as Arnoldi: grow until the posterior error estimate at every
// step in hCheck is below opts.Tol, return a Subspace whose EvalExp and
// ErrEstimate behave identically.
//
// Against Arnoldi this replaces the O(m²·n) modified Gram-Schmidt sweep by
// O(m·n) work, and the per-check dense Hessenberg machinery (expm of an
// augmented matrix, projection inversion) by one symmetric tridiagonal
// eigendecomposition reused for every step size — the spectral form also
// makes every later snapshot evaluation an O(m²) operation with no matrix
// exponential at all. With a caller-provided Workspace the whole generation
// performs zero heap allocations in steady state.
//
// Floating-point Lanczos loses orthogonality as eigenvalues converge; a
// partial reorthogonalization guard (Simon's ω-recurrence) estimates the
// drift and switches to full reorthogonalization sweeps when it crosses √ε.
// Options.Reorthogonalize forces the full sweep on every iteration.
//
//matex:noalloc
func Lanczos(op *Op, v []float64, hCheck []float64, opts Options) (*Subspace, error) {
	n := op.N()
	opts = opts.withDefaults(n)
	if len(v) != n {
		return nil, fmt.Errorf("krylov: starting vector length %d != operator dimension %d", len(v), n) //matex:alloc-ok(error path; subspace generation is abandoned or degraded)
	}
	if len(hCheck) == 0 {
		return nil, errors.New("krylov: no step sizes to check") //matex:alloc-ok(error path; subspace generation is abandoned or degraded)
	}
	if !op.SymmetricFor(v) {
		return nil, fmt.Errorf("krylov: %v operator is not symmetric-eligible for Lanczos here", op.Mode) //matex:alloc-ok(error path; subspace generation is abandoned or degraded)
	}
	ws := opts.Workspace
	if ws == nil {
		ws = &Workspace{} //matex:alloc-ok(fallback workspace when the caller supplies no pool)
	}
	sub := ws.resetSub(op)

	// Starting vector in the B-norm.
	bw := vec(&ws.bbasis, 0, n)
	op.applyB(bw, v)
	beta0 := math.Sqrt(math.Max(0, dot(v, bw)))
	sub.beta = beta0
	if beta0 == 0 {
		v0 := vec(&ws.basis, 0, n)
		for i := range v0 {
			v0[i] = 0
		}
		sub.m = 1
		sub.tri = true
		sub.v = ws.basis[:1]
		ws.mu = growF(ws.mu, 1)
		ws.mu[0] = 0
		sub.mu = ws.mu[:1]
		if op.Count != nil {
			op.Count.Dims = append(op.Count.Dims, 1) //matex:alloc-ok(work-stats recording; amortized append)
		}
		return sub, nil
	}
	v0 := vec(&ws.basis, 0, n)
	for i := range v {
		v0[i] = v[i] / beta0
	}
	for i := range bw {
		bw[i] /= beta0
	}

	alpha := growF(ws.alpha, opts.MaxDim)
	beta := growF(ws.beta, opts.MaxDim)
	ws.alpha, ws.beta = alpha, beta
	// The basis is B-orthonormal, but the caller's tolerance is a Euclidean
	// error budget (the same budget Arnoldi's 2-orthonormal basis serves
	// directly). On PDN systems the two scales differ by orders of
	// magnitude — ‖·‖_B with B ≈ C ~ 1e-12 is ~1e-6 of ‖·‖₂ — so estimates
	// formed in B-units would declare convergence six orders early. nu
	// tracks each basis vector's Euclidean norm to convert the residual
	// estimate and the difference guard into the caller's units.
	nu := growF(ws.nu, opts.MaxDim+1)
	ws.nu = nu
	nu[0] = norm2(v0)
	omega := growF(ws.omega, opts.MaxDim+1)
	omegaNew := growF(ws.omg1, opts.MaxDim+1)
	ws.omega, ws.omg1 = omega, omegaNew
	ws.prepPrevU(len(hCheck), opts.MaxDim)
	w := growF(ws.w, n)
	bww := growF(ws.bw, n)
	ws.w, ws.bw = w, bww

	sched := checkSchedule{}
	havePrev := false
	bestWorst := math.Inf(1)
	bestM := 0
	reorthLeft := 0 // full-sweep iterations pending from the ω guard
	happy := false
	hsub := 0.0
	// confirmPending requires a passing estimate to hold on the next check
	// too before the subspace is accepted. A near-breakdown (tiny β_j)
	// stalls the recurrence for one dimension: the residual estimate (∝ β)
	// and the successive-difference guard then collapse together even
	// though the subspace is only approximately invariant — the classic
	// Lanczos staircase. One more dimension reopens the recurrence and
	// exposes the remaining error, so double confirmation closes the trap
	// at the cost of a single extra iteration per spot.
	confirmPending := false

	for j := 0; j < opts.MaxDim; j++ {
		op.ApplySym(w, bww, ws.basis[j])
		wb0 := dot(w, bww)
		if math.IsNaN(wb0) || math.IsInf(wb0, 0) {
			return nil, fmt.Errorf("krylov: %v operator produced a non-finite vector at dimension %d (system too stiff for this subspace)", op.Mode, j+1) //matex:alloc-ok(error path; subspace generation is abandoned or degraded)
		}
		wScale := math.Sqrt(math.Max(0, wb0))
		if j > 0 {
			axpy(w, -beta[j-1], ws.basis[j-1])
			axpy(bww, -beta[j-1], ws.bbasis[j-1])
		}
		aj := dot(w, ws.bbasis[j])
		axpy(w, -aj, ws.basis[j])
		axpy(bww, -aj, ws.bbasis[j])
		if opts.Reorthogonalize || reorthLeft > 0 {
			if reorthLeft > 0 {
				reorthLeft--
			}
			for i := 0; i <= j; i++ {
				c := dot(w, ws.bbasis[i])
				axpy(w, -c, ws.basis[i])
				axpy(bww, -c, ws.bbasis[i])
				if i == j {
					aj += c
				}
			}
		}
		alpha[j] = aj
		bj := math.Sqrt(math.Max(0, dot(w, bww)))
		beta[j] = bj
		m := j + 1
		hsub = bj
		if bj <= breakdownTol*(1+wScale) || m == n {
			// Happy breakdown: invariant subspace (or the full space),
			// result exact.
			happy = true
			if m == n {
				hsub = 0
			}
		} else {
			vnext := vec(&ws.basis, j+1, n)
			bnext := vec(&ws.bbasis, j+1, n)
			for i := range w {
				vnext[i] = w[i] / bj
				bnext[i] = bww[i] / bj
			}
			nu[j+1] = norm2(vnext)
			if !opts.Reorthogonalize && reorthLeft == 0 {
				if updateOmega(omega, omegaNew, alpha, beta, j) > reorthThreshold {
					// Orthogonality drifting: clean the next two vectors with
					// full sweeps and restart the estimate.
					reorthLeft = 2
					resetOmega(omega, j+1)
					resetOmega(omegaNew, j+1)
				} else {
					omega, omegaNew = omegaNew, omega
				}
			}
		}

		if opts.ForceDim && !happy && m < opts.MaxDim {
			continue
		}
		if !(happy || m == opts.MaxDim || confirmPending || sched.due(m)) {
			continue
		}
		if err := ws.eig(alpha, beta, m); err != nil {
			if happy || m == opts.MaxDim {
				return nil, fmt.Errorf("krylov: %v Lanczos projection eigendecomposition failed at dimension %d: %w", op.Mode, m, err) //matex:alloc-ok(error path; subspace generation is abandoned or degraded)
			}
			continue
		}
		lamScale := 0.0
		for _, l := range ws.eigD[:m] {
			if a := math.Abs(l); a > lamScale {
				lamScale = a
			}
		}
		ws.mu = growF(ws.mu, m)
		for k := 0; k < m; k++ {
			ws.mu[k] = op.convertMu(ws.eigD[k], lamScale)
		}
		worst := 0.0
		ok := m >= 2 || m == opts.MaxDim
		if ok {
			ws.estU = growF(ws.estU, m)
			// The residual lives along v_{m+1}: convert its unit B-norm to
			// Euclidean units (1 on a happy breakdown, where the residual
			// vanishes anyway).
			nuNext := 1.0
			if !happy {
				nuNext = nu[m]
			}
			for k, h := range hCheck {
				est := nuNext * spectralEstimate(&ws.eigQ, ws.mu[:m], hsub, beta0, h, ws.estU)
				if math.IsNaN(est) {
					ok = false
					break
				}
				// Successive-difference guard, as in Arnoldi: projected
				// residuals can miss error carried by modes outside the
				// subspace. The basis is not 2-orthonormal, so the Euclidean
				// size of the change is bounded by the triangle inequality
				// over the per-vector norms (conservative by at most √m).
				if havePrev {
					prev := ws.prevU[k]
					var d float64
					for i := 0; i < m; i++ {
						d += math.Abs(ws.estU[i]-prev[i]) * nu[i]
					}
					if d *= beta0; d > est {
						est = d
					}
				} else if !happy {
					est = math.Inf(1) // need two checks before trusting
				}
				copy(ws.prevU[k][:m], ws.estU[:m])
				if est > worst {
					worst = est
				}
			}
			if op.Count != nil {
				op.Count.ExpmEvals += len(hCheck)
			}
			if ok {
				havePrev = true
				if worst < bestWorst {
					bestWorst = worst
					bestM = m
				}
			}
		}
		sched.record(m, worst, ok, opts)
		estNu := 1.0
		if !happy {
			estNu = nu[m]
		}
		if happy || (opts.ForceDim && m == opts.MaxDim) {
			finishTri(sub, ws, m, hsub, estNu)
			return sub, nil
		}
		if ok && worst <= opts.Tol {
			if confirmPending || m == opts.MaxDim {
				finishTri(sub, ws, m, hsub, estNu)
				return sub, nil
			}
			confirmPending = true
		} else {
			confirmPending = false
		}
	}
	// Best effort at the dimension with the smallest estimate, mirroring
	// Arnoldi: callers proceed with the achievable accuracy after exhausting
	// their step-splitting options.
	if bestM == 0 {
		return nil, fmt.Errorf("%w (dim %d, tol %g)", ErrNoConvergence, opts.MaxDim, opts.Tol) //matex:alloc-ok(error path; subspace generation is abandoned or degraded)
	}
	if err := ws.eig(alpha, beta, bestM); err != nil {
		return nil, fmt.Errorf("%w (dim %d, tol %g)", ErrNoConvergence, opts.MaxDim, opts.Tol) //matex:alloc-ok(error path; subspace generation is abandoned or degraded)
	}
	lamScale := 0.0
	for _, l := range ws.eigD[:bestM] {
		if a := math.Abs(l); a > lamScale {
			lamScale = a
		}
	}
	ws.mu = growF(ws.mu, bestM)
	for k := 0; k < bestM; k++ {
		ws.mu[k] = op.convertMu(ws.eigD[k], lamScale)
	}
	finishTri(sub, ws, bestM, beta[bestM-1], nu[bestM])
	return sub, fmt.Errorf("%w (best dim %d, estimate %.3g, tol %g)", ErrNoConvergence, bestM, bestWorst, opts.Tol) //matex:alloc-ok(error path; subspace generation is abandoned or degraded)
}

// finishTri installs the spectral representation at dimension m. estNu is
// the Euclidean norm of the residual direction v_{m+1}, converting later
// ErrEstimate calls into the caller's units.
//
//matex:noalloc
func finishTri(sub *Subspace, ws *Workspace, m int, hsub, estNu float64) {
	sub.m = m
	sub.tri = true
	sub.v = ws.basis[:m]
	sub.mu = ws.mu[:m]
	sub.q = &ws.eigQ
	sub.hsub = hsub
	sub.estNu = estNu
	if op := sub.op; op.Count != nil {
		op.Count.Dims = append(op.Count.Dims, m) //matex:alloc-ok(work-stats recording; amortized append)
		op.Count.Lanczos++
	}
}

// updateOmega advances Simon's ω-recurrence: given the estimates for rows
// j-1 (omegaNew, from two iterations ago) and j (omega), it writes the row
// for the just-formed v_{j+1} into omegaNew and returns its largest
// magnitude against v_0..v_{j-1}. Indices follow alpha[i] = T[i,i],
// beta[i] = T[i+1,i].
//
//matex:noalloc
func updateOmega(omega, omegaNew, alpha, beta []float64, j int) float64 {
	if j == 0 {
		omega[0] = machEpsK
		omegaNew[0] = machEpsK
		omegaNew[1] = machEpsK
		return 0
	}
	maxDrift := 0.0
	for i := 0; i < j; i++ {
		t := (alpha[i] - alpha[j]) * omega[i]
		t += beta[i] * omegaAt(omega, i+1, j)
		if i > 0 {
			t += beta[i-1] * omega[i-1]
		}
		t -= beta[j-1] * omegaNew[i] // row j-1 before being overwritten
		t = t/beta[j] + 2*machEpsK
		omegaNew[i] = t
		if a := math.Abs(t); a > maxDrift {
			maxDrift = a
		}
	}
	omegaNew[j] = machEpsK // local orthogonality is enforced explicitly
	omegaNew[j+1] = machEpsK
	return maxDrift
}

// omegaAt reads ω_{j,i} with the convention ω_{j,j} = 1.
//
//matex:noalloc
func omegaAt(omega []float64, i, j int) float64 {
	if i == j {
		return 1
	}
	return omega[i]
}

//matex:noalloc
func resetOmega(omega []float64, upto int) {
	for i := 0; i <= upto && i < len(omega); i++ {
		omega[i] = machEpsK
	}
}

const machEpsK = 2.220446049250313e-16

// spectralEstimate evaluates the integrated posterior bound of errEstimate
// in the eigenbasis of the tridiagonal projection: with T = QΛQᵀ and
// converted eigenvalues μ = f(Λ),
//
//	u      = e^{hH_m}e₁      = Q·diag(e^{hμ})·Qᵀe₁
//	est(h) = β·|ĥ_{m+1,m}|·|[h·φ₁(hH_m)e₁]_m| = β·|ĥ|·|Σ_k Q_{m,k}·hφ₁(hμ_k)·Q_{1,k}|
//
// u is written into uOut (length m) for the successive-difference guard.
// Clamped eigenvalues (μ = -Inf, instantaneous modes) contribute zero.
func spectralEstimate(q *dense.Matrix, mu []float64, hsub, beta, h float64, uOut []float64) float64 {
	m := len(mu)
	var last float64
	for i := 0; i < m; i++ {
		uOut[i] = 0
	}
	for k := 0; k < m; k++ {
		q0k := q.At(0, k)
		e := expMu(h, mu[k])
		if e != 0 && q0k != 0 {
			c := e * q0k
			for i := 0; i < m; i++ {
				uOut[i] += q.At(i, k) * c
			}
		}
		last += q.At(m-1, k) * hphi1(h, mu[k]) * q0k
	}
	return beta * math.Abs(hsub) * math.Abs(last)
}

// expMu returns e^{hμ}, with clamped modes (μ = -Inf) decaying instantly.
func expMu(h, mu float64) float64 {
	if math.IsInf(mu, -1) {
		return 0
	}
	return math.Exp(h * mu)
}

// hphi1 returns h·φ₁(hμ) = (e^{hμ}-1)/μ, the integrated residual weight.
func hphi1(h, mu float64) float64 {
	if math.IsInf(mu, -1) {
		return 0
	}
	z := h * mu
	if math.Abs(z) < 1e-8 {
		return h * (1 + z/2)
	}
	return h * math.Expm1(z) / z
}
