package krylov

import (
	"fmt"
	"math"

	"github.com/matex-sim/matex/internal/dense"
	"github.com/matex-sim/matex/internal/sparse"
)

// Mode selects the Krylov subspace family.
type Mode int

const (
	// Standard uses K_m(A, v): each Arnoldi vector costs one solve with C.
	Standard Mode = iota
	// Inverted uses K_m(A⁻¹, v): each vector costs one solve with G.
	Inverted
	// Rational uses the shift-and-invert space K_m((I-γA)⁻¹, v): each
	// vector costs one solve with (C + γG).
	Rational
)

func (m Mode) String() string {
	switch m {
	case Standard:
		return "MEXP"
	case Inverted:
		return "I-MATEX"
	case Rational:
		return "R-MATEX"
	}
	return "unknown"
}

// Counters accumulates the work metrics the paper reports: substitution
// pairs (T_bs), sparse matrix-vector products, small expm evaluations (T_H)
// and the dimension of every generated subspace (m_a, m_p). Lanczos counts
// the subspaces generated through the symmetric three-term fast path.
type Counters struct {
	SolvePairs int
	SpMVs      int
	ExpmEvals  int
	Lanczos    int
	Dims       []int
}

// MA returns the average generated subspace dimension.
func (c *Counters) MA() float64 {
	if len(c.Dims) == 0 {
		return 0
	}
	s := 0
	for _, d := range c.Dims {
		s += d
	}
	return float64(s) / float64(len(c.Dims))
}

// MP returns the peak generated subspace dimension.
func (c *Counters) MP() int {
	p := 0
	for _, d := range c.Dims {
		if d > p {
			p = d
		}
	}
	return p
}

// Merge adds other's counts into c.
func (c *Counters) Merge(other *Counters) {
	c.SolvePairs += other.SolvePairs
	c.SpMVs += other.SpMVs
	c.ExpmEvals += other.ExpmEvals
	c.Lanczos += other.Lanczos
	c.Dims = append(c.Dims, other.Dims...)
}

// Op is the Arnoldi operator for one of the three modes over the *augmented*
// MNA system. With piecewise-linear inputs, the step
//
//	x(t+h) = e^{hA}x(t) + h·φ₁(hA)·b(t) + h²·φ₂(hA)·ḃ
//
// (the numerically sound equivalent of the paper's Eq. 5 — the A⁻¹/A⁻²
// input terms there cancel catastrophically on stiff systems) is obtained as
// the first n components of e^{h·Ã}·[x; 0; 1] for the (n+2) matrix
//
//	Ã = [ A  b₁  b₀ ]     b₀ = C⁻¹·B·u(t),  b₁ = C⁻¹·ḃ·C = C⁻¹·s,
//	    [ 0   0   1 ]     s = d(B·u)/dt on the segment
//	    [ 0   0   0 ]
//
// so one Krylov subspace per transition spot still serves every snapshot
// inside the segment by rescaling h. The three modes differ in the operator
// that generates the subspace:
//
//	Standard (MEXP):  w = Ã·z             (factorizes C)
//	Rational (R-MATEX): w = (I-γÃ)⁻¹·z    (factorizes C+γG; needs only the
//	                                       raw B·u and s vectors — the
//	                                       regularization-free path)
//
// The Inverted mode (I-MATEX) keeps the paper's literal operator
// A⁻¹ = -G⁻¹C on the plain n-dimensional system (Ã is singular, so it has
// no augmented form); the transient solver pairs it with the paper's Eq. 5
// input terms instead.
type Op struct {
	Mode  Mode
	Gamma float64 // shift for Rational
	fact  sparse.Factorization
	c, g  *sparse.CSC
	n     int // MNA dimension; augmented modes work on length n+2
	work  []float64
	// Per-segment input vectors (length n). For Standard mode these are the
	// C-solved b₀, b₁; for Rational the raw B·u(t) and slope s.
	bcol0, bcol1 []float64
	Count        *Counters
	// sym records whether the stamped C and G are numerically symmetric
	// (detected at construction), which makes the generated operator
	// self-adjoint in a known inner product and unlocks the Lanczos
	// three-term fast path. symOff is the caller override (SetSymmetric):
	// e.g. MEXP disables the fast path after regularizing a singular C,
	// since the factorized matrix then differs from the stamped one.
	sym     bool
	symOff  bool
	segZero bool // both input columns are identically zero
	// solveWorkers > 1 routes every substitution pair through the
	// factorization's level-scheduled parallel solve when it offers one
	// (sparse.ParSolver); the factorization itself falls back to the
	// sequential path below its profitability crossover.
	solveWorkers int
	mdst, msrc   [2][]float64 // scratch headers for 2-RHS panel solves
}

// SetSolveWorkers sets the goroutine budget for the operator's triangular
// solves. w <= 1 keeps every solve sequential.
func (op *Op) SetSolveWorkers(w int) { op.solveWorkers = w }

// solve runs one substitution pair dst = fact⁻¹·b through the parallel
// solver when enabled and available.
//
//matex:noalloc
func (op *Op) solve(dst, b []float64) {
	if op.solveWorkers > 1 {
		if ps, ok := op.fact.(sparse.ParSolver); ok {
			ps.ParSolveWith(dst, b, op.work, op.solveWorkers)
			return
		}
	}
	op.fact.SolveWith(dst, b, op.work)
}

// symTol returns the absolute tolerance for symmetry detection on m.
func symTol(m *sparse.CSC) float64 { return 1e-12 * m.OneNorm() }

// detectSym reports whether both stamped matrices are numerically symmetric.
func detectSym(c, g *sparse.CSC) bool {
	return c.IsSymmetric(symTol(c)) && g.IsSymmetric(symTol(g))
}

// NewStandardOp builds the MEXP operator over Ã. factC must factorize the
// (regularized, if needed) C matrix.
func NewStandardOp(factC sparse.Factorization, c, g *sparse.CSC, count *Counters) *Op {
	n := factC.N()
	return &Op{Mode: Standard, fact: factC, c: c, g: g, n: n,
		work: make([]float64, n), bcol0: make([]float64, n), bcol1: make([]float64, n), Count: count,
		sym: detectSym(c, g), segZero: true}
}

// NewInvertedOp builds the I-MATEX operator A⁻¹ = -G⁻¹C on the plain system
// (no augmentation). factG is typically the factorization already produced
// by DC analysis — the paper's selling point for this mode.
func NewInvertedOp(factG sparse.Factorization, c, g *sparse.CSC, count *Counters) *Op {
	n := factG.N()
	return &Op{Mode: Inverted, fact: factG, c: c, g: g, n: n,
		work: make([]float64, n), Count: count,
		sym: detectSym(c, g), segZero: true}
}

// NewRationalOp builds the R-MATEX operator (I-γÃ)⁻¹. factShift must
// factorize (C + γG).
func NewRationalOp(factShift sparse.Factorization, c, g *sparse.CSC, gamma float64, count *Counters) *Op {
	n := factShift.N()
	return &Op{Mode: Rational, Gamma: gamma, fact: factShift, c: c, g: g, n: n,
		work: make([]float64, n), bcol0: make([]float64, n), bcol1: make([]float64, n), Count: count,
		sym: detectSym(c, g), segZero: true}
}

// N returns the operator dimension: MNA dimension + 2 for the augmented
// modes, the plain MNA dimension for Inverted.
func (op *Op) N() int {
	if op.Mode == Inverted {
		return op.n
	}
	return op.n + 2
}

// SetSegment installs the input terms of the current slope-constant segment:
// bu = B·u(t) and s = d(B·u)/dt, both raw stamping-space vectors. Standard
// mode converts them through C⁻¹ (two substitution pairs); the shifted modes
// use them as-is.
func (op *Op) SetSegment(bu, s []float64) {
	op.segZero = allZero(bu) && allZero(s)
	switch op.Mode {
	case Standard:
		// One blocked panel solve for both input columns when the
		// factorization supports it: same substitution work, the factor is
		// traversed once instead of twice.
		if ms, ok := op.fact.(sparse.MultiSolver); ok {
			op.mdst[0], op.mdst[1] = op.bcol0, op.bcol1
			op.msrc[0], op.msrc[1] = bu, s
			ms.SolveMulti(op.mdst[:], op.msrc[:])
			op.msrc[0], op.msrc[1] = nil, nil
		} else {
			op.fact.SolveWith(op.bcol0, bu, op.work)
			op.fact.SolveWith(op.bcol1, s, op.work)
		}
		if op.Count != nil {
			op.Count.SolvePairs += 2
		}
	case Rational:
		copy(op.bcol0, bu)
		copy(op.bcol1, s)
	case Inverted:
		// Inverted mode handles inputs through the paper's Eq. 5 terms at
		// the solver level; the operator itself is input-free.
	}
}

// ClearSegment zeroes the input terms (pure homogeneous system e^{hA}v).
func (op *Op) ClearSegment() {
	op.segZero = true
	for i := range op.bcol0 {
		op.bcol0[i] = 0
		op.bcol1[i] = 0
	}
}

func allZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// SetSymmetric overrides the construction-time symmetry detection:
// SetSymmetric(false) disables the Lanczos fast path (used e.g. after MEXP
// regularizes a singular C, where the factorized matrix no longer matches
// the stamped one), SetSymmetric(true) forces it on for callers that know
// their matrices are self-adjoint despite failing the numerical test.
func (op *Op) SetSymmetric(sym bool) {
	op.sym = sym
	op.symOff = !sym
}

// SymmetricMatrices reports whether the stamped C and G are numerically
// symmetric (and the caller has not overridden detection) — the
// segment-independent part of the fast-path precondition. Solvers use it to
// decide whether reformulating a segment (e.g. shifting out a constant
// input) would make its spots Lanczos-eligible.
func (op *Op) SymmetricMatrices() bool { return op.sym && !op.symOff }

// Symmetric reports whether the generated operator is self-adjoint in the
// operator's B-inner product (see ApplySym) — the structural precondition of
// the Lanczos fast path. For the augmented modes this requires the input
// columns to be zero; SymmetricFor additionally checks the start vector.
func (op *Op) Symmetric() bool {
	if !op.sym || op.symOff {
		return false
	}
	if op.Mode == Inverted {
		return true
	}
	return op.segZero
}

// SymmetricFor reports whether the Lanczos fast path applies to a subspace
// generated from v: the operator must be symmetric-eligible and, for the
// augmented modes, v must not excite the polynomial auxiliary chain (its two
// trailing entries are zero), so the iteration stays inside the MNA block
// where the operator is self-adjoint.
func (op *Op) SymmetricFor(v []float64) bool {
	if !op.Symmetric() {
		return false
	}
	if op.Mode == Inverted {
		return true
	}
	return len(v) == op.n+2 && v[op.n] == 0 && v[op.n+1] == 0
}

// ApplySym computes w = M·v together with bw = B·w, where B is the
// inner-product matrix that makes the generated operator M self-adjoint:
//
//	Standard:  M = -C⁻¹G        B = C      (⟨Mx,y⟩_C = -xᵀGy)
//	Inverted:  M = -G⁻¹C        B = G      (⟨Mx,y⟩_G = -xᵀCy)
//	Rational:  M = (C+γG)⁻¹C    B = C+γG   (⟨Mx,y⟩_B = xᵀC(C+γG)⁻¹Cy)
//
// The companion product comes free: B·w equals the sparse product formed on
// the way into the solve (±C·v or ±G·v), so the B-inner-product Lanczos
// recurrence needs no extra SpMV per iteration. Only valid when
// op.SymmetricFor(v); for augmented modes the auxiliary entries of v must be
// zero and stay zero in w and bw.
//
//matex:noalloc
func (op *Op) ApplySym(w, bw, v []float64) {
	n := op.n
	switch op.Mode {
	case Standard:
		op.g.MulVec(bw[:n], v[:n])
		op.solve(w[:n], bw[:n])
		for i := 0; i < n; i++ {
			w[i] = -w[i]
			bw[i] = -bw[i]
		}
		w[n], w[n+1] = 0, 0
		bw[n], bw[n+1] = 0, 0
	case Inverted:
		op.c.MulVec(bw, v)
		op.solve(w, bw)
		for i := range w {
			w[i] = -w[i]
			bw[i] = -bw[i]
		}
	case Rational:
		op.c.MulVec(bw[:n], v[:n])
		op.solve(w[:n], bw[:n])
		w[n], w[n+1] = 0, 0
		bw[n], bw[n+1] = 0, 0
	}
	if op.Count != nil {
		op.Count.SpMVs++
		op.Count.SolvePairs++
	}
}

// applyB computes dst = B·v for the operator's inner-product matrix — needed
// once per subspace, for the starting vector. Auxiliary entries stay zero.
//
//matex:noalloc
func (op *Op) applyB(dst, v []float64) {
	n := op.n
	switch op.Mode {
	case Standard:
		op.c.MulVec(dst[:n], v[:n])
		dst[n], dst[n+1] = 0, 0
	case Inverted:
		op.g.MulVec(dst, v)
	case Rational:
		op.c.MulVec(dst[:n], v[:n])
		op.g.MulVecAdd(dst[:n], op.Gamma, v[:n])
		dst[n], dst[n+1] = 0, 0
	}
	if op.Count != nil {
		op.Count.SpMVs++
	}
}

// convertMu maps an eigenvalue λ of the generated operator's tridiagonal
// projection to the corresponding eigenvalue of A (the spectral form of
// ConvertH, Sec. 3.3). λ values in the clamped regime — at or beyond the
// algebraic limit of the spectral transform, within rounding of it — map to
// -Inf: an instantaneous mode that the exponential annihilates for any
// h > 0, which is the correct physical limit (the dense path reaches the
// same behavior through invertChecked's diagonal shifts).
func (op *Op) convertMu(lam, lamScale float64) float64 {
	const clamp = 1e-14
	switch op.Mode {
	case Standard:
		return lam
	case Inverted:
		// λ = 1/μ with μ ≤ 0: λ ≥ -ε is an algebraic direction.
		if lam >= -clamp*lamScale {
			return math.Inf(-1)
		}
		return 1 / lam
	case Rational:
		// λ = 1/(1-γμ) ∈ (0, 1]: λ ≤ ε is a mode far beyond the shift.
		if lam <= clamp*lamScale {
			return math.Inf(-1)
		}
		return (1 - 1/lam) / op.Gamma
	}
	return math.NaN()
}

// Apply computes dst = M·v (dst and v must not alias; length op.N()).
//
//matex:noalloc
func (op *Op) Apply(dst, v []float64) {
	n := op.n
	switch op.Mode {
	case Standard:
		zx := v[:n]
		z1, z2 := v[n], v[n+1]
		// dst_x = A·z_x + b₁·z₁ + b₀·z₂ with A = -C⁻¹G.
		op.g.MulVec(dst[:n], zx)
		op.solve(dst[:n], dst[:n])
		for i := 0; i < n; i++ {
			dst[i] = -dst[i] + op.bcol1[i]*z1 + op.bcol0[i]*z2
		}
		dst[n] = z2
		dst[n+1] = 0
	case Inverted:
		// dst = A⁻¹·v = -G⁻¹(C·v).
		op.c.MulVec(dst, v)
		op.solve(dst, dst)
		for i := range dst {
			dst[i] = -dst[i]
		}
	case Rational:
		zx := v[:n]
		z1, z2 := v[n], v[n+1]
		// Solve (I-γÃ)w = z blockwise:
		//   w₂ = z₂ ;  w₁ = z₁ + γ·w₂ ;
		//   (C+γG)·w_x = C·z_x + γ(s·w₁ + B·u·w₂).
		w2 := z2
		w1 := z1 + op.Gamma*w2
		op.c.MulVec(dst[:n], zx)
		for i := 0; i < n; i++ {
			dst[i] += op.Gamma * (op.bcol1[i]*w1 + op.bcol0[i]*w2)
		}
		op.solve(dst[:n], dst[:n])
		dst[n] = w1
		dst[n+1] = w2
	}
	if op.Count != nil {
		op.Count.SpMVs++
		op.Count.SolvePairs++
	}
}

// ConvertH maps the Hessenberg projection Ĥ of the generated operator back
// to H_m, the projection of Ã itself, per Sec. 3.3:
//
//	standard:  H = Ĥ
//	inverted:  H = Ĥ⁻¹
//	rational:  H = (I - H̃⁻¹) / γ
func (op *Op) ConvertH(hhat *dense.Matrix) (*dense.Matrix, error) {
	switch op.Mode {
	case Standard:
		return hhat.Clone(), nil
	case Inverted:
		inv, err := invertChecked(hhat)
		if err != nil {
			return nil, fmt.Errorf("krylov: inverted-mode Ĥ not invertible: %w", err) //matex:alloc-ok(conversion-failure error path)
		}
		return inv, nil
	case Rational:
		inv, err := invertChecked(hhat)
		if err != nil {
			return nil, fmt.Errorf("krylov: rational-mode H̃ not invertible: %w", err) //matex:alloc-ok(conversion-failure error path)
		}
		m := hhat.R
		out := dense.Add(1, dense.Eye(m), -1, inv)
		return out.Scale(1 / op.Gamma), nil
	}
	return nil, fmt.Errorf("krylov: unknown mode %d", op.Mode) //matex:alloc-ok(caller-misuse error path)
}

// invertChecked inverts the small projection matrix, verifying the product
// against the identity. Near-zero eigenvalues of H̃ correspond to
// instantaneous (algebraic) modes — circuits whose C has empty rows — and
// make the plain inverse numerical garbage; a tiny diagonal shift maps them
// to very fast decaying modes instead, which is the correct physical limit
// (e^{hA} annihilates them for any h > 0).
func invertChecked(h *dense.Matrix) (*dense.Matrix, error) {
	m := h.R
	try := func(shift, tol float64) (*dense.Matrix, bool) { //matex:alloc-ok(once per converged subspace, not per iteration)
		src := h
		if shift > 0 {
			src = h.Clone()
			for i := 0; i < m; i++ {
				src.Set(i, i, src.At(i, i)+shift)
			}
		}
		inv, err := dense.Inverse(src)
		if err != nil {
			return nil, false
		}
		// Residual check: ‖src·inv - I‖∞ small means the inverse is usable.
		if dense.Add(1, dense.Mul(src, inv), -1, dense.Eye(m)).InfNorm() > tol {
			return nil, false
		}
		return inv, true
	}
	if inv, ok := try(0, 1e-6); ok { //matex:alloc-ok(once per converged subspace, not per iteration)
		return inv, nil
	}
	scale := h.InfNorm()
	if scale == 0 {
		scale = 1
	}
	// Shifted attempts tolerate a looser residual: the error lives in the
	// shifted (algebraic) directions, which the exponential annihilates; the
	// slow directions we care about are perturbed only at the shift level.
	// The ladder prefers the most accurate acceptable combination.
	for _, tol := range []float64{1e-6, 1e-4, 1e-2} { //matex:alloc-ok(singularity-recovery ladder; rare path)
		for _, rel := range []float64{1e-14, 1e-13, 1e-12, 1e-11, 1e-10, 1e-9} { //matex:alloc-ok(singularity-recovery ladder; rare path)
			if inv, ok := try(rel*scale, tol); ok { //matex:alloc-ok(singularity-recovery ladder; rare path)
				return inv, nil
			}
		}
	}
	return nil, fmt.Errorf("dense: projection numerically singular even after shifting") //matex:alloc-ok(terminal error path)
}
