package krylov

import (
	"math"
	"math/rand"
	"testing"

	"github.com/matex-sim/matex/internal/dense"
	"github.com/matex-sim/matex/internal/sparse"
)

// randVec returns a deterministic pseudo-random vector of length n.
func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestLanczosMatchesArnoldi is the subspace-level equivalence contract: on
// random SPD RC systems, at a pinned dimension the Lanczos fast path and the
// Arnoldi reference span the same subspace and must produce the same e^{hA}v
// to roundoff; and at adaptive stopping both must land in the same accuracy
// class against dense expm.
func TestLanczosMatchesArnoldi(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		n := 24 + int(seed)
		cm, gm := rcSystem(n, 1e3, seed)
		a := denseA(cm, gm)
		gamma := 1e-12
		std, inv, rat := buildOps(t, cm, gm, gamma)
		v := randVec(n, seed+100)
		h := 2e-12
		truth, err := dense.ExpmVec(a, h, v)
		if err != nil {
			t.Fatal(err)
		}
		var truthScale float64 = 1
		for _, x := range truth {
			if a := math.Abs(x); a > truthScale {
				truthScale = a
			}
		}
		for _, tc := range []struct {
			name string
			op   *Op
			vv   []float64
		}{
			{"inverted", inv, v},
			{"rational", rat, padAug(v)},
			{"standard", std, padAug(v)},
		} {
			if !tc.op.SymmetricFor(tc.vv) {
				t.Fatalf("%s: operator unexpectedly not symmetric-eligible", tc.name)
			}
			// Both processes, same tolerance; each must land in the
			// empirical accuracy class against dense expm (the same class
			// krylov_test asserts for Arnoldi), which bounds their mutual
			// deviation. Exact equal-dimension identity is not a contract:
			// the two paths resolve near-algebraic modes differently by
			// design (invertChecked's shift ladder vs the spectral clamp).
			opts := Options{MaxDim: n + 2, Tol: 1e-10}
			subA, errA := Arnoldi(tc.op, tc.vv, []float64{h}, opts)
			if errA != nil {
				t.Fatalf("%s arnoldi: %v", tc.name, errA)
			}
			subL, errL := Lanczos(tc.op, tc.vv, []float64{h}, opts)
			if errL != nil {
				t.Fatalf("%s lanczos: %v", tc.name, errL)
			}
			if !subL.Lanczos() {
				t.Fatalf("%s: subspace not marked as Lanczos", tc.name)
			}
			got := make([]float64, tc.op.N())
			want := make([]float64, tc.op.N())
			if err := subA.EvalExp(h, want); err != nil {
				t.Fatalf("%s arnoldi eval: %v", tc.name, err)
			}
			if err := subL.EvalExp(h, got); err != nil {
				t.Fatalf("%s lanczos eval: %v", tc.name, err)
			}
			for i := range truth {
				if d := math.Abs(got[i] - truth[i]); d > 1e-6*truthScale {
					t.Errorf("%s: Lanczos off dense expm by %g at %d (m=%d)",
						tc.name, d, i, subL.Dim())
					break
				}
				if d := math.Abs(got[i] - want[i]); d > 1e-6*truthScale {
					t.Errorf("%s: Lanczos and Arnoldi differ by %g at %d (m=%d vs %d)",
						tc.name, d, i, subL.Dim(), subA.Dim())
					break
				}
			}
		}
	}
}

// padAug embeds v into the augmented space with inert auxiliary entries.
func padAug(v []float64) []float64 {
	out := make([]float64, len(v)+2)
	copy(out, v)
	return out
}

// TestLanczosBOrthogonality checks the generated basis is orthonormal in the
// operator's B-inner product and satisfies the three-term relation.
func TestLanczosBOrthogonality(t *testing.T) {
	n := 30
	cm, gm := rcSystem(n, 1e4, 9)
	_, inv, _ := buildOps(t, cm, gm, 1e-13)
	v := randVec(n, 5)
	sub, err := Lanczos(inv, v, []float64{1e-12}, Options{MaxDim: 20, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	m := sub.Dim()
	if m < 3 {
		t.Fatalf("dim %d too small to be interesting", m)
	}
	b := make([]float64, n)
	for i := 0; i < m; i++ {
		inv.applyB(b, sub.v[i])
		for j := 0; j <= i; j++ {
			d := dot(b, sub.v[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > 1e-8 {
				t.Errorf("VᵀBV[%d][%d] = %g, want %g", i, j, d, want)
			}
		}
	}
	// βV·(first basis vector) reproduces the start vector.
	got := make([]float64, n)
	for i := range got {
		got[i] = sub.Beta() * sub.v[0][i]
	}
	for i := range v {
		if math.Abs(got[i]-v[i]) > 1e-10*(1+math.Abs(v[i])) {
			t.Fatalf("β·v₁ does not reproduce the start vector at %d", i)
		}
	}
}

// TestLanczosInvariantSubspace mirrors the Arnoldi happy-breakdown test: an
// eigenvector start must terminate at dimension 1 with the exact answer.
func TestLanczosInvariantSubspace(t *testing.T) {
	n := 6
	ct := sparse.NewTriplet(n, n)
	gt := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		ct.Add(i, i, 1)
		gt.Add(i, i, float64(i+1))
	}
	cm, gm := ct.ToCSC(), gt.ToCSC()
	_, inv, _ := buildOps(t, cm, gm, 0.1)
	v := make([]float64, n)
	v[2] = 3.0 // eigenvector with A = -G, eigenvalue -3
	sub, err := Lanczos(inv, v, []float64{0.5}, Options{MaxDim: 8, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Dim() != 1 {
		t.Fatalf("dim = %d, want 1 (happy breakdown)", sub.Dim())
	}
	got := make([]float64, n)
	if err := sub.EvalExp(0.5, got); err != nil {
		t.Fatal(err)
	}
	want := 3 * math.Exp(-1.5)
	if math.Abs(got[2]-want) > 1e-9 {
		t.Errorf("EvalExp = %v, want %v at index 2", got[2], want)
	}
	if est, err := sub.ErrEstimate(0.5); err != nil || est > 1e-12 {
		t.Errorf("invariant subspace estimate = %g (%v), want ~0", est, err)
	}
}

// TestLanczosFullSpace drives the recurrence to m == n on a well-conditioned
// system (C = I, distinct diagonal G, full-support start vector): the
// projection is then a similarity and the answer exact.
func TestLanczosFullSpace(t *testing.T) {
	n := 5
	ct := sparse.NewTriplet(n, n)
	gt := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		ct.Add(i, i, 1)
		gt.Add(i, i, float64(i+1))
	}
	cm, gm := ct.ToCSC(), gt.ToCSC()
	_, inv, _ := buildOps(t, cm, gm, 0.1)
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 + float64(i)
	}
	sub, err := Lanczos(inv, v, []float64{0.1}, Options{MaxDim: n, Tol: 1e-30, ForceDim: true})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Dim() != n {
		t.Fatalf("dim = %d, want %d", sub.Dim(), n)
	}
	h := 0.3
	got := make([]float64, n)
	if err := sub.EvalExp(h, got); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := v[i] * math.Exp(-float64(i+1)*h) // A = -G diagonal
		if math.Abs(got[i]-want) > 1e-10*(1+math.Abs(want)) {
			t.Errorf("full-space component %d = %g, want %g", i, got[i], want)
		}
	}
}

func TestLanczosZeroVector(t *testing.T) {
	cm, gm := rcSystem(5, 10, 6)
	_, inv, _ := buildOps(t, cm, gm, 1e-13)
	sub, err := Lanczos(inv, make([]float64, 5), []float64{1e-12}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dst := []float64{1, 1, 1, 1, 1}
	if err := sub.EvalExp(1e-12, dst); err != nil {
		t.Fatal(err)
	}
	for _, v := range dst {
		if v != 0 {
			t.Fatal("expm of zero vector not zero")
		}
	}
	if est, _ := sub.ErrEstimate(1e-12); est != 0 {
		t.Fatal("zero vector error estimate not zero")
	}
}

// TestGenerateRouting: auto picks Lanczos exactly when the operator and
// start vector qualify, and MethodArnoldi pins the reference path.
func TestGenerateRouting(t *testing.T) {
	n := 16
	cm, gm := rcSystem(n, 1e3, 7)
	_, inv, rat := buildOps(t, cm, gm, 1e-13)
	v := randVec(n, 8)

	sub, err := Generate(inv, v, []float64{1e-12}, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Lanczos() || inv.Count.Lanczos != 1 {
		t.Error("auto mode did not take the Lanczos path on a symmetric inverted operator")
	}
	sub, err = Generate(inv, v, []float64{1e-12}, Options{Tol: 1e-8, Method: MethodArnoldi})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Lanczos() {
		t.Error("MethodArnoldi still produced a Lanczos subspace")
	}

	// Nonzero segment inputs break augmented-mode symmetry: auto must fall
	// back to Arnoldi.
	bu := make([]float64, n)
	bu[0] = 1
	rat.SetSegment(bu, make([]float64, n))
	va := padAug(v)
	if rat.SymmetricFor(va) {
		t.Fatal("rational op with inputs should not be symmetric-eligible")
	}
	sub, err = Generate(rat, va, []float64{1e-12}, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Lanczos() {
		t.Error("auto mode used Lanczos on a non-symmetric configuration")
	}
	rat.ClearSegment()
	if !rat.SymmetricFor(va) {
		t.Error("ClearSegment should restore symmetric eligibility")
	}

	// An excited auxiliary chain also disqualifies the fast path.
	va[n+1] = 1
	if rat.SymmetricFor(va) {
		t.Error("start vector with active auxiliary chain should not be eligible")
	}

	// The override forces the fast path off regardless of structure.
	inv.SetSymmetric(false)
	if inv.SymmetricFor(v) {
		t.Error("SetSymmetric(false) did not disable the fast path")
	}
}

// TestLanczosSteadyStateZeroAlloc is the arena contract: with a shared
// workspace, regenerating subspaces spot after spot allocates nothing.
func TestLanczosSteadyStateZeroAlloc(t *testing.T) {
	n := 40
	cm, gm := rcSystem(n, 1e5, 21)
	factG, err := sparse.Factor(gm, sparse.FactorAuto, sparse.OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	op := NewInvertedOp(factG, cm, gm, nil) // nil counters: Dims growth is the caller's business
	v := randVec(n, 22)
	hCheck := []float64{1e-12}
	ws := DefaultWorkspaces.Get()
	defer DefaultWorkspaces.Put(ws)
	opts := Options{MaxDim: 30, Tol: 1e-9, Workspace: ws}
	dst := make([]float64, n)
	run := func() {
		sub, err := Lanczos(op, v, hCheck, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.EvalExp(5e-13, dst); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the arena
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Errorf("steady-state Lanczos generation allocates %.1f objects/run, want 0", allocs)
	}
}

// TestLanczosReorthogonalizeAgrees: the full-sweep option must not change
// the answer beyond roundoff on a well-behaved system.
func TestLanczosReorthogonalizeAgrees(t *testing.T) {
	n := 32
	cm, gm := rcSystem(n, 1e8, 31)
	_, inv, _ := buildOps(t, cm, gm, 1e-13)
	v := randVec(n, 32)
	h := 1e-11
	a, err := Lanczos(inv, v, []float64{h}, Options{MaxDim: n, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lanczos(inv, v, []float64{h}, Options{MaxDim: n, Tol: 1e-10, Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	ga := make([]float64, n)
	gb := make([]float64, n)
	if err := a.EvalExp(h, ga); err != nil {
		t.Fatal(err)
	}
	if err := b.EvalExp(h, gb); err != nil {
		t.Fatal(err)
	}
	var scale float64 = 1
	for i := range ga {
		if v := math.Abs(gb[i]); v > scale {
			scale = v
		}
	}
	for i := range ga {
		if math.Abs(ga[i]-gb[i]) > 1e-7*scale {
			t.Errorf("guarded vs full reorthogonalization differ at %d: %g vs %g", i, ga[i], gb[i])
		}
	}
}
