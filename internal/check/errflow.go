package check

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The errflow analyzer forbids discarded errors in the binaries (cmd/...)
// and the HTTP serving tier (internal/serve): expression statements and
// deferred calls whose results include an error, and assignments that bind
// an error result to the blank identifier. Print-family fmt calls and
// writes to in-memory buffers (strings.Builder, bytes.Buffer) are allowed,
// matching errcheck convention. //matex:err-ok(reason) waives one line.
func runErrFlow(pkg *Pkg, ann *annotations, report func(pos token.Pos, analyzer, msg string)) {
	if !errFlowScope(pkg.RelPath) {
		return
	}
	c := &errChecker{pkg: pkg, ann: ann, report: report}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkBody(fd.Body)
			}
		}
	}
}

func errFlowScope(relPath string) bool {
	return relPath == "internal/serve" || relPath == "cmd" || strings.HasPrefix(relPath, "cmd/")
}

type errChecker struct {
	pkg    *Pkg
	ann    *annotations
	report func(pos token.Pos, analyzer, msg string)
}

// checkBody walks one function body, including nested literals (HTTP
// handlers are often closures).
func (c *errChecker) checkBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				c.checkDiscardedCall(call, "")
			}
		case *ast.DeferStmt:
			c.checkDiscardedCall(n.Call, "deferred ")
		case *ast.GoStmt:
			c.checkDiscardedCall(n.Call, "go ")
		case *ast.AssignStmt:
			c.checkBlankAssign(n)
		}
		return true
	})
}

// checkDiscardedCall flags a call statement whose results include an error.
func (c *errChecker) checkDiscardedCall(call *ast.CallExpr, kind string) {
	tv, ok := c.pkg.Info.Types[call]
	if !ok || !resultsIncludeError(tv.Type) {
		return
	}
	if c.allowed(call) || c.ann.lineHas(call.Pos(), dirErrOK) {
		return
	}
	c.report(call.Pos(), "errflow",
		fmt.Sprintf("%scall discards error result of %s", kind, calleeDesc(c.pkg, call)))
}

// checkBlankAssign flags `_ = f()` and `v, _ := f()` forms that blank an
// error-typed result.
func (c *errChecker) checkBlankAssign(as *ast.AssignStmt) {
	// Single call, multiple results: match tuple positions.
	if len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok && len(as.Lhs) > 1 {
			tv, ok := c.pkg.Info.Types[call]
			if !ok {
				return
			}
			tuple, ok := tv.Type.(*types.Tuple)
			if !ok || tuple.Len() != len(as.Lhs) {
				return
			}
			for i, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" && isErrorType(tuple.At(i).Type()) {
					if !c.allowed(call) && !c.ann.lineHas(as.Pos(), dirErrOK) {
						c.report(as.Pos(), "errflow",
							fmt.Sprintf("error result of %s assigned to blank identifier", calleeDesc(c.pkg, call)))
					}
					return
				}
			}
			return
		}
	}
	// Parallel assignment: _ = expr with error type.
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || i >= len(as.Rhs) {
			continue
		}
		tv, ok := c.pkg.Info.Types[as.Rhs[i]]
		if !ok || !isErrorType(tv.Type) {
			continue
		}
		if call, ok := as.Rhs[i].(*ast.CallExpr); ok && c.allowed(call) {
			continue
		}
		if !c.ann.lineHas(as.Pos(), dirErrOK) {
			c.report(as.Pos(), "errflow", "error value assigned to blank identifier")
		}
	}
}

// allowed reports whether the callee is on the errcheck-style allowlist.
func (c *errChecker) allowed(call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := c.pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		if strings.HasPrefix(fn.Name(), "Print") {
			return true // Print/Printf/Println to stdout
		}
		// Fprint* is allowed only when the writer is statically the
		// process console; a file or socket writer keeps its error check.
		if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
			if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
				if x, ok := sel.X.(*ast.Ident); ok && x.Name == "os" &&
					(sel.Sel.Name == "Stderr" || sel.Sel.Name == "Stdout") {
					return true
				}
			}
		}
		return false
	}
	switch receiverTypeName(fn) {
	case "strings.Builder", "bytes.Buffer":
		return true // documented to never return a non-nil error
	}
	return false
}

// resultsIncludeError reports whether a call result type contains an error.
func resultsIncludeError(t types.Type) bool {
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeDesc names a call target for diagnostics.
func calleeDesc(pkg *Pkg, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
