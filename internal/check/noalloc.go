package check

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The noalloc analyzer enforces //matex:noalloc: an annotated function must
// not execute allocating constructs. Construct checks are intra-procedural;
// call sites are resolved through go/types and handled by trust class:
// same-package callees that are themselves annotated are trusted (they are
// verified independently), unannotated same-package callees are scanned
// recursively (memoized, cycle-tolerant), module-internal cross-package and
// standard-library callees are trusted except the banned allocating
// packages (fmt, errors). Individual findings are waived line-by-line with
// //matex:alloc-ok(reason) — the waiver is honored inside recursively
// scanned callees too, so grow-path helpers need only the line waiver.

// bannedCallPkgs are packages whose every call is an allocation (or worse,
// formatting) and must never appear in a hot path.
var bannedCallPkgs = map[string]bool{"fmt": true, "errors": true}

const maxVerifyDepth = 20

type allocSite struct {
	pos  token.Pos
	what string
}

type noallocChecker struct {
	pkg     *Pkg
	ann     *annotations
	report  func(pos token.Pos, analyzer, msg string)
	modPath string
	decls   map[*types.Func]*ast.FuncDecl
	// verdicts memoizes the unwaived allocation sites of unannotated
	// same-package functions; inProgress breaks recursion cycles.
	verdicts   map[*types.Func][]allocSite
	inProgress map[*types.Func]bool
}

func runNoalloc(pkg *Pkg, ann *annotations, report func(pos token.Pos, analyzer, msg string)) {
	c := &noallocChecker{
		pkg:        pkg,
		ann:        ann,
		report:     report,
		modPath:    strings.TrimSuffix(pkg.Path, "/"+pkg.RelPath),
		decls:      map[*types.Func]*ast.FuncDecl{},
		verdicts:   map[*types.Func][]allocSite{},
		inProgress: map[*types.Func]bool{},
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					c.decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !ann.funcHas(fd, dirNoalloc) {
				continue
			}
			if fd.Body == nil {
				continue
			}
			for _, s := range c.scanFunc(fd, 0) {
				report(s.pos, "noalloc", s.what)
			}
		}
	}
}

// scanFunc returns the unwaived allocation sites of one function body.
func (c *noallocChecker) scanFunc(fd *ast.FuncDecl, depth int) []allocSite {
	var sites []allocSite
	add := func(pos token.Pos, format string, args ...any) {
		if !c.ann.lineHas(pos, dirAllocOK) {
			sites = append(sites, allocSite{pos, fmt.Sprintf(format, args...)})
		}
	}
	info := c.pkg.Info
	// calledFuns records expressions used as call targets, so method-value
	// selectors (which allocate a bound-method closure) can be told apart
	// from plain method calls.
	calledFuns := map[ast.Expr]bool{}
	// valueLits records struct/array composite literals assigned by value
	// directly to variables: those have stack semantics and do not allocate
	// (slice and map literals always do, and &T{} escapes analysis here).
	valueLits := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			if cl, ok := rhs.(*ast.CompositeLit); ok {
				if tv, ok := info.Types[cl]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Struct, *types.Array:
						valueLits[cl] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			add(n.Pos(), "function literal allocates a closure in noalloc function %s", fd.Name.Name)
			return false
		case *ast.CompositeLit:
			if valueLits[n] {
				return true // stack value; nested literals still checked
			}
			add(n.Pos(), "composite literal in noalloc function %s", fd.Name.Name)
			return false
		case *ast.GoStmt:
			add(n.Pos(), "go statement allocates in noalloc function %s", fd.Name.Name)
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						add(n.Pos(), "string concatenation allocates in noalloc function %s", fd.Name.Name)
					}
				}
			}
			return true
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal && !calledFuns[n] {
				add(n.Pos(), "method value allocates a bound-method closure in noalloc function %s", fd.Name.Name)
			}
			return true
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			calledFuns[fun] = true
			c.checkCall(fd, n, fun, depth, add)
			return true
		}
		return true
	})
	return sites
}

func (c *noallocChecker) checkCall(fd *ast.FuncDecl, call *ast.CallExpr, fun ast.Expr, depth int, add func(pos token.Pos, format string, args ...any)) {
	info := c.pkg.Info
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		c.checkConversion(fd, call, tv.Type, add)
		return
	}
	var obj types.Object
	switch fun := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.FuncLit:
		return // the literal itself is already flagged
	}
	switch obj := obj.(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make", "new":
			add(call.Pos(), "%s in noalloc function %s", obj.Name(), fd.Name.Name)
		case "append":
			add(call.Pos(), "append may grow in noalloc function %s", fd.Name.Name)
		}
		return
	case *types.Func:
		sig, _ := obj.Type().(*types.Signature)
		if sig != nil {
			c.checkBoxing(fd, call, sig, obj.Name(), add)
		}
		c.checkCallee(fd, call, obj, depth, add)
		return
	case nil, *types.Var:
		add(call.Pos(), "indirect call (cannot verify allocations) in noalloc function %s", fd.Name.Name)
		return
	}
}

// checkCallee applies the trust classes to a resolved static callee.
func (c *noallocChecker) checkCallee(fd *ast.FuncDecl, call *ast.CallExpr, fn *types.Func, depth int, add func(pos token.Pos, format string, args ...any)) {
	pkg := fn.Pkg()
	if pkg == nil {
		return // universe scope (error.Error): trusted
	}
	if pkg == c.pkg.Types {
		decl := c.decls[fn]
		if decl == nil {
			return // no source (embedded promotion): trusted
		}
		if c.ann.funcHas(decl, dirNoalloc) {
			return // verified independently
		}
		if sites := c.verify(fn, decl, depth+1); len(sites) > 0 {
			p := c.pkg.Fset.Position(sites[0].pos)
			add(call.Pos(), "calls unannotated %s which allocates: %s (%s:%d)",
				fn.Name(), sites[0].what, p.Filename, p.Line)
		}
		return
	}
	path := pkg.Path()
	if path == c.modPath || strings.HasPrefix(path, c.modPath+"/") {
		return // module-internal cross-package: trusted (annotate there)
	}
	if bannedCallPkgs[path] {
		add(call.Pos(), "call to %s.%s in noalloc function %s", path, fn.Name(), fd.Name.Name)
	}
}

// verify recursively scans an unannotated same-package callee, honoring its
// alloc-ok line waivers, and memoizes the verdict.
func (c *noallocChecker) verify(fn *types.Func, decl *ast.FuncDecl, depth int) []allocSite {
	if sites, ok := c.verdicts[fn]; ok {
		return sites
	}
	if c.inProgress[fn] || depth > maxVerifyDepth || decl.Body == nil {
		return nil
	}
	c.inProgress[fn] = true
	sites := c.scanFunc(decl, depth)
	delete(c.inProgress, fn)
	c.verdicts[fn] = sites
	return sites
}

// checkConversion flags conversions that allocate: boxing a non-pointer-
// shaped value into an interface, and string <-> byte/rune slice copies.
func (c *noallocChecker) checkConversion(fd *ast.FuncDecl, call *ast.CallExpr, target types.Type, add func(pos token.Pos, format string, args ...any)) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := c.pkg.Info.Types[call.Args[0]]
	if !ok || tv.IsNil() || tv.Value != nil {
		return
	}
	if types.IsInterface(target) && !types.IsInterface(tv.Type) && !pointerShaped(tv.Type) {
		add(call.Pos(), "conversion boxes %s into %s in noalloc function %s", tv.Type, target, fd.Name.Name)
		return
	}
	if isString(target) != isString(tv.Type) && (isByteOrRuneSlice(target) || isByteOrRuneSlice(tv.Type)) {
		add(call.Pos(), "string conversion allocates in noalloc function %s", fd.Name.Name)
	}
}

// checkBoxing flags non-pointer-shaped, non-constant arguments passed to
// interface-typed parameters: each such argument heap-allocates the boxed
// value. panic is exempt (terminal path).
func (c *noallocChecker) checkBoxing(fd *ast.FuncDecl, call *ast.CallExpr, sig *types.Signature, name string, add func(pos token.Pos, format string, args ...any)) {
	params := sig.Params()
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			break // xs... passes the slice itself: no per-element boxing
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		tv, ok := c.pkg.Info.Types[arg]
		if !ok || tv.IsNil() || tv.Value != nil || types.IsInterface(tv.Type) || pointerShaped(tv.Type) {
			continue
		}
		add(arg.Pos(), "argument boxes %s into interface parameter of %s in noalloc function %s",
			tv.Type, name, fd.Name.Name)
	}
}

// pointerShaped reports whether values of t fit the interface data word
// without allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
