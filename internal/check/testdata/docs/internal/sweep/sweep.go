package sweep // want "package sweep has no package comment"

// Variant is documented.
type Variant struct{}

func Run() {} // want "exported function Run has no doc comment"
