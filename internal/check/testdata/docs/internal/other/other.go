package other

// This package is outside the docs analyzer's scope: undocumented exports
// here must stay silent. (A want-comment elsewhere keeps the fixture armed.)
func Undocumented() {}

type Loose struct{}
