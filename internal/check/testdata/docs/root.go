// Package facade is the fixture module root: the docs analyzer must demand
// godoc on every exported symbol here.
package facade

// Documented is fine.
func Documented() {}

func Undocumented() {} // want "exported function Undocumented has no doc comment"

func internalHelper() {}

// Grouped aliases: each exported spec needs its own comment.
type (
	// Good carries a doc comment.
	Good struct{}

	Bad struct{} // want "exported type Bad has no doc comment"
)

// Modes enumerate something; the group comment covers every member.
const (
	ModeA = iota
	ModeB
)

var Budget = 42 // want "exported var Budget has no doc comment"

// Widget is documented, but its exported method is not.
type Widget struct{}

func (Widget) Spin() {} // want "exported method Spin has no doc comment"

// reset is unexported; no comment required.
func (Widget) reset() {}
