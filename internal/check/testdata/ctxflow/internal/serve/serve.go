// Package serve is a ctxflow-analyzer fixture: the directory sits at
// internal/serve, the request-path scope the analyzer polices.
package serve

import "context"

// Wait blocks on a channel without accepting a context.
func Wait(ch chan int) int { // want "has no context.Context parameter"
	return <-ch
}

// Detach manufactures a root context inside a request path.
func Detach() context.Context {
	return context.Background() // want "context.Background"
}

// WaitCtx is the compliant form: the context arrives as a parameter.
func WaitCtx(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Poll is non-blocking: its select has a default clause.
func Poll(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

// Drain is exempted with a reason.
//
//matex:ctx-exempt(fixture: shutdown-path helper that must outlive requests)
func Drain(ch chan int) {
	for {
		if _, ok := <-ch; !ok {
			return
		}
	}
}

// Root is a sanctioned context root.
//
//matex:ctx-root(fixture: server lifecycle root)
func Root() context.Context {
	return context.Background()
}

// helper is unexported: the entry-point rule applies to exported functions.
func helper(ch chan int) int {
	return <-ch
}
