// Package kernel is a noalloc-analyzer fixture: each `want` comment marks a
// line the analyzer must flag with a message containing the quoted text.
package kernel

import "fmt"

// BadMake allocates directly.
//
//matex:noalloc
func BadMake(n int) []float64 {
	return make([]float64, n) // want "make in noalloc function BadMake"
}

// BadFmt calls a banned formatting package and boxes an argument.
//
//matex:noalloc
func BadFmt(n int) string {
	return fmt.Sprintf("%d", n) // want "call to fmt.Sprintf" // want "argument boxes int"
}

// BadClosure builds a closure per call.
//
//matex:noalloc
func BadClosure(scale float64) func(float64) float64 {
	return func(a float64) float64 { return a * scale } // want "function literal allocates a closure"
}

// BadIndirect flags a call the analyzer cannot resolve.
//
//matex:noalloc
func BadIndirect(f func()) {
	f() // want "indirect call"
}

// BadHelper calls an unannotated same-package helper that allocates.
//
//matex:noalloc
func BadHelper(n int) []int {
	return helper(n) // want "calls unannotated helper which allocates"
}

func helper(n int) []int {
	return make([]int, n)
}

// Clean touches only caller-provided memory: in-place scale plus a running
// sum, the shape of the project's solver kernels.
//
//matex:noalloc
func Clean(dst, src []float64, alpha float64) float64 {
	s := 0.0
	for i := range dst {
		dst[i] = alpha * src[i]
		s += dst[i]
	}
	return s
}

// Waived allocates on a grow path with a reasoned line waiver.
//
//matex:noalloc
func Waived(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n) //matex:alloc-ok(grow path exercised by the fixture)
	}
	return buf[:n]
}

// Unannotated may allocate freely; the analyzer must stay quiet here.
func Unannotated(n int) []float64 {
	out := make([]float64, n)
	return out
}
