// Package sparse is a poolhygiene-analyzer fixture. The directory name
// matters: the getWork acquire spec keys on a package path ending in
// "sparse", mirroring the real solver package.
package sparse

import "sync"

var bufPool = sync.Pool{New: func() any { s := make([]float64, 0); return &s }}

// getWork mirrors the solver's pooled-workspace acquire.
func getWork(n int) *[]float64 {
	w := bufPool.Get().(*[]float64)
	if cap(*w) < n {
		*w = make([]float64, n)
	}
	*w = (*w)[:n]
	return w
}

// LeakOnEarlyReturn acquires but misses the release on the error path.
func LeakOnEarlyReturn(n int) float64 {
	w := bufPool.Get().(*[]float64) // want "not released on all return paths"
	if n <= 0 {
		return 0
	}
	s := 0.0
	for _, v := range *w {
		s += v
	}
	bufPool.Put(w)
	return s
}

// LeakGetWork leaks through the project-specific acquire spec. The length
// is copied out so the return does not mention the token (mentioning it
// would read as an ownership transfer).
func LeakGetWork(n int) int {
	w := getWork(n) // want "not released on all return paths"
	m := len(*w)
	return m
}

// DiscardedToken drops the acquire result outright.
func DiscardedToken() {
	bufPool.Get() // want "discards its result"
}

// CleanDefer releases on every path through a deferred Put.
func CleanDefer(n int) float64 {
	w := getWork(n)
	defer bufPool.Put(w)
	if n == 1 {
		return 1
	}
	s := 0.0
	for _, v := range *w {
		s += v
	}
	return s
}

// CleanBranches releases explicitly on each return path.
func CleanBranches(n int) float64 {
	w := getWork(n)
	if n <= 0 {
		bufPool.Put(w)
		return 0
	}
	s := float64(len(*w))
	bufPool.Put(w)
	return s
}

// CleanTransfer hands the token to its caller.
func CleanTransfer(n int) *[]float64 {
	w := getWork(n)
	return w
}

// WaivedDrop documents an intentional leak.
func WaivedDrop() {
	w := bufPool.Get().(*[]float64) //matex:pool-drop(fixture: intentional drop mirroring race-mode pools)
	_ = w
}
