// Command tool is an errflow-analyzer fixture: a cmd/ binary exercising the
// discarded-error forms the analyzer must flag and the allowlist it must
// honor.
package main

import (
	"fmt"
	"os"
	"strings"
)

func work() error { return nil }

func measure() (int, error) { return 0, nil }

func main() {
	work() // want "call discards error result of work"

	_ = work() // want "error value assigned to blank identifier"

	n, _ := measure() // want "error result of measure assigned to blank identifier"

	defer work() // want "deferred call discards error result of work"

	go work() // want "go call discards error result of work"

	// Allowlist: console printing never carries a recoverable error.
	fmt.Println("n =", n)
	fmt.Fprintln(os.Stderr, "usage: tool")

	// Allowlist: in-memory builders are documented never to fail.
	var sb strings.Builder
	sb.WriteString("ok")

	// A reasoned waiver silences one line.
	work() //matex:err-ok(fixture: demonstrating the waiver form)

	// Checked errors are the compliant form.
	if err := work(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// handler shows the closure walk: errors inside nested literals still count.
func handler() func() {
	return func() {
		work() // want "call discards error result of work"
	}
}
