package check

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The ctxflow analyzer enforces context threading in the serving tier
// (internal/serve and internal/dist):
//
//  1. No context.Background() or context.TODO() calls outside functions
//     annotated //matex:ctx-root(reason) — request paths must derive their
//     contexts from a caller-provided one.
//  2. Exported functions whose bodies block directly (channel sends and
//     receives, selects without a default clause, Wait/Accept calls) must
//     accept a context.Context parameter or carry
//     //matex:ctx-exempt(reason). Blocking inside nested function literals
//     (worker goroutines) does not count against the enclosing function.
func runCtxFlow(pkg *Pkg, ann *annotations, report func(pos token.Pos, analyzer, msg string)) {
	if !ctxFlowScope(pkg.RelPath) {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxRoots(pkg, ann, fd, report)
			if fd.Name.IsExported() && !ann.funcHas(fd, dirCtxExempt) {
				if pos, what := firstBlockingOp(fd.Body); pos.IsValid() && !hasCtxParam(pkg, fd) {
					report(fd.Pos(), "ctxflow",
						fmt.Sprintf("exported %s blocks (%s) but has no context.Context parameter", fd.Name.Name, what))
				}
			}
		}
	}
}

// ctxFlowScope reports whether the package (by module-relative path) is in
// the serving tier the analyzer covers.
func ctxFlowScope(relPath string) bool {
	return relPath == "internal/serve" || relPath == "internal/dist"
}

// checkCtxRoots flags context.Background()/TODO() calls in non-ctx-root
// functions.
func checkCtxRoots(pkg *Pkg, ann *annotations, fd *ast.FuncDecl, report func(pos token.Pos, analyzer, msg string)) {
	isRoot := ann.funcHas(fd, dirCtxRoot)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if name := fn.Name(); name == "Background" || name == "TODO" {
			if !isRoot && !ann.lineHas(call.Pos(), dirCtxRoot) {
				report(call.Pos(), "ctxflow",
					fmt.Sprintf("context.%s() in %s: thread a caller context or annotate //matex:ctx-root(reason)", name, fd.Name.Name))
			}
		}
		return true
	})
}

// firstBlockingOp returns the position and description of the first
// directly-blocking operation in a function body, skipping nested function
// literals.
func firstBlockingOp(body *ast.BlockStmt) (token.Pos, string) {
	var pos token.Pos
	what := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pos, what = n.Pos(), "channel receive"
			}
		case *ast.SendStmt:
			pos, what = n.Pos(), "channel send"
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				return false // non-blocking poll; don't descend into comms
			}
			pos, what = n.Pos(), "select without default"
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if name := sel.Sel.Name; name == "Wait" || name == "Accept" {
					pos, what = n.Pos(), name+" call"
				}
			}
		}
		return !pos.IsValid()
	})
	return pos, what
}

// hasCtxParam reports whether any parameter of the function has type
// context.Context.
func hasCtxParam(pkg *Pkg, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pkg.Info.Types[field.Type]
		if !ok {
			continue
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			return true
		}
	}
	return false
}
