package check

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //matex: directive vocabulary. Function-level directives live in the
// function's doc comment (or on the line directly above an undocumented
// function); line-level waivers sit on the flagged line itself or on the
// line directly above it. Every waiver carries a parenthesized reason so
// the tree records why each finding is intentional.
const (
	dirNoalloc   = "noalloc"    // function must stay allocation-free
	dirAllocOK   = "alloc-ok"   // waive one noalloc finding (grow paths, cold error paths)
	dirPoolDrop  = "pool-drop"  // waive one poolhygiene finding (intentional drop)
	dirCtxRoot   = "ctx-root"   // function may create root contexts
	dirCtxExempt = "ctx-exempt" // exported blocking function intentionally has no ctx
	dirErrOK     = "err-ok"     // waive one errflow finding
)

// directive is one parsed //matex: comment.
type directive struct {
	Name   string
	Reason string
	Pos    token.Pos
}

// needsReason reports whether the directive form requires a parenthesized
// reason.
func needsReason(name string) bool {
	switch name {
	case dirAllocOK, dirPoolDrop, dirCtxRoot, dirCtxExempt, dirErrOK:
		return true
	}
	return false
}

func knownDirective(name string) bool {
	switch name {
	case dirNoalloc, dirAllocOK, dirPoolDrop, dirCtxRoot, dirCtxExempt, dirErrOK:
		return true
	}
	return false
}

// annotations holds the parsed directives of one package, indexed for the
// two lookup styles the analyzers need.
type annotations struct {
	fset *token.FileSet
	// byLine maps a file/line pair to the directives covering that line: a
	// directive covers its own line (trailing comment) and the next line
	// (comment-above form).
	byLine map[lineKey][]directive
	// funcDirs maps a function declaration to the directives of its doc
	// comment group.
	funcDirs map[*ast.FuncDecl][]directive
}

type lineKey struct {
	file string
	line int
}

// parseDirective parses one comment line, returning ok=false when it is not
// a //matex: directive. Malformed directives (unknown name, missing reason)
// are reported through the malformed callback.
func parseDirective(text string, pos token.Pos, malformed func(pos token.Pos, msg string)) (directive, bool) {
	rest, ok := strings.CutPrefix(text, "//matex:")
	if !ok {
		return directive{}, false
	}
	rest = strings.TrimSpace(rest)
	name := rest
	reason := ""
	if i := strings.IndexByte(rest, '('); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, ')')
		if j <= i {
			malformed(pos, "unterminated reason in //matex:"+rest)
			return directive{}, false
		}
		reason = strings.TrimSpace(rest[i+1 : j])
	}
	if !knownDirective(name) {
		malformed(pos, "unknown directive //matex:"+name)
		return directive{}, false
	}
	if needsReason(name) && reason == "" {
		malformed(pos, "//matex:"+name+" requires a (reason)")
		return directive{}, false
	}
	return directive{Name: name, Reason: reason, Pos: pos}, true
}

// collectAnnotations parses every //matex: directive in the package. Each
// malformed directive is reported as a finding so typos fail the run
// instead of silently waiving nothing.
func collectAnnotations(pkg *Pkg, report func(pos token.Pos, analyzer, msg string)) *annotations {
	a := &annotations{
		fset:     pkg.Fset,
		byLine:   map[lineKey][]directive{},
		funcDirs: map[*ast.FuncDecl][]directive{},
	}
	malformed := func(pos token.Pos, msg string) { report(pos, "annot", msg) }
	for _, f := range pkg.Files {
		fileName := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text, c.Pos(), malformed)
				if !ok {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				a.byLine[lineKey{fileName, line}] = append(a.byLine[lineKey{fileName, line}], d)
				a.byLine[lineKey{fileName, line + 1}] = append(a.byLine[lineKey{fileName, line + 1}], d)
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if d, ok := parseDirective(c.Text, c.Pos(), func(token.Pos, string) {}); ok {
					a.funcDirs[fd] = append(a.funcDirs[fd], d)
				}
			}
		}
	}
	return a
}

// funcHas reports whether the function carries the named directive, either
// in its doc comment or on its opening line.
func (a *annotations) funcHas(fd *ast.FuncDecl, name string) bool {
	for _, d := range a.funcDirs[fd] {
		if d.Name == name {
			return true
		}
	}
	return a.lineHas(fd.Pos(), name)
}

// lineHas reports whether the source line of pos is covered by the named
// directive (trailing comment or comment-above form).
func (a *annotations) lineHas(pos token.Pos, name string) bool {
	p := a.fset.Position(pos)
	for _, d := range a.byLine[lineKey{p.Filename, p.Line}] {
		if d.Name == name {
			return true
		}
	}
	return false
}
