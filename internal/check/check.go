// Package check implements matexcheck, the project-invariant static
// analyzer suite: annotation-driven analyzers built on the standard
// library's go/ast, go/parser, and go/types packages (no external analysis
// framework). Five analyzers ship:
//
//   - noalloc: functions annotated //matex:noalloc must not contain
//     allocating constructs (make/new/append, composite and function
//     literals, interface boxing at call sites, fmt/errors calls), with
//     //matex:alloc-ok(reason) line waivers for grow paths and cold error
//     paths. Unannotated same-package callees are verified recursively.
//   - poolhygiene: every pool acquire (sync.Pool.Get, WorkspacePool.Get,
//     sparse's getWork/getG) must reach a matching release on every return
//     path, with //matex:pool-drop(reason) waivers for intentional drops.
//   - ctxflow: in internal/serve and internal/dist, no
//     context.Background()/TODO() outside //matex:ctx-root functions, and
//     exported blocking entry points must accept a context.Context or carry
//     //matex:ctx-exempt(reason).
//   - errflow: in cmd/ and internal/serve, no discarded errors, with
//     //matex:err-ok(reason) waivers.
//   - docs: the module-root facade package and internal/sweep must document
//     every exported symbol (per-spec comments inside type blocks; group
//     comments suffice for const/var enums) and carry a package comment.
//
// Malformed or unknown //matex: directives are themselves findings.
package check

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Msg)
}

// RunAll runs every analyzer over the loaded packages and returns the
// findings sorted by position.
func RunAll(pkgs []*Pkg) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		report := func(pos token.Pos, analyzer, msg string) {
			out = append(out, Finding{Pos: pkg.Fset.Position(pos), Analyzer: analyzer, Msg: msg})
		}
		ann := collectAnnotations(pkg, report)
		runNoalloc(pkg, ann, report)
		runPoolHygiene(pkg, ann, report)
		runCtxFlow(pkg, ann, report)
		runErrFlow(pkg, ann, report)
		runDocs(pkg, report)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}
