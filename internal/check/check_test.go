package check

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture trees under testdata/ are miniature modules: each is loaded with
// NewLoaderAt so module-relative scoping (internal/serve, cmd/...) works
// exactly as in the real repository. Every `// want "text"` comment marks a
// line that must produce a finding whose message contains the quoted text;
// lines without a want comment must stay silent. Both directions are
// asserted, so each tree is simultaneously the seeded-violation and the
// clean-code proof for its analyzer.

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type wantKey struct {
	file string
	line int
}

func collectWants(t *testing.T, root string) map[wantKey][]string {
	t.Helper()
	wants := map[wantKey][]string{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				k := wantKey{path, i + 1}
				wants[k] = append(wants[k], m[1])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func runFixture(t *testing.T, name string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoaderAt(root, "fix.example/"+name)
	pkgs, err := l.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s loaded no packages", name)
	}
	findings := RunAll(pkgs)
	wants := collectWants(t, root)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", name)
	}
	for _, f := range findings {
		k := wantKey{f.Pos.Filename, f.Pos.Line}
		matched := -1
		for i, w := range wants[k] {
			if strings.Contains(f.Msg, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	for k, subs := range wants {
		for _, w := range subs {
			t.Errorf("missing finding at %s:%d containing %q", k.file, k.line, w)
		}
	}
}

func TestAnalyzerFixtures(t *testing.T) {
	for _, name := range []string{"noalloc", "poolhygiene", "ctxflow", "errflow", "docs"} {
		t.Run(name, func(t *testing.T) { runFixture(t, name) })
	}
}

// TestSelfClean runs the full analyzer suite over this repository: the tree
// must stay finding-free (violations are either fixed or carry reasoned
// waivers). This is the same gate CI applies via cmd/matexcheck.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	findings := RunAll(pkgs)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
