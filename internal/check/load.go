package check

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Pkg is one loaded, parsed, and type-checked package of the module.
type Pkg struct {
	Dir     string // absolute directory
	RelPath string // slash-separated path relative to the module root ("" for root)
	Path    string // full import path
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader loads module packages with stdlib go/* machinery only: files are
// selected through go/build (so build-tag-gated files like the matexdebug
// layer resolve exactly as `go build` would), module-internal imports map
// onto repository directories, and standard-library imports go through the
// source importer. Packages are memoized by import path, so the whole tree
// type-checks each package once.
type Loader struct {
	RootDir string // absolute module root (directory containing go.mod)
	ModPath string // module path from go.mod

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Pkg // by import path
}

// NewLoader locates the module root at or above dir and prepares a loader.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("check: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("check: no module directive in %s/go.mod", root)
	}
	return NewLoaderAt(root, modPath), nil
}

// NewLoaderAt prepares a loader with an explicit root directory and module
// path, without consulting go.mod. The analyzer fixture tests use this to
// treat a testdata tree as its own miniature module.
func NewLoaderAt(root, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		RootDir: root,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    map[string]*Pkg{},
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadPatterns resolves the given patterns — "./...", "...", or directory
// paths relative to the module root — into loaded packages, sorted by
// import path.
func (l *Loader) LoadPatterns(patterns []string) ([]*Pkg, error) {
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		switch pat {
		case "./...", "...":
			dirs, err := l.walkModule()
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				dirSet[d] = true
			}
		default:
			pat = strings.TrimPrefix(pat, "./")
			dirSet[filepath.Join(l.RootDir, filepath.FromSlash(pat))] = true
		}
	}
	var pkgs []*Pkg
	for dir := range dirSet {
		p, err := l.LoadDir(dir)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// walkModule lists every directory under the module root that may hold a Go
// package, applying the go tool's skip rules (testdata, vendor, hidden and
// underscore-prefixed directories).
func (l *Loader) walkModule() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.RootDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.RootDir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// LoadDir loads, parses, and type-checks the package in dir (memoized).
func (l *Loader) LoadDir(dir string) (*Pkg, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.RootDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("check: %s is outside the module root %s", dir, l.RootDir)
	}
	relSlash := filepath.ToSlash(rel)
	if relSlash == "." {
		relSlash = ""
	}
	importPath := l.ModPath
	if relSlash != "" {
		importPath = l.ModPath + "/" + relSlash
	}
	return l.load(importPath, abs, relSlash)
}

func (l *Loader) load(importPath, dir, relSlash string) (*Pkg, error) {
	if p, ok := l.pkgs[importPath]; ok {
		if p == nil {
			return nil, fmt.Errorf("check: import cycle through %s", importPath)
		}
		return p, nil
	}
	l.pkgs[importPath] = nil // cycle marker
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		delete(l.pkgs, importPath)
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			delete(l.pkgs, importPath)
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		delete(l.pkgs, importPath)
		return nil, fmt.Errorf("check: type-checking %s: %w", importPath, err)
	}
	p := &Pkg{Dir: dir, RelPath: relSlash, Path: importPath, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = p
	return p, nil
}

// loaderImporter resolves module-internal import paths to repository
// directories and delegates everything else to the source importer.
type loaderImporter Loader

func (im *loaderImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, im.RootDir, 0)
}

func (im *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(im)
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		p, err := l.load(path, filepath.Join(l.RootDir, filepath.FromSlash(rel)), rel)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
