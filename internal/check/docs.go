package check

import (
	"fmt"
	"go/ast"
	"go/token"
)

// The docs analyzer enforces godoc coverage on the public surface: the
// module-root facade package (matex) and internal/sweep, whose Variant JSON
// schema is user-facing documentation. Every exported top-level declaration
// must carry a doc comment:
//
//   - exported functions and exported methods need a leading comment;
//   - each exported type spec needs its own comment, even inside a
//     parenthesized type ( ... ) block — the facade's alias blocks are the
//     package's reference documentation, so a group comment does not cover
//     the members;
//   - exported const and var specs are covered by either their own comment
//     or the enclosing group's comment (the usual enum idiom);
//   - the package itself needs a package comment.
func runDocs(pkg *Pkg, report func(pos token.Pos, analyzer, msg string)) {
	if !docsScope(pkg.RelPath) {
		return
	}
	hasPkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if exportedFunc(d) && d.Doc == nil {
					report(d.Pos(), "docs",
						fmt.Sprintf("exported %s %s has no doc comment", funcKind(d), d.Name.Name))
				}
			case *ast.GenDecl:
				checkGenDocs(d, report)
			}
		}
	}
	if !hasPkgDoc && len(pkg.Files) > 0 {
		report(pkg.Files[0].Package, "docs",
			fmt.Sprintf("package %s has no package comment", pkg.Types.Name()))
	}
}

// docsScope reports whether the package (by module-relative path) is part of
// the documented public surface.
func docsScope(relPath string) bool {
	return relPath == "" || relPath == "internal/sweep"
}

// exportedFunc reports whether the declaration is an exported function or an
// exported method on an exported receiver type.
func exportedFunc(d *ast.FuncDecl) bool {
	if !d.Name.IsExported() {
		return false
	}
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	recv := d.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if idx, ok := recv.(*ast.IndexExpr); ok {
		recv = idx.X
	}
	id, ok := recv.(*ast.Ident)
	return !ok || id.IsExported()
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// checkGenDocs flags undocumented exported specs of a const/var/type
// declaration.
func checkGenDocs(d *ast.GenDecl, report func(pos token.Pos, analyzer, msg string)) {
	if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
		return
	}
	grouped := d.Lparen.IsValid()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if s.Doc == nil && (grouped || d.Doc == nil) {
				report(s.Pos(), "docs",
					fmt.Sprintf("exported type %s has no doc comment", s.Name.Name))
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				if s.Doc == nil && d.Doc == nil {
					report(name.Pos(), "docs",
						fmt.Sprintf("exported %s %s has no doc comment", d.Tok, name.Name))
				}
			}
		}
	}
}
