package check

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The poolhygiene analyzer pairs pool acquires with releases on every
// return path. Recognized acquire/release pairs:
//
//	(*sync.Pool).Get             -> (*sync.Pool).Put
//	(*krylov.WorkspacePool).Get  -> (*krylov.WorkspacePool).Put
//	sparse.getWork               -> (*sync.Pool).Put   (solveWork.Put)
//	(*sparse.LDLT).getG          -> (*sparse.LDLT).putG (token: 2nd result)
//
// The acquired token must be bound to an identifier; a release is any call
// to the paired release function that mentions the token. The checker walks
// the statement tree path-sensitively: each return (and the implicit one at
// the end of the body) must see every live token released, deferred
// releases cover all paths, and returning the token itself transfers
// ownership to the caller. //matex:pool-drop(reason) on the acquire line
// waives tracking for intentional drops (e.g. race-mode pools).

// poolSpec describes one acquire form.
type poolSpec struct {
	tokenIdx int // which result of the acquire call is the release token
	release  releaseClass
}

type releaseClass int

const (
	relSyncPoolPut releaseClass = iota
	relWorkspacePut
	relPutG
)

func runPoolHygiene(pkg *Pkg, ann *annotations, report func(pos token.Pos, analyzer, msg string)) {
	c := &poolChecker{pkg: pkg, ann: ann, report: report}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
}

type poolChecker struct {
	pkg    *Pkg
	ann    *annotations
	report func(pos token.Pos, analyzer, msg string)
}

// token is one live pool acquisition being tracked through a function.
type poolToken struct {
	obj      types.Object // the bound identifier
	pos      token.Pos    // acquire position
	released bool
	spec     poolSpec
}

type poolState struct {
	tokens []*poolToken
}

func (s *poolState) clone() *poolState {
	c := &poolState{tokens: make([]*poolToken, len(s.tokens))}
	for i, t := range s.tokens {
		cp := *t
		c.tokens[i] = &cp
	}
	return c
}

func (c *poolChecker) checkFunc(fd *ast.FuncDecl) {
	st := &poolState{}
	terminated := c.walkStmts(fd.Body.List, st, fd)
	if !terminated {
		c.checkLive(st, fd.Body.Rbrace, fd)
	}
}

// checkLive reports every live unreleased token at a function exit.
func (c *poolChecker) checkLive(st *poolState, pos token.Pos, fd *ast.FuncDecl) {
	for _, t := range st.tokens {
		if !t.released {
			t.released = true // report once per path family
			c.report(t.pos, "poolhygiene",
				fmt.Sprintf("pool acquire in %s is not released on all return paths (missing %s)",
					fd.Name.Name, releaseName(t.spec.release)))
		}
	}
}

func releaseName(r releaseClass) string {
	switch r {
	case relWorkspacePut:
		return "WorkspacePool.Put"
	case relPutG:
		return "putG"
	}
	return "Pool.Put"
}

// walkStmts interprets a statement list, returning true when the list
// always terminates (return/panic) before falling through.
func (c *poolChecker) walkStmts(stmts []ast.Stmt, st *poolState, fd *ast.FuncDecl) bool {
	for _, s := range stmts {
		if c.walkStmt(s, st, fd) {
			return true
		}
	}
	return false
}

func (c *poolChecker) walkStmt(s ast.Stmt, st *poolState, fd *ast.FuncDecl) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.scanReleases(s, st)
		c.scanAcquire(s, st, fd)
	case *ast.ExprStmt:
		c.scanReleases(s, st)
		if isTerminalCall(s.X) {
			return true
		}
		c.scanUnboundAcquire(s.X, fd)
	case *ast.DeferStmt:
		// A deferred release covers every path from here on.
		c.scanReleases(s, st)
	case *ast.ReturnStmt:
		// Returning the token transfers ownership to the caller.
		for _, res := range s.Results {
			c.markMentioned(res, st)
		}
		c.checkLive(st, s.Pos(), fd)
		return true
	case *ast.BlockStmt:
		return c.walkStmts(s.List, st, fd)
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st, fd)
		}
		thenSt := st.clone()
		thenTerm := c.walkStmts(s.Body.List, thenSt, fd)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.walkStmt(s.Else, elseSt, fd)
		}
		merge(st, thenSt, thenTerm, elseSt, elseTerm)
		return thenTerm && elseTerm && s.Else != nil
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.walkBranches(s, st, fd)
	case *ast.ForStmt:
		c.walkLoop(s.Init, s.Body, st, fd)
	case *ast.RangeStmt:
		c.walkLoop(nil, s.Body, st, fd)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, st, fd)
	case *ast.BranchStmt:
		// break/continue/goto: stop interpreting this path conservatively.
		return true
	}
	return false
}

// walkLoop analyzes a loop body in isolation: acquisitions made inside one
// iteration must be released (or returned) within it; releases inside the
// body do not count for tokens acquired outside (the body may run zero
// times).
func (c *poolChecker) walkLoop(init ast.Stmt, body *ast.BlockStmt, st *poolState, fd *ast.FuncDecl) {
	if init != nil {
		c.walkStmt(init, st, fd)
	}
	inner := st.clone()
	// Outer tokens are considered already-handled inside the body scan so
	// only per-iteration acquisitions are checked there.
	for _, t := range inner.tokens {
		t.released = true
	}
	if !c.walkStmts(body.List, inner, fd) {
		c.checkLive(inner, body.Rbrace, fd)
	}
}

// walkBranches analyzes switch/type-switch/select bodies: each clause runs
// on a cloned state; the statement terminates only if every clause does and
// the construct is exhaustive (a default or, for select, any clause set).
func (c *poolChecker) walkBranches(s ast.Stmt, st *poolState, fd *ast.FuncDecl) bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st, fd)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st, fd)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	allTerm := true
	var branchStates []*poolState
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				c.walkStmt(cl.Comm, st, fd)
			}
			stmts = cl.Body
		}
		bst := st.clone()
		if !c.walkStmts(stmts, bst, fd) {
			allTerm = false
			branchStates = append(branchStates, bst)
		}
	}
	// Merge: a token is released after the construct only if every
	// continuing branch (and the implicit fall-through when no default
	// exists) released it.
	fallthroughPossible := !hasDefault
	if _, ok := s.(*ast.SelectStmt); ok {
		fallthroughPossible = false // select always takes a clause
	}
	for i, t := range st.tokens {
		rel := t.released
		if !rel {
			rel = !fallthroughPossible
			for _, bst := range branchStates {
				rel = rel && bst.tokens[i].released
			}
			if len(branchStates) == 0 && fallthroughPossible {
				rel = false
			}
		}
		t.released = rel
	}
	// New tokens acquired inside branches were checked within them.
	return allTerm && !fallthroughPossible && len(body.List) > 0
}

// merge folds the two branch states of an if back into st.
func merge(st, thenSt *poolState, thenTerm bool, elseSt *poolState, elseTerm bool) {
	base := len(st.tokens)
	for i, t := range st.tokens {
		rel := t.released
		if !rel {
			thenRel := thenTerm || thenSt.tokens[i].released
			elseRel := elseTerm || elseSt.tokens[i].released
			rel = thenRel && elseRel
		}
		t.released = rel
	}
	// Tokens acquired inside a non-terminating branch leak into the joined
	// path: keep tracking them, but only from branches that continue.
	if !thenTerm {
		st.tokens = append(st.tokens, thenSt.tokens[base:]...)
	}
	if !elseTerm {
		st.tokens = append(st.tokens, elseSt.tokens[base:]...)
	}
}

// scanAcquire registers pool acquisitions bound by an assignment.
func (c *poolChecker) scanAcquire(s *ast.AssignStmt, st *poolState, fd *ast.FuncDecl) {
	if len(s.Rhs) != 1 {
		return
	}
	call := unwrapCall(s.Rhs[0])
	if call == nil {
		return
	}
	spec, ok := c.acquireSpec(call)
	if !ok {
		return
	}
	if c.ann.lineHas(call.Pos(), dirPoolDrop) {
		return
	}
	if spec.tokenIdx >= len(s.Lhs) {
		c.report(call.Pos(), "poolhygiene",
			fmt.Sprintf("pool acquire in %s does not bind its release token", fd.Name.Name))
		return
	}
	id, ok := s.Lhs[spec.tokenIdx].(*ast.Ident)
	if !ok || id.Name == "_" {
		c.report(call.Pos(), "poolhygiene",
			fmt.Sprintf("pool acquire in %s discards its release token", fd.Name.Name))
		return
	}
	obj := c.pkg.Info.Defs[id]
	if obj == nil {
		obj = c.pkg.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	st.tokens = append(st.tokens, &poolToken{obj: obj, pos: call.Pos(), spec: spec})
}

// scanUnboundAcquire flags acquire calls whose result is discarded outright.
func (c *poolChecker) scanUnboundAcquire(e ast.Expr, fd *ast.FuncDecl) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	if _, isAcq := c.acquireSpec(call); isAcq && !c.ann.lineHas(call.Pos(), dirPoolDrop) {
		c.report(call.Pos(), "poolhygiene",
			fmt.Sprintf("pool acquire in %s discards its result", fd.Name.Name))
	}
}

// unwrapCall digs an acquire call out of type assertions and conversions:
// pool.Get().(*T), and the bare call itself.
func unwrapCall(e ast.Expr) *ast.CallExpr {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return e
	case *ast.TypeAssertExpr:
		return unwrapCall(e.X)
	}
	return nil
}

// acquireSpec classifies a call as a pool acquire.
func (c *poolChecker) acquireSpec(call *ast.CallExpr) (poolSpec, bool) {
	fn := c.calleeFunc(call)
	if fn == nil {
		return poolSpec{}, false
	}
	recv := receiverTypeName(fn)
	switch {
	case fn.Name() == "Get" && recv == "sync.Pool":
		return poolSpec{tokenIdx: 0, release: relSyncPoolPut}, true
	case fn.Name() == "Get" && strings.HasSuffix(recv, "WorkspacePool"):
		return poolSpec{tokenIdx: 0, release: relWorkspacePut}, true
	case fn.Name() == "getWork" && fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "sparse"):
		return poolSpec{tokenIdx: 0, release: relSyncPoolPut}, true
	case fn.Name() == "getG" && strings.HasSuffix(recv, "LDLT"):
		return poolSpec{tokenIdx: 1, release: relPutG}, true
	}
	return poolSpec{}, false
}

// isRelease classifies a call as a release of the given class.
func (c *poolChecker) isRelease(call *ast.CallExpr, r releaseClass) bool {
	fn := c.calleeFunc(call)
	if fn == nil {
		return false
	}
	recv := receiverTypeName(fn)
	switch r {
	case relSyncPoolPut:
		return fn.Name() == "Put" && recv == "sync.Pool"
	case relWorkspacePut:
		return fn.Name() == "Put" && strings.HasSuffix(recv, "WorkspacePool")
	case relPutG:
		return fn.Name() == "putG" && strings.HasSuffix(recv, "LDLT")
	}
	return false
}

func (c *poolChecker) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.pkg.Info.Uses[id].(*types.Func)
	return fn
}

// receiverTypeName returns the bare "pkg.Type" of a method receiver, with
// any pointer stripped, or "" for plain functions.
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if named.Obj().Pkg() == nil {
		return named.Obj().Name()
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name()
}

// scanReleases marks tokens released by any release call inside the
// statement (including deferred calls and closure bodies).
func (c *poolChecker) scanReleases(s ast.Stmt, st *poolState) {
	ast.Inspect(s, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, t := range st.tokens {
			if !t.released && c.isRelease(call, t.spec.release) && c.mentions(call.Args, t.obj) {
				t.released = true
			}
		}
		return true
	})
}

// markMentioned releases any token whose identifier appears in the
// expression (ownership transfer through a return value).
func (c *poolChecker) markMentioned(e ast.Expr, st *poolState) {
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		for _, t := range st.tokens {
			if c.pkg.Info.Uses[id] == t.obj {
				t.released = true
			}
		}
		return true
	})
}

func (c *poolChecker) mentions(args []ast.Expr, obj types.Object) bool {
	found := false
	for _, a := range args {
		ast.Inspect(a, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && c.pkg.Info.Uses[id] == obj {
				found = true
			}
			return !found
		})
	}
	return found
}

// isTerminalCall reports whether the expression statement unconditionally
// stops the function (panic or a fatal logger).
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Exit"
	}
	return false
}
