package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/matex-sim/matex/internal/faultinject"
	"github.com/matex-sim/matex/internal/transient"
)

// The durable job journal: an append-only JSONL file under Config.StateDir
// that records enough to survive a kill -9 of the whole process —
//
//	spec        one per job, at submit, before the job is queued
//	samples     batches of streamed waveform samples, flushed BEFORE each
//	            checkpoint record so that every sample at or before a
//	            durable checkpoint's time is itself durable
//	checkpoint  a transient.Checkpoint (integrator state at time T),
//	            fsynced — the restart point
//	done        terminal state, after the job finishes
//
// On startup the server replays the journal, compacts it (terminal jobs
// and their waveforms are pruned), restores each interrupted job's sample
// buffer, and re-enqueues the job to resume from its last checkpoint via
// transient.Resume — or from scratch when it never checkpointed. The write
// order makes the invariant exact: a resumed run re-emits every sample
// after the checkpoint time, so restored samples (all at or before it)
// plus the resumed tail reproduce the uninterrupted waveform with no gaps
// and no duplicates.
//
// ErrJournal marks every append failure so the HTTP layer can answer 500
// (server's disk, not the client's spec). The faultinject points
// JournalAppend (spec/samples/done appends: "disk full") and
// CheckpointWrite (checkpoint appends: "torn checkpoint write") fire here.

// journalName is the journal file name under Config.StateDir.
const journalName = "journal.jsonl"

// ErrJournal marks a failed journal append; the HTTP layer maps it to 500.
var ErrJournal = errors.New("serve: journal append failed")

// journalRecord is the one-line JSON envelope of every journal entry.
type journalRecord struct {
	Rec string `json:"rec"` // "spec" | "samples" | "checkpoint" | "done"
	ID  string `json:"id"`
	// Seq is the server job counter at submit (spec records only); the
	// restarted server resumes its counter past the largest replayed Seq.
	Seq uint64 `json:"seq,omitempty"`
	// Spec is the submitted job (spec records only).
	Spec *JobSpec `json:"spec,omitempty"`
	// From/Samples are a sample batch and the 0-based index of its first
	// sample in the job's buffer (samples records only).
	From    int      `json:"from,omitempty"`
	Samples []Sample `json:"samples,omitempty"`
	// Cp is the integrator snapshot (checkpoint records only); Variant
	// names the sweep variant it belongs to (empty on plain jobs, whose
	// single integration owns the record).
	Cp      *transient.Checkpoint `json:"cp,omitempty"`
	Variant string                `json:"variant,omitempty"`
	// State/Error are the terminal outcome (done records only).
	State JobState `json:"state,omitempty"`
	Error string   `json:"error,omitempty"`
}

// journal is the append-side handle. Appends serialize on mu; the file is
// opened O_APPEND so each record is one contiguous write.
type journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	faults *faultinject.Registry
}

// restoredJob is one interrupted job reconstructed from the journal.
type restoredJob struct {
	id      string
	seq     uint64
	spec    JobSpec
	samples []Sample
	cp      *transient.Checkpoint
	vcps    map[string]*transient.Checkpoint // sweep jobs: per-variant-name
	done    bool                             // terminal record seen: prune, do not restore
}

// openJournal replays and compacts the journal under dir, then reopens it
// for appending. It returns the interrupted jobs in submit order and the
// largest job sequence number ever journaled.
func openJournal(dir string, faults *faultinject.Registry) (*journal, []*restoredJob, uint64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("serve: creating state dir: %w", err)
	}
	path := filepath.Join(dir, journalName)
	restored, maxSeq, err := replayJournal(path)
	if err != nil {
		return nil, nil, 0, err
	}
	live := restored[:0]
	for _, r := range restored {
		if !r.done {
			live = append(live, r)
		}
	}
	if err := compactJournal(path, live); err != nil {
		return nil, nil, 0, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("serve: opening journal: %w", err)
	}
	j := &journal{f: f, path: path, faults: faults}
	return j, live, maxSeq, nil
}

// replayJournal reads every record, folding them into per-job restore
// state. A torn trailing line (the crash interrupted an append) is
// ignored; a torn line anywhere else ends the replay at the last good
// record, since everything after it is unordered.
func replayJournal(path string) ([]*restoredJob, uint64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("serve: opening journal for replay: %w", err)
	}
	defer f.Close() //matex:err-ok(read-only handle)

	byID := make(map[string]*restoredJob)
	var order []*restoredJob
	var maxSeq uint64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // sample batches can be large
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			break // torn write: everything from here on is suspect
		}
		switch rec.Rec {
		case "spec":
			if rec.Spec == nil || rec.ID == "" {
				continue
			}
			r := &restoredJob{id: rec.ID, seq: rec.Seq, spec: *rec.Spec}
			byID[rec.ID] = r
			order = append(order, r)
			if rec.Seq > maxSeq {
				maxSeq = rec.Seq
			}
		case "samples":
			r := byID[rec.ID]
			if r == nil {
				continue
			}
			// From guards against a replayed-then-recrashed journal holding
			// overlapping batches: later batches overwrite, never duplicate.
			if rec.From <= len(r.samples) {
				r.samples = append(r.samples[:rec.From], rec.Samples...)
			}
		case "checkpoint":
			r := byID[rec.ID]
			if r == nil || rec.Cp == nil {
				continue
			}
			if rec.Variant != "" {
				if r.vcps == nil {
					r.vcps = make(map[string]*transient.Checkpoint)
				}
				r.vcps[rec.Variant] = rec.Cp
			} else {
				r.cp = rec.Cp
			}
		case "done":
			if r := byID[rec.ID]; r != nil {
				r.done = true
			}
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return nil, 0, fmt.Errorf("serve: replaying journal: %w", err)
	}

	// Trim samples past the checkpoint: the resumed run re-emits them. The
	// flush-before-checkpoint order means this is normally a no-op, but a
	// journal from a crashed *replay* could hold a stale tail.
	for _, r := range order {
		if len(r.spec.Variants) > 0 {
			// Sweep job: samples interleave variants, so trim per variant —
			// keep a sample only when its variant has a checkpoint at or
			// after it. Variants without a checkpoint (including every
			// shared variant) re-run from scratch and re-emit everything.
			kept := r.samples[:0]
			for _, smp := range r.samples {
				if cp := r.vcps[smp.Variant]; cp != nil && smp.T <= cp.T {
					kept = append(kept, smp)
				}
			}
			r.samples = kept
			continue
		}
		if r.cp == nil {
			r.samples = nil // no restart point: the job re-runs from scratch
			continue
		}
		n := sort.Search(len(r.samples), func(i int) bool { return r.samples[i].T > r.cp.T })
		r.samples = r.samples[:n]
	}
	return order, maxSeq, nil
}

// compactJournal rewrites the journal to hold only the live (interrupted)
// jobs — spec, restored samples, last checkpoint — atomically via a temp
// file rename, pruning every completed entry and its waveform.
func compactJournal(path string, live []*restoredJob) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("serve: compacting journal: %w", err)
	}
	w := bufio.NewWriter(f)
	writeRec := func(rec journalRecord) error {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		_, err = w.Write(b)
		return err
	}
	for _, r := range live {
		spec := r.spec
		if err := writeRec(journalRecord{Rec: "spec", ID: r.id, Seq: r.seq, Spec: &spec}); err != nil {
			return failCompact(f, tmp, err)
		}
		if len(r.samples) > 0 {
			if err := writeRec(journalRecord{Rec: "samples", ID: r.id, Samples: r.samples}); err != nil {
				return failCompact(f, tmp, err)
			}
		}
		if r.cp != nil {
			if err := writeRec(journalRecord{Rec: "checkpoint", ID: r.id, Cp: r.cp}); err != nil {
				return failCompact(f, tmp, err)
			}
		}
		if len(r.vcps) > 0 {
			names := make([]string, 0, len(r.vcps))
			for n := range r.vcps {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				if err := writeRec(journalRecord{Rec: "checkpoint", ID: r.id, Variant: n, Cp: r.vcps[n]}); err != nil {
					return failCompact(f, tmp, err)
				}
			}
		}
	}
	if err := w.Flush(); err != nil {
		return failCompact(f, tmp, err)
	}
	if err := f.Sync(); err != nil {
		return failCompact(f, tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("serve: compacting journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("serve: compacting journal: %w", err)
	}
	return nil
}

// failCompact abandons a half-written compaction temp file.
func failCompact(f *os.File, tmp string, err error) error {
	f.Close()      //matex:err-ok(already failing; the temp file is removed next)
	os.Remove(tmp) //matex:err-ok(best-effort cleanup of the temp file)
	return fmt.Errorf("serve: compacting journal: %w", err)
}

// append marshals and writes one record; sync additionally fsyncs (used
// for checkpoints and terminal records — the entries a restart pivots on).
// point is the faultinject site consulted before touching the disk.
func (j *journal) append(rec journalRecord, sync bool, point faultinject.Point) error {
	if err := j.faults.Check(point); err != nil {
		return fmt.Errorf("%w: %w", ErrJournal, err)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrJournal, err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("%w: %w", ErrJournal, err)
	}
	if sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("%w: %w", ErrJournal, err)
		}
	}
	return nil
}

func (j *journal) appendSpec(id string, seq uint64, spec JobSpec) error {
	return j.append(journalRecord{Rec: "spec", ID: id, Seq: seq, Spec: &spec}, true, faultinject.JournalAppend)
}

func (j *journal) appendSamples(id string, from int, batch []Sample) error {
	return j.append(journalRecord{Rec: "samples", ID: id, From: from, Samples: batch}, false, faultinject.JournalAppend)
}

func (j *journal) appendCheckpoint(id, variant string, cp transient.Checkpoint) error {
	return j.append(journalRecord{Rec: "checkpoint", ID: id, Variant: variant, Cp: &cp}, true, faultinject.CheckpointWrite)
}

func (j *journal) appendDone(id string, state JobState, errMsg string) error {
	return j.append(journalRecord{Rec: "done", ID: id, State: state, Error: errMsg}, true, faultinject.JournalAppend)
}

// Close flushes and closes the journal file.
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close() //matex:err-ok(sync already failed; report that error)
		return fmt.Errorf("serve: closing journal: %w", err)
	}
	return j.f.Close()
}
