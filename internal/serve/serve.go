package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/dist"
	"github.com/matex-sim/matex/internal/faultinject"
	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/sweep"
	"github.com/matex-sim/matex/internal/transient"
)

// Config configures a Server.
type Config struct {
	// Workers bounds concurrently running jobs; 0 = GOMAXPROCS.
	Workers int
	// QueueDepth bounds queued-but-not-running jobs; a full queue rejects
	// submissions with ErrQueueFull. 0 = 64.
	QueueDepth int
	// CacheBytes is the shared factorization cache budget (0 = the
	// sparse.NewCache default).
	CacheBytes int64
	// DistAddrs lists matexd workers distributed jobs fan out to; empty
	// runs them on the in-process pool.
	DistAddrs []string
	// Ordering is the fill-reducing ordering applied to jobs whose spec
	// leaves the ordering unset (matexsrv -order). The zero value keeps
	// the repository default resolution (rcm).
	Ordering sparse.Ordering
	// MaxRetainedJobs bounds how many finished jobs (and their retained
	// sample waveforms) stay queryable/replayable after completion; once
	// exceeded, the oldest terminal jobs are evicted. Queued and running
	// jobs are never evicted. 0 = 256.
	MaxRetainedJobs int
	// StateDir, when non-empty, makes jobs durable: an append-only journal
	// under it records specs at submit, integrator checkpoints (plus the
	// sample batches they cover) as jobs run, and terminal results. On
	// startup the server replays the journal, re-enqueues interrupted jobs
	// from their last checkpoint (transient.Resume over the shared
	// factorization cache — recovery pays no re-analysis), and prunes
	// completed entries. Empty keeps jobs in-memory only (pre-journal
	// behavior).
	StateDir string
	// CheckpointEvery is the journaled-checkpoint cadence in accepted
	// integrator steps (0 = the transient default, 128). Smaller values
	// shrink the recovery window after a crash at the cost of more journal
	// I/O; it only applies when StateDir is set. Distributed jobs do not
	// checkpoint (their subtasks run remotely) — interrupted ones restart
	// from scratch.
	CheckpointEvery int
	// Fault is the fault-injection registry consulted at the journal's
	// append points (faultinject.JournalAppend, faultinject.CheckpointWrite).
	// Nil — the production value — injects nothing.
	Fault *faultinject.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 256
	}
	return c
}

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrShuttingDown: the server no longer accepts jobs (503).
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrQueueFull: the job queue is at capacity (429).
	ErrQueueFull = errors.New("serve: job queue full")
)

// totals aggregates solver work counters across finished jobs (the /stats
// cross-job view; per-job Stats stay on the jobs).
type totals struct {
	Jobs           int `json:"jobs"`
	Factorizations int `json:"factorizations"`
	Refactors      int `json:"refactors"`
	SymbolicHits   int `json:"symbolic_hits"`
	CacheHits      int `json:"cache_hits"`
	CacheMisses    int `json:"cache_misses"`
	SolvePairs     int `json:"solve_pairs"`
	SpMVs          int `json:"spmvs"`
	Steps          int `json:"steps"`
	KrylovSpots    int `json:"krylov_spots"`
	LanczosSpots   int `json:"lanczos_spots"`
	// Sweeps counts completed sweep jobs and SweepVariants the variants
	// they served; PanelWidths histograms the cross-variant solve panel
	// widths (key = simultaneous right-hand sides in one batched solve),
	// folded across all completed sweeps.
	Sweeps        int         `json:"sweeps"`
	SweepVariants int         `json:"sweep_variants"`
	PanelWidths   map[int]int `json:"panel_width_histogram,omitempty"`
}

// addSweep folds one completed sweep's batching report into the cross-job
// totals (the transient counters go through add, like any job).
func (t *totals) addSweep(st *sweep.Stats) {
	t.Sweeps++
	t.SweepVariants += st.Variants
	if len(st.Panel.Widths) > 0 && t.PanelWidths == nil {
		t.PanelWidths = make(map[int]int)
	}
	for w, n := range st.Panel.Widths {
		t.PanelWidths[w] += n
	}
}

func (t *totals) add(s *transient.Stats) {
	t.Jobs++
	t.Factorizations += s.Factorizations
	t.Refactors += s.Refactors
	t.SymbolicHits += s.SymbolicHits
	t.CacheHits += s.CacheHits
	t.CacheMisses += s.CacheMisses
	t.SolvePairs += s.SolvePairs
	t.SpMVs += s.SpMVs
	t.Steps += s.Steps
	t.KrylovSpots += len(s.KrylovDims)
	t.LanczosSpots += s.LanczosSpots
}

// Server is the simulation job service. Create with New, expose via
// Handler, stop with Shutdown.
type Server struct {
	cfg        Config
	cache      *sparse.Cache
	workspaces *krylov.WorkspacePool
	queue      chan *Job
	baseCtx    context.Context
	stop       context.CancelFunc
	wg         sync.WaitGroup
	start      time.Time

	// poolMu guards the cached matexd worker pools for distributed jobs.
	poolMu    sync.Mutex
	pools     map[string]dist.Pool
	poolOrder []string // pool insertion order, for eviction

	// journal is the durable job log (nil without Config.StateDir).
	journal *journal

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string // submission order, for listing
	seq       uint64
	closing   bool
	inFlight  int
	accepted  uint64
	completed uint64
	failed    uint64
	canceled  uint64
	resumed   uint64 // jobs re-enqueued from the journal at startup
	agg       totals
	// runs/runNanos accumulate the wall time of every job a worker actually
	// ran (terminal, including failed/canceled runs) — the mean-latency
	// input of the 429 Retry-After estimate.
	runs     uint64
	runNanos int64
}

// New starts a Server's worker pool and returns it. With Config.StateDir
// set it first replays the durable job journal: interrupted jobs are
// re-enqueued (from their last checkpoint when they have one) ahead of any
// new submission, completed entries are pruned, and the job counter resumes
// past every journaled ID. The error return is the journal's — an
// in-memory server (empty StateDir) cannot fail.
//
//matex:ctx-root(server lifecycle root; every job derives its per-job context from it)
//matex:ctx-exempt(the restore-queue send cannot block: the queue is sized QueueDepth+len(restored) and the workers have not started)
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()

	var (
		jn       *journal
		restored []*restoredJob
		maxSeq   uint64
	)
	if cfg.StateDir != "" {
		var err error
		if jn, restored, maxSeq, err = openJournal(cfg.StateDir, cfg.Fault); err != nil {
			return nil, err
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      sparse.NewCache(cfg.CacheBytes),
		workspaces: krylov.NewWorkspacePool(),
		queue:      make(chan *Job, cfg.QueueDepth+len(restored)),
		baseCtx:    ctx,
		stop:       cancel,
		start:      time.Now(),
		jobs:       make(map[string]*Job),
		pools:      make(map[string]dist.Pool),
		journal:    jn,
		seq:        maxSeq,
	}
	// Re-enqueue interrupted jobs before the workers start: they keep their
	// IDs, their journal-restored sample buffers (every sample at or before
	// the checkpoint), and resume mid-waveform via transient.Resume. A spec
	// that no longer builds (it validated once, so only environment drift
	// can break it) surfaces as a failed job rather than a lost one.
	for _, r := range restored {
		job, err := s.restoreJob(r)
		if err != nil {
			continue
		}
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		s.accepted++
		s.resumed++
		s.queue <- job
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// restoreJob rebuilds one journal-replayed job: re-parse and re-stamp the
// spec (the journal stores the spec, not the stamped matrices), reattach
// the restored samples, and carry the resume checkpoint. A failed rebuild
// is recorded as a failed job so the client sees the outcome.
func (s *Server) restoreJob(r *restoredJob) (*Job, error) {
	built, err := r.spec.build()
	if err != nil {
		job := newJob(r.id, r.spec, &builtJob{})
		job.state = JobFailed
		job.err = fmt.Errorf("serve: restoring job from journal: %w", err)
		job.finished = time.Now()
		s.jobs[r.id] = job
		s.order = append(s.order, r.id)
		return nil, err
	}
	if built.order == sparse.OrderDefault {
		built.order = s.cfg.Ordering
	}
	job := newJob(r.id, r.spec, built)
	job.jn = s.journal
	job.samples = r.samples
	job.flushed = len(r.samples)
	job.resume = r.cp
	job.vresume = r.vcps
	// A restored sweep continues each variant's VSeq past its retained
	// samples, so the spliced stream stays gap- and duplicate-free.
	for _, smp := range r.samples {
		if smp.Variant == "" {
			continue
		}
		if job.vseq == nil {
			job.vseq = make(map[string]int)
		}
		if smp.VSeq > job.vseq[smp.Variant] {
			job.vseq[smp.Variant] = smp.VSeq
		}
	}
	return job, nil
}

// CacheStats exposes the shared factorization cache counters.
func (s *Server) CacheStats() sparse.CacheStats { return s.cache.Stats() }

// Submit validates, stamps and enqueues a job. The returned job is already
// visible to Job/stream lookups. Errors: spec problems (client's fault),
// ErrQueueFull, ErrShuttingDown, ErrJournal (durable servers only).
//
//matex:ctx-exempt(the queue send cannot block: capacity is checked under s.mu and Submit is the only sender)
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	// Reject cheap-to-detect overload before paying for the parse + stamp:
	// a saturated or draining server answers without building the system.
	// The definitive check re-runs under the lock after the build.
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.mu.Unlock()

	built, err := spec.build()
	if err != nil {
		return nil, err
	}
	if built.order == sparse.OrderDefault {
		built.order = s.cfg.Ordering
	}

	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	// Capacity check before the journal append: Submit is the only queue
	// sender and it holds s.mu, so the queue can only drain between here and
	// the send below — the send cannot block, and a journaled spec is never
	// orphaned by a full queue.
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.seq++
	job := newJob(fmt.Sprintf("job-%d", s.seq), spec, built)
	job.jn = s.journal
	// Journal the spec before the job becomes visible: an accepted job is a
	// durable job. The fsync happens under s.mu so journal order matches ID
	// order; submissions are not a hot path. A failed append rejects the
	// submission (ErrJournal → 500) rather than accepting work a crash
	// would silently lose.
	if s.journal != nil {
		if err := s.journal.appendSpec(job.ID, s.seq, spec); err != nil {
			s.seq--
			s.mu.Unlock()
			return nil, err
		}
	}
	s.queue <- job
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.accepted++
	s.mu.Unlock()
	return job, nil
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// pruneLocked evicts the oldest terminal jobs past the retention cap so a
// long-running service does not accumulate every waveform it ever served.
// Callers hold s.mu.
func (s *Server) pruneLocked() {
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].State().Terminal() {
			terminal++
		}
	}
	if terminal <= s.cfg.MaxRetainedJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if terminal > s.cfg.MaxRetainedJobs && s.jobs[id].State().Terminal() {
			delete(s.jobs, id)
			terminal--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// runJob executes one job with a per-job context derived from the server
// lifetime, streaming samples into the job as the integrator advances.
func (s *Server) runJob(job *Job) {
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if job.Spec.TimeoutSec > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(job.Spec.TimeoutSec*float64(time.Second)))
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()
	if !job.markRunning(cancel) {
		// Canceled while queued: account for it so the /stats invariant
		// accepted = completed + failed + canceled + queued + in-flight
		// holds even for jobs no worker ever ran.
		s.mu.Lock()
		s.canceled++
		s.pruneLocked()
		s.mu.Unlock()
		if s.journal != nil {
			st := job.Status()
			s.journal.appendDone(job.ID, st.State, st.Error) //matex:err-ok(cancellation already took effect; a lost done record only costs a redundant restore after restart)
		}
		return
	}
	s.mu.Lock()
	s.inFlight++
	s.mu.Unlock()

	b := job.built
	runStart := time.Now()
	var (
		res  *transient.Result
		rep  *dist.Report
		sres *sweep.Result
		err  error
	)
	if len(job.Spec.Variants) > 0 {
		sres, err = s.runSweep(ctx, job)
		if err == nil {
			// The folded lane counters stand in as the job's transient
			// stats; the sweep-specific report rides on the job separately.
			res = &transient.Result{Stats: sres.Stats.Sim}
			job.setSweepStats(&sres.Stats)
		}
	} else if job.Spec.Distributed {
		res, rep, err = s.runDistributed(ctx, job.built, job.Spec, job.appendSample)
	} else {
		opts := transient.Options{
			Tstop:        b.tstop,
			Step:         b.step,
			Probes:       b.probes,
			Tol:          job.Spec.Tol,
			Gamma:        job.Spec.Gamma,
			MaxDim:       job.Spec.MaxDim,
			Ordering:     b.order,
			Krylov:       b.krylov,
			SolveWorkers: job.Spec.SolveWorkers,
			Cache:        s.cache,
			Workspaces:   s.workspaces,
			Ctx:          ctx,
			OnSample:     job.appendSample,
		}
		if s.journal != nil {
			opts.OnCheckpoint = job.journalCheckpoint
			opts.CheckpointEvery = s.cfg.CheckpointEvery
		}
		if job.resume != nil {
			res, err = transient.Resume(b.sys, b.method, opts, *job.resume)
		} else {
			res, err = transient.Simulate(b.sys, b.method, opts)
		}
	}
	// Fold the outcome into the server counters BEFORE finish() makes the
	// terminal state visible: a client that watches the stream's done tail
	// and immediately reads /stats must find its job already counted.
	// Pruning waits until after finish() — the job only becomes evictable
	// once it is terminal.
	s.mu.Lock()
	s.inFlight--
	s.runs++
	s.runNanos += int64(time.Since(runStart))
	switch {
	case err == nil:
		s.completed++
		s.agg.add(&res.Stats)
		if sres != nil {
			s.agg.addSweep(&sres.Stats)
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.canceled++
	default:
		s.failed++
	}
	s.mu.Unlock()
	job.finish(res, rep, err)
	if s.journal != nil {
		// The terminal record prunes the job from the next restart's replay.
		// At-least-once: finish() already published the outcome, so a crash
		// between finish and this append merely re-runs a completed job —
		// and a failed append here is the same crash window, not a new
		// failure mode worth failing the finished job over.
		st := job.Status()
		s.journal.appendDone(job.ID, st.State, st.Error) //matex:err-ok(outcome already published; a lost done record only costs a redundant re-run after restart)
	}
	s.mu.Lock()
	s.pruneLocked()
	s.mu.Unlock()
}

// runSweep executes a sweep job through internal/sweep on the server's
// shared cache and workspaces: per-variant samples stream into the job as
// lanes advance, per-variant checkpoints journal on durable servers, and
// a journal-restored job resumes its directly-integrated variants from
// their checkpoints (shared variants re-run — resume disables sharing).
func (s *Server) runSweep(ctx context.Context, job *Job) (*sweep.Result, error) {
	b := job.built
	sopts := sweep.Options{
		Base: transient.Options{
			Tstop:        b.tstop,
			Step:         b.step,
			Probes:       b.probes,
			Tol:          job.Spec.Tol,
			Gamma:        job.Spec.Gamma,
			MaxDim:       job.Spec.MaxDim,
			Ordering:     b.order,
			Krylov:       b.krylov,
			SolveWorkers: job.Spec.SolveWorkers,
			Cache:        s.cache,
			Workspaces:   s.workspaces,
			Ctx:          ctx,
		},
		Method: b.method,
		OnVariantSample: func(v int, t float64, probes []float64) {
			job.appendVariantSample(variantName(job.Spec.Variants, v), t, probes)
		},
	}
	if s.journal != nil {
		sopts.Base.CheckpointEvery = s.cfg.CheckpointEvery
		sopts.OnVariantCheckpoint = func(v int, cp transient.Checkpoint) error {
			return job.journalVariantCheckpoint(variantName(job.Spec.Variants, v), cp)
		}
	}
	if len(job.vresume) > 0 {
		rv := make(map[int]transient.Checkpoint, len(job.vresume))
		for i := range job.Spec.Variants {
			if cp := job.vresume[variantName(job.Spec.Variants, i)]; cp != nil {
				rv[i] = *cp
			}
		}
		sopts.ResumeVariants = rv
	}
	return sweep.Run(b.sys, job.Spec.Variants, sopts)
}

// variantName resolves the journal/stream name of variant i, applying the
// same "v<index>" default as the sweep engine.
func variantName(vs []sweep.Variant, i int) string {
	if i < len(vs) && vs[i].Name != "" {
		return vs[i].Name
	}
	return fmt.Sprintf("v%d", i)
}

// runDistributed fans the job out through the dist scheduler and replays
// the superposed waveform as stream samples. The superposition only exists
// once every subtask has landed, so distributed jobs stream at completion
// rather than per-step; the shared cache still carries across jobs.
func (s *Server) runDistributed(ctx context.Context, b *builtJob, spec JobSpec, emit func(float64, []float64)) (*transient.Result, *dist.Report, error) {
	cfg := dist.Config{
		Method:       b.method,
		Tstop:        b.tstop,
		Step:         b.step,
		Tol:          spec.Tol,
		Gamma:        spec.Gamma,
		MaxDim:       spec.MaxDim,
		Probes:       b.probes,
		Ordering:     b.order,
		Krylov:       b.krylov,
		SolveWorkers: spec.SolveWorkers,
		Cache:        s.cache,
		Ctx:          ctx,
	}
	var poolKey string
	if len(s.cfg.DistAddrs) > 0 {
		pool, key, err := s.distPool(b.sys, spec)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: connecting matexd workers: %w", err)
		}
		cfg.Pool = pool
		poolKey = key
	}
	res, rep, err := dist.Run(b.sys, cfg)
	if err != nil {
		if poolKey != "" {
			// A failed run may mean buried workers: drop the cached pool
			// so the next job redials a fresh set instead of inheriting
			// the corpses.
			s.dropPool(poolKey)
		}
		return nil, nil, err
	}
	for i, t := range res.Times {
		var row []float64
		if i < len(res.Probes) {
			row = res.Probes[i]
		}
		emit(t, row)
	}
	return res, rep, nil
}

// maxDistPools bounds how many deck-distinct matexd pools the server keeps
// connected at once.
const maxDistPools = 8

// distPool returns a connected matexd pool for the job's circuit, reusing
// an existing pool when the same deck was fanned out before: registration
// is content-addressed on the workers, so reuse skips the per-job dial,
// probe and blob upload entirely — the distributed analogue of the shared
// factorization cache. Pools are keyed by deck identity (case+scale or a
// netlist-text hash) and evicted oldest-first past maxDistPools.
func (s *Server) distPool(sys *circuit.System, spec JobSpec) (dist.Pool, string, error) {
	key := deckKey(spec)
	s.poolMu.Lock()
	if p, ok := s.pools[key]; ok {
		s.poolMu.Unlock()
		return p, key, nil
	}
	s.poolMu.Unlock()

	// Dial outside the lock (it can take seconds); a concurrent duplicate
	// dial for the same deck is tolerated — last one in wins, the loser
	// is closed.
	pool, err := dist.NewRPCPool(sys, s.cfg.DistAddrs)
	if err != nil {
		return nil, "", err
	}
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if prev, ok := s.pools[key]; ok {
		closePool(pool)
		return prev, key, nil
	}
	if len(s.pools) >= maxDistPools {
		oldest := s.poolOrder[0]
		s.poolOrder = s.poolOrder[1:]
		if p, ok := s.pools[oldest]; ok {
			closePool(p)
			delete(s.pools, oldest)
		}
	}
	s.pools[key] = pool
	s.poolOrder = append(s.poolOrder, key)
	return pool, key, nil
}

// dropPool closes and forgets a cached pool (after a failed run).
func (s *Server) dropPool(key string) {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if p, ok := s.pools[key]; ok {
		closePool(p)
		delete(s.pools, key)
		for i, k := range s.poolOrder {
			if k == key {
				s.poolOrder = append(s.poolOrder[:i], s.poolOrder[i+1:]...)
				break
			}
		}
	}
}

// closePool releases a worker pool on an eviction, duplicate-dial, or
// shutdown path. Nothing can retry a failed close there, so the error is
// deliberately discarded in this one place.
func closePool(p dist.Pool) {
	p.Close() //matex:err-ok(eviction/shutdown path; a failed close has no recovery)
}

// closePools releases every cached worker pool (shutdown).
func (s *Server) closePools() {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	for key, p := range s.pools {
		closePool(p)
		delete(s.pools, key)
	}
	s.poolOrder = nil
}

// deckKey is the deck-identity cache key for worker pools.
func deckKey(spec JobSpec) string {
	if spec.Case != "" {
		return fmt.Sprintf("case:%s@%g", spec.Case, scaleOrOne(spec.Scale))
	}
	// FNV-1a over the inline netlist text.
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(spec.Netlist); i++ {
		h ^= uint64(spec.Netlist[i])
		h *= prime
	}
	return fmt.Sprintf("netlist:%016x", h)
}

// BeginDrain stops the intake: submissions fail with ErrShuttingDown, the
// readiness probe flips to 503, and the queue is closed so the workers exit
// once it drains. Jobs already queued or running are unaffected. Idempotent;
// Shutdown calls it implicitly — calling it first lets a load balancer see
// the instance unready for its full drain window.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	if !s.closing {
		s.closing = true
		close(s.queue)
	}
	s.mu.Unlock()
}

// Draining reports whether BeginDrain/Shutdown has begun (the /readyz input).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closing
}

// Shutdown drains the service: no new submissions, queued and running jobs
// finish, then the workers exit. If ctx fires first, running jobs are
// canceled (they unwind at their next step boundary) and Shutdown returns
// the context error after they do. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.stop() // cancel in-flight jobs; they abort at the next boundary
		<-done
		err = ctx.Err()
	}
	s.closePools()
	if s.journal != nil {
		// Workers are gone, so nothing appends concurrently. Jobs the ctx
		// cancellation unwound were journaled done (canceled) by their
		// workers — graceful shutdown is a terminal outcome, not a crash;
		// only a kill without a done record resumes on the next start.
		s.journal.Close() //matex:err-ok(shutdown path; every record that matters was fsynced at append time)
	}
	return err
}
