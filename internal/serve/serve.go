// Package serve is the MATEX simulation job service: a long-running HTTP
// front end that accepts netlist-deck jobs (inline SPICE text or a named
// pgbench case), runs them through a bounded worker-pool queue with
// per-job contexts, and streams waveform samples incrementally (NDJSON or
// SSE) as the integrators advance — the serving layer the paper's
// "distributed framework" framing asks for on top of the compute stack.
//
// Every job on one process shares the content-addressed factorization
// cache and the Krylov workspace arenas, so concurrent and repeated jobs
// against the same grid skip straight to the transient phase the way
// repeated dist.Run calls do. Distributed jobs additionally fan out
// through internal/dist (in-process pool or matexd workers over TCP).
//
// See cmd/matexsrv for the daemon and README.md ("Serving") for the API.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/dist"
	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/transient"
)

// Config configures a Server.
type Config struct {
	// Workers bounds concurrently running jobs; 0 = GOMAXPROCS.
	Workers int
	// QueueDepth bounds queued-but-not-running jobs; a full queue rejects
	// submissions with ErrQueueFull. 0 = 64.
	QueueDepth int
	// CacheBytes is the shared factorization cache budget (0 = the
	// sparse.NewCache default).
	CacheBytes int64
	// DistAddrs lists matexd workers distributed jobs fan out to; empty
	// runs them on the in-process pool.
	DistAddrs []string
	// Ordering is the fill-reducing ordering applied to jobs whose spec
	// leaves the ordering unset (matexsrv -order). The zero value keeps
	// the repository default resolution (rcm).
	Ordering sparse.Ordering
	// MaxRetainedJobs bounds how many finished jobs (and their retained
	// sample waveforms) stay queryable/replayable after completion; once
	// exceeded, the oldest terminal jobs are evicted. Queued and running
	// jobs are never evicted. 0 = 256.
	MaxRetainedJobs int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 256
	}
	return c
}

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrShuttingDown: the server no longer accepts jobs (503).
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrQueueFull: the job queue is at capacity (429).
	ErrQueueFull = errors.New("serve: job queue full")
)

// totals aggregates solver work counters across finished jobs (the /stats
// cross-job view; per-job Stats stay on the jobs).
type totals struct {
	Jobs           int `json:"jobs"`
	Factorizations int `json:"factorizations"`
	Refactors      int `json:"refactors"`
	SymbolicHits   int `json:"symbolic_hits"`
	CacheHits      int `json:"cache_hits"`
	CacheMisses    int `json:"cache_misses"`
	SolvePairs     int `json:"solve_pairs"`
	SpMVs          int `json:"spmvs"`
	Steps          int `json:"steps"`
	KrylovSpots    int `json:"krylov_spots"`
	LanczosSpots   int `json:"lanczos_spots"`
}

func (t *totals) add(s *transient.Stats) {
	t.Jobs++
	t.Factorizations += s.Factorizations
	t.Refactors += s.Refactors
	t.SymbolicHits += s.SymbolicHits
	t.CacheHits += s.CacheHits
	t.CacheMisses += s.CacheMisses
	t.SolvePairs += s.SolvePairs
	t.SpMVs += s.SpMVs
	t.Steps += s.Steps
	t.KrylovSpots += len(s.KrylovDims)
	t.LanczosSpots += s.LanczosSpots
}

// Server is the simulation job service. Create with New, expose via
// Handler, stop with Shutdown.
type Server struct {
	cfg        Config
	cache      *sparse.Cache
	workspaces *krylov.WorkspacePool
	queue      chan *Job
	baseCtx    context.Context
	stop       context.CancelFunc
	wg         sync.WaitGroup
	start      time.Time

	// poolMu guards the cached matexd worker pools for distributed jobs.
	poolMu    sync.Mutex
	pools     map[string]dist.Pool
	poolOrder []string // pool insertion order, for eviction

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string // submission order, for listing
	seq       uint64
	closing   bool
	inFlight  int
	accepted  uint64
	completed uint64
	failed    uint64
	canceled  uint64
	agg       totals
}

// New starts a Server's worker pool and returns it.
//
//matex:ctx-root(server lifecycle root; every job derives its per-job context from it)
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      sparse.NewCache(cfg.CacheBytes),
		workspaces: krylov.NewWorkspacePool(),
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		stop:       cancel,
		start:      time.Now(),
		jobs:       make(map[string]*Job),
		pools:      make(map[string]dist.Pool),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// CacheStats exposes the shared factorization cache counters.
func (s *Server) CacheStats() sparse.CacheStats { return s.cache.Stats() }

// Submit validates, stamps and enqueues a job. The returned job is already
// visible to Job/stream lookups. Errors: spec problems (client's fault),
// ErrQueueFull, ErrShuttingDown.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	// Reject cheap-to-detect overload before paying for the parse + stamp:
	// a saturated or draining server answers without building the system.
	// The definitive check re-runs under the lock after the build.
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.mu.Unlock()

	built, err := spec.build()
	if err != nil {
		return nil, err
	}
	if built.order == sparse.OrderDefault {
		built.order = s.cfg.Ordering
	}

	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	s.seq++
	job := newJob(fmt.Sprintf("job-%d", s.seq), spec, built)
	select {
	case s.queue <- job:
	default:
		s.seq--
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.accepted++
	s.mu.Unlock()
	return job, nil
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// pruneLocked evicts the oldest terminal jobs past the retention cap so a
// long-running service does not accumulate every waveform it ever served.
// Callers hold s.mu.
func (s *Server) pruneLocked() {
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].State().Terminal() {
			terminal++
		}
	}
	if terminal <= s.cfg.MaxRetainedJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if terminal > s.cfg.MaxRetainedJobs && s.jobs[id].State().Terminal() {
			delete(s.jobs, id)
			terminal--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// runJob executes one job with a per-job context derived from the server
// lifetime, streaming samples into the job as the integrator advances.
func (s *Server) runJob(job *Job) {
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if job.Spec.TimeoutSec > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(job.Spec.TimeoutSec*float64(time.Second)))
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()
	if !job.markRunning(cancel) {
		// Canceled while queued: account for it so the /stats invariant
		// accepted = completed + failed + canceled + queued + in-flight
		// holds even for jobs no worker ever ran.
		s.mu.Lock()
		s.canceled++
		s.pruneLocked()
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.inFlight++
	s.mu.Unlock()

	b := job.built
	var (
		res *transient.Result
		rep *dist.Report
		err error
	)
	if job.Spec.Distributed {
		res, rep, err = s.runDistributed(ctx, job.built, job.Spec, job.appendSample)
	} else {
		res, err = transient.Simulate(b.sys, b.method, transient.Options{
			Tstop:        b.tstop,
			Step:         b.step,
			Probes:       b.probes,
			Tol:          job.Spec.Tol,
			Gamma:        job.Spec.Gamma,
			MaxDim:       job.Spec.MaxDim,
			Ordering:     b.order,
			Krylov:       b.krylov,
			SolveWorkers: job.Spec.SolveWorkers,
			Cache:        s.cache,
			Workspaces:   s.workspaces,
			Ctx:          ctx,
			OnSample:     job.appendSample,
		})
	}
	// Fold the outcome into the server counters BEFORE finish() makes the
	// terminal state visible: a client that watches the stream's done tail
	// and immediately reads /stats must find its job already counted.
	// Pruning waits until after finish() — the job only becomes evictable
	// once it is terminal.
	s.mu.Lock()
	s.inFlight--
	switch {
	case err == nil:
		s.completed++
		s.agg.add(&res.Stats)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.canceled++
	default:
		s.failed++
	}
	s.mu.Unlock()
	job.finish(res, rep, err)
	s.mu.Lock()
	s.pruneLocked()
	s.mu.Unlock()
}

// runDistributed fans the job out through the dist scheduler and replays
// the superposed waveform as stream samples. The superposition only exists
// once every subtask has landed, so distributed jobs stream at completion
// rather than per-step; the shared cache still carries across jobs.
func (s *Server) runDistributed(ctx context.Context, b *builtJob, spec JobSpec, emit func(float64, []float64)) (*transient.Result, *dist.Report, error) {
	cfg := dist.Config{
		Method:       b.method,
		Tstop:        b.tstop,
		Step:         b.step,
		Tol:          spec.Tol,
		Gamma:        spec.Gamma,
		MaxDim:       spec.MaxDim,
		Probes:       b.probes,
		Ordering:     b.order,
		Krylov:       b.krylov,
		SolveWorkers: spec.SolveWorkers,
		Cache:        s.cache,
		Ctx:          ctx,
	}
	var poolKey string
	if len(s.cfg.DistAddrs) > 0 {
		pool, key, err := s.distPool(b.sys, spec)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: connecting matexd workers: %w", err)
		}
		cfg.Pool = pool
		poolKey = key
	}
	res, rep, err := dist.Run(b.sys, cfg)
	if err != nil {
		if poolKey != "" {
			// A failed run may mean buried workers: drop the cached pool
			// so the next job redials a fresh set instead of inheriting
			// the corpses.
			s.dropPool(poolKey)
		}
		return nil, nil, err
	}
	for i, t := range res.Times {
		var row []float64
		if i < len(res.Probes) {
			row = res.Probes[i]
		}
		emit(t, row)
	}
	return res, rep, nil
}

// maxDistPools bounds how many deck-distinct matexd pools the server keeps
// connected at once.
const maxDistPools = 8

// distPool returns a connected matexd pool for the job's circuit, reusing
// an existing pool when the same deck was fanned out before: registration
// is content-addressed on the workers, so reuse skips the per-job dial,
// probe and blob upload entirely — the distributed analogue of the shared
// factorization cache. Pools are keyed by deck identity (case+scale or a
// netlist-text hash) and evicted oldest-first past maxDistPools.
func (s *Server) distPool(sys *circuit.System, spec JobSpec) (dist.Pool, string, error) {
	key := deckKey(spec)
	s.poolMu.Lock()
	if p, ok := s.pools[key]; ok {
		s.poolMu.Unlock()
		return p, key, nil
	}
	s.poolMu.Unlock()

	// Dial outside the lock (it can take seconds); a concurrent duplicate
	// dial for the same deck is tolerated — last one in wins, the loser
	// is closed.
	pool, err := dist.NewRPCPool(sys, s.cfg.DistAddrs)
	if err != nil {
		return nil, "", err
	}
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if prev, ok := s.pools[key]; ok {
		closePool(pool)
		return prev, key, nil
	}
	if len(s.pools) >= maxDistPools {
		oldest := s.poolOrder[0]
		s.poolOrder = s.poolOrder[1:]
		if p, ok := s.pools[oldest]; ok {
			closePool(p)
			delete(s.pools, oldest)
		}
	}
	s.pools[key] = pool
	s.poolOrder = append(s.poolOrder, key)
	return pool, key, nil
}

// dropPool closes and forgets a cached pool (after a failed run).
func (s *Server) dropPool(key string) {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if p, ok := s.pools[key]; ok {
		closePool(p)
		delete(s.pools, key)
		for i, k := range s.poolOrder {
			if k == key {
				s.poolOrder = append(s.poolOrder[:i], s.poolOrder[i+1:]...)
				break
			}
		}
	}
}

// closePool releases a worker pool on an eviction, duplicate-dial, or
// shutdown path. Nothing can retry a failed close there, so the error is
// deliberately discarded in this one place.
func closePool(p dist.Pool) {
	p.Close() //matex:err-ok(eviction/shutdown path; a failed close has no recovery)
}

// closePools releases every cached worker pool (shutdown).
func (s *Server) closePools() {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	for key, p := range s.pools {
		closePool(p)
		delete(s.pools, key)
	}
	s.poolOrder = nil
}

// deckKey is the deck-identity cache key for worker pools.
func deckKey(spec JobSpec) string {
	if spec.Case != "" {
		return fmt.Sprintf("case:%s@%g", spec.Case, scaleOrOne(spec.Scale))
	}
	// FNV-1a over the inline netlist text.
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(spec.Netlist); i++ {
		h ^= uint64(spec.Netlist[i])
		h *= prime
	}
	return fmt.Sprintf("netlist:%016x", h)
}

// Shutdown drains the service: no new submissions, queued and running jobs
// finish, then the workers exit. If ctx fires first, running jobs are
// canceled (they unwind at their next step boundary) and Shutdown returns
// the context error after they do. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closing {
		s.closing = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closePools()
		return nil
	case <-ctx.Done():
		s.stop() // cancel in-flight jobs; they abort at the next boundary
		<-done
		s.closePools()
		return ctx.Err()
	}
}
