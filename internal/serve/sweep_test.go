package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"sync"
	"testing"

	"github.com/matex-sim/matex/internal/serve"
	"github.com/matex-sim/matex/internal/sweep"
)

// sweepSpec is the canonical test sweep: four pairwise non-collinear
// corner variants of a small ibmpg1t grid, so every variant integrates on
// its own lane and the solve panels actually batch.
func sweepSpec() serve.JobSpec {
	return serve.JobSpec{
		Case:  "ibmpg1t",
		Scale: 0.2,
		Tol:   1e-8,
		Variants: []sweep.Variant{
			{Name: "typ"},
			{Name: "hot", SourceScales: map[string]float64{"Iload1": 1.5}},
			{Name: "cool", SourceScales: map[string]float64{"Iload2": 0.7}},
			{Name: "fast", Scale: 1.2, SourceScales: map[string]float64{"Iload3": 0.8}},
		},
	}
}

// sweepStream is a demultiplexed sweep NDJSON stream: per-variant
// waveforms plus the tail.
type sweepStream struct {
	id      string
	probes  []string
	times   map[string][]float64
	rows    map[string][][]float64
	state   serve.JobState
	tailErr string
	stats   *sweep.Stats
}

// readSweepStream consumes a sweep job's NDJSON stream, demultiplexing
// the interleaved samples by variant name and checking every variant's
// vseq numbers arrive contiguously from 1.
func readSweepStream(t *testing.T, url string) *sweepStream {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	out := &sweepStream{times: map[string][]float64{}, rows: map[string][][]float64{}}
	first := true
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if first {
			var hdr struct {
				ID     string   `json:"id"`
				Probes []string `json:"probes"`
			}
			if err := json.Unmarshal(line, &hdr); err != nil {
				t.Fatalf("stream header: %v in %q", err, line)
			}
			out.id, out.probes = hdr.ID, hdr.Probes
			first = false
			continue
		}
		var chunk struct {
			Done    *bool        `json:"done"`
			State   string       `json:"state"`
			Error   string       `json:"error"`
			Sweep   *sweep.Stats `json:"sweep"`
			T       float64      `json:"t"`
			V       []float64    `json:"v"`
			Variant string       `json:"variant"`
			VSeq    int          `json:"vseq"`
		}
		if err := json.Unmarshal(line, &chunk); err != nil {
			t.Fatalf("stream chunk: %v in %q", err, line)
		}
		if chunk.Done != nil {
			out.state = serve.JobState(chunk.State)
			out.tailErr = chunk.Error
			out.stats = chunk.Sweep
			return out
		}
		if chunk.Variant == "" {
			t.Fatalf("sweep sample without a variant tag: %q", line)
		}
		if want := len(out.times[chunk.Variant]) + 1; chunk.VSeq != want {
			t.Fatalf("variant %q vseq %d, want %d (gap or reorder)", chunk.Variant, chunk.VSeq, want)
		}
		out.times[chunk.Variant] = append(out.times[chunk.Variant], chunk.T)
		out.rows[chunk.Variant] = append(out.rows[chunk.Variant], chunk.V)
	}
	t.Fatalf("stream ended without a done chunk (err=%v)", sc.Err())
	return nil
}

// TestSweepJobEndToEnd submits a sweep over POST /sweep, follows its
// interleaved stream, and checks: the demultiplexed "typ" variant matches
// a plain job of the same deck exactly, the tail carries the sweep report
// with batched panels, and /stats folds the sweep counters.
func TestSweepJobEndToEnd(t *testing.T) {
	_, base, shutdown := testServer(t, serve.Config{Workers: 4, QueueDepth: 8})
	defer shutdown(context.Background())

	spec := sweepSpec()
	resp := postJSON(t, base+"/sweep", spec)
	var st serve.Status
	if err := jsonDecode(resp, &st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit status %d", resp.StatusCode)
	}
	if st.Variants != len(spec.Variants) {
		t.Fatalf("status variants = %d, want %d", st.Variants, len(spec.Variants))
	}

	got := readSweepStream(t, base+"/v1/jobs/"+st.ID+"/stream")
	if got.state != serve.JobDone {
		t.Fatalf("sweep ended %s (%s)", got.state, got.tailErr)
	}
	for _, v := range spec.Variants {
		if len(got.times[v.Name]) == 0 {
			t.Fatalf("variant %q streamed no samples", v.Name)
		}
	}
	if got.stats == nil {
		t.Fatal("stream tail carries no sweep report")
	}
	if got.stats.Variants != len(spec.Variants) || got.stats.Lanes != len(spec.Variants) {
		t.Fatalf("sweep report %d variants / %d lanes, want %d/%d", got.stats.Variants, got.stats.Lanes, len(spec.Variants), len(spec.Variants))
	}
	if got.stats.Panel.Batched == 0 {
		t.Fatalf("sweep never batched solves into panels: %+v", got.stats.Panel)
	}

	// The unscaled variant must reproduce a plain job of the same deck
	// exactly: sweep lanes are bitwise identical to solo runs.
	plain := spec
	plain.Variants = nil
	ref := streamNDJSON(t, base+"/v1/simulate", plain)
	if ref.state != serve.JobDone {
		t.Fatalf("plain job ended %s (%s)", ref.state, ref.tailErr)
	}
	typT, typV := got.times["typ"], got.rows["typ"]
	if len(typT) != len(ref.times) {
		t.Fatalf("typ variant has %d samples, plain job %d", len(typT), len(ref.times))
	}
	for i := range ref.times {
		if typT[i] != ref.times[i] {
			t.Fatalf("typ grid diverges at %d: %g vs %g", i, typT[i], ref.times[i])
		}
		for k := range ref.rows[i] {
			if typV[i][k] != ref.rows[i][k] {
				t.Fatalf("typ deviates from the plain job at t=%g probe %d: %g vs %g", ref.times[i], k, typV[i][k], ref.rows[i][k])
			}
		}
	}

	stats := getStats(t, base)
	if stats.Totals.Sweeps != 1 {
		t.Fatalf("/stats sweeps = %d, want 1", stats.Totals.Sweeps)
	}
	if stats.Totals.SweepVariants != len(spec.Variants) {
		t.Fatalf("/stats sweep_variants = %d, want %d", stats.Totals.SweepVariants, len(spec.Variants))
	}
	if len(stats.Totals.PanelWidths) == 0 {
		t.Fatal("/stats panel_width_histogram is empty after a batched sweep")
	}
	wide := 0
	for w, n := range stats.Totals.PanelWidths {
		if w >= 2 {
			wide += n
		}
	}
	if wide == 0 {
		t.Fatalf("histogram holds no multi-RHS panels: %v", stats.Totals.PanelWidths)
	}
}

// TestSweepCrashRestartResume is the sweep analogue of the kill -9 test:
// a journal-backed server is interrupted mid-sweep (byte-for-byte journal
// snapshot), a second server restores the job, resumes each checkpointed
// variant from its own snapshot (re-running the rest), and every
// variant's stitched waveform matches the uninterrupted run on the exact
// same grid.
func TestSweepCrashRestartResume(t *testing.T) {
	leak := guardGoroutines(t)
	dirA, dirB := t.TempDir(), t.TempDir()

	_, baseA, shutdownA := testServer(t, serve.Config{
		Workers: 4, QueueDepth: 4, StateDir: dirA, CheckpointEvery: 100,
	})
	// Fixed-step TR, thousands of steps per lane: slow enough that the
	// journal snapshot below lands mid-run with both variants checkpointed.
	spec := serve.JobSpec{
		Case: "ibmpg1t", Scale: 0.2, Method: "tr", Step: 2e-12,
		Variants: []sweep.Variant{
			{Name: "a"},
			{Name: "b", SourceScales: map[string]float64{"Iload1": 1.3}},
		},
	}
	resp := postJSON(t, baseA+"/v1/sweep", spec)
	var st serve.Status
	if err := jsonDecode(resp, &st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit status %d", resp.StatusCode)
	}

	snapshot := waitForJournal(t, journalPath(dirA), `"rec":"checkpoint"`)
	if err := os.WriteFile(journalPath(dirB), snapshot, 0o644); err != nil {
		t.Fatal(err)
	}

	ref := readSweepStream(t, baseA+"/v1/jobs/"+st.ID+"/stream")
	if ref.state != serve.JobDone {
		t.Fatalf("reference sweep ended %s (%s)", ref.state, ref.tailErr)
	}
	if err := shutdownA(context.Background()); err != nil {
		t.Fatal(err)
	}

	_, baseB, shutdownB := testServer(t, serve.Config{
		Workers: 4, QueueDepth: 4, StateDir: dirB, CheckpointEvery: 100,
	})
	defer func() {
		if err := shutdownB(context.Background()); err != nil {
			t.Fatal(err)
		}
		leak()
	}()
	if stats := getStats(t, baseB); stats.Resumed != 1 {
		t.Fatalf("restarted server resumed %d jobs, want 1", stats.Resumed)
	}
	got := readSweepStream(t, baseB+"/v1/jobs/"+st.ID+"/stream")
	if got.state != serve.JobDone {
		t.Fatalf("resumed sweep ended %s (%s)", got.state, got.tailErr)
	}

	for _, v := range spec.Variants {
		rt, gt := ref.times[v.Name], got.times[v.Name]
		if len(gt) != len(rt) {
			t.Fatalf("variant %q resumed with %d samples, reference %d", v.Name, len(gt), len(rt))
		}
		rv, gv := ref.rows[v.Name], got.rows[v.Name]
		for i := range rt {
			if gt[i] != rt[i] {
				t.Fatalf("variant %q grid diverges at %d: %g vs %g (gap or duplicate)", v.Name, i, gt[i], rt[i])
			}
			for k := range rv[i] {
				if d := math.Abs(gv[i][k] - rv[i][k]); d > 1e-12 {
					t.Fatalf("variant %q deviates %g at t=%g (probe %d)", v.Name, d, rt[i], k)
				}
			}
		}
	}
}

// TestSweepAndJobsConcurrentHammer runs sweep jobs and plain jobs through
// one server at once: every job shares the same factorization cache and
// workspace pool while the sweeps batch panels internally. Primarily a
// race-detector target (tier-1 runs the suite under -race); it also
// checks everything completes and the cache was actually shared.
func TestSweepAndJobsConcurrentHammer(t *testing.T) {
	_, base, shutdown := testServer(t, serve.Config{Workers: 6, QueueDepth: 16})
	defer shutdown(context.Background())

	plain := serve.JobSpec{Case: "ibmpg1t", Scale: 0.2, Tol: 1e-8}
	var wg sync.WaitGroup
	fail := make(chan string, 8)
	for i := 0; i < 2; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			resp := postJSON(t, base+"/sweep", sweepSpec())
			var st serve.Status
			if err := jsonDecode(resp, &st); err != nil {
				fail <- err.Error()
				return
			}
			if got := readSweepStream(t, base+"/v1/jobs/"+st.ID+"/stream"); got.state != serve.JobDone {
				fail <- "sweep ended " + string(got.state) + " (" + got.tailErr + ")"
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 2; j++ {
				if got := streamNDJSON(t, base+"/v1/simulate", plain); got.state != serve.JobDone {
					fail <- "plain job ended " + string(got.state) + " (" + got.tailErr + ")"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
	stats := getStats(t, base)
	if stats.Totals.Sweeps != 2 {
		t.Fatalf("/stats sweeps = %d, want 2", stats.Totals.Sweeps)
	}
	if stats.Cache.Hits == 0 {
		t.Fatal("no shared-cache hits across concurrent sweep and plain jobs")
	}
}

// TestSweepSpecValidation covers submit-time sweep rejections.
func TestSweepSpecValidation(t *testing.T) {
	srv, base, shutdown := testServer(t, serve.Config{Workers: 1, QueueDepth: 4})
	defer shutdown(context.Background())

	cases := []struct {
		name string
		mut  func(*serve.JobSpec)
	}{
		{"distributed sweep", func(s *serve.JobSpec) { s.Distributed = true }},
		{"unknown source", func(s *serve.JobSpec) {
			s.Variants[1].SourceScales = map[string]float64{"nope": 2}
		}},
		{"duplicate names", func(s *serve.JobSpec) { s.Variants[1].Name = "typ" }},
		{"too many variants", func(s *serve.JobSpec) {
			s.Variants = make([]sweep.Variant, serve.MaxSweepVariants+1)
		}},
	}
	for _, tc := range cases {
		spec := sweepSpec()
		tc.mut(&spec)
		if _, err := srv.Submit(spec); err == nil {
			t.Errorf("%s: accepted, want rejection", tc.name)
		}
	}

	// The dedicated endpoint refuses a variant-less spec outright.
	spec := sweepSpec()
	spec.Variants = nil
	resp := postJSON(t, base+"/sweep", spec)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("variant-less POST /sweep answered %d, want 400", resp.StatusCode)
	}
}
