package serve

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context canceled on SIGINT or SIGTERM — the
// shared shutdown trigger of cmd/matexsrv and cmd/matexd. The second
// signal restores the default handler, so a stuck drain can still be
// killed interactively. Call the returned stop function when done.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
