package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/dist"
	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/netlist"
	"github.com/matex-sim/matex/internal/pdn"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/sweep"
	"github.com/matex-sim/matex/internal/transient"
)

// JobSpec is the JSON body of a job submission: the input deck (inline
// SPICE text or a named pgbench case) plus the solver configuration, all
// optional except the deck. The field spellings match the matex CLI flags.
type JobSpec struct {
	// Netlist is an inline SPICE-subset deck (the IBM power grid format).
	// Exactly one of Netlist and Case must be set.
	Netlist string `json:"netlist,omitempty"`
	// Case names a synthetic pgbench benchmark ("ibmpg1t" … "ibmpg6t");
	// Scale multiplies the grid edge (0 = 1.0) and NumProbes spreads that
	// many probes across the grid diagonal (0 = 4), exactly like
	// `pgbench -case X -scale S -probes P | matex`.
	Case      string  `json:"case,omitempty"`
	Scale     float64 `json:"scale,omitempty"`
	NumProbes int     `json:"num_probes,omitempty"`

	// Method selects the integrator ("tr", "be", "fe", "tradpt", "mexp",
	// "imatex", "rmatex"; empty = rmatex).
	Method string `json:"method,omitempty"`
	// Tstop/Step in seconds; 0 defers to the deck's .tran card.
	Tstop float64 `json:"tstop,omitempty"`
	Step  float64 `json:"step,omitempty"`
	// Tol, Gamma, MaxDim as in transient.Options (0 = defaults).
	Tol    float64 `json:"tol,omitempty"`
	Gamma  float64 `json:"gamma,omitempty"`
	MaxDim int     `json:"max_dim,omitempty"`
	// Krylov: "auto", "arnoldi", "lanczos" (empty = auto).
	Krylov string `json:"krylov,omitempty"`
	// Ordering: "default", "natural", "rcm", "mindeg", "nd" (empty =
	// default, resolved against the server's -order setting).
	Ordering string `json:"ordering,omitempty"`
	// SolveWorkers > 1 enables level-scheduled parallel triangular solves.
	SolveWorkers int `json:"solve_workers,omitempty"`
	// Distributed runs the job through the dist scheduler (bump-feature
	// decomposition): over the server's matexd workers when configured,
	// else over the in-process pool. Distributed jobs stream their
	// superposed waveform once the subtasks land rather than per-step.
	Distributed bool `json:"distributed,omitempty"`
	// TimeoutSec, when positive, is the per-job deadline; an expired job
	// is reported canceled.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// Variants, when non-empty, makes this a sweep job: every variant of
	// the deck runs through internal/sweep as one batched computation
	// (shared factorization-cache lineage, cross-variant solve panels,
	// collinear-variant sharing) and the stream interleaves all variants'
	// samples, each tagged with its variant name and per-variant sequence
	// number. Sweep jobs cannot be distributed, and are capped at
	// MaxSweepVariants variants.
	Variants []sweep.Variant `json:"variants,omitempty"`
}

// MaxSweepVariants bounds the variant count of one sweep job: enough for
// corner grids and modest Monte-Carlo batches, small enough that one job
// cannot monopolize the worker pool's memory.
const MaxSweepVariants = 64

// builtJob is a validated, stamped job ready to run.
type builtJob struct {
	sys    *circuit.System
	method transient.Method
	krylov krylov.Method
	order  sparse.Ordering
	probes []int
	names  []string
	tstop  float64
	step   float64
}

// build validates the spec and stamps the MNA system. All submission-time
// errors (bad deck, unknown method, missing window) surface here so the
// HTTP layer can answer 400 before the job is queued.
func (spec *JobSpec) build() (*builtJob, error) {
	if (spec.Netlist == "") == (spec.Case == "") {
		return nil, errors.New("exactly one of netlist and case must be set")
	}
	b := &builtJob{tstop: spec.Tstop, step: spec.Step}

	var err error
	if b.method, err = transient.ParseMethod(spec.Method); err != nil {
		return nil, err
	}
	if b.krylov, err = krylov.ParseMethod(strings.ToLower(strings.TrimSpace(spec.Krylov))); err != nil {
		return nil, err
	}
	if b.order, err = sparse.ParseOrdering(spec.Ordering); err != nil {
		return nil, err
	}

	var probeNames []string
	if spec.Netlist != "" {
		deck, err := netlist.Parse(strings.NewReader(spec.Netlist))
		if err != nil {
			return nil, err
		}
		if b.sys, err = deck.Build(); err != nil {
			return nil, err
		}
		if b.tstop == 0 {
			b.tstop = deck.TranStop
		}
		if b.step == 0 {
			b.step = deck.TranStep
		}
		probeNames = deck.Prints
	} else {
		gspec, err := pdn.IBMCase(spec.Case, scaleOrOne(spec.Scale))
		if err != nil {
			return nil, err
		}
		ckt, err := gspec.Build()
		if err != nil {
			return nil, err
		}
		if b.sys, err = circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true}); err != nil {
			return nil, err
		}
		if b.tstop == 0 {
			b.tstop = gspec.Tstop
		}
		np := spec.NumProbes
		if np <= 0 {
			np = 4
		}
		for i := 0; i < np; i++ {
			x := (i + 1) * gspec.NX / (np + 1)
			y := (i + 1) * gspec.NY / (np + 1)
			probeNames = append(probeNames, pdn.NodeName(x, y))
		}
	}
	if b.tstop <= 0 {
		return nil, errors.New("no simulation window: set tstop or add a .tran card")
	}
	if (b.method == transient.TRFixed || b.method == transient.BEFixed || b.method == transient.FEFixed) && b.step <= 0 {
		return nil, fmt.Errorf("fixed-step method %q needs step or a .tran step in the deck", spec.Method)
	}
	if len(spec.Variants) > 0 {
		if spec.Distributed {
			return nil, errors.New("a sweep job cannot also be distributed")
		}
		if len(spec.Variants) > MaxSweepVariants {
			return nil, fmt.Errorf("sweep has %d variants; the limit is %d", len(spec.Variants), MaxSweepVariants)
		}
		if err := sweep.Validate(b.sys, spec.Variants); err != nil {
			return nil, err
		}
	}

	// Probes: the deck's .print cards (or the diagonal spread), else the
	// first free node — the same fallback as cmd/matex, through the same
	// shared resolver (supply rails are silently dropped here; the CLI
	// warns on stderr instead).
	if len(probeNames) == 0 {
		if names := b.sys.NodeNames(); len(names) > 0 {
			probeNames = names[:1]
		}
	}
	if b.probes, b.names, _, err = b.sys.ResolveProbes(probeNames); err != nil {
		return nil, err
	}
	return b, nil
}

func scaleOrOne(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return s
}

// JobState is the lifecycle phase of a job.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker slot.
	JobQueued JobState = "queued"
	// JobRunning: a worker is integrating it.
	JobRunning JobState = "running"
	// JobDone: finished; the full waveform and stats are available.
	JobDone JobState = "done"
	// JobFailed: the solver returned an error.
	JobFailed JobState = "failed"
	// JobCanceled: canceled by the client, the per-job deadline, or
	// server shutdown before completion.
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Sample is one streamed waveform chunk: the time point and the probed
// node voltages, in the probe order announced by the stream header. On a
// sweep job, Variant names the variant the sample belongs to and VSeq is
// its 1-based position within that variant's waveform — the stream
// interleaves variants as their lanes advance, and VSeq is what lets a
// client demultiplex it back into per-variant waveforms with no
// reordering ambiguity. Plain jobs leave both fields zero.
type Sample struct {
	T       float64   `json:"t"`
	V       []float64 `json:"v,omitempty"`
	Variant string    `json:"variant,omitempty"`
	VSeq    int       `json:"vseq,omitempty"`
}

// Job is one queued or running simulation. Samples accumulate as the
// integrator advances; any number of stream subscribers replay them from
// the start and then follow live.
type Job struct {
	// ID is the server-assigned job identifier.
	ID string
	// Spec is the submitted request.
	Spec JobSpec

	built     *builtJob
	submitted time.Time

	// jn is the server's durable journal (nil on in-memory servers) and
	// resume the checkpoint a journal-restored job re-enters the integrator
	// from (nil = run from the start); vresume is its sweep-job analogue,
	// the per-variant-name checkpoints of a restored sweep. All are set
	// before the job is published and never change.
	jn      *journal
	resume  *transient.Checkpoint
	vresume map[string]*transient.Checkpoint

	mu       sync.Mutex
	notify   chan struct{} // closed and replaced on every append/state change
	state    JobState
	samples  []Sample
	flushed  int            // samples[:flushed] are journaled (covered by a checkpoint)
	vseq     map[string]int // last VSeq assigned per variant (sweep jobs)
	err      error
	stats    *transient.Stats
	sweep    *sweep.Stats
	report   *dist.Report
	cancel   context.CancelFunc
	started  time.Time
	finished time.Time
}

func newJob(id string, spec JobSpec, built *builtJob) *Job {
	return &Job{
		ID:        id,
		Spec:      spec,
		built:     built,
		submitted: time.Now(),
		notify:    make(chan struct{}),
		state:     JobQueued,
	}
}

// broadcast wakes every waiting subscriber. Callers hold j.mu.
func (j *Job) broadcast() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// appendSample records one streamed chunk (the transient.Options.OnSample
// hook; also used to replay a distributed run's superposed waveform).
func (j *Job) appendSample(t float64, v []float64) {
	j.mu.Lock()
	j.samples = append(j.samples, Sample{T: t, V: append([]float64(nil), v...)})
	j.broadcast()
	j.mu.Unlock()
}

// appendVariantSample records one sweep sample, stamping the variant name
// and the next per-variant sequence number (the sweep.OnVariantSample
// hook — called concurrently from the sweep's lanes).
func (j *Job) appendVariantSample(name string, t float64, v []float64) {
	j.mu.Lock()
	if j.vseq == nil {
		j.vseq = make(map[string]int)
	}
	j.vseq[name]++
	j.samples = append(j.samples, Sample{T: t, V: append([]float64(nil), v...), Variant: name, VSeq: j.vseq[name]})
	j.broadcast()
	j.mu.Unlock()
}

// journalCheckpoint is the transient.Options.OnCheckpoint hook of a
// journal-backed job: flush the not-yet-durable samples first, then the
// fsynced checkpoint record — the order that guarantees every sample at or
// before a durable checkpoint's time is itself durable, which is what lets
// a resumed run (re-emitting samples after cp.T) splice onto the restored
// buffer with no gaps and no duplicates. A failed append aborts the run:
// the integrator surfaces the error and the job fails rather than keep
// computing results the journal cannot make durable.
func (j *Job) journalCheckpoint(cp transient.Checkpoint) error {
	return j.journalVariantCheckpoint("", cp)
}

// journalVariantCheckpoint is journalCheckpoint with a variant tag: a
// sweep lane's checkpoint flushes every not-yet-durable sample first (all
// variants' — a superset of the per-variant invariant, so the splice
// guarantee holds for each variant independently). Lanes checkpoint
// concurrently; overlapping flush batches are benign because replay
// folds them with overwrite-at-From semantics.
func (j *Job) journalVariantCheckpoint(variant string, cp transient.Checkpoint) error {
	j.mu.Lock()
	from := j.flushed
	batch := j.samples[from:len(j.samples):len(j.samples)]
	j.mu.Unlock()
	if len(batch) > 0 {
		if err := j.jn.appendSamples(j.ID, from, batch); err != nil {
			return err
		}
	}
	if err := j.jn.appendCheckpoint(j.ID, variant, cp); err != nil {
		return err
	}
	j.mu.Lock()
	if from+len(batch) > j.flushed {
		j.flushed = from + len(batch)
	}
	j.mu.Unlock()
	return nil
}

// setSweepStats records a finished sweep's batching report (called by the
// worker just before finish publishes the terminal state).
func (j *Job) setSweepStats(st *sweep.Stats) {
	j.mu.Lock()
	j.sweep = st
	j.mu.Unlock()
}

// markRunning transitions queued → running; it reports false when the job
// was canceled while waiting in the queue.
func (j *Job) markRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.cancel = cancel
	j.started = time.Now()
	j.broadcast()
	return true
}

// finish records the outcome. A run aborted by its context reports
// canceled; everything else is done or failed.
func (j *Job) finish(res *transient.Result, rep *dist.Report, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	j.report = rep
	switch {
	case err == nil:
		j.state = JobDone
		j.stats = &res.Stats
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = JobCanceled
		j.err = err
	default:
		j.state = JobFailed
		j.err = err
	}
	j.cancel = nil
	j.releaseInputsLocked()
	j.broadcast()
}

// releaseInputsLocked drops the stamped MNA system and the inline deck
// text once the job can no longer run: retained finished jobs then hold
// only their samples, probe names and stats, so the MaxRetainedJobs
// window costs waveform memory, not stamped-system memory (a large IBM
// deck is tens of MB of text plus a comparable sparse system). Callers
// hold j.mu.
func (j *Job) releaseInputsLocked() {
	j.built.sys = nil
	j.Spec.Netlist = ""
}

// Cancel stops the job: a queued job is canceled in place (workers skip
// it), a running one has its context canceled and reports canceled when
// the integrator unwinds. Terminal jobs are left alone.
func (j *Job) Cancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case JobQueued:
		j.state = JobCanceled
		j.err = context.Canceled
		j.finished = time.Now()
		j.releaseInputsLocked()
		j.broadcast()
	case JobRunning:
		if j.cancel != nil {
			j.cancel() // finish() runs on the worker goroutine
		}
	}
}

// snapshotFrom returns the samples from index i on, the current state, and
// the channel that closes on the next change — the subscriber loop:
// drain the batch, and if the state is not terminal, wait on ch.
func (j *Job) snapshotFrom(i int) (batch []Sample, state JobState, ch <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < len(j.samples) {
		batch = j.samples[i:len(j.samples):len(j.samples)]
	}
	return batch, j.state, j.notify
}

// State returns the job's current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Status is the JSON shape of a job's current state.
type Status struct {
	ID      string   `json:"id"`
	State   JobState `json:"state"`
	Probes  []string `json:"probes,omitempty"`
	Samples int      `json:"samples"`
	Error   string   `json:"error,omitempty"`
	// Queued/Started/Finished are Unix nanoseconds (0 = not yet).
	Queued   int64 `json:"queued_ns,omitempty"`
	Started  int64 `json:"started_ns,omitempty"`
	Finished int64 `json:"finished_ns,omitempty"`
	// Stats is the solver work report, present once the job is done (for
	// sweep jobs: the counters folded across every lane).
	Stats *transient.Stats `json:"stats,omitempty"`
	// Variants is the variant count of a sweep job (0 for plain jobs);
	// Sweep is its batching report — lanes run, variants served by
	// sharing, panel width histogram — present once the job is done.
	Variants int          `json:"variants,omitempty"`
	Sweep    *sweep.Stats `json:"sweep,omitempty"`
	// Groups/Retried surface the dist report for distributed jobs.
	Groups  int `json:"groups,omitempty"`
	Retried int `json:"retried,omitempty"`
}

// Status snapshots the job for the status endpoint.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:       j.ID,
		State:    j.state,
		Probes:   j.built.names,
		Samples:  len(j.samples),
		Queued:   j.submitted.UnixNano(),
		Stats:    j.stats,
		Variants: len(j.Spec.Variants),
		Sweep:    j.sweep,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		st.Started = j.started.UnixNano()
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UnixNano()
	}
	if j.report != nil {
		st.Groups = j.report.Groups
		st.Retried = j.report.Retried
	}
	return st
}
