package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/matex-sim/matex/internal/sparse"
)

// maxBodyBytes bounds a submission body; the big IBM decks are tens of
// megabytes, so the limit is generous without being unbounded.
const maxBodyBytes = 256 << 20

// Handler returns the service's HTTP API:
//
//	GET    /healthz              liveness
//	GET    /readyz               readiness; 503 once draining begins
//	GET    /stats                queue, cache and solver-work counters
//	POST   /v1/jobs              submit a JobSpec, returns the job Status
//	GET    /v1/jobs              list job statuses
//	GET    /v1/jobs/{id}         one job's Status
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/jobs/{id}/stream  waveform stream (NDJSON; ?sse=1 for SSE)
//	POST   /v1/simulate          submit and stream in one request
//	POST   /v1/sweep             submit a sweep (a JobSpec with variants);
//	                             /sweep is an alias
//
// A sweep job's stream interleaves every variant's samples; each sample
// chunk carries the variant name and a per-variant sequence number
// ("variant"/"vseq") on top of the global "seq" resume cursor, so one
// connection demultiplexes into N waveforms.
//
// Streams are resumable: every sample carries a monotonic 1-based sequence
// number (the NDJSON "seq" field; the SSE `id:` line). A dropped NDJSON
// consumer re-requests with ?from_seq=N to skip the N samples it already
// has; an SSE client's automatic reconnect sends Last-Event-ID and replays
// from there — against a journal-backed server this works across a crash
// and restart too, because restored jobs keep their sample buffers.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /sweep", s.handleSweep)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v) //matex:err-ok(headers already committed; an encode failure means a dead client)
}

type errorReply struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorReply{Error: err.Error()})
}

// submitCode maps a Submit error to its HTTP status.
func submitCode(err error) int {
	switch {
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrJournal):
		return http.StatusInternalServerError // server's disk, not the client's spec
	default:
		return http.StatusBadRequest
	}
}

// writeSubmitError maps a Submit failure to its status; 429 additionally
// carries a Retry-After estimate so well-behaved clients back off for about
// as long as the queue actually needs to open a slot.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	code := submitCode(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
	}
	writeError(w, code, err)
}

// retryAfter estimates the seconds until a queue slot frees: the backlog
// (queued + running + the rejected request) times the observed mean job
// wall time, divided across the workers. With no completed runs yet there
// is nothing to extrapolate from, so answer 1s; the clamp keeps a pile-up
// of hour-long jobs from telling clients to go away for a day.
func (s *Server) retryAfter() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.runs == 0 {
		return 1
	}
	mean := float64(s.runNanos) / float64(s.runs) / float64(time.Second)
	backlog := float64(len(s.queue) + s.inFlight + 1)
	secs := int(math.Ceil(backlog * mean / float64(s.cfg.Workers)))
	if secs < 1 {
		secs = 1
	}
	if secs > 3600 {
		secs = 3600
	}
	return secs
}

func decodeSpec(w http.ResponseWriter, r *http.Request) (JobSpec, bool) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, fmt.Errorf("decoding job spec: %w", err))
		return spec, false
	}
	return spec, true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         true,
		"uptime_sec": time.Since(s.start).Seconds(),
	})
}

// handleReadyz is the load-balancer readiness probe: 200 while accepting
// jobs, 503 from the moment BeginDrain/Shutdown starts — the instance keeps
// serving in-flight streams through the drain window, but new traffic
// should go elsewhere. (Liveness stays /healthz: a draining process is
// still alive.)
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "draining": true})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// StatsReply is the /stats payload.
type StatsReply struct {
	UptimeSec  float64 `json:"uptime_sec"`
	Workers    int     `json:"workers"`
	QueueDepth int     `json:"queue_depth"`
	QueueCap   int     `json:"queue_cap"`
	InFlight   int     `json:"in_flight"`
	Accepted   uint64  `json:"jobs_accepted"`
	Completed  uint64  `json:"jobs_completed"`
	Failed     uint64  `json:"jobs_failed"`
	Canceled   uint64  `json:"jobs_canceled"`
	// Resumed counts jobs re-enqueued from the durable journal at startup
	// (always 0 without -state-dir).
	Resumed uint64 `json:"jobs_resumed"`
	// Totals folds the solver work counters of completed jobs; CacheHits
	// counts factorization acquisitions served from the shared cache, so
	// any value above the cold-start misses demonstrates cross-job reuse.
	Totals totals `json:"totals"`
	// Cache is the shared factorization cache's own view (includes the
	// symbolic pattern tier).
	Cache sparse.CacheStats `json:"cache"`
}

func (s *Server) statsReply() StatsReply {
	s.mu.Lock()
	rep := StatsReply{
		UptimeSec:  time.Since(s.start).Seconds(),
		Workers:    s.cfg.Workers,
		QueueDepth: len(s.queue),
		QueueCap:   cap(s.queue),
		InFlight:   s.inFlight,
		Accepted:   s.accepted,
		Completed:  s.completed,
		Failed:     s.failed,
		Canceled:   s.canceled,
		Resumed:    s.resumed,
		Totals:     s.agg,
	}
	// The histogram map must not alias s.agg's: the reply is marshaled
	// after the lock drops, racing later addSweep merges otherwise.
	if len(s.agg.PanelWidths) > 0 {
		pw := make(map[int]int, len(s.agg.PanelWidths))
		for wdt, n := range s.agg.PanelWidths {
			pw[wdt] = n
		}
		rep.Totals.PanelWidths = pw
	}
	s.mu.Unlock()
	rep.Cache = s.cache.Stats()
	return rep
}

// handleSweep submits a sweep job: a JobSpec whose variants list is
// required here (POST /v1/jobs accepts sweep specs too; this endpoint
// just refuses to silently run a plain job when the caller meant N).
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	spec, ok := decodeSpec(w, r)
	if !ok {
		return
	}
	if len(spec.Variants) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("sweep submission needs a non-empty variants list"))
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsReply())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, ok := decodeSpec(w, r)
	if !ok {
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return nil, false
	}
	return job, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, job.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		s.streamJob(w, r, job)
	}
}

// handleSimulate is submit-and-stream in one request: the response starts
// with the stream header as soon as the job is queued and follows the
// waveform live — the curl-friendly entry point.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	spec, ok := decodeSpec(w, r)
	if !ok {
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	s.streamJob(w, r, job)
}

// streamHeader is the first chunk of every stream: the job identity and
// the probe order of the sample rows.
type streamHeader struct {
	ID     string   `json:"id"`
	Probes []string `json:"probes"`
}

// streamTail is the last chunk: terminal state, error if any, and the
// solver work stats for done jobs.
type streamTail struct {
	Done    bool     `json:"done"`
	State   JobState `json:"state"`
	Samples int      `json:"samples"`
	Error   string   `json:"error,omitempty"`
	Stats   any      `json:"stats,omitempty"`
	// Sweep carries the batching report on sweep-job streams.
	Sweep any `json:"sweep,omitempty"`
}

// streamSample is one streamed sample chunk: the Sample plus its monotonic
// 1-based sequence number — the resume cursor (?from_seq= / Last-Event-ID).
type streamSample struct {
	Seq int `json:"seq"`
	Sample
}

// streamCursor reads the client's resume position: the number of samples it
// already holds. ?from_seq=N works on both encodings; an SSE reconnect's
// Last-Event-ID header (set automatically by EventSource from the `id:`
// lines) wins when larger. Malformed values fall back to a full replay —
// the always-correct answer, just a wasteful one.
func streamCursor(r *http.Request, sse bool) int {
	cursor := 0
	if v := r.URL.Query().Get("from_seq"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > cursor {
			cursor = n
		}
	}
	if sse {
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > cursor {
				cursor = n
			}
		}
	}
	return cursor
}

// streamJob replays the job's samples from the client's cursor (default:
// the start) and follows them live, one JSON object per chunk: NDJSON by
// default, SSE `data:` events with ?sse=1 (or an Accept: text/event-stream
// header). Sample chunks carry their sequence number (NDJSON "seq" field,
// SSE `id:` line), so a disconnected client resumes exactly where it left
// off with no gaps and no duplicates. Each chunk is flushed as written, so
// a slow consumer sees the waveform grow while the integrator is still
// inside the run.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, job *Job) {
	sse := r.URL.Query().Get("sse") == "1" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)

	// emit writes one chunk; seq > 0 marks a sample chunk and becomes the
	// SSE event ID (header and tail chunks carry none, so they never move
	// a reconnecting client's cursor).
	emit := func(seq int, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if sse {
			if seq > 0 {
				_, err = fmt.Fprintf(w, "id: %d\ndata: %s\n\n", seq, data)
			} else {
				_, err = fmt.Fprintf(w, "data: %s\n\n", data)
			}
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		if err != nil {
			return false // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	st := job.Status()
	if !emit(0, streamHeader{ID: job.ID, Probes: st.Probes}) {
		return
	}
	i := streamCursor(r, sse)
	for {
		batch, state, ch := job.snapshotFrom(i)
		for k, smp := range batch {
			if !emit(i+k+1, streamSample{Seq: i + k + 1, Sample: smp}) {
				return
			}
		}
		i += len(batch)
		if state.Terminal() {
			break
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
	final := job.Status()
	tail := streamTail{Done: true, State: final.State, Samples: i, Error: final.Error}
	if final.Stats != nil {
		tail.Stats = final.Stats
	}
	if final.Sweep != nil {
		tail.Sweep = final.Sweep
	}
	emit(0, tail)
}
