package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/matex-sim/matex/internal/faultinject"
	"github.com/matex-sim/matex/internal/serve"
)

// jsonDecode decodes a JSON response body and closes it.
func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// streamNDJSON consumes an NDJSON stream: GET on a stream URL, or POST when
// a spec is given (/v1/simulate). Blocks until the done tail arrives.
func streamNDJSON(t *testing.T, url string, spec ...serve.JobSpec) *streamedJob {
	t.Helper()
	var resp *http.Response
	if len(spec) > 0 {
		resp = postJSON(t, url, spec[0])
	} else {
		var err error
		if resp, err = http.Get(url); err != nil {
			t.Fatal(err)
		}
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return readStream(t, sc)
}

// guardGoroutines snapshots the goroutine count and returns a check that
// fails the test if it has not returned to (near) the baseline — the
// chaos suites' no-leak assertion.
func guardGoroutines(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > base+2 {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d at start, %d now\n%s", base, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// journalPath is where the server keeps its journal under a state dir.
func journalPath(dir string) string { return filepath.Join(dir, "journal.jsonl") }

// waitForJournal polls the journal file until it holds a mid-run snapshot:
// marker present, but no terminal record yet — what a kill -9 during the
// run would have left behind. A journal that reaches "done" before a
// marker-bearing snapshot was captured fails the test (the job must be
// slow enough to catch mid-run).
func waitForJournal(t *testing.T, path, marker string) []byte {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		b, err := os.ReadFile(path)
		if err == nil && strings.Contains(string(b), marker) {
			if strings.Contains(string(b), `"rec":"done"`) {
				t.Fatalf("journal reached a terminal record before a mid-run snapshot could be taken")
			}
			return b
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal %s never contained %q", path, marker)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getStats(t *testing.T, base string) serve.StatsReply {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.StatsReply
	if err := jsonDecode(resp, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestReadyzFlipsOnDrainAndRetryAfterOn429: /readyz answers 200 while the
// intake is open and 503 the moment draining begins (while /healthz stays
// 200 — the process is alive, just not accepting), and a 429 rejection
// carries a Retry-After estimate derived from the backlog.
func TestReadyzFlipsOnDrainAndRetryAfter(t *testing.T) {
	deckText := testDeck(t)
	srv, base, shutdown := testServer(t, serve.Config{Workers: 1, QueueDepth: 1})
	defer shutdown(context.Background())

	ready, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d before drain, want 200", ready.StatusCode)
	}

	// Saturate: one slow job running, one queued; the third answers 429
	// with a Retry-After estimate.
	// ~100k fixed steps: slow enough that the single worker is pinned while
	// the queue fills behind it (the jobs are canceled at the end).
	slow := serve.JobSpec{Netlist: deckText, Method: "tr", Step: 1e-13}
	first := postJSON(t, base+"/v1/jobs", slow)
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d", first.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp := postJSON(t, base+"/v1/jobs", slow)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if after := resp.Header.Get("Retry-After"); after == "" || after == "0" {
				t.Fatalf("429 without a usable Retry-After (%q)", after)
			}
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("overload submit status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}

	srv.BeginDrain()
	ready, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d during drain, want 503", ready.StatusCode)
	}
	alive, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	alive.Body.Close()
	if alive.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d during drain, want 200", alive.StatusCode)
	}
	// Unblock the drain: the slow jobs would otherwise run for a while.
	for _, j := range srv.Jobs() {
		j.Cancel()
	}
}

// TestCrashRestartResumesFromCheckpoint is the kill -9 acceptance test: a
// journal-backed server is interrupted mid-job, a second server starts on
// the journal as it existed at the interruption instant, resumes the job
// from its last durable checkpoint, and the stitched waveform (restored
// samples + resumed tail) matches the uninterrupted run to <= 1e-12 with
// the exact same time grid — no gaps, no duplicates.
//
// The "crash" is a byte-for-byte copy of the append-only journal taken
// while server A is mid-run: that file is exactly what a SIGKILLed process
// would have left on disk at that instant (the real-signal version lives in
// scripts/e2e_smoke.sh). Server A then finishes cleanly to provide the
// uninterrupted reference.
func TestCrashRestartResumesFromCheckpoint(t *testing.T) {
	leak := guardGoroutines(t)
	deckText := testDeck(t)
	dirA, dirB := t.TempDir(), t.TempDir()

	_, baseA, shutdownA := testServer(t, serve.Config{
		Workers: 1, QueueDepth: 4, StateDir: dirA, CheckpointEvery: 100,
	})
	// A deliberately long fixed-step run (5000 steps) so the mid-run journal
	// snapshot below is guaranteed to land while the integrator is inside it.
	resp := postJSON(t, baseA+"/v1/jobs", serve.JobSpec{Netlist: deckText, Method: "tr", Step: 2e-12})
	var st serve.Status
	if err := jsonDecode(resp, &st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	// Snapshot the journal once it provably holds a mid-run checkpoint.
	snapshot := waitForJournal(t, journalPath(dirA), `"rec":"checkpoint"`)
	if err := os.WriteFile(journalPath(dirB), snapshot, 0o644); err != nil {
		t.Fatal(err)
	}

	// Let A finish untouched: its stream is the uninterrupted reference.
	ref := streamNDJSON(t, baseA+"/v1/jobs/"+st.ID+"/stream")
	if ref.state != serve.JobDone {
		t.Fatalf("reference job ended %s (%s)", ref.state, ref.tailErr)
	}
	if err := shutdownA(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Server B starts on the snapshot: the job must come back under its
	// original ID, resume from the checkpoint, and complete.
	_, baseB, shutdownB := testServer(t, serve.Config{
		Workers: 1, QueueDepth: 4, StateDir: dirB, CheckpointEvery: 100,
	})
	defer func() {
		if err := shutdownB(context.Background()); err != nil {
			t.Fatal(err)
		}
		leak()
	}()
	if stats := getStats(t, baseB); stats.Resumed != 1 {
		t.Fatalf("restarted server resumed %d jobs, want 1", stats.Resumed)
	}
	got := streamNDJSON(t, baseB+"/v1/jobs/"+st.ID+"/stream")
	if got.state != serve.JobDone {
		t.Fatalf("resumed job ended %s (%s)", got.state, got.tailErr)
	}

	if len(got.times) != len(ref.times) {
		t.Fatalf("resumed waveform has %d samples, reference %d", len(got.times), len(ref.times))
	}
	for i := range ref.times {
		if got.times[i] != ref.times[i] {
			t.Fatalf("time grid diverges at %d: %g vs %g (gap or duplicate)", i, got.times[i], ref.times[i])
		}
		for k := range ref.rows[i] {
			if d := math.Abs(got.rows[i][k] - ref.rows[i][k]); d > 1e-12 {
				t.Fatalf("resumed waveform deviates %g at t=%g (probe %d)", d, ref.times[i], k)
			}
		}
	}
}

// TestRestartPrunesCompletedJobs: a finished job's journal entries are
// compacted away on restart, nothing is resumed, and the job counter keeps
// counting past every journaled ID (no reuse after restart).
func TestRestartPrunesCompletedJobs(t *testing.T) {
	deckText := testDeck(t)
	dir := t.TempDir()

	_, base, shutdown := testServer(t, serve.Config{Workers: 1, QueueDepth: 4, StateDir: dir})
	done := streamNDJSON(t, base+"/v1/simulate", serve.JobSpec{Netlist: deckText, Method: "rmatex", Tol: 1e-6})
	if done.state != serve.JobDone {
		t.Fatalf("job ended %s (%s)", done.state, done.tailErr)
	}
	if err := shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	_, base2, shutdown2 := testServer(t, serve.Config{Workers: 1, QueueDepth: 4, StateDir: dir})
	defer shutdown2(context.Background())
	stats := getStats(t, base2)
	if stats.Resumed != 0 {
		t.Fatalf("restart resumed %d completed jobs", stats.Resumed)
	}
	if b, err := os.ReadFile(journalPath(dir)); err != nil || strings.Contains(string(b), `"rec":"spec"`) {
		t.Fatalf("journal not compacted after restart (err=%v, %d bytes)", err, len(b))
	}
	resp := postJSON(t, base2+"/v1/jobs", serve.JobSpec{Netlist: deckText, Method: "rmatex", Tol: 1e-6})
	var st serve.Status
	if err := jsonDecode(resp, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-2" {
		t.Fatalf("restarted server issued %s, want job-2 (counter must outlive restarts)", st.ID)
	}
}

// TestJournalAppendFaultRejectsSubmit injects a journal-append failure
// (disk full) at submit: the submission is rejected with the typed journal
// error over HTTP as a 500, the server stays healthy, and the next submit
// succeeds — an accepted job is always a durable job.
func TestJournalAppendFaultRejectsSubmit(t *testing.T) {
	leak := guardGoroutines(t)
	deckText := testDeck(t)
	reg := faultinject.New(42)
	reg.Arm(faultinject.JournalAppend, faultinject.Plan{Times: 1})

	srv, base, shutdown := testServer(t, serve.Config{
		Workers: 1, QueueDepth: 4, StateDir: t.TempDir(), Fault: reg,
	})
	defer func() {
		if err := shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		leak()
	}()

	_, err := srv.Submit(serve.JobSpec{Netlist: deckText, Method: "rmatex", Tol: 1e-6})
	if !errors.Is(err, serve.ErrJournal) || !faultinject.IsInjected(err) {
		t.Fatalf("faulted submit returned %v, want ErrJournal wrapping an injected fault", err)
	}
	if reg.Fired(faultinject.JournalAppend) != 1 {
		t.Fatalf("fault fired %d times", reg.Fired(faultinject.JournalAppend))
	}

	// HTTP mapping: arm one more and check the 500.
	reg.Arm(faultinject.JournalAppend, faultinject.Plan{Times: 1})
	resp := postJSON(t, base+"/v1/jobs", serve.JobSpec{Netlist: deckText, Method: "rmatex", Tol: 1e-6})
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted submit answered %d, want 500", resp.StatusCode)
	}

	// The fault is spent: the service accepts and completes the next job.
	done := streamNDJSON(t, base+"/v1/simulate", serve.JobSpec{Netlist: deckText, Method: "rmatex", Tol: 1e-6})
	if done.state != serve.JobDone {
		t.Fatalf("post-fault job ended %s (%s)", done.state, done.tailErr)
	}
}

// TestCheckpointWriteFaultFailsJob injects a torn checkpoint write mid-run:
// the job fails with the injected error (never silently keeps running with
// a broken durability story), and a restart does not resurrect it — its
// terminal record made the outcome durable.
func TestCheckpointWriteFaultFailsJob(t *testing.T) {
	leak := guardGoroutines(t)
	deckText := testDeck(t)
	dir := t.TempDir()
	reg := faultinject.New(7)
	reg.Arm(faultinject.CheckpointWrite, faultinject.Plan{Times: 1})

	_, base, shutdown := testServer(t, serve.Config{
		Workers: 1, QueueDepth: 4, StateDir: dir, CheckpointEvery: 10, Fault: reg,
	})
	got := streamNDJSON(t, base+"/v1/simulate", serve.JobSpec{Netlist: deckText, Method: "tr"})
	if got.state != serve.JobFailed {
		t.Fatalf("checkpoint-faulted job ended %s, want failed", got.state)
	}
	if !strings.Contains(got.tailErr, "injected fault") {
		t.Fatalf("job error %q does not surface the injected fault", got.tailErr)
	}
	if err := shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	leak()

	_, base2, shutdown2 := testServer(t, serve.Config{Workers: 1, QueueDepth: 4, StateDir: dir})
	defer shutdown2(context.Background())
	if stats := getStats(t, base2); stats.Resumed != 0 {
		t.Fatalf("failed job resurrected on restart (%d resumed)", stats.Resumed)
	}
}
