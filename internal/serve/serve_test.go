package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/dist"
	"github.com/matex-sim/matex/internal/netlist"
	"github.com/matex-sim/matex/internal/pdn"
	"github.com/matex-sim/matex/internal/serve"
	"github.com/matex-sim/matex/internal/transient"
)

// testDeck renders a small ibmpg1t-style deck to SPICE text — the same
// flow as `pgbench -case ibmpg1t -scale 0.25`.
func testDeck(t *testing.T) string {
	t.Helper()
	spec, err := pdn.IBMCase("ibmpg1t", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	deck := &netlist.Deck{Circuit: ckt, TranStep: 10e-12, TranStop: spec.Tstop}
	for i := 0; i < 4; i++ {
		x := (i + 1) * spec.NX / 5
		y := (i + 1) * spec.NY / 5
		deck.Prints = append(deck.Prints, pdn.NodeName(x, y))
	}
	var buf bytes.Buffer
	if err := netlist.Write(&buf, deck); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// oneShot runs the deck exactly the way cmd/matex does (parse, stamp,
// probes from .print cards, simulate) — the reference the streamed
// waveforms must match.
func oneShot(t *testing.T, deckText string, method transient.Method) *transient.Result {
	t.Helper()
	deck, err := netlist.Parse(strings.NewReader(deckText))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := circuit.Stamp(deck.Circuit, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	var probes []int
	for _, name := range deck.Prints {
		idx, _, fixed, err := sys.NodeIndex(name)
		if err != nil {
			t.Fatal(err)
		}
		if fixed {
			continue
		}
		probes = append(probes, idx)
	}
	res, err := transient.Simulate(sys, method, transient.Options{
		Tstop: deck.TranStop, Step: deck.TranStep, Probes: probes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// testServer starts a serve.Server behind a real TCP listener and returns
// its base URL plus a shutdown helper.
func testServer(t *testing.T, cfg serve.Config) (*serve.Server, string, func(ctx context.Context) error) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(l)
	shutdown := func(ctx context.Context) error {
		if err := httpSrv.Shutdown(ctx); err != nil {
			return err
		}
		return s.Shutdown(ctx)
	}
	return s, "http://" + l.Addr().String(), shutdown
}

// streamedJob is a parsed NDJSON stream.
type streamedJob struct {
	id      string
	probes  []string
	times   []float64
	rows    [][]float64
	state   serve.JobState
	tailErr string
}

// readStream consumes an NDJSON waveform stream.
func readStream(t *testing.T, body *bufio.Scanner) *streamedJob {
	t.Helper()
	out := &streamedJob{}
	first := true
	for body.Scan() {
		line := bytes.TrimSpace(body.Bytes())
		if len(line) == 0 {
			continue
		}
		if first {
			var hdr struct {
				ID     string   `json:"id"`
				Probes []string `json:"probes"`
			}
			if err := json.Unmarshal(line, &hdr); err != nil {
				t.Fatalf("stream header: %v in %q", err, line)
			}
			out.id, out.probes = hdr.ID, hdr.Probes
			first = false
			continue
		}
		var probe struct {
			Done  *bool     `json:"done"`
			State string    `json:"state"`
			Error string    `json:"error"`
			T     float64   `json:"t"`
			V     []float64 `json:"v"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("stream chunk: %v in %q", err, line)
		}
		if probe.Done != nil {
			out.state = serve.JobState(probe.State)
			out.tailErr = probe.Error
			return out
		}
		out.times = append(out.times, probe.T)
		out.rows = append(out.rows, probe.V)
	}
	t.Fatalf("stream ended without a done chunk (err=%v)", body.Err())
	return nil
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestE2EConcurrentStreamingJobs is the acceptance run: 8 concurrent jobs
// submitted over a real listener stream waveforms that match the one-shot
// path to <= 1e-12, /stats shows shared-cache hits across jobs, and the
// server drains cleanly afterwards.
func TestE2EConcurrentStreamingJobs(t *testing.T) {
	deckText := testDeck(t)
	want := oneShot(t, deckText, transient.RMATEX)

	s, base, shutdown := testServer(t, serve.Config{Workers: 4, QueueDepth: 32})

	// The goroutines only move bytes (no t.Fatal off the test goroutine);
	// parsing and assertions happen on the main goroutine below.
	const jobs = 8
	bodies := make([][]byte, jobs)
	var wg sync.WaitGroup
	for k := 0; k < jobs; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			body, _ := json.Marshal(serve.JobSpec{Netlist: deckText})
			resp, err := http.Post(base+"/v1/simulate", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("job %d: %v", k, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("job %d: status %d", k, resp.StatusCode)
				return
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
				t.Errorf("job %d: content type %q", k, ct)
			}
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("job %d: reading stream: %v", k, err)
				return
			}
			bodies[k] = data
		}(k)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	results := make([]*streamedJob, jobs)
	for k := range bodies {
		sc := bufio.NewScanner(bytes.NewReader(bodies[k]))
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		results[k] = readStream(t, sc)
	}

	for k, got := range results {
		if got.state != serve.JobDone {
			t.Fatalf("job %d finished %q (err %q)", k, got.state, got.tailErr)
		}
		if len(got.times) != len(want.Times) {
			t.Fatalf("job %d streamed %d samples, one-shot has %d", k, len(got.times), len(want.Times))
		}
		for i := range got.times {
			if got.times[i] != want.Times[i] {
				t.Fatalf("job %d sample %d: t=%g, one-shot %g", k, i, got.times[i], want.Times[i])
			}
			for p := range got.rows[i] {
				if d := math.Abs(got.rows[i][p] - want.Probes[i][p]); d > 1e-12 {
					t.Fatalf("job %d sample %d probe %d deviates %g from one-shot (budget 1e-12)", k, i, p, d)
				}
			}
		}
	}

	// Shared-cache effectiveness across the 8 identical jobs: every job
	// needs the same G and (C + γG) factorizations, so all but the first
	// acquisitions are hits.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats serve.StatsReply
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Totals.CacheHits == 0 {
		t.Errorf("no shared-cache hits across %d identical jobs: %+v", jobs, stats.Totals)
	}
	if stats.Completed != jobs {
		t.Errorf("stats report %d completed jobs, want %d", stats.Completed, jobs)
	}

	// Clean drain: Shutdown returns nil and later submissions are refused.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if _, err := s.Submit(serve.JobSpec{Netlist: deckText}); !errors.Is(err, serve.ErrShuttingDown) {
		t.Fatalf("submit after shutdown: %v, want ErrShuttingDown", err)
	}
}

// TestJobQueueAndStatusEndpoints drives the queued (non-streaming-submit)
// flow: POST /v1/jobs, poll GET /v1/jobs/{id}, then replay the stream
// after completion — late subscribers see the full waveform.
func TestJobQueueAndStatusEndpoints(t *testing.T) {
	deckText := testDeck(t)
	_, base, shutdown := testServer(t, serve.Config{Workers: 2, QueueDepth: 8})
	defer shutdown(context.Background())

	resp := postJSON(t, base+"/v1/jobs", serve.JobSpec{Netlist: deckText, Method: "imatex"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID == "" || (st.State != serve.JobQueued && st.State != serve.JobRunning) {
		t.Fatalf("unexpected submit status %+v", st)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if st.State == serve.JobDone {
			break
		}
		if st.State == serve.JobFailed || st.State == serve.JobCanceled {
			t.Fatalf("job ended %q: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Stats == nil || st.Stats.Steps == 0 {
		t.Fatalf("done job carries no stats: %+v", st)
	}

	// Late replay must deliver the whole waveform.
	r, err := http.Get(base + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	got := readStream(t, sc)
	if got.state != serve.JobDone || len(got.times) != st.Samples {
		t.Fatalf("replayed %d samples in state %q, status had %d", len(got.times), got.state, st.Samples)
	}

	// Unknown job: 404.
	r404, err := http.Get(base + "/v1/jobs/job-9999")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", r404.StatusCode)
	}
}

// TestSSEStreamFormat: ?sse=1 wraps every chunk as an SSE data event, with
// sample events carrying monotonic `id:` lines (the reconnect cursor).
func TestSSEStreamFormat(t *testing.T) {
	deckText := testDeck(t)
	_, base, shutdown := testServer(t, serve.Config{Workers: 1, QueueDepth: 4})
	defer shutdown(context.Background())

	body, _ := json.Marshal(serve.JobSpec{Netlist: deckText})
	resp, err := http.Post(base+"/v1/simulate?sse=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	events, lastID := 0, 0
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil || id != lastID+1 {
				t.Fatalf("event id %q after id %d", line, lastID)
			}
			lastID = id
		case strings.HasPrefix(line, "data: "):
			events++
		default:
			t.Fatalf("non-SSE line %q", line)
		}
	}
	if events < 3 { // header + >=1 sample + tail
		t.Fatalf("only %d SSE events", events)
	}
	if lastID == 0 {
		t.Fatal("no sample event carried an id: line")
	}
}

// TestCancelRunningJob: DELETE on a long-running job flips it to canceled
// and unblocks its stream with a canceled tail.
func TestCancelRunningJob(t *testing.T) {
	deckText := testDeck(t)
	_, base, shutdown := testServer(t, serve.Config{Workers: 1, QueueDepth: 4})
	defer shutdown(context.Background())

	// A deliberately slow job: fixed-step TR with a tiny step.
	resp := postJSON(t, base+"/v1/jobs", serve.JobSpec{Netlist: deckText, Method: "tr", Step: 1e-14})
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Wait until it is actually running, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for st.State == serve.JobQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+st.ID, nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()

	for {
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled job stuck in %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != serve.JobCanceled {
		t.Fatalf("job ended %q, want canceled", st.State)
	}
}

// TestDistributedJobStreamsSuperposition: a distributed job runs through
// the dist scheduler and streams the superposed waveform, matching the
// non-distributed run on the shared GTS grid.
func TestDistributedJobStreamsSuperposition(t *testing.T) {
	deckText := testDeck(t)
	_, base, shutdown := testServer(t, serve.Config{Workers: 2, QueueDepth: 4})
	defer shutdown(context.Background())

	run := func(distributed bool) *streamedJob {
		body, _ := json.Marshal(serve.JobSpec{Netlist: deckText, Distributed: distributed})
		resp, err := http.Post(base+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		return readStream(t, sc)
	}
	plain := run(false)
	distd := run(true)
	if distd.state != serve.JobDone {
		t.Fatalf("distributed job ended %q: %s", distd.state, distd.tailErr)
	}
	if len(distd.times) == 0 {
		t.Fatal("distributed job streamed nothing")
	}
	// The dist grid is the GTS; compare on the shared time points.
	j := 0
	compared := 0
	for i, tp := range distd.times {
		for j < len(plain.times) && plain.times[j] < tp-1e-18 {
			j++
		}
		if j >= len(plain.times) || plain.times[j] > tp+1e-18 {
			continue
		}
		for p := range distd.rows[i] {
			if d := math.Abs(distd.rows[i][p] - plain.rows[j][p]); d > 1e-6 {
				t.Fatalf("superposition deviates %g at t=%g probe %d", d, tp, p)
			}
		}
		compared++
	}
	if compared == 0 {
		t.Fatal("no shared time points between distributed and plain runs")
	}
}

// TestDistributedJobsOverRPCWorkers: with DistAddrs configured, distributed
// jobs fan out to a real matexd-style TCP worker; repeated jobs against
// the same deck reuse the server's cached worker pool (the worker holds
// the circuit content-addressed, so only the first job ships the blob).
func TestDistributedJobsOverRPCWorkers(t *testing.T) {
	deckText := testDeck(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go dist.Serve(l, dist.NewWorkerServer())

	_, base, shutdown := testServer(t, serve.Config{
		Workers: 2, QueueDepth: 8, DistAddrs: []string{l.Addr().String()},
	})
	defer shutdown(context.Background())

	for round := 0; round < 2; round++ {
		body, _ := json.Marshal(serve.JobSpec{Netlist: deckText, Distributed: true})
		resp, err := http.Post(base+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		got := readStream(t, sc)
		resp.Body.Close()
		if got.state != serve.JobDone {
			t.Fatalf("round %d: distributed RPC job ended %q: %s", round, got.state, got.tailErr)
		}
		if len(got.times) == 0 {
			t.Fatalf("round %d: no samples streamed", round)
		}
	}
}

// TestSubmitValidation: bad specs are rejected with 400 at submit time.
func TestSubmitValidation(t *testing.T) {
	_, base, shutdown := testServer(t, serve.Config{Workers: 1, QueueDepth: 2})
	defer shutdown(context.Background())
	for name, spec := range map[string]serve.JobSpec{
		"no deck":        {},
		"both decks":     {Netlist: "* x\n.end\n", Case: "ibmpg1t"},
		"bad method":     {Case: "ibmpg1t", Method: "simplex"},
		"bad case":       {Case: "ibmpg9t"},
		"bad netlist":    {Netlist: "Rbroken 1\n"},
		"missing window": {Netlist: "* t\nR1 a 0 1\nC1 a 0 1p\nI1 a 0 1m\n.end\n"},
		"fixed no step":  {Case: "ibmpg1t", Method: "tr"},
		"bad krylov":     {Case: "ibmpg1t", Krylov: "chebyshev"},
		"bad ordering":   {Case: "ibmpg1t", Ordering: "amd2000"},
	} {
		resp := postJSON(t, base+"/v1/jobs", spec)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	// Unknown fields are rejected too (typo protection).
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"case":"ibmpg1t","tsotp":1e-9}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

// TestHealthz: liveness endpoint.
func TestHealthz(t *testing.T) {
	_, base, shutdown := testServer(t, serve.Config{Workers: 1, QueueDepth: 2})
	defer shutdown(context.Background())
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		OK bool `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !h.OK {
		t.Fatalf("healthz: status %d ok=%v", resp.StatusCode, h.OK)
	}
}

// TestPgbenchCaseJob: a named-case job (no inline netlist) runs and
// matches the same case built in-process.
func TestPgbenchCaseJob(t *testing.T) {
	_, base, shutdown := testServer(t, serve.Config{Workers: 1, QueueDepth: 2})
	defer shutdown(context.Background())
	body, _ := json.Marshal(serve.JobSpec{Case: "ibmpg1t", Scale: 0.25, NumProbes: 3})
	resp, err := http.Post(base+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	got := readStream(t, sc)
	if got.state != serve.JobDone {
		t.Fatalf("case job ended %q: %s", got.state, got.tailErr)
	}
	if len(got.probes) != 3 {
		t.Fatalf("expected 3 probes, got %v", got.probes)
	}
	if len(got.times) == 0 {
		t.Fatal("case job streamed nothing")
	}
}

// TestJobRetentionCap: finished jobs past MaxRetainedJobs are evicted
// (oldest first) so a long-running service does not hoard waveforms;
// recent jobs stay queryable.
func TestJobRetentionCap(t *testing.T) {
	deckText := testDeck(t)
	s, base, shutdown := testServer(t, serve.Config{Workers: 1, QueueDepth: 8, MaxRetainedJobs: 2})
	defer shutdown(context.Background())

	var last serve.Status
	for i := 0; i < 5; i++ {
		resp := postJSON(t, base+"/v1/jobs", serve.JobSpec{Netlist: deckText})
		if err := json.NewDecoder(resp.Body).Decode(&last); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// Wait for the queue to drain.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if j, ok := s.Job(last.ID); ok && j.State().Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("last job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	jobs := s.Jobs()
	if len(jobs) > 2 {
		t.Fatalf("retained %d finished jobs, cap is 2", len(jobs))
	}
	// The newest job survives; the first was evicted.
	if _, ok := s.Job(last.ID); !ok {
		t.Fatal("newest job was evicted")
	}
	if _, ok := s.Job("job-1"); ok {
		t.Fatal("oldest job survived past the retention cap")
	}
}

// TestCanceledWhileQueuedIsCounted: a job canceled before any worker runs
// it still lands in the jobs_canceled counter, keeping the /stats
// invariant accepted = completed + failed + canceled (+ in flight).
func TestCanceledWhileQueuedIsCounted(t *testing.T) {
	deckText := testDeck(t)
	s, base, shutdown := testServer(t, serve.Config{Workers: 1, QueueDepth: 8})
	defer shutdown(context.Background())

	// Occupy the single worker with a slow job.
	slow, err := s.Submit(serve.JobSpec{Netlist: deckText, Method: "tr", Step: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for slow.State() == serve.JobQueued {
		if time.Now().After(deadline) {
			t.Fatal("slow job never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue a second job and cancel it before the worker can pick it up.
	queued, err := s.Submit(serve.JobSpec{Netlist: deckText})
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	if got := queued.State(); got != serve.JobCanceled {
		t.Fatalf("queued job state after cancel: %q", got)
	}
	slow.Cancel() // release the worker; it will pop and skip the queued job

	for {
		resp, err := http.Get(base + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var stats serve.StatsReply
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if stats.Canceled >= 2 {
			if stats.Accepted != stats.Completed+stats.Failed+stats.Canceled {
				t.Fatalf("stats invariant broken: %+v", stats)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled counter never reached 2: %+v", stats)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSignalContext: SIGTERM cancels the shared shutdown context (the
// trigger both matexsrv and matexd drain on).
func TestSignalContext(t *testing.T) {
	ctx, stop := serve.SignalContext(context.Background())
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM did not cancel the context")
	}
}

// TestShutdownCancelsStuckJobs: an expired shutdown context cancels the
// running jobs instead of waiting forever.
func TestShutdownCancelsStuckJobs(t *testing.T) {
	deckText := testDeck(t)
	s, base, _ := testServer(t, serve.Config{Workers: 1, QueueDepth: 2})
	resp := postJSON(t, base+"/v1/jobs", serve.JobSpec{Netlist: deckText, Method: "tr", Step: 1e-14})
	var st serve.Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown on stuck job: %v, want DeadlineExceeded", err)
	}
	job, ok := s.Job(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if got := job.Status().State; got != serve.JobCanceled {
		t.Fatalf("job state after forced shutdown: %q, want canceled", got)
	}
}
