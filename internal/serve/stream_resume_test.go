package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"github.com/matex-sim/matex/internal/serve"
)

// sseSample is one parsed SSE sample event: the event ID from its `id:`
// line and the decoded sample chunk.
type sseSample struct {
	id  int
	seq int
	t   float64
	v   []float64
}

// readSSE consumes an SSE stream until the done tail, limit sample events
// have arrived (limit > 0), or the body ends. It returns the sample events
// and whether the done tail was seen.
func readSSE(t *testing.T, body *bufio.Scanner, limit int) (samples []sseSample, done bool) {
	t.Helper()
	id := 0
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				t.Fatalf("bad SSE id line %q", line)
			}
			id = n
		case strings.HasPrefix(line, "data: "):
			var chunk struct {
				Done *bool     `json:"done"`
				Seq  int       `json:"seq"`
				T    float64   `json:"t"`
				V    []float64 `json:"v"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &chunk); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
			if chunk.Done != nil {
				return samples, true
			}
			if chunk.Seq > 0 {
				if chunk.Seq != id {
					t.Fatalf("sample seq %d under id: %d", chunk.Seq, id)
				}
				samples = append(samples, sseSample{id: id, seq: chunk.Seq, t: chunk.T, v: chunk.V})
				if limit > 0 && len(samples) >= limit {
					return samples, false
				}
			}
		default:
			t.Fatalf("non-SSE line %q", line)
		}
	}
	return samples, false
}

// TestSSEReconnectResumesAtLastEventID is the dropped-consumer test: an SSE
// client disconnects mid-stream and reconnects with Last-Event-ID (exactly
// what the browser EventSource does); the two connections together must
// yield every sample exactly once — contiguous sequence numbers, no gaps,
// no duplicates — and match a full replay of the finished job.
func TestSSEReconnectResumesAtLastEventID(t *testing.T) {
	deckText := testDeck(t)
	_, base, shutdown := testServer(t, serve.Config{Workers: 1, QueueDepth: 4})
	defer shutdown(context.Background())

	// A slow fixed-step job (5000 samples) so the first connection drops
	// while the integrator is still producing.
	resp := postJSON(t, base+"/v1/jobs", serve.JobSpec{Netlist: deckText, Method: "tr", Step: 2e-12})
	var st serve.Status
	if err := jsonDecode(resp, &st); err != nil {
		t.Fatal(err)
	}
	streamURL := base + "/v1/jobs/" + st.ID + "/stream?sse=1"

	// Connection 1: take 40 samples, then drop the connection mid-stream.
	resp1, err := http.Get(streamURL)
	if err != nil {
		t.Fatal(err)
	}
	sc1 := bufio.NewScanner(resp1.Body)
	sc1.Buffer(make([]byte, 1<<20), 1<<24)
	first, done := readSSE(t, sc1, 40)
	resp1.Body.Close()
	if done || len(first) != 40 {
		t.Fatalf("first connection got %d samples (done=%v), want 40 mid-run", len(first), done)
	}

	// Connection 2: reconnect the way EventSource does, Last-Event-ID set to
	// the last sample we actually processed.
	req, err := http.NewRequest(http.MethodGet, streamURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Last-Event-ID", strconv.Itoa(first[len(first)-1].id))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	sc2.Buffer(make([]byte, 1<<20), 1<<24)
	rest, done := readSSE(t, sc2, 0)
	if !done {
		t.Fatal("second connection ended without the done tail")
	}

	// Stitch and verify: seq 1..N exactly once, in order.
	all := append(first, rest...)
	for i, s := range all {
		if s.seq != i+1 {
			t.Fatalf("stitched stream seq[%d] = %d, want %d (gap or duplicate at the reconnect seam)", i, s.seq, i+1)
		}
	}

	// The stitched waveform must equal a full replay of the finished job.
	full := streamNDJSON(t, base+"/v1/jobs/"+st.ID+"/stream")
	if full.state != serve.JobDone {
		t.Fatalf("job ended %s (%s)", full.state, full.tailErr)
	}
	if len(all) != len(full.times) {
		t.Fatalf("stitched stream has %d samples, full replay %d", len(all), len(full.times))
	}
	for i := range all {
		if all[i].t != full.times[i] {
			t.Fatalf("stitched t[%d] = %g, full replay %g", i, all[i].t, full.times[i])
		}
		for k := range all[i].v {
			if all[i].v[k] != full.rows[i][k] {
				t.Fatalf("stitched v[%d][%d] differs from full replay", i, k)
			}
		}
	}
}

// TestNDJSONFromSeqCursor: ?from_seq=N skips the first N samples and the
// remainder carries contiguous sequence numbers from N+1 — the polling
// client's resume cursor.
func TestNDJSONFromSeqCursor(t *testing.T) {
	deckText := testDeck(t)
	_, base, shutdown := testServer(t, serve.Config{Workers: 1, QueueDepth: 4})
	defer shutdown(context.Background())

	full := streamNDJSON(t, base+"/v1/simulate", serve.JobSpec{Netlist: deckText, Method: "rmatex", Tol: 1e-6})
	if full.state != serve.JobDone {
		t.Fatalf("job ended %s (%s)", full.state, full.tailErr)
	}
	n := len(full.times)
	if n < 4 {
		t.Fatalf("only %d samples", n)
	}
	cursor := n / 2

	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/stream?from_seq=%d", base, full.id, cursor))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	seen, wantSeq := 0, cursor+1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var chunk struct {
			Done *bool   `json:"done"`
			Seq  int     `json:"seq"`
			T    float64 `json:"t"`
		}
		if err := json.Unmarshal([]byte(line), &chunk); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if chunk.Done != nil {
			break
		}
		if chunk.Seq == 0 { // header
			continue
		}
		if chunk.Seq != wantSeq {
			t.Fatalf("cursor stream seq %d, want %d", chunk.Seq, wantSeq)
		}
		if chunk.T != full.times[chunk.Seq-1] {
			t.Fatalf("cursor stream t=%g at seq %d, full stream %g", chunk.T, chunk.Seq, full.times[chunk.Seq-1])
		}
		wantSeq++
		seen++
	}
	if seen != n-cursor {
		t.Fatalf("cursor stream yielded %d samples, want %d", seen, n-cursor)
	}
}
