// Package serve is the MATEX simulation job service: a long-running HTTP
// front end that accepts netlist-deck jobs (inline SPICE text or a named
// pgbench case), runs them through a bounded worker-pool queue with
// per-job contexts, and streams waveform samples incrementally (NDJSON or
// SSE) as the integrators advance — the serving layer the paper's
// "distributed framework" framing asks for on top of the compute stack.
//
// Every job on one process shares the content-addressed factorization
// cache and the Krylov workspace arenas, so concurrent and repeated jobs
// against the same grid skip straight to the transient phase the way
// repeated dist.Run calls do. Distributed jobs additionally fan out
// through internal/dist (in-process pool or matexd workers over TCP).
//
// # Lifecycle of a job
//
// POST /v1/jobs (http.go) validates the JobSpec and builds the circuit up
// front (job.go), so malformed decks fail with a 400 before queueing. The
// job then waits in a bounded queue until a worker goroutine (serve.go)
// picks it up, stamps options onto transient.Simulate or dist.Run, and
// forwards every probe sample into the job's grow-only sample log. Stream
// readers (GET /v1/jobs/{id}/stream) replay that log from any offset and
// then follow live appends, so late subscribers and reconnects see the
// identical sequence.
//
// # Sweep jobs
//
// A JobSpec with a non-empty Variants list is a scenario sweep: the worker
// hands the deck to internal/sweep, which integrates all variants in one
// batched run over the shared cache. Samples are tagged with the variant
// name and a per-variant sequence number, so one stream multiplexes N
// waveforms; POST /v1/sweep is sugar for that spec shape.
//
// # Durability
//
// With Config.StateDir set, accepted specs and periodic checkpoints are
// journaled (journal.go) in an append-only NDJSON file per job; on restart
// the server replays the journal, trims samples past the last checkpoint
// (per variant for sweeps), and resumes unfinished jobs from their
// checkpoints. Crash-safety is tested by snapshotting the journal bytes
// mid-run and restarting a second server on the copy.
//
// See cmd/matexsrv for the daemon and README.md ("Serving") for the API.
package serve
