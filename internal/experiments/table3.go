package experiments

import (
	"fmt"
	"io"

	"github.com/matex-sim/matex/internal/dist"
	"github.com/matex-sim/matex/internal/pdn"
	"github.com/matex-sim/matex/internal/transient"
)

// Table3Row is one line of the paper's Table 3: distributed MATEX (R-MATEX
// per node) vs fixed-step TR with h = 10 ps. Times in seconds.
type Table3Row struct {
	Design   string
	T1000    float64 // TR transient phase (the "1000 substitution pairs")
	TTTotal  float64 // TR total
	Groups   int     // number of bump-feature groups = computing nodes
	TRMatex  float64 // slowest node, transient phase only
	TRTotal  float64 // slowest node, all phases
	MaxErr   float64 // vs TR solution at output nodes
	AvgErr   float64
	Spdp4    float64 // T1000 / TRMatex
	Spdp5    float64 // TTTotal / TRTotal
	GTS      int     // paper's K
	SubPairs int     // average substitution pairs per node (paper's km)
}

// Table3Config parameterizes the distributed comparison.
type Table3Config struct {
	Designs []string
	Scale   float64
	// Tstop and Step follow the paper: 10 ns window, TR h = 10 ps (1000
	// steps).
	Tstop, Step float64
	// Tol is the Krylov budget; Gamma the rational shift (paper: 1e-10).
	Tol, Gamma float64
	// Workers caps in-process concurrency. The default 1 runs subtasks
	// sequentially so each node's runtime is measured contention-free —
	// the dedicated-machine reading the paper's cluster provides, with the
	// reported tr_matex/tr_total being the max over nodes exactly as the
	// paper reports them.
	Workers int
}

func (c Table3Config) withDefaults() Table3Config {
	if len(c.Designs) == 0 {
		c.Designs = pdn.IBMSuite()
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Tstop <= 0 {
		c.Tstop = 10e-9
	}
	if c.Step <= 0 {
		c.Step = 10e-12
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.Gamma <= 0 {
		c.Gamma = 1e-10
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	return c
}

// RunTable3 regenerates Table 3.
func RunTable3(cfg Table3Config) ([]Table3Row, error) {
	cfg = cfg.withDefaults()
	var rows []Table3Row
	for _, name := range cfg.Designs {
		spec, err := pdn.IBMCase(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		ckt, err := spec.Build()
		if err != nil {
			return nil, err
		}
		sys, err := buildSystem(ckt)
		if err != nil {
			return nil, err
		}
		probes := probeSample(sys, 64)

		trRes, err := transient.Simulate(sys, transient.TRFixed, transient.Options{
			Tstop: cfg.Tstop, Step: cfg.Step, Probes: probes,
		})
		if err != nil {
			return nil, fmt.Errorf("table3: TR on %s: %w", name, err)
		}
		mxRes, rep, err := dist.Run(sys, dist.Config{
			Method: transient.RMATEX, Tstop: cfg.Tstop,
			Tol: cfg.Tol, Gamma: cfg.Gamma, Probes: probes, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("table3: MATEX on %s: %w", name, err)
		}

		row := Table3Row{
			Design:  name,
			T1000:   trRes.Stats.TransientTime.Seconds(),
			TTTotal: (trRes.Stats.DCTime + trRes.Stats.FactorTime + trRes.Stats.TransientTime).Seconds(),
			Groups:  rep.Groups,
			TRMatex: rep.MaxNodeTrTime.Seconds(),
			TRTotal: (rep.DCTime + rep.MaxNodeTime).Seconds(),
			GTS:     gtsCount(sys, cfg.Tstop),
		}
		row.MaxErr, row.AvgErr = compareAt(mxRes, trRes, len(probes))
		if row.TRMatex > 0 {
			row.Spdp4 = row.T1000 / row.TRMatex
		}
		if row.TRTotal > 0 {
			row.Spdp5 = row.TTTotal / row.TRTotal
		}
		pairs := 0
		for _, st := range rep.TaskStats {
			pairs += st.SolvePairs
		}
		if len(rep.TaskStats) > 0 {
			row.SubPairs = pairs / len(rep.TaskStats)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable3 renders rows in the paper's layout.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: distributed MATEX (R-MATEX) vs TR (h = 10 ps)")
	fmt.Fprintf(w, "%-10s %9s %9s %7s %9s %9s %9s %9s %7s %7s %5s %5s\n",
		"Design", "t1000(s)", "ttotal(s)", "Group#", "trmtx(s)", "trtot(s)", "MaxErr", "AvgErr", "Spdp4", "Spdp5", "GTS", "km")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9s %9s %7d %9s %9s %9.1e %9.1e %6.1fX %6.1fX %5d %5d\n",
			r.Design, fmtDuration(r.T1000), fmtDuration(r.TTTotal), r.Groups,
			fmtDuration(r.TRMatex), fmtDuration(r.TRTotal), r.MaxErr, r.AvgErr, r.Spdp4, r.Spdp5, r.GTS, r.SubPairs)
	}
}
