package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"github.com/matex-sim/matex/internal/dense"
	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/sparse"
)

// Fig5Series is one curve of the paper's Fig. 5: for a fixed rational-Krylov
// dimension m, the error |e^{hA}v - ‖v‖·V_m·e^{hH_m}·e₁| as a function of
// the step h, with a dense expm as the exact baseline.
type Fig5Series struct {
	M    int
	H    []float64
	Errs []float64
}

// Fig5Config parameterizes the sweep.
type Fig5Config struct {
	// N is the RC system size (small so dense expm is exact baseline).
	N int
	// Spread is the capacitance spread (stiffness knob).
	Spread float64
	// Gamma is the fixed rational shift.
	Gamma float64
	// Dims are the subspace dimensions to sweep.
	Dims []int
	// Steps are the h values; default log-spaced 1e-13..1e-9.
	Steps []float64
	Seed  int64
}

func (c Fig5Config) withDefaults() Fig5Config {
	if c.N <= 0 {
		c.N = 16
	}
	if c.Spread <= 0 {
		c.Spread = 1e6
	}
	if c.Gamma <= 0 {
		c.Gamma = 1e-12
	}
	if len(c.Dims) == 0 {
		c.Dims = []int{2, 4, 6, 8}
	}
	if len(c.Steps) == 0 {
		for e := -13.0; e <= -9.01; e += 0.5 {
			c.Steps = append(c.Steps, math.Pow(10, e))
		}
	}
	return c
}

// RunFig5 regenerates the Fig. 5 sweep.
func RunFig5(cfg Fig5Config) ([]Fig5Series, error) {
	cfg = cfg.withDefaults()
	cm, gm := fig5System(cfg.N, cfg.Spread, cfg.Seed)
	a, err := fig5DenseA(cm, gm)
	if err != nil {
		return nil, err
	}
	factS, err := sparse.Factor(sparse.Add(1, cm, cfg.Gamma, gm), sparse.FactorAuto, sparse.OrderRCM)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	v := make([]float64, cfg.N)
	for i := range v {
		v[i] = rng.NormFloat64()
	}

	var series []Fig5Series
	for _, m := range cfg.Dims {
		op := krylov.NewRationalOp(factS, cm, gm, cfg.Gamma, &krylov.Counters{})
		// [v;0;0]: the auxiliary input chain never enters the subspace, so
		// the sweep measures the pure e^{hA}v approximation of Fig. 5.
		vaug := make([]float64, cfg.N+2)
		copy(vaug, v)
		sub, err := krylov.Arnoldi(op, vaug, []float64{cfg.Steps[0]}, krylov.Options{MaxDim: m, ForceDim: true})
		if err != nil {
			return nil, fmt.Errorf("fig5: m=%d: %w", m, err)
		}
		s := Fig5Series{M: sub.Dim()}
		got := make([]float64, cfg.N+2)
		for _, h := range cfg.Steps {
			want, err := dense.ExpmVec(a, h, v)
			if err != nil {
				return nil, err
			}
			if err := sub.EvalExp(h, got); err != nil {
				return nil, err
			}
			var d float64
			for i := range want {
				d += (got[i] - want[i]) * (got[i] - want[i])
			}
			s.H = append(s.H, h)
			s.Errs = append(s.Errs, math.Sqrt(d))
		}
		series = append(series, s)
	}
	return series, nil
}

// fig5System builds the small stiff RC pair used for the sweep.
func fig5System(n int, spread float64, seed int64) (cm, gm *sparse.CSC) {
	rng := rand.New(rand.NewSource(seed))
	gt := sparse.NewTriplet(n, n)
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = 0.05
	}
	for i := 0; i < n-1; i++ {
		g := 0.5 + rng.Float64()
		gt.Add(i, i+1, -g)
		gt.Add(i+1, i, -g)
		diag[i] += g
		diag[i+1] += g
	}
	for i := 0; i < n; i++ {
		gt.Add(i, i, diag[i])
	}
	ct := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		ct.Add(i, i, 1e-12*math.Pow(spread, -frac))
	}
	return ct.ToCSC(), gt.ToCSC()
}

func fig5DenseA(cm, gm *sparse.CSC) (*dense.Matrix, error) {
	n := cm.Rows
	cd := cm.Dense()
	gd := gm.Dense()
	a := dense.New(n, n)
	for i := 0; i < n; i++ {
		if cd[i][i] == 0 {
			return nil, fmt.Errorf("fig5: zero capacitance at %d", i)
		}
		for j := 0; j < n; j++ {
			a.Set(i, j, -gd[i][j]/cd[i][i])
		}
	}
	return a, nil
}

// PrintFig5 renders the series as columns (h, then one error column per m).
func PrintFig5(w io.Writer, series []Fig5Series) {
	fmt.Fprintln(w, "Fig 5: |e^{hA}v - ||v|| V_m e^{hH_m} e1| vs step h (rational Krylov)")
	fmt.Fprintf(w, "%12s", "h")
	for _, s := range series {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("err(m=%d)", s.M))
	}
	fmt.Fprintln(w)
	if len(series) == 0 {
		return
	}
	for i := range series[0].H {
		fmt.Fprintf(w, "%12.3e", series[0].H[i])
		for _, s := range series {
			fmt.Fprintf(w, " %12.3e", s.Errs[i])
		}
		fmt.Fprintln(w)
	}
}
