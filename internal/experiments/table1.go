package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/pdn"
	"github.com/matex-sim/matex/internal/transient"
	"github.com/matex-sim/matex/internal/waveform"
)

// Table1Row is one line of the paper's Table 1: MEXP vs I-MATEX vs R-MATEX
// on a stiff RC mesh.
type Table1Row struct {
	Method    string
	MA        float64 // average Krylov dimension m_a
	MP        int     // peak Krylov dimension m_p
	ErrPct    float64 // max error vs BE @ 0.05 ps, % of dynamic range
	Speedup   float64 // transient-time speedup over MEXP ("-" for MEXP = 1)
	Stiffness float64 // measured Re(λmin)/Re(λmax)
}

// Table1Config parameterizes the stiff-mesh comparison.
type Table1Config struct {
	// Specs lists the meshes (default pdn.Table1Cases()).
	Specs []pdn.StiffMeshSpec
	// Tstop and Step follow the paper: [0, 0.3 ns] with 5 ps output steps.
	Tstop, Step float64
	// RefStep is the backward-Euler reference step (paper: 0.05 ps).
	RefStep float64
	// Tol is the Krylov error budget.
	Tol float64
}

func (c Table1Config) withDefaults() Table1Config {
	if len(c.Specs) == 0 {
		c.Specs = pdn.Table1Cases()
	}
	if c.Tstop <= 0 {
		c.Tstop = 0.3e-9
	}
	if c.Step <= 0 {
		c.Step = 5e-12
	}
	if c.RefStep <= 0 {
		c.RefStep = 0.05e-12
	}
	if c.Tol <= 0 {
		c.Tol = 1e-7
	}
	return c
}

// RunTable1 regenerates Table 1. Rows come in triples (MEXP, I-MATEX,
// R-MATEX) per stiffness level.
func RunTable1(cfg Table1Config) ([]Table1Row, error) {
	cfg = cfg.withDefaults()
	var rows []Table1Row
	for _, spec := range cfg.Specs {
		ckt, err := spec.Build()
		if err != nil {
			return nil, err
		}
		sys, err := buildSystem(ckt)
		if err != nil {
			return nil, err
		}
		fastEig, slowEig, err := pdn.SpectralEdges(sys, 300)
		if err != nil {
			return nil, err
		}
		stiff := fastEig / slowEig
		probes := probeSample(sys, 16)
		evals := make([]float64, 0, int(cfg.Tstop/cfg.Step)+1)
		for t := 0.0; t <= cfg.Tstop+1e-18; t += cfg.Step {
			evals = append(evals, t)
		}
		ref, err := transient.Simulate(sys, transient.BEFixed, transient.Options{
			Tstop: cfg.Tstop, Step: cfg.RefStep, Probes: probes,
		})
		if err != nil {
			return nil, fmt.Errorf("table1: BE reference: %w", err)
		}
		var mexpTime time.Duration
		for _, m := range []transient.Method{transient.MEXP, transient.IMATEX, transient.RMATEX} {
			// γ at the order of the step sizes, per the paper. MEXP is
			// sub-stepped at the paper's 5 ps (its standard subspace
			// degrades as h·‖A‖ grows); the spectral transforms reuse
			// their subspaces across whole segments.
			// Pin the paper's Arnoldi process: Table 1 compares the subspace
			// dimensions the three spectral formulations need, and the
			// symmetric Lanczos fast path (with its shifted-segment
			// reformulation) would change what is being measured. The fast
			// path has its own benchmarks (scripts/bench.sh).
			o := transient.Options{
				Tstop: cfg.Tstop, Probes: probes, EvalTimes: evals,
				Tol: cfg.Tol, Gamma: cfg.Step, MaxDim: 256,
				Krylov: krylov.MethodArnoldi,
			}
			if m == transient.MEXP {
				// Sub-step so that h·‖A‖ stays near 300, where the standard
				// subspace converges reliably within the dimension budget
				// (expokit-style step restriction). Never above the paper's
				// 5 ps output step.
				o.MaxStep = math.Min(cfg.Step, 300/fastEig)
			}
			res, err := transient.Simulate(sys, m, o)
			if err != nil {
				return nil, fmt.Errorf("table1: %v on stiffness %.1e: %w", m, stiff, err)
			}
			row := Table1Row{
				Method:    m.String(),
				MA:        res.Stats.MA(),
				MP:        res.Stats.MP(),
				ErrPct:    relErrPct(res, ref, len(probes)),
				Stiffness: stiff,
			}
			if m == transient.MEXP {
				mexpTime = res.Stats.TransientTime
				row.Speedup = 1
			} else if res.Stats.TransientTime > 0 {
				row.Speedup = float64(mexpTime) / float64(res.Stats.TransientTime)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintTable1 renders rows in the paper's layout.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: MEXP vs I-MATEX vs R-MATEX on stiff RC meshes\n")
	fmt.Fprintf(w, "%-10s %8s %6s %10s %10s %12s\n", "Method", "m_a", "m_p", "Err(%)", "Spdp", "Stiffness")
	for _, r := range rows {
		spdp := "--"
		if r.Speedup != 1 {
			spdp = fmt.Sprintf("%.0fX", r.Speedup)
		}
		fmt.Fprintf(w, "%-10s %8.1f %6d %10.4f %10s %12.1e\n", r.Method, r.MA, r.MP, r.ErrPct, spdp, r.Stiffness)
	}
}

// ensure unused import guards stay quiet
var _ = waveform.SpotEps
