// Package experiments regenerates the tables and figures of the MATEX paper
// (DAC 2014) on the synthetic benchmark suite. Each RunTableN function
// returns structured rows; cmd/experiments prints them in the paper's layout
// and EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"math"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/transient"
)

// buildSystem stamps a circuit with power-grid defaults.
func buildSystem(ckt *circuit.Circuit) (*circuit.System, error) {
	return circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
}

// probeSample picks up to max deterministic probe indices spread over the
// free nodes (error metrics are computed over these "output nodes").
func probeSample(sys *circuit.System, max int) []int {
	n := sys.NumNodes
	if n <= max {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, 0, max)
	stride := n / max
	for i := 0; i < n && len(idx) < max; i += stride {
		idx = append(idx, i)
	}
	return idx
}

// compareAt measures the maximum and average absolute deviation of res from
// the reference (interpolated) at res's times over all probe columns.
func compareAt(res, ref *transient.Result, nProbes int) (maxErr, avgErr float64) {
	var sum float64
	var count int
	for i, t := range res.Times {
		for k := 0; k < nProbes; k++ {
			d := math.Abs(res.Probes[i][k] - ref.InterpProbe(t, k))
			if math.IsNaN(d) || math.IsInf(d, 0) {
				return math.Inf(1), math.Inf(1)
			}
			if d > maxErr {
				maxErr = d
			}
			sum += d
			count++
		}
	}
	if count > 0 {
		avgErr = sum / float64(count)
	}
	return maxErr, avgErr
}

// relErrPct measures the maximum deviation of res from ref at res's times as
// a percentage of the reference's dynamic range.
func relErrPct(res, ref *transient.Result, nProbes int) float64 {
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for i := range ref.Times {
		for k := 0; k < nProbes; k++ {
			v := ref.Probes[i][k]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	scale := hi - lo
	if scale == 0 {
		scale = math.Max(math.Abs(hi), 1)
	}
	maxErr, _ := compareAt(res, ref, nProbes)
	return 100 * maxErr / scale
}

func fmtDuration(seconds float64) string {
	return fmt.Sprintf("%.3f", seconds)
}

// gtsCount returns the number of global transition spots of a system over
// the window (the paper's K).
func gtsCount(sys *circuit.System, tstop float64) int {
	return len(sys.GTS(tstop))
}
