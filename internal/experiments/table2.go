package experiments

import (
	"fmt"
	"io"

	"github.com/matex-sim/matex/internal/pdn"
	"github.com/matex-sim/matex/internal/transient"
)

// Table2Row is one line of the paper's Table 2: adaptive-stepping TR vs
// I-MATEX vs R-MATEX on an IBM-style benchmark. Times are in seconds.
type Table2Row struct {
	Design      string
	DC          float64
	TRAdptTotal float64
	IMATEXTotal float64
	Spdp1       float64 // TR(adpt)/I-MATEX
	RMATEXTotal float64
	Spdp2       float64 // TR(adpt)/R-MATEX
	Spdp3       float64 // I-MATEX/R-MATEX
	MaxErrI     float64 // vs R-MATEX-consistency check, volts
}

// Table2Config parameterizes the adaptive-stepping comparison.
type Table2Config struct {
	// Designs lists benchmark names (default: the full suite).
	Designs []string
	// Scale shrinks the grids (1.0 = laptop-scale default).
	Scale float64
	// Tstop is the window (default 10 ns).
	Tstop float64
	// Tol: Krylov budget for MATEX, LTE target for adaptive TR.
	Tol float64
}

func (c Table2Config) withDefaults() Table2Config {
	if len(c.Designs) == 0 {
		c.Designs = pdn.IBMSuite()
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Tstop <= 0 {
		c.Tstop = 10e-9
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	return c
}

// RunTable2 regenerates Table 2.
func RunTable2(cfg Table2Config) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	var rows []Table2Row
	for _, name := range cfg.Designs {
		spec, err := pdn.IBMCase(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		ckt, err := spec.Build()
		if err != nil {
			return nil, err
		}
		sys, err := buildSystem(ckt)
		if err != nil {
			return nil, err
		}
		probes := probeSample(sys, 64)

		trRes, err := transient.Simulate(sys, transient.TRAdaptive, transient.Options{
			Tstop: cfg.Tstop, Probes: probes, Tol: 1e-4,
		})
		if err != nil {
			return nil, fmt.Errorf("table2: TR(adpt) on %s: %w", name, err)
		}
		iRes, err := transient.Simulate(sys, transient.IMATEX, transient.Options{
			Tstop: cfg.Tstop, Probes: probes, Tol: cfg.Tol,
		})
		if err != nil {
			return nil, fmt.Errorf("table2: I-MATEX on %s: %w", name, err)
		}
		rRes, err := transient.Simulate(sys, transient.RMATEX, transient.Options{
			Tstop: cfg.Tstop, Probes: probes, Tol: cfg.Tol,
		})
		if err != nil {
			return nil, fmt.Errorf("table2: R-MATEX on %s: %w", name, err)
		}

		total := func(s transient.Stats) float64 {
			return (s.DCTime + s.FactorTime + s.TransientTime).Seconds()
		}
		row := Table2Row{
			Design:      name,
			DC:          trRes.Stats.DCTime.Seconds(),
			TRAdptTotal: total(trRes.Stats),
			IMATEXTotal: total(iRes.Stats),
			RMATEXTotal: total(rRes.Stats),
		}
		if row.IMATEXTotal > 0 {
			row.Spdp1 = row.TRAdptTotal / row.IMATEXTotal
		}
		if row.RMATEXTotal > 0 {
			row.Spdp2 = row.TRAdptTotal / row.RMATEXTotal
			row.Spdp3 = row.IMATEXTotal / row.RMATEXTotal
		}
		maxErr, _ := compareAt(rRes, iRes, len(probes))
		row.MaxErrI = maxErr
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable2 renders rows in the paper's layout.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: TR(adpt) vs I-MATEX vs R-MATEX (total seconds)")
	fmt.Fprintf(w, "%-10s %8s %10s %10s %7s %10s %7s %7s\n",
		"Design", "DC(s)", "TRadpt(s)", "IMATEX(s)", "Spdp1", "RMATEX(s)", "Spdp2", "Spdp3")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8s %10s %10s %6.1fX %10s %6.1fX %6.1fX\n",
			r.Design, fmtDuration(r.DC), fmtDuration(r.TRAdptTotal), fmtDuration(r.IMATEXTotal),
			r.Spdp1, fmtDuration(r.RMATEXTotal), r.Spdp2, r.Spdp3)
	}
}
