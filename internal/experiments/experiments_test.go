package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/matex-sim/matex/internal/pdn"
	"github.com/matex-sim/matex/internal/waveform"
)

// Small configurations keep the test suite fast; cmd/experiments runs the
// full-scale versions.

func TestTable1ShapeHolds(t *testing.T) {
	drive := &waveform.Pulse{V1: 0, V2: 1e-3, Delay: 0.02e-9, Rise: 0.01e-9, Width: 0.1e-9, Fall: 0.01e-9}
	cfg := Table1Config{
		Specs: []pdn.StiffMeshSpec{
			{NX: 6, NY: 6, RSeg: 1, CBase: 1e-12, Spread: 1e6, Drive: drive},
		},
		RefStep: 0.5e-12, // coarser reference keeps the test quick
	}
	rows, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	mexp, imatex, rmatex := rows[0], rows[1], rows[2]
	if mexp.Method != "MEXP" || imatex.Method != "I-MATEX" || rmatex.Method != "R-MATEX" {
		t.Fatalf("row order wrong: %v %v %v", mexp.Method, imatex.Method, rmatex.Method)
	}
	// Headline shape: the spectral-transform subspaces are much smaller.
	if imatex.MA >= mexp.MA || rmatex.MA >= mexp.MA {
		t.Errorf("m_a: MEXP %.1f, I-MATEX %.1f, R-MATEX %.1f — expected large reduction",
			mexp.MA, imatex.MA, rmatex.MA)
	}
	if rmatex.MP > 30 {
		t.Errorf("R-MATEX peak dim %d unexpectedly large", rmatex.MP)
	}
	// All methods stay accurate on this mildly stiff case.
	for _, r := range rows {
		if r.ErrPct > 2 {
			t.Errorf("%s error %.3f%% too large", r.Method, r.ErrPct)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "R-MATEX") {
		t.Error("PrintTable1 missing rows")
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	rows, err := RunTable2(Table2Config{Designs: []string{"ibmpg1t"}, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	// Shape: R-MATEX beats adaptive TR, and I-MATEX is between them.
	if r.Spdp2 < 1 {
		t.Errorf("R-MATEX slower than adaptive TR: Spdp2 = %.2f", r.Spdp2)
	}
	if r.MaxErrI > 2e-3 {
		t.Errorf("I-MATEX vs R-MATEX deviation %.2e too large", r.MaxErrI)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "ibmpg1t") {
		t.Error("PrintTable2 missing design")
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	rows, err := RunTable3(Table3Config{Designs: []string{"ibmpg1t"}, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Groups < 2 {
		t.Fatalf("groups = %d", r.Groups)
	}
	// Shape: per-node substitution pairs are far below TR's 1000 — the
	// deterministic form of the paper's speedup (Eq. 12). Wall-clock Spdp4
	// at this reduced scale is dominated by fixed overheads, so only a
	// loose bound is asserted; cmd/experiments measures the full scale.
	if r.Spdp4 < 0.3 {
		t.Errorf("Spdp4 = %.2f, expected at least 0.3 even at reduced scale", r.Spdp4)
	}
	if r.SubPairs >= 500 {
		t.Errorf("per-node substitution pairs = %d, expected far below 1000", r.SubPairs)
	}
	// Accuracy: paper reports ~1e-4 on a 1.8 V grid.
	if r.MaxErr > 5e-3 {
		t.Errorf("MaxErr = %.2e", r.MaxErr)
	}
	if r.AvgErr > r.MaxErr {
		t.Error("AvgErr above MaxErr")
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Spdp4") {
		t.Error("PrintTable3 missing header")
	}
}

func TestFig5ErrorShrinksWithHAndM(t *testing.T) {
	series, err := RunFig5(Fig5Config{N: 12, Dims: []int{2, 6}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	if series[0].M != 2 || series[1].M != 6 {
		t.Fatalf("fixed dimensions not honored: m = %d, %d", series[0].M, series[1].M)
	}
	for _, s := range series {
		// Error decreases (allowing small non-monotonic wiggles) from the
		// smallest to the largest h: compare endpoints.
		first, last := s.Errs[0], s.Errs[len(s.Errs)-1]
		if last > first {
			t.Errorf("m=%d: error grew with h: %g -> %g", s.M, first, last)
		}
	}
	// Larger m is at least as accurate at every h.
	for i := range series[0].H {
		if series[1].Errs[i] > series[0].Errs[i]*1.5 {
			t.Errorf("larger m less accurate at h=%g: %g vs %g",
				series[0].H[i], series[1].Errs[i], series[0].Errs[i])
		}
	}
	var buf bytes.Buffer
	PrintFig5(&buf, series)
	if !strings.Contains(buf.String(), "err(m=") {
		t.Error("PrintFig5 missing header")
	}
}
