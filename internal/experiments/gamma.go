package experiments

import (
	"fmt"
	"io"

	"github.com/matex-sim/matex/internal/pdn"
	"github.com/matex-sim/matex/internal/transient"
)

// GammaRow is one point of the γ-sensitivity ablation: the paper states the
// shift-and-invert basis "is not very sensitive to γ, once it is set to
// around the order near time steps used in transient simulation"
// (Sec. 3.3.2). The sweep runs R-MATEX across six decades of γ and reports
// the Krylov dimensions, work and accuracy.
type GammaRow struct {
	Gamma      float64
	MA         float64
	MP         int
	SolvePairs int
	MaxErr     float64 // vs fixed-step TR at 2 ps
}

// GammaConfig parameterizes the sweep.
type GammaConfig struct {
	Design string
	Scale  float64
	Tstop  float64
	Gammas []float64
}

func (c GammaConfig) withDefaults() GammaConfig {
	if c.Design == "" {
		c.Design = "ibmpg1t"
	}
	if c.Scale <= 0 {
		c.Scale = 0.5
	}
	if c.Tstop <= 0 {
		c.Tstop = 10e-9
	}
	if len(c.Gammas) == 0 {
		c.Gammas = []float64{1e-13, 1e-12, 1e-11, 1e-10, 1e-9, 1e-8}
	}
	return c
}

// RunGammaSweep regenerates the γ-sensitivity ablation.
func RunGammaSweep(cfg GammaConfig) ([]GammaRow, error) {
	cfg = cfg.withDefaults()
	spec, err := pdn.IBMCase(cfg.Design, cfg.Scale)
	if err != nil {
		return nil, err
	}
	ckt, err := spec.Build()
	if err != nil {
		return nil, err
	}
	sys, err := buildSystem(ckt)
	if err != nil {
		return nil, err
	}
	probes := probeSample(sys, 32)
	ref, err := transient.Simulate(sys, transient.TRFixed, transient.Options{
		Tstop: cfg.Tstop, Step: 2e-12, Probes: probes,
	})
	if err != nil {
		return nil, err
	}
	var rows []GammaRow
	for _, gamma := range cfg.Gammas {
		res, err := transient.Simulate(sys, transient.RMATEX, transient.Options{
			Tstop: cfg.Tstop, Probes: probes, Tol: 1e-7, Gamma: gamma,
		})
		if err != nil {
			return nil, fmt.Errorf("gamma sweep at %.1e: %w", gamma, err)
		}
		maxErr, _ := compareAt(res, ref, len(probes))
		rows = append(rows, GammaRow{
			Gamma:      gamma,
			MA:         res.Stats.MA(),
			MP:         res.Stats.MP(),
			SolvePairs: res.Stats.SolvePairs,
			MaxErr:     maxErr,
		})
	}
	return rows, nil
}

// PrintGammaSweep renders the sweep.
func PrintGammaSweep(w io.Writer, rows []GammaRow) {
	fmt.Fprintln(w, "Ablation: R-MATEX sensitivity to the rational shift γ (Sec. 3.3.2 claim)")
	fmt.Fprintf(w, "%10s %8s %6s %12s %12s\n", "gamma", "m_a", "m_p", "subst.pairs", "MaxErr(V)")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.1e %8.1f %6d %12d %12.2e\n", r.Gamma, r.MA, r.MP, r.SolvePairs, r.MaxErr)
	}
}
