package sweep

import (
	"math"
	"sync"
	"testing"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/pdn"
	"github.com/matex-sim/matex/internal/transient"
)

func ibmSystem(t *testing.T, scale float64) *circuit.System {
	t.Helper()
	spec, err := pdn.IBMCase("ibmpg1t", scale)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func baseOpts(sys *circuit.System) transient.Options {
	// The panel solve kernels run per-RHS arithmetic in exactly the
	// sequential solves' operation order, so sweep lanes reproduce solo
	// runs bitwise at any tolerance.
	return transient.Options{
		Tstop:  10e-9,
		Tol:    1e-8,
		Probes: []int{0, sys.NumNodes / 3, sys.NumNodes - 1},
	}
}

// soloRun simulates one variant on its own, the reference the sweep must
// reproduce.
func soloRun(t *testing.T, sys *circuit.System, v Variant, method transient.Method, opts transient.Options) *transient.Result {
	t.Helper()
	cvs, err := compile(sys, []Variant{v})
	if err != nil {
		t.Fatal(err)
	}
	r, err := transient.Simulate(cvs[0].system(sys), method, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func maxProbeDiff(t *testing.T, a *transient.Result, b VariantResult) float64 {
	t.Helper()
	if len(a.Times) != len(b.Times) {
		t.Fatalf("grids differ: solo %d vs sweep %d samples", len(a.Times), len(b.Times))
	}
	var max float64
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			t.Fatalf("time grid diverges at %d: %g vs %g", i, a.Times[i], b.Times[i])
		}
		for k := range a.Probes[i] {
			if d := math.Abs(a.Probes[i][k] - b.Probes[i][k]); d > max {
				max = d
			}
		}
	}
	return max
}

// cornerVariants builds non-collinear per-source corner patterns, so every
// variant integrates on its own lane and the panels stay wide.
func cornerVariants() []Variant {
	return []Variant{
		{Name: "typ"},
		{Name: "hot1", SourceScales: map[string]float64{"Iload1": 1.4}},
		{Name: "hot2", SourceScales: map[string]float64{"Iload2": 0.6, "Iload3": 1.2}},
		{Name: "fast", Scale: 1.1, SourceScales: map[string]float64{"Iload1": 0.8}},
		{Name: "mc", Sigma: 0.1, Seed: 42},
	}
}

// TestSweepMatchesSolo_Aligned is the tentpole equivalence test: N
// non-collinear variants with identical transition spots, run as one
// batched sweep, must reproduce N solo runs to 1e-10 while actually
// batching panels and sharing the factorization lineage.
func TestSweepMatchesSolo_Aligned(t *testing.T) {
	sys := ibmSystem(t, 0.2)
	variants := cornerVariants()
	opts := Options{Base: baseOpts(sys), Method: transient.RMATEX}
	res, err := Run(sys, variants, opts)
	if err != nil {
		t.Fatal(err)
	}
	soloFactorizations := 0
	for v, va := range variants {
		solo := soloRun(t, sys, va, transient.RMATEX, baseOpts(sys))
		if v == 0 {
			soloFactorizations = solo.Stats.Factorizations
		}
		if d := maxProbeDiff(t, solo, res.Variants[v]); d > 1e-10 {
			t.Errorf("variant %q deviates from solo by %g > 1e-10", va.Name, d)
		}
		if res.Variants[v].Shared {
			t.Errorf("variant %q unexpectedly served by sharing", va.Name)
		}
	}
	if res.Stats.Lanes != len(variants) {
		t.Errorf("lanes = %d, want %d", res.Stats.Lanes, len(variants))
	}
	// One factorization lineage for the whole sweep: no more computed
	// factorizations than a single solo run.
	if res.Stats.Sim.Factorizations > soloFactorizations {
		t.Errorf("sweep computed %d factorizations, one solo run computes %d",
			res.Stats.Sim.Factorizations, soloFactorizations)
	}
	if res.Stats.Sim.CacheHits == 0 {
		t.Error("sweep lanes recorded no factorization-cache hits")
	}
	if res.Stats.Panel.Batched == 0 {
		t.Errorf("no solves batched into panels: %+v", res.Stats.Panel)
	}
	if mw := res.Stats.Panel.MeanWidth(); mw < 2 {
		t.Errorf("mean panel width %.2f < 2 on aligned grids", mw)
	}
}

// TestSweepMatchesSolo_Misaligned repeats the equivalence check with
// per-user stimulus overrides that shift two variants' transition spots
// off the others' grids: lanes fall back to solo spots where needed, but
// results must still match solo runs and batching must still occur.
func TestSweepMatchesSolo_Misaligned(t *testing.T) {
	sys := ibmSystem(t, 0.2)
	variants := []Variant{
		{Name: "typ"},
		{Name: "shift", Overrides: map[string]Override{
			"Iload1": {Type: "pulse", V1: 0, V2: 0.02, Delay: 1.7e-9, Rise: 0.3e-9, Width: 1.1e-9, Fall: 0.4e-9, Period: 4.3e-9},
		}},
		{Name: "pwl", Overrides: map[string]Override{
			"Iload2": {Type: "pwl", T: []float64{0, 0.9e-9, 2.1e-9, 3.7e-9, 10e-9}, Vals: []float64{0, 0.015, 0.002, 0.02, 0.001}},
		}},
		{Name: "hot", SourceScales: map[string]float64{"Iload3": 1.5}},
	}
	opts := Options{Base: baseOpts(sys), Method: transient.RMATEX}
	res, err := Run(sys, variants, opts)
	if err != nil {
		t.Fatal(err)
	}
	for v, va := range variants {
		solo := soloRun(t, sys, va, transient.RMATEX, baseOpts(sys))
		if d := maxProbeDiff(t, solo, res.Variants[v]); d > 1e-10 {
			t.Errorf("variant %q deviates from solo by %g > 1e-10", va.Name, d)
		}
	}
	if res.Stats.Panel.Batched == 0 {
		t.Errorf("misaligned sweep never batched: %+v", res.Stats.Panel)
	}
}

// TestSweepCollinearSharing checks the linearity fast path: exact
// duplicates are bitwise copies, uniformly scaled corners are served by
// two component integrations (supplies + loads) instead of one lane per
// variant, and stay within the solver tolerance of solo runs.
func TestSweepCollinearSharing(t *testing.T) {
	sys := ibmSystem(t, 0.2)
	variants := []Variant{
		{Name: "typ"},
		{Name: "dup"},                // exact duplicate of typ
		{Name: "half", Scale: 0.5},   // collinear, c = 0.5
		{Name: "double", Scale: 2.0}, // collinear, becomes the representative
	}
	opts := Options{Base: baseOpts(sys), Method: transient.RMATEX}
	res, err := Run(sys, variants, opts)
	if err != nil {
		t.Fatal(err)
	}
	// One collinear group with distinct scales on a deck with supply
	// terms: exactly two component lanes.
	if res.Stats.Lanes != 2 {
		t.Fatalf("lanes = %d, want 2 (supplies + loads superposition)", res.Stats.Lanes)
	}
	if res.Stats.SharedVariants != len(variants) {
		t.Errorf("shared variants = %d, want %d", res.Stats.SharedVariants, len(variants))
	}
	// Duplicates must agree bitwise with each other.
	for i := range res.Variants[0].Times {
		for k := range res.Variants[0].Probes[i] {
			if res.Variants[0].Probes[i][k] != res.Variants[1].Probes[i][k] {
				t.Fatalf("duplicate variants diverge at sample %d", i)
			}
		}
	}
	// And every variant tracks its solo run within the Krylov budget
	// (superposition adds the two components' tolerances).
	for v, va := range variants {
		solo := soloRun(t, sys, va, transient.RMATEX, baseOpts(sys))
		if d := maxProbeDiff(t, solo, res.Variants[v]); d > 1e-6 {
			t.Errorf("variant %q deviates from solo by %g > 1e-6", va.Name, d)
		}
	}
	// Sharing off: every variant gets its own lane again.
	optsNoShare := Options{Base: baseOpts(sys), Method: transient.RMATEX, DisableShare: true}
	res2, err := Run(sys, variants, optsNoShare)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Lanes != len(variants) {
		t.Errorf("DisableShare lanes = %d, want %d", res2.Stats.Lanes, len(variants))
	}
}

// TestSweepCheckpointResume interrupts a sweep via a failing checkpoint
// hook, then resumes the interrupted variants from their snapshots and
// checks the stitched waveform matches an uninterrupted run.
func TestSweepCheckpointResume(t *testing.T) {
	sys := ibmSystem(t, 0.2)
	variants := cornerVariants()[:3]
	base := baseOpts(sys)
	base.CheckpointEvery = 8

	full, err := Run(sys, variants, Options{Base: base, Method: transient.RMATEX})
	if err != nil {
		t.Fatal(err)
	}

	// Keep each variant's first checkpoint and kill it at its second, so
	// every saved snapshot sits strictly before the end of the run.
	cps := map[int]transient.Checkpoint{}
	opts := Options{Base: base, Method: transient.RMATEX}
	var cpMu sync.Mutex
	opts.OnVariantCheckpoint = func(v int, cp transient.Checkpoint) error {
		cpMu.Lock()
		defer cpMu.Unlock()
		if _, ok := cps[v]; ok {
			return errInterrupt
		}
		cps[v] = cp
		return nil
	}
	if _, err := Run(sys, variants, opts); err == nil {
		t.Fatal("interrupted sweep unexpectedly succeeded")
	}
	if len(cps) == 0 {
		t.Skip("no checkpoints captured before interrupt")
	}

	resumed, err := Run(sys, variants, Options{Base: base, Method: transient.RMATEX, ResumeVariants: cps})
	if err != nil {
		t.Fatal(err)
	}
	for v := range variants {
		fr, rr := full.Variants[v], resumed.Variants[v]
		if len(rr.Times) == 0 {
			t.Fatalf("variant %d resumed with no samples", v)
		}
		// The resumed run only covers t > checkpoint; its tail must agree
		// with the uninterrupted run's.
		off := len(fr.Times) - len(rr.Times)
		if off < 0 {
			t.Fatalf("variant %d resumed with more samples (%d) than full run (%d)", v, len(rr.Times), len(fr.Times))
		}
		for i := range rr.Times {
			if fr.Times[off+i] != rr.Times[i] {
				t.Fatalf("variant %d grid mismatch at %d", v, i)
			}
			for k := range rr.Probes[i] {
				if d := math.Abs(fr.Probes[off+i][k] - rr.Probes[i][k]); d > 1e-8 {
					t.Fatalf("variant %d tail deviates by %g", v, d)
				}
			}
		}
	}
}

var errInterrupt = &interruptErr{}

type interruptErr struct{}

func (*interruptErr) Error() string { return "test interrupt" }

// TestSweepValidation covers spec errors.
func TestSweepValidation(t *testing.T) {
	sys := ibmSystem(t, 0.1)
	base := baseOpts(sys)
	cases := []struct {
		name string
		vs   []Variant
	}{
		{"empty", nil},
		{"dup names", []Variant{{Name: "a"}, {Name: "a"}}},
		{"unknown scale target", []Variant{{SourceScales: map[string]float64{"nope": 2}}}},
		{"unknown override target", []Variant{{Overrides: map[string]Override{"nope": {Type: "dc"}}}}},
		{"bad waveform type", []Variant{{Overrides: map[string]Override{"Iload1": {Type: "sine"}}}}},
	}
	for _, tc := range cases {
		if _, err := Run(sys, tc.vs, Options{Base: base, Method: transient.RMATEX}); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	bad := base
	bad.OnSample = func(float64, []float64) {}
	if _, err := Run(sys, []Variant{{}}, Options{Base: bad, Method: transient.RMATEX}); err == nil {
		t.Error("engine-owned Base.OnSample accepted")
	}
}
