// Package sweep runs N scenario variants of one power-grid deck as a
// single batched computation — the serving-layer move that turns the
// engine's within-job reuse into cross-user throughput. A variant is the
// same MNA system with its load sources rescaled (corner factors,
// per-source factors, deterministic Monte-Carlo spreads) or re-stimulated
// (per-user waveform overrides); the grid topology, C, G and the rational
// shift never change. The engine exploits that three ways:
//
//   - One factorization-cache lineage. All variants draw from one
//     sparse.Cache, so the symbolic analysis and every numeric
//     factorization (G, C + γG, ...) is computed once and hit N-1 times,
//     no matter how many variants run.
//
//   - Cross-variant solve panels. Each simulated variant runs on its own
//     goroutine ("lane") joined to a sparse.PanelBroker; every triangular
//     solve inside its Krylov basis builds parks at the broker's barrier
//     and executes together with the other lanes' solves as one blocked
//     multi-RHS SolveMulti panel. Lanes whose adaptive step grids diverge
//     still batch (rounds form from concurrent pendency, not matching
//     simulation times), and a lane that finishes or fails leaves the
//     barrier, narrowing panels instead of stalling them.
//
//   - Collinear-variant sharing. The MNA system is linear in its inputs,
//     so a variant whose load-scale vector is an exact multiple of
//     another's has an exactly scaled load response: one representative
//     integration (plus one supplies-only integration when the deck has
//     supply terms) serves the whole group, sharing its Lanczos bases and
//     tridiagonal eigendecompositions outright. Exact-duplicate variants
//     are plain copies.
//
// Run is the entry point; the serve package exposes it as the POST /sweep
// job type and cmd/matex as the -sweep flag.
package sweep
