package sweep

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/waveform"
)

// Variant describes one scenario of the base deck: a rescaling and/or
// re-stimulation of its load (non-supply) sources. Supply terms — the DC
// rail contributions — are never scaled. The zero Variant reproduces the
// base deck exactly.
type Variant struct {
	// Name labels the variant in results, streams and journals. Empty
	// names default to "v<index>"; names must be unique within a sweep.
	Name string `json:"name,omitempty"`
	// Scale multiplies every load source uniformly (a corner factor).
	// Zero means 1.
	Scale float64 `json:"scale,omitempty"`
	// SourceScales multiplies individual load sources by element name, on
	// top of Scale. Unknown names are an error.
	SourceScales map[string]float64 `json:"source_scales,omitempty"`
	// Sigma, when positive, applies a deterministic Monte-Carlo factor
	// uniform in [1-Sigma, 1+Sigma] to every load source, derived from
	// Seed and the source identity (same seed ⇒ same draw, across runs
	// and machines).
	Sigma float64 `json:"sigma,omitempty"`
	// Seed selects the Monte-Carlo draw when Sigma > 0.
	Seed int64 `json:"seed,omitempty"`
	// Overrides replaces the waveform of named load sources — per-user
	// stimulus. Overridden sources keep their (scaled) coefficients and
	// get the new time shape, which may shift the variant's transition
	// spots off the other variants' grids.
	Overrides map[string]Override `json:"overrides,omitempty"`
}

// Override is a JSON-friendly waveform spec for Variant.Overrides.
type Override struct {
	// Type selects the shape: "dc", "pulse" or "pwl".
	Type string `json:"type"`
	// V is the dc value (Type "dc").
	V float64 `json:"v,omitempty"`
	// V1, V2, Delay, Rise, Width, Fall and Period are the pulse
	// parameters (Type "pulse"); Period 0 means single-shot.
	V1     float64 `json:"v1,omitempty"`
	V2     float64 `json:"v2,omitempty"`
	Delay  float64 `json:"delay,omitempty"`
	Rise   float64 `json:"rise,omitempty"`
	Width  float64 `json:"width,omitempty"`
	Fall   float64 `json:"fall,omitempty"`
	Period float64 `json:"period,omitempty"`
	// T and Vals are the PWL breakpoints (Type "pwl").
	T    []float64 `json:"t,omitempty"`
	Vals []float64 `json:"vals,omitempty"`
}

// wave materializes the override's waveform.
func (o Override) wave() (waveform.Waveform, error) {
	switch strings.ToLower(o.Type) {
	case "dc":
		return waveform.DC(o.V), nil
	case "pulse":
		return &waveform.Pulse{V1: o.V1, V2: o.V2, Delay: o.Delay, Rise: o.Rise, Width: o.Width, Fall: o.Fall, Period: o.Period}, nil
	case "pwl":
		return waveform.NewPWL(o.T, o.Vals)
	}
	return nil, fmt.Errorf("sweep: unknown override waveform type %q", o.Type)
}

// mcFactor is the deterministic Monte-Carlo draw for one source: a
// splitmix64 hash of (seed, source key) mapped uniformly to
// [1-sigma, 1+sigma]. Pure integer hashing keeps draws identical across
// platforms and Go versions.
func mcFactor(seed int64, key string, sigma float64) float64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 0x100000001b3
	}
	// splitmix64 finalizer
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	u := float64(h>>11) / float64(1<<53) // [0,1)
	return 1 + sigma*(2*u-1)
}

// sourceKey identifies one input for scale maps and Monte-Carlo draws:
// its element name, or "#<index>" when the deck left it unnamed.
func sourceKey(in circuit.Input, i int) string {
	if in.Name != "" {
		return in.Name
	}
	return "#" + strconv.Itoa(i)
}

// compiled is one variant resolved against a concrete system: the
// per-input load-scale vector and the per-input override waves.
type compiled struct {
	name   string
	scale  []float64           // len(sys.Inputs); 1 for supplies
	supply []bool              // shared supply mask (supplies never scale)
	waves  []waveform.Waveform // nil = keep base wave
	shape  string              // override fingerprint for grouping
}

// compile resolves variants against sys, validating names and waveforms.
func compile(sys *circuit.System, variants []Variant) ([]compiled, error) {
	byName := map[string][]int{} // source key -> input indices (a name may stamp several inputs)
	supply := make([]bool, len(sys.Inputs))
	loads := 0
	for i, in := range sys.Inputs {
		if in.Supply {
			supply[i] = true
			continue
		}
		loads++
		byName[sourceKey(in, i)] = append(byName[sourceKey(in, i)], i)
	}
	if loads == 0 {
		return nil, fmt.Errorf("sweep: deck has no load sources to vary")
	}
	seen := map[string]bool{}
	out := make([]compiled, len(variants))
	for v := range variants {
		va := &variants[v]
		name := va.Name
		if name == "" {
			name = "v" + strconv.Itoa(v)
		}
		if seen[name] {
			return nil, fmt.Errorf("sweep: duplicate variant name %q", name)
		}
		seen[name] = true
		cv := compiled{name: name, scale: make([]float64, len(sys.Inputs)), supply: supply}
		uni := va.Scale
		if uni == 0 {
			uni = 1
		}
		for name := range va.SourceScales {
			if len(byName[name]) == 0 {
				return nil, fmt.Errorf("sweep: variant %q scales unknown source %q", cv.name, name)
			}
		}
		for i, in := range sys.Inputs {
			if in.Supply {
				cv.scale[i] = 1
				continue
			}
			s := uni
			key := sourceKey(in, i)
			if f, ok := va.SourceScales[key]; ok {
				s *= f
			}
			if va.Sigma > 0 {
				s *= mcFactor(va.Seed, key, va.Sigma)
			}
			cv.scale[i] = s
		}
		if len(va.Overrides) > 0 {
			cv.waves = make([]waveform.Waveform, len(sys.Inputs))
			keys := make([]string, 0, len(va.Overrides))
			for name := range va.Overrides {
				keys = append(keys, name)
			}
			sort.Strings(keys)
			var shape strings.Builder
			for _, name := range keys {
				idxs := byName[name]
				if len(idxs) == 0 {
					return nil, fmt.Errorf("sweep: variant %q overrides unknown source %q", cv.name, name)
				}
				w, err := va.Overrides[name].wave()
				if err != nil {
					return nil, fmt.Errorf("sweep: variant %q: %w", cv.name, err)
				}
				for _, i := range idxs {
					cv.waves[i] = w
				}
				fmt.Fprintf(&shape, "%s=%+v;", name, va.Overrides[name])
			}
			cv.shape = shape.String()
		}
		out[v] = cv
	}
	return out, nil
}

// system materializes the variant's MNA system: a shallow copy of the
// base sharing C, G and the name maps, with transformed inputs.
func (cv *compiled) system(base *circuit.System) *circuit.System {
	vs := *base
	vs.Inputs = make([]circuit.Input, len(base.Inputs))
	for i, in := range base.Inputs {
		out := in
		if s := cv.scale[i]; s != 1 {
			coefs := make([]float64, len(in.Coefs))
			for j, c := range in.Coefs {
				coefs[j] = c * s
			}
			out.Coefs = coefs
		}
		if cv.waves != nil && cv.waves[i] != nil {
			out.Wave = cv.waves[i]
		}
		vs.Inputs[i] = out
	}
	return &vs
}

// collinearWith reports whether cv's load response is an exact scalar
// multiple of ref's: identical override shapes and a load-scale vector
// that is bitwise c·ref.scale for some c. The returned c relates cv to
// ref (cv = c · ref).
func (cv *compiled) collinearWith(ref *compiled) (float64, bool) {
	if cv.shape != ref.shape {
		return 0, false
	}
	// Only the load entries participate: supplies never scale, and the
	// sharing machinery treats the supply response separately.
	c := 0.0
	for i := range cv.scale {
		if cv.supply[i] {
			continue
		}
		if ref.scale[i] == cv.scale[i] {
			continue
		}
		if ref.scale[i] == 0 || cv.scale[i] == 0 {
			return 0, false
		}
		r := cv.scale[i] / ref.scale[i]
		if c == 0 {
			c = r
		} else if r != c {
			return 0, false
		}
	}
	if c == 0 {
		return 1, true // identical vectors
	}
	// The ratio must reproduce every entry exactly, or scaled results
	// would not be bitwise faithful to a dedicated integration's inputs.
	for i := range cv.scale {
		if cv.supply[i] {
			continue
		}
		if cv.scale[i] != c*ref.scale[i] {
			return 0, false
		}
	}
	if math.IsInf(c, 0) || math.IsNaN(c) {
		return 0, false
	}
	return c, true
}
