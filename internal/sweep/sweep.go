package sweep

import (
	"context"
	"fmt"
	"sync"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/transient"
)

// Options configures a sweep run.
type Options struct {
	// Base is the shared solver configuration every variant runs under:
	// Tstop, Probes, Tol, Gamma, Cache, Workspaces, and so on. Its
	// OnSample, OnCheckpoint and ActiveInputs fields are owned by the
	// engine and must be left nil; use the per-variant hooks below. A nil
	// Base.Cache is replaced by a sweep-private cache so the variants
	// still share one factorization lineage.
	Base transient.Options
	// Method is the integrator every variant runs (mixed-method sweeps
	// are not supported; submit separate sweeps).
	Method transient.Method
	// DisableBatch turns off the cross-variant solve broker: lanes still
	// share the cache but solve solo. Benchmarks use it to isolate the
	// panel win.
	DisableBatch bool
	// DisableShare turns off collinear-variant sharing: every variant
	// integrates on its own lane even when it is an exact scalar multiple
	// of another.
	DisableShare bool
	// OnVariantSample, when non-nil, streams output samples. Directly
	// integrated variants stream live as their lanes advance —
	// concurrently, so the hook must be safe to call from multiple
	// goroutines — and derived (shared) variants stream in bulk when the
	// sweep assembles them. The probes row aliases engine memory; copy to
	// retain. Within one variant, samples always arrive in time order.
	OnVariantSample func(variant int, t float64, probes []float64) `json:"-"`
	// OnVariantCheckpoint, when non-nil, receives restartable snapshots
	// for directly integrated variants every Base.CheckpointEvery
	// accepted steps (variants served by sharing are re-run on resume
	// instead). May be called concurrently. A non-nil return aborts the
	// sweep.
	OnVariantCheckpoint func(variant int, cp transient.Checkpoint) error `json:"-"`
	// ResumeVariants re-enters interrupted variants at their last
	// checkpoint (key = variant index). A resumed sweep runs every
	// variant on its own lane (sharing disabled) so the checkpoint
	// contract stays per-variant; variants without an entry restart from
	// DC.
	ResumeVariants map[int]transient.Checkpoint `json:"-"`
	// SkipVariants marks variants already completed (restored from a
	// journal): they are neither integrated nor emitted, and their slot
	// in Result.Variants is a zero VariantResult with only the name set.
	SkipVariants map[int]bool `json:"-"`
}

// VariantResult is one variant's waveform.
type VariantResult struct {
	// Name echoes the variant's (defaulted) name.
	Name string `json:"name"`
	// Times and Probes are the output grid and probe rows, exactly as a
	// solo transient run of this variant would record them.
	Times  []float64   `json:"times,omitempty"`
	Probes [][]float64 `json:"probes,omitempty"`
	// Final is the state at Tstop.
	Final []float64 `json:"final,omitempty"`
	// Shared marks results served by linearity (scaled or recombined from
	// a representative lane) rather than a dedicated integration.
	Shared bool `json:"shared,omitempty"`
	// Skipped marks variants excluded via Options.SkipVariants.
	Skipped bool `json:"skipped,omitempty"`
}

// Stats aggregates the work of a sweep.
type Stats struct {
	// Variants is the number requested; Lanes the number of integrations
	// actually run; SharedVariants the variants served by linearity.
	Variants       int `json:"variants"`
	Lanes          int `json:"lanes"`
	SharedVariants int `json:"shared_variants"`
	// Sim folds the transient work counters across all lanes; with a
	// shared cache, Sim.Factorizations counts factorizations computed
	// once for the whole sweep.
	Sim transient.Stats `json:"sim"`
	// Panel reports the cross-variant solve batching (zero when the
	// broker was disabled or the sweep ran a single lane).
	Panel sparse.PanelStats `json:"panel"`
}

// Result is a completed sweep: one VariantResult per requested variant,
// in input order.
type Result struct {
	Variants []VariantResult `json:"variants"`
	Stats    Stats           `json:"stats"`
}

// Validate resolves variants against sys without running anything: it
// reports the spec errors Run would (no load sources, duplicate names,
// unknown scale or override targets, malformed waveforms), so a serving
// layer can reject a bad sweep at submit time instead of at run time.
func Validate(sys *circuit.System, variants []Variant) error {
	if len(variants) == 0 {
		return fmt.Errorf("sweep: no variants")
	}
	_, err := compile(sys, variants)
	return err
}

// lane is one integration to execute.
type lane struct {
	sys     *circuit.System
	active  []bool // input mask; nil = all
	variant int    // >= 0: this lane is exactly that variant's waveform
	res     *transient.Result
}

// member ties a variant to its group representative: v's load response
// equals c times the representative's.
type member struct {
	v int
	c float64
}

// group is a set of collinear variants served together.
type group struct {
	rep     int // variant index of the representative (|c| maximal, c ≡ 1)
	members []member
	// lanes resolved by planLanes:
	direct int // lane integrating the representative's full waveform (-1 when split)
	sup    int // supplies-only lane (-1 unless split)
	load   int // loads-only representative lane (-1 unless split)
}

// Run executes variants of sys as one batched sweep. See the package
// comment for the sharing model. The returned error is the first lane
// failure; on error the remaining lanes are canceled via the run context.
func Run(sys *circuit.System, variants []Variant, opts Options) (*Result, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("sweep: no variants")
	}
	if opts.Base.OnSample != nil || opts.Base.OnCheckpoint != nil || opts.Base.ActiveInputs != nil {
		return nil, fmt.Errorf("sweep: Base.OnSample/OnCheckpoint/ActiveInputs are engine-owned; use the sweep hooks")
	}
	cvs, err := compile(sys, variants)
	if err != nil {
		return nil, err
	}
	base := opts.Base
	if base.Cache == nil {
		base.Cache = sparse.NewCache(0)
	}
	noShare := opts.DisableShare || len(opts.ResumeVariants) > 0
	groups := planGroups(cvs, opts.Method, noShare, opts.SkipVariants)
	lanes, err := planLanes(sys, cvs, groups)
	if err != nil {
		return nil, err
	}

	res := &Result{Variants: make([]VariantResult, len(variants))}
	for v := range cvs {
		res.Variants[v].Name = cvs[v].name
		if opts.SkipVariants[v] {
			res.Variants[v].Skipped = true
		}
	}
	res.Stats.Variants = len(variants)
	res.Stats.Lanes = len(lanes)
	if len(lanes) == 0 {
		return res, nil // everything skipped
	}

	var broker *sparse.PanelBroker
	if !opts.DisableBatch && len(lanes) > 1 {
		broker = sparse.NewPanelBroker()
	}
	parent := base.Ctx
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}
	// Join every lane before any goroutine starts, so the first barrier
	// round already waits for the full fleet.
	joined := make([]*sparse.PanelLane, len(lanes))
	if broker != nil {
		for i := range lanes {
			joined[i] = broker.Join()
		}
	}
	for i := range lanes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ln := lanes[i]
			lopts := base
			lopts.Ctx = ctx
			lopts.ActiveInputs = ln.active
			if joined[i] != nil {
				defer joined[i].Leave()
				lopts.Panel = joined[i]
			}
			var r *transient.Result
			var err error
			if v := ln.variant; v >= 0 {
				if opts.OnVariantSample != nil {
					lopts.OnSample = func(t float64, probes []float64) {
						opts.OnVariantSample(v, t, probes)
					}
				}
				if opts.OnVariantCheckpoint != nil {
					lopts.OnCheckpoint = func(cp transient.Checkpoint) error {
						return opts.OnVariantCheckpoint(v, cp)
					}
				}
				if cp, ok := opts.ResumeVariants[v]; ok {
					r, err = transient.Resume(ln.sys, opts.Method, lopts, cp)
				} else {
					r, err = transient.Simulate(ln.sys, opts.Method, lopts)
				}
			} else {
				r, err = transient.Simulate(ln.sys, opts.Method, lopts)
			}
			if err != nil {
				fail(fmt.Errorf("sweep: lane %d: %w", i, err))
				return
			}
			lanes[i].res = r
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	for i := range lanes {
		foldStats(&res.Stats.Sim, &lanes[i].res.Stats)
	}
	if broker != nil {
		res.Stats.Panel = broker.Stats()
	}
	if err := assemble(res, cvs, groups, lanes, &opts); err != nil {
		return nil, err
	}
	return res, nil
}

// planGroups partitions the variants into collinear groups. With sharing
// off (or on resume) every variant is its own singleton group.
func planGroups(cvs []compiled, method transient.Method, noShare bool, skip map[int]bool) []group {
	var groups []group
	for v := range cvs {
		if skip[v] {
			continue
		}
		if !noShare {
			placed := false
			for gi := range groups {
				g := &groups[gi]
				if c, ok := cvs[v].collinearWith(&cvs[g.rep]); ok {
					g.members = append(g.members, member{v: v, c: c})
					placed = true
					break
				}
			}
			if placed {
				continue
			}
		}
		groups = append(groups, group{rep: v, members: []member{{v: v, c: 1}}})
	}
	// Re-anchor each group on its largest-magnitude member, so every
	// derived member scales a representative down (|c| <= 1) and the
	// Krylov error bound of the representative covers the whole group.
	for gi := range groups {
		g := &groups[gi]
		best, bestAbs := g.rep, 0.0
		for _, m := range g.members {
			abs := m.c
			if abs < 0 {
				abs = -abs
			}
			if abs > bestAbs {
				best, bestAbs = m.v, abs
			}
		}
		if best != g.rep {
			var cBest float64
			for _, m := range g.members {
				if m.v == best {
					cBest = m.c
				}
			}
			for i := range g.members {
				g.members[i].c /= cBest
			}
			g.rep = best
		}
	}
	// TRAdaptive picks its step grid from the solution, so the two
	// component integrations of a split group would land on different
	// grids; degrade distinct-scale groups to solo lanes there.
	if method == transient.TRAdaptive {
		var out []group
		for _, g := range groups {
			if sameScales(g.members) {
				out = append(out, g)
				continue
			}
			for _, m := range g.members {
				out = append(out, group{rep: m.v, members: []member{{v: m.v, c: 1}}})
			}
		}
		groups = out
	}
	return groups
}

func sameScales(ms []member) bool {
	for _, m := range ms {
		if m.c != 1 {
			return false
		}
	}
	return true
}

// planLanes resolves groups into concrete integrations.
func planLanes(sys *circuit.System, cvs []compiled, groups []group) ([]lane, error) {
	hasSupply := false
	for _, in := range sys.Inputs {
		if in.Supply {
			hasSupply = true
			break
		}
	}
	var lanes []lane
	add := func(l lane) int {
		lanes = append(lanes, l)
		return len(lanes) - 1
	}
	// No variant ever touches a supply input (compile only maps load
	// sources), so the supplies-only component is identical across groups
	// whose override shapes match: one lane serves them all. The output
	// grid derives from the system's waveform structure — which the
	// shape fingerprint captures — not from the input values, so the
	// shared lane lands on every such group's grid.
	supByShape := map[string]int{}
	for gi := range groups {
		g := &groups[gi]
		g.direct, g.sup, g.load = -1, -1, -1
		repSys := cvs[g.rep].system(sys)
		if sameScales(g.members) {
			// Copies of one exact waveform: integrate the representative
			// once, duplicate for the rest.
			g.direct = add(lane{sys: repSys, variant: g.rep})
			continue
		}
		if !hasSupply {
			// Pure load deck: the whole response scales, one lane serves
			// every member.
			g.direct = add(lane{sys: repSys, variant: g.rep})
			continue
		}
		// Superposition split: x_m(t) = x_sup(t) + c_m · x_load(t). Both
		// components run on the representative's system with an input
		// mask, and share its output grid (the grid derives from the
		// waveforms, not the solution).
		supMask := make([]bool, len(sys.Inputs))
		loadMask := make([]bool, len(sys.Inputs))
		for i, in := range sys.Inputs {
			supMask[i] = in.Supply
			loadMask[i] = !in.Supply
		}
		if si, ok := supByShape[cvs[g.rep].shape]; ok {
			g.sup = si
		} else {
			g.sup = add(lane{sys: repSys, active: supMask, variant: -1})
			supByShape[cvs[g.rep].shape] = g.sup
		}
		g.load = add(lane{sys: repSys, active: loadMask, variant: -1})
	}
	return lanes, nil
}

// assemble fills derived variants from their group's lanes and emits
// their samples through the streaming hook.
func assemble(res *Result, cvs []compiled, groups []group, lanes []lane, opts *Options) error {
	emit := func(v int, vr *VariantResult) {
		if opts.OnVariantSample == nil {
			return
		}
		for i, t := range vr.Times {
			var row []float64
			if i < len(vr.Probes) {
				row = vr.Probes[i]
			}
			opts.OnVariantSample(v, t, row)
		}
	}
	for _, g := range groups {
		if g.direct >= 0 {
			rep := lanes[g.direct].res
			for _, m := range g.members {
				vr := &res.Variants[m.v]
				if m.v == g.rep {
					vr.Times, vr.Probes, vr.Final = rep.Times, rep.Probes, rep.Final
					continue // streamed live by its lane
				}
				vr.Shared = true
				vr.Times = rep.Times
				if m.c == 1 {
					vr.Probes, vr.Final = rep.Probes, rep.Final
				} else {
					vr.Probes = scaleRows(rep.Probes, m.c)
					vr.Final = scaleRow(rep.Final, m.c)
				}
				emit(m.v, vr)
			}
			continue
		}
		sup, load := lanes[g.sup].res, lanes[g.load].res
		if len(sup.Times) != len(load.Times) {
			return fmt.Errorf("sweep: internal: component grids diverged (%d vs %d samples)", len(sup.Times), len(load.Times))
		}
		for _, m := range g.members {
			vr := &res.Variants[m.v]
			vr.Shared = true
			vr.Times = sup.Times
			vr.Probes = combineRows(sup.Probes, load.Probes, m.c)
			vr.Final = combineRow(sup.Final, load.Final, m.c)
			emit(m.v, vr)
		}
	}
	for _, g := range groups {
		for _, m := range g.members {
			if m.v != g.rep {
				res.Stats.SharedVariants++
			} else if g.direct < 0 {
				res.Stats.SharedVariants++ // split representative is derived too
			}
		}
	}
	return nil
}

func scaleRow(row []float64, c float64) []float64 {
	if row == nil {
		return nil
	}
	out := make([]float64, len(row))
	for i, x := range row {
		out[i] = c * x
	}
	return out
}

func scaleRows(rows [][]float64, c float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i := range rows {
		out[i] = scaleRow(rows[i], c)
	}
	return out
}

func combineRow(a, b []float64, c float64) []float64 {
	if a == nil && b == nil {
		return nil
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + c*b[i]
	}
	return out
}

func combineRows(a, b [][]float64, c float64) [][]float64 {
	out := make([][]float64, len(a))
	for i := range a {
		out[i] = combineRow(a[i], b[i], c)
	}
	return out
}

// foldStats accumulates one lane's transient counters into the sweep
// total.
func foldStats(dst *transient.Stats, s *transient.Stats) {
	dst.Factorizations += s.Factorizations
	dst.SolvePairs += s.SolvePairs
	dst.SpMVs += s.SpMVs
	dst.ExpmEvals += s.ExpmEvals
	dst.KrylovDims = append(dst.KrylovDims, s.KrylovDims...)
	dst.Steps += s.Steps
	dst.Rejected += s.Rejected
	dst.Regularized = dst.Regularized || s.Regularized
	dst.CacheHits += s.CacheHits
	dst.CacheMisses += s.CacheMisses
	dst.LanczosSpots += s.LanczosSpots
	dst.SymbolicHits += s.SymbolicHits
	dst.Refactors += s.Refactors
	dst.DCTime += s.DCTime
	dst.FactorTime += s.FactorTime
	dst.TransientTime += s.TransientTime
}
