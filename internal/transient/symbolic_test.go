package transient

import (
	"math"
	"testing"

	"github.com/matex-sim/matex/internal/sparse"
)

// TestAdaptiveTRSymbolicSharing: the adaptive stepper's (C/h + G/2) family
// shares one sparsity pattern across every quantized step size, so a cached
// run must pay for exactly one symbolic analysis — every further computed
// factorization is a cheap numeric refactorization (SymbolicHits).
func TestAdaptiveTRSymbolicSharing(t *testing.T) {
	sys := ibmSystem(t, 0.2)
	cache := sparse.NewCache(0)
	res, err := Simulate(sys, TRAdaptive, Options{
		Tstop: 10e-9, Tol: 1e-4, Cache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Factorizations < 3 {
		t.Fatalf("adaptive run computed only %d factorizations; test needs a step-size family", s.Factorizations)
	}
	if s.Refactors != s.Factorizations {
		t.Errorf("refactors %d != factorizations %d: some LDLT factorizations bypassed the symbolic split", s.Refactors, s.Factorizations)
	}
	// G and the (C/h + G/2) family have distinct patterns: at most two
	// symbolic analyses, so symbolic hits ≥ factorizations - 2.
	if s.SymbolicHits < s.Factorizations-2 {
		t.Errorf("symbolic hits %d for %d factorizations: the step family did not share its analysis", s.SymbolicHits, s.Factorizations)
	}
	cs := cache.Stats()
	if cs.SymbolicMisses > 2 {
		t.Errorf("cache paid for %d symbolic analyses, want ≤ 2 (G + step family)", cs.SymbolicMisses)
	}
	t.Logf("factorizations=%d refactors=%d symbolic_hits=%d analyses=%d",
		s.Factorizations, s.Refactors, s.SymbolicHits, cs.SymbolicMisses)
}

// TestSolveWorkersWaveformUnchanged: routing every substitution pair
// through the level-scheduled parallel solver must not change the solution
// (it falls back to the sequential path below the crossover, and above it
// the task schedule computes the same triangular sweeps).
func TestSolveWorkersWaveformUnchanged(t *testing.T) {
	sys := ibmSystem(t, 0.2)
	probes := []int{0, sys.NumNodes / 2}
	for _, method := range []Method{RMATEX, IMATEX, TRAdaptive} {
		base, err := Simulate(sys, method, Options{Tstop: 10e-9, Tol: 1e-5, Probes: probes})
		if err != nil {
			t.Fatalf("%v sequential: %v", method, err)
		}
		par, err := Simulate(sys, method, Options{Tstop: 10e-9, Tol: 1e-5, Probes: probes, SolveWorkers: 4})
		if err != nil {
			t.Fatalf("%v parallel: %v", method, err)
		}
		if len(par.Times) != len(base.Times) {
			t.Fatalf("%v: grids differ: %d vs %d", method, len(par.Times), len(base.Times))
		}
		for i := range base.Times {
			for k := range probes {
				if d := math.Abs(par.Probes[i][k] - base.Probes[i][k]); d > 1e-9 {
					t.Fatalf("%v: waveform deviates %g at t=%g probe %d", method, d, base.Times[i], k)
				}
			}
		}
	}
}
