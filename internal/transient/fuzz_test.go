package transient

import "testing"

// FuzzParseMethod checks the integrator-name parser never panics and that
// accepted names round-trip through String.
func FuzzParseMethod(f *testing.F) {
	for _, s := range []string{"", "matex", "r-matex", "trfixed", "be", "MATEX", "tr", "x"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseMethod(s)
		if err != nil {
			return
		}
		if name := m.String(); name == "" {
			t.Fatalf("accepted method %q has empty String()", s)
		}
	})
}
