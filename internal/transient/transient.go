package transient

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/waveform"
)

// Method selects an integrator.
type Method int

const (
	// TRFixed is trapezoidal with fixed step, one factorization.
	TRFixed Method = iota
	// BEFixed is backward Euler with fixed step, one factorization.
	BEFixed
	// FEFixed is forward Euler (explicit); it factorizes C once. Unstable
	// for steps above the fastest time constant — included as the paper's
	// stiffness motivation.
	FEFixed
	// TRAdaptive is trapezoidal with LTE-controlled steps; every step-size
	// change re-factorizes (C/h + G/2).
	TRAdaptive
	// MEXP is the matrix-exponential solver with the standard Krylov
	// subspace (factorizes C; needs regularization when C is singular).
	MEXP
	// IMATEX uses the inverted Krylov subspace (reuses the DC factorization
	// of G; regularization-free).
	IMATEX
	// RMATEX uses the rational (shift-and-invert) Krylov subspace
	// (factorizes C + γG; regularization-free).
	RMATEX
)

// ParseMethod resolves a method name ("tr", "be", "fe", "tradpt", "mexp",
// "imatex", "rmatex"; case-insensitive) — the spelling shared by the matex
// CLI flags and the serve job API. The empty string selects R-MATEX, the
// paper's choice.
func ParseMethod(name string) (Method, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "tr":
		return TRFixed, nil
	case "be":
		return BEFixed, nil
	case "fe":
		return FEFixed, nil
	case "tradpt":
		return TRAdaptive, nil
	case "mexp":
		return MEXP, nil
	case "imatex", "i-matex":
		return IMATEX, nil
	case "rmatex", "r-matex", "":
		return RMATEX, nil
	}
	return 0, fmt.Errorf("transient: unknown method %q", name)
}

func (m Method) String() string {
	switch m {
	case TRFixed:
		return "TR"
	case BEFixed:
		return "BE"
	case FEFixed:
		return "FE"
	case TRAdaptive:
		return "TR(adpt)"
	case MEXP:
		return "MEXP"
	case IMATEX:
		return "I-MATEX"
	case RMATEX:
		return "R-MATEX"
	}
	return "unknown"
}

// Options configures a transient run.
type Options struct {
	// Tstop is the end of the simulation window (start is 0).
	Tstop float64
	// Step is the fixed step (TR/BE/FE) or the initial step (TRAdaptive).
	Step float64
	// Probes lists unknown indices recorded at every output time.
	Probes []int
	// KeepFull additionally records the full state at every output time
	// (needed by the distributed superposition).
	KeepFull bool
	// EvalTimes are the output times for the MATEX solvers; nil defaults to
	// the system's global transition spots. Fixed-step methods output at
	// every step regardless.
	EvalTimes []float64
	// Tol is the Krylov error budget ε (MATEX methods, default 1e-6) or the
	// relative LTE target (TRAdaptive, default 1e-4).
	Tol float64
	// Gamma is the rational shift γ for R-MATEX; the default 1e-10 sits at
	// the order of the step sizes, as the paper prescribes.
	Gamma float64
	// MaxDim caps the Krylov dimension; default 256.
	MaxDim int
	// MaxStep, when positive, caps the MATEX segment length so that a new
	// Krylov subspace is generated at least every MaxStep seconds. The
	// standard (MEXP) subspace needs this on stiff systems, where its
	// accuracy degrades as h·‖A‖ grows; the spectral-transform subspaces
	// are generally run without it (reuse across whole segments is their
	// feature).
	MaxStep float64
	// FactorKind and Ordering select the sparse direct solver configuration.
	FactorKind sparse.FactorKind
	Ordering   sparse.Ordering
	// ActiveInputs masks the system inputs (nil = all active); the
	// distributed scheduler uses it to give each subtask one source group.
	ActiveInputs []bool
	// InitialState overrides the DC operating point as x(0).
	InitialState []float64
	// Cache, when non-nil, is a shared content-addressed factorization
	// cache: every factorization the run needs (G, C, C/h + G/2, C + γG,
	// ...) is looked up by matrix content × kind × ordering × scalars
	// before being computed. Sharing one Cache across solvers, adaptive
	// steps, repeated runs and distributed subtasks eliminates redundant
	// factorizations; hits and misses are reported in Stats. The cache
	// does not travel over RPC (remote workers keep their own, like the
	// paper's cluster nodes).
	Cache *sparse.Cache `json:"-"`
	// Krylov selects the subspace process for the MATEX methods: the zero
	// value (auto) takes the symmetric Lanczos fast path whenever the
	// stamped matrices are symmetric and the spot qualifies, "arnoldi"
	// pins the full Gram-Schmidt reference, "lanczos" states the fast-path
	// preference explicitly. See krylov.Method.
	Krylov krylov.Method
	// Workspaces, when non-nil, is the arena pool Krylov subspace
	// generation draws its buffers from; the distributed scheduler and
	// matexd workers share one pool per process the way they share the
	// factorization cache. Nil uses the package-wide default pool.
	Workspaces *krylov.WorkspacePool `json:"-"`
	// SolveWorkers, when > 1, runs every triangular solve through the
	// factorization's level-scheduled parallel path (sparse.ParSolver) with
	// that many goroutines. The solver falls back to the sequential path on
	// factorizations without level schedules and below the profitability
	// crossover, so any value is safe; 0 and 1 keep solves sequential.
	SolveWorkers int
	// OnSample, when non-nil, is called synchronously after every recorded
	// output sample with the sample time and the probe row — the streaming
	// hook the serving layer and `matex -stream` emit waveform chunks from
	// as the integrator advances, instead of waiting for the whole Result.
	// The row aliases the slice just appended to Result.Probes (nil when no
	// probes are configured); the callback must copy it if it retains it,
	// and its cost lands on the simulation critical path.
	OnSample func(t float64, probes []float64) `json:"-"`
	// Ctx, when non-nil, cancels the run: integrators check it at every
	// step/segment boundary and return the context's error (wrapped) once it
	// fires, so a canceled or deadline-expired job stops mid-simulation
	// instead of running to Tstop. Nil means no cancellation.
	Ctx context.Context `json:"-"`
	// OnCheckpoint, when non-nil, is called synchronously with a restartable
	// snapshot every CheckpointEvery accepted steps — the durability hook
	// the serving layer journals from, paired with Resume on the other side
	// of a crash. The snapshot owns its slices (safe to retain). A non-nil
	// return aborts the run with the error wrapped, so a persistence layer
	// that cannot record progress can choose to stop instead of running
	// uncheckpointed.
	OnCheckpoint func(cp Checkpoint) error `json:"-"`
	// Panel, when non-nil, is this run's lane on a sparse.PanelBroker:
	// every factorization the run acquires is wrapped so its triangular
	// solves park at the broker's barrier and execute as multi-RHS panels
	// together with the other lanes' solves. The sweep engine sets it to
	// batch N scenario variants' Krylov builds into shared SolveMulti
	// panels; solo runs leave it nil. The lane's lifecycle (Join/Leave)
	// belongs to the caller, not the integrator.
	Panel *sparse.PanelLane `json:"-"`
	// CheckpointEvery is the OnCheckpoint cadence in accepted steps;
	// 0 defaults to 128 when the hook is set. Smaller values shrink the
	// recovery window at the cost of more snapshot I/O.
	CheckpointEvery int
	// resumeFrom, when non-nil, re-enters the integrator mid-waveform
	// instead of starting from DC. Set via Resume, never directly.
	resumeFrom *Checkpoint
}

// cancelled reports the context error once Options.Ctx has fired; the
// integrators call it at every step/segment boundary.
func (o *Options) cancelled() error {
	if o.Ctx == nil {
		return nil
	}
	if err := o.Ctx.Err(); err != nil {
		return fmt.Errorf("transient: run canceled: %w", err)
	}
	return nil
}

// workspaces resolves the arena pool.
func (o Options) workspaces() *krylov.WorkspacePool {
	if o.Workspaces != nil {
		return o.Workspaces
	}
	return krylov.DefaultWorkspaces
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.Gamma <= 0 {
		o.Gamma = 1e-10
	}
	if o.MaxDim <= 0 {
		o.MaxDim = 256
	}
	// Only the explicit zero value is rewritten: OrderNatural stays natural.
	o.Ordering = o.Ordering.Resolve()
	return o
}

// Stats reports the work performed by a solver, matching the cost terms of
// the paper's complexity model.
type Stats struct {
	Factorizations int
	SolvePairs     int // forward+backward substitution pairs (T_bs)
	SpMVs          int
	ExpmEvals      int // small matrix exponential evaluations (T_H)
	KrylovDims     []int
	Steps          int
	Rejected       int
	Regularized    bool // MEXP had to regularize a singular C
	// CacheHits/CacheMisses count factorization acquisitions served from /
	// added to Options.Cache; Factorizations counts only factorizations
	// actually computed, so the paper's cost comparison stays honest when
	// the cache is on.
	CacheHits   int
	CacheMisses int
	// LanczosSpots counts the Krylov subspaces generated through the
	// symmetric Lanczos fast path (the remainder used Arnoldi).
	LanczosSpots int
	// SymbolicHits counts factorizations that reused a cached symbolic
	// analysis (pattern tier of Options.Cache); Refactors counts computed
	// factorizations that went through the cheap numeric refactorization
	// path at all (including the one that built the analysis). Refactors -
	// SymbolicHits is therefore the number of symbolic analyses paid for.
	SymbolicHits  int
	Refactors     int
	DCTime        time.Duration
	FactorTime    time.Duration
	TransientTime time.Duration
}

// MA returns the average generated Krylov dimension (paper's m_a).
func (s *Stats) MA() float64 {
	if len(s.KrylovDims) == 0 {
		return 0
	}
	sum := 0
	for _, d := range s.KrylovDims {
		sum += d
	}
	return float64(sum) / float64(len(s.KrylovDims))
}

// MP returns the peak generated Krylov dimension (paper's m_p).
func (s *Stats) MP() int {
	p := 0
	for _, d := range s.KrylovDims {
		if d > p {
			p = d
		}
	}
	return p
}

// addCounters folds Krylov counters into the stats.
func (s *Stats) addCounters(c *krylov.Counters) {
	s.SolvePairs += c.SolvePairs
	s.SpMVs += c.SpMVs
	s.ExpmEvals += c.ExpmEvals
	s.LanczosSpots += c.Lanczos
	s.KrylovDims = append(s.KrylovDims, c.Dims...)
}

// Result is a transient solution trace.
type Result struct {
	Times  []float64
	Probes [][]float64 // len(Times) rows of len(Options.Probes)
	Full   [][]float64 // full states when Options.KeepFull
	Final  []float64
	Stats  Stats
}

// record appends an output sample and fires the streaming hook.
func (r *Result) record(t float64, x []float64, opts *Options) {
	r.Times = append(r.Times, t)
	var row []float64
	if len(opts.Probes) > 0 {
		row = make([]float64, len(opts.Probes))
		for i, p := range opts.Probes {
			row[i] = x[p]
		}
		r.Probes = append(r.Probes, row)
	}
	if opts.KeepFull {
		r.Full = append(r.Full, append([]float64(nil), x...))
	}
	if opts.OnSample != nil {
		opts.OnSample(t, row)
	}
}

// ProbeSeries extracts the trace of probe column k. A result recorded
// without probes (or an out-of-range column) yields an empty series rather
// than a panic.
func (r *Result) ProbeSeries(k int) []float64 {
	if len(r.Probes) < len(r.Times) || k < 0 {
		return nil
	}
	out := make([]float64, len(r.Times))
	for i := range r.Times {
		if k >= len(r.Probes[i]) {
			return nil
		}
		out[i] = r.Probes[i][k]
	}
	return out
}

// InterpProbe linearly interpolates probe column k at time t. A result
// recorded without probes (or an out-of-range column) yields NaN rather
// than a panic.
func (r *Result) InterpProbe(t float64, k int) float64 {
	n := len(r.Times)
	if n == 0 || len(r.Probes) < n || k < 0 || k >= len(r.Probes[0]) {
		return math.NaN()
	}
	if t <= r.Times[0] {
		return r.Probes[0][k]
	}
	if t >= r.Times[n-1] {
		return r.Probes[n-1][k]
	}
	i := sort.SearchFloat64s(r.Times, t)
	t0, t1 := r.Times[i-1], r.Times[i]
	v0, v1 := r.Probes[i-1][k], r.Probes[i][k]
	if t1 == t0 {
		return v1
	}
	return v0 + (v1-v0)*(t-t0)/(t1-t0)
}

// Simulate dispatches to the selected integrator.
func Simulate(sys *circuit.System, method Method, opts Options) (*Result, error) {
	switch method {
	case TRFixed, BEFixed, FEFixed:
		return simulateFixed(sys, method, opts)
	case TRAdaptive:
		return simulateAdaptiveTR(sys, opts)
	case MEXP, IMATEX, RMATEX:
		return SimulateMatex(sys, method, opts)
	default:
		return nil, fmt.Errorf("transient: unknown method %d", method)
	}
}

// acquireFactor obtains a factorization of a, consulting the run cache when
// one is configured and updating the work counters either way.
func acquireFactor(a *sparse.CSC, opts Options, stats *Stats) (sparse.Factorization, error) {
	if opts.Cache != nil {
		f, info, err := opts.Cache.FactorEx(a, opts.FactorKind, opts.Ordering)
		if err != nil {
			return nil, err
		}
		stats.AddFactorInfo(info)
		return wrapPanel(f, opts), nil
	}
	f, err := sparse.Factor(a, opts.FactorKind, opts.Ordering)
	if err != nil {
		return nil, err
	}
	stats.Factorizations++
	return wrapPanel(f, opts), nil
}

// wrapPanel routes a freshly acquired factorization through the run's
// sweep panel lane, when one is configured. acquireFactor/acquireFactorSum
// are the only factorization entry points, so wrapping here covers every
// solve an integrator issues.
func wrapPanel(f sparse.Factorization, opts Options) sparse.Factorization {
	if opts.Panel == nil {
		return f
	}
	return opts.Panel.Wrap(f)
}

// acquireFactorSum obtains a factorization of alpha·a + beta·b, consulting
// the run cache when one is configured. On a cache hit the sum matrix is
// never even built; on a miss the cache's symbolic tier still collapses all
// scalar shifts of one pattern onto a single analysis.
func acquireFactorSum(alpha float64, a *sparse.CSC, beta float64, b *sparse.CSC, opts Options, stats *Stats) (sparse.Factorization, error) {
	if opts.Cache != nil {
		f, info, err := opts.Cache.FactorSumEx(alpha, a, beta, b, opts.FactorKind, opts.Ordering)
		if err != nil {
			return nil, err
		}
		stats.AddFactorInfo(info)
		return wrapPanel(f, opts), nil
	}
	f, err := sparse.Factor(sparse.Add(alpha, a, beta, b), opts.FactorKind, opts.Ordering)
	if err != nil {
		return nil, err
	}
	stats.Factorizations++
	return wrapPanel(f, opts), nil
}

// AddFactorInfo folds one cache acquisition into the work counters; the
// distributed scheduler uses it for its own DC-solve acquisition.
func (s *Stats) AddFactorInfo(info sparse.FactorInfo) {
	if info.Hit {
		s.CacheHits++
		return
	}
	s.CacheMisses++
	s.Factorizations++
	if info.Refactored {
		s.Refactors++
	}
	if info.SymbolicHit {
		s.SymbolicHits++
	}
}

// solveWith runs one substitution pair through the parallel solver when
// Options.SolveWorkers asks for one and the factorization offers it.
func solveWith(f sparse.Factorization, dst, b, work []float64, opts Options) {
	if opts.SolveWorkers > 1 {
		if ps, ok := f.(sparse.ParSolver); ok {
			ps.ParSolveWith(dst, b, work, opts.SolveWorkers)
			return
		}
	}
	f.SolveWith(dst, b, work)
}

// initialState resolves x(0): the caller-provided state or the DC operating
// point. It returns the state, the factorization of G (reused by the MATEX
// input terms), and updates stats.
func initialState(sys *circuit.System, opts Options, stats *Stats) ([]float64, sparse.Factorization, error) {
	t0 := time.Now()
	defer func() { stats.DCTime += time.Since(t0) }()
	factG := func() (sparse.Factorization, error) {
		fg, err := acquireFactor(sys.G, opts, stats)
		if err != nil {
			return nil, fmt.Errorf("transient: factorizing G: %w", err)
		}
		return fg, nil
	}
	if cp := opts.resumeFrom; cp != nil {
		// Resuming: the checkpointed state replaces the DC solve. G is still
		// factorized (the MATEX input terms need it); with a shared cache
		// that is a lookup, so recovery pays no re-analysis.
		fg, err := factG()
		if err != nil {
			return nil, nil, err
		}
		return append([]float64(nil), cp.X...), fg, nil
	}
	if opts.InitialState != nil {
		if len(opts.InitialState) != sys.N {
			return nil, nil, fmt.Errorf("transient: initial state length %d != %d", len(opts.InitialState), sys.N)
		}
		fg, err := factG()
		if err != nil {
			return nil, nil, err
		}
		return append([]float64(nil), opts.InitialState...), fg, nil
	}
	fg, err := factG()
	if err != nil {
		return nil, nil, err
	}
	b := make([]float64, sys.N)
	sys.EvalB(0, b, opts.ActiveInputs)
	x := make([]float64, sys.N)
	fg.Solve(x, b)
	stats.SolvePairs++
	return x, fg, nil
}

// evalGrid builds the sorted output grid for the MATEX solvers.
func evalGrid(sys *circuit.System, opts Options) []float64 {
	if len(opts.EvalTimes) > 0 {
		return waveform.MergeSpots(opts.EvalTimes, opts.Tstop, waveform.SpotEps, true)
	}
	return sys.GTS(opts.Tstop)
}
