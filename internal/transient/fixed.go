package transient

import (
	"errors"
	"fmt"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/sparse"
)

// simulateFixed runs TR, BE or FE with a fixed step and a single
// factorization (the TAU-contest framework the paper compares against).
func simulateFixed(sys *circuit.System, method Method, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Step <= 0 || opts.Tstop <= 0 {
		return nil, fmt.Errorf("transient: fixed-step method needs positive Step and Tstop")
	}
	res := &Result{}
	x, _, err := initialState(sys, opts, &res.Stats)
	if err != nil {
		return nil, err
	}
	h := opts.Step
	n := sys.N

	tFac := time.Now()
	var lhs sparse.Factorization
	var rhsMat *sparse.CSC // multiplies x in the step right-hand side
	switch method {
	case TRFixed:
		a, err := sparse.Factor(sparse.Add(1/h, sys.C, 0.5, sys.G), opts.FactorKind, opts.Ordering)
		if err != nil {
			return nil, fmt.Errorf("transient: TR factorization: %w", err)
		}
		lhs = a
		rhsMat = sparse.Add(1/h, sys.C, -0.5, sys.G)
	case BEFixed:
		a, err := sparse.Factor(sparse.Add(1/h, sys.C, 1, sys.G), opts.FactorKind, opts.Ordering)
		if err != nil {
			return nil, fmt.Errorf("transient: BE factorization: %w", err)
		}
		lhs = a
		rhsMat = sys.C.Clone().Scale(1 / h)
	case FEFixed:
		fc, err := factorC(sys, opts, &res.Stats)
		if err != nil {
			return nil, err
		}
		lhs = fc
	default:
		return nil, fmt.Errorf("transient: simulateFixed got %v", method)
	}
	res.Stats.Factorizations++
	res.Stats.FactorTime = time.Since(tFac)

	tTr := time.Now()
	bu0 := make([]float64, n)
	bu1 := make([]float64, n)
	rhs := make([]float64, n)
	work := make([]float64, n)
	res.record(0, x, opts.Probes, opts.KeepFull)
	steps := int(opts.Tstop/h + 0.5)
	for k := 0; k < steps; k++ {
		t := float64(k) * h
		switch method {
		case TRFixed:
			sys.EvalB(t, bu0, opts.ActiveInputs)
			sys.EvalB(t+h, bu1, opts.ActiveInputs)
			rhsMat.MulVec(rhs, x)
			res.Stats.SpMVs++
			for i := range rhs {
				rhs[i] += 0.5 * (bu0[i] + bu1[i])
			}
			lhs.SolveWith(x, rhs, work)
			res.Stats.SolvePairs++
		case BEFixed:
			sys.EvalB(t+h, bu1, opts.ActiveInputs)
			rhsMat.MulVec(rhs, x)
			res.Stats.SpMVs++
			for i := range rhs {
				rhs[i] += bu1[i]
			}
			lhs.SolveWith(x, rhs, work)
			res.Stats.SolvePairs++
		case FEFixed:
			// x' = C⁻¹(-Gx + Bu): one SpMV plus one substitution pair.
			sys.EvalB(t, bu0, opts.ActiveInputs)
			sys.G.MulVec(rhs, x)
			res.Stats.SpMVs++
			for i := range rhs {
				rhs[i] = bu0[i] - rhs[i]
			}
			lhs.SolveWith(rhs, rhs, work)
			res.Stats.SolvePairs++
			for i := range x {
				x[i] += h * rhs[i]
			}
		}
		res.Stats.Steps++
		res.record(t+h, x, opts.Probes, opts.KeepFull)
	}
	res.Stats.TransientTime = time.Since(tTr)
	res.Final = append([]float64(nil), x...)
	return res, nil
}

// factorC factorizes C, regularizing a singular C with a small diagonal
// shift (the concession MEXP needs; paper Sec. 3.3.3).
func factorC(sys *circuit.System, opts Options, stats *Stats) (sparse.Factorization, error) {
	fc, err := sparse.Factor(sys.C, opts.FactorKind, opts.Ordering)
	if err == nil {
		stats.Factorizations++
		return fc, nil
	}
	if !errors.Is(err, sparse.ErrSingular) {
		return nil, fmt.Errorf("transient: factorizing C: %w", err)
	}
	delta := 1e-9 * sys.C.OneNorm()
	if delta == 0 {
		delta = 1e-18
	}
	reg := sparse.Add(1, sys.C, delta, sparse.Identity(sys.N))
	fc, err = sparse.Factor(reg, opts.FactorKind, opts.Ordering)
	if err != nil {
		return nil, fmt.Errorf("transient: regularized C still singular: %w", err)
	}
	stats.Factorizations++
	stats.Regularized = true
	return fc, nil
}
