package transient

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/sparse"
)

// simulateFixed runs TR, BE or FE with a fixed step and a single
// factorization (the TAU-contest framework the paper compares against).
//
// When Tstop is not an integer multiple of Step, a shortened final step
// lands exactly on Tstop, so Result.Final is the state at Tstop and the
// distributed superposition of fixed-step subtasks stays time-consistent
// with the MATEX grid. The shortened step needs its own stepping matrix for
// TR/BE (one extra factorization, served from Options.Cache when present);
// FE's factorization of C is step-independent.
func simulateFixed(sys *circuit.System, method Method, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Step <= 0 || opts.Tstop <= 0 {
		return nil, fmt.Errorf("transient: fixed-step method needs positive Step and Tstop")
	}
	res := &Result{}
	x, _, err := initialState(sys, opts, &res.Stats)
	if err != nil {
		return nil, err
	}
	h := opts.Step
	n := sys.N

	// Split the window into nFull whole steps plus an optional remainder.
	// The small relative guard absorbs division noise so an exactly
	// divisible window never grows a spurious sliver step.
	nFull := int(opts.Tstop/h + 1e-9)
	if nFull < 0 {
		nFull = 0
	}
	rem := opts.Tstop - float64(nFull)*h
	if rem <= h*1e-9 {
		rem = 0
	}

	// stepOperators builds the implicit-step LHS factorization and the RHS
	// matrix for step size hs (TR/BE). FE factorizes C once, h-free.
	stepOperators := func(hs float64) (sparse.Factorization, *sparse.CSC, error) {
		switch method {
		case TRFixed:
			a, err := acquireFactorSum(1/hs, sys.C, 0.5, sys.G, opts, &res.Stats)
			if err != nil {
				return nil, nil, fmt.Errorf("transient: TR factorization: %w", err)
			}
			return a, sparse.Add(1/hs, sys.C, -0.5, sys.G), nil
		case BEFixed:
			a, err := acquireFactorSum(1/hs, sys.C, 1, sys.G, opts, &res.Stats)
			if err != nil {
				return nil, nil, fmt.Errorf("transient: BE factorization: %w", err)
			}
			return a, sys.C.Clone().Scale(1 / hs), nil
		case FEFixed:
			fc, err := factorC(sys, opts, &res.Stats)
			if err != nil {
				return nil, nil, err
			}
			return fc, nil, nil
		default:
			return nil, nil, fmt.Errorf("transient: simulateFixed got %v", method)
		}
	}

	tFac := time.Now()
	lhs, rhsMat, err := stepOperators(h)
	if err != nil {
		return nil, err
	}
	res.Stats.FactorTime = time.Since(tFac)

	tTr := time.Now()
	bu0 := make([]float64, n)
	bu1 := make([]float64, n)
	rhs := make([]float64, n)
	work := make([]float64, n)

	// step advances x from t0 to t1 = t0 + hs with the given operators.
	step := func(t0, t1, hs float64, lhs sparse.Factorization, rhsMat *sparse.CSC) {
		switch method {
		case TRFixed:
			sys.EvalB(t0, bu0, opts.ActiveInputs)
			sys.EvalB(t1, bu1, opts.ActiveInputs)
			rhsMat.MulVec(rhs, x)
			res.Stats.SpMVs++
			for i := range rhs {
				rhs[i] += 0.5 * (bu0[i] + bu1[i])
			}
			solveWith(lhs, x, rhs, work, opts)
			res.Stats.SolvePairs++
		case BEFixed:
			sys.EvalB(t1, bu1, opts.ActiveInputs)
			rhsMat.MulVec(rhs, x)
			res.Stats.SpMVs++
			for i := range rhs {
				rhs[i] += bu1[i]
			}
			solveWith(lhs, x, rhs, work, opts)
			res.Stats.SolvePairs++
		case FEFixed:
			// x' = C⁻¹(-Gx + Bu): one SpMV plus one substitution pair.
			sys.EvalB(t0, bu0, opts.ActiveInputs)
			sys.G.MulVec(rhs, x)
			res.Stats.SpMVs++
			for i := range rhs {
				rhs[i] = bu0[i] - rhs[i]
			}
			solveWith(lhs, rhs, rhs, work, opts)
			res.Stats.SolvePairs++
			for i := range x {
				x[i] += hs * rhs[i]
			}
		}
		res.Stats.Steps++
		res.record(t1, x, &opts)
	}

	// Resuming re-enters the step loop at the checkpointed boundary: the
	// checkpoint time must sit on the step grid (checkpoints are only taken
	// at accepted full steps), and every sample at or before it was already
	// recorded by the interrupted run.
	k0 := 0
	cpr := newCheckpointer(&opts)
	if cp := opts.resumeFrom; cp != nil {
		k0 = int(cp.T/h + 0.5)
		if k0 < 0 || k0 > nFull || math.Abs(float64(k0)*h-cp.T) > h*1e-9 {
			return nil, fmt.Errorf("transient: checkpoint time %g is not on the h=%g step grid", cp.T, h)
		}
	} else {
		res.record(0, x, &opts)
	}
	for k := k0; k < nFull; k++ {
		if err := opts.cancelled(); err != nil {
			return nil, err
		}
		t0 := float64(k) * h
		t1 := float64(k+1) * h
		if k == nFull-1 && rem == 0 {
			t1 = opts.Tstop // land exactly on the window end
		}
		step(t0, t1, h, lhs, rhsMat)
		err := cpr.maybe(&res.Stats, func() Checkpoint {
			return Checkpoint{Method: method.Name(), T: t1, X: append([]float64(nil), x...)}
		})
		if err != nil {
			return nil, err
		}
	}
	if rem > 0 {
		lhsRem, rhsRem := lhs, rhsMat
		if method != FEFixed {
			tFac := time.Now()
			lhsRem, rhsRem, err = stepOperators(rem)
			if err != nil {
				return nil, err
			}
			res.Stats.FactorTime += time.Since(tFac)
		}
		step(float64(nFull)*h, opts.Tstop, rem, lhsRem, rhsRem)
	}
	res.Stats.TransientTime = time.Since(tTr)
	res.Final = append([]float64(nil), x...)
	return res, nil
}

// factorC factorizes C, regularizing a singular C with a small diagonal
// shift (the concession MEXP needs; paper Sec. 3.3.3).
func factorC(sys *circuit.System, opts Options, stats *Stats) (sparse.Factorization, error) {
	fc, err := acquireFactor(sys.C, opts, stats)
	if err == nil {
		return fc, nil
	}
	if !errors.Is(err, sparse.ErrSingular) {
		return nil, fmt.Errorf("transient: factorizing C: %w", err)
	}
	delta := 1e-9 * sys.C.OneNorm()
	if delta == 0 {
		delta = 1e-18
	}
	fc, err = acquireFactorSum(1, sys.C, delta, sparse.Identity(sys.N), opts, stats)
	if err != nil {
		return nil, fmt.Errorf("transient: regularized C still singular: %w", err)
	}
	stats.Regularized = true
	return fc, nil
}
