package transient

import (
	"math"
	"testing"

	"github.com/matex-sim/matex/internal/sparse"
)

// TestFixedStepLandsExactlyOnTstop is the regression test for the endpoint
// bug: with Tstop = 10ns and Step = 3ns the old code rounded to 3 steps and
// stopped at 9ns, so Result.Final was the state 1ns short of the window —
// corrupting the distributed superposition of fixed-step subtasks. The
// fixed integrator takes a shortened final step landing exactly on Tstop.
func TestFixedStepLandsExactlyOnTstop(t *testing.T) {
	r, c, amp := 1000.0, 1e-12, 1e-3 // tau = 1 ns
	sys, idx := rcStep(t, r, c, amp)
	tstop, h := 10e-9, 3e-9
	zero := make([]float64, sys.N)
	for _, m := range []Method{TRFixed, BEFixed, FEFixed} {
		res, err := Simulate(sys, m, Options{Tstop: tstop, Step: h, Probes: []int{idx}, InitialState: zero})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got := res.Times[len(res.Times)-1]; got != tstop {
			t.Errorf("%v: final time = %.17g, want exactly %.17g", m, got, tstop)
		}
		// 0, 3, 6, 9 ns plus the shortened 1ns step to 10ns.
		if len(res.Times) != 5 {
			t.Errorf("%v: %d output times %v, want 5", m, len(res.Times), res.Times)
		}
		// Final must be the state at Tstop, not at 9ns: at 10 tau the RC
		// step response has converged to -I·R within ~5e-5 relative, while
		// the value at 9ns differs from 10ns by ~1e-4 absolute. The loose
		// budget covers TR/BE discretization error at h = 3 tau.
		want := analyticRC(tstop, r, c, amp)
		got := res.Final[idx]
		if math.Abs(got-want) > 0.15*math.Abs(want) {
			t.Errorf("%v: Final = %g, want ≈ %g (state at Tstop)", m, got, want)
		}
		if res.Probes[len(res.Probes)-1][0] != got {
			t.Errorf("%v: last probe sample disagrees with Final", m)
		}
	}
}

// TestFixedStepDivisibleWindowUnchanged pins the behavior for exactly
// divisible windows: no sliver step is invented, the step count and the
// single stepping-matrix factorization stay as before.
func TestFixedStepDivisibleWindowUnchanged(t *testing.T) {
	sys, idx := rcStep(t, 1000, 1e-12, 1e-3)
	res, err := Simulate(sys, TRFixed, Options{Tstop: 5e-9, Step: 1e-11, Probes: []int{idx}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Steps != 500 {
		t.Errorf("steps = %d, want 500", res.Stats.Steps)
	}
	if res.Stats.Factorizations != 2 { // DC + one stepping matrix
		t.Errorf("factorizations = %d, want 2", res.Stats.Factorizations)
	}
	if got := res.Times[len(res.Times)-1]; got != 5e-9 {
		t.Errorf("final time = %.17g, want exactly 5e-9", got)
	}
}

// TestFixedStepShortWindow covers Tstop < Step: the whole window is one
// shortened step.
func TestFixedStepShortWindow(t *testing.T) {
	sys, idx := rcStep(t, 1000, 1e-12, 1e-3)
	res, err := Simulate(sys, BEFixed, Options{Tstop: 0.4e-9, Step: 1e-9, Probes: []int{idx}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Steps != 1 {
		t.Errorf("steps = %d, want 1", res.Stats.Steps)
	}
	if got := res.Times[len(res.Times)-1]; got != 0.4e-9 {
		t.Errorf("final time = %g, want 0.4e-9", got)
	}
}

// TestProbeHelpersWithoutProbes: a result recorded without probes must not
// panic from the probe accessors.
func TestProbeHelpersWithoutProbes(t *testing.T) {
	sys, _ := rcStep(t, 1000, 1e-12, 1e-3)
	res, err := Simulate(sys, TRFixed, Options{Tstop: 1e-9, Step: 1e-10}) // no Probes
	if err != nil {
		t.Fatal(err)
	}
	if got := res.InterpProbe(0.5e-9, 0); !math.IsNaN(got) {
		t.Errorf("InterpProbe on probe-less result = %g, want NaN", got)
	}
	if s := res.ProbeSeries(0); len(s) != 0 {
		t.Errorf("ProbeSeries on probe-less result has %d samples, want 0", len(s))
	}
	// Out-of-range probe columns are NaN/empty too, not a panic.
	res2, err := Simulate(sys, TRFixed, Options{Tstop: 1e-9, Step: 1e-10, Probes: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.InterpProbe(0.5e-9, 7); !math.IsNaN(got) {
		t.Errorf("InterpProbe out-of-range column = %g, want NaN", got)
	}
	if got := res2.InterpProbe(0.5e-9, -1); !math.IsNaN(got) {
		t.Errorf("InterpProbe negative column = %g, want NaN", got)
	}
	if s := res2.ProbeSeries(7); s != nil {
		t.Errorf("ProbeSeries out-of-range column = %v, want nil", s)
	}
	var empty Result
	if got := empty.InterpProbe(0, 0); !math.IsNaN(got) {
		t.Errorf("InterpProbe on empty result = %g, want NaN", got)
	}
}

// TestNaturalOrderingSelectable: OrderNatural must survive withDefaults —
// the old code silently rewrote it to RCM, making natural ordering
// unselectable.
func TestNaturalOrderingSelectable(t *testing.T) {
	o := Options{Ordering: sparse.OrderNatural}.withDefaults()
	if o.Ordering != sparse.OrderNatural {
		t.Errorf("OrderNatural rewritten to %v", o.Ordering)
	}
	d := Options{}.withDefaults()
	if d.Ordering != sparse.OrderRCM {
		t.Errorf("zero-value ordering resolves to %v, want OrderRCM", d.Ordering)
	}
}
