package transient

import (
	"math"
	"testing"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/pdn"
	"github.com/matex-sim/matex/internal/sparse"
)

func ibmSystem(t *testing.T, scale float64) *circuit.System {
	t.Helper()
	spec, err := pdn.IBMCase("ibmpg1t", scale)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	// The integrators form (C/h + G/2) families from these matrices; catch a
	// bad stamp here rather than as a downstream factorization failure.
	if err := sparse.CheckCSC(sys.C); err != nil {
		t.Fatalf("stamped C violates CSC invariants: %v", err)
	}
	if err := sparse.CheckCSC(sys.G); err != nil {
		t.Fatalf("stamped G violates CSC invariants: %v", err)
	}
	return sys
}

// TestAdaptiveTRCacheFewerFactorizations is the tentpole acceptance test:
// on an IBM-case benchmark the cached adaptive-TR run must perform strictly
// fewer factorizations than the uncached run (step quantization makes
// revisited step sizes cache hits), while producing the same waveform —
// the step sequence is identical with and without the cache, only the
// factorization reuse differs.
func TestAdaptiveTRCacheFewerFactorizations(t *testing.T) {
	sys := ibmSystem(t, 0.2)
	probes := []int{0, sys.NumNodes / 2, sys.NumNodes - 1}
	base := Options{Tstop: 10e-9, Tol: 1e-4, Probes: probes}

	uncached, err := Simulate(sys, TRAdaptive, base)
	if err != nil {
		t.Fatal(err)
	}
	withCache := base
	withCache.Cache = sparse.NewCache(0)
	cached, err := Simulate(sys, TRAdaptive, withCache)
	if err != nil {
		t.Fatal(err)
	}

	if cached.Stats.Factorizations >= uncached.Stats.Factorizations {
		t.Errorf("cached run factorized %d times, uncached %d — want strictly fewer",
			cached.Stats.Factorizations, uncached.Stats.Factorizations)
	}
	if cached.Stats.CacheHits == 0 {
		t.Error("cached run recorded no cache hits")
	}
	if cached.Stats.CacheHits+cached.Stats.CacheMisses !=
		uncached.Stats.Factorizations {
		t.Errorf("cache accounting: %d hits + %d misses != %d uncached factorizations",
			cached.Stats.CacheHits, cached.Stats.CacheMisses, uncached.Stats.Factorizations)
	}

	// Identical step sequence → identical grids; waveforms within 1e-6.
	if len(cached.Times) != len(uncached.Times) {
		t.Fatalf("grids differ: %d vs %d points", len(cached.Times), len(uncached.Times))
	}
	var maxDiff float64
	for i := range cached.Times {
		if cached.Times[i] != uncached.Times[i] {
			t.Fatalf("time grid diverges at %d: %g vs %g", i, cached.Times[i], uncached.Times[i])
		}
		for k := range probes {
			if d := math.Abs(cached.Probes[i][k] - uncached.Probes[i][k]); d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 1e-6 {
		t.Errorf("cached waveform deviates %.3g V from uncached (budget 1e-6)", maxDiff)
	}
	t.Logf("factorizations: %d uncached → %d cached (%d hits)",
		uncached.Stats.Factorizations, cached.Stats.Factorizations, cached.Stats.CacheHits)
}

// TestCacheSharedAcrossMethods: one cache serves every solver family — the
// G factorization computed by the first run is a hit for the others, and a
// repeated identical run performs zero new factorizations.
func TestCacheSharedAcrossMethods(t *testing.T) {
	sys := ibmSystem(t, 0.2)
	cache := sparse.NewCache(0)
	opts := Options{Tstop: 10e-9, Tol: 1e-6, Cache: cache}

	resI, err := Simulate(sys, IMATEX, opts)
	if err != nil {
		t.Fatal(err)
	}
	if resI.Stats.Factorizations != 1 || resI.Stats.CacheMisses != 1 {
		t.Errorf("first I-MATEX run: %d factorizations / %d misses, want 1/1",
			resI.Stats.Factorizations, resI.Stats.CacheMisses)
	}
	// R-MATEX reuses the cached G (DC solve) and adds only C + γG.
	resR, err := Simulate(sys, RMATEX, opts)
	if err != nil {
		t.Fatal(err)
	}
	if resR.Stats.Factorizations != 1 {
		t.Errorf("R-MATEX after I-MATEX factorized %d times, want 1 (G cached)", resR.Stats.Factorizations)
	}
	if resR.Stats.CacheHits == 0 {
		t.Error("R-MATEX did not hit the shared G entry")
	}
	// Identical repeat: zero new factorizations.
	resR2, err := Simulate(sys, RMATEX, opts)
	if err != nil {
		t.Fatal(err)
	}
	if resR2.Stats.Factorizations != 0 {
		t.Errorf("repeated R-MATEX run factorized %d times, want 0", resR2.Stats.Factorizations)
	}
	// And the answers are bit-identical (same factorization objects).
	for i := range resR.Final {
		if resR.Final[i] != resR2.Final[i] {
			t.Fatal("repeated cached run diverged")
		}
	}
}

// TestQuantizeStep pins the geometric-grid snapping: results lie on
// href·√2^k, never exceed h, and never fall below href.
func TestQuantizeStep(t *testing.T) {
	href := 1e-18
	for _, h := range []float64{1e-18, 1.4e-18, 3.7e-15, 2.2e-12, 1e-9, 5e-9} {
		q := quantizeStep(h, href)
		if q > h || q < href {
			t.Fatalf("quantizeStep(%g) = %g out of (href, h]", h, q)
		}
		k := 2 * math.Log2(q/href)
		if math.Abs(k-math.Round(k)) > 1e-6 {
			t.Errorf("quantizeStep(%g) = %g not on the √2 grid (k=%g)", h, q, k)
		}
		// Idempotent: a grid value stays put.
		if q2 := quantizeStep(q, href); q2 != q {
			t.Errorf("quantizeStep not idempotent: %g → %g", q, q2)
		}
	}
	if q := quantizeStep(0.5e-18, href); q != href {
		t.Errorf("sub-href step = %g, want href", q)
	}
}
