package transient

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/waveform"
)

// SimulateMatex runs the MATEX circuit solver (paper Alg. 2) in standard
// (MEXP), inverted (I-MATEX) or rational (R-MATEX) mode.
//
// Over a slope-constant input segment starting at a local transition spot t,
// the exact piecewise-linear-input solution is
//
//	x(t+h) = e^{hA}x(t) + h·φ₁(hA)·b(t) + h²·φ₂(hA)·ḃ,
//
// evaluated as the leading block of e^{h·Ã}[x(t); 0; 1] on the standard
// (n+2) augmented matrix (see krylov.Op). One Krylov subspace generated at
// the transition spot therefore evaluates every snapshot inside the segment
// by rescaling h — a small expm plus one n×m multiply, no substitutions —
// which is the source of the paper's km-vs-N substitution reduction.
//
// (The paper states the step as e^{hA}(x+F(t,h)) - P(t,h), Eq. 5, which is
// algebraically identical but forms A⁻¹b and A⁻²ḃ explicitly; on stiff
// systems those intermediates are orders of magnitude larger than the
// solution and cancel catastrophically, so this implementation uses the
// φ-function form throughout.)
func SimulateMatex(sys *circuit.System, method Method, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Tstop <= 0 {
		return nil, fmt.Errorf("transient: MATEX needs positive Tstop")
	}
	if sys.C.NNZ() == 0 {
		return nil, fmt.Errorf("transient: system has no dynamic elements (C is empty); the response is quasi-static — use DC analysis or a fixed-step method")
	}
	if method == IMATEX {
		return simulateMatexFP(sys, method, opts)
	}
	if method == RMATEX && hasEmptyCRows(sys) {
		// Singular C (algebraic nodes): the augmented φ-form would carry
		// algebraic state values into the exponential; the Eq. 5 path keeps
		// them in the quasi-static P terms where they belong.
		return simulateMatexFP(sys, method, opts)
	}
	res := &Result{}
	x, _, err := initialState(sys, opts, &res.Stats)
	if err != nil {
		return nil, err
	}
	n := sys.N

	// Operator factorization (X1 of Alg. 1).
	count := &krylov.Counters{}
	tFac := time.Now()
	var op *krylov.Op
	switch method {
	case MEXP:
		fc, err := factorC(sys, opts, &res.Stats)
		if err != nil {
			return nil, err
		}
		op = krylov.NewStandardOp(fc, sys.C, sys.G, count)
		if opts.MaxStep <= 0 {
			// The standard subspace degrades once h·‖A‖ grows past a few
			// hundred; clamp the step from a cheap row-wise bound on
			// ‖C⁻¹G‖ (capped so pathological spectra cannot demand
			// unbounded step counts). I-/R-MATEX need no such clamp — that
			// is the point of the spectral transforms.
			if normA := roughNormA(sys); normA > 0 {
				opts.MaxStep = math.Max(300/normA, opts.Tstop/20000)
			}
		}
	case IMATEX:
		return nil, errInvertedHandledSeparately
	case RMATEX:
		fs, err := acquireFactorSum(1, sys.C, opts.Gamma, sys.G, opts, &res.Stats)
		if err != nil {
			return nil, fmt.Errorf("transient: factorizing (C+γG): %w", err)
		}
		op = krylov.NewRationalOp(fs, sys.C, sys.G, opts.Gamma, count)
	default:
		return nil, fmt.Errorf("transient: SimulateMatex got %v", method)
	}
	res.Stats.FactorTime += time.Since(tFac)

	// Time grid: the active inputs' transition spots (where subspaces must
	// be regenerated) merged with the requested output times.
	lts := gtsForMask(sys, opts)
	outs := evalGrid(sys, opts)
	grid := waveform.MergeSpots(append(append([]float64(nil), lts...), outs...), opts.Tstop, waveform.SpotEps, true)

	tTr := time.Now()
	defer func() {
		res.Stats.TransientTime = time.Since(tTr)
		res.Stats.addCounters(count)
	}()

	bu0 := make([]float64, n)
	bu1 := make([]float64, n)
	slope := make([]float64, n)
	vaug := make([]float64, n+2)
	xaug := make([]float64, n+2)
	kopts := krylov.Options{MaxDim: opts.MaxDim, Tol: opts.Tol}

	if waveform.ContainsSpot(outs, 0) {
		res.record(0, x, opts.Probes, opts.KeepFull)
	}

	gi := 0      // index of the last emitted output grid point
	tBase := 0.0 // time of the current base state x
	for tBase < opts.Tstop-waveform.SpotEps {
		t := tBase
		// Segment end: next LTS (or Tstop).
		segEnd := opts.Tstop
		if nx, ok := nextSpot(lts, t); ok {
			segEnd = nx
		}
		if opts.MaxStep > 0 && segEnd > t+opts.MaxStep {
			segEnd = t + opts.MaxStep
		}
		// Input terms on the slope-constant segment [t, segEnd].
		sys.EvalB(t, bu0, opts.ActiveInputs)
		sys.EvalB(segEnd, bu1, opts.ActiveInputs)
		hSeg := segEnd - t
		for i := range slope {
			slope[i] = (bu1[i] - bu0[i]) / hSeg
		}
		op.SetSegment(bu0, slope)

		copy(vaug[:n], x)
		vaug[n] = 0
		vaug[n+1] = 1

		// The subspace must be accurate at the segment end and at the first
		// interior output (the smallest reuse step).
		hChecks := []float64{hSeg}
		if gi+1 < len(grid) && grid[gi+1] < segEnd-waveform.SpotEps {
			hChecks = append(hChecks, grid[gi+1]-t)
		}
		sub, err := krylov.Arnoldi(op, vaug, hChecks, kopts)
		if errors.Is(err, krylov.ErrNoConvergence) {
			// Split the segment: step only to the next grid point (or half
			// the segment) and regenerate there. Counted as a rejection.
			res.Stats.Rejected++
			half := t + hSeg/2
			if gi+1 < len(grid) && grid[gi+1] < segEnd-waveform.SpotEps {
				half = grid[gi+1]
			}
			var err2 error
			sub, err2 = krylov.Arnoldi(op, vaug, []float64{half - t}, kopts)
			if err2 != nil && (!errors.Is(err2, krylov.ErrNoConvergence) || sub == nil) {
				return nil, fmt.Errorf("transient: %v at t=%g even after split: %w", method, t, err2)
			}
			// A non-converged full-depth subspace is used best-effort: the
			// achievable accuracy at this stiffness is what gets measured.
			segEnd = half
		} else if err != nil {
			return nil, fmt.Errorf("transient: %v Arnoldi at t=%g: %w", method, t, err)
		}

		// Evaluate every output grid point in (t, segEnd] by subspace reuse,
		// then advance the base state to segEnd.
		lastEval := -1.0
		for gi+1 < len(grid) && grid[gi+1] <= segEnd+waveform.SpotEps {
			gi++
			tp := grid[gi]
			if err := sub.EvalExp(tp-t, xaug); err != nil {
				return nil, fmt.Errorf("transient: %v at t=%g: %w", method, tp, err)
			}
			lastEval = tp
			res.Stats.Steps++
			if waveform.ContainsSpot(outs, tp) {
				res.record(tp, xaug[:n], opts.Probes, opts.KeepFull)
			}
		}
		if lastEval < segEnd-waveform.SpotEps {
			if err := sub.EvalExp(segEnd-t, xaug); err != nil {
				return nil, fmt.Errorf("transient: %v at t=%g: %w", method, segEnd, err)
			}
			res.Stats.Steps++
		}
		copy(x, xaug[:n])
		tBase = segEnd
	}
	res.Final = append([]float64(nil), x...)
	return res, nil
}

// hasEmptyCRows reports whether some unknown has no capacitive/inductive
// coupling at all (an algebraic DAE variable).
func hasEmptyCRows(sys *circuit.System) bool {
	seen := make([]bool, sys.N)
	for _, i := range sys.C.Rowidx {
		seen[i] = true
	}
	for _, ok := range seen {
		if !ok {
			return true
		}
	}
	return false
}

// roughNormA bounds ‖A‖∞ = ‖C⁻¹G‖∞ row-wise for diagonal-dominant C: the
// i-th row contributes (Σ_j |G_ij|)/|C_ii|. Rows without a C diagonal are
// skipped (their dynamics are algebraic). Returns 0 when nothing usable.
func roughNormA(sys *circuit.System) float64 {
	cd := sys.C.Diag()
	rowAbs := make([]float64, sys.N)
	for j := 0; j < sys.G.Cols; j++ {
		for p := sys.G.Colptr[j]; p < sys.G.Colptr[j+1]; p++ {
			rowAbs[sys.G.Rowidx[p]] += math.Abs(sys.G.Values[p])
		}
	}
	var norm float64
	for i := 0; i < sys.N; i++ {
		if cd[i] == 0 {
			continue
		}
		if r := rowAbs[i] / math.Abs(cd[i]); r > norm {
			norm = r
		}
	}
	return norm
}
