package transient

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/waveform"
)

// SimulateMatex runs the MATEX circuit solver (paper Alg. 2) in standard
// (MEXP), inverted (I-MATEX) or rational (R-MATEX) mode.
//
// Over a slope-constant input segment starting at a local transition spot t,
// the exact piecewise-linear-input solution is
//
//	x(t+h) = e^{hA}x(t) + h·φ₁(hA)·b(t) + h²·φ₂(hA)·ḃ,
//
// evaluated as the leading block of e^{h·Ã}[x(t); 0; 1] on the standard
// (n+2) augmented matrix (see krylov.Op). One Krylov subspace generated at
// the transition spot therefore evaluates every snapshot inside the segment
// by rescaling h — a small expm plus one n×m multiply, no substitutions —
// which is the source of the paper's km-vs-N substitution reduction.
//
// (The paper states the step as e^{hA}(x+F(t,h)) - P(t,h), Eq. 5, which is
// algebraically identical but forms A⁻¹b and A⁻²ḃ explicitly; on stiff
// systems those intermediates are orders of magnitude larger than the
// solution and cancel catastrophically, so this implementation uses the
// φ-function form throughout.)
func SimulateMatex(sys *circuit.System, method Method, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Tstop <= 0 {
		return nil, fmt.Errorf("transient: MATEX needs positive Tstop")
	}
	if sys.C.NNZ() == 0 {
		return nil, fmt.Errorf("transient: system has no dynamic elements (C is empty); the response is quasi-static — use DC analysis or a fixed-step method")
	}
	if method == IMATEX {
		return simulateMatexFP(sys, method, opts)
	}
	if method == RMATEX && hasEmptyCRows(sys) {
		// Singular C (algebraic nodes): the augmented φ-form would carry
		// algebraic state values into the exponential; the Eq. 5 path keeps
		// them in the quasi-static P terms where they belong.
		return simulateMatexFP(sys, method, opts)
	}
	res := &Result{}
	x, factG, err := initialState(sys, opts, &res.Stats)
	if err != nil {
		return nil, err
	}
	n := sys.N

	// Operator factorization (X1 of Alg. 1).
	count := &krylov.Counters{}
	tFac := time.Now()
	var op *krylov.Op
	switch method {
	case MEXP:
		fc, err := factorC(sys, opts, &res.Stats)
		if err != nil {
			return nil, err
		}
		op = krylov.NewStandardOp(fc, sys.C, sys.G, count)
		if res.Stats.Regularized {
			// The factorized matrix is C+δI, not the stamped C: the
			// C-inner-product identities behind the Lanczos fast path no
			// longer hold exactly, so pin this run to Arnoldi.
			op.SetSymmetric(false)
		}
		if opts.MaxStep <= 0 {
			// The standard subspace degrades once h·‖A‖ grows past a few
			// hundred; clamp the step from a cheap row-wise bound on
			// ‖C⁻¹G‖ (capped so pathological spectra cannot demand
			// unbounded step counts). I-/R-MATEX need no such clamp — that
			// is the point of the spectral transforms.
			if normA := roughNormA(sys); normA > 0 {
				opts.MaxStep = math.Max(300/normA, opts.Tstop/20000)
			}
		}
	case IMATEX:
		return nil, errInvertedHandledSeparately
	case RMATEX:
		fs, err := acquireFactorSum(1, sys.C, opts.Gamma, sys.G, opts, &res.Stats)
		if err != nil {
			return nil, fmt.Errorf("transient: factorizing (C+γG): %w", err)
		}
		op = krylov.NewRationalOp(fs, sys.C, sys.G, opts.Gamma, count)
	default:
		return nil, fmt.Errorf("transient: SimulateMatex got %v", method)
	}
	op.SetSolveWorkers(opts.SolveWorkers)
	res.Stats.FactorTime += time.Since(tFac)

	// Time grid: the active inputs' transition spots (where subspaces must
	// be regenerated) merged with the requested output times.
	lts := gtsForMask(sys, opts)
	outs := evalGrid(sys, opts)
	grid := waveform.MergeSpots(append(append([]float64(nil), lts...), outs...), opts.Tstop, waveform.SpotEps, true)

	tTr := time.Now()
	defer func() {
		res.Stats.TransientTime = time.Since(tTr)
		res.Stats.addCounters(count)
	}()

	wsPool := opts.workspaces()
	ws := wsPool.Get()
	defer wsPool.Put(ws)

	bu0 := make([]float64, n)
	bu1 := make([]float64, n)
	slope := make([]float64, n)
	w0 := make([]float64, n)
	work := make([]float64, n)
	vaug := make([]float64, n+2)
	xaug := make([]float64, n+2)
	hChecks := make([]float64, 0, 2)
	kopts := krylov.Options{MaxDim: opts.MaxDim, Tol: opts.Tol, Method: opts.Krylov, Workspace: ws}

	gi := 0        // index of the last emitted output grid point
	tBase := 0.0   // time of the current base state x
	buScale := 0.0 // largest |B·u| endpoint magnitude seen so far
	cpr := newCheckpointer(&opts)
	if cp := opts.resumeFrom; cp != nil {
		// Resume at the checkpointed segment boundary: gi points at the last
		// grid point the interrupted run emitted, and the restored buScale
		// keeps the flatness tests (and hence the Lanczos-shift decisions)
		// identical to the uninterrupted run's.
		tBase = cp.T
		buScale = cp.BuScale
		gi = sort.SearchFloat64s(grid, cp.T+waveform.SpotEps) - 1
		if gi < 0 {
			gi = 0
		}
	} else if waveform.ContainsSpot(outs, 0) {
		res.record(0, x, &opts)
	}
	for tBase < opts.Tstop-waveform.SpotEps {
		if err := opts.cancelled(); err != nil {
			return nil, err
		}
		t := tBase
		// Segment end: next LTS (or Tstop).
		segEnd := opts.Tstop
		if nx, ok := waveform.NextSpot(lts, t); ok {
			segEnd = nx
		}
		if opts.MaxStep > 0 && segEnd > t+opts.MaxStep {
			segEnd = t + opts.MaxStep
		}
		// Input terms on the slope-constant segment [t, segEnd].
		sys.EvalB(t, bu0, opts.ActiveInputs)
		sys.EvalB(segEnd, bu1, opts.ActiveInputs)
		hSeg := segEnd - t
		var maxDiff, maxBu0 float64
		for i := range slope {
			slope[i] = (bu1[i] - bu0[i]) / hSeg
			if d := math.Abs(bu1[i] - bu0[i]); d > maxDiff {
				maxDiff = d
			}
			if a := math.Abs(bu0[i]); a > maxBu0 {
				maxBu0 = a
			}
			if a := math.Abs(bu1[i]); a > buScale {
				buScale = a
			}
		}
		if maxBu0 > buScale {
			buScale = maxBu0
		}
		// Flatness is judged against the largest input magnitude seen so
		// far, not exact zero: waveform corner times carry last-bit
		// rounding, so a segment boundary can land a sliver inside a ramp
		// and leave ~1e-16-relative residue in bu. Treating that as slope
		// costs the exactness of the shifted path for nothing.
		slopeZero := maxDiff <= 1e-14*buScale
		buZero := maxBu0 <= 1e-14*buScale
		// On slope-free segments of a symmetric system, shift out the
		// constant input instead of augmenting: with x_ss = G⁻¹·B·u the
		// exact step is x(t+h) = e^{hA}(x - x_ss) + x_ss, a homogeneous
		// subspace over an inert auxiliary chain — which is exactly the
		// configuration the symmetric Lanczos fast path accepts. PDN inputs
		// are flat outside their bump ramps, so this covers most spots of a
		// distributed zero-state subtask and the quiet stretches of a
		// single run. The benign special case of the Eq. 5 form: without a
		// slope there is no A⁻²ḃ term, so no catastrophic cancellation.
		useShift := slopeZero && opts.Krylov != krylov.MethodArnoldi && op.SymmetricMatrices()
		if useShift {
			if buZero {
				for i := range w0 {
					w0[i] = 0
				}
			} else {
				solveWith(factG, w0, bu0, work, opts)
				res.Stats.SolvePairs++
			}
			op.ClearSegment()
			for i := 0; i < n; i++ {
				vaug[i] = x[i] - w0[i]
			}
			vaug[n] = 0
			vaug[n+1] = 0
		} else {
			op.SetSegment(bu0, slope)
			copy(vaug[:n], x)
			vaug[n] = 0
			vaug[n+1] = 1
		}

		// The subspace must be accurate at the segment end and at the first
		// interior output (the smallest reuse step).
		hChecks = append(hChecks[:0], hSeg)
		if gi+1 < len(grid) && grid[gi+1] < segEnd-waveform.SpotEps {
			hChecks = append(hChecks, grid[gi+1]-t)
		}
		sub, err := krylov.Generate(op, vaug, hChecks, kopts)
		if errors.Is(err, krylov.ErrNoConvergence) {
			// Split the segment: step only to the next grid point (or half
			// the segment) and regenerate there. Counted as a rejection.
			res.Stats.Rejected++
			half := t + hSeg/2
			if gi+1 < len(grid) && grid[gi+1] < segEnd-waveform.SpotEps {
				half = grid[gi+1]
			}
			var err2 error
			hChecks = append(hChecks[:0], half-t)
			sub, err2 = krylov.Generate(op, vaug, hChecks, kopts)
			if err2 != nil && (!errors.Is(err2, krylov.ErrNoConvergence) || sub == nil) {
				return nil, fmt.Errorf("transient: %v at t=%g even after split: %w", method, t, err2)
			}
			// A non-converged full-depth subspace is used best-effort: the
			// achievable accuracy at this stiffness is what gets measured.
			segEnd = half
		} else if err != nil {
			return nil, fmt.Errorf("transient: %v subspace at t=%g: %w", method, t, err)
		}

		// evalAt writes x(t+h) into xaug[:n] by subspace reuse.
		evalAt := func(h float64) error {
			if err := sub.EvalExp(h, xaug); err != nil {
				return fmt.Errorf("transient: %v at t=%g: %w", method, t+h, err)
			}
			if useShift && !buZero {
				for i := 0; i < n; i++ {
					xaug[i] += w0[i]
				}
			}
			return nil
		}

		// Evaluate every output grid point in (t, segEnd] by subspace reuse,
		// then advance the base state to segEnd.
		lastEval := -1.0
		for gi+1 < len(grid) && grid[gi+1] <= segEnd+waveform.SpotEps {
			gi++
			tp := grid[gi]
			if err := evalAt(tp - t); err != nil {
				return nil, err
			}
			lastEval = tp
			res.Stats.Steps++
			if waveform.ContainsSpot(outs, tp) {
				res.record(tp, xaug[:n], &opts)
			}
		}
		if lastEval < segEnd-waveform.SpotEps {
			if err := evalAt(segEnd - t); err != nil {
				return nil, err
			}
			res.Stats.Steps++
		}
		copy(x, xaug[:n])
		tBase = segEnd
		err = cpr.maybe(&res.Stats, func() Checkpoint {
			return Checkpoint{Method: method.Name(), T: tBase, X: append([]float64(nil), x...), BuScale: buScale}
		})
		if err != nil {
			return nil, err
		}
	}
	res.Final = append([]float64(nil), x...)
	return res, nil
}

// hasEmptyCRows reports whether some unknown has no capacitive/inductive
// coupling at all (an algebraic DAE variable).
func hasEmptyCRows(sys *circuit.System) bool {
	seen := make([]bool, sys.N)
	for _, i := range sys.C.Rowidx {
		seen[i] = true
	}
	for _, ok := range seen {
		if !ok {
			return true
		}
	}
	return false
}

// roughNormA bounds ‖A‖∞ = ‖C⁻¹G‖∞ row-wise for diagonal-dominant C: the
// i-th row contributes (Σ_j |G_ij|)/|C_ii|. Rows without a C diagonal are
// skipped (their dynamics are algebraic). Returns 0 when nothing usable.
func roughNormA(sys *circuit.System) float64 {
	cd := sys.C.Diag()
	rowAbs := make([]float64, sys.N)
	for j := 0; j < sys.G.Cols; j++ {
		for p := sys.G.Colptr[j]; p < sys.G.Colptr[j+1]; p++ {
			rowAbs[sys.G.Rowidx[p]] += math.Abs(sys.G.Values[p])
		}
	}
	var norm float64
	for i := 0; i < sys.N; i++ {
		if cd[i] == 0 {
			continue
		}
		if r := rowAbs[i] / math.Abs(cd[i]); r > norm {
			norm = r
		}
	}
	return norm
}
