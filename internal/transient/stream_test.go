package transient

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/pdn"
)

// streamTestSystem builds a small PDN mesh with transient loads.
func streamTestSystem(t *testing.T) *circuit.System {
	t.Helper()
	spec, err := pdn.IBMCase("ibmpg1t", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestOnSampleStreamsEveryRecordedSample: the hook sees exactly the samples
// that end up in the Result, in order, for both a MATEX and a fixed-step run.
func TestOnSampleStreamsEveryRecordedSample(t *testing.T) {
	sys := streamTestSystem(t)
	for _, tc := range []struct {
		name   string
		method Method
		opts   Options
	}{
		{"rmatex", RMATEX, Options{Tstop: 2e-9, Probes: []int{0, 3}}},
		{"tr", TRFixed, Options{Tstop: 2e-9, Step: 0.25e-9, Probes: []int{0, 3}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var times []float64
			var rows [][]float64
			opts := tc.opts
			opts.OnSample = func(tt float64, v []float64) {
				times = append(times, tt)
				rows = append(rows, append([]float64(nil), v...))
			}
			res, err := Simulate(sys, tc.method, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(times) != len(res.Times) {
				t.Fatalf("streamed %d samples, result has %d", len(times), len(res.Times))
			}
			for i := range times {
				if times[i] != res.Times[i] {
					t.Fatalf("sample %d: streamed t=%g, result t=%g", i, times[i], res.Times[i])
				}
				for k := range rows[i] {
					if rows[i][k] != res.Probes[i][k] {
						t.Fatalf("sample %d probe %d: streamed %g, result %g", i, k, rows[i][k], res.Probes[i][k])
					}
				}
			}
		})
	}
}

// TestOnSampleNilRowWithoutProbes: a probe-less run still streams times.
func TestOnSampleNilRowWithoutProbes(t *testing.T) {
	sys := streamTestSystem(t)
	n := 0
	_, err := Simulate(sys, TRFixed, Options{
		Tstop: 1e-9, Step: 0.5e-9,
		OnSample: func(tt float64, v []float64) {
			if v != nil {
				t.Fatalf("expected nil probe row, got %v", v)
			}
			n++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("hook never fired")
	}
}

// TestCtxCancelStopsRun: canceling the context mid-run aborts every
// integrator with the context error instead of running to Tstop.
func TestCtxCancelStopsRun(t *testing.T) {
	sys := streamTestSystem(t)
	for _, tc := range []struct {
		name   string
		method Method
		opts   Options
	}{
		{"tr", TRFixed, Options{Tstop: 10e-9, Step: 0.01e-9}},
		{"tradpt", TRAdaptive, Options{Tstop: 10e-9, Step: 0.01e-9}},
		{"rmatex", RMATEX, Options{Tstop: 10e-9}},
		{"imatex", IMATEX, Options{Tstop: 10e-9}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			opts := tc.opts
			opts.Ctx = ctx
			opts.OnSample = func(tt float64, v []float64) {
				if tt > 0 {
					cancel() // cancel after the first post-DC sample
				}
			}
			_, err := Simulate(sys, tc.method, opts)
			if err == nil {
				t.Fatal("canceled run returned nil error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error %v does not wrap context.Canceled", err)
			}
			cancel()
		})
	}
}

// TestCtxDeadlineAlreadyExpired: a dead-on-arrival deadline fails fast.
func TestCtxDeadlineAlreadyExpired(t *testing.T) {
	sys := streamTestSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Simulate(sys, RMATEX, Options{Tstop: 1e-9, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestStreamedWaveformMatchesBuffered: a streamed run and a plain run of the
// same job produce identical waveforms (the serving-layer invariant).
func TestStreamedWaveformMatchesBuffered(t *testing.T) {
	sys := streamTestSystem(t)
	opts := Options{Tstop: 5e-9, Probes: []int{1, 5, 9}}
	plain, err := Simulate(sys, RMATEX, opts)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]float64
	opts.OnSample = func(tt float64, v []float64) {
		rows = append(rows, append([]float64(nil), v...))
	}
	streamed, err := Simulate(sys, RMATEX, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(plain.Times) {
		t.Fatalf("streamed %d rows, plain run has %d", len(rows), len(plain.Times))
	}
	if len(streamed.Times) != len(plain.Times) {
		t.Fatalf("streamed result has %d times, plain %d", len(streamed.Times), len(plain.Times))
	}
	for i := range rows {
		for k := range rows[i] {
			if d := math.Abs(rows[i][k] - plain.Probes[i][k]); d > 1e-12 {
				t.Fatalf("sample %d probe %d differs by %g", i, k, d)
			}
		}
	}
}
