// Package transient implements the time-domain integrators compared in the
// MATEX paper, over the MNA systems assembled by package circuit:
//
//   - forward Euler, backward Euler and trapezoidal (TR) with a fixed step
//     and a single up-front factorization (the 2012 TAU power-grid contest
//     framework the paper benchmarks against),
//   - TR with adaptive local-truncation-error stepping, which must
//     re-factorize whenever the step changes,
//   - the MATEX circuit solver (paper Alg. 2): matrix-exponential stepping
//     with standard (MEXP), inverted (I-MATEX) or rational (R-MATEX) Krylov
//     subspaces, adaptive steps between input transition spots, and
//     substitution-free snapshot evaluation by Krylov subspace reuse.
//
// Simulate is the single entry point; Method picks the integrator and
// Options carries the grid (Tstop, Step, Tol), probe selection, the shared
// factorization cache, streaming and checkpoint hooks, and the optional
// sparse.PanelLane that lets a sweep batch this run's triangular solves
// with its sibling variants' (see internal/sweep).
//
// Runs are resumable: Options.OnCheckpoint emits a Checkpoint (full state
// vector plus integrator position) every CheckpointEvery accepted steps,
// and Options.Resume restarts a run from one, reproducing the remaining
// samples exactly as the uninterrupted run would have emitted them.
//
// Every solver reports a Stats block with the work counters the paper's
// complexity model (Eqs. 11-12) is built from.
package transient
