package transient

import (
	"math"
	"testing"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/waveform"
)

// TestSeriesRLCUnderdamped validates inductor branch dynamics end to end:
// a step-driven series RLC rings at ω_d = sqrt(1/LC - (R/2L)²) with decay
// α = R/2L. The MNA system here is unsymmetric (inductor current unknown),
// exercising the LU path of the factorizations.
func TestSeriesRLCUnderdamped(t *testing.T) {
	r, l, c := 2.0, 1e-9, 1e-12 // alpha = 1e9, omega0² = 1e21 -> underdamped
	alpha := r / (2 * l)
	omega0sq := 1 / (l * c)
	omegad := math.Sqrt(omega0sq - alpha*alpha)

	ckt := circuit.New("series rlc")
	ckt.AddV("vs", "in", "0", waveform.DC(1))
	if err := ckt.AddR("r1", "in", "m", r); err != nil {
		t.Fatal(err)
	}
	if err := ckt.AddL("l1", "m", "out", l); err != nil {
		t.Fatal(err)
	}
	if err := ckt.AddC("c1", "out", "0", c); err != nil {
		t.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	idx, _, _, err := sys.NodeIndex("out")
	if err != nil {
		t.Fatal(err)
	}

	// Analytic step response of the capacitor voltage from zero state:
	// v(t) = 1 - e^{-αt}(cos ω_d t + (α/ω_d) sin ω_d t).
	analytic := func(tt float64) float64 {
		e := math.Exp(-alpha * tt)
		return 1 - e*(math.Cos(omegad*tt)+alpha/omegad*math.Sin(omegad*tt))
	}

	tstop := 2e-9 // several ring periods
	evals := make([]float64, 0, 41)
	for i := 0; i <= 40; i++ {
		evals = append(evals, float64(i)*tstop/40)
	}
	zero := make([]float64, sys.N)
	for _, m := range []Method{RMATEX, MEXP} {
		res, err := Simulate(sys, m, Options{
			Tstop: tstop, Probes: []int{idx}, EvalTimes: evals,
			Tol: 1e-9, Gamma: 1e-11, InitialState: zero,
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for i, tt := range res.Times {
			want := analytic(tt)
			if got := res.Probes[i][0]; math.Abs(got-want) > 2e-3 {
				t.Fatalf("%v: v(%g) = %v, want %v", m, tt, got, want)
			}
		}
	}
	// The trapezoidal baseline agrees too (cross-check of the stamping).
	res, err := Simulate(sys, TRFixed, Options{
		Tstop: tstop, Step: 1e-13, Probes: []int{idx}, InitialState: zero,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(res.Times); i += 100 {
		tt := res.Times[i]
		if got, want := res.Probes[i][0], analytic(tt); math.Abs(got-want) > 2e-3 {
			t.Fatalf("TR: v(%g) = %v, want %v", tt, got, want)
		}
	}
}

// TestRLCPackageGridRings checks that a grid with package inductance keeps
// working through the whole MATEX flow (unsymmetric MNA, V-source rails
// behind RL, distributed-style eval grid).
func TestRLCPackageGridRings(t *testing.T) {
	ckt := circuit.New("pkg grid")
	ckt.AddV("vdd", "pad", "0", waveform.DC(1.0))
	if err := ckt.AddR("rp", "pad", "mid", 0.05); err != nil {
		t.Fatal(err)
	}
	if err := ckt.AddL("lp", "mid", "grid", 0.5e-9); err != nil {
		t.Fatal(err)
	}
	for i, rc := range []struct {
		a, b string
		r    float64
	}{{"grid", "n1", 0.5}, {"n1", "n2", 0.5}, {"n2", "n3", 0.5}} {
		if err := ckt.AddR("r"+rc.a, rc.a, rc.b, rc.r); err != nil {
			t.Fatal(err)
		}
		if err := ckt.AddC("c"+rc.b, rc.b, "0", 2e-12); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	ckt.AddI("load", "n3", "0", &waveform.Pulse{V1: 0, V2: 20e-3, Delay: 1e-9, Rise: 0.2e-9, Width: 2e-9, Fall: 0.2e-9})
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	idx, _, _, err := sys.NodeIndex("n3")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Simulate(sys, TRFixed, Options{Tstop: 10e-9, Step: 1e-12, Probes: []int{idx}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sys, RMATEX, Options{Tstop: 10e-9, Probes: []int{idx}, Tol: 1e-8, Gamma: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	var maxErr, maxDroop float64
	for i, tt := range res.Times {
		got := res.Probes[i][0]
		if d := math.Abs(got - ref.InterpProbe(tt, 0)); d > maxErr {
			maxErr = d
		}
		if droop := 1.0 - got; droop > maxDroop {
			maxDroop = droop
		}
	}
	if maxErr > 2e-3 {
		t.Errorf("R-MATEX vs TR deviation %g on RLC grid", maxErr)
	}
	// The package inductance must produce real droop (di/dt noise).
	if maxDroop < 20e-3*1.0 {
		t.Errorf("droop %g suspiciously small; inductor path inert?", maxDroop)
	}
}
