package transient

import (
	"math"
	"testing"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/pdn"
	"github.com/matex-sim/matex/internal/waveform"
)

// rcStep builds a single RC stage driven by a step of current: analytic
// response v(t) = -I·R·(1 - e^{-t/RC}) at the driven node.
func rcStep(t *testing.T, r, c, amp float64) (*circuit.System, int) {
	t.Helper()
	ckt, err := pdn.Ladder(1, r, c, &waveform.Pulse{V1: 0, V2: amp, Delay: 0, Rise: 0, Width: 1, Fall: 0})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{})
	if err != nil {
		t.Fatal(err)
	}
	idx, _, _, err := sys.NodeIndex("n1")
	if err != nil {
		t.Fatal(err)
	}
	return sys, idx
}

func analyticRC(tt, r, c, amp float64) float64 {
	return -amp * r * (1 - math.Exp(-tt/(r*c)))
}

func TestFixedMethodsMatchAnalyticRC(t *testing.T) {
	r, c, amp := 1000.0, 1e-12, 1e-3 // tau = 1 ns
	sys, idx := rcStep(t, r, c, amp)
	tstop := 5e-9
	// The pulse is already on at t=0, so start from the zero state: the
	// response is the classic step charge-up -I·R·(1-e^{-t/RC}).
	zero := make([]float64, sys.N)
	for _, m := range []Method{TRFixed, BEFixed} {
		res, err := Simulate(sys, m, Options{Tstop: tstop, Step: 1e-11, Probes: []int{idx}, InitialState: zero})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Stats.Factorizations != 2 { // DC + stepping matrix
			t.Errorf("%v: factorizations = %d, want 2", m, res.Stats.Factorizations)
		}
		for i, tt := range res.Times {
			want := analyticRC(tt, r, c, amp)
			got := res.Probes[i][0]
			if math.Abs(got-want) > 2e-3*amp*r {
				t.Fatalf("%v: v(%g) = %g, want %g", m, tt, got, want)
			}
		}
	}
}

func TestFEStableSmallStepUnstableLarge(t *testing.T) {
	r, c, amp := 1000.0, 1e-12, 1e-3
	sys, idx := rcStep(t, r, c, amp)
	zero := make([]float64, sys.N)
	// Stable: h = tau/100.
	res, err := Simulate(sys, FEFixed, Options{Tstop: 5e-9, Step: 1e-11, Probes: []int{idx}, InitialState: zero})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Probes[len(res.Probes)-1][0]
	if math.Abs(last-analyticRC(5e-9, r, c, amp)) > 5e-3*amp*r {
		t.Errorf("FE stable run inaccurate: %g", last)
	}
	// Unstable: h = 3*tau (FE stability limit is 2*tau).
	res2, err := Simulate(sys, FEFixed, Options{Tstop: 60e-9, Step: 3e-9, Probes: []int{idx}, InitialState: zero})
	if err != nil {
		t.Fatal(err)
	}
	last2 := res2.Probes[len(res2.Probes)-1][0]
	if math.Abs(last2) < 10*amp*r {
		t.Errorf("FE with h=3tau should blow up, got %g", last2)
	}
}

func TestMatexModesMatchAnalyticRC(t *testing.T) {
	r, c, amp := 1000.0, 1e-12, 1e-3
	sys, idx := rcStep(t, r, c, amp)
	tstop := 5e-9
	evals := make([]float64, 0, 11)
	for i := 0; i <= 10; i++ {
		evals = append(evals, float64(i)*tstop/10)
	}
	zero := make([]float64, sys.N)
	for _, m := range []Method{MEXP, IMATEX, RMATEX} {
		res, err := Simulate(sys, m, Options{
			Tstop: tstop, Probes: []int{idx}, EvalTimes: evals, Tol: 1e-9, Gamma: 1e-10,
			InitialState: zero,
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(res.Times) != len(evals) {
			t.Fatalf("%v: %d output times, want %d", m, len(res.Times), len(evals))
		}
		for i, tt := range res.Times {
			want := analyticRC(tt, r, c, amp)
			got := res.Probes[i][0]
			if math.Abs(got-want) > 1e-4*amp*r {
				t.Fatalf("%v: v(%g) = %g, want %g (err %g)", m, tt, got, want, got-want)
			}
		}
	}
}

func TestMatexFactorizationBudget(t *testing.T) {
	// The headline feature: adaptive stepping with no re-factorization.
	// I-MATEX must factorize exactly once (G, at DC); R-MATEX twice
	// (G and C+γG); both independent of the number of transitions.
	spec, err := pdn.IBMCase("ibmpg1t", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	resI, err := Simulate(sys, IMATEX, Options{Tstop: 10e-9, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if resI.Stats.Factorizations != 1 {
		t.Errorf("I-MATEX factorizations = %d, want 1", resI.Stats.Factorizations)
	}
	resR, err := Simulate(sys, RMATEX, Options{Tstop: 10e-9, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if resR.Stats.Factorizations != 2 {
		t.Errorf("R-MATEX factorizations = %d, want 2", resR.Stats.Factorizations)
	}
	if resR.Stats.MP() == 0 || resR.Stats.MA() == 0 {
		t.Error("R-MATEX Krylov dimension stats empty")
	}
}

func TestAdaptiveTRRefactorizes(t *testing.T) {
	spec, err := pdn.IBMCase("ibmpg1t", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sys, TRAdaptive, Options{Tstop: 10e-9, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Factorizations < 5 {
		t.Errorf("adaptive TR factorizations = %d, expected many (re-factorizes on step change)", res.Stats.Factorizations)
	}
}

func TestCrossMethodConsistencyOnPDN(t *testing.T) {
	spec, err := pdn.IBMCase("ibmpg1t", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	probes := []int{0, sys.NumNodes / 2, sys.NumNodes - 1}
	tstop := 10e-9

	ref, err := Simulate(sys, TRFixed, Options{Tstop: tstop, Step: 2e-12, Probes: probes})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{IMATEX, RMATEX} {
		res, err := Simulate(sys, m, Options{Tstop: tstop, Probes: probes, Tol: 1e-7})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		var maxErr float64
		for i, tt := range res.Times {
			for k := range probes {
				want := ref.InterpProbe(tt, k)
				if d := math.Abs(res.Probes[i][k] - want); d > maxErr {
					maxErr = d
				}
			}
		}
		// Supply is 1.8V; paper reports ~2e-4 max error.
		if maxErr > 2e-3 {
			t.Errorf("%v: max deviation from fine TR = %g", m, maxErr)
		}
	}
}

func TestActiveMaskZeroInputsStaysAtInitial(t *testing.T) {
	sys, idx := rcStep(t, 1000, 1e-12, 1e-3)
	mask := make([]bool, len(sys.Inputs)) // all inactive
	res, err := Simulate(sys, RMATEX, Options{
		Tstop: 1e-9, Probes: []int{idx}, ActiveInputs: mask,
		InitialState: make([]float64, sys.N),
		EvalTimes:    []float64{0, 0.5e-9, 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Times {
		if math.Abs(res.Probes[i][0]) > 1e-15 {
			t.Fatalf("zero-input zero-state response nonzero: %g at %g", res.Probes[i][0], res.Times[i])
		}
	}
}

func TestSuperpositionOfMasks(t *testing.T) {
	// Zero-state response to all inputs equals the sum of per-input
	// zero-state responses — the foundation of the distributed MATEX.
	ckt, err := pdn.Ladder(4, 100, 1e-12, &waveform.Pulse{V1: 0, V2: 1e-3, Delay: 1e-10, Rise: 1e-10, Width: 5e-10, Fall: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddI("I2", "n2", "0", &waveform.Pulse{V1: 0, V2: 2e-3, Delay: 3e-10, Rise: 2e-10, Width: 4e-10, Fall: 2e-10})
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{})
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]float64, sys.N)
	evals := sys.GTS(3e-9)
	probes := []int{0, 1, 2, 3}
	full, err := Simulate(sys, RMATEX, Options{Tstop: 3e-9, Probes: probes, EvalTimes: evals, InitialState: zero, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	sum := make([][]float64, len(full.Times))
	for i := range sum {
		sum[i] = make([]float64, len(probes))
	}
	for k := range sys.Inputs {
		mask := make([]bool, len(sys.Inputs))
		mask[k] = true
		part, err := Simulate(sys, RMATEX, Options{Tstop: 3e-9, Probes: probes, EvalTimes: evals, InitialState: zero, ActiveInputs: mask, Tol: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		if len(part.Times) != len(full.Times) {
			t.Fatalf("grid mismatch: %d vs %d", len(part.Times), len(full.Times))
		}
		for i := range part.Times {
			for j := range probes {
				sum[i][j] += part.Probes[i][j]
			}
		}
	}
	for i := range full.Times {
		for j := range probes {
			if d := math.Abs(sum[i][j] - full.Probes[i][j]); d > 1e-5 {
				t.Fatalf("superposition mismatch at t=%g probe %d: %g vs %g", full.Times[i], j, sum[i][j], full.Probes[i][j])
			}
		}
	}
}

func TestMexpRegularizesSingularC(t *testing.T) {
	// An RL circuit has a singular C in node rows; MEXP must regularize,
	// I-MATEX and R-MATEX must not.
	ckt := circuit.New("rl")
	ckt.AddV("v1", "a", "0", waveform.DC(1))
	if err := ckt.AddR("r1", "a", "b", 10); err != nil {
		t.Fatal(err)
	}
	if err := ckt.AddL("l1", "b", "0", 1e-9); err != nil {
		t.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sys, MEXP, Options{Tstop: 1e-9, Tol: 1e-6, EvalTimes: []float64{0, 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Regularized {
		t.Error("MEXP did not regularize singular C")
	}
	resR, err := Simulate(sys, RMATEX, Options{Tstop: 1e-9, Tol: 1e-6, EvalTimes: []float64{0, 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	if resR.Stats.Regularized {
		t.Error("R-MATEX regularized; it should be regularization-free")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{}
	x := []float64{1, 2, 3}
	ropts := &Options{Probes: []int{0, 2}, KeepFull: true}
	r.record(0, x, ropts)
	x[0] = 5
	r.record(1, x, ropts)
	if r.Probes[0][0] != 1 || r.Probes[1][0] != 5 || r.Probes[0][1] != 3 {
		t.Fatal("record wrong")
	}
	if r.Full[0][0] != 1 {
		t.Fatal("Full must be a deep copy")
	}
	s := r.ProbeSeries(0)
	if s[0] != 1 || s[1] != 5 {
		t.Fatal("ProbeSeries wrong")
	}
	if got := r.InterpProbe(0.5, 0); got != 3 {
		t.Fatalf("InterpProbe = %v, want 3", got)
	}
	if got := r.InterpProbe(-1, 0); got != 1 {
		t.Fatalf("InterpProbe clamp low = %v", got)
	}
	if got := r.InterpProbe(9, 0); got != 5 {
		t.Fatalf("InterpProbe clamp high = %v", got)
	}
}

func TestOptionValidation(t *testing.T) {
	sys, _ := rcStep(t, 1000, 1e-12, 1e-3)
	if _, err := Simulate(sys, TRFixed, Options{Tstop: 1e-9}); err == nil {
		t.Error("TR without step accepted")
	}
	if _, err := Simulate(sys, RMATEX, Options{}); err == nil {
		t.Error("MATEX without Tstop accepted")
	}
	if _, err := Simulate(sys, Method(99), Options{Tstop: 1}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := Simulate(sys, RMATEX, Options{Tstop: 1e-9, InitialState: make([]float64, sys.N+5)}); err == nil {
		t.Error("bad initial state length accepted")
	}
}

func TestStatsMAMP(t *testing.T) {
	s := Stats{KrylovDims: []int{4, 6, 8}}
	if s.MA() != 6 || s.MP() != 8 {
		t.Fatalf("MA=%v MP=%v", s.MA(), s.MP())
	}
	var empty Stats
	if empty.MA() != 0 || empty.MP() != 0 {
		t.Fatal("empty stats should be zero")
	}
}
