package transient

import (
	"fmt"
	"math"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/waveform"
)

// quantizeStep snaps h down to the nearest point of the geometric grid
// href·(√2)^k, k ≥ 0. Snapping down keeps the LTE-chosen bound honored;
// quantizing at all makes recurring step sizes bit-identical, so with a
// factorization cache a revisited step size is a cache hit instead of a
// fresh factorization of (C/h + G/2).
func quantizeStep(h, href float64) float64 {
	if h <= href {
		return href
	}
	// log_√2(x) = 2·log2(x); floor puts q at or below h.
	k := math.Floor(2 * math.Log2(h/href))
	q := href * math.Pow(math.Sqrt2, k)
	for q > h {
		q /= math.Sqrt2
	}
	if q < href {
		q = href
	}
	return q
}

// simulateAdaptiveTR runs trapezoidal integration with local-truncation-error
// step control. Unlike the fixed-step framework, every accepted step-size
// change forces a re-factorization of (C/h + G/2) — exactly the cost the
// paper's MATEX avoids. Steps are clamped to the next input transition spot
// so slope discontinuities are never integrated across, and accepted step
// sizes are quantized to a geometric √2 grid so that recurring sizes share
// one factorization cache entry (Options.Cache).
func simulateAdaptiveTR(sys *circuit.System, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Tstop <= 0 {
		return nil, fmt.Errorf("transient: adaptive TR needs positive Tstop")
	}
	relTol := opts.Tol
	if relTol == 1e-6 { // MATEX default is too strict as an LTE target
		relTol = 1e-4
	}
	const absTol = 1e-9

	res := &Result{}
	x, _, err := initialState(sys, opts, &res.Stats)
	if err != nil {
		return nil, err
	}
	n := sys.N
	gts := gtsForMask(sys, opts)

	h := opts.Step
	if h <= 0 {
		h = opts.Tstop / 1000
	}
	hMin := opts.Tstop * 1e-9

	tTr := time.Now()
	defer func() { res.Stats.TransientTime = time.Since(tTr) }()

	var lhs sparse.Factorization
	var rhsMat *sparse.CSC
	hFactored := -1.0
	refactor := func(hNew float64) error {
		t0 := time.Now()
		a, err := acquireFactorSum(1/hNew, sys.C, 0.5, sys.G, opts, &res.Stats)
		if err != nil {
			return fmt.Errorf("transient: TR re-factorization at h=%g: %w", hNew, err)
		}
		lhs = a
		rhsMat = sparse.Add(1/hNew, sys.C, -0.5, sys.G)
		hFactored = hNew
		res.Stats.FactorTime += time.Since(t0)
		return nil
	}

	bu0 := make([]float64, n)
	bu1 := make([]float64, n)
	rhs := make([]float64, n)
	work := make([]float64, n)
	xNew := make([]float64, n)
	var xPrev []float64
	hPrev := 0.0

	t := 0.0
	cpr := newCheckpointer(&opts)
	if cp := opts.resumeFrom; cp != nil {
		// Resume restores the full controller state — proposed step and the
		// accepted history the LTE predictor extrapolates through — so the
		// remaining step sequence is the uninterrupted run's.
		t = cp.T
		if cp.H > 0 {
			h = cp.H
		}
		hPrev = cp.HPrev
		if cp.XPrev != nil {
			xPrev = append([]float64(nil), cp.XPrev...)
		}
	} else {
		res.record(0, x, &opts)
	}
	for t < opts.Tstop-waveform.SpotEps {
		if err := opts.cancelled(); err != nil {
			return nil, err
		}
		// Quantize the controller's step onto the geometric grid, then
		// clamp to the next transition spot and the window end.
		hStep := quantizeStep(h, hMin)
		if next, ok := waveform.NextSpot(gts, t); ok && t+hStep > next {
			hStep = next - t
		}
		if t+hStep > opts.Tstop {
			hStep = opts.Tstop - t
		}
		if hStep < hMin {
			hStep = hMin
		}
		if hStep != hFactored {
			if err := refactor(hStep); err != nil {
				return nil, err
			}
		}
		// TR step.
		sys.EvalB(t, bu0, opts.ActiveInputs)
		sys.EvalB(t+hStep, bu1, opts.ActiveInputs)
		rhsMat.MulVec(rhs, x)
		res.Stats.SpMVs++
		for i := range rhs {
			rhs[i] += 0.5 * (bu0[i] + bu1[i])
		}
		solveWith(lhs, xNew, rhs, work, opts)
		res.Stats.SolvePairs++

		// LTE estimate: compare against the explicit linear predictor
		// through (x_prev, x); the divided-difference distance approximates
		// the local error of TR up to a modest constant.
		accept := true
		errRatio := 0.0
		if xPrev != nil && hPrev > 0 {
			for i := range xNew {
				pred := x[i] + (x[i]-xPrev[i])*hStep/hPrev
				scale := relTol*math.Max(math.Abs(xNew[i]), math.Abs(x[i])) + absTol
				if r := math.Abs(xNew[i]-pred) / scale; r > errRatio {
					errRatio = r
				}
			}
			accept = errRatio <= 1
		}
		if !accept && hStep > hMin {
			res.Stats.Rejected++
			h = hStep / 2
			continue
		}
		xPrev = append(xPrev[:0], x...)
		copy(x, xNew)
		hPrev = hStep
		t += hStep
		res.Stats.Steps++
		res.record(t, x, &opts)

		// Step-size controller (third-order error model for TR).
		grow := 2.0
		if errRatio > 0 {
			grow = 0.9 * math.Pow(errRatio, -1.0/3.0)
		}
		grow = math.Min(2.0, math.Max(0.3, grow))
		h = hStep * grow

		// Checkpoint after the controller update so the snapshot carries the
		// next proposed step, not the one just taken.
		err := cpr.maybe(&res.Stats, func() Checkpoint {
			return Checkpoint{
				Method: TRAdaptive.Name(),
				T:      t,
				X:      append([]float64(nil), x...),
				H:      h,
				HPrev:  hPrev,
				XPrev:  append([]float64(nil), xPrev...),
			}
		})
		if err != nil {
			return nil, err
		}
	}
	res.Final = append([]float64(nil), x...)
	return res, nil
}

// gtsForMask returns the transition spots of the active inputs.
func gtsForMask(sys *circuit.System, opts Options) []float64 {
	waves := sys.Waves()
	if opts.ActiveInputs != nil {
		var sel []waveform.Waveform
		for i, w := range waves {
			if opts.ActiveInputs[i] {
				sel = append(sel, w)
			}
		}
		waves = sel
	}
	return waveform.GTS(waves, opts.Tstop)
}
