package transient

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/waveform"
)

var errInvertedHandledSeparately = errors.New("transient: internal: inverted mode routed to simulateMatexFP")

// simulateMatexFP runs a MATEX mode with the paper's literal Eq. 5
// formulation. It is the only correct path for systems with a singular C
// (algebraic nodes): the exponential acts on the deviation vector
// x(t)+F — whose algebraic content vanishes — while the quasi-static P
// terms carry the algebraic node values exactly. I-MATEX always uses this
// path (its operator has no augmented form); R-MATEX falls back to it when
// C has structurally empty rows. With piecewise-linear inputs, over a
// slope-constant segment starting at a transition spot t with s = d(B·u)/dt:
//
//	w0 = G⁻¹(B·u(t))   w1 = G⁻¹s   r2 = G⁻¹(C·w1)
//	F  = -w0 + r2                              (the paper's F(t,h), h-free)
//	P(ha) = -(w0 + ha·w1) + r2                 (the paper's P(t,h))
//	x(t+ha) = e^{ha·A}(x(t) + F) - P(ha)
//
// Note the F/P intermediates scale with A⁻²·ḃ, so on extremely stiff
// systems (slow eigenvalues near zero over the simulated window) they grow
// far beyond the solution and cancel; this is intrinsic to the Eq. 5 form,
// which is why the nonsingular-C R-MATEX path uses φ-functions on an
// augmented operator instead (see SimulateMatex).
func simulateMatexFP(sys *circuit.System, method Method, opts Options) (*Result, error) {
	res := &Result{}
	x, factG, err := initialState(sys, opts, &res.Stats)
	if err != nil {
		return nil, err
	}
	n := sys.N

	count := &krylov.Counters{}
	var op *krylov.Op
	switch method {
	case IMATEX:
		// No extra factorization: the operator reuses LU(G) from DC analysis.
		op = krylov.NewInvertedOp(factG, sys.C, sys.G, count)
	case RMATEX:
		fs, err := acquireFactorSum(1, sys.C, opts.Gamma, sys.G, opts, &res.Stats)
		if err != nil {
			return nil, fmt.Errorf("transient: factorizing (C+γG): %w", err)
		}
		op = krylov.NewRationalOp(fs, sys.C, sys.G, opts.Gamma, count)
		op.ClearSegment() // Eq. 5 handles inputs; the operator stays input-free
	default:
		return nil, fmt.Errorf("transient: simulateMatexFP got %v", method)
	}
	op.SetSolveWorkers(opts.SolveWorkers)

	lts := gtsForMask(sys, opts)
	outs := evalGrid(sys, opts)
	grid := waveform.MergeSpots(append(append([]float64(nil), lts...), outs...), opts.Tstop, waveform.SpotEps, true)

	tTr := time.Now()
	defer func() {
		res.Stats.TransientTime = time.Since(tTr)
		res.Stats.addCounters(count)
	}()

	wsPool := opts.workspaces()
	ws := wsPool.Get()
	defer wsPool.Put(ws)

	bu0 := make([]float64, n)
	bu1 := make([]float64, n)
	w0 := make([]float64, n)
	w1 := make([]float64, n)
	r2 := make([]float64, n)
	slope := make([]float64, n)
	v := make([]float64, n)
	xe := make([]float64, n)
	vaug := make([]float64, n+2)
	xaug := make([]float64, n+2)
	work := make([]float64, n)
	var mdst, msrc [2][]float64
	hChecks := make([]float64, 0, 2)
	kopts := krylov.Options{MaxDim: opts.MaxDim, Tol: opts.Tol, Method: opts.Krylov, Workspace: ws}

	gi := 0
	tBase := 0.0
	cpr := newCheckpointer(&opts)
	if cp := opts.resumeFrom; cp != nil {
		// See SimulateMatex: resume at the checkpointed segment boundary with
		// gi pointing at the last emitted grid point. The Eq. 5 path has no
		// buScale accumulator — its input terms are rebuilt per segment.
		tBase = cp.T
		gi = sort.SearchFloat64s(grid, cp.T+waveform.SpotEps) - 1
		if gi < 0 {
			gi = 0
		}
	} else if waveform.ContainsSpot(outs, 0) {
		res.record(0, x, &opts)
	}
	for tBase < opts.Tstop-waveform.SpotEps {
		if err := opts.cancelled(); err != nil {
			return nil, err
		}
		t := tBase
		segEnd := opts.Tstop
		if nx, ok := waveform.NextSpot(lts, t); ok {
			segEnd = nx
		}
		if opts.MaxStep > 0 && segEnd > t+opts.MaxStep {
			segEnd = t + opts.MaxStep
		}
		sys.EvalB(t, bu0, opts.ActiveInputs)
		sys.EvalB(segEnd, bu1, opts.ActiveInputs)
		hSeg := segEnd - t
		for i := range slope {
			slope[i] = (bu1[i] - bu0[i]) / hSeg
		}
		// w0 and w1 are independent right-hand sides: one blocked panel
		// solve traverses the factor once for both when available; r2
		// depends on w1 and follows separately.
		if ms, ok := factG.(sparse.MultiSolver); ok {
			mdst[0], mdst[1] = w0, w1
			msrc[0], msrc[1] = bu0, slope
			ms.SolveMulti(mdst[:], msrc[:])
		} else {
			solveWith(factG, w0, bu0, work, opts)
			solveWith(factG, w1, slope, work, opts)
		}
		sys.C.MulVec(xe, w1)
		solveWith(factG, r2, xe, work, opts)
		res.Stats.SolvePairs += 3
		res.Stats.SpMVs++

		for i := range v {
			v[i] = x[i] - w0[i] + r2[i] // x(t) + F
		}
		hChecks = append(hChecks[:0], hSeg)
		if gi+1 < len(grid) && grid[gi+1] < segEnd-waveform.SpotEps {
			hChecks = append(hChecks, grid[gi+1]-t)
		}
		vop := v
		if op.N() == n+2 {
			copy(vaug[:n], v) // rational op: [v;0;0], aux chain stays inert
			vop = vaug
		}
		sub, err := krylov.Generate(op, vop, hChecks, kopts)
		if errors.Is(err, krylov.ErrNoConvergence) {
			res.Stats.Rejected++
			half := t + hSeg/2
			if gi+1 < len(grid) && grid[gi+1] < segEnd-waveform.SpotEps {
				half = grid[gi+1]
			}
			var err2 error
			hChecks = append(hChecks[:0], half-t)
			sub, err2 = krylov.Generate(op, vop, hChecks, kopts)
			if err2 != nil && (!errors.Is(err2, krylov.ErrNoConvergence) || sub == nil) {
				return nil, fmt.Errorf("transient: %v at t=%g even after split: %w", method, t, err2)
			}
			// Best-effort subspace: Eq. 5's A⁻² input terms limit the
			// achievable absolute accuracy on very stiff systems (see the
			// function comment); proceed and measure.
			segEnd = half
		} else if err != nil {
			return nil, fmt.Errorf("transient: %v subspace at t=%g: %w", method, t, err)
		}

		evalAt := func(ha float64) error {
			dst := xe
			if op.N() == n+2 {
				dst = xaug
			}
			if err := sub.EvalExp(ha, dst); err != nil {
				return fmt.Errorf("transient: %v at t=%g: %w", method, t+ha, err)
			}
			if op.N() == n+2 {
				copy(xe, xaug[:n])
			}
			for i := range xe {
				xe[i] += w0[i] + ha*w1[i] - r2[i] // subtract P(ha)
			}
			return nil
		}
		lastEval := -1.0
		for gi+1 < len(grid) && grid[gi+1] <= segEnd+waveform.SpotEps {
			gi++
			tp := grid[gi]
			if err := evalAt(tp - t); err != nil {
				return nil, err
			}
			lastEval = tp
			res.Stats.Steps++
			if waveform.ContainsSpot(outs, tp) {
				res.record(tp, xe, &opts)
			}
		}
		if lastEval < segEnd-waveform.SpotEps {
			if err := evalAt(segEnd - t); err != nil {
				return nil, err
			}
			res.Stats.Steps++
		}
		copy(x, xe)
		tBase = segEnd
		err = cpr.maybe(&res.Stats, func() Checkpoint {
			return Checkpoint{Method: method.Name(), T: tBase, X: append([]float64(nil), x...)}
		})
		if err != nil {
			return nil, err
		}
	}
	res.Final = append([]float64(nil), x...)
	return res, nil
}
