package transient

import (
	"fmt"
	"math"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/waveform"
)

// Checkpoint is a restartable snapshot of an integrator mid-waveform: the
// durable job journal persists one every Options.CheckpointEvery accepted
// steps, and Resume re-enters the integration loop from it after a crash.
// The snapshot is exact — the state vector plus the controller state each
// method needs — so a resumed run emits the same remaining samples as the
// uninterrupted run (bit-identical when the snapshot round-trips losslessly,
// as Go's JSON float64 encoding does).
type Checkpoint struct {
	// Method is the canonical method name (Method.Name()); Resume rejects a
	// checkpoint taken by a different integrator.
	Method string `json:"method"`
	// T is the simulated time of the snapshot; X is x(T).
	T float64   `json:"t"`
	X []float64 `json:"x"`
	// H, HPrev and XPrev carry the adaptive-TR controller: H is the step the
	// controller proposes next, HPrev/XPrev the accepted history the LTE
	// predictor extrapolates through. Zero/nil for the other methods.
	H     float64   `json:"h,omitempty"`
	HPrev float64   `json:"h_prev,omitempty"`
	XPrev []float64 `json:"x_prev,omitempty"`
	// BuScale is the MATEX running input-magnitude scale the segment
	// flatness tests divide by; restoring it keeps the resumed run's
	// Lanczos-shift decisions identical to the uninterrupted run's.
	BuScale float64 `json:"bu_scale,omitempty"`
}

// Name returns the canonical wire spelling of the method — the one
// ParseMethod accepts and Checkpoint.Method stores.
func (m Method) Name() string {
	switch m {
	case TRFixed:
		return "tr"
	case BEFixed:
		return "be"
	case FEFixed:
		return "fe"
	case TRAdaptive:
		return "tradpt"
	case MEXP:
		return "mexp"
	case IMATEX:
		return "imatex"
	case RMATEX:
		return "rmatex"
	}
	return "unknown"
}

// Resume re-enters the selected integrator from a checkpoint: the run skips
// the DC solve and every sample at or before cp.T, then continues to
// opts.Tstop exactly as the uninterrupted run would have. The factorization
// path is unchanged, so a shared Options.Cache makes recovery pay no
// re-analysis; a cold cache pays one factorization, never a re-simulation.
// A checkpoint at or past Tstop returns a completed result (Final = cp.X)
// with no new samples.
func Resume(sys *circuit.System, method Method, opts Options, cp Checkpoint) (*Result, error) {
	if cp.Method != "" && cp.Method != method.Name() {
		return nil, fmt.Errorf("transient: checkpoint from method %q cannot resume a %q run", cp.Method, method.Name())
	}
	if len(cp.X) != sys.N {
		return nil, fmt.Errorf("transient: checkpoint state length %d != system size %d", len(cp.X), sys.N)
	}
	if cp.XPrev != nil && len(cp.XPrev) != sys.N {
		return nil, fmt.Errorf("transient: checkpoint xPrev length %d != system size %d", len(cp.XPrev), sys.N)
	}
	if cp.T < 0 || math.IsNaN(cp.T) {
		return nil, fmt.Errorf("transient: checkpoint time %g out of range", cp.T)
	}
	if opts.Tstop > 0 && cp.T >= opts.Tstop-waveform.SpotEps {
		return &Result{Final: append([]float64(nil), cp.X...)}, nil
	}
	opts.resumeFrom = &cp
	return Simulate(sys, method, opts)
}

// checkpointer drives the OnCheckpoint cadence: fire once every `every`
// accepted steps, counted via Stats.Steps so rejected steps don't advance
// the clock. A nil checkpointer (no hook configured) is inert.
type checkpointer struct {
	opts  *Options
	every int
	last  int // Stats.Steps at the previous checkpoint
}

// defaultCheckpointEvery balances journal overhead against recovery window:
// at typical serve cadence (one sample per step) this keeps checkpoint I/O
// well under 1% of integration time on ibmpg1t-class systems.
const defaultCheckpointEvery = 128

// newCheckpointer returns nil unless opts.OnCheckpoint is set.
func newCheckpointer(opts *Options) *checkpointer {
	if opts.OnCheckpoint == nil {
		return nil
	}
	every := opts.CheckpointEvery
	if every <= 0 {
		every = defaultCheckpointEvery
	}
	return &checkpointer{opts: opts, every: every}
}

// maybe fires the hook when the cadence is due. mk builds the snapshot only
// when needed, so the no-checkpoint steps never copy state. A hook error
// aborts the run (the caller returns it wrapped).
func (c *checkpointer) maybe(stats *Stats, mk func() Checkpoint) error {
	if c == nil || stats.Steps-c.last < c.every {
		return nil
	}
	c.last = stats.Steps
	cp := mk()
	if err := c.opts.OnCheckpoint(cp); err != nil {
		return fmt.Errorf("transient: checkpoint callback at t=%g: %w", cp.T, err)
	}
	return nil
}
