package transient

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/waveform"
)

// randomRCMesh builds a random SPD RC mesh: a ring of nodes with random
// segment resistances, random cross-links, a ground leak at every node,
// caps to ground (skipped on every third node when singularC, exercising
// the R-MATEX Eq. 5 fallback path), and a few pulsed current loads.
func randomRCMesh(t *testing.T, n int, seed int64, singularC bool) *circuit.System {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ckt := circuit.New(fmt.Sprintf("mesh%d", seed))
	node := func(i int) string { return fmt.Sprintf("n%d", i) }
	for i := 0; i < n; i++ {
		if err := ckt.AddR(fmt.Sprintf("Rg%d", i), node(i), "0", 50+100*rng.Float64()); err != nil {
			t.Fatal(err)
		}
		if err := ckt.AddR(fmt.Sprintf("Rs%d", i), node(i), node((i+1)%n), 1+2*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < n/2; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if err := ckt.AddR(fmt.Sprintf("Rx%d", k), node(i), node(j), 2+4*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if singularC && i%3 == 2 {
			continue // algebraic node: no capacitive coupling at all
		}
		if err := ckt.AddC(fmt.Sprintf("C%d", i), node(i), "0", 1e-12*(0.5+rng.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 3; k++ {
		delay := float64(1+rng.Intn(4)) * 1e-10
		ckt.AddI(fmt.Sprintf("I%d", k), node(rng.Intn(n)), "0", &waveform.Pulse{
			V1: 0, V2: 1e-3 * (0.5 + rng.Float64()),
			Delay: delay, Rise: 1e-10, Width: 2e-10, Fall: 1e-10,
		})
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestLanczosWaveformEquivalence is the solver-level acceptance contract:
// on random SPD RC meshes, the default (auto/Lanczos) path and the pinned
// Arnoldi reference must produce waveforms identical to 1e-8 at equal
// tolerance, for I-MATEX, the augmented R-MATEX path (nonsingular C, where
// slope-free segments take the shifted fast path) and the Eq. 5 R-MATEX
// fallback (singular C, where every spot is fast-path eligible).
func TestLanczosWaveformEquivalence(t *testing.T) {
	cases := []struct {
		name      string
		method    Method
		singularC bool
		wantSpots bool // the auto run must actually exercise the fast path
	}{
		{"imatex", IMATEX, false, true},
		{"rmatex-augmented", RMATEX, false, true},
		{"rmatex-eq5", RMATEX, true, true},
	}
	for _, tc := range cases {
		for _, seed := range []int64{11, 12, 13} {
			sys := randomRCMesh(t, 18, seed, tc.singularC)
			probes := []int{0, 1, 2}
			opts := Options{Tstop: 2e-9, Tol: 1e-9, Probes: probes}
			ref, err := Simulate(sys, tc.method, optsWith(opts, krylov.MethodArnoldi))
			if err != nil {
				t.Fatalf("%s seed %d arnoldi: %v", tc.name, seed, err)
			}
			if ref.Stats.LanczosSpots != 0 {
				t.Fatalf("%s seed %d: arnoldi run reported %d Lanczos spots", tc.name, seed, ref.Stats.LanczosSpots)
			}
			got, err := Simulate(sys, tc.method, optsWith(opts, krylov.MethodLanczos))
			if err != nil {
				t.Fatalf("%s seed %d lanczos: %v", tc.name, seed, err)
			}
			if tc.wantSpots && got.Stats.LanczosSpots == 0 {
				t.Errorf("%s seed %d: fast-path run generated no Lanczos subspaces", tc.name, seed)
			}
			if len(got.Times) != len(ref.Times) {
				t.Fatalf("%s seed %d: grid mismatch %d vs %d", tc.name, seed, len(got.Times), len(ref.Times))
			}
			var scale float64 = 1
			for i := range ref.Times {
				for k := range probes {
					if a := math.Abs(ref.Probes[i][k]); a > scale {
						scale = a
					}
				}
			}
			for i := range ref.Times {
				for k := range probes {
					if d := math.Abs(got.Probes[i][k] - ref.Probes[i][k]); d > 1e-8*scale {
						t.Fatalf("%s seed %d: waveforms differ by %g (%.3g of scale) at t=%g probe %d (lanczos spots %d/%d)",
							tc.name, seed, d, d/scale, ref.Times[i], k,
							got.Stats.LanczosSpots, len(got.Stats.KrylovDims))
					}
				}
			}
		}
	}
}

func optsWith(o Options, m krylov.Method) Options {
	o.Krylov = m
	return o
}

// TestKrylovMethodArnoldiPinsSeedBehavior: forcing arnoldi must keep the
// solver off both the fast path and the shifted-segment reformulation.
func TestKrylovMethodArnoldiPinsSeedBehavior(t *testing.T) {
	sys := randomRCMesh(t, 12, 7, false)
	res, err := Simulate(sys, RMATEX, Options{Tstop: 1e-9, Tol: 1e-8, Krylov: krylov.MethodArnoldi})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LanczosSpots != 0 {
		t.Errorf("arnoldi-pinned run took the fast path on %d spots", res.Stats.LanczosSpots)
	}
}
