package transient

import (
	"encoding/json"
	"errors"
	"math"
	"testing"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/pdn"
)

// roundTrip pushes a checkpoint through JSON the way the serve journal does;
// Go's float64 encoding is lossless, so the restored snapshot is bit-exact.
func roundTrip(t *testing.T, cp Checkpoint) Checkpoint {
	t.Helper()
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var out Checkpoint
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// assertResumeMatches runs method one-shot with checkpoints captured, then
// resumes from a mid-run checkpoint and asserts the resumed tail reproduces
// the one-shot samples within 1e-12 with no gaps or duplicates.
func assertResumeMatches(t *testing.T, sys *circuit.System, method Method, opts Options) {
	t.Helper()
	var cps []Checkpoint
	full := opts
	full.OnCheckpoint = func(cp Checkpoint) error {
		cps = append(cps, cp)
		return nil
	}
	oneShot, err := Simulate(sys, method, full)
	if err != nil {
		t.Fatalf("%v one-shot: %v", method, err)
	}
	if len(cps) < 2 {
		t.Fatalf("%v: only %d checkpoints captured; shrink CheckpointEvery", method, len(cps))
	}
	cp := roundTrip(t, cps[len(cps)/2])
	if cp.Method != method.Name() {
		t.Fatalf("%v: checkpoint method %q", method, cp.Method)
	}
	if cp.T <= 0 || cp.T >= opts.Tstop {
		t.Fatalf("%v: mid checkpoint at t=%g", method, cp.T)
	}

	resumed, err := Resume(sys, method, opts, cp)
	if err != nil {
		t.Fatalf("%v resume: %v", method, err)
	}
	// The resumed trace must be exactly the one-shot samples after cp.T.
	i0 := 0
	for i0 < len(oneShot.Times) && oneShot.Times[i0] <= cp.T {
		i0++
	}
	wantTimes := oneShot.Times[i0:]
	if len(resumed.Times) != len(wantTimes) {
		t.Fatalf("%v: resumed %d samples, want %d (from t=%g)", method, len(resumed.Times), len(wantTimes), cp.T)
	}
	for i := range wantTimes {
		if resumed.Times[i] != wantTimes[i] {
			t.Fatalf("%v: resumed time[%d] = %g, want %g", method, i, resumed.Times[i], wantTimes[i])
		}
		for k := range resumed.Probes[i] {
			if d := math.Abs(resumed.Probes[i][k] - oneShot.Probes[i0+i][k]); d > 1e-12 {
				t.Fatalf("%v: probe deviation %g at t=%g (col %d)", method, d, wantTimes[i], k)
			}
		}
	}
	for i := range resumed.Final {
		if d := math.Abs(resumed.Final[i] - oneShot.Final[i]); d > 1e-12 {
			t.Fatalf("%v: final-state deviation %g at unknown %d", method, d, i)
		}
	}
}

func TestResumeMatchesOneShotFixed(t *testing.T) {
	sys, idx := rcStep(t, 1000, 1e-12, 1e-3)
	zero := make([]float64, sys.N)
	for _, m := range []Method{TRFixed, BEFixed, FEFixed} {
		assertResumeMatches(t, sys, m, Options{
			Tstop: 5e-9, Step: 1e-11, Probes: []int{idx},
			InitialState: zero, CheckpointEvery: 50,
		})
	}
}

func pdnSystem(t *testing.T, scale float64) *circuit.System {
	t.Helper()
	spec, err := pdn.IBMCase("ibmpg1t", scale)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestResumeMatchesOneShotAdaptiveAndMatex(t *testing.T) {
	sys := pdnSystem(t, 0.2)
	probes := []int{0, sys.NumNodes / 2, sys.NumNodes - 1}
	assertResumeMatches(t, sys, TRAdaptive, Options{
		Tstop: 10e-9, Tol: 1e-4, Probes: probes, CheckpointEvery: 8,
	})
	for _, m := range []Method{IMATEX, RMATEX} {
		assertResumeMatches(t, sys, m, Options{
			Tstop: 10e-9, Tol: 1e-7, Probes: probes, CheckpointEvery: 4,
		})
	}
}

func TestResumeMatchesOneShotMexp(t *testing.T) {
	// MEXP on the stiff PDN runs thousands of MaxStep-clamped segments;
	// the RC stage exercises the same resume path at unit-test cost.
	sys, idx := rcStep(t, 1000, 1e-12, 1e-3)
	zero := make([]float64, sys.N)
	evals := make([]float64, 0, 101)
	for i := 0; i <= 100; i++ {
		evals = append(evals, float64(i)*5e-9/100)
	}
	assertResumeMatches(t, sys, MEXP, Options{
		Tstop: 5e-9, Tol: 1e-9, Probes: []int{idx}, EvalTimes: evals,
		InitialState: zero, CheckpointEvery: 10, MaxStep: 2.5e-10,
	})
}

func TestResumeValidation(t *testing.T) {
	sys, _ := rcStep(t, 1000, 1e-12, 1e-3)
	good := make([]float64, sys.N)
	cases := []struct {
		name string
		cp   Checkpoint
	}{
		{"wrong method", Checkpoint{Method: "tradpt", T: 1e-9, X: good}},
		{"bad state length", Checkpoint{Method: "tr", T: 1e-9, X: make([]float64, sys.N+1)}},
		{"bad xprev length", Checkpoint{Method: "tr", T: 1e-9, X: good, XPrev: make([]float64, sys.N+2)}},
		{"negative time", Checkpoint{Method: "tr", T: -1e-9, X: good}},
		{"off-grid time", Checkpoint{Method: "tr", T: 1.5e-11, X: good}},
	}
	for _, tc := range cases {
		_, err := Resume(sys, TRFixed, Options{Tstop: 5e-9, Step: 1e-11}, tc.cp)
		if err == nil {
			t.Errorf("%s: Resume accepted invalid checkpoint", tc.name)
		}
	}
	// A checkpoint at Tstop is a completed run, not an error.
	res, err := Resume(sys, TRFixed, Options{Tstop: 5e-9, Step: 1e-11}, Checkpoint{Method: "tr", T: 5e-9, X: good})
	if err != nil {
		t.Fatalf("resume at Tstop: %v", err)
	}
	if len(res.Times) != 0 || len(res.Final) != sys.N {
		t.Fatalf("resume at Tstop: %d samples, final len %d", len(res.Times), len(res.Final))
	}
}

func TestOnCheckpointErrorAbortsRun(t *testing.T) {
	sys, idx := rcStep(t, 1000, 1e-12, 1e-3)
	boom := errors.New("journal full")
	_, err := Simulate(sys, TRFixed, Options{
		Tstop: 5e-9, Step: 1e-11, Probes: []int{idx}, CheckpointEvery: 10,
		OnCheckpoint: func(Checkpoint) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("expected wrapped hook error, got %v", err)
	}
}

func TestCheckpointCadence(t *testing.T) {
	sys, _ := rcStep(t, 1000, 1e-12, 1e-3)
	var n int
	_, err := Simulate(sys, TRFixed, Options{
		Tstop: 5e-9, Step: 1e-11, CheckpointEvery: 1,
		OnCheckpoint: func(cp Checkpoint) error {
			if len(cp.X) != sys.N || cp.T <= 0 {
				t.Fatalf("malformed checkpoint %+v", cp)
			}
			n++
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 500 full steps; every accepted step checkpoints.
	if n < 400 {
		t.Fatalf("CheckpointEvery=1 fired %d times over 500 steps", n)
	}
}
