package circuit

import (
	"math"
	"testing"

	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/waveform"
)

func TestResistorDividerDC(t *testing.T) {
	// 2V supply across R1=1k, R2=1k: midpoint at 1V.
	for _, collapse := range []bool{false, true} {
		c := New("divider")
		c.AddV("vdd", "in", "0", waveform.DC(2))
		if err := c.AddR("r1", "in", "mid", 1000); err != nil {
			t.Fatal(err)
		}
		if err := c.AddR("r2", "mid", "0", 1000); err != nil {
			t.Fatal(err)
		}
		sys, err := Stamp(c, StampOptions{CollapseSupplies: collapse})
		if err != nil {
			t.Fatal(err)
		}
		x, _, err := sys.DC(sparse.FactorAuto, sparse.OrderNatural)
		if err != nil {
			t.Fatal(err)
		}
		vm, err := sys.Voltage(x, "mid")
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(vm-1) > 1e-12 {
			t.Errorf("collapse=%v: Vmid = %v, want 1", collapse, vm)
		}
		vin, err := sys.Voltage(x, "in")
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(vin-2) > 1e-12 {
			t.Errorf("collapse=%v: Vin = %v, want 2", collapse, vin)
		}
		if collapse && sys.NumNodes != 1 {
			t.Errorf("collapsed system should have 1 free node, got %d", sys.NumNodes)
		}
	}
}

func TestCollapseKeepsGSymmetric(t *testing.T) {
	c := New("grid")
	c.AddV("vdd", "p", "0", waveform.DC(1.8))
	for _, e := range []struct {
		a, b string
		r    float64
	}{{"p", "n1", 1}, {"n1", "n2", 2}, {"n2", "0", 3}, {"n1", "0", 4}} {
		if err := c.AddR("r"+e.a+e.b, e.a, e.b, e.r); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddC("c1", "n1", "0", 1e-12); err != nil {
		t.Fatal(err)
	}
	sys, err := Stamp(c, StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.G.IsSymmetric(0) {
		t.Error("collapsed G not symmetric")
	}
	if _, err := sparse.FactorLDLT(sys.G, sparse.OrderNatural); err != nil {
		t.Errorf("collapsed G should be SPD-factorable: %v", err)
	}
}

func TestCurrentSourceSign(t *testing.T) {
	// 1A source from ground into node through the source convention:
	// I(pos=n, neg=0) draws current out of n, so V(n) = -R*I with R to ground.
	c := New("isrc")
	if err := c.AddR("r", "n", "0", 5); err != nil {
		t.Fatal(err)
	}
	c.AddI("i1", "n", "0", waveform.DC(1))
	sys, err := Stamp(c, StampOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := sys.DC(sparse.FactorAuto, sparse.OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sys.Voltage(x, "n")
	if math.Abs(v+5) > 1e-12 {
		t.Errorf("V(n) = %v, want -5 (current drawn out of node)", v)
	}
}

func TestInductorDCShort(t *testing.T) {
	// V -- R -- L -- ground: in DC the inductor is a short, node between R
	// and L sits at 0V and the inductor current is V/R.
	c := New("rl")
	c.AddV("v1", "a", "0", waveform.DC(10))
	if err := c.AddR("r1", "a", "b", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddL("l1", "b", "0", 1e-9); err != nil {
		t.Fatal(err)
	}
	sys, err := Stamp(c, StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := sys.DC(sparse.FactorAuto, sparse.OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	vb, _ := sys.Voltage(x, "b")
	if math.Abs(vb) > 1e-12 {
		t.Errorf("V(b) = %v, want 0", vb)
	}
	// Inductor current is the unknown after the node voltages.
	il := x[sys.NumNodes]
	if math.Abs(il-5) > 1e-9 {
		t.Errorf("I(l1) = %v, want 5", il)
	}
}

func TestConflictingSupplyPins(t *testing.T) {
	c := New("conflict")
	c.AddV("v1", "n", "0", waveform.DC(1))
	c.AddV("v2", "n", "0", waveform.DC(2))
	if _, err := Stamp(c, StampOptions{CollapseSupplies: true}); err == nil {
		t.Fatal("expected error for conflicting pinned voltages")
	}
}

func TestElementValidation(t *testing.T) {
	c := New("bad")
	if err := c.AddR("r", "a", "b", 0); err == nil {
		t.Error("zero resistance accepted")
	}
	if err := c.AddC("c", "a", "b", -1); err == nil {
		t.Error("negative capacitance accepted")
	}
	if err := c.AddL("l", "a", "b", 0); err == nil {
		t.Error("zero inductance accepted")
	}
}

func TestEvalBActiveMask(t *testing.T) {
	c := New("two loads")
	if err := c.AddR("r", "n", "0", 1); err != nil {
		t.Fatal(err)
	}
	c.AddI("i1", "n", "0", waveform.DC(1))
	c.AddI("i2", "n", "0", waveform.DC(10))
	sys, err := Stamp(c, StampOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, sys.N)
	sys.EvalB(0, b, nil)
	if math.Abs(b[0]+11) > 1e-12 {
		t.Errorf("full EvalB = %v, want -11", b[0])
	}
	mask := make([]bool, len(sys.Inputs))
	for k := range sys.Inputs {
		if sys.Inputs[k].Name == "i2" {
			mask[k] = true
		}
	}
	sys.EvalB(0, b, mask)
	if math.Abs(b[0]+10) > 1e-12 {
		t.Errorf("masked EvalB = %v, want -10", b[0])
	}
}

func TestVoltageUnknownNode(t *testing.T) {
	c := New("x")
	if err := c.AddR("r", "a", "0", 1); err != nil {
		t.Fatal(err)
	}
	sys, err := Stamp(c, StampOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Voltage(nil, "ghost"); err == nil {
		t.Error("expected error for unknown node")
	}
	if v, err := sys.Voltage(nil, "0"); err != nil || v != 0 {
		t.Errorf("ground voltage = %v, %v", v, err)
	}
}

func TestGTSFromInputs(t *testing.T) {
	c := New("gts")
	if err := c.AddR("r", "n", "0", 1); err != nil {
		t.Fatal(err)
	}
	c.AddI("i1", "n", "0", &waveform.Pulse{V2: 1, Delay: 1e-9, Rise: 1e-10, Width: 1e-10, Fall: 1e-10})
	sys, err := Stamp(c, StampOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gts := sys.GTS(10e-9)
	// 0, 1n, 1.1n, 1.2n, 1.3n, 10n
	if len(gts) != 6 {
		t.Fatalf("GTS = %v", gts)
	}
}

func TestGminFloatingNodeRescue(t *testing.T) {
	// A node connected only through a capacitor has no DC path; Gmin fixes it.
	c := New("float")
	if err := c.AddC("c1", "float", "0", 1e-12); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR("r1", "n", "0", 1); err != nil {
		t.Fatal(err)
	}
	c.AddI("i1", "n", "0", waveform.DC(1))
	if _, err := Stamp(c, StampOptions{}); err != nil {
		t.Fatal(err)
	}
	sysNoGmin, _ := Stamp(c, StampOptions{})
	if _, _, err := sysNoGmin.DC(sparse.FactorGPLU, sparse.OrderNatural); err == nil {
		t.Log("DC on floating node unexpectedly succeeded (dense zero column may still pivot)")
	}
	sys, _ := Stamp(c, StampOptions{Gmin: 1e-12})
	if _, _, err := sys.DC(sparse.FactorGPLU, sparse.OrderNatural); err != nil {
		t.Errorf("Gmin-stabilized DC failed: %v", err)
	}
}

func TestNodeNames(t *testing.T) {
	c := New("names")
	if err := c.AddR("r1", "a", "b", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR("r2", "b", "0", 1); err != nil {
		t.Fatal(err)
	}
	sys, err := Stamp(c, StampOptions{})
	if err != nil {
		t.Fatal(err)
	}
	names := sys.NodeNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("NodeNames = %v", names)
	}
}

func TestTimeVaryingVSourceKeepsMNARow(t *testing.T) {
	// A pulsed V source must not be collapsed even with CollapseSupplies on.
	c := New("pulse-v")
	c.AddV("vp", "n", "0", &waveform.Pulse{V1: 0, V2: 1, Delay: 1e-9, Rise: 1e-10, Width: 1e-9, Fall: 1e-10})
	if err := c.AddR("r", "n", "0", 100); err != nil {
		t.Fatal(err)
	}
	sys, err := Stamp(c, StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumNodes != 1 || sys.N != 2 {
		t.Fatalf("NumNodes=%d N=%d, want 1 node + 1 branch current", sys.NumNodes, sys.N)
	}
	x, _, err := sys.DC(sparse.FactorAuto, sparse.OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sys.Voltage(x, "n")
	if math.Abs(v) > 1e-12 {
		t.Errorf("V(n) at t=0 = %v, want 0 (pulse not started)", v)
	}
}
