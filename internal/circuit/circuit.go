// Package circuit models linear circuits (the PDN substrate of MATEX):
// element netlists of resistors, capacitors, inductors, voltage and current
// sources, their assembly into the modified nodal analysis (MNA) form
//
//	C·x'(t) = -G·x(t) + B·u(t)
//
// and DC operating-point analysis. Grounded DC voltage supplies can be
// collapsed out of the unknown vector (the standard power-grid trick that
// keeps G symmetric positive definite), which is what the TAU power-grid
// contest solvers and MATEX both rely on.
package circuit

import (
	"fmt"

	"github.com/matex-sim/matex/internal/waveform"
)

// Ground is the reserved ground node name. "gnd" is accepted as an alias.
const Ground = "0"

// Resistor is a two-terminal resistance in ohms.
type Resistor struct {
	Name string
	A, B string
	R    float64
}

// Capacitor is a two-terminal capacitance in farads.
type Capacitor struct {
	Name string
	A, B string
	C    float64
}

// Inductor is a two-terminal inductance in henries. It adds a branch-current
// unknown to the MNA system.
type Inductor struct {
	Name string
	A, B string
	L    float64
}

// VSource is an independent voltage source; the voltage of Pos relative to
// Neg follows Wave.
type VSource struct {
	Name     string
	Pos, Neg string
	Wave     waveform.Waveform
}

// ISource is an independent current source; a positive value drives current
// from Pos through the source to Neg (SPICE convention).
type ISource struct {
	Name     string
	Pos, Neg string
	Wave     waveform.Waveform
}

// Circuit is an element-level netlist.
type Circuit struct {
	Title      string
	Resistors  []Resistor
	Capacitors []Capacitor
	Inductors  []Inductor
	VSources   []VSource
	ISources   []ISource
}

// New returns an empty circuit.
func New(title string) *Circuit { return &Circuit{Title: title} }

// AddR appends a resistor; R must be positive.
func (c *Circuit) AddR(name, a, b string, r float64) error {
	if r <= 0 {
		return fmt.Errorf("circuit: resistor %s has non-positive resistance %g", name, r)
	}
	c.Resistors = append(c.Resistors, Resistor{Name: name, A: a, B: b, R: r})
	return nil
}

// AddC appends a capacitor; C must be positive.
func (c *Circuit) AddC(name, a, b string, cap float64) error {
	if cap <= 0 {
		return fmt.Errorf("circuit: capacitor %s has non-positive capacitance %g", name, cap)
	}
	c.Capacitors = append(c.Capacitors, Capacitor{Name: name, A: a, B: b, C: cap})
	return nil
}

// AddL appends an inductor; L must be positive.
func (c *Circuit) AddL(name, a, b string, l float64) error {
	if l <= 0 {
		return fmt.Errorf("circuit: inductor %s has non-positive inductance %g", name, l)
	}
	c.Inductors = append(c.Inductors, Inductor{Name: name, A: a, B: b, L: l})
	return nil
}

// AddV appends a voltage source.
func (c *Circuit) AddV(name, pos, neg string, w waveform.Waveform) {
	c.VSources = append(c.VSources, VSource{Name: name, Pos: pos, Neg: neg, Wave: w})
}

// AddI appends a current source.
func (c *Circuit) AddI(name, pos, neg string, w waveform.Waveform) {
	c.ISources = append(c.ISources, ISource{Name: name, Pos: pos, Neg: neg, Wave: w})
}

// NumElements returns the total element count.
func (c *Circuit) NumElements() int {
	return len(c.Resistors) + len(c.Capacitors) + len(c.Inductors) + len(c.VSources) + len(c.ISources)
}

// isGround reports whether a node name denotes the ground node.
func isGround(name string) bool {
	return name == Ground || name == "gnd" || name == "GND"
}
