package circuit

import (
	"fmt"
	"math"

	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/waveform"
)

// Input is one column of the MNA input term B·u(t): a sparse stamping pattern
// (Rows, Coefs) driven by a scalar waveform.
type Input struct {
	Rows  []int
	Coefs []float64
	Wave  waveform.Waveform
	// Supply marks DC voltage-supply contributions; MATEX keeps supplies in
	// the DC subtask and distributes only the load currents.
	Supply bool
	// Name is the originating element, for diagnostics.
	Name string
}

// System is the assembled MNA description C·x' = -G·x + B·u(t).
type System struct {
	N        int // total unknowns: free nodes + inductor currents + V-source currents
	NumNodes int // leading unknowns that are node voltages
	C, G     *sparse.CSC
	Inputs   []Input

	// nodeIndex maps node names to unknown indices; collapsed supply nodes
	// map into fixedValue instead.
	nodeIndex  map[string]int
	fixedValue map[string]float64
	title      string
}

// StampOptions controls MNA assembly.
type StampOptions struct {
	// CollapseSupplies removes grounded DC voltage sources from the unknown
	// vector, folding their effect into the right-hand side. This keeps G
	// symmetric (and typically positive definite) for RC power grids.
	CollapseSupplies bool
	// Gmin, when positive, adds a tiny conductance from every node to ground,
	// guarding against floating nodes. Zero disables it.
	Gmin float64
}

// Stamp assembles the MNA system from the circuit.
func Stamp(c *Circuit, opts StampOptions) (*System, error) {
	s := &System{
		nodeIndex:  make(map[string]int),
		fixedValue: make(map[string]float64),
		title:      c.Title,
	}

	// Pass 1: identify collapsed supply nodes.
	collapsedSrc := make([]bool, len(c.VSources))
	if opts.CollapseSupplies {
		for i, v := range c.VSources {
			dc, ok := v.Wave.(waveform.DC)
			if !ok {
				continue
			}
			switch {
			case isGround(v.Neg) && !isGround(v.Pos):
				if prev, dup := s.fixedValue[v.Pos]; dup && prev != float64(dc) {
					return nil, fmt.Errorf("circuit: node %s pinned to conflicting voltages %g and %g", v.Pos, prev, float64(dc))
				}
				s.fixedValue[v.Pos] = float64(dc)
				collapsedSrc[i] = true
			case isGround(v.Pos) && !isGround(v.Neg):
				if prev, dup := s.fixedValue[v.Neg]; dup && prev != -float64(dc) {
					return nil, fmt.Errorf("circuit: node %s pinned to conflicting voltages %g and %g", v.Neg, prev, -float64(dc))
				}
				s.fixedValue[v.Neg] = -float64(dc)
				collapsedSrc[i] = true
			}
		}
	}

	// Pass 2: number the free nodes in first-use order.
	intern := func(name string) int {
		if isGround(name) {
			return -1
		}
		if _, fixed := s.fixedValue[name]; fixed {
			return -2
		}
		if idx, ok := s.nodeIndex[name]; ok {
			return idx
		}
		idx := len(s.nodeIndex)
		s.nodeIndex[name] = idx
		return idx
	}
	forEachNode(c, func(name string) { intern(name) })
	s.NumNodes = len(s.nodeIndex)

	// Extra unknowns: inductor currents, then uncollapsed V-source currents.
	n := s.NumNodes
	indIdx := make([]int, len(c.Inductors))
	for i := range c.Inductors {
		indIdx[i] = n
		n++
	}
	vsrcIdx := make([]int, len(c.VSources))
	for i := range c.VSources {
		if collapsedSrc[i] {
			vsrcIdx[i] = -1
			continue
		}
		vsrcIdx[i] = n
		n++
	}
	s.N = n

	gT := sparse.NewTriplet(n, n)
	cT := sparse.NewTriplet(n, n)

	// nodeOf resolves a node name to (index, fixed voltage, kind).
	nodeOf := func(name string) (idx int, fixed float64, isFixed bool) {
		if isGround(name) {
			return -1, 0, false
		}
		if v, ok := s.fixedValue[name]; ok {
			return -1, v, true
		}
		return s.nodeIndex[name], 0, false
	}

	// Resistors.
	for _, r := range c.Resistors {
		g := 1 / r.R
		ai, av, afix := nodeOf(r.A)
		bi, bv, bfix := nodeOf(r.B)
		stampConductance(gT, s, ai, bi, g, afix, av, bfix, bv, r.Name)
	}
	// Gmin leak.
	if opts.Gmin > 0 {
		for i := 0; i < s.NumNodes; i++ {
			gT.Add(i, i, opts.Gmin)
		}
	}

	// Capacitors: a capacitor to a fixed DC rail behaves like a capacitor to
	// ground for the dynamics (the rail voltage is constant).
	for _, cap := range c.Capacitors {
		ai, _, afix := nodeOf(cap.A)
		bi, _, bfix := nodeOf(cap.B)
		switch {
		case ai >= 0 && bi >= 0:
			cT.Add(ai, ai, cap.C)
			cT.Add(bi, bi, cap.C)
			cT.Add(ai, bi, -cap.C)
			cT.Add(bi, ai, -cap.C)
		case ai >= 0:
			cT.Add(ai, ai, cap.C)
			_ = bfix
		case bi >= 0:
			cT.Add(bi, bi, cap.C)
			_ = afix
		}
	}

	// Inductors: branch current unknown iL with L·diL/dt = vA - vB.
	for k, l := range c.Inductors {
		iL := indIdx[k]
		ai, av, afix := nodeOf(l.A)
		bi, bv, bfix := nodeOf(l.B)
		cT.Add(iL, iL, l.L)
		// KCL: current iL leaves node A, enters node B.
		if ai >= 0 {
			gT.Add(ai, iL, 1)
			gT.Add(iL, ai, -1)
		}
		if bi >= 0 {
			gT.Add(bi, iL, -1)
			gT.Add(iL, bi, 1)
		}
		// Fixed rails contribute constant voltage to the branch equation.
		if afix && av != 0 {
			s.Inputs = append(s.Inputs, Input{
				Rows: []int{iL}, Coefs: []float64{av}, Wave: waveform.DC(1), Supply: true, Name: l.Name + ".railA",
			})
		}
		if bfix && bv != 0 {
			s.Inputs = append(s.Inputs, Input{
				Rows: []int{iL}, Coefs: []float64{-bv}, Wave: waveform.DC(1), Supply: true, Name: l.Name + ".railB",
			})
		}
	}

	// Voltage sources (uncollapsed).
	for k, v := range c.VSources {
		iv := vsrcIdx[k]
		if iv < 0 {
			continue
		}
		ai, av, afix := nodeOf(v.Pos)
		bi, bv, bfix := nodeOf(v.Neg)
		if ai >= 0 {
			gT.Add(ai, iv, 1)
			gT.Add(iv, ai, 1)
		}
		if bi >= 0 {
			gT.Add(bi, iv, -1)
			gT.Add(iv, bi, -1)
		}
		rows := []int{iv}
		coefs := []float64{1}
		s.Inputs = append(s.Inputs, Input{Rows: rows, Coefs: coefs, Wave: v.Wave, Supply: isDC(v.Wave), Name: v.Name})
		// Fixed rails shift the branch equation constant.
		if afix && av != 0 {
			s.Inputs = append(s.Inputs, Input{Rows: []int{iv}, Coefs: []float64{-av}, Wave: waveform.DC(1), Supply: true, Name: v.Name + ".railP"})
		}
		if bfix && bv != 0 {
			s.Inputs = append(s.Inputs, Input{Rows: []int{iv}, Coefs: []float64{bv}, Wave: waveform.DC(1), Supply: true, Name: v.Name + ".railN"})
		}
	}

	// Current sources: positive current flows Pos -> Neg through the source,
	// i.e. it is drawn out of Pos and injected into Neg.
	for _, src := range c.ISources {
		ai, _, _ := nodeOf(src.Pos)
		bi, _, _ := nodeOf(src.Neg)
		var rows []int
		var coefs []float64
		if ai >= 0 {
			rows = append(rows, ai)
			coefs = append(coefs, -1)
		}
		if bi >= 0 {
			rows = append(rows, bi)
			coefs = append(coefs, 1)
		}
		if len(rows) == 0 {
			continue // both terminals grounded/fixed: no effect on unknowns
		}
		s.Inputs = append(s.Inputs, Input{Rows: rows, Coefs: coefs, Wave: src.Wave, Supply: isDC(src.Wave), Name: src.Name})
	}

	s.G = gT.ToCSC()
	s.C = cT.ToCSC()
	return s, nil
}

// stampConductance stamps a conductance g between nodes ai and bi (index -1
// means ground or fixed). Connections to fixed rails become DC inputs.
func stampConductance(gT *sparse.Triplet, s *System, ai, bi int, g float64, afix bool, av float64, bfix bool, bv float64, name string) {
	switch {
	case ai >= 0 && bi >= 0:
		gT.Add(ai, ai, g)
		gT.Add(bi, bi, g)
		gT.Add(ai, bi, -g)
		gT.Add(bi, ai, -g)
	case ai >= 0:
		gT.Add(ai, ai, g)
		if bfix && bv != 0 {
			s.Inputs = append(s.Inputs, Input{Rows: []int{ai}, Coefs: []float64{g * bv}, Wave: waveform.DC(1), Supply: true, Name: name + ".rail"})
		}
	case bi >= 0:
		gT.Add(bi, bi, g)
		if afix && av != 0 {
			s.Inputs = append(s.Inputs, Input{Rows: []int{bi}, Coefs: []float64{g * av}, Wave: waveform.DC(1), Supply: true, Name: name + ".rail"})
		}
	}
}

// forEachNode visits every node name in the circuit.
func forEachNode(c *Circuit, fn func(string)) {
	for _, e := range c.Resistors {
		fn(e.A)
		fn(e.B)
	}
	for _, e := range c.Capacitors {
		fn(e.A)
		fn(e.B)
	}
	for _, e := range c.Inductors {
		fn(e.A)
		fn(e.B)
	}
	for _, e := range c.VSources {
		fn(e.Pos)
		fn(e.Neg)
	}
	for _, e := range c.ISources {
		fn(e.Pos)
		fn(e.Neg)
	}
}

func isDC(w waveform.Waveform) bool {
	_, ok := w.(waveform.DC)
	return ok
}

// EvalB accumulates dst = Σ B_k·u_k(t) over the inputs with active[k] true.
// active == nil means all inputs. dst is zeroed first.
func (s *System) EvalB(t float64, dst []float64, active []bool) {
	if len(dst) != s.N {
		panic("circuit: EvalB dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for k := range s.Inputs {
		if active != nil && !active[k] {
			continue
		}
		in := &s.Inputs[k]
		u := in.Wave.Value(t)
		if u == 0 {
			continue
		}
		for j, r := range in.Rows {
			dst[r] += in.Coefs[j] * u
		}
	}
}

// Waves returns the waveforms of all inputs, aligned with s.Inputs.
func (s *System) Waves() []waveform.Waveform {
	ws := make([]waveform.Waveform, len(s.Inputs))
	for i := range s.Inputs {
		ws[i] = s.Inputs[i].Wave
	}
	return ws
}

// GTS returns the global transition spots of all inputs over [0, tstop].
func (s *System) GTS(tstop float64) []float64 {
	return waveform.GTS(s.Waves(), tstop)
}

// NodeIndex returns the unknown index of the named node, or -1 with a fixed
// voltage when the node was collapsed onto a supply rail, or an error for an
// unknown name.
func (s *System) NodeIndex(name string) (idx int, fixed float64, isFixed bool, err error) {
	if isGround(name) {
		return -1, 0, true, nil
	}
	if v, ok := s.fixedValue[name]; ok {
		return -1, v, true, nil
	}
	if idx, ok := s.nodeIndex[name]; ok {
		return idx, 0, false, nil
	}
	return 0, 0, false, fmt.Errorf("circuit: unknown node %q", name)
}

// ResolveProbes maps probe node names onto unknown indices, dropping
// nodes collapsed onto supply rails (they carry no waveform). It returns
// the indices, the names actually kept (aligned with the indices), and
// the names skipped — the shared front half of cmd/matex's probe setup
// and the serve job builder, so the two stay consistent. An unknown name
// is an error.
func (s *System) ResolveProbes(names []string) (idx []int, kept, skipped []string, err error) {
	for _, name := range names {
		i, _, fixed, err := s.NodeIndex(name)
		if err != nil {
			return nil, nil, nil, err
		}
		if fixed {
			skipped = append(skipped, name)
			continue
		}
		idx = append(idx, i)
		kept = append(kept, name)
	}
	return idx, kept, skipped, nil
}

// NodeNames returns the free node names indexed by unknown number.
func (s *System) NodeNames() []string {
	names := make([]string, s.NumNodes)
	for name, idx := range s.nodeIndex {
		names[idx] = name
	}
	return names
}

// Voltage extracts the named node's voltage from a solution vector,
// resolving collapsed rails to their fixed values.
func (s *System) Voltage(x []float64, name string) (float64, error) {
	idx, fixed, isFixed, err := s.NodeIndex(name)
	if err != nil {
		return 0, err
	}
	if isFixed {
		return fixed, nil
	}
	return x[idx], nil
}

// DC computes the DC operating point: G·x = B·u(0) with capacitors open and
// inductors shorted (both already encoded in G). It returns the solution and
// the factorization of G for reuse (e.g. by the regularization-free MATEX
// input terms).
func (s *System) DC(kind sparse.FactorKind, order sparse.Ordering) ([]float64, sparse.Factorization, error) {
	f, err := sparse.Factor(s.G, kind, order)
	if err != nil {
		return nil, nil, fmt.Errorf("circuit: DC factorization failed: %w", err)
	}
	b := make([]float64, s.N)
	s.EvalB(0, b, nil)
	x := make([]float64, s.N)
	f.Solve(x, b)
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, nil, fmt.Errorf("circuit: DC solution is not finite")
		}
	}
	return x, f, nil
}
