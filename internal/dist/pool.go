package dist

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/transient"
)

// Request is the solver configuration shared by every subtask of one
// distributed run. It is wire-friendly: everything a remote worker needs to
// reproduce the scheduler's transient.Options except the shared
// factorizations and Krylov arenas, which never travel (workers keep their
// own).
type Request struct {
	Method                  transient.Method
	Tstop, Step, Tol, Gamma float64
	MaxDim                  int
	Probes                  []int
	// EvalTimes is the shared GTS output grid every node emits snapshots on.
	EvalTimes  []float64
	FactorKind sparse.FactorKind
	Ordering   sparse.Ordering
	// Krylov is the subspace process every node runs (auto / arnoldi /
	// lanczos; see krylov.Method).
	Krylov krylov.Method
	// SolveWorkers is the per-solve goroutine budget on every node (0/1 =
	// sequential; workers may substitute a local default for 0).
	SolveWorkers int
}

// TaskResult is one solved subtask.
type TaskResult struct {
	// Result is the zero-state group response sampled on the GTS grid.
	Result *transient.Result
	// Elapsed is the node's wall time for the subtask, all phases.
	Elapsed time.Duration
	// Retried counts re-dispatches after worker failures before success.
	Retried int
}

// Pool runs subtasks somewhere: in-process goroutines (the default) or
// matexd workers over TCP (NewRPCPool). Solve must be safe for concurrent
// use; the scheduler issues up to Config.Workers calls at once. ctx cancels
// the subtask: in-process pools abort the integration, the RPC pool stops
// waiting for the reply (the remote worker finishes on its own).
type Pool interface {
	Solve(ctx context.Context, task Task, req Request) (*TaskResult, error)
	// Close releases pool resources (network connections). The in-process
	// pool has none.
	Close() error
}

// localPool solves subtasks in-process. All subtasks share the zero-based
// system view, one factorization cache and one Krylov workspace pool, since
// every node operates on the same matrices — the in-process analogue of the
// paper's cluster handing each machine the same netlist. The cache's
// singleflight lookup means concurrent subtasks needing the same operator
// (G, or C + γG for R-MATEX) wait for one factorization instead of
// duplicating it; the workspace pool hands each concurrent subtask an
// exclusive arena and lets later subtasks reuse the buffers of finished
// ones, so a long distributed run stops allocating per spot.
type localPool struct {
	sub        *circuit.System
	cache      *sparse.Cache
	workspaces *krylov.WorkspacePool
}

// newLocalPool wraps sys for zero-state subtasks sharing cache.
func newLocalPool(sys *circuit.System, cache *sparse.Cache) *localPool {
	return &localPool{sub: zeroStateSystem(sys), cache: cache, workspaces: krylov.NewWorkspacePool()}
}

// Solve implements Pool.
func (p *localPool) Solve(ctx context.Context, task Task, req Request) (*TaskResult, error) {
	start := time.Now()
	opts := subtaskOptions(ctx, p.sub, task, req, p.cache, p.workspaces)
	res, err := transient.Simulate(p.sub, req.Method, opts)
	if err != nil {
		return nil, fmt.Errorf("dist: group %d: %w", task.GroupID, err)
	}
	return &TaskResult{Result: res, Elapsed: time.Since(start)}, nil
}

// Close implements Pool.
func (p *localPool) Close() error { return nil }

// dispatcher fans tasks out over a pool with bounded concurrency and
// collects results in task order.
type dispatcher struct {
	pool    Pool
	workers int

	mu       sync.Mutex
	results  []*TaskResult
	firstErr error
}

func (d *dispatcher) run(ctx context.Context, tasks []Task, req Request) ([]*TaskResult, error) {
	d.results = make([]*TaskResult, len(tasks))
	sem := make(chan struct{}, d.workers)
	var wg sync.WaitGroup
	for i, task := range tasks {
		// Stop dispatching once the run is canceled; in-flight subtasks see
		// the same context and abort on their own.
		if err := ctx.Err(); err != nil {
			d.mu.Lock()
			if d.firstErr == nil {
				d.firstErr = fmt.Errorf("dist: run canceled: %w", err)
			}
			d.mu.Unlock()
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, task Task) {
			defer wg.Done()
			defer func() { <-sem }()
			tr, err := d.pool.Solve(ctx, task, req)
			d.mu.Lock()
			defer d.mu.Unlock()
			if err != nil {
				if d.firstErr == nil {
					d.firstErr = err
				}
				return
			}
			d.results[i] = tr
		}(i, task)
	}
	wg.Wait()
	if d.firstErr != nil {
		return nil, d.firstErr
	}
	return d.results, nil
}
