package dist

import (
	"context"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/transient"
	"github.com/matex-sim/matex/internal/waveform"
)

// Task is one superposition subtask: the indices of the system inputs that
// form one bump-feature group, simulated together on one node.
type Task struct {
	// GroupID numbers the group (the paper's "Group #"), in first-appearance
	// order over the system inputs.
	GroupID int
	// InputIdx are indices into the system's Inputs slice.
	InputIdx []int
}

// Partition groups the system's time-varying inputs by transition-spot
// overlap: sources whose waveforms share a bump feature (identical delay,
// rise, width, fall, period — paper Fig. 3) or an identical transition
// signature land in the same group. Supply inputs (DC rails and static
// loads) carry no transient and stay with the DC baseline.
func Partition(sys *circuit.System, tstop float64) []Task {
	var cand []int
	var waves []waveform.Waveform
	for i := range sys.Inputs {
		if sys.Inputs[i].Supply {
			continue
		}
		cand = append(cand, i)
		waves = append(waves, sys.Inputs[i].Wave)
	}
	groups := waveform.Group(waves, tstop)
	tasks := make([]Task, len(groups))
	for g, members := range groups {
		idx := make([]int, len(members))
		for j, m := range members {
			idx[j] = cand[m]
		}
		tasks[g] = Task{GroupID: g, InputIdx: idx}
	}
	return tasks
}

// Config configures a distributed MATEX run.
type Config struct {
	// Method is the per-node integrator. The zero value defaults to R-MATEX,
	// the paper's choice: a fixed-step method needs Step set, so TRFixed
	// (Method's zero value) without a Step is read as "unset".
	Method transient.Method
	// Tstop is the simulation window in seconds.
	Tstop float64
	// Step is the fixed step, for the fixed-step baseline methods only; the
	// MATEX methods pick their steps from the transition spots.
	Step float64
	// Tol is the Krylov error budget ε (default 1e-6).
	Tol float64
	// Gamma is the rational shift γ for R-MATEX (default 1e-10).
	Gamma float64
	// MaxDim caps the Krylov dimension (default 256).
	MaxDim int
	// Probes lists unknown indices recorded at every GTS point.
	Probes []int
	// Workers bounds in-flight subtasks. Zero picks GOMAXPROCS; the Table 3
	// harness sets 1 so each node's runtime is measured contention-free.
	Workers int
	// FactorKind and Ordering select the sparse direct solver configuration,
	// applied identically on every node.
	FactorKind sparse.FactorKind
	Ordering   sparse.Ordering
	// Pool overrides where subtasks run. Nil uses an in-process goroutine
	// pool; NewRPCPool dispatches to matexd workers over TCP.
	Pool Pool
	// Cache, when non-nil, is the content-addressed factorization cache
	// shared by the scheduler's DC solve and every in-process subtask.
	// Reusing one Cache across repeated Run calls eliminates all
	// refactorization on later runs. Nil uses a run-local cache (subtasks
	// still share factorizations within the run). The cache never travels
	// over RPC: matexd workers keep their own per-process cache.
	Cache *sparse.Cache
	// Krylov selects the subspace process on every node (auto routes each
	// spot to the symmetric Lanczos fast path when it qualifies). It
	// travels with the subtask request, so matexd workers follow the
	// scheduler's choice.
	Krylov krylov.Method
	// SolveWorkers > 1 runs every node's triangular solves through the
	// factorization's level-scheduled parallel path with that many
	// goroutines (it travels with the subtask request; matexd workers may
	// substitute their own -solve-par default when it is 0). Note the
	// in-process pool already parallelizes across subtasks — per-solve
	// parallelism mainly pays on remote workers with idle cores or when
	// Groups < cores.
	SolveWorkers int
	// Ctx, when non-nil, cancels the run: the scheduler stops dispatching
	// subtasks once it fires, in-process subtasks abort at their next
	// step/segment boundary (transient.Options.Ctx), and RPC dispatches
	// return without waiting for their in-flight reply. The serving layer
	// uses it for per-job cancellation and deadlines. The context itself
	// never travels over the wire.
	Ctx context.Context
}

// withDefaults resolves zero-valued configuration fields.
//
//matex:ctx-root(embedding API default when the caller supplies no context)
func (c Config) withDefaults() Config {
	if c.Method == transient.TRFixed && c.Step <= 0 {
		c.Method = transient.RMATEX
	}
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.Gamma <= 0 {
		c.Gamma = 1e-10
	}
	if c.MaxDim <= 0 {
		c.MaxDim = 256
	}
	// Resolve the ordering once, here: previously the scheduler's own DC
	// factorization ran with the raw zero value (natural ordering) while
	// every subtask resolved it to RCM — inconsistent fill and, with a
	// shared cache, needlessly distinct cache keys.
	c.Ordering = c.Ordering.Resolve()
	return c
}

// Report carries the scheduling metrics of one distributed run, matching the
// columns the paper reports in Table 3.
type Report struct {
	// Groups is the number of bump-feature groups = computing nodes used.
	Groups int
	// DCTime is the one-shot DC operating point solve, paid before fan-out.
	DCTime time.Duration
	// MaxNodeTime is the slowest node's wall time over all its phases — the
	// distributed makespan (the paper's t_total is DCTime + MaxNodeTime).
	MaxNodeTime time.Duration
	// MaxNodeTrTime is the slowest node's transient phase alone (the paper's
	// t_R-MATEX).
	MaxNodeTrTime time.Duration
	// Retried counts subtask dispatches repeated after a worker failure.
	Retried int
	// TaskStats holds each subtask's solver work counters, indexed by
	// GroupID (the paper's per-node km comes from these).
	TaskStats []transient.Stats
}

// subtaskRequest builds the solver configuration shared by every subtask:
// zero state, the group's inputs only, outputs on the shared GTS grid.
func subtaskRequest(cfg Config, gts []float64) Request {
	return Request{
		Method:       cfg.Method,
		Tstop:        cfg.Tstop,
		Step:         cfg.Step,
		Tol:          cfg.Tol,
		Gamma:        cfg.Gamma,
		MaxDim:       cfg.MaxDim,
		Probes:       append([]int(nil), cfg.Probes...),
		EvalTimes:    gts,
		FactorKind:   cfg.FactorKind,
		Ordering:     cfg.Ordering,
		Krylov:       cfg.Krylov,
		SolveWorkers: cfg.SolveWorkers,
	}
}

// zeroStateSystem returns a view of sys whose time-varying inputs are
// zero-based (u_g(t) - u_g(0)): the waveform each subtask integrates from a
// zero initial state. The matrices are shared, not copied, so in-process
// factorizations remain valid for the view.
func zeroStateSystem(sys *circuit.System) *circuit.System {
	inputs := make([]circuit.Input, len(sys.Inputs))
	copy(inputs, sys.Inputs)
	for i := range inputs {
		if !inputs[i].Supply {
			inputs[i].Wave = waveform.ZeroBased{W: inputs[i].Wave}
		}
	}
	return &circuit.System{
		N:        sys.N,
		NumNodes: sys.NumNodes,
		C:        sys.C,
		G:        sys.G,
		Inputs:   inputs,
	}
}

// subtaskOptions assembles the transient.Options for one task against the
// zero-based system view. cache and workspaces are the node's shared
// resources: on the scheduler they are shared by every in-process subtask,
// on a matexd worker they are the worker's own (neither travels over RPC,
// like the paper's cluster machines) — so repeated subtasks reuse both the
// factorizations and the Krylov arenas of their predecessors. ctx (nil ok)
// cancels the subtask mid-integration; it is per-process too.
func subtaskOptions(ctx context.Context, sub *circuit.System, task Task, req Request, cache *sparse.Cache, workspaces *krylov.WorkspacePool) transient.Options {
	active := make([]bool, len(sub.Inputs))
	for _, k := range task.InputIdx {
		active[k] = true
	}
	return transient.Options{
		Tstop:        req.Tstop,
		Step:         req.Step,
		Probes:       req.Probes,
		EvalTimes:    req.EvalTimes,
		Tol:          req.Tol,
		Gamma:        req.Gamma,
		MaxDim:       req.MaxDim,
		FactorKind:   req.FactorKind,
		Ordering:     req.Ordering,
		ActiveInputs: active,
		InitialState: make([]float64, sub.N),
		Cache:        cache,
		Krylov:       req.Krylov,
		Workspaces:   workspaces,
		SolveWorkers: req.SolveWorkers,
		Ctx:          ctx,
	}
}
