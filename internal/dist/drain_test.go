package dist

import (
	"context"
	"errors"
	"net"
	"net/rpc"
	"testing"
	"time"

	"github.com/matex-sim/matex/internal/transient"
)

// TestDrainGroup: in-flight calls finish before drain returns, and new
// entrants are rejected once draining has begun.
func TestDrainGroup(t *testing.T) {
	var g drainGroup
	if !g.enter() {
		t.Fatal("fresh group rejected a call")
	}
	done := make(chan bool, 1)
	go func() { done <- g.drain(5 * time.Second) }()
	// Give drain a moment to flip the state, then verify rejection.
	deadline := time.After(2 * time.Second)
	for {
		g.mu.Lock()
		draining := g.draining
		g.mu.Unlock()
		if draining {
			break
		}
		select {
		case <-deadline:
			t.Fatal("drain never flipped the draining flag")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if g.enter() {
		t.Fatal("draining group admitted a new call")
	}
	select {
	case <-done:
		t.Fatal("drain returned while a call was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	g.exit()
	select {
	case emptied := <-done:
		if !emptied {
			t.Fatal("drain reported a timeout, want clean drain")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drain did not return after the last exit")
	}
}

// TestDrainGroupGraceTimeout: a stuck call makes drain give up after grace.
func TestDrainGroupGraceTimeout(t *testing.T) {
	var g drainGroup
	g.enter() // never exits
	if g.drain(30 * time.Millisecond) {
		t.Fatal("drain reported clean with a stuck call")
	}
}

// TestServeContextGracefulDrain: a canceled ServeContext lets a dispatched
// run finish, answers later calls with a draining error, and returns nil.
func TestServeContextGracefulDrain(t *testing.T) {
	sys := testSystem(t, 0.15)
	probes := testProbes(sys)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	ws := NewWorkerServer()
	go func() { served <- ServeContext(ctx, l, ws, 5*time.Second) }()

	pool, err := NewRPCPool(sys, []string{l.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	cfg := Config{Method: transient.RMATEX, Tstop: 5e-9, Probes: probes, Pool: pool}
	if _, _, err := Run(sys, cfg); err != nil {
		t.Fatalf("run before drain: %v", err)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("ServeContext returned %v after graceful drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeContext did not return after cancellation")
	}

	// The worker is gone: a fresh dispatch must fail (connection severed
	// and listener closed, so the redial buries the worker).
	if _, _, err := Run(sys, cfg); err == nil {
		t.Fatal("run against a drained worker succeeded")
	}
}

// TestWorkerRejectsWhileDraining: once draining, the RPC surface answers
// with the draining sentinel rather than hanging or solving.
func TestWorkerRejectsWhileDraining(t *testing.T) {
	ws := NewWorkerServer()
	ws.calls.drain(time.Millisecond)
	var reply RegisterReply
	err := ws.Register(&RegisterArgs{ID: 1}, &reply)
	if err == nil || !isDrainingError(err) {
		t.Fatalf("Register on draining worker: got %v, want draining error", err)
	}
	var sreply SolveReply
	err = ws.Solve(&SolveArgs{SystemID: 1}, &sreply)
	if err == nil || !isDrainingError(err) {
		t.Fatalf("Solve on draining worker: got %v, want draining error", err)
	}
	// The wire form (rpc.ServerError) must classify the same way.
	if !isDrainingError(rpc.ServerError(err.Error())) {
		t.Fatal("draining error not recognized in its rpc.ServerError form")
	}
}

// TestRunCtxCancel: a canceled config context aborts the distributed run
// with the context error.
func TestRunCtxCancel(t *testing.T) {
	sys := testSystem(t, 0.15)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Run(sys, Config{Method: transient.RMATEX, Tstop: 5e-9, Ctx: ctx})
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}
