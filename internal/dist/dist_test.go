package dist

import (
	"io"
	"math"
	"net"
	"sync"
	"testing"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/pdn"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/transient"
	"github.com/matex-sim/matex/internal/waveform"
)

// testSystem builds an ibmpg1t-scale grid, like the root benchmarks.
func testSystem(t *testing.T, scale float64) *circuit.System {
	t.Helper()
	spec, err := pdn.IBMCase("ibmpg1t", scale)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every subtask factors views of these matrices; catch a bad stamp here
	// rather than as a downstream solver failure.
	if err := sparse.CheckCSC(sys.C); err != nil {
		t.Fatalf("stamped C violates CSC invariants: %v", err)
	}
	if err := sparse.CheckCSC(sys.G); err != nil {
		t.Fatalf("stamped G violates CSC invariants: %v", err)
	}
	return sys
}

func testProbes(sys *circuit.System) []int {
	return []int{0, sys.NumNodes / 3, sys.NumNodes / 2, sys.NumNodes - 1}
}

// maxDeviation compares two probe traces sample by sample; the time grids
// must match exactly.
func maxDeviation(t *testing.T, a, b *transient.Result, nProbes int) float64 {
	t.Helper()
	if len(a.Times) != len(b.Times) {
		t.Fatalf("time grids differ: %d vs %d points", len(a.Times), len(b.Times))
	}
	var maxDiff float64
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			t.Fatalf("time grids differ at %d: %g vs %g", i, a.Times[i], b.Times[i])
		}
		for k := 0; k < nProbes; k++ {
			if d := math.Abs(a.Probes[i][k] - b.Probes[i][k]); d > maxDiff {
				maxDiff = d
			}
		}
	}
	return maxDiff
}

// TestDistPartition checks the decomposition against the bump features the
// pdn generator stamps.
func TestDistPartition(t *testing.T) {
	sys := testSystem(t, 0.25)
	tasks := Partition(sys, 10e-9)
	if len(tasks) < 2 {
		t.Fatalf("expected several bump-feature groups, got %d", len(tasks))
	}
	seen := make(map[int]bool)
	total := 0
	for g, task := range tasks {
		if task.GroupID != g {
			t.Errorf("task %d has GroupID %d", g, task.GroupID)
		}
		if len(task.InputIdx) == 0 {
			t.Errorf("group %d is empty", g)
		}
		for _, k := range task.InputIdx {
			if seen[k] {
				t.Errorf("input %d assigned to two groups", k)
			}
			seen[k] = true
			if sys.Inputs[k].Supply {
				t.Errorf("supply input %d (%s) in a transient group", k, sys.Inputs[k].Name)
			}
			total++
		}
	}
	want := 0
	for i := range sys.Inputs {
		if !sys.Inputs[i].Supply {
			want++
		}
	}
	if total != want {
		t.Errorf("partition covers %d of %d time-varying inputs", total, want)
	}
}

// TestDistSuperposition is the paper's correctness claim: the superposed
// distributed R-MATEX run matches a plain R-MATEX run of the full system on
// the same probes and grid.
func TestDistSuperposition(t *testing.T) {
	sys := testSystem(t, 0.25)
	probes := testProbes(sys)
	opts := transient.Options{Tstop: 10e-9, Tol: 1e-8, Gamma: 1e-10, Probes: probes}

	ref, err := transient.Simulate(sys, transient.RMATEX, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := Run(sys, Config{
		Method: transient.RMATEX, Tstop: 10e-9, Tol: 1e-8, Gamma: 1e-10, Probes: probes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups < 2 {
		t.Fatalf("degenerate decomposition: %d groups", rep.Groups)
	}
	if len(rep.TaskStats) != rep.Groups {
		t.Fatalf("TaskStats has %d entries for %d groups", len(rep.TaskStats), rep.Groups)
	}
	if d := maxDeviation(t, got, ref, len(probes)); d > 1e-6 {
		t.Errorf("superposition deviates %.3g V from the plain run (budget 1e-6)", d)
	}
	// The final full state superposes too.
	if len(got.Final) != sys.N {
		t.Fatalf("missing final state")
	}
	var dFinal float64
	for i := range got.Final {
		if d := math.Abs(got.Final[i] - ref.Final[i]); d > dFinal {
			dFinal = d
		}
	}
	if dFinal > 1e-6 {
		t.Errorf("final state deviates %.3g V", dFinal)
	}
}

// TestDistSuperpositionIMATEX covers the second spectral-transform path
// (shared G factorization, Eq. 5 formulation).
func TestDistSuperpositionIMATEX(t *testing.T) {
	sys := testSystem(t, 0.2)
	probes := testProbes(sys)
	ref, err := transient.Simulate(sys, transient.IMATEX, transient.Options{
		Tstop: 10e-9, Tol: 1e-8, Probes: probes,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Run(sys, Config{
		Method: transient.IMATEX, Tstop: 10e-9, Tol: 1e-8, Probes: probes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDeviation(t, got, ref, len(probes)); d > 1e-6 {
		t.Errorf("I-MATEX superposition deviates %.3g V (budget 1e-6)", d)
	}
}

// startWorker serves a WorkerServer on a loopback listener.
func startWorker(t *testing.T) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(l, NewWorkerServer())
	return l.Addr().String(), func() { l.Close() }
}

// TestDistRPCLoopback runs the same decomposition over two loopback TCP
// workers and demands bit-identical results to the in-process pool: both
// paths perform the identical computation in the identical order.
func TestDistRPCLoopback(t *testing.T) {
	sys := testSystem(t, 0.2)
	probes := testProbes(sys)
	cfg := Config{Method: transient.RMATEX, Tstop: 10e-9, Tol: 1e-7, Gamma: 1e-10, Probes: probes}

	local, repL, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}

	addr1, stop1 := startWorker(t)
	defer stop1()
	addr2, stop2 := startWorker(t)
	defer stop2()
	pool, err := NewRPCPool(sys, []string{addr1, addr2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	cfg.Pool = pool
	remote, repR, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if repR.Groups != repL.Groups {
		t.Fatalf("group count differs: %d vs %d", repR.Groups, repL.Groups)
	}
	if repR.Retried != 0 {
		t.Errorf("unexpected retries on healthy workers: %d", repR.Retried)
	}
	if d := maxDeviation(t, remote, local, len(probes)); d != 0 {
		t.Errorf("TCP round-trip deviates %.3g V from in-process (want bit-identical)", d)
	}
}

// killableProxy forwards TCP bytes to a target until Kill is called, then
// severs every connection — a worker machine dying mid-task.
type killableProxy struct {
	l      net.Listener
	target string

	mu     sync.Mutex
	killed bool
	conns  []net.Conn
}

func newKillableProxy(t *testing.T, target string) *killableProxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killableProxy{l: l, target: target}
	go p.acceptLoop()
	return p
}

func (p *killableProxy) addr() string { return p.l.Addr().String() }

func (p *killableProxy) acceptLoop() {
	for {
		conn, err := p.l.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.killed {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.conns = append(p.conns, conn, up)
		p.mu.Unlock()
		go func() { io.Copy(up, conn); up.Close() }()
		go func() { io.Copy(conn, up); conn.Close() }()
	}
}

// Kill severs all live connections and refuses new ones.
func (p *killableProxy) Kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.killed = true
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
	p.l.Close()
}

// TestDistWorkerFailureRetry kills one of two workers after registration;
// every subtask it had been assigned must be re-dispatched to the survivor,
// surface in Report.Retried, and the result must still match in-process.
func TestDistWorkerFailureRetry(t *testing.T) {
	sys := testSystem(t, 0.2)
	probes := testProbes(sys)
	cfg := Config{Method: transient.RMATEX, Tstop: 10e-9, Tol: 1e-7, Gamma: 1e-10, Probes: probes}

	local, _, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}

	addrReal, stopReal := startWorker(t)
	defer stopReal()
	addrVictim, stopVictim := startWorker(t)
	defer stopVictim()
	proxy := newKillableProxy(t, addrVictim)

	pool, err := NewRPCPool(sys, []string{proxy.addr(), addrReal})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// The victim dies after registration, before (and so also "during") its
	// first subtask: every dispatch routed to it must fail over.
	proxy.Kill()

	cfg.Pool = pool
	remote, rep, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retried == 0 {
		t.Errorf("worker death did not surface in Report.Retried")
	}
	if d := maxDeviation(t, remote, local, len(probes)); d != 0 {
		t.Errorf("failover run deviates %.3g V from in-process", d)
	}
}

// TestDistRPCPoolRejectsDeadAddress: construction fails fast when a worker
// is unreachable, instead of deferring the surprise to Solve.
func TestDistRPCPoolRejectsDeadAddress(t *testing.T) {
	sys := testSystem(t, 0.1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()
	if _, err := NewRPCPool(sys, []string{dead}); err == nil {
		t.Fatal("NewRPCPool succeeded against a closed listener")
	}
}

// TestDistNoTransientSources: a purely static system decomposes into zero
// groups and returns the DC baseline on the [0, tstop] grid.
func TestDistNoTransientSources(t *testing.T) {
	ckt := circuit.New("static")
	if err := ckt.AddR("r1", "a", "0", 100); err != nil {
		t.Fatal(err)
	}
	if err := ckt.AddC("c1", "a", "0", 1e-12); err != nil {
		t.Fatal(err)
	}
	ckt.AddI("i1", "a", "0", waveform.DC(1e-3))
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := Run(sys, Config{Method: transient.RMATEX, Tstop: 1e-9, Probes: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups != 0 {
		t.Fatalf("static system produced %d groups", rep.Groups)
	}
	if len(res.Times) == 0 {
		t.Fatal("empty trace")
	}
	want := res.Probes[0][0]
	for i := range res.Times {
		if res.Probes[i][0] != want {
			t.Fatalf("static response drifts at t=%g", res.Times[i])
		}
	}
}

// TestDistFixedStepInterpolatedOntoGTS covers the misaligned-grid path of
// addProbes: fixed-step subtasks emit their own step grid (including the
// shortened final step landing exactly on Tstop), which Run linearly
// interpolates onto the GTS output grid. The distributed result must match
// an undistributed fixed-step reference interpolated the same way — and the
// superposed Final states must agree at Tstop, which the old round-to-
// nearest step count broke for non-divisible Tstop/Step.
func TestDistFixedStepInterpolatedOntoGTS(t *testing.T) {
	sys := testSystem(t, 0.2)
	probes := testProbes(sys)
	const tstop, step = 10e-9, 0.7e-9 // 10/0.7 is not an integer

	ref, err := transient.Simulate(sys, transient.TRFixed, transient.Options{
		Tstop: tstop, Step: step, Probes: probes,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := Run(sys, Config{
		Method: transient.TRFixed, Tstop: tstop, Step: step, Probes: probes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups < 2 {
		t.Fatalf("degenerate decomposition: %d groups", rep.Groups)
	}
	// The GTS grid does not coincide with the 0.7ns step grid, so this run
	// exercised the interpolation branch; compare against the reference
	// interpolated onto the same GTS times.
	var maxDiff float64
	for i, tt := range got.Times {
		for k := range probes {
			want := ref.InterpProbe(tt, k)
			if d := math.Abs(got.Probes[i][k] - want); d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 1e-6 {
		t.Errorf("interpolated fixed-step superposition deviates %.3g V (budget 1e-6)", maxDiff)
	}
	// Superposed Final is the state at Tstop exactly.
	var dFinal float64
	for i := range got.Final {
		if d := math.Abs(got.Final[i] - ref.Final[i]); d > dFinal {
			dFinal = d
		}
	}
	if dFinal > 1e-6 {
		t.Errorf("final state deviates %.3g V at Tstop", dFinal)
	}
}

// TestDistRepeatedRunZeroFactorizations is the distributed acceptance test
// for the factorization cache: against the same WorkerServer, with the
// scheduler reusing one Config.Cache, the second Run must perform zero new
// factorizations anywhere — the workers serve every operator from their
// per-process cache and the scheduler's DC factorization hits too.
func TestDistRepeatedRunZeroFactorizations(t *testing.T) {
	sys := testSystem(t, 0.2)
	probes := testProbes(sys)

	addr, stop := startWorker(t)
	defer stop()
	pool, err := NewRPCPool(sys, []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	cfg := Config{
		Method: transient.RMATEX, Tstop: 10e-9, Tol: 1e-7, Gamma: 1e-10,
		Probes: probes, Pool: pool, Cache: sparse.NewCache(0),
	}
	first, _, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Factorizations == 0 {
		t.Fatal("first run reports no factorizations at all")
	}
	second, _, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Factorizations != 0 {
		t.Errorf("second run against the same worker factorized %d times, want 0",
			second.Stats.Factorizations)
	}
	if second.Stats.CacheHits == 0 {
		t.Error("second run recorded no cache hits")
	}
	if d := maxDeviation(t, second, first, len(probes)); d != 0 {
		t.Errorf("cached repeat deviates %.3g V (want bit-identical)", d)
	}
}

// TestDistLocalPoolSharesFactorizations: even without a caller cache, one
// in-process Run factorizes G and (C+γG) exactly once across all subtasks.
func TestDistLocalPoolSharesFactorizations(t *testing.T) {
	sys := testSystem(t, 0.2)
	res, rep, err := Run(sys, Config{
		Method: transient.RMATEX, Tstop: 10e-9, Tol: 1e-7, Gamma: 1e-10,
		Probes: testProbes(sys),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups < 2 {
		t.Fatalf("degenerate decomposition: %d groups", rep.Groups)
	}
	// One G (DC) + one C+γG, regardless of group count.
	if res.Stats.Factorizations != 2 {
		t.Errorf("in-process run factorized %d times for %d groups, want 2",
			res.Stats.Factorizations, rep.Groups)
	}
	if res.Stats.CacheHits == 0 {
		t.Error("subtasks recorded no cache hits on the shared pool cache")
	}
}

// TestDistKrylovLanczos: the Krylov method travels with the request, the
// zero-state subtasks take the fast path on their quiet segments, and the
// superposed waveform matches the pinned-Arnoldi distributed run to the
// solver tolerance class.
func TestDistKrylovLanczos(t *testing.T) {
	sys := testSystem(t, 0.25)
	probes := testProbes(sys)
	ref, _, err := Run(sys, Config{
		Method: transient.RMATEX, Tstop: 10e-9, Tol: 1e-9, Probes: probes,
		Krylov: krylov.MethodArnoldi,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.LanczosSpots != 0 {
		t.Fatalf("arnoldi-pinned run aggregated %d Lanczos spots", ref.Stats.LanczosSpots)
	}
	res, _, err := Run(sys, Config{
		Method: transient.RMATEX, Tstop: 10e-9, Tol: 1e-9, Probes: probes,
		Krylov: krylov.MethodLanczos,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LanczosSpots == 0 {
		t.Error("distributed run aggregated no Lanczos spots (zero-state subtasks are mostly flat segments)")
	}
	var scale float64 = 1
	for i := range ref.Times {
		for k := range probes {
			if a := math.Abs(ref.Probes[i][k]); a > scale {
				scale = a
			}
		}
	}
	if d := maxDeviation(t, res, ref, len(probes)); d > 1e-8*scale {
		t.Errorf("lanczos vs arnoldi distributed waveforms differ by %g (scale %g)", d, scale)
	}
}
