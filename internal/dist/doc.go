// Package dist implements the distributed MATEX framework of the paper
// (Fig. 4): the transient simulation of a power distribution network is
// decomposed by the "bump features" of its input current sources (Fig. 3),
// each source group is simulated as an independent zero-state subtask on a
// computing node, and the group responses are superposed with the DC
// operating point to recover the full solution.
//
// The decomposition is exact for the linear MNA system C·x' = -G·x + B·u(t):
// with x_DC the DC operating point (G·x_DC = B·u(0)),
//
//	x(t) = x_DC + Σ_g x_g(t),
//
// where x_g is the zero-state response to the zero-based group input
// u_g(t) - u_g(0). Sources sharing a bump feature transition at the same
// local spots (LTS), so one node simulates them together at no extra Krylov
// subspace generations; every node emits snapshots on the shared global
// transition spot (GTS) grid by substitution-free subspace reuse, and the
// scheduler sums them.
//
// Run (run.go) drives the whole flow: Partition extracts bump features and
// builds Tasks (dist.go), the scheduler places them on a Pool, and
// superposition folds the responses. Two Pool implementations ship: the
// in-process goroutine pool (pool.go, the default) and the net/rpc client
// pool over matexd workers (rpc.go, server.go; see NewRPCPool, Serve and
// cmd/matexd). Workers share the factorization cache of their process, so
// co-located subtasks against one grid factor once.
//
// Report carries per-node wall times and work counters, feeding the
// speedup tables in EXPERIMENTS.md.
package dist
