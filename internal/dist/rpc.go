package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/faultinject"
)

// PoolOptions configures the RPC pool's transport resilience. The zero
// value reproduces sane defaults: 10s dials, three redial attempts spread
// over ~50ms..2s exponential backoff with jitter, no per-attempt solve
// deadline, no background health probing.
type PoolOptions struct {
	// DialTimeout bounds every dial — construction, mid-run revival, health
	// probes. Zero defaults to 10s.
	DialTimeout time.Duration
	// AttemptTimeout, when positive, bounds a single Solve dispatch on one
	// worker: past it the worker's connection is severed and the subtask is
	// re-dispatched elsewhere, so one stuck worker cannot stall a whole
	// superposition. Zero disables the bound (subtask runtimes vary by
	// orders of magnitude with system size; callers opt in with a budget
	// they derive from their own deadline).
	AttemptTimeout time.Duration
	// BackoffBase/BackoffMax shape the capped exponential redial backoff:
	// attempt i sleeps min(BackoffBase·2^i, BackoffMax), scaled by ±25%
	// jitter. Defaults 50ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// RedialAttempts is how many backed-off redials a failed worker gets
	// before it is buried (the health prober may still re-admit it later).
	// Zero defaults to 3.
	RedialAttempts int
	// HealthInterval, when positive, runs a background prober that redials
	// buried workers every interval and re-admits them on success — a
	// restarted matexd rejoins the rotation without waiting for a task to
	// fail onto it. Zero disables probing.
	HealthInterval time.Duration
	// Seed seeds the jitter PRNG; the zero value uses a fixed seed, keeping
	// retry timing reproducible by default.
	Seed int64
	// Fault is the fault-injection registry consulted at the pool's dial and
	// dispatch points (faultinject.DialFail, faultinject.RPCSever). Nil — the
	// production value — injects nothing.
	Fault *faultinject.Registry
}

func (o PoolOptions) withDefaults() PoolOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.RedialAttempts <= 0 {
		o.RedialAttempts = 3
	}
	return o
}

// rpcWorker is one matexd connection with its liveness state.
type rpcWorker struct {
	addr   string
	client *rpc.Client
	dead   bool
	// revMu serializes revival of this worker: concurrent Solve goroutines
	// that saw the same connection fail queue up on it, and every waiter
	// after the first finds the client already swapped (or the worker
	// buried) and walks away without dialing.
	revMu sync.Mutex
}

// rpcPool dispatches subtasks to matexd workers over TCP. Subtasks are
// spread round-robin; a worker whose transport fails mid-task is redialed
// with capped exponential backoff and otherwise buried, and the task is
// re-dispatched to the next live worker (counted in TaskResult.Retried,
// surfaced via Report.Retried). An optional background prober re-admits
// buried workers once they answer dials again.
type rpcPool struct {
	id   uint64
	blob []byte
	opts PoolOptions

	// baseCtx scopes the pool's background work (health probing, revival
	// dial cancellation) to the context the pool was created under.
	baseCtx context.Context

	mu      sync.Mutex
	workers []*rpcWorker
	next    int
	rng     *rand.Rand

	stopOnce sync.Once
	stop     chan struct{}
	healthWG sync.WaitGroup
}

// NewRPCPool connects to matexd workers and registers the system's
// zero-based subtask circuit with each of them, with default PoolOptions.
// Every address must be reachable at construction time; failures during
// Solve are retried on the remaining workers instead.
//
//matex:ctx-root(legacy constructor for callers without a context; NewRPCPoolContext is the primary entry)
func NewRPCPool(sys *circuit.System, addrs []string) (Pool, error) {
	return NewRPCPoolContext(context.Background(), sys, addrs, PoolOptions{})
}

// NewRPCPoolContext is NewRPCPool under a context and explicit transport
// options: ctx bounds the construction dials and scopes the pool's
// background health prober, which stops when ctx fires or the pool closes.
func NewRPCPoolContext(ctx context.Context, sys *circuit.System, addrs []string, opts PoolOptions) (Pool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dist: NewRPCPool needs at least one worker address")
	}
	if ctx == nil {
		return nil, fmt.Errorf("dist: NewRPCPoolContext needs a context (use context.Background() explicitly)")
	}
	blob, err := encodeSystem(sys)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	p := &rpcPool{
		id:      fingerprint(blob),
		blob:    blob,
		opts:    opts,
		baseCtx: ctx,
		rng:     rand.New(rand.NewSource(opts.Seed ^ 0x6d617465)), // fixed default seed
		stop:    make(chan struct{}),
	}
	for _, addr := range addrs {
		client, err := p.dial(ctx, addr)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("dist: worker %s: %w", addr, err)
		}
		p.workers = append(p.workers, &rpcWorker{addr: addr, client: client})
	}
	if opts.HealthInterval > 0 {
		p.healthWG.Add(1)
		go p.healthLoop()
	}
	return p, nil
}

// dial connects to one worker under the pool's dial timeout and ensures it
// holds the system: it probes by ID first and ships the blob only if the
// worker lacks it. The context cancels the TCP dial immediately (a canceled
// job no longer blocks in a dial for the full timeout).
func (p *rpcPool) dial(ctx context.Context, addr string) (*rpc.Client, error) {
	if err := p.opts.Fault.Check(faultinject.DialFail); err != nil {
		return nil, err
	}
	dctx, cancel := context.WithTimeout(ctx, p.opts.DialTimeout)
	defer cancel()
	var d net.Dialer
	conn, err := d.DialContext(dctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	client := rpc.NewClient(conn)
	var reply RegisterReply
	if err := client.Call(rpcService+".Register", &RegisterArgs{ID: p.id}, &reply); err != nil {
		client.Close()
		return nil, fmt.Errorf("probing system registration: %w", err)
	}
	if !reply.Known {
		if err := client.Call(rpcService+".Register", &RegisterArgs{ID: p.id, Blob: p.blob}, &reply); err != nil {
			client.Close()
			return nil, fmt.Errorf("registering system: %w", err)
		}
	}
	return client, nil
}

// errAttemptTimeout marks a dispatch that outlived PoolOptions.AttemptTimeout;
// classified as a transport failure so the subtask moves to another worker.
var errAttemptTimeout = errors.New("dist: solve attempt deadline exceeded")

// Solve implements Pool.
func (p *rpcPool) Solve(ctx context.Context, task Task, req Request) (*TaskResult, error) {
	args := &SolveArgs{SystemID: p.id, Task: task, Req: req}
	retried := 0
	var lastErr error
	// Every worker gets at most two chances for this task: its original
	// dispatch and one more after a successful mid-task revival (a restarted
	// matexd), so a flapping worker cannot trap the task in a retry loop.
	for attempt := 0; attempt < 2*p.size(); attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dist: group %d canceled: %w", task.GroupID, err)
		}
		w, client := p.pick()
		if w == nil {
			break
		}
		start := time.Now()
		var reply SolveReply
		call := client.Go(rpcService+".Solve", args, &reply, make(chan *rpc.Call, 1))
		if p.opts.Fault.Hit(faultinject.RPCSever) {
			// Injected mid-RPC connection drop: the request is on the wire
			// (the worker may well complete it) but the reply path is gone —
			// exactly what a TCP reset mid-call looks like from here.
			client.Close()
		}
		var deadline <-chan time.Time
		if p.opts.AttemptTimeout > 0 {
			timer := time.NewTimer(p.opts.AttemptTimeout)
			defer timer.Stop()
			deadline = timer.C
		}
		var err error
		select {
		case <-ctx.Done():
			// The reply (if any) is abandoned; the worker finishes the
			// subtask on its own and keeps its cache warm for the next run.
			return nil, fmt.Errorf("dist: group %d canceled: %w", task.GroupID, ctx.Err())
		case <-deadline:
			// Stuck worker: sever its connection so the in-flight call
			// unblocks with ErrShutdown, then treat it like any transport
			// failure — revival dials it fresh, the task moves on.
			client.Close()
			<-call.Done
			err = errAttemptTimeout
		case done := <-call.Done:
			err = done.Error
		}
		if err == nil {
			return &TaskResult{Result: reply.Result, Elapsed: time.Since(start), Retried: retried}, nil
		}
		if isDrainingError(err) {
			// The worker is shutting down but its connection is healthy
			// and may still carry replies for our other in-flight
			// subtasks: retire it from the rotation WITHOUT closing the
			// shared client, and retry this task elsewhere.
			lastErr = err
			p.retire(w)
			retried++
			continue
		}
		if !isTransportError(err) && !errors.Is(err, errAttemptTimeout) {
			// The worker answered: a genuine solver failure, identical on
			// every node — re-dispatching cannot help.
			return nil, err
		}
		lastErr = err
		p.reviveOrBury(ctx, w, client)
		retried++
	}
	if lastErr == nil {
		lastErr = errors.New("no live workers")
	}
	return nil, fmt.Errorf("dist: group %d failed on all workers: %w", task.GroupID, lastErr)
}

// retire takes a draining worker out of the round-robin rotation without
// touching its connection: in-flight replies to other goroutines still
// travel over it, and the draining matexd severs it itself once idle. The
// client is eventually released by pool Close.
func (p *rpcPool) retire(w *rpcWorker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w.dead = true
}

// size returns the worker count (live or dead) — the retry attempt basis.
func (p *rpcPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// pick returns the next live worker round-robin with a snapshot of its
// client (connections are swapped under the lock on revival), or nil when
// none is left.
func (p *rpcPool) pick() (*rpcWorker, *rpc.Client) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < len(p.workers); i++ {
		w := p.workers[p.next%len(p.workers)]
		p.next++
		if !w.dead {
			return w, w.client
		}
	}
	return nil, nil
}

// backoff returns the jittered capped-exponential sleep for redial attempt i.
func (p *rpcPool) backoff(i int) time.Duration {
	d := p.opts.BackoffBase << uint(i)
	if d > p.opts.BackoffMax || d <= 0 {
		d = p.opts.BackoffMax
	}
	p.mu.Lock()
	jitter := 0.75 + 0.5*p.rng.Float64() // ±25%
	p.mu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// reviveOrBury handles a worker whose transport failed: up to
// PoolOptions.RedialAttempts redials under capped exponential backoff with
// jitter (a restarted matexd re-registers and lives on), else bury it —
// the health prober, when enabled, keeps probing buried workers. failed is
// the connection the caller observed failing; if another goroutine already
// revived or buried the worker, it is left alone. The sleeps hold no pool
// lock, so other workers dispatch undisturbed, and they abort as soon as
// ctx or the pool's base context fires.
func (p *rpcPool) reviveOrBury(ctx context.Context, w *rpcWorker, failed *rpc.Client) {
	w.revMu.Lock()
	defer w.revMu.Unlock()
	p.mu.Lock()
	stale := w.dead || w.client != failed
	p.mu.Unlock()
	if stale {
		return
	}
	failed.Close()
	for i := 0; i < p.opts.RedialAttempts; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				p.bury(w, failed)
				return
			case <-p.baseCtx.Done():
				p.bury(w, failed)
				return
			case <-p.stop:
				p.bury(w, failed)
				return
			case <-time.After(p.backoff(i - 1)):
			}
		}
		client, err := p.dial(ctx, w.addr)
		if err == nil {
			p.mu.Lock()
			w.client = client
			w.dead = false
			p.mu.Unlock()
			return
		}
	}
	p.bury(w, failed)
}

// bury marks a worker dead if its failed connection is still current.
func (p *rpcPool) bury(w *rpcWorker, failed *rpc.Client) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w.client == failed {
		w.dead = true
	}
}

// healthLoop is the background prober: every HealthInterval it redials the
// buried workers once each and re-admits the ones that answer. It exits when
// the pool closes or its base context fires.
func (p *rpcPool) healthLoop() {
	defer p.healthWG.Done()
	tick := time.NewTicker(p.opts.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-p.baseCtx.Done():
			return
		case <-tick.C:
			p.probeBuried()
		}
	}
}

// probeBuried attempts one dial per buried worker and revives on success.
func (p *rpcPool) probeBuried() {
	p.mu.Lock()
	var buried []*rpcWorker
	for _, w := range p.workers {
		if w.dead {
			buried = append(buried, w)
		}
	}
	p.mu.Unlock()
	for _, w := range buried {
		w.revMu.Lock()
		p.mu.Lock()
		dead := w.dead
		p.mu.Unlock()
		if !dead { // a Solve goroutine revived it meanwhile
			w.revMu.Unlock()
			continue
		}
		client, err := p.dial(p.baseCtx, w.addr)
		if err == nil {
			p.mu.Lock()
			if old := w.client; old != nil && old != client {
				old.Close()
			}
			w.client = client
			w.dead = false
			p.mu.Unlock()
		}
		w.revMu.Unlock()
	}
}

// Close implements Pool: it stops the health prober and closes every
// client, including retired and buried workers' (revival already closed the
// latter's connection — the second Close reports ErrShutdown, which is not
// an error here).
//
//matex:ctx-exempt(joins the pool's own background prober, bounded by the ticker interval)
func (p *rpcPool) Close() error {
	p.stopOnce.Do(func() { close(p.stop) })
	p.healthWG.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	var first error
	for _, w := range p.workers {
		if w.client == nil {
			continue
		}
		if err := w.client.Close(); err != nil && !errors.Is(err, rpc.ErrShutdown) && first == nil {
			first = err
		}
	}
	return first
}

// isDrainingError matches the answer of a gracefully-stopping worker (see
// WorkerServer drain support): the subtask is retried on another worker,
// and the redial attempt against the draining worker's closed listener
// buries it for the rest of the run.
func isDrainingError(err error) bool {
	return err != nil && strings.Contains(err.Error(), "worker is draining")
}

// isTransportError distinguishes a broken connection (retryable on another
// worker) from an error the remote solver returned (not retryable —
// rpc.ServerError values travel back over a healthy connection).
func isTransportError(err error) bool {
	var serverErr rpc.ServerError
	if errors.As(err, &serverErr) {
		return false
	}
	if errors.Is(err, rpc.ErrShutdown) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var netErr net.Error
	if errors.As(err, &netErr) {
		return true
	}
	var opErr *net.OpError
	return errors.As(err, &opErr)
}
