package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
)

// rpcWorker is one matexd connection with its liveness state.
type rpcWorker struct {
	addr   string
	client *rpc.Client
	dead   bool
}

// rpcPool dispatches subtasks to matexd workers over TCP. Subtasks are
// spread round-robin; a worker whose transport fails mid-task is redialed
// once and otherwise marked dead, and the task is re-dispatched to the next
// live worker (counted in TaskResult.Retried, surfaced via Report.Retried).
type rpcPool struct {
	id   uint64
	blob []byte

	mu      sync.Mutex
	workers []*rpcWorker
	next    int
}

// NewRPCPool connects to matexd workers and registers the system's
// zero-based subtask circuit with each of them. Every address must be
// reachable at construction time; failures during Solve are retried on the
// remaining workers instead.
func NewRPCPool(sys *circuit.System, addrs []string) (Pool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dist: NewRPCPool needs at least one worker address")
	}
	blob, err := encodeSystem(sys)
	if err != nil {
		return nil, err
	}
	p := &rpcPool{id: fingerprint(blob), blob: blob}
	for _, addr := range addrs {
		client, err := dialAndRegister(addr, p.id, blob)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("dist: worker %s: %w", addr, err)
		}
		p.workers = append(p.workers, &rpcWorker{addr: addr, client: client})
	}
	return p, nil
}

// dialAndRegister connects to one worker and ensures it holds the system:
// it probes by ID first and ships the blob only if the worker lacks it.
func dialAndRegister(addr string, id uint64, blob []byte) (*rpc.Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	client := rpc.NewClient(conn)
	var reply RegisterReply
	if err := client.Call(rpcService+".Register", &RegisterArgs{ID: id}, &reply); err != nil {
		client.Close()
		return nil, fmt.Errorf("probing system registration: %w", err)
	}
	if !reply.Known {
		if err := client.Call(rpcService+".Register", &RegisterArgs{ID: id, Blob: blob}, &reply); err != nil {
			client.Close()
			return nil, fmt.Errorf("registering system: %w", err)
		}
	}
	return client, nil
}

// Solve implements Pool.
func (p *rpcPool) Solve(ctx context.Context, task Task, req Request) (*TaskResult, error) {
	args := &SolveArgs{SystemID: p.id, Task: task, Req: req}
	retried := 0
	var lastErr error
	// Every worker gets at most two chances for this task: its original
	// dispatch and one more after a successful mid-task revival (a restarted
	// matexd), so a flapping worker cannot trap the task in a retry loop.
	for attempt := 0; attempt < 2*p.size(); attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dist: group %d canceled: %w", task.GroupID, err)
		}
		w, client := p.pick()
		if w == nil {
			break
		}
		start := time.Now()
		var reply SolveReply
		call := client.Go(rpcService+".Solve", args, &reply, make(chan *rpc.Call, 1))
		var err error
		select {
		case <-ctx.Done():
			// The reply (if any) is abandoned; the worker finishes the
			// subtask on its own and keeps its cache warm for the next run.
			return nil, fmt.Errorf("dist: group %d canceled: %w", task.GroupID, ctx.Err())
		case done := <-call.Done:
			err = done.Error
		}
		if err == nil {
			return &TaskResult{Result: reply.Result, Elapsed: time.Since(start), Retried: retried}, nil
		}
		if isDrainingError(err) {
			// The worker is shutting down but its connection is healthy
			// and may still carry replies for our other in-flight
			// subtasks: retire it from the rotation WITHOUT closing the
			// shared client, and retry this task elsewhere.
			lastErr = err
			p.retire(w)
			retried++
			continue
		}
		if !isTransportError(err) {
			// The worker answered: a genuine solver failure, identical on
			// every node — re-dispatching cannot help.
			return nil, err
		}
		lastErr = err
		p.reviveOrBury(w, client)
		retried++
	}
	if lastErr == nil {
		lastErr = errors.New("no live workers")
	}
	return nil, fmt.Errorf("dist: group %d failed on all workers: %w", task.GroupID, lastErr)
}

// retire takes a draining worker out of the round-robin rotation without
// touching its connection: in-flight replies to other goroutines still
// travel over it, and the draining matexd severs it itself once idle. The
// client is eventually released by pool Close.
func (p *rpcPool) retire(w *rpcWorker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w.dead = true
}

// size returns the worker count (live or dead) — the retry attempt basis.
func (p *rpcPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// pick returns the next live worker round-robin with a snapshot of its
// client (connections are swapped under the lock on revival), or nil when
// none is left.
func (p *rpcPool) pick() (*rpcWorker, *rpc.Client) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < len(p.workers); i++ {
		w := p.workers[p.next%len(p.workers)]
		p.next++
		if !w.dead {
			return w, w.client
		}
	}
	return nil, nil
}

// reviveOrBury handles a worker whose transport failed: one redial attempt
// (a restarted matexd re-registers and lives on), else mark it dead. failed
// is the connection the caller observed failing; if another goroutine
// already swapped it out, the worker is left alone.
func (p *rpcPool) reviveOrBury(w *rpcWorker, failed *rpc.Client) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w.dead || w.client != failed {
		return
	}
	failed.Close()
	client, err := dialAndRegister(w.addr, p.id, p.blob)
	if err != nil {
		w.dead = true
		return
	}
	w.client = client
}

// Close implements Pool. Every client is closed, including retired and
// buried workers' (reviveOrBury already closed the latter's connection —
// the second Close reports ErrShutdown, which is not an error here).
func (p *rpcPool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var first error
	for _, w := range p.workers {
		if w.client == nil {
			continue
		}
		if err := w.client.Close(); err != nil && !errors.Is(err, rpc.ErrShutdown) && first == nil {
			first = err
		}
	}
	return first
}

// isDrainingError matches the answer of a gracefully-stopping worker (see
// WorkerServer drain support): the subtask is retried on another worker,
// and the redial attempt against the draining worker's closed listener
// buries it for the rest of the run.
func isDrainingError(err error) bool {
	return err != nil && strings.Contains(err.Error(), "worker is draining")
}

// isTransportError distinguishes a broken connection (retryable on another
// worker) from an error the remote solver returned (not retryable —
// rpc.ServerError values travel back over a healthy connection).
func isTransportError(err error) bool {
	var serverErr rpc.ServerError
	if errors.As(err, &serverErr) {
		return false
	}
	if errors.Is(err, rpc.ErrShutdown) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var netErr net.Error
	if errors.As(err, &netErr) {
		return true
	}
	var opErr *net.OpError
	return errors.As(err, &opErr)
}
