package dist

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/faultinject"
	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/transient"
	"github.com/matex-sim/matex/internal/waveform"
)

// rpcService is the name the worker service registers under. The "2"
// marks the wire generation: sparse.Ordering values were renumbered when
// OrderDefault became the zero value, so a scheduler from this generation
// talking to an older matexd (or vice versa) would silently factorize
// under a different ordering. A distinct service name makes the mismatch a
// loud "can't find service" dial-time error instead.
const rpcService = "MatexWorker2"

func init() {
	// Concrete waveform types crossing the wire inside circuit.Input.Wave.
	gob.Register(waveform.DC(0))
	gob.Register(&waveform.Pulse{})
	gob.Register(&waveform.PWL{})
	gob.Register(waveform.Scaled{})
	gob.Register(waveform.Shifted{})
	gob.Register(waveform.ZeroBased{})
}

// wireSystem is the serialized form of the subtask system: exactly what a
// worker needs to run transient.Simulate — matrices and inputs, no node
// names. The inputs arrive already zero-based (see zeroStateSystem).
type wireSystem struct {
	N, NumNodes int
	C, G        *sparse.CSC
	Inputs      []circuit.Input
}

// encodeSystem gob-encodes the zero-based view of sys. The byte content
// also serves as the system's identity (see fingerprint).
func encodeSystem(sys *circuit.System) ([]byte, error) {
	sub := zeroStateSystem(sys)
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(wireSystem{
		N: sub.N, NumNodes: sub.NumNodes, C: sub.C, G: sub.G, Inputs: sub.Inputs,
	})
	if err != nil {
		return nil, fmt.Errorf("dist: encoding system: %w", err)
	}
	return buf.Bytes(), nil
}

// fingerprint hashes an encoded system (FNV-1a) into a registration ID, so
// re-registering the same circuit is idempotent across reconnects.
func fingerprint(blob []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range blob {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// RegisterArgs ships a circuit to a worker ahead of its subtasks.
type RegisterArgs struct {
	// ID is the fingerprint of Blob; subtasks refer to the system by it.
	ID uint64
	// Blob is the gob-encoded system (empty when probing with Known).
	Blob []byte
}

// RegisterReply acknowledges a registration.
type RegisterReply struct {
	// Known reports whether the worker now holds the system.
	Known bool
}

// SolveArgs is one subtask dispatch.
type SolveArgs struct {
	SystemID uint64
	Task     Task
	Req      Request
}

// SolveReply carries the subtask's zero-state response.
type SolveReply struct {
	Result *transient.Result
}

// workerSystem is a registered circuit. Its factorizations live in the
// server-wide cache, keyed by matrix content, so a worker factorizes G and
// (C + γG) once and reuses them across every subtask and every repeated
// scheduler run against the same circuit, like the paper's cluster nodes.
type workerSystem struct {
	sys *circuit.System
}

// WorkerServer is the net/rpc service run by a matexd worker: it holds the
// circuits it has been sent and solves the subtasks dispatched against
// them. Zero value is not usable; call NewWorkerServer.
type WorkerServer struct {
	mu      sync.Mutex
	systems map[uint64]*workerSystem
	cache   *sparse.Cache
	// workspaces is the worker's Krylov arena pool, shared across every
	// subtask and every scheduler run against this process — the
	// subspace-generation analogue of the factorization cache above.
	workspaces *krylov.WorkspacePool
	// solveWorkers is the worker-local per-solve goroutine default applied
	// when a request leaves SolveWorkers unset (matexd -solve-par).
	solveWorkers int
	// ordering is the worker-local default ordering applied when a request
	// arrives with OrderDefault (matexd -order).
	ordering sparse.Ordering
	// calls tracks in-flight RPC handlers so a draining worker (SIGTERM on
	// matexd, ServeContext cancellation) finishes what it started before
	// its connections are severed.
	calls drainGroup
	// faults is the injection registry (nil in production). A WorkerCrash
	// firing simulates kill -9: the crashing Solve call signals crashCh,
	// ServeContext severs every connection without draining, and the blocked
	// handler returns only after severed closes — so from the scheduler's
	// side the reply simply never arrives.
	faults    *faultinject.Registry
	crashOnce sync.Once
	crashCh   chan struct{}
	severOnce sync.Once
	severed   chan struct{}
}

// drainGroup counts in-flight calls and supports a one-way transition to a
// draining state in which new calls are rejected and a waiter can block
// until the in-flight ones finish. sync.WaitGroup alone cannot express this
// (Add after Wait races); the mutex+cond pair makes enter-vs-drain atomic.
type drainGroup struct {
	mu       sync.Mutex
	cond     *sync.Cond
	inflight int
	draining bool
}

// enter registers a call; it reports false once draining has begun, and the
// caller must then reject the call without doing work.
func (g *drainGroup) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.inflight++
	return true
}

// exit unregisters a call previously admitted by enter.
func (g *drainGroup) exit() {
	g.mu.Lock()
	g.inflight--
	if g.inflight == 0 {
		if g.cond != nil {
			g.cond.Broadcast()
		}
	}
	g.mu.Unlock()
}

// drain flips to the draining state and waits until the in-flight calls
// finish or the grace period expires; it reports whether the group
// emptied. The deadline is enforced by periodic broadcasts rather than a
// single timer shot, so a wakeup can never be permanently lost (a one-shot
// fired before the waiter parks would otherwise leave drain blocked on a
// stuck call forever).
func (g *drainGroup) drain(grace time.Duration) bool {
	g.mu.Lock()
	g.draining = true
	if g.cond == nil {
		g.cond = sync.NewCond(&g.mu)
	}
	g.mu.Unlock()

	deadline := time.Now().Add(grace)
	interval := grace / 10
	interval = min(max(interval, time.Millisecond), 100*time.Millisecond)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				g.mu.Lock()
				g.cond.Broadcast()
				g.mu.Unlock()
			case <-stop:
				return
			}
		}
	}()

	g.mu.Lock()
	defer g.mu.Unlock()
	for g.inflight > 0 && time.Now().Before(deadline) {
		g.cond.Wait()
	}
	return g.inflight == 0
}

// errDraining is what a worker answers once it has begun shutting down;
// the scheduler's retry loop recognizes it (isDrainingError) and routes
// the subtask to another worker instead of failing the run.
var errDraining = errors.New("dist: worker is draining (shutting down)")

// SetSolveWorkers sets the worker-local default per-solve goroutine budget
// for requests that do not specify one. Call before Serve.
func (w *WorkerServer) SetSolveWorkers(n int) { w.solveWorkers = n }

// SetOrdering sets the worker-local default fill-reducing ordering applied
// when a request arrives with OrderDefault (matexd -order). Call before
// Serve.
func (w *WorkerServer) SetOrdering(o sparse.Ordering) { w.ordering = o }

// NewWorkerServer returns an empty worker service for use with Serve, with
// a default-budget factorization cache.
func NewWorkerServer() *WorkerServer {
	return NewWorkerServerWithCache(sparse.NewCache(0))
}

// NewWorkerServerWithCache returns an empty worker service using the given
// factorization cache (nil allocates a default one). cmd/matexd uses this
// to honor its -cache-mb budget flag.
func NewWorkerServerWithCache(cache *sparse.Cache) *WorkerServer {
	if cache == nil {
		cache = sparse.NewCache(0)
	}
	return &WorkerServer{
		systems:    make(map[uint64]*workerSystem),
		cache:      cache,
		workspaces: krylov.NewWorkspacePool(),
		crashCh:    make(chan struct{}),
		severed:    make(chan struct{}),
	}
}

// SetFaults installs the fault-injection registry consulted at the worker's
// crash point (faultinject.WorkerCrash). Call before Serve; nil (the
// default) injects nothing.
func (w *WorkerServer) SetFaults(r *faultinject.Registry) { w.faults = r }

// crashed reports whether an injected WorkerCrash has fired.
func (w *WorkerServer) crashed() bool {
	select {
	case <-w.crashCh:
		return true
	default:
		return false
	}
}

// CacheStats reports the worker's factorization cache counters.
func (w *WorkerServer) CacheStats() sparse.CacheStats { return w.cache.Stats() }

// Register stores a circuit on the worker. With an empty Blob it only
// probes: Known reports whether the ID is already held (so a reconnecting
// scheduler can skip re-sending a large circuit).
func (w *WorkerServer) Register(args *RegisterArgs, reply *RegisterReply) error {
	if !w.calls.enter() {
		return errDraining
	}
	defer w.calls.exit()
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.systems[args.ID]; ok {
		reply.Known = true
		return nil
	}
	if len(args.Blob) == 0 {
		reply.Known = false
		return nil
	}
	if got := fingerprint(args.Blob); got != args.ID {
		return fmt.Errorf("dist: system blob fingerprint %x does not match ID %x", got, args.ID)
	}
	var ws wireSystem
	if err := gob.NewDecoder(bytes.NewReader(args.Blob)).Decode(&ws); err != nil {
		return fmt.Errorf("dist: decoding system: %w", err)
	}
	w.systems[args.ID] = &workerSystem{
		sys: &circuit.System{
			N: ws.N, NumNodes: ws.NumNodes, C: ws.C, G: ws.G, Inputs: ws.Inputs,
		},
	}
	reply.Known = true
	return nil
}

// Solve runs one zero-state subtask against a registered circuit.
//
//matex:ctx-exempt(net/rpc handler signature is fixed; the only blocking receive is the injected-crash hold, released by ServeContext's sever)
func (w *WorkerServer) Solve(args *SolveArgs, reply *SolveReply) error {
	if !w.calls.enter() {
		return errDraining
	}
	defer w.calls.exit()
	w.mu.Lock()
	ws, ok := w.systems[args.SystemID]
	w.mu.Unlock()
	if !ok {
		return fmt.Errorf("dist: unknown system %x (register it first)", args.SystemID)
	}
	req := args.Req
	if req.SolveWorkers == 0 {
		req.SolveWorkers = w.solveWorkers
	}
	if req.Ordering == sparse.OrderDefault {
		req.Ordering = w.ordering
	}
	opts := subtaskOptions(nil, ws.sys, args.Task, req, w.cache, w.workspaces)
	res, err := transient.Simulate(ws.sys, req.Method, opts)
	if err != nil {
		return fmt.Errorf("dist: group %d: %w", args.Task.GroupID, err)
	}
	if w.faults.Hit(faultinject.WorkerCrash) {
		// Injected kill -9: signal the serving loop to sever every connection
		// without draining, then hold the handler until it has — the reply is
		// computed but never leaves the process, exactly what the scheduler
		// observes when a worker dies after finishing N tasks.
		w.crashOnce.Do(func() { close(w.crashCh) })
		<-w.severed
		return fmt.Errorf("dist: %w", faultinject.ErrInjected)
	}
	res.Full = nil // never ships; superposition only needs probes and Final
	reply.Result = res
	return nil
}

// DefaultDrainGrace bounds how long a canceled ServeContext waits for
// in-flight RPCs before severing their connections anyway.
const DefaultDrainGrace = 30 * time.Second

// Serve accepts connections on l and serves the worker service until the
// listener fails (e.g. is closed). Each connection is served concurrently;
// net/rpc additionally runs each call in its own goroutine.
//
//matex:ctx-root(legacy non-draining wrapper; cancellation-aware callers use ServeContext)
func Serve(l net.Listener, ws *WorkerServer) error {
	return ServeContext(context.Background(), l, ws)
}

// ServeContext is Serve with a graceful drain: when ctx fires, the listener
// is closed (no new connections), new RPCs on existing connections are
// answered with a draining error, in-flight RPCs get up to grace to finish,
// and only then are the connections severed. An omitted grace selects
// DefaultDrainGrace; an explicit zero (or negative) grace severs
// immediately ("matexd -grace 0"). It returns nil after a drain triggered
// by ctx, and the listener's error when accepting fails on its own — the
// same contract as Serve. cmd/matexd and the matexsrv test harness both
// shut down through this path.
func ServeContext(ctx context.Context, l net.Listener, ws *WorkerServer, grace ...time.Duration) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(rpcService, ws); err != nil {
		return err
	}
	g := DefaultDrainGrace
	if len(grace) > 0 {
		g = max(grace[0], 0)
	}

	// Unblock Accept when the context fires or an injected crash lands.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			l.Close()
		case <-ws.crashCh:
			l.Close()
		case <-stop:
		}
	}()

	var (
		mu    sync.Mutex
		conns = make(map[net.Conn]struct{})
		wg    sync.WaitGroup
	)
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil || ws.crashed() {
				break // graceful drain, or crash-sever, below
			}
			return err
		}
		mu.Lock()
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			srv.ServeConn(conn)
			mu.Lock()
			delete(conns, conn)
			mu.Unlock()
		}(conn)
	}

	if ws.crashed() {
		// Injected kill -9: no drain, no goodbye — sever every connection
		// with replies still in flight, release the crashing handler, and
		// report the injected death to the harness that ran this worker.
		mu.Lock()
		for conn := range conns {
			conn.Close()
		}
		mu.Unlock()
		ws.severOnce.Do(func() { close(ws.severed) })
		wg.Wait()
		return fmt.Errorf("dist: worker crashed: %w", faultinject.ErrInjected)
	}

	// Finish in-flight RPCs (replies travel back over the still-open
	// connections), then sever the connections so ServeConn returns.
	ws.calls.drain(g)
	mu.Lock()
	for conn := range conns {
		conn.Close()
	}
	mu.Unlock()
	wg.Wait()
	return nil
}
