package dist

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"github.com/matex-sim/matex/internal/faultinject"
	"github.com/matex-sim/matex/internal/transient"
)

// The dist chaos suite: every transport-side faultinject point (DialFail,
// RPCSever, WorkerCrash) is armed against real loopback workers, and each
// run must end in one of exactly two ways — the correct superposed waveform
// (within 1e-12 of the no-fault run) or a clean typed error — never a hang,
// never silent corruption. The journal-side points (CheckpointWrite,
// JournalAppend) are exercised by internal/serve's journal tests.

// guardGoroutines snapshots the goroutine count and returns a check that
// fails if it has not come back to (near) the baseline — no chaos test may
// leak a dispatcher, prober or handler goroutine.
func guardGoroutines(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > base+2 {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d at start, %d now\n%s", base, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// TestFaultDialFailAtConstruction: an injected dial failure at pool
// construction surfaces as the typed injected error — the caller can tell
// the planted fault from a real unreachable worker.
func TestFaultDialFailAtConstruction(t *testing.T) {
	leak := guardGoroutines(t)
	defer leak()
	sys := testSystem(t, 0.1)
	addr, stop := startWorker(t)
	defer stop()

	reg := faultinject.New(1)
	reg.Arm(faultinject.DialFail, faultinject.Plan{})
	_, err := NewRPCPoolContext(context.Background(), sys, []string{addr}, PoolOptions{Fault: reg})
	if err == nil || !faultinject.IsInjected(err) {
		t.Fatalf("construction against a dial fault returned %v, want an injected error", err)
	}
	if reg.Fired(faultinject.DialFail) == 0 {
		t.Fatal("dial-fail point never fired")
	}
}

// TestFaultRPCSeverRetriesAndMatches severs one connection mid-RPC (TCP
// reset with the reply in flight): the pool must revive the worker, retry
// the subtask, count the retry, and still produce the no-fault waveform.
func TestFaultRPCSeverRetriesAndMatches(t *testing.T) {
	leak := guardGoroutines(t)
	sys := testSystem(t, 0.2)
	probes := testProbes(sys)
	cfg := Config{Method: transient.RMATEX, Tstop: 10e-9, Tol: 1e-7, Gamma: 1e-10, Probes: probes}

	local, _, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}

	addr, stop := startWorker(t)
	defer stop()
	reg := faultinject.New(2)
	reg.Arm(faultinject.RPCSever, faultinject.Plan{After: 1, Times: 1}) // second dispatch loses its connection
	pool, err := NewRPCPoolContext(context.Background(), sys, []string{addr}, PoolOptions{
		Fault: reg, BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		pool.Close()
		leak()
	}()

	cfg.Pool = pool
	remote, rep, err := Run(sys, cfg)
	if err != nil {
		t.Fatalf("run with a severed RPC failed outright: %v", err)
	}
	if reg.Fired(faultinject.RPCSever) != 1 {
		t.Fatalf("sever fired %d times, want 1", reg.Fired(faultinject.RPCSever))
	}
	if rep.Retried == 0 {
		t.Error("severed RPC did not surface in Report.Retried")
	}
	if d := maxDeviation(t, remote, local, len(probes)); d > 1e-12 {
		t.Errorf("post-sever waveform deviates %.3g V (budget 1e-12)", d)
	}
}

// startCrashableWorker serves a WorkerServer under ServeContext with the
// fault registry installed, returning the serve loop's error channel so the
// test can assert the injected death was reported.
func startCrashableWorker(t *testing.T, reg *faultinject.Registry) (addr string, served chan error, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkerServer()
	ws.SetFaults(reg)
	ctx, cancel := context.WithCancel(context.Background())
	served = make(chan error, 1)
	go func() { served <- ServeContext(ctx, l, ws, time.Second) }()
	return l.Addr().String(), served, func() { cancel(); l.Close() }
}

// TestFaultWorkerCrashFailsOver crashes one of two workers after it
// completes a subtask — the serving loop severs every connection without
// draining, exactly kill -9 from the scheduler's side. The run must fail
// over to the survivor, count the retries, match the no-fault waveform to
// 1e-12, and the crashed worker's serve loop must report the injected death.
func TestFaultWorkerCrashFailsOver(t *testing.T) {
	leak := guardGoroutines(t)
	sys := testSystem(t, 0.2)
	probes := testProbes(sys)
	cfg := Config{Method: transient.RMATEX, Tstop: 10e-9, Tol: 1e-7, Gamma: 1e-10, Probes: probes}

	local, _, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := faultinject.New(3)
	reg.Arm(faultinject.WorkerCrash, faultinject.Plan{}) // die on the first completed subtask
	crashAddr, served, stopCrash := startCrashableWorker(t, reg)
	defer stopCrash()
	survivor, stopSurvivor := startWorker(t)
	defer stopSurvivor()

	pool, err := NewRPCPoolContext(context.Background(), sys, []string{crashAddr, survivor}, PoolOptions{
		BackoffBase: time.Millisecond, RedialAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		pool.Close()
		leak()
	}()

	cfg.Pool = pool
	remote, rep, err := Run(sys, cfg)
	if err != nil {
		t.Fatalf("run did not survive the worker crash: %v", err)
	}
	if rep.Retried == 0 {
		t.Error("crash-interrupted subtasks did not surface in Report.Retried")
	}
	if d := maxDeviation(t, remote, local, len(probes)); d > 1e-12 {
		t.Errorf("failover waveform deviates %.3g V (budget 1e-12)", d)
	}
	select {
	case err := <-served:
		if !faultinject.IsInjected(err) {
			t.Fatalf("crashed worker's serve loop returned %v, want the injected death", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("crashed worker's serve loop never returned")
	}
}

// TestFaultBuriedWorkerRevivedByHealthProbe: a severed connection whose
// revival dial also fails buries the only worker; the background health
// prober must re-admit it once dials succeed again, after which runs
// complete with the correct waveform — a restarted matexd rejoins the
// rotation without any task having to fail onto it.
func TestFaultBuriedWorkerRevivedByHealthProbe(t *testing.T) {
	leak := guardGoroutines(t)
	sys := testSystem(t, 0.2)
	probes := testProbes(sys)
	cfg := Config{Method: transient.RMATEX, Tstop: 10e-9, Tol: 1e-7, Gamma: 1e-10, Probes: probes}

	local, _, err := Run(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}

	addr, stop := startWorker(t)
	defer stop()
	reg := faultinject.New(4)
	reg.Arm(faultinject.RPCSever, faultinject.Plan{Times: 1})           // first dispatch loses its connection...
	reg.Arm(faultinject.DialFail, faultinject.Plan{After: 1, Times: 1}) // ...and the revival dial fails: buried
	pool, err := NewRPCPoolContext(context.Background(), sys, []string{addr}, PoolOptions{
		Fault: reg, BackoffBase: time.Millisecond, RedialAttempts: 1,
		HealthInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		pool.Close()
		leak()
	}()
	cfg.Pool = pool

	// The first run races the prober: it either fails cleanly (worker still
	// buried) or succeeds (prober re-admitted it mid-run). Both are
	// acceptable; hanging or corrupting is not.
	if res, _, err := Run(sys, cfg); err == nil {
		if d := maxDeviation(t, res, local, len(probes)); d > 1e-12 {
			t.Fatalf("first run deviates %.3g V", d)
		}
	}

	// Eventually a probe dial passes (the dial fault is spent) and the
	// worker is back in rotation: runs succeed with zero retries.
	deadline := time.Now().Add(30 * time.Second)
	for {
		res, rep, err := Run(sys, cfg)
		if err == nil {
			if rep.Retried != 0 {
				t.Fatalf("post-revival run still retried %d times", rep.Retried)
			}
			if d := maxDeviation(t, res, local, len(probes)); d > 1e-12 {
				t.Fatalf("post-revival waveform deviates %.3g V (budget 1e-12)", d)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health prober never re-admitted the worker: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if reg.Fired(faultinject.DialFail) != 1 {
		t.Fatalf("revival dial fault fired %d times, want exactly 1", reg.Fired(faultinject.DialFail))
	}
	if checks := reg.Checks(faultinject.DialFail); checks < 3 {
		t.Fatalf("only %d dial checks: the health prober never probed", checks)
	}
}
