package dist

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/transient"
)

// Run executes the paper's Fig. 4 flow: solve the DC operating point once,
// partition the time-varying sources into bump-feature groups, fan each
// group out as a zero-state subtask over the pool, and superpose the group
// responses with the DC baseline on the shared GTS time grid.
//
// The returned Result carries the superposed probe waveforms (and final
// state); its Stats aggregate the work of all nodes, with TransientTime set
// to the slowest node's transient phase — the distributed wall-clock
// reading. The Report carries the per-node scheduling metrics of Table 3.
func Run(sys *circuit.System, cfg Config) (*transient.Result, *Report, error) {
	cfg = cfg.withDefaults()
	if sys == nil {
		return nil, nil, fmt.Errorf("dist: nil system")
	}
	if cfg.Tstop <= 0 {
		return nil, nil, fmt.Errorf("dist: needs positive Tstop")
	}

	res := &transient.Result{}
	rep := &Report{}

	// The factorization cache every in-process phase goes through: the DC
	// solve below and all local subtasks share it, so G is factorized at
	// most once per distinct content, and a caller-provided cfg.Cache makes
	// repeated Run calls refactorization-free.
	cache := cfg.Cache
	if cache == nil {
		cache = sparse.NewCache(0)
	}

	// DC operating point: G·x_DC = B·u(0) over all inputs. The cached
	// factorization of G is reused by the in-process subtasks (I-MATEX as
	// its Krylov operator; every method for the zero-state setup).
	tDC := time.Now()
	fg, info, err := cache.FactorEx(sys.G, cfg.FactorKind, cfg.Ordering)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: DC factorization failed: %w", err)
	}
	res.Stats.AddFactorInfo(info)
	b := make([]float64, sys.N)
	sys.EvalB(0, b, nil)
	xdc := make([]float64, sys.N)
	fg.Solve(xdc, b)
	res.Stats.SolvePairs++
	for _, v := range xdc {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, nil, fmt.Errorf("dist: DC solution is not finite")
		}
	}
	rep.DCTime = time.Since(tDC)
	res.Stats.DCTime = rep.DCTime

	// Decomposition and the shared output grid.
	tasks := Partition(sys, cfg.Tstop)
	rep.Groups = len(tasks)
	gts := sys.GTS(cfg.Tstop)
	req := subtaskRequest(cfg, gts)

	pool := cfg.Pool
	if pool == nil {
		lp := newLocalPool(sys, cache)
		defer lp.Close()
		pool = lp
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) && len(tasks) > 0 {
		workers = len(tasks)
	}

	// Dispatch largest groups first (longest-processing-time heuristic): it
	// tightens the makespan when Workers < Groups. Results stay keyed by
	// GroupID below, so the ordering is a scheduling detail only.
	sched := append([]Task(nil), tasks...)
	sortTasksBySize(sched)
	var results []*TaskResult
	if len(sched) > 0 {
		d := &dispatcher{pool: pool, workers: workers}
		results, err = d.run(cfg.Ctx, sched, req)
		if err != nil {
			return nil, nil, err
		}
	}

	// Superposition: x(t_i) = x_DC + Σ_g x_g(t_i) on the GTS grid, summed in
	// dispatch order so the result is deterministic regardless of completion
	// order.
	res.Times = append([]float64(nil), gts...)
	if len(cfg.Probes) > 0 {
		res.Probes = make([][]float64, len(gts))
		for i := range res.Probes {
			row := make([]float64, len(cfg.Probes))
			for k, p := range cfg.Probes {
				row[k] = xdc[p]
			}
			res.Probes[i] = row
		}
	}
	res.Final = append([]float64(nil), xdc...)

	rep.TaskStats = make([]transient.Stats, len(tasks))
	for si, tr := range results {
		sub := tr.Result
		if len(cfg.Probes) > 0 {
			addProbes(res.Times, res.Probes, sub, len(cfg.Probes))
		}
		for j := range res.Final {
			if j < len(sub.Final) {
				res.Final[j] += sub.Final[j]
			}
		}
		rep.TaskStats[sched[si].GroupID] = sub.Stats
		rep.Retried += tr.Retried
		if tr.Elapsed > rep.MaxNodeTime {
			rep.MaxNodeTime = tr.Elapsed
		}
		if sub.Stats.TransientTime > rep.MaxNodeTrTime {
			rep.MaxNodeTrTime = sub.Stats.TransientTime
		}
		aggregate(&res.Stats, &sub.Stats)
	}
	res.Stats.TransientTime = rep.MaxNodeTrTime
	return res, rep, nil
}

// addProbes accumulates a subtask's probe trace onto the superposed rows.
// Subtask output times normally coincide with the GTS grid (the MATEX
// solvers emit exactly the requested EvalTimes); fixed-step subtasks emit
// their own step grid instead and are linearly interpolated onto the GTS.
func addProbes(times []float64, rows [][]float64, sub *transient.Result, nProbes int) {
	aligned := len(sub.Times) == len(times)
	if aligned {
		for i := range times {
			if math.Abs(sub.Times[i]-times[i]) > 1e-15+1e-9*math.Abs(times[i]) {
				aligned = false
				break
			}
		}
	}
	if aligned {
		for i := range rows {
			for k := 0; k < nProbes; k++ {
				rows[i][k] += sub.Probes[i][k]
			}
		}
		return
	}
	for i, t := range times {
		for k := 0; k < nProbes; k++ {
			rows[i][k] += sub.InterpProbe(t, k)
		}
	}
}

// aggregate folds one node's work counters into the run totals.
func aggregate(dst, src *transient.Stats) {
	dst.Factorizations += src.Factorizations
	dst.SolvePairs += src.SolvePairs
	dst.SpMVs += src.SpMVs
	dst.ExpmEvals += src.ExpmEvals
	dst.KrylovDims = append(dst.KrylovDims, src.KrylovDims...)
	dst.Steps += src.Steps
	dst.Rejected += src.Rejected
	dst.Regularized = dst.Regularized || src.Regularized
	dst.CacheHits += src.CacheHits
	dst.CacheMisses += src.CacheMisses
	dst.LanczosSpots += src.LanczosSpots
	dst.SymbolicHits += src.SymbolicHits
	dst.Refactors += src.Refactors
	dst.FactorTime += src.FactorTime
}

// sortTasksBySize orders tasks largest-first, a classic longest-processing-
// time heuristic that tightens the makespan when Workers < Groups.
func sortTasksBySize(tasks []Task) {
	sort.SliceStable(tasks, func(i, j int) bool {
		return len(tasks[i].InputIdx) > len(tasks[j].InputIdx)
	})
}
