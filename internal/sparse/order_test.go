package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrdersArePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, n := range []int{1, 2, 7, 40} {
		a := randomSparse(rng, n, 0.2)
		for _, o := range []Ordering{OrderNatural, OrderRCM, OrderMinDegree, OrderND} {
			p := Order(a, o)
			if !IsPerm(p) {
				t.Fatalf("order %v on n=%d is not a permutation: %v", o, n, p)
			}
		}
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// Build a grid Laplacian, scramble it with a random symmetric
	// permutation, then check RCM recovers a small bandwidth.
	a := gridLaplacian(15, 15)
	n := a.Rows
	rng := rand.New(rand.NewSource(31))
	scramble := rng.Perm(n)
	scrambled := PermuteSym(a, scramble)
	before := Bandwidth(scrambled)
	p := RCM(scrambled)
	after := Bandwidth(PermuteSym(scrambled, p))
	if after >= before {
		t.Fatalf("RCM bandwidth %d did not improve on scrambled %d", after, before)
	}
	if after > 40 {
		t.Errorf("RCM bandwidth %d unexpectedly large for 15x15 grid", after)
	}
}

func TestMinDegreeReducesFill(t *testing.T) {
	// On a star graph, natural order starting from the hub creates dense
	// fill; minimum degree eliminates leaves first, producing none.
	n := 30
	tr := NewTriplet(n, n)
	tr.Add(0, 0, float64(n))
	for i := 1; i < n; i++ {
		tr.Add(i, i, 2)
		tr.Add(0, i, -1)
		tr.Add(i, 0, -1)
	}
	a := tr.ToCSC()
	p := MinDegree(a)
	// Leaves are eliminated first; the hub can only appear among the last
	// two (it ties with the final leaf at degree 1).
	if p[len(p)-1] != 0 && p[len(p)-2] != 0 {
		t.Errorf("minimum degree should eliminate the hub near-last, order ends with %v", p[len(p)-2:])
	}
	fHub, err := FactorLDLT(a, OrderMinDegree)
	if err != nil {
		t.Fatal(err)
	}
	// L for leaf-first elimination has exactly n-1 off-diagonal entries.
	if got := fHub.L().NNZ(); got != n-1 {
		t.Errorf("mindeg L nnz = %d, want %d (no fill on star graph)", got, n-1)
	}
}

func TestOrderingStrings(t *testing.T) {
	if OrderNatural.String() != "natural" || OrderRCM.String() != "rcm" || OrderMinDegree.String() != "mindeg" || OrderND.String() != "nd" {
		t.Error("Ordering.String values changed")
	}
	if o, err := ParseOrdering("nd"); err != nil || o != OrderND {
		t.Errorf("ParseOrdering(nd) = %v, %v", o, err)
	}
	if Ordering(99).String() != "unknown" {
		t.Error("unknown ordering string")
	}
}

func TestPermHelpers(t *testing.T) {
	p := []int{2, 0, 1}
	pinv := InversePerm(p)
	want := []int{1, 2, 0}
	for i := range want {
		if pinv[i] != want[i] {
			t.Fatalf("InversePerm = %v, want %v", pinv, want)
		}
	}
	x := []float64{10, 20, 30}
	y := make([]float64, 3)
	PermVec(y, x, p)
	if y[0] != 30 || y[1] != 10 || y[2] != 20 {
		t.Fatalf("PermVec = %v", y)
	}
	z := make([]float64, 3)
	InvPermVec(z, y, p)
	for i := range x {
		if z[i] != x[i] {
			t.Fatalf("InvPermVec did not invert PermVec: %v", z)
		}
	}
	if IsPerm([]int{0, 0, 1}) {
		t.Error("IsPerm accepted a non-permutation")
	}
	defer func() {
		if recover() == nil {
			t.Error("InversePerm should panic on non-permutation")
		}
	}()
	InversePerm([]int{1, 1})
}

// Property: PermuteSym is similarity: eigen-invariant check via x'(PAP')x ==
// (P'x)'A(P'x) for random vectors.
func TestQuickPermuteSymQuadraticForm(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		a := randomSPD(r, n)
		p := r.Perm(n)
		ap := PermuteSym(a, p)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		// y = A(p,p) acting on x equals picking rows/cols of A.
		ax := make([]float64, n)
		ap.MulVec(ax, x)
		var q1 float64
		for i := range x {
			q1 += x[i] * ax[i]
		}
		// Map x back: z[p[k]] = x[k].
		z := make([]float64, n)
		for k, v := range p {
			z[v] = x[k]
		}
		az := make([]float64, n)
		a.MulVec(az, z)
		var q2 float64
		for i := range z {
			q2 += z[i] * az[i]
		}
		return almostEqual(q1, q2, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(32))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
