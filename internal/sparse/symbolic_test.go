package sparse

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// meshSPD builds an nx×ny grid Laplacian with a ground leak (SPD) — the
// shape of a PDN conductance matrix.
func meshSPD(nx, ny int) *CSC {
	a := gridLaplacian(nx, ny)
	for j := 0; j < a.Cols; j++ {
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			if a.Rowidx[p] == j {
				a.Values[p] += 0.01
			}
		}
	}
	return a
}

// multiDomainSPD tiles copies of an nx×nx mesh down the block diagonal —
// the multi-domain PDN shape whose elimination forest actually forks, so
// ParallelizableSolve holds and ParSolveWith takes the goroutine fan-out.
func multiDomainSPD(nx, domains int) *CSC {
	a := meshSPD(nx, nx)
	n := a.Rows
	tr := NewTriplet(n*domains, n*domains)
	for c := 0; c < domains; c++ {
		off := c * n
		for j := 0; j < n; j++ {
			for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
				tr.Add(off+a.Rowidx[p], off+j, a.Values[p])
			}
		}
	}
	return tr.ToCSC()
}

// shiftFamily returns C + γG for a fixed-pattern SPD pair, mimicking the
// adaptive solvers' scalar-shift grid. The perturbation is a symmetric
// function of (i, j) so C stays symmetric.
func shiftFamily(rng *rand.Rand, n int) (c, g *CSC) {
	g = meshSPD(n, n)
	// C with the same pattern topology: diagonal capacitances only would
	// change the union pattern, so perturb the same grid symmetrically.
	c = meshSPD(n, n)
	_ = rng
	for j := 0; j < c.Cols; j++ {
		for p := c.Colptr[j]; p < c.Colptr[j+1]; p++ {
			i := c.Rowidx[p]
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			c.Values[p] *= 1 + 0.1*float64((lo*37+hi*101)%19)/19
		}
	}
	return c, g
}

func TestRefactorMatchesFreshAcrossShifts(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	c, g := shiftFamily(rng, 12)
	n := c.Rows

	// One analysis for the whole γ family.
	base := Add(1, c, 1e-10, g)
	for _, order := range []Ordering{OrderNatural, OrderRCM, OrderMinDegree} {
		sym, err := AnalyzeLDLT(base, order)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		gamma := 1e-10
		for s := 0; s < 10; s++ {
			m := Add(1, c, gamma, g)
			fRef, err := sym.Refactor(m)
			if err != nil {
				t.Fatalf("order=%v shift %d: Refactor: %v", order, s, err)
			}
			fFresh, err := FactorLDLT(m, order)
			if err != nil {
				t.Fatalf("order=%v shift %d: FactorLDLT: %v", order, s, err)
			}
			fRef.Solve(x1, b)
			fFresh.Solve(x2, b)
			for i := range x1 {
				if d := math.Abs(x1[i] - x2[i]); d > 1e-14*(1+math.Abs(x2[i])) {
					t.Fatalf("order=%v shift %d: refactor/fresh mismatch at %d: %g vs %g", order, s, i, x1[i], x2[i])
				}
			}
			if r := residual(m, x1, b); r > 1e-10 {
				t.Fatalf("order=%v shift %d: residual %g", order, s, r)
			}
			gamma *= math.Sqrt2
		}
	}
}

func TestRefactorIntoReusesFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randomSPD(rng, 40)
	sym, err := AnalyzeLDLT(a, OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	f, err := sym.Refactor(a)
	if err != nil {
		t.Fatal(err)
	}
	// Scale the values (same pattern), refactor in place, check the solve.
	a2 := a.Clone()
	for i := range a2.Values {
		a2.Values[i] *= 3
	}
	if err := sym.RefactorInto(f, a2); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 40)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, 40)
	f.Solve(x, b)
	if r := residual(a2, x, b); r > 1e-10 {
		t.Fatalf("refactored-in-place residual %g", r)
	}
	// A factor from a different analysis is rejected.
	sym2, _ := AnalyzeLDLT(a, OrderRCM)
	if err := sym2.RefactorInto(f, a2); err == nil {
		t.Fatal("RefactorInto accepted a factor from a different analysis")
	}
}

func TestRefactorSingularLeavesCleanWorkspace(t *testing.T) {
	// [2 1; 1 0.5] has a zero second pivot; after the failure the same
	// factor must still refactorize a healthy matrix correctly (the scatter
	// workspace must have been cleaned).
	tr := NewTriplet(2, 2)
	tr.Add(0, 0, 2)
	tr.Add(0, 1, 1)
	tr.Add(1, 0, 1)
	tr.Add(1, 1, 0.5)
	bad := tr.ToCSC()
	sym, err := AnalyzeLDLT(bad, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	good := tr.ToCSC()
	good.Values[3] = 5 // diagonal (1,1) entry
	f, err := sym.Refactor(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := sym.RefactorInto(f, bad); err == nil {
		t.Fatal("expected singular failure")
	}
	if err := sym.RefactorInto(f, good); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.Solve(x, []float64{1, 0})
	if r := residual(good, x, []float64{1, 0}); r > 1e-12 {
		t.Fatalf("post-failure refactor residual %g", r)
	}
}

// TestLevelScheduleProperty checks the structural contract of the level
// schedules: the forward schedule places every elimination-tree child on a
// strictly lower level than its parent (parent-after-child), the backward
// schedule the reverse, and both partition 0..n-1 exactly.
func TestLevelScheduleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(60)
		a := randomSPD(rng, n)
		order := []Ordering{OrderNatural, OrderRCM, OrderMinDegree}[trial%3]
		sym, err := AnalyzeLDLT(a, order)
		if err != nil {
			t.Fatal(err)
		}
		sym.levelSchedules()
		fwdLevel := levelOf(sym.fwdPtr, sym.fwdRows, n, t)
		bwdLevel := levelOf(sym.bwdPtr, sym.bwdRows, n, t)
		for c := 0; c < n; c++ {
			p := sym.parent[c]
			if p == -1 {
				continue
			}
			if fwdLevel[p] <= fwdLevel[c] {
				t.Fatalf("trial %d: forward level of parent %d (%d) not after child %d (%d)", trial, p, fwdLevel[p], c, fwdLevel[c])
			}
			if bwdLevel[c] <= bwdLevel[p] {
				t.Fatalf("trial %d: backward level of child %d (%d) not after parent %d (%d)", trial, c, bwdLevel[c], p, bwdLevel[p])
			}
		}
		// Dependency form: every row pattern entry (L(k,i) ≠ 0) must be on
		// an earlier forward level than k, and a later backward level.
		for k := 0; k < n; k++ {
			for tt := sym.rowptr[k]; tt < sym.rowptr[k+1]; tt++ {
				i := sym.rowind[tt]
				if fwdLevel[i] >= fwdLevel[k] {
					t.Fatalf("trial %d: forward dependency %d->%d broken", trial, i, k)
				}
				if bwdLevel[i] <= bwdLevel[k] {
					t.Fatalf("trial %d: backward dependency %d->%d broken", trial, k, i)
				}
			}
		}
	}
}

// levelOf inverts a ptr/rows schedule into per-row levels, checking the
// partition property.
func levelOf(ptr []int, rows []int32, n int, t *testing.T) []int {
	t.Helper()
	lev := make([]int, n)
	for i := range lev {
		lev[i] = -1
	}
	for l := 0; l+1 < len(ptr); l++ {
		for p := ptr[l]; p < ptr[l+1]; p++ {
			r := rows[p]
			if lev[r] != -1 {
				t.Fatalf("row %d scheduled twice", r)
			}
			lev[r] = l
		}
	}
	for i, l := range lev {
		if l == -1 {
			t.Fatalf("row %d never scheduled", i)
		}
	}
	return lev
}

func TestParSolveMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := multiDomainSPD(30, 4) // 4 independent domains: the partition forks
	n := a.Rows
	for _, order := range []Ordering{OrderRCM, OrderMinDegree} {
		f, err := FactorLDLT(a, order)
		if err != nil {
			t.Fatal(err)
		}
		if order == OrderMinDegree && !f.ParallelizableSolve() {
			t.Fatal("multi-domain factor unexpectedly below the parallel crossover")
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		f.Solve(want, b)
		got := make([]float64, n)
		work := make([]float64, n)
		for _, workers := range []int{1, 2, 4, 16} {
			f.ParSolveWith(got, b, work, workers)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-13*(1+math.Abs(want[i])) {
					t.Fatalf("order=%v workers=%d: mismatch at %d", order, workers, i)
				}
			}
		}
	}
}

// forceParallel returns a factor guaranteed past the parallel crossover: a
// block-diagonal matrix of many independent 8-chains has thousands of
// independent subtree tasks and no separator tail.
func forceParallel(tb testing.TB, blocks int) (*LDLT, *CSC) {
	tb.Helper()
	const chain = 8
	n := chain * blocks
	tr := NewTriplet(n, n)
	for b := 0; b < blocks; b++ {
		for c := 0; c < chain; c++ {
			i := chain*b + c
			tr.Add(i, i, 4)
			if c+1 < chain {
				tr.Add(i, i+1, -1)
				tr.Add(i+1, i, -1)
			}
		}
	}
	a := tr.ToCSC()
	f, err := FactorLDLT(a, OrderNatural)
	if err != nil {
		tb.Fatal(err)
	}
	if !f.ParallelizableSolve() {
		tb.Fatal("block matrix unexpectedly below the parallel crossover")
	}
	return f, a
}

func TestParSolveWideLevels(t *testing.T) {
	f, a := forceParallel(t, 8192)
	n := a.Rows
	rng := rand.New(rand.NewSource(44))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	f.SolveWith(want, b, make([]float64, n))
	got := make([]float64, n)
	f.ParSolveWith(got, b, make([]float64, n), 8)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-14*(1+math.Abs(want[i])) {
			t.Fatalf("parallel wide-level solve mismatch at %d", i)
		}
	}
	if r := residual(a, got, b); r > 1e-12 {
		t.Fatalf("parallel solve residual %g", r)
	}
}

func TestSolveMultiMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	a := randomSPD(rng, 64)
	n := a.Rows
	f, err := FactorLDLT(a, OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 4, 7} {
		b := make([][]float64, k)
		want := make([][]float64, k)
		got := make([][]float64, k)
		for r := 0; r < k; r++ {
			b[r] = make([]float64, n)
			for i := range b[r] {
				b[r][i] = rng.NormFloat64()
			}
			want[r] = make([]float64, n)
			f.Solve(want[r], b[r])
			got[r] = make([]float64, n)
		}
		f.SolveMulti(got, b)
		for r := 0; r < k; r++ {
			for i := 0; i < n; i++ {
				if math.Abs(got[r][i]-want[r][i]) > 1e-13*(1+math.Abs(want[r][i])) {
					t.Fatalf("k=%d rhs=%d: mismatch at %d", k, r, i)
				}
			}
		}
	}
}

// TestParSolveRace hammers one shared factor with concurrent parallel and
// panel solves plus sequential solves — run under -race this proves the
// solve API is re-entrant.
func TestParSolveRace(t *testing.T) {
	a := multiDomainSPD(30, 4)
	n := a.Rows
	f, err := FactorLDLT(a, OrderMinDegree)
	if err != nil {
		t.Fatal(err)
	}
	if !f.ParallelizableSolve() {
		// The hammer must cover the goroutine fan-out, not the sequential
		// fallback.
		t.Fatal("race factor unexpectedly below the parallel crossover")
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			x := make([]float64, n)
			work := make([]float64, n)
			panelB := [][]float64{b, b, b, b}
			panelX := make([][]float64, 4)
			for r := range panelX {
				panelX[r] = make([]float64, n)
			}
			for it := 0; it < 25; it++ {
				switch it % 3 {
				case 0:
					f.ParSolveWith(x, b, work, 4)
				case 1:
					f.SolveWith(x, b, work)
				case 2:
					f.SolveMulti(panelX, panelB)
					copy(x, panelX[3])
				}
				if r := residual(a, x, b); r > 1e-10 {
					t.Errorf("goroutine %d iter %d: residual %g", seed, it, r)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestRefactorSolveZeroAllocs is the steady-state allocation contract of the
// numeric path: refactorization into an existing factor plus sequential and
// panel solves with caller-provided workspaces allocate nothing.
func TestRefactorSolveZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	a := meshSPD(16, 16)
	n := a.Rows
	sym, err := AnalyzeLDLT(a, OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	f, err := sym.Refactor(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	work := make([]float64, n)
	const k = 4
	panelB := [][]float64{b, b, b, b}
	panelX := make([][]float64, k)
	for r := range panelX {
		panelX[r] = make([]float64, n)
	}
	panelWork := make([]float64, n*k)
	if allocs := testing.AllocsPerRun(50, func() {
		if err := sym.RefactorInto(f, a); err != nil {
			t.Fatal(err)
		}
		f.SolveWith(x, b, work)
		f.SolveMultiWith(panelX, panelB, panelWork)
	}); allocs != 0 {
		t.Fatalf("steady-state refactor+solve allocated %.1f/run, want 0", allocs)
	}

	// The scalar engine's parallel solve shares the contract (the supernodal
	// engine has its own guard in supernodal_test.go).
	scSym, err := AnalyzeLDLTParams(a, OrderRCM, SupernodeParams{Mode: SNNever})
	if err != nil {
		t.Fatal(err)
	}
	scF, err := scSym.Refactor(a)
	if err != nil {
		t.Fatal(err)
	}
	scF.ParSolveWith(x, b, work, 4) // warm the worker pool outside the guard
	if !raceEnabled {
		// The job pool intentionally leaks under the race detector
		// (sync.Pool drops Puts there).
		if allocs := testing.AllocsPerRun(50, func() {
			scF.ParSolveWith(x, b, work, 4)
		}); allocs != 0 {
			t.Errorf("scalar ParSolveWith allocates %v/op", allocs)
		}
	}
}

func TestCacheSymbolicTierSharedAcrossShifts(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	c, g := shiftFamily(rng, 10)
	cache := NewCache(0)
	gamma := 1e-10
	var lastInfo FactorInfo
	for s := 0; s < 8; s++ {
		f, info, err := cache.FactorSumEx(1, c, gamma, g, FactorAuto, OrderRCM)
		if err != nil {
			t.Fatal(err)
		}
		if f == nil || info.Hit {
			t.Fatalf("shift %d: unexpected acquisition %+v", s, info)
		}
		if !info.Refactored {
			t.Fatalf("shift %d: LDLT path did not refactor", s)
		}
		if s == 0 && info.SymbolicHit {
			t.Fatal("first shift claimed a symbolic hit")
		}
		if s > 0 && !info.SymbolicHit {
			t.Fatalf("shift %d recomputed the symbolic analysis", s)
		}
		lastInfo = info
		gamma *= math.Sqrt2
	}
	_ = lastInfo
	st := cache.Stats()
	if st.SymbolicMisses != 1 || st.SymbolicHits != 7 {
		t.Fatalf("symbolic tier stats = %+v, want 1 miss / 7 hits", st)
	}
	if st.SymbolicEntries != 1 {
		t.Fatalf("symbolic entries = %d, want 1", st.SymbolicEntries)
	}
	// Content-identical re-acquisition is a plain factor hit.
	if _, info, _ := cache.FactorSumEx(1, c, 1e-10, g, FactorAuto, OrderRCM); !info.Hit {
		t.Fatalf("repeat acquisition missed: %+v", info)
	}
}

func TestCacheSymbolicFallbackToLU(t *testing.T) {
	// Symmetric but with a zero pivot that LDLT cannot pass: FactorAuto must
	// fall back to LU and still solve.
	tr := NewTriplet(2, 2)
	tr.Add(0, 1, 1)
	tr.Add(1, 0, 1)
	a := tr.ToCSC()
	cache := NewCache(0)
	f, info, err := cache.FactorEx(a, FactorAuto, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	if info.Refactored {
		t.Fatal("LU fallback wrongly reported as refactored")
	}
	if _, ok := f.(*LU); !ok {
		t.Fatalf("fallback produced %T, want *LU", f)
	}
	x := make([]float64, 2)
	f.Solve(x, []float64{3, 5})
	if math.Abs(x[0]-5) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("fallback solve = %v", x)
	}
}

func TestPatternFingerprintIgnoresValues(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	a := randomSPD(rng, 15)
	b := a.Clone()
	for i := range b.Values {
		b.Values[i] *= 2.5
	}
	if PatternFingerprint(a) != PatternFingerprint(b) {
		t.Fatal("value change altered the pattern fingerprint")
	}
	c := a.Clone()
	c.Rowidx[0]++ // corrupt the pattern
	if PatternFingerprint(a) == PatternFingerprint(c) {
		t.Fatal("pattern change not reflected in the fingerprint")
	}
}
