package sparse

// Factorization is the interface shared by the direct solvers (LU, LDLT).
// A factorization is computed once at the beginning of a transient run and
// reused for every forward/backward substitution pair.
type Factorization interface {
	// N returns the system dimension.
	N() int
	// Solve computes dst = A⁻¹ b; dst and b may alias.
	Solve(dst, b []float64)
	// SolveWith is Solve with a caller-provided workspace of length N.
	SolveWith(dst, b, work []float64)
	// NNZ returns the number of stored factor entries (a fill metric).
	NNZ() int
}

// ParSolver is implemented by factorizations whose triangular solves can be
// level-scheduled across a goroutine pool. The implementation falls back to
// the sequential solve below its profitability crossover, so callers may
// pass every solve through it unconditionally.
type ParSolver interface {
	// ParSolveWith is SolveWith using up to workers goroutines.
	ParSolveWith(dst, b, work []float64, workers int)
}

// MultiSolver is implemented by factorizations that can solve a panel of
// right-hand sides in one factor traversal, amortizing the factor's memory
// traffic over the panel.
type MultiSolver interface {
	// SolveMulti solves A·X = B for the k = len(dst) right-hand sides.
	SolveMulti(dst, b [][]float64)
}

// FactorKind selects the factorization algorithm.
type FactorKind int

const (
	// FactorAuto uses LDLT when the matrix is numerically symmetric and the
	// factorization succeeds, falling back to LU otherwise.
	FactorAuto FactorKind = iota
	// FactorGPLU always uses Gilbert-Peierls LU with partial pivoting.
	FactorGPLU
	// FactorLDLt always uses LDLᵀ (the matrix must be symmetric definite).
	FactorLDLt
)

// Factor computes a factorization of a with the requested kind and ordering.
func Factor(a *CSC, kind FactorKind, order Ordering) (Factorization, error) {
	switch kind {
	case FactorLDLt:
		return FactorLDLT(a, order)
	case FactorGPLU:
		return FactorLU(a, order, 1.0)
	default:
		if a.IsSymmetric(0) {
			if f, err := FactorLDLT(a, order); err == nil {
				return f, nil
			}
		}
		return FactorLU(a, order, 1.0)
	}
}
