package sparse

import (
	"fmt"
	"math"
	"sync"
)

// Symbolic is the once-per-pattern analysis of a symmetric matrix for LDLᵀ
// factorization: the fill-reducing ordering, the elimination tree, the exact
// static nonzero pattern of L (per-column counts and row indices, Gilbert/
// Ng/Peierls style), a scatter map from the input matrix into the permuted
// upper triangle, and the elimination-tree task partition that drives the
// parallel triangular solves (with the underlying level sets available for
// diagnostics).
//
// An analysis depends only on the sparsity pattern (and ordering), never on
// values: every scalar shift C + γG of one base pattern shares a single
// Symbolic, and Refactor fills a factorization numerically in O(flops) with
// no appends, no per-column elimination-tree reach, and no heap allocation
// beyond the factor itself. Symbolic is immutable after construction and
// safe for concurrent use by any number of Refactor calls.
type Symbolic struct {
	n    int
	lnz  int
	perm []int // column k of the factorization is column perm[k] of A
	pinv []int
	// parent is the elimination tree; -1 marks a root.
	parent []int32

	// Static CSC pattern of L: column j holds rows colptr[j]:colptr[j+1] of
	// rowidx, strictly below the (implied unit) diagonal, ascending.
	colptr []int
	rowidx []int32

	// Row patterns of L, the up-looking factorization's working view: row k
	// touches columns rowind[rowptr[k]:rowptr[k+1]] in elimination (reach)
	// order — descendants before ancestors — and the value L(k, rowind[t])
	// lives at position rowpos[t] of the factor's value array. The gather
	// (dot-product) forward solve reads the same arrays.
	rowptr []int
	rowind []int32
	rowpos []int32

	// Scatter map from the analyzed matrix into the permuted upper triangle:
	// permuted column k draws the value at aSrc[p] of the input's value
	// array onto permuted row aRow[p] <= k, for p in aColptr[k]:aColptr[k+1].
	aColptr []int
	aSrc    []int32
	aRow    []int32

	// Level schedules, built lazily (levelSchedules): the exact dependency
	// depths of the triangular solves, concatenated in ptr/rows form.
	// Forward (L·z = b) levels come from the row patterns, backward
	// (Lᵀ·x = z) levels from the column patterns; within one level the
	// gather-form row updates are independent. The executing schedule is
	// the coarsened task partition below — the level sets exist for
	// diagnostics and for verifying that partition, so they are not
	// computed (or retained) unless asked for.
	levOnce sync.Once
	fwdPtr  []int
	fwdRows []int32
	bwdPtr  []int
	bwdRows []int32
	// maxLevelWidth is the widest level across both schedules.
	maxLevelWidth int

	// Coarsened execution schedule for the parallel solves: the etree is cut
	// into independent subtrees of bounded work (tasks) plus the separator
	// tail of their common ancestors. Row k's forward dependencies are etree
	// descendants and its backward dependencies ancestors, so tasks never
	// depend on each other — the forward solve runs tasks concurrently, one
	// barrier, then the tail; the backward solve runs the tail first, one
	// barrier, then the tasks. This trades the level sets' abundant but
	// fine-grained parallelism (one sync per level) for two syncs per solve.
	taskPtr  []int
	taskRows []int32
	tailRows []int32
	// parWork/tailWork split lnz between task rows and tail rows; the solver
	// goes parallel only when the task share dominates.
	parWork, tailWork int

	// Supernodal layout (supernodal.go): non-nil when the blocked panel
	// engine serves this pattern, nil when the scalar up-looking engine
	// does. params records the detection/amalgamation parameters either way
	// (they are part of the analysis identity for cache keying).
	sn     *snLayout
	params SupernodeParams

	patFP uint64 // PatternFingerprint of the analyzed matrix
}

// N returns the analyzed dimension.
func (s *Symbolic) N() int { return s.n }

// LNZ returns the number of strictly-lower entries of L (the exact fill).
func (s *Symbolic) LNZ() int { return s.lnz }

// Perm returns the fill-reducing permutation (not a copy; do not modify).
func (s *Symbolic) Perm() []int { return s.perm }

// Levels returns the number of forward-solve levels — the critical-path
// length of the triangular solves; n means a chain (no parallelism), 1 a
// diagonal matrix.
func (s *Symbolic) Levels() int {
	s.levelSchedules()
	return len(s.fwdPtr) - 1
}

// Bytes estimates the resident size of the analysis, for cache accounting.
func (s *Symbolic) Bytes() int64 {
	return int64(s.n)*40 + int64(s.lnz)*16 + int64(len(s.aSrc))*8 + s.sn.bytes()
}

// PatternFingerprint hashes the sparsity pattern of a — dimensions, column
// pointers and row indices, but not values — with FNV-1a. Two matrices with
// equal pattern fingerprints share a Symbolic analysis; the adaptive
// stepper's (C/h + G/2) grid and the γ-shift grid (C + γG) each map their
// whole families onto one analysis this way.
func PatternFingerprint(a *CSC) uint64 {
	h := uint64(fnvOffset)
	h = fnvMix(h, uint64(a.Rows))
	h = fnvMix(h, uint64(a.Cols))
	h = fnvMix(h, uint64(len(a.Rowidx)))
	for _, p := range a.Colptr {
		h = fnvMix(h, uint64(p))
	}
	for _, i := range a.Rowidx {
		h = fnvMix(h, uint64(i))
	}
	return h
}

// AnalyzeLDLT performs the symbolic analysis of the symmetric matrix a under
// the given ordering: ordering, elimination tree, exact column counts and
// static pattern of L, supernode detection with relaxed amalgamation (under
// the default SupernodeParams), the input scatter map, and the parallel-solve
// task schedule. Only the pattern of a is read. The result serves any matrix
// with the same pattern through Refactor.
func AnalyzeLDLT(a *CSC, order Ordering) (*Symbolic, error) {
	return AnalyzeLDLTParams(a, order, DefaultSupernodeParams())
}

// AnalyzeLDLTParams is AnalyzeLDLT with explicit supernode detection and
// amalgamation parameters (engine forcing, panel width, relaxation bound).
func AnalyzeLDLTParams(a *CSC, order Ordering, params SupernodeParams) (*Symbolic, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: AnalyzeLDLT needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Cols
	s := &Symbolic{n: n, patFP: PatternFingerprint(a), params: params.norm()}
	s.perm = Order(a, order)
	s.pinv = InversePerm(s.perm)
	s.buildScatterMap(a)
	s.buildEtree()

	// Compose the ordering with a postorder of its elimination tree. Any
	// topological relabeling of the etree is fill-equivalent (same lnz, an
	// isomorphic pattern), and a postorder additionally makes every subtree
	// — hence every fundamental supernode chain — contiguous in column
	// order, which is what the supernode detection and relaxed amalgamation
	// walk. Without it, orderings like minimum degree scatter parent chains
	// across the column range and the panels degenerate to singletons.
	if post := postorder(s.parent); post != nil {
		newPerm := make([]int, n)
		for q, old := range post {
			newPerm[q] = s.perm[old]
		}
		s.perm = newPerm
		s.pinv = InversePerm(s.perm)
		s.buildScatterMap(a)
		s.buildEtree()
	}
	next := make([]int, n)

	// Exact per-column counts: one reach pass counting, one filling. Each
	// pass costs O(lnz) total — the reach of row k lists exactly the columns
	// of L with an entry in row k, in topological order.
	mark := make([]int32, n)
	xi := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	colcount := make([]int, n+1)
	rowcount := make([]int, n+1)
	for k := 0; k < n; k++ {
		top := s.reach(k, mark, xi)
		rowcount[k+1] = n - top
		for t := top; t < n; t++ {
			colcount[xi[t]+1]++
		}
	}
	for i := 0; i < n; i++ {
		colcount[i+1] += colcount[i]
		rowcount[i+1] += rowcount[i]
	}
	s.colptr = colcount
	s.rowptr = rowcount
	s.lnz = colcount[n]
	s.rowidx = make([]int32, s.lnz)
	s.rowind = make([]int32, s.lnz)
	s.rowpos = make([]int32, s.lnz)
	for i := range mark {
		mark[i] = -1
	}
	for k := 0; k < n; k++ {
		next[k] = s.colptr[k]
	}
	for k := 0; k < n; k++ {
		top := s.reach(k, mark, xi)
		base := s.rowptr[k]
		for t := top; t < n; t++ {
			i := xi[t]
			q := next[i]
			next[i]++
			s.rowidx[q] = int32(k)
			s.rowind[base] = i
			s.rowpos[base] = int32(q)
			base++
		}
	}

	s.buildTasks()
	s.buildSupernodes(s.params)
	debugCheckSymbolic(s)
	return s, nil
}

// buildScatterMap computes the scatter map: the upper triangle (incl.
// diagonal) of the permuted matrix, column by column, without materializing
// the permuted matrix. Entry p of original column j = perm-column pinv[j]
// lands on permuted row pinv[i]; symmetric input means scanning whole
// original columns finds every upper-triangle entry exactly once.
func (s *Symbolic) buildScatterMap(a *CSC) {
	n := s.n
	cnt := make([]int, n+1)
	for j := 0; j < n; j++ {
		k := s.pinv[j]
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			if s.pinv[a.Rowidx[p]] <= k {
				cnt[k+1]++
			}
		}
	}
	for k := 0; k < n; k++ {
		cnt[k+1] += cnt[k]
	}
	s.aColptr = cnt
	nnzU := cnt[n]
	s.aSrc = make([]int32, nnzU)
	s.aRow = make([]int32, nnzU)
	next := make([]int, n)
	for k := 0; k < n; k++ {
		next[k] = s.aColptr[k]
	}
	for j := 0; j < n; j++ {
		k := s.pinv[j]
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			i := s.pinv[a.Rowidx[p]]
			if i <= k {
				q := next[k]
				next[k]++
				s.aSrc[q] = int32(p)
				s.aRow[q] = int32(i)
			}
		}
	}
}

// buildEtree computes the elimination tree over the permuted upper triangle
// (path compression via virtual ancestors).
func (s *Symbolic) buildEtree() {
	n := s.n
	parent := make([]int32, n)
	ancestor := make([]int32, n)
	for k := 0; k < n; k++ {
		parent[k] = -1
		ancestor[k] = -1
		for p := s.aColptr[k]; p < s.aColptr[k+1]; p++ {
			i := s.aRow[p]
			for i != -1 && int(i) < k {
				nxt := ancestor[i]
				ancestor[i] = int32(k)
				if nxt == -1 {
					parent[i] = int32(k)
				}
				i = nxt
			}
		}
	}
	s.parent = parent
}

// postorder computes a depth-first postorder of the forest (children before
// parents, each subtree contiguous), returning nil when the forest is
// already postordered — the common case for orderings that emit elimination
// order directly. post[q] is the old index assigned new position q.
func postorder(parent []int32) []int32 {
	n := len(parent)
	// Child lists, built in reverse so each node's children pop in
	// ascending order (a stable relabeling).
	head := make([]int32, n)
	nextSib := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	for j := n - 1; j >= 0; j-- {
		p := parent[j]
		if p == -1 {
			continue
		}
		nextSib[j] = head[p]
		head[p] = int32(j)
	}
	post := make([]int32, 0, n)
	stack := make([]int32, 0, 64)
	for r := 0; r < n; r++ {
		if parent[r] != -1 {
			continue
		}
		stack = append(stack, int32(r))
		for len(stack) > 0 {
			j := stack[len(stack)-1]
			if c := head[j]; c != -1 {
				head[j] = nextSib[c] // defer j until its children are out
				stack = append(stack, c)
				continue
			}
			stack = stack[:len(stack)-1]
			post = append(post, j)
		}
	}
	identity := true
	for q, old := range post {
		if int(old) != q {
			identity = false
			break
		}
	}
	if identity {
		return nil
	}
	return post
}

// levelSchedules builds the forward/backward level sets on first use (they
// are diagnostic — see the field comment — and skipped during analysis).
func (s *Symbolic) levelSchedules() {
	s.levOnce.Do(s.buildLevels)
}

// buildTasks cuts the elimination tree into the scalar task/tail execution
// schedule, row-width weighted.
func (s *Symbolic) buildTasks() {
	cost := make([]int64, s.n)
	for k := 0; k < s.n; k++ {
		cost[k] = int64(s.rowptr[k+1] - s.rowptr[k])
	}
	var parW, tailW int64
	s.taskPtr, s.taskRows, s.tailRows, parW, tailW = cutTasks(s.parent, cost)
	s.parWork, s.tailWork = int(parW), int(tailW)
}

// cutTasks cuts a forest (parent[k] > k or -1) into the task/tail execution
// schedule driving the parallel solves: a node roots a task when its subtree
// work fits the chunk bound but its parent's does not; nodes above every cut
// form the sequential separator tail. Children precede parents in index
// order, so subtree sums and top-down task assignment are both single
// passes. Shared by the scalar (per-row, row-width cost) and supernodal
// (per-supernode, panel-entry cost) schedules.
//
// Chunk bound selection: small chunks balance load, large chunks pull the
// cut toward the root and shrink the sequential tail. The bound escalates
// until the tail is below a quarter of the work with at least two
// independent tasks; a pattern where no bound achieves that (e.g. one
// strongly coupled mesh whose root separators hold most of the work) has no
// exploitable solve parallelism, and the empty schedule makes
// ParallelizableSolve report false.
func cutTasks(parent []int32, cost []int64) (taskPtr []int, taskNodes, tailNodes []int32, parWork, tailWork int64) {
	n := len(parent)
	work := make([]int64, n)
	total := int64(0)
	for k := 0; k < n; k++ {
		work[k] = cost[k] + 1
		total += cost[k]
	}
	for k := 0; k < n; k++ {
		if p := parent[k]; p != -1 {
			work[p] += work[k]
		}
	}
	chunkMax := int64(-1)
	for _, div := range []int64{32, 16, 8, 4, 2, 1} {
		c := total/div + 1
		if c < 4096 {
			continue
		}
		var tail int64
		tasks := 0
		for k := 0; k < n; k++ {
			if work[k] > c {
				tail += cost[k]
			} else if p := parent[k]; p == -1 || work[p] > c {
				tasks++
			}
		}
		if tasks >= 2 && tail*4 <= total {
			chunkMax = c
			break
		}
	}
	if chunkMax < 0 {
		return []int{0}, nil, nil, 0, total
	}
	// taskOf[k] = index of k's task root, or -1 for the tail. Parents have
	// larger indices, so descending k sees the parent's assignment first.
	taskOf := make([]int32, n)
	var roots []int32
	for k := n - 1; k >= 0; k-- {
		p := parent[k]
		if p != -1 && taskOf[p] != -1 {
			taskOf[k] = taskOf[p] // inside an ancestor's task subtree
			continue
		}
		if work[k] <= chunkMax {
			taskOf[k] = int32(len(roots))
			roots = append(roots, int32(k))
		} else {
			taskOf[k] = -1
		}
	}
	taskPtr = make([]int, len(roots)+1)
	for k := 0; k < n; k++ {
		if t := taskOf[k]; t != -1 {
			taskPtr[t+1]++
			parWork += cost[k]
		} else {
			tailWork += cost[k]
		}
	}
	for t := 0; t < len(roots); t++ {
		taskPtr[t+1] += taskPtr[t]
	}
	taskNodes = make([]int32, taskPtr[len(roots)])
	tailNodes = make([]int32, 0, n-len(taskNodes))
	next := make([]int, len(roots))
	copy(next, taskPtr[:len(roots)])
	for k := 0; k < n; k++ {
		if t := taskOf[k]; t != -1 {
			taskNodes[next[t]] = int32(k)
			next[t]++
		} else {
			tailNodes = append(tailNodes, int32(k))
		}
	}
	return taskPtr, taskNodes, tailNodes, parWork, tailWork
}

// reach computes the nonzero pattern of row k of L — the nodes reachable
// from the permuted column k's upper entries by walking up the elimination
// tree — into xi[top:n] in topological order, returning top. mark must be a
// (-1)-initialized workspace stamped by k.
func (s *Symbolic) reach(k int, mark, xi []int32) int {
	n := s.n
	top := n
	mark[k] = int32(k)
	var stackArr [64]int32
	for p := s.aColptr[k]; p < s.aColptr[k+1]; p++ {
		i := s.aRow[p]
		if int(i) >= k {
			continue
		}
		path := stackArr[:0]
		for i != -1 && mark[i] != int32(k) {
			path = append(path, i)
			mark[i] = int32(k)
			i = s.parent[i]
		}
		for len(path) > 0 {
			top--
			xi[top] = path[len(path)-1]
			path = path[:len(path)-1]
		}
	}
	return top
}

// buildLevels computes the forward and backward solve level schedules. The
// forward gather solve finalizes row k after every column in its row pattern
// (all of which are etree descendants); the backward solve finalizes row i
// after every row in its column pattern (etree ancestors). Rows sharing a
// level have disjoint dependencies and run concurrently without write
// conflicts — each row is a gather into its own entry.
func (s *Symbolic) buildLevels() {
	n := s.n
	lev := make([]int32, n)
	maxLev := int32(-1)
	for k := 0; k < n; k++ {
		l := int32(0)
		for t := s.rowptr[k]; t < s.rowptr[k+1]; t++ {
			if pl := lev[s.rowind[t]] + 1; pl > l {
				l = pl
			}
		}
		lev[k] = l
		if l > maxLev {
			maxLev = l
		}
	}
	s.fwdPtr, s.fwdRows = bucketLevels(lev, int(maxLev)+1)

	for i := range lev {
		lev[i] = 0
	}
	maxLev = -1
	for i := n - 1; i >= 0; i-- {
		l := int32(0)
		for q := s.colptr[i]; q < s.colptr[i+1]; q++ {
			if pl := lev[s.rowidx[q]] + 1; pl > l {
				l = pl
			}
		}
		lev[i] = l
		if l > maxLev {
			maxLev = l
		}
	}
	s.bwdPtr, s.bwdRows = bucketLevels(lev, int(maxLev)+1)

	for l := 0; l+1 < len(s.fwdPtr); l++ {
		if w := s.fwdPtr[l+1] - s.fwdPtr[l]; w > s.maxLevelWidth {
			s.maxLevelWidth = w
		}
	}
	for l := 0; l+1 < len(s.bwdPtr); l++ {
		if w := s.bwdPtr[l+1] - s.bwdPtr[l]; w > s.maxLevelWidth {
			s.maxLevelWidth = w
		}
	}
}

// bucketLevels groups rows by level into a concatenated ptr/rows pair; rows
// stay ascending within each level.
func bucketLevels(lev []int32, nlev int) ([]int, []int32) {
	if nlev < 1 {
		nlev = 1
	}
	ptr := make([]int, nlev+1)
	for _, l := range lev {
		ptr[l+1]++
	}
	for l := 0; l < nlev; l++ {
		ptr[l+1] += ptr[l]
	}
	rows := make([]int32, len(lev))
	next := append([]int(nil), ptr[:nlev]...)
	for i, l := range lev {
		rows[next[l]] = int32(i)
		next[l]++
	}
	return ptr, rows
}

// Refactor numerically factorizes a — any matrix with the analyzed pattern —
// into a fresh LDLT. The factor's value arrays and workspaces are the only
// allocations; repeated refactorization into an existing factor
// (RefactorInto) allocates nothing.
func (s *Symbolic) Refactor(a *CSC) (*LDLT, error) {
	f := &LDLT{sym: s, d: make([]float64, s.n)}
	if s.sn != nil {
		f.snValues = make([]float64, s.sn.nzTotal)
		f.smap = make([]int32, s.n)
		f.uptmp = make([]float64, s.sn.maxRows)
		f.coeff = make([]float64, s.sn.maxW)
		f.gbuf = make([]float64, 8*s.sn.maxRows)
	} else {
		f.values = make([]float64, s.lnz)
		f.valuesR = make([]float64, s.lnz)
		f.y = make([]float64, s.n)
	}
	if err := s.RefactorInto(f, a); err != nil {
		return nil, err
	}
	return f, nil
}

// RefactorInto refills an existing factor (previously produced by Refactor
// against this same analysis) with the values of a. It performs the
// supernodal left-looking panel factorization when the analysis carries a
// supernodal layout, the scalar up-looking elimination over the static
// pattern otherwise: no appends, no reach recomputation, no heap allocation
// either way. It returns ErrSingular on a zero pivot, leaving the factor
// contents unspecified. Must not race with solves on the same factor.
//
//matex:noalloc
func (s *Symbolic) RefactorInto(f *LDLT, a *CSC) error {
	if f.sym != s {
		return fmt.Errorf("sparse: RefactorInto factor belongs to a different analysis") //matex:alloc-ok(caller-misuse error path)
	}
	// Dimension check only; the pattern itself is trusted to match (callers
	// key Symbolic lookups by PatternFingerprint).
	if a.Rows != s.n || a.Cols != s.n {
		return fmt.Errorf("sparse: RefactorInto dimension mismatch: analysis %d, matrix %dx%d", s.n, a.Rows, a.Cols) //matex:alloc-ok(caller-misuse error path)
	}
	if s.sn != nil {
		if err := s.refactorSN(f, a); err != nil {
			return err
		}
		debugCheckFactor(f)
		return nil
	}
	values, valuesR, d, y := f.values, f.valuesR, f.d, f.y
	av := a.Values
	for k := 0; k < s.n; k++ {
		// Scatter the permuted upper column k and grab the diagonal.
		dk := 0.0
		for p := s.aColptr[k]; p < s.aColptr[k+1]; p++ {
			i := s.aRow[p]
			v := av[s.aSrc[p]]
			if int(i) == k {
				dk += v // duplicates cannot occur post-merge, but += is free
			} else {
				y[i] += v
			}
		}
		// Up-looking elimination along the precomputed row pattern
		// (topological order). Entries of column i filled so far are exactly
		// colptr[i] .. rowpos[t] — rows < k by construction.
		for t := s.rowptr[k]; t < s.rowptr[k+1]; t++ {
			i := s.rowind[t]
			yi := y[i]
			y[i] = 0
			lki := yi / d[i]
			end := int(s.rowpos[t])
			for q := s.colptr[i]; q < end; q++ {
				y[s.rowidx[q]] -= values[q] * yi
			}
			dk -= lki * yi
			values[end] = lki
			valuesR[t] = lki // row-major mirror for the gather forward solve
		}
		if dk == 0 || math.IsNaN(dk) {
			// Clear the scatter residue before returning so a retry (or a
			// later refactorization) starts from a clean workspace.
			for i := range y {
				y[i] = 0
			}
			return fmt.Errorf("%w: zero pivot at column %d in LDLT", ErrSingular, k) //matex:alloc-ok(singular-matrix error path; factorization is abandoned)
		}
		d[k] = dk
	}
	debugCheckFactor(f)
	return nil
}

// Tasks returns the number of independent subtree tasks in the parallel
// execution schedule.
func (s *Symbolic) Tasks() int { return len(s.taskPtr) - 1 }

// TailWork returns the separator-tail share of lnz (diagnostics).
func (s *Symbolic) TailWork() (tail, total int) { return s.tailWork, s.tailWork + s.parWork }
