package sparse

import "sync"

// PanelBroker batches triangular solves issued by concurrent simulation
// lanes into multi-RHS panels, the cross-job analogue of request batching
// in an inference serving stack. Each participant joins the broker as a
// lane and wraps its factorizations with PanelLane.Wrap; every Solve /
// SolveWith / SolveMulti on a wrapped factorization then parks in the
// broker until all currently active lanes have a solve pending (a phaser
// barrier), at which point the whole round executes at once: requests
// against the same underlying factorization become one SolveMulti panel
// (k interleaved right-hand sides per factor traversal, the PR 4 blocked
// kernel), stragglers execute solo.
//
// The scheme is deadlock-free by construction: a lane is, at every
// moment, either computing (and will eventually submit another solve) or
// done (and must Leave, which shrinks the barrier). Lanes whose adaptive
// step grids diverge from the rest still batch — rounds are formed from
// concurrent pendency, not from matching simulation times — and a lane
// that finishes early or fails simply leaves, narrowing subsequent
// panels instead of stalling them. A broker with a single active lane
// degenerates to pass-through solves.
type PanelBroker struct {
	mu      sync.Mutex
	cond    *sync.Cond
	lanes   int         // joined and not yet left
	waiting int         // lanes with a submitted, unexecuted request
	pending []*panelReq // requests queued for the current round
	stats   PanelStats
}

// PanelStats reports the batching achieved by a PanelBroker.
type PanelStats struct {
	// Rounds counts barrier rounds executed.
	Rounds int
	// Solves counts individual right-hand sides routed through the broker.
	Solves int
	// Batched counts right-hand sides that executed inside a multi-RHS
	// panel of width >= 2 (the rest ran solo).
	Batched int
	// Widths histograms panel executions by width: Widths[k] panels ran
	// with k right-hand sides against one factorization.
	Widths map[int]int
}

// MeanWidth returns the average panel width (right-hand sides per factor
// traversal); 0 when nothing was routed through the broker.
func (s PanelStats) MeanWidth() float64 {
	n, sum := 0, 0
	for w, c := range s.Widths {
		n += c
		sum += w * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

type panelReq struct {
	lane *PanelLane
	fact Factorization // underlying (unwrapped) factorization
	dst  []float64
	b    []float64
	done bool
}

// NewPanelBroker returns an empty broker; lanes are added with Join.
func NewPanelBroker() *PanelBroker {
	br := &PanelBroker{}
	br.cond = sync.NewCond(&br.mu)
	return br
}

// Join registers a new lane. Every joined lane must eventually call
// Leave — typically deferred right after Join — or the remaining lanes'
// barrier never fills.
func (br *PanelBroker) Join() *PanelLane {
	br.mu.Lock()
	br.lanes++
	br.mu.Unlock()
	return &PanelLane{br: br}
}

// Stats snapshots the batching counters.
func (br *PanelBroker) Stats() PanelStats {
	br.mu.Lock()
	defer br.mu.Unlock()
	out := br.stats
	out.Widths = make(map[int]int, len(br.stats.Widths))
	for w, c := range br.stats.Widths {
		out.Widths[w] = c
	}
	return out
}

// PanelLane is one participant's handle on a PanelBroker.
type PanelLane struct {
	br   *PanelBroker
	left bool
}

// Wrap returns a Factorization whose solves are routed through the
// broker. The wrapper implements MultiSolver (a k-RHS call contributes k
// rows to the round's panels) but deliberately not ParSolver: batching
// replaces per-solve level-scheduled parallelism as the concurrency
// mechanism. Wrapping the same factorization twice yields distinct
// wrappers that still batch together — panels group by the underlying
// factorization's identity.
func (ln *PanelLane) Wrap(f Factorization) Factorization {
	if inner, ok := f.(*panelFact); ok {
		f = inner.fact
	}
	return &panelFact{lane: ln, fact: f}
}

// Leave withdraws the lane from the barrier; pending requests from other
// lanes no longer wait for it. Leave is idempotent.
func (ln *PanelLane) Leave() {
	br := ln.br
	br.mu.Lock()
	defer br.mu.Unlock()
	if ln.left {
		return
	}
	ln.left = true
	br.lanes--
	if br.waiting > 0 && br.waiting == br.lanes {
		br.runRound()
	}
}

// solve submits one lane's requests (one per RHS) and blocks until a
// round has executed them.
func (ln *PanelLane) solve(reqs []*panelReq) {
	br := ln.br
	br.mu.Lock()
	defer br.mu.Unlock()
	if ln.left {
		// A left lane keeps working: execute immediately, outside the
		// barrier, so stray solves after Leave cannot deadlock.
		execGroup(reqs, &br.stats)
		return
	}
	br.pending = append(br.pending, reqs...)
	br.waiting++
	if br.waiting == br.lanes {
		br.runRound()
	}
	for !reqsDone(reqs) {
		br.cond.Wait()
	}
}

func reqsDone(reqs []*panelReq) bool {
	for _, r := range reqs {
		if !r.done {
			return false
		}
	}
	return true
}

// runRound executes every pending request, grouped by underlying
// factorization, and wakes the waiting lanes. Called with br.mu held; the
// solves run under the lock, which is safe (and contention-free) because
// every lane with work in flight is parked in cond.Wait.
func (br *PanelBroker) runRound() {
	batch := br.pending
	br.pending = nil
	br.waiting = 0
	br.stats.Rounds++
	// Group by underlying factorization identity, preserving first-seen
	// order: lanes submit in scheduler order, so same-phase requests
	// against one factor may interleave with a straggler's other factor.
	var order []Factorization
	groups := make(map[Factorization][]*panelReq, 2)
	for _, r := range batch {
		if _, ok := groups[r.fact]; !ok {
			order = append(order, r.fact)
		}
		groups[r.fact] = append(groups[r.fact], r)
	}
	for _, f := range order {
		execGroup(groups[f], &br.stats)
	}
	br.cond.Broadcast()
}

// execGroup runs one same-factorization group, as a multi-RHS panel when
// the factorization supports it and the group has width >= 2.
func execGroup(reqs []*panelReq, stats *PanelStats) {
	stats.Solves += len(reqs)
	if stats.Widths == nil {
		stats.Widths = make(map[int]int)
	}
	stats.Widths[len(reqs)]++
	if len(reqs) >= 2 {
		if ms, ok := reqs[0].fact.(MultiSolver); ok {
			dst := make([][]float64, len(reqs))
			b := make([][]float64, len(reqs))
			for i, r := range reqs {
				dst[i], b[i] = r.dst, r.b
			}
			ms.SolveMulti(dst, b)
			stats.Batched += len(reqs)
			for _, r := range reqs {
				r.done = true
			}
			return
		}
	}
	for _, r := range reqs {
		r.fact.Solve(r.dst, r.b)
		r.done = true
	}
}

// panelFact routes a factorization's solves through the lane's broker.
type panelFact struct {
	lane *PanelLane
	fact Factorization
}

func (p *panelFact) N() int   { return p.fact.N() }
func (p *panelFact) NNZ() int { return p.fact.NNZ() }

func (p *panelFact) Solve(dst, b []float64) {
	p.lane.solve([]*panelReq{{lane: p.lane, fact: p.fact, dst: dst, b: b}})
}

// SolveWith joins the current panel round; the scratch buffer is unused
// because the executing kernel provisions its own interleaved workspace.
func (p *panelFact) SolveWith(dst, b, work []float64) {
	p.Solve(dst, b)
}

// SolveMulti contributes all k right-hand sides to one round, so a
// within-lane panel and the cross-lane batching compose.
func (p *panelFact) SolveMulti(dst, b [][]float64) {
	if len(dst) != len(b) {
		panic("sparse: SolveMulti dst/b length mismatch")
	}
	if len(dst) == 0 {
		return
	}
	reqs := make([]*panelReq, len(dst))
	for i := range dst {
		reqs[i] = &panelReq{lane: p.lane, fact: p.fact, dst: dst[i], b: b[i]}
	}
	p.lane.solve(reqs)
}
