package sparse

// Nested dissection: recursively split the graph of A+Aᵀ with small vertex
// separators, order the two halves first and the separator last, and hand
// subgraphs below a size cutoff to minimum degree. On the 2D power-grid
// meshes the paper's method targets, the O(√n) separators bound fill growth
// where bandwidth orderings pay O(n) fronts — and, just as important here,
// the separator tree is exactly the shape the parallel triangular solves
// want: the two halves share no factor rows below the separator, so the
// elimination-tree task cut finds balanced independent subtrees even on one
// strongly coupled mesh, where RCM's chain-like etree has none.

// ndLeafSize is the subgraph size below which recursion stops and minimum
// degree orders the leaf directly.
const ndLeafSize = 48

// NestedDissection returns a nested-dissection ordering of the pattern of
// a+aᵀ: column k of the permuted matrix is p[k] of the original.
func NestedDissection(a *CSC) []int {
	n := a.Cols
	nd := &ndState{
		adj:   symPattern(a),
		perm:  make([]int, 0, n),
		level: make([]int32, n),
		inSet: make([]int32, n),
		gen:   0,
	}
	for i := range nd.inSet {
		nd.inSet[i] = -1
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	nd.dissect(all)
	return nd.perm
}

type ndState struct {
	adj  [][]int
	perm []int
	// level and inSet are n-sized scratch shared across the recursion;
	// inSet stamps the node set of the current operation with a generation
	// counter so membership tests need no clearing between calls.
	level []int32
	inSet []int32
	gen   int32
}

// mark stamps a node set with a fresh generation and returns the stamp.
func (nd *ndState) mark(nodes []int) int32 {
	nd.gen++
	g := nd.gen
	for _, v := range nodes {
		nd.inSet[v] = g
	}
	return g
}

// dissect recursively orders one node set into nd.perm.
func (nd *ndState) dissect(nodes []int) {
	if len(nodes) == 0 {
		return
	}
	if len(nodes) <= ndLeafSize {
		nd.leafOrder(nodes)
		return
	}
	// Split connected components first: each is dissected independently.
	g := nd.mark(nodes)
	comps := nd.components(nodes, g)
	for _, comp := range comps {
		if len(comp) <= ndLeafSize {
			nd.leafOrder(comp)
			continue
		}
		a, b, sep, ok := nd.split(comp)
		if !ok {
			// Degenerate level structure (e.g. a star): no useful bisection.
			nd.leafOrder(comp)
			continue
		}
		nd.dissect(a)
		nd.dissect(b)
		// Separator last: its rows are the shared ancestors of both halves.
		if len(sep) > ndLeafSize {
			// Large separators (wide meshes) still benefit from a
			// fill-reducing internal order.
			nd.leafOrder(sep)
		} else {
			nd.perm = append(nd.perm, sep...)
		}
	}
}

// components partitions a stamped node set into connected components of the
// induced subgraph.
func (nd *ndState) components(nodes []int, g int32) [][]int {
	seen := nd.level // reuse as a visited flag: 0 = unseen this pass
	for _, v := range nodes {
		seen[v] = 0
	}
	var comps [][]int
	for _, root := range nodes {
		if seen[root] != 0 {
			continue
		}
		comp := []int{root}
		seen[root] = 1
		for head := 0; head < len(comp); head++ {
			for _, w := range nd.adj[comp[head]] {
				if nd.inSet[w] == g && seen[w] == 0 {
					seen[w] = 1
					comp = append(comp, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// split bisects one connected component with a level-structure vertex
// separator: BFS from a pseudo-peripheral root builds distance levels, the
// level closest to the halfway point becomes the separator, everything
// below it one half and everything above the other. Separator nodes with no
// neighbor in the near half are shed into the far half (they separate
// nothing). Returns ok=false when the level structure is too shallow to
// give a nontrivial split.
func (nd *ndState) split(comp []int) (a, b, sep []int, ok bool) {
	g := nd.mark(comp)
	// Pseudo-peripheral root: the last node of a BFS from an arbitrary
	// start is (nearly) eccentric; one repetition sharpens it.
	root := comp[0]
	for pass := 0; pass < 2; pass++ {
		root = nd.bfsLast(root, g)
	}
	// Level structure from the root.
	level := nd.level
	for _, v := range comp {
		level[v] = -1
	}
	queue := make([]int, 0, len(comp))
	queue = append(queue, root)
	level[root] = 0
	nlev := int32(1)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range nd.adj[v] {
			if nd.inSet[w] == g && level[w] == -1 {
				level[w] = level[v] + 1
				if level[w]+1 > nlev {
					nlev = level[w] + 1
				}
				queue = append(queue, w)
			}
		}
	}
	if nlev < 3 {
		return nil, nil, nil, false
	}
	// Cumulative level sizes pick the split level whose below-half is
	// closest to |comp|/2 among interior levels.
	sizes := make([]int, nlev)
	for _, v := range comp {
		sizes[level[v]]++
	}
	half := len(comp) / 2
	below := 0
	cut := int32(1)
	bestDist := len(comp)
	for l := int32(1); l < nlev-1; l++ {
		below += sizes[l-1]
		d := below - half
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestDist = d
			cut = l
		}
	}
	for _, v := range comp {
		switch {
		case level[v] < cut:
			a = append(a, v)
		case level[v] > cut:
			b = append(b, v)
		}
	}
	// Shrink: a cut-level node adjacent to no level-(cut-1) node cannot be
	// on any a↔b path through the cut, so it joins b.
	for _, v := range comp {
		if level[v] != cut {
			continue
		}
		connected := false
		for _, w := range nd.adj[v] {
			if nd.inSet[w] == g && level[w] == cut-1 {
				connected = true
				break
			}
		}
		if connected {
			sep = append(sep, v)
		} else {
			b = append(b, v)
		}
	}
	if len(a) == 0 || len(b) == 0 {
		return nil, nil, nil, false
	}
	return a, b, sep, true
}

// bfsLast returns the last node reached by a BFS over the stamped set.
func (nd *ndState) bfsLast(root int, g int32) int {
	level := nd.level
	// A fresh sub-generation would clobber g; reuse level as the visited
	// marker instead (any node of the set gets -2 first).
	last := root
	queue := make([]int, 0, 64)
	queue = append(queue, root)
	level[root] = -2
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		last = v
		for _, w := range nd.adj[v] {
			if nd.inSet[w] == g && level[w] != -2 {
				level[w] = -2
				queue = append(queue, w)
			}
		}
	}
	// Reset the markers for the caller's level pass.
	for _, v := range queue {
		level[v] = -1
	}
	return last
}

// leafOrder appends a minimum-degree ordering of the induced subgraph.
func (nd *ndState) leafOrder(nodes []int) {
	if len(nodes) == 1 {
		nd.perm = append(nd.perm, nodes[0])
		return
	}
	g := nd.mark(nodes)
	// Local ids through the level scratch.
	local := nd.level
	for i, v := range nodes {
		local[v] = int32(i)
	}
	sub := make([][]int, len(nodes))
	for i, v := range nodes {
		var row []int
		for _, w := range nd.adj[v] {
			if nd.inSet[w] == g {
				row = append(row, int(local[w]))
			}
		}
		sub[i] = row
	}
	for _, li := range minDegreeAdj(sub) {
		nd.perm = append(nd.perm, nodes[li])
	}
}
