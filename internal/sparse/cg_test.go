package sparse

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCGUnpreconditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	a := randomSPD(rng, 50)
	b := make([]float64, 50)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, 50)
	res, err := CG(a, x, b, nil, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > 1e-8 {
		t.Fatalf("residual %g after %d iterations", r, res.Iterations)
	}
}

func TestCGJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randomSPD(rng, 80)
	b := make([]float64, 80)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	xPlain := make([]float64, 80)
	xJac := make([]float64, 80)
	plain, err := CG(a, xPlain, b, nil, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	jac, err := CG(a, xJac, b, NewJacobiPreconditioner(a), 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, xJac, b); r > 1e-8 {
		t.Fatalf("Jacobi residual %g", r)
	}
	t.Logf("plain %d iters, jacobi %d iters", plain.Iterations, jac.Iterations)
}

func TestCGWithICPreconditioner(t *testing.T) {
	a := gridLaplacian(25, 25)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%13) - 6
	}
	xPlain := make([]float64, n)
	plain, err := CG(a, xPlain, b, nil, 1e-10, 5000)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := NewICPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	xIC := make([]float64, n)
	pre, err := CG(a, xIC, b, ic, 1e-10, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, xIC, b); r > 1e-6 {
		t.Fatalf("IC residual %g", r)
	}
	if pre.Iterations >= plain.Iterations {
		t.Errorf("IC(0) did not accelerate: %d vs %d iterations", pre.Iterations, plain.Iterations)
	}
}

func TestCGMatchesDirect(t *testing.T) {
	a := gridLaplacian(15, 15)
	n := a.Rows
	rng := rand.New(rand.NewSource(42))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	f, err := FactorLDLT(a, OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	xDirect := make([]float64, n)
	f.Solve(xDirect, b)
	xCG := make([]float64, n)
	ic, err := NewICPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CG(a, xCG, b, ic, 1e-13, 5000); err != nil {
		t.Fatal(err)
	}
	for i := range xDirect {
		if !almostEqual(xDirect[i], xCG[i], 1e-7) {
			t.Fatalf("CG vs direct mismatch at %d: %g vs %g", i, xCG[i], xDirect[i])
		}
	}
}

func TestCGIndefiniteDetected(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Add(0, 0, 1)
	tr.Add(1, 1, -1)
	a := tr.ToCSC()
	x := make([]float64, 2)
	if _, err := CG(a, x, []float64{0, 1}, nil, 1e-10, 100); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := gridLaplacian(5, 5)
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = 1
	}
	res, err := CG(a, x, make([]float64, a.Rows), nil, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero RHS should give zero solution")
		}
	}
	if res.Iterations != 0 {
		t.Fatal("zero RHS should not iterate")
	}
}

func TestCGNoConvergenceBudget(t *testing.T) {
	a := gridLaplacian(30, 30)
	rng := rand.New(rand.NewSource(44))
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, a.Rows)
	_, err := CG(a, x, b, nil, 1e-14, 2)
	if !errors.Is(err, ErrNoCGConvergence) {
		t.Fatalf("expected ErrNoCGConvergence, got %v", err)
	}
}

// Property: preconditioned CG solves random SPD systems.
func TestQuickCGSolves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		ic, err := NewICPreconditioner(a)
		if err != nil {
			return false
		}
		if _, err := CG(a, x, b, ic, 1e-11, 10*n); err != nil {
			return false
		}
		return residual(a, x, b) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkCGGridIC(b *testing.B) {
	a := gridLaplacian(40, 40)
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = 1
	}
	ic, err := NewICPreconditioner(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, a.Rows)
		if _, err := CG(a, x, rhs, ic, 1e-10, 5000); err != nil {
			b.Fatal(err)
		}
	}
}
