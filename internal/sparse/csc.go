package sparse

import (
	"fmt"
	"math"
)

// CSC is a sparse matrix in compressed sparse column form. Row indices are
// sorted within each column and duplicates have been merged.
type CSC struct {
	Rows, Cols int
	Colptr     []int     // length Cols+1
	Rowidx     []int     // length NNZ
	Values     []float64 // length NNZ
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *CSC {
	colptr := make([]int, n+1)
	rowidx := make([]int, n)
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		colptr[i] = i
		rowidx[i] = i
		values[i] = 1
	}
	colptr[n] = n
	return &CSC{Rows: n, Cols: n, Colptr: colptr, Rowidx: rowidx, Values: values}
}

// Dims returns the matrix dimensions.
func (m *CSC) Dims() (rows, cols int) { return m.Rows, m.Cols }

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return len(m.Values) }

// At returns the entry at (i, j) using a binary search within column j.
func (m *CSC) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	lo, hi := m.Colptr[j], m.Colptr[j+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case m.Rowidx[mid] < i:
			lo = mid + 1
		case m.Rowidx[mid] > i:
			hi = mid
		default:
			return m.Values[mid]
		}
	}
	return 0
}

// Clone returns a deep copy of the matrix.
func (m *CSC) Clone() *CSC {
	c := &CSC{
		Rows:   m.Rows,
		Cols:   m.Cols,
		Colptr: append([]int(nil), m.Colptr...),
		Rowidx: append([]int(nil), m.Rowidx...),
		Values: append([]float64(nil), m.Values...),
	}
	return c
}

// Scale multiplies every stored entry by s in place and returns m.
func (m *CSC) Scale(s float64) *CSC {
	for i := range m.Values {
		m.Values[i] *= s
	}
	return m
}

// MulVec computes dst = m * x. dst must have length m.Rows and x length
// m.Cols; dst and x must not alias.
func (m *CSC) MulVec(dst, x []float64) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		panic("sparse: MulVec dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for j := 0; j < m.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := m.Colptr[j]; p < m.Colptr[j+1]; p++ {
			dst[m.Rowidx[p]] += m.Values[p] * xj
		}
	}
}

// MulVecAdd computes dst += alpha * m * x.
func (m *CSC) MulVecAdd(dst []float64, alpha float64, x []float64) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		panic("sparse: MulVecAdd dimension mismatch")
	}
	for j := 0; j < m.Cols; j++ {
		axj := alpha * x[j]
		if axj == 0 {
			continue
		}
		for p := m.Colptr[j]; p < m.Colptr[j+1]; p++ {
			dst[m.Rowidx[p]] += m.Values[p] * axj
		}
	}
}

// MulVecT computes dst = mᵀ * x, i.e. dst[j] = Σ_i m[i,j] x[i].
func (m *CSC) MulVecT(dst, x []float64) {
	if len(dst) != m.Cols || len(x) != m.Rows {
		panic("sparse: MulVecT dimension mismatch")
	}
	for j := 0; j < m.Cols; j++ {
		var s float64
		for p := m.Colptr[j]; p < m.Colptr[j+1]; p++ {
			s += m.Values[p] * x[m.Rowidx[p]]
		}
		dst[j] = s
	}
}

// Transpose returns mᵀ as a new matrix.
func (m *CSC) Transpose() *CSC {
	rowCount := make([]int, m.Rows+1)
	for _, i := range m.Rowidx {
		rowCount[i+1]++
	}
	for i := 0; i < m.Rows; i++ {
		rowCount[i+1] += rowCount[i]
	}
	t := &CSC{
		Rows:   m.Cols,
		Cols:   m.Rows,
		Colptr: rowCount,
		Rowidx: make([]int, m.NNZ()),
		Values: make([]float64, m.NNZ()),
	}
	next := make([]int, m.Rows)
	copy(next, t.Colptr[:m.Rows])
	for j := 0; j < m.Cols; j++ {
		for p := m.Colptr[j]; p < m.Colptr[j+1]; p++ {
			i := m.Rowidx[p]
			q := next[i]
			next[i]++
			t.Rowidx[q] = j
			t.Values[q] = m.Values[p]
		}
	}
	return t
}

// Add returns alpha*a + beta*b. The operands must share dimensions.
func Add(alpha float64, a *CSC, beta float64, b *CSC) *CSC {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("sparse: Add dimension mismatch")
	}
	colptr := make([]int, a.Cols+1)
	rowidx := make([]int, 0, a.NNZ()+b.NNZ())
	values := make([]float64, 0, a.NNZ()+b.NNZ())
	for j := 0; j < a.Cols; j++ {
		pa, ea := a.Colptr[j], a.Colptr[j+1]
		pb, eb := b.Colptr[j], b.Colptr[j+1]
		for pa < ea || pb < eb {
			switch {
			case pb >= eb || (pa < ea && a.Rowidx[pa] < b.Rowidx[pb]):
				rowidx = append(rowidx, a.Rowidx[pa])
				values = append(values, alpha*a.Values[pa])
				pa++
			case pa >= ea || b.Rowidx[pb] < a.Rowidx[pa]:
				rowidx = append(rowidx, b.Rowidx[pb])
				values = append(values, beta*b.Values[pb])
				pb++
			default:
				rowidx = append(rowidx, a.Rowidx[pa])
				values = append(values, alpha*a.Values[pa]+beta*b.Values[pb])
				pa++
				pb++
			}
		}
		colptr[j+1] = len(rowidx)
	}
	return &CSC{Rows: a.Rows, Cols: a.Cols, Colptr: colptr, Rowidx: rowidx, Values: values}
}

// Diag returns the matrix diagonal as a dense vector.
func (m *CSC) Diag() []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]float64, n)
	for j := 0; j < n; j++ {
		d[j] = m.At(j, j)
	}
	return d
}

// IsSymmetric reports whether the matrix is numerically symmetric to within
// tol on every entry.
func (m *CSC) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	t := m.Transpose()
	if len(t.Rowidx) != len(m.Rowidx) {
		// Pattern can still match numerically if extra entries are ~0;
		// fall through to the value comparison on the sum.
		d := Add(1, m, -1, t)
		for _, v := range d.Values {
			if math.Abs(v) > tol {
				return false
			}
		}
		return true
	}
	for j := 0; j < m.Cols; j++ {
		pa, pb := m.Colptr[j], t.Colptr[j]
		if m.Colptr[j+1]-pa != t.Colptr[j+1]-pb {
			d := Add(1, m, -1, t)
			for _, v := range d.Values {
				if math.Abs(v) > tol {
					return false
				}
			}
			return true
		}
		for ; pa < m.Colptr[j+1]; pa, pb = pa+1, pb+1 {
			if m.Rowidx[pa] != t.Rowidx[pb] || math.Abs(m.Values[pa]-t.Values[pb]) > tol {
				return false
			}
		}
	}
	return true
}

// OneNorm returns the maximum absolute column sum.
func (m *CSC) OneNorm() float64 {
	var max float64
	for j := 0; j < m.Cols; j++ {
		var s float64
		for p := m.Colptr[j]; p < m.Colptr[j+1]; p++ {
			s += math.Abs(m.Values[p])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// InfNorm returns the maximum absolute row sum.
func (m *CSC) InfNorm() float64 {
	rowSum := make([]float64, m.Rows)
	for p, i := range m.Rowidx {
		rowSum[i] += math.Abs(m.Values[p])
	}
	var max float64
	for _, s := range rowSum {
		if s > max {
			max = s
		}
	}
	return max
}

// Dense expands the matrix into a row-major dense slice of slices, intended
// for tests and small-matrix interop.
func (m *CSC) Dense() [][]float64 {
	d := make([][]float64, m.Rows)
	for i := range d {
		d[i] = make([]float64, m.Cols)
	}
	for j := 0; j < m.Cols; j++ {
		for p := m.Colptr[j]; p < m.Colptr[j+1]; p++ {
			d[m.Rowidx[p]][j] = m.Values[p]
		}
	}
	return d
}

// DropZeros removes stored entries with absolute value <= tol, compacting in
// place, and returns m.
func (m *CSC) DropZeros(tol float64) *CSC {
	nz := 0
	colstart := make([]int, m.Cols+1)
	for j := 0; j < m.Cols; j++ {
		colstart[j] = nz
		for p := m.Colptr[j]; p < m.Colptr[j+1]; p++ {
			if math.Abs(m.Values[p]) > tol {
				m.Rowidx[nz] = m.Rowidx[p]
				m.Values[nz] = m.Values[p]
				nz++
			}
		}
	}
	colstart[m.Cols] = nz
	m.Colptr = colstart
	m.Rowidx = m.Rowidx[:nz]
	m.Values = m.Values[:nz]
	return m
}
