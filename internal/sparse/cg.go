package sparse

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoCGConvergence is returned when CG does not reach tolerance within the
// iteration budget.
var ErrNoCGConvergence = errors.New("sparse: conjugate gradient did not converge")

// Preconditioner applies z = M⁻¹ r for an SPD approximation M of A.
type Preconditioner interface {
	Precondition(z, r []float64)
}

// JacobiPreconditioner is diagonal scaling.
type JacobiPreconditioner struct {
	invDiag []float64
}

// NewJacobiPreconditioner builds M = diag(A). Zero diagonals become 1.
func NewJacobiPreconditioner(a *CSC) *JacobiPreconditioner {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v != 0 {
			inv[i] = 1 / v
		} else {
			inv[i] = 1
		}
	}
	return &JacobiPreconditioner{invDiag: inv}
}

// Precondition implements Preconditioner.
func (p *JacobiPreconditioner) Precondition(z, r []float64) {
	for i := range z {
		z[i] = p.invDiag[i] * r[i]
	}
}

// ICPreconditioner is a zero-fill incomplete Cholesky factorization
// M = L·Lᵀ with the sparsity pattern of the lower triangle of A.
type ICPreconditioner struct {
	l *CSC // lower triangular, diagonal first in each column
}

// NewICPreconditioner computes IC(0) of the SPD matrix a. When a pivot goes
// non-positive (a is not quite SPD or IC(0) breaks down), the pivot is
// shifted — the standard fix, trading accuracy for robustness.
func NewICPreconditioner(a *CSC) (*ICPreconditioner, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: IC needs a square matrix")
	}
	n := a.Cols
	// Extract the lower triangle pattern (diagonal first).
	colptr := make([]int, n+1)
	var rowidx []int
	var values []float64
	for j := 0; j < n; j++ {
		colptr[j] = len(rowidx)
		diagSeen := false
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			i := a.Rowidx[p]
			if i < j {
				continue
			}
			if i == j {
				diagSeen = true
			}
			rowidx = append(rowidx, i)
			values = append(values, a.Values[p])
		}
		if !diagSeen {
			return nil, fmt.Errorf("sparse: IC: zero structural diagonal at %d", j)
		}
	}
	colptr[n] = len(rowidx)
	l := &CSC{Rows: n, Cols: n, Colptr: colptr, Rowidx: rowidx, Values: values}

	// Left-looking IC(0): for each column j, subtract contributions of
	// earlier columns restricted to the pattern, then scale.
	// colOf[i] tracks, for the sweep of column k, the position of row i in
	// column k's storage (or -1).
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	// firstBelow[k] is the next entry of column k participating in updates;
	// rowNext links columns that have their current "active" row equal to r.
	first := make([]int, n)
	rowHead := make([]int, n)
	rowNext := make([]int, n)
	for i := range rowHead {
		rowHead[i] = -1
	}
	for j := 0; j < n; j++ {
		start, end := l.Colptr[j], l.Colptr[j+1]
		for p := start; p < end; p++ {
			pos[l.Rowidx[p]] = p
		}
		// Apply updates from all columns k < j with l[j][k] != 0.
		for k := rowHead[j]; k != -1; {
			nextK := rowNext[k]
			pk := first[k] // entry (j, k)
			ljk := l.Values[pk]
			for p := pk; p < l.Colptr[k+1]; p++ {
				i := l.Rowidx[p]
				if q := pos[i]; q >= 0 {
					l.Values[q] -= ljk * l.Values[p]
				}
			}
			// Advance column k to its next row and relink.
			if pk+1 < l.Colptr[k+1] {
				first[k] = pk + 1
				r := l.Rowidx[pk+1]
				rowNext[k] = rowHead[r]
				rowHead[r] = k
			}
			k = nextK
		}
		// Scale column j.
		dj := l.Values[start]
		if dj <= 0 {
			dj = 1e-3 * math.Abs(l.Values[start]) // shifted pivot fallback
			if dj == 0 {
				dj = 1e-12
			}
		}
		dj = math.Sqrt(dj)
		l.Values[start] = dj
		for p := start + 1; p < end; p++ {
			l.Values[p] /= dj
		}
		// Register column j for future updates.
		if start+1 < end {
			first[j] = start + 1
			r := l.Rowidx[start+1]
			rowNext[j] = rowHead[r]
			rowHead[r] = j
		}
		for p := start; p < end; p++ {
			pos[l.Rowidx[p]] = -1
		}
	}
	return &ICPreconditioner{l: l}, nil
}

// Precondition implements Preconditioner: z = (L·Lᵀ)⁻¹ r.
func (p *ICPreconditioner) Precondition(z, r []float64) {
	l := p.l
	copy(z, r)
	// Forward solve L y = r.
	for j := 0; j < l.Cols; j++ {
		start := l.Colptr[j]
		z[j] /= l.Values[start]
		zj := z[j]
		for q := start + 1; q < l.Colptr[j+1]; q++ {
			z[l.Rowidx[q]] -= l.Values[q] * zj
		}
	}
	// Backward solve Lᵀ z = y.
	for j := l.Cols - 1; j >= 0; j-- {
		start := l.Colptr[j]
		s := z[j]
		for q := start + 1; q < l.Colptr[j+1]; q++ {
			s -= l.Values[q] * z[l.Rowidx[q]]
		}
		z[j] = s / l.Values[start]
	}
}

// CGResult reports the outcome of a conjugate-gradient solve.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual ‖b-Ax‖/‖b‖
}

// CG solves the SPD system A·x = b by (preconditioned) conjugate gradients.
// x holds the initial guess on entry and the solution on return. m may be
// nil for unpreconditioned CG. tol is the relative residual target.
//
// Direct solvers are the right choice for repeated transient solves (the
// paper's setting: one factorization, thousands of substitutions); CG is
// provided for one-shot DC analyses of grids too large to factorize, and as
// the comparison point for the ablation benchmarks.
func CG(a *CSC, x, b []float64, m Preconditioner, tol float64, maxIter int) (CGResult, error) {
	n := a.Cols
	if len(x) != n || len(b) != n {
		return CGResult{}, fmt.Errorf("sparse: CG dimension mismatch")
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return CGResult{}, nil
	}
	applyM := func(dst, src []float64) {
		if m != nil {
			m.Precondition(dst, src)
		} else {
			copy(dst, src)
		}
	}
	applyM(z, r)
	copy(p, z)
	rz := dotProd(r, z)
	for it := 1; it <= maxIter; it++ {
		a.MulVec(ap, p)
		pap := dotProd(p, ap)
		if pap <= 0 {
			return CGResult{Iterations: it, Residual: norm2(r) / bnorm},
				fmt.Errorf("sparse: CG: matrix not positive definite (pᵀAp = %g)", pap)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		res := norm2(r) / bnorm
		if res <= tol {
			return CGResult{Iterations: it, Residual: res}, nil
		}
		applyM(z, r)
		rzNew := dotProd(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return CGResult{Iterations: maxIter, Residual: norm2(r) / bnorm}, ErrNoCGConvergence
}

func norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func dotProd(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
