package sparse

import (
	"math/rand"
	"testing"
)

func TestNDIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for _, n := range []int{1, 2, 7, 40, 150} {
		a := randomSparse(rng, n, 0.1)
		p := NestedDissection(a)
		if !IsPerm(p) {
			t.Fatalf("ND on n=%d is not a permutation: %v", n, p)
		}
	}
	// Disconnected graph: two meshes with no coupling.
	a := blockDiagCSC(meshSPD(9, 9), meshSPD(9, 9))
	if !IsPerm(NestedDissection(a)) {
		t.Fatal("ND on a disconnected graph is not a permutation")
	}
}

// blockDiagCSC builds diag(blocks...) for ND/schedule tests.
func blockDiagCSC(blocks ...*CSC) *CSC {
	n := 0
	for _, b := range blocks {
		n += b.Rows
	}
	tr := NewTriplet(n, n)
	off := 0
	for _, bl := range blocks {
		for j := 0; j < bl.Cols; j++ {
			for p := bl.Colptr[j]; p < bl.Colptr[j+1]; p++ {
				tr.Add(off+bl.Rowidx[p], off+j, bl.Values[p])
			}
		}
		off += bl.Rows
	}
	return tr.ToCSC()
}

// The separator returned by one bisection step must be a valid vertex
// separator: {A, B, S} partitions the component, both halves are nontrivial
// and roughly balanced, and no edge connects A to B directly.
func TestNDSeparatorProperties(t *testing.T) {
	mesh := meshSPD(24, 24)
	n := mesh.Rows
	nd := &ndState{
		adj:   symPattern(mesh),
		level: make([]int32, n),
		inSet: make([]int32, n),
	}
	for i := range nd.inSet {
		nd.inSet[i] = -1
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = i
	}
	a, b, sep, ok := nd.split(comp)
	if !ok {
		t.Fatal("split failed on a connected 24x24 mesh")
	}
	// Valid partition.
	seen := make([]int, n)
	for _, v := range a {
		seen[v]++
	}
	for _, v := range b {
		seen[v]++
	}
	for _, v := range sep {
		seen[v]++
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("node %d appears %d times across {A,B,S}", v, c)
		}
	}
	// Balanced halves: on a uniform mesh the level cut lands near the
	// middle; require both halves above a quarter of the nodes.
	if len(a)*4 < n || len(b)*4 < n {
		t.Fatalf("unbalanced split: |A|=%d |B|=%d |S|=%d of %d", len(a), len(b), len(sep), n)
	}
	// A separator on a √n mesh should be O(√n), not a constant fraction.
	if len(sep) > n/4 {
		t.Fatalf("separator too large: %d of %d", len(sep), n)
	}
	// The separator separates: no A–B edge.
	side := make([]int8, n)
	for _, v := range a {
		side[v] = 1
	}
	for _, v := range b {
		side[v] = 2
	}
	for _, v := range a {
		for _, w := range nd.adj[v] {
			if side[w] == 2 {
				t.Fatalf("edge %d–%d crosses the separator", v, w)
			}
		}
	}
}

// ND must bound fill on the paper's dominant topology: no worse than a
// small multiple of MinDegree on a 2D mesh, far below natural order.
func TestNDFillOnMesh(t *testing.T) {
	a := meshSPD(30, 30)
	lnz := func(o Ordering) int {
		sym, err := AnalyzeLDLT(a, o)
		if err != nil {
			t.Fatal(err)
		}
		return sym.LNZ()
	}
	nat, md, nd := lnz(OrderNatural), lnz(OrderMinDegree), lnz(OrderND)
	if nd >= nat {
		t.Fatalf("ND fill %d not below natural fill %d", nd, nat)
	}
	if nd > 2*md {
		t.Fatalf("ND fill %d more than 2x MinDegree fill %d", nd, md)
	}
	t.Logf("30x30 mesh lnz: natural=%d mindeg=%d nd=%d", nat, md, nd)
}

// The acceptance property of the ND schedule: on one strongly coupled 2D
// mesh — where the bandwidth orderings' elimination trees have no usable
// task cut — the ND separator tree yields independent subtrees and
// ParallelizableSolve turns true, with parallel and sequential solves
// agreeing.
func TestNDParallelizesCoupledMesh(t *testing.T) {
	a := meshSPD(64, 64)
	n := a.Rows
	fRCM, err := FactorLDLT(a, OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	fND, err := FactorLDLT(a, OrderND)
	if err != nil {
		t.Fatal(err)
	}
	if fRCM.ParallelizableSolve() {
		t.Log("RCM unexpectedly parallelizable on the coupled mesh (schedule improved?)")
	}
	if !fND.ParallelizableSolve() {
		sym := fND.Symbolic()
		t.Fatalf("ND schedule not parallelizable on a coupled 64x64 mesh (lnz=%d, supernodal=%v)", sym.LNZ(), sym.Supernodal())
	}
	rng := rand.New(rand.NewSource(71))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	got := make([]float64, n)
	work := make([]float64, n)
	fND.Solve(want, b)
	fND.ParSolveWith(got, b, work, 4)
	if d := maxRelDiff(got, want); d > 1e-12 {
		t.Fatalf("ND parallel solve diverges from sequential by %g", d)
	}
	if r := residual(a, got, b); r > 1e-8 {
		t.Fatalf("ND parallel solve residual %g", r)
	}
}
