package sparse

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// cacheTestMatrix builds a small SPD tridiagonal matrix with a parameterized
// diagonal, so distinct seeds yield distinct content.
func cacheTestMatrix(n int, diag float64) *CSC {
	tr := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, diag)
		if i+1 < n {
			tr.Add(i, i+1, -1)
			tr.Add(i+1, i, -1)
		}
	}
	return tr.ToCSC()
}

func TestFingerprintSensitivity(t *testing.T) {
	a := cacheTestMatrix(10, 4)
	b := cacheTestMatrix(10, 4)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("identical matrices fingerprint differently")
	}
	b.Values[3] += 1e-12
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("value change not reflected in fingerprint")
	}
	c := cacheTestMatrix(11, 4)
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("dimension change not reflected in fingerprint")
	}
}

func TestCacheHitReturnsSameFactorization(t *testing.T) {
	c := NewCache(0)
	a := cacheTestMatrix(20, 4)
	f1, hit1, err := c.Factor(a, FactorAuto, OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Error("first acquisition reported as hit")
	}
	// A content-equal but distinct matrix object must hit.
	f2, hit2, err := c.Factor(cacheTestMatrix(20, 4), FactorAuto, OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Error("content-equal matrix missed")
	}
	if f1 != f2 {
		t.Error("hit returned a different factorization object")
	}
	// OrderDefault resolves to RCM: same cache entry.
	if _, hit3, _ := c.Factor(a, FactorAuto, OrderDefault); !hit3 {
		t.Error("OrderDefault and OrderRCM produced distinct cache entries")
	}
	// A different kind, ordering or content misses.
	if _, hit, _ := c.Factor(a, FactorGPLU, OrderRCM); hit {
		t.Error("different FactorKind hit the LDLT entry")
	}
	if _, hit, _ := c.Factor(a, FactorAuto, OrderNatural); hit {
		t.Error("different ordering hit")
	}
	if _, hit, _ := c.Factor(cacheTestMatrix(20, 5), FactorAuto, OrderRCM); hit {
		t.Error("different content hit")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 4 {
		t.Errorf("stats = %+v, want 2 hits / 4 misses", st)
	}
}

func TestCacheFactorSumSolvesCorrectly(t *testing.T) {
	c := NewCache(0)
	a := cacheTestMatrix(15, 4)
	b := cacheTestMatrix(15, 6)
	alpha, beta := 2.5, 0.75
	f, hit, err := c.FactorSum(alpha, a, beta, b, FactorAuto, OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first FactorSum reported as hit")
	}
	// Solve (alpha·a + beta·b) x = rhs and verify the residual directly.
	n := 15
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%3) - 1
	}
	x := make([]float64, n)
	f.Solve(x, rhs)
	sum := Add(alpha, a, beta, b)
	check := make([]float64, n)
	sum.MulVec(check, x)
	for i := range check {
		if math.Abs(check[i]-rhs[i]) > 1e-10 {
			t.Fatalf("residual %g at row %d", check[i]-rhs[i], i)
		}
	}
	// Same scalars hit; different scalars miss (the shift is in the key).
	if _, hit, _ := c.FactorSum(alpha, a, beta, b, FactorAuto, OrderRCM); !hit {
		t.Error("identical FactorSum missed")
	}
	if _, hit, _ := c.FactorSum(alpha, a, beta*1.000001, b, FactorAuto, OrderRCM); hit {
		t.Error("different beta hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Budget sized to hold only a couple of 30-node tridiagonal factors.
	c := NewCache(4 << 10)
	for d := 0; d < 12; d++ {
		if _, _, err := c.Factor(cacheTestMatrix(30, 4+float64(d)), FactorAuto, OrderRCM); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget: %+v", 4<<10, st)
	}
	if st.Bytes > (4<<10)+4096 {
		t.Errorf("cache bytes %d far above budget", st.Bytes)
	}
	if st.Entries >= 12 {
		t.Errorf("all %d entries retained despite budget", st.Entries)
	}
	// The most recently used entry must have survived.
	if _, hit, _ := c.Factor(cacheTestMatrix(30, 15), FactorAuto, OrderRCM); !hit {
		t.Error("most recent entry was evicted")
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(0)
	a := cacheTestMatrix(60, 4)
	const goroutines = 16
	var wg sync.WaitGroup
	factors := make([]Factorization, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f, _, err := c.Factor(a, FactorAuto, OrderRCM)
			if err != nil {
				t.Error(err)
				return
			}
			factors[g] = f
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("%d concurrent requests computed %d factorizations, want 1", goroutines, st.Misses)
	}
	for g := 1; g < goroutines; g++ {
		if factors[g] != factors[0] {
			t.Fatal("concurrent requests returned distinct factorizations")
		}
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(0)
	// Structurally singular: an all-zero column.
	tr := NewTriplet(3, 3)
	tr.Add(0, 0, 1)
	tr.Add(1, 1, 1)
	singular := tr.ToCSC()
	if _, _, err := c.Factor(singular, FactorGPLU, OrderNatural); err == nil {
		t.Fatal("singular matrix factorized")
	}
	st := c.Stats()
	if st.Entries != 0 {
		t.Errorf("failed factorization left %d cache entries", st.Entries)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(0)
	if _, _, err := c.Factor(cacheTestMatrix(10, 4), FactorAuto, OrderRCM); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Misses != 0 {
		t.Errorf("Reset left state behind: %+v", st)
	}
	if _, hit, _ := c.Factor(cacheTestMatrix(10, 4), FactorAuto, OrderRCM); hit {
		t.Error("hit after Reset")
	}
}

func TestCacheConcurrentMixedKeys(t *testing.T) {
	// Hammer the cache from many goroutines over a small key space with a
	// tight budget, so insertion, hits and eviction race — run under
	// -race in CI.
	c := NewCache(8 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				d := 4 + float64(r.Intn(6))
				if r.Intn(2) == 0 {
					if _, _, err := c.Factor(cacheTestMatrix(25, d), FactorAuto, OrderRCM); err != nil {
						t.Error(err)
					}
				} else {
					a := cacheTestMatrix(25, d)
					if _, _, err := c.FactorSum(1, a, 0.5, a, FactorAuto, OrderRCM); err != nil {
						t.Error(err)
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
}
