package sparse

import (
	"container/list"
	"math"
	"sync"
)

// Fingerprint returns a cheap content hash of the matrix: dimensions, the
// column pointers, the row indices and the raw value bits, folded with
// FNV-1a. Two matrices with equal fingerprints are treated as identical by
// the factorization cache, so the hash covers every input the factorization
// depends on. Cost is O(n + nnz) with no allocation — negligible next to a
// factorization.
func Fingerprint(a *CSC) uint64 {
	h := uint64(fnvOffset)
	h = fnvMix(h, uint64(a.Rows))
	h = fnvMix(h, uint64(a.Cols))
	h = fnvMix(h, uint64(len(a.Values)))
	for _, p := range a.Colptr {
		h = fnvMix(h, uint64(p))
	}
	for _, i := range a.Rowidx {
		h = fnvMix(h, uint64(i))
	}
	for _, v := range a.Values {
		h = fnvMix(h, math.Float64bits(v))
	}
	return h
}

const fnvOffset = 14695981039346656037

// fnvMix folds one 64-bit word into an FNV-1a state byte by byte.
func fnvMix(h, w uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h ^= w & 0xff
		h *= prime
		w >>= 8
	}
	return h
}

// cacheKey identifies one factorization: alpha·A + beta·B under a solver
// configuration. A single-matrix factorization is keyed as 1·A + 0·0.
// Scalars stay in the key so the summed matrix never needs to be built
// (or hashed) to recognize a hit — the adaptive stepper's (C/h + G/2)
// lookups cost two base-matrix hashes regardless of h.
type cacheKey struct {
	fpA, fpB    uint64
	alpha, beta float64
	kind        FactorKind
	order       Ordering
}

// cacheEntry is one cached (or in-flight) factorization. ready is closed
// once f/err are set, so concurrent requests for the same key wait for the
// first computation instead of duplicating it.
type cacheEntry struct {
	key   cacheKey
	ready chan struct{}
	f     Factorization
	err   error
	bytes int64
	done  bool
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
	Bytes                   int64
	// SymbolicHits/SymbolicMisses count symbolic-tier lookups: a hit means a
	// numeric factorization had to run but reused a cached pattern analysis
	// (Refactor) instead of recomputing ordering + elimination structure.
	SymbolicHits, SymbolicMisses uint64
	SymbolicEntries              int
	SymbolicBytes                int64
}

// FactorInfo describes how one cache acquisition was served.
type FactorInfo struct {
	// Hit reports the factorization came from the cache (including joining a
	// computation already in flight).
	Hit bool
	// SymbolicHit reports a numeric factorization was computed against a
	// cached symbolic analysis (pattern-fingerprint tier).
	SymbolicHit bool
	// Refactored reports the factorization went through Symbolic.Refactor
	// (LDLT numeric phase only) rather than a from-scratch factorization.
	Refactored bool
}

// symKey identifies one symbolic analysis: a sparsity pattern under an
// ordering and a set of supernode parameters (normalized, so zero values
// and their explicit defaults alias). FactorKind is not part of the key —
// only LDLT has a symbolic phase.
type symKey struct {
	patFP  uint64
	order  Ordering
	params SupernodeParams
}

// symEntry is one cached (or in-flight) symbolic analysis.
type symEntry struct {
	key   symKey
	ready chan struct{}
	sym   *Symbolic
	err   error
	bytes int64
	done  bool
}

// symCap bounds the symbolic tier's entry count; its bytes are further
// charged against the cache's shared byte budget. A run touches a handful
// of distinct patterns (C, G, C+γG, C/h+G/2 families), so the depth bound
// rarely binds.
const symCap = 64

// Cache is a concurrency-safe, content-addressed factorization cache with an
// LRU byte budget. It is shared across solvers, the adaptive stepper and
// distributed workers: any two requests for the same matrix content, kind,
// ordering and scalar shift return the same Factorization, and concurrent
// first requests are coalesced into a single computation.
//
// Factorizations are immutable once computed, so a cached value may be used
// from any number of goroutines.
type Cache struct {
	mu        sync.Mutex
	capacity  int64
	bytes     int64
	ll        *list.List // front = most recently used
	entries   map[cacheKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64

	// Symbolic tier: pattern-fingerprint-keyed analyses shared by every
	// numeric factorization of the same sparsity pattern — all scalar shifts
	// C + γG on the adaptive grid resolve to one analysis here.
	symLL      *list.List // front = most recently used
	symEntries map[symKey]*list.Element
	symBytes   int64
	symHits    uint64
	symMisses  uint64
}

// DefaultCacheBytes is the byte budget used when NewCache is given a
// non-positive capacity.
const DefaultCacheBytes = 512 << 20

// NewCache returns a cache bounded to roughly maxBytes of factor storage
// (estimated from factor fill, not measured). maxBytes <= 0 selects
// DefaultCacheBytes.
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &Cache{
		capacity:   maxBytes,
		ll:         list.New(),
		entries:    make(map[cacheKey]*list.Element),
		symLL:      list.New(),
		symEntries: make(map[symKey]*list.Element),
	}
}

// Factor returns a factorization of a, computing and caching it on first
// use. hit reports whether the result came from the cache (including joining
// a computation already in flight). Failed factorizations are not cached.
func (c *Cache) Factor(a *CSC, kind FactorKind, order Ordering) (f Factorization, hit bool, err error) {
	f, info, err := c.FactorEx(a, kind, order)
	return f, info.Hit, err
}

// FactorEx is Factor with the full acquisition breakdown: how the result was
// served (cache hit, symbolic-tier hit, refactorization).
func (c *Cache) FactorEx(a *CSC, kind FactorKind, order Ordering) (Factorization, FactorInfo, error) {
	order = order.Resolve()
	key := cacheKey{fpA: Fingerprint(a), alpha: 1, kind: kind, order: order}
	return c.getOrCompute(key, func() (Factorization, FactorInfo, error) {
		return c.factorSymbolic(a, kind, order)
	})
}

// FactorSum returns a factorization of alpha·a + beta·b, computing and
// caching it on first use. The key is built from the base-matrix
// fingerprints and the scalars, so a cache hit never materializes the sum —
// this is what makes repeated (C/h + G/2) and (C + γG) acquisitions cheap.
func (c *Cache) FactorSum(alpha float64, a *CSC, beta float64, b *CSC, kind FactorKind, order Ordering) (f Factorization, hit bool, err error) {
	f, info, err := c.FactorSumEx(alpha, a, beta, b, kind, order)
	return f, info.Hit, err
}

// FactorSumEx is FactorSum with the full acquisition breakdown. On a cache
// miss the sum matrix is materialized once for the numeric phase, but every
// scalar shift of one base-pattern pair shares a single symbolic analysis:
// the sum's sparsity pattern is scalar-independent, so the shift grid costs
// one ordering + elimination analysis total, then one cheap Refactor per
// distinct shift.
func (c *Cache) FactorSumEx(alpha float64, a *CSC, beta float64, b *CSC, kind FactorKind, order Ordering) (Factorization, FactorInfo, error) {
	order = order.Resolve()
	key := cacheKey{
		fpA: Fingerprint(a), fpB: Fingerprint(b),
		alpha: alpha, beta: beta, kind: kind, order: order,
	}
	return c.getOrCompute(key, func() (Factorization, FactorInfo, error) {
		return c.factorSymbolic(Add(alpha, a, beta, b), kind, order)
	})
}

// factorSymbolic computes a factorization of the materialized matrix,
// routing the symmetric LDLT path through the pattern-keyed symbolic tier.
// FactorAuto falls back to LU exactly like sparse.Factor when the matrix is
// unsymmetric or the LDLT pivots break down.
func (c *Cache) factorSymbolic(m *CSC, kind FactorKind, order Ordering) (Factorization, FactorInfo, error) {
	tryLDLT := kind == FactorLDLt || (kind == FactorAuto && m.Rows == m.Cols && m.IsSymmetric(0))
	if tryLDLT {
		sym, symHit, err := c.symbolic(m, order)
		if err == nil {
			f, ferr := sym.Refactor(m)
			if ferr == nil {
				return f, FactorInfo{SymbolicHit: symHit, Refactored: true}, nil
			}
			if kind == FactorLDLt {
				return nil, FactorInfo{SymbolicHit: symHit}, ferr
			}
		} else if kind == FactorLDLt {
			return nil, FactorInfo{}, err
		}
	}
	f, err := FactorLU(m, order, 1.0)
	return f, FactorInfo{}, err
}

// symbolic returns the cached pattern analysis for m under order, computing
// it on first use with the same singleflight discipline as factorizations.
func (c *Cache) symbolic(m *CSC, order Ordering) (*Symbolic, bool, error) {
	key := symKey{patFP: PatternFingerprint(m), order: order, params: DefaultSupernodeParams().norm()}
	c.mu.Lock()
	if el, ok := c.symEntries[key]; ok {
		e := el.Value.(*symEntry)
		c.symLL.MoveToFront(el)
		c.symHits++
		c.mu.Unlock()
		<-e.ready
		return e.sym, true, e.err
	}
	e := &symEntry{key: key, ready: make(chan struct{})}
	el := c.symLL.PushFront(e)
	c.symEntries[key] = el
	c.symMisses++
	c.mu.Unlock()

	sym, err := AnalyzeLDLT(m, order)
	c.mu.Lock()
	if err != nil {
		e.err = err
		if cur, ok := c.symEntries[key]; ok && cur == el {
			delete(c.symEntries, key)
			c.symLL.Remove(el)
		}
	} else {
		e.sym = sym
		e.bytes = sym.Bytes()
		e.done = true
		if cur, ok := c.symEntries[key]; ok && cur == el {
			c.symBytes += e.bytes
			// LRU bounded by depth and by the shared byte budget (analyses
			// count against the same capacity as factors): completed
			// entries fall off the back, keeping at least one. Factors
			// holding a dropped analysis keep their own reference; only
			// future pattern reuse re-analyzes.
			for c.symLL.Len() > 1 &&
				(c.symLL.Len() > symCap || c.bytes+c.symBytes > c.capacity) {
				back := c.symLL.Back()
				be := back.Value.(*symEntry)
				if !be.done {
					break
				}
				c.symLL.Remove(back)
				delete(c.symEntries, be.key)
				c.symBytes -= be.bytes
			}
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return sym, false, err
}

// getOrCompute implements the singleflight lookup: the first request for a
// key computes outside the lock while later requests block on ready.
func (c *Cache) getOrCompute(key cacheKey, build func() (Factorization, FactorInfo, error)) (Factorization, FactorInfo, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		<-e.ready
		return e.f, FactorInfo{Hit: true}, e.err
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	el := c.ll.PushFront(e)
	c.entries[key] = el
	c.misses++
	c.mu.Unlock()

	f, info, err := build()
	c.mu.Lock()
	if err != nil {
		// Do not cache failures: a singular matrix error must stay
		// re-observable (callers regularize and retry with a shifted key).
		e.err = err
		if cur, ok := c.entries[key]; ok && cur == el {
			delete(c.entries, key)
			c.ll.Remove(el)
		}
	} else {
		e.f = f
		e.bytes = factorBytes(f)
		e.done = true
		// A Reset racing this computation may have already dropped the
		// entry; only account for it while it is still tracked.
		if cur, ok := c.entries[key]; ok && cur == el {
			c.bytes += e.bytes
			c.evictLocked()
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return f, info, err
}

// evictLocked drops least-recently-used completed entries until the byte
// budget holds — the symbolic tier's bytes count against the same budget.
// In-flight entries and the sole remaining entry are never evicted (a
// single factorization above budget is kept — evicting it would just
// thrash).
func (c *Cache) evictLocked() {
	el := c.ll.Back()
	for el != nil && c.bytes+c.symBytes > c.capacity && c.ll.Len() > 1 {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		if e.done {
			c.ll.Remove(el)
			delete(c.entries, e.key)
			c.bytes -= e.bytes
			c.evictions++
		}
		el = prev
	}
}

// factorBytes estimates the resident size of a factorization from its fill:
// 16 bytes per stored factor entry (value + index) plus permutation and
// pointer overhead per dimension.
func factorBytes(f Factorization) int64 {
	return int64(f.NNZ())*16 + int64(f.N())*32
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: c.ll.Len(), Bytes: c.bytes,
		SymbolicHits: c.symHits, SymbolicMisses: c.symMisses,
		SymbolicEntries: c.symLL.Len(), SymbolicBytes: c.symBytes,
	}
}

// Reset drops every cached factorization and zeroes the counters. Entries
// still in flight complete but are no longer retained.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.entries = make(map[cacheKey]*list.Element)
	c.bytes = 0
	c.hits, c.misses, c.evictions = 0, 0, 0
	c.symLL.Init()
	c.symEntries = make(map[symKey]*list.Element)
	c.symBytes = 0
	c.symHits, c.symMisses = 0, 0
}
