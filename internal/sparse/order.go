package sparse

import "sort"

// Ordering selects a fill-reducing ordering strategy for factorization.
type Ordering int

const (
	// OrderDefault is the zero value: "no preference", resolved to OrderRCM
	// wherever an ordering is actually applied (see Resolve). Keeping the
	// default distinct from OrderNatural lets callers genuinely request
	// natural ordering.
	OrderDefault Ordering = iota
	// OrderNatural keeps the input order.
	OrderNatural
	// OrderRCM applies reverse Cuthill-McKee to the pattern of A+Aᵀ,
	// a bandwidth-reducing ordering well suited to grid circuits.
	OrderRCM
	// OrderMinDegree applies a greedy minimum-degree ordering to the
	// pattern of A+Aᵀ using an elimination graph.
	OrderMinDegree
)

// Resolve maps OrderDefault to the repository-wide default resolution
// (OrderRCM) and returns any explicit choice unchanged. Cache keys and
// factorizations use the resolved value so OrderDefault and OrderRCM are
// interchangeable.
func (o Ordering) Resolve() Ordering {
	if o == OrderDefault {
		return OrderRCM
	}
	return o
}

func (o Ordering) String() string {
	switch o {
	case OrderDefault:
		return "default"
	case OrderNatural:
		return "natural"
	case OrderRCM:
		return "rcm"
	case OrderMinDegree:
		return "mindeg"
	}
	return "unknown"
}

// Order computes a permutation p for matrix a under the chosen strategy.
// Column/row k of the permuted matrix is p[k] of the original. OrderDefault
// resolves to OrderRCM.
func Order(a *CSC, o Ordering) []int {
	switch o.Resolve() {
	case OrderRCM:
		return RCM(a)
	case OrderMinDegree:
		return MinDegree(a)
	default:
		p := make([]int, a.Cols)
		for i := range p {
			p[i] = i
		}
		return p
	}
}

// RCM returns the reverse Cuthill-McKee ordering of the pattern of a+aᵀ.
func RCM(a *CSC) []int {
	n := a.Cols
	adj := symPattern(a)
	deg := make([]int, n)
	for i := range adj {
		deg[i] = len(adj[i])
		// Sorting neighbor lists by degree gives the classical CM behavior.
	}
	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)

	for {
		// Find an unvisited node of minimum degree as the next component root.
		root := -1
		for i := 0; i < n; i++ {
			if !visited[i] && (root == -1 || deg[i] < deg[root]) {
				root = i
			}
		}
		if root == -1 {
			break
		}
		visited[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbrs := make([]int, 0, len(adj[v]))
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					nbrs = append(nbrs, w)
				}
			}
			sort.Slice(nbrs, func(x, y int) bool { return deg[nbrs[x]] < deg[nbrs[y]] })
			queue = append(queue, nbrs...)
		}
	}
	// Reverse for RCM.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// MinDegree returns a greedy minimum-degree ordering of the pattern of a+aᵀ.
// It maintains an explicit elimination graph; eliminating node v connects all
// of v's remaining neighbors into a clique. This is the textbook algorithm
// (not AMD), adequate for the moderate problem sizes in this repository.
func MinDegree(a *CSC) []int {
	n := a.Cols
	adjLists := symPattern(a)
	adj := make([]map[int]struct{}, n)
	for i, lst := range adjLists {
		adj[i] = make(map[int]struct{}, len(lst))
		for _, w := range lst {
			adj[i][w] = struct{}{}
		}
	}
	eliminated := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		// Pick the remaining node with minimum current degree.
		best, bestDeg := -1, n+1
		for i := 0; i < n; i++ {
			if !eliminated[i] && len(adj[i]) < bestDeg {
				best, bestDeg = i, len(adj[i])
			}
		}
		v := best
		eliminated[v] = true
		order = append(order, v)
		nbrs := make([]int, 0, len(adj[v]))
		for w := range adj[v] {
			nbrs = append(nbrs, w)
		}
		for _, w := range nbrs {
			delete(adj[w], v)
		}
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				wi, wj := nbrs[i], nbrs[j]
				adj[wi][wj] = struct{}{}
				adj[wj][wi] = struct{}{}
			}
		}
		adj[v] = nil
	}
	return order
}

// Bandwidth returns the half bandwidth max|i-j| over stored entries, a
// quality metric for RCM in tests.
func Bandwidth(a *CSC) int {
	bw := 0
	for j := 0; j < a.Cols; j++ {
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			d := a.Rowidx[p] - j
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
