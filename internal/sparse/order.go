package sparse

import (
	"fmt"
	"sort"
	"strings"
)

// ParseOrdering resolves an ordering name ("default", "natural", "rcm",
// "mindeg", "nd"; case-insensitive) — the spelling shared by the matex CLI
// flags and the serve job API. The empty string selects OrderDefault.
func ParseOrdering(name string) (Ordering, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "default":
		return OrderDefault, nil
	case "natural":
		return OrderNatural, nil
	case "rcm":
		return OrderRCM, nil
	case "mindeg", "mindegree", "min-degree":
		return OrderMinDegree, nil
	case "nd", "nested", "nested-dissection", "nesteddissection":
		return OrderND, nil
	}
	return 0, fmt.Errorf("sparse: unknown ordering %q", name)
}

// Ordering selects a fill-reducing ordering strategy for factorization.
type Ordering int

const (
	// OrderDefault is the zero value: "no preference", resolved to OrderRCM
	// wherever an ordering is actually applied (see Resolve). Keeping the
	// default distinct from OrderNatural lets callers genuinely request
	// natural ordering.
	OrderDefault Ordering = iota
	// OrderNatural keeps the input order.
	OrderNatural
	// OrderRCM applies reverse Cuthill-McKee to the pattern of A+Aᵀ,
	// a bandwidth-reducing ordering well suited to grid circuits.
	OrderRCM
	// OrderMinDegree applies a greedy minimum-degree ordering to the
	// pattern of A+Aᵀ using an elimination graph.
	OrderMinDegree
	// OrderND applies recursive nested dissection to the pattern of A+Aᵀ:
	// vertex-separator bisection down to small subgraphs, minimum-degree on
	// the leaves, separators ordered last. Its balanced separator tree both
	// bounds fill on 2D meshes and gives the parallel triangular solves
	// independent subtrees to fan out over — including on coupled meshes
	// whose RCM/MinDegree elimination trees have no usable task cut.
	// (Appended after the earlier values: Ordering integers are
	// wire-significant in the dist protocol.)
	OrderND
)

// Resolve maps OrderDefault to the repository-wide default resolution
// (OrderRCM) and returns any explicit choice unchanged. Cache keys and
// factorizations use the resolved value so OrderDefault and OrderRCM are
// interchangeable.
func (o Ordering) Resolve() Ordering {
	if o == OrderDefault {
		return OrderRCM
	}
	return o
}

func (o Ordering) String() string {
	switch o {
	case OrderDefault:
		return "default"
	case OrderNatural:
		return "natural"
	case OrderRCM:
		return "rcm"
	case OrderMinDegree:
		return "mindeg"
	case OrderND:
		return "nd"
	}
	return "unknown"
}

// Order computes a permutation p for matrix a under the chosen strategy.
// Column/row k of the permuted matrix is p[k] of the original. OrderDefault
// resolves to OrderRCM.
func Order(a *CSC, o Ordering) []int {
	switch o.Resolve() {
	case OrderRCM:
		return RCM(a)
	case OrderMinDegree:
		return MinDegree(a)
	case OrderND:
		return NestedDissection(a)
	default:
		p := make([]int, a.Cols)
		for i := range p {
			p[i] = i
		}
		return p
	}
}

// RCM returns the reverse Cuthill-McKee ordering of the pattern of a+aᵀ.
// Component roots are the minimum-degree unvisited nodes, found by walking
// one globally degree-sorted seed list (O(n log n) once) instead of
// rescanning all nodes per component; the BFS reuses a single neighbor
// scratch buffer across pops.
func RCM(a *CSC) []int {
	n := a.Cols
	adj := symPattern(a)
	deg := make([]int, n)
	for i := range adj {
		deg[i] = len(adj[i])
	}
	// Seeds sorted by (degree, index): the first unvisited seed is always
	// the minimum-degree unvisited node, matching the classical root choice.
	seeds := make([]int, n)
	for i := range seeds {
		seeds[i] = i
	}
	sort.Slice(seeds, func(x, y int) bool {
		if deg[seeds[x]] != deg[seeds[y]] {
			return deg[seeds[x]] < deg[seeds[y]]
		}
		return seeds[x] < seeds[y]
	})
	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	nbrs := make([]int, 0, 16)

	for si := 0; si < n; si++ {
		root := seeds[si]
		if visited[root] {
			continue
		}
		visited[root] = true
		queue = append(queue[:0], root)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			order = append(order, v)
			nbrs = nbrs[:0]
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					nbrs = append(nbrs, w)
				}
			}
			// Insertion sort by degree: neighbor lists are short and almost
			// sorted on meshes, and this avoids sort.Slice's closure
			// allocation in the hot loop.
			for i := 1; i < len(nbrs); i++ {
				w := nbrs[i]
				j := i - 1
				for j >= 0 && deg[nbrs[j]] > deg[w] {
					nbrs[j+1] = nbrs[j]
					j--
				}
				nbrs[j+1] = w
			}
			queue = append(queue, nbrs...)
		}
	}
	// Reverse for RCM.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// degreeLists is a bucket structure over node degrees: doubly linked lists
// threaded through next/prev arrays, one list head per degree. Minimum
// selection walks the bucket array upward from a cursor that only moves
// down on insertions below it — amortized O(1) per operation instead of the
// O(n) min-scan of the textbook algorithm.
type degreeLists struct {
	head       []int // head[d] = first node of degree d, or -1
	next, prev []int
	cursor     int // no nonempty bucket below this degree
}

func newDegreeLists(n int) *degreeLists {
	dl := &degreeLists{head: make([]int, n+1), next: make([]int, n), prev: make([]int, n)}
	for d := range dl.head {
		dl.head[d] = -1
	}
	return dl
}

func (dl *degreeLists) insert(v, d int) {
	h := dl.head[d]
	dl.next[v] = h
	dl.prev[v] = -1
	if h != -1 {
		dl.prev[h] = v
	}
	dl.head[d] = v
	if d < dl.cursor {
		dl.cursor = d
	}
}

func (dl *degreeLists) remove(v, d int) {
	if dl.prev[v] != -1 {
		dl.next[dl.prev[v]] = dl.next[v]
	} else {
		dl.head[d] = dl.next[v]
	}
	if dl.next[v] != -1 {
		dl.prev[dl.next[v]] = dl.prev[v]
	}
}

// popMin removes and returns a node of minimum degree (-1 when empty).
func (dl *degreeLists) popMin() int {
	for dl.cursor < len(dl.head) {
		if v := dl.head[dl.cursor]; v != -1 {
			dl.remove(v, dl.cursor)
			return v
		}
		dl.cursor++
	}
	return -1
}

// MinDegree returns a greedy minimum-degree ordering of the pattern of a+aᵀ.
// It maintains an explicit elimination graph — eliminating node v connects
// all of v's remaining neighbors into a clique — with bucketed degree lists
// for O(1) minimum selection and slice-based adjacency merged through a
// stamp array (no per-node hash maps). Still the greedy elimination-graph
// algorithm rather than AMD, but without its quadratic bookkeeping.
func MinDegree(a *CSC) []int {
	return minDegreeAdj(symPattern(a))
}

// minDegreeAdj is MinDegree on an explicit adjacency structure (consumed:
// the lists are rebuilt in place during elimination). Nested dissection
// reuses it on extracted leaf subgraphs.
func minDegreeAdj(adj [][]int) []int {
	n := len(adj)
	deg := make([]int, n)
	dl := newDegreeLists(n)
	for i := range adj {
		deg[i] = len(adj[i])
		dl.insert(i, deg[i])
	}
	stamp := make([]int, n)
	for i := range stamp {
		stamp[i] = -1
	}
	order := make([]int, 0, n)
	var merged []int
	for {
		v := dl.popMin()
		if v == -1 {
			break
		}
		order = append(order, v)
		nbrs := adj[v]
		// Rebuild each neighbor's list as (old ∖ {v}) ∪ (nbrs ∖ {w}),
		// deduplicated with the stamp array. Lists hold live nodes only
		// (every elimination rebuilds exactly its neighbors), so degrees
		// stay exact.
		for _, w := range nbrs {
			stamp[w] = v
		}
		for _, w := range nbrs {
			merged = merged[:0]
			for _, x := range adj[w] {
				if x != v {
					merged = append(merged, x)
				}
			}
			// Stamp the survivors so clique edges are not duplicated.
			token := n + v + 1 // distinct from the nbrs stamp value v
			for _, x := range merged {
				if stamp[x] == v {
					stamp[x] = token
				}
			}
			for _, x := range nbrs {
				if x != w && stamp[x] == v {
					merged = append(merged, x)
				}
			}
			// Restore the nbrs stamp for the next neighbor's merge.
			for _, x := range merged {
				if stamp[x] == token {
					stamp[x] = v
				}
			}
			old := len(adj[w])
			adj[w] = append(adj[w][:0], merged...)
			if len(adj[w]) != old {
				dl.remove(w, deg[w])
				deg[w] = len(adj[w])
				dl.insert(w, deg[w])
			} else {
				deg[w] = len(adj[w])
			}
		}
		adj[v] = nil
	}
	return order
}

// Bandwidth returns the half bandwidth max|i-j| over stored entries, a
// quality metric for RCM in tests.
func Bandwidth(a *CSC) int {
	bw := 0
	for j := 0; j < a.Cols; j++ {
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			d := a.Rowidx[p] - j
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
