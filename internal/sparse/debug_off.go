//go:build !matexdebug

package sparse

// Release builds: the matexdebug hooks compile to empty functions that the
// inliner erases. See debug_on.go for the active versions.

// debugEnabled reports whether the matexdebug invariant layer is compiled in.
const debugEnabled = false

func debugCheckCSC(*CSC)           {}
func debugCheckSymbolic(*Symbolic) {}
func debugCheckFactor(*LDLT)       {}
