//go:build !race

package sparse

// raceEnabled mirrors the race build tag: sync.Pool intentionally drops
// Puts under the race detector, so pool-backed zero-allocation assertions
// only hold in regular builds.
const raceEnabled = false
