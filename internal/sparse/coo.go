package sparse

import (
	"fmt"
	"sort"
)

// Triplet accumulates matrix entries in coordinate (COO) form. Duplicate
// entries are summed when the triplet is compressed, which matches the
// "stamping" style used by modified nodal analysis.
type Triplet struct {
	rows, cols int
	ri, ci     []int
	v          []float64
}

// NewTriplet returns an empty triplet accumulator for an rows-by-cols matrix.
func NewTriplet(rows, cols int) *Triplet {
	if rows < 0 || cols < 0 {
		panic("sparse: negative dimension")
	}
	return &Triplet{rows: rows, cols: cols}
}

// Dims returns the matrix dimensions.
func (t *Triplet) Dims() (rows, cols int) { return t.rows, t.cols }

// NNZ returns the number of accumulated entries (duplicates not merged).
func (t *Triplet) NNZ() int { return len(t.v) }

// Add accumulates v at position (i, j). Entries with v == 0 are kept so the
// sparsity pattern can be stamped independently of values.
func (t *Triplet) Add(i, j int, v float64) {
	if i < 0 || i >= t.rows || j < 0 || j >= t.cols {
		panic(fmt.Sprintf("sparse: triplet index (%d,%d) out of range %dx%d", i, j, t.rows, t.cols))
	}
	t.ri = append(t.ri, i)
	t.ci = append(t.ci, j)
	t.v = append(t.v, v)
}

// ToCSC compresses the triplet into CSC form, summing duplicates.
func (t *Triplet) ToCSC() *CSC {
	// Count entries per column.
	colCount := make([]int, t.cols+1)
	for _, j := range t.ci {
		colCount[j+1]++
	}
	for j := 0; j < t.cols; j++ {
		colCount[j+1] += colCount[j]
	}
	colptr := colCount // colptr[j] is the insertion cursor for column j while filling.
	rowidx := make([]int, len(t.v))
	values := make([]float64, len(t.v))
	next := make([]int, t.cols)
	copy(next, colptr[:t.cols])
	for k := range t.v {
		j := t.ci[k]
		p := next[j]
		next[j]++
		rowidx[p] = t.ri[k]
		values[p] = t.v[k]
	}
	m := &CSC{Rows: t.rows, Cols: t.cols, Colptr: colptr, Rowidx: rowidx, Values: values}
	m.sortColumns()
	m.sumDuplicates()
	debugCheckCSC(m)
	return m
}

// sortColumns sorts row indices within each column, carrying values along.
func (m *CSC) sortColumns() {
	for j := 0; j < m.Cols; j++ {
		lo, hi := m.Colptr[j], m.Colptr[j+1]
		seg := colSegment{ri: m.Rowidx[lo:hi], v: m.Values[lo:hi]}
		sort.Sort(seg)
	}
}

type colSegment struct {
	ri []int
	v  []float64
}

func (s colSegment) Len() int           { return len(s.ri) }
func (s colSegment) Less(i, j int) bool { return s.ri[i] < s.ri[j] }
func (s colSegment) Swap(i, j int) {
	s.ri[i], s.ri[j] = s.ri[j], s.ri[i]
	s.v[i], s.v[j] = s.v[j], s.v[i]
}

// sumDuplicates merges consecutive equal row indices within each sorted
// column, compacting the storage in place.
func (m *CSC) sumDuplicates() {
	nz := 0
	colstart := make([]int, m.Cols+1)
	for j := 0; j < m.Cols; j++ {
		colstart[j] = nz
		p := m.Colptr[j]
		end := m.Colptr[j+1]
		for p < end {
			r := m.Rowidx[p]
			v := m.Values[p]
			p++
			for p < end && m.Rowidx[p] == r {
				v += m.Values[p]
				p++
			}
			m.Rowidx[nz] = r
			m.Values[nz] = v
			nz++
		}
	}
	colstart[m.Cols] = nz
	m.Colptr = colstart
	m.Rowidx = m.Rowidx[:nz]
	m.Values = m.Values[:nz]
}
