package sparse

// InversePerm returns pinv with pinv[p[k]] = k. It panics if p is not a
// permutation of 0..len(p)-1.
func InversePerm(p []int) []int {
	pinv := make([]int, len(p))
	for i := range pinv {
		pinv[i] = -1
	}
	for k, v := range p {
		if v < 0 || v >= len(p) || pinv[v] != -1 {
			panic("sparse: not a permutation")
		}
		pinv[v] = k
	}
	return pinv
}

// IsPerm reports whether p is a permutation of 0..len(p)-1.
func IsPerm(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// PermVec computes dst[k] = x[p[k]].
func PermVec(dst, x []float64, p []int) {
	for k, v := range p {
		dst[k] = x[v]
	}
}

// InvPermVec computes dst[p[k]] = x[k].
func InvPermVec(dst, x []float64, p []int) {
	for k, v := range p {
		dst[v] = x[k]
	}
}

// PermuteSym returns B = A(p, p) for a square matrix A: row and column k of B
// is row and column p[k] of A.
func PermuteSym(a *CSC, p []int) *CSC {
	if a.Rows != a.Cols || len(p) != a.Cols {
		panic("sparse: PermuteSym needs a square matrix and matching permutation")
	}
	pinv := InversePerm(p)
	t := NewTriplet(a.Rows, a.Cols)
	for j := 0; j < a.Cols; j++ {
		nj := pinv[j]
		for q := a.Colptr[j]; q < a.Colptr[j+1]; q++ {
			t.Add(pinv[a.Rowidx[q]], nj, a.Values[q])
		}
	}
	return t.ToCSC()
}

// symPattern returns the adjacency structure of A + Aᵀ without the diagonal,
// as per-node neighbor lists. Used by the ordering routines.
func symPattern(a *CSC) [][]int {
	n := a.Cols
	adj := make([][]int, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	// First pass: collect column pattern (j's neighbors below and above).
	at := a.Transpose()
	for j := 0; j < n; j++ {
		for _, src := range []*CSC{a, at} {
			for p := src.Colptr[j]; p < src.Colptr[j+1]; p++ {
				i := src.Rowidx[p]
				if i != j && mark[i] != j {
					mark[i] = j
					adj[j] = append(adj[j], i)
				}
			}
		}
	}
	return adj
}
