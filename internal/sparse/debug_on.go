//go:build matexdebug

package sparse

// Build with -tags matexdebug to activate the runtime invariant layer: the
// hooks below run the exported checkers from invariants.go at the exit of
// the hot construction paths and panic on the first violation. Release
// builds compile the hooks in debug_off.go to empty functions instead.

// debugEnabled reports whether the matexdebug invariant layer is compiled in.
const debugEnabled = true

func debugCheckCSC(m *CSC) {
	if err := CheckCSC(m); err != nil {
		panic(err)
	}
}

func debugCheckSymbolic(s *Symbolic) {
	if err := CheckSymbolic(s); err != nil {
		panic(err)
	}
}

func debugCheckFactor(f *LDLT) {
	if err := CheckFactor(f); err != nil {
		panic(err)
	}
}
