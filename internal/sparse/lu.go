package sparse

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization encounters a zero (or
// numerically vanishing) pivot.
var ErrSingular = errors.New("sparse: matrix is singular")

// LU holds a sparse LU factorization P·A·Q = L·U computed by FactorLU, where
// P is the row permutation chosen by partial pivoting and Q the fill-reducing
// column ordering. L is unit lower triangular (diagonal stored first in each
// column), U upper triangular (diagonal stored last in each column).
type LU struct {
	n    int
	l, u *CSC
	pinv []int // row i of A is row pinv[i] of P·A
	q    []int // column k of the factorization is column q[k] of A
}

// N returns the dimension of the factored matrix.
func (f *LU) N() int { return f.n }

// L returns the unit lower triangular factor.
func (f *LU) L() *CSC { return f.l }

// U returns the upper triangular factor.
func (f *LU) U() *CSC { return f.u }

// RowPerm returns pinv, with row i of A being row pinv[i] of P·A.
func (f *LU) RowPerm() []int { return f.pinv }

// ColPerm returns q, with column k of the factorization being column q[k] of A.
func (f *LU) ColPerm() []int { return f.q }

// NNZ returns the combined number of stored entries in L and U.
func (f *LU) NNZ() int { return f.l.NNZ() + f.u.NNZ() }

// FactorLU computes the sparse LU factorization of the square matrix a using
// the left-looking Gilbert-Peierls algorithm with threshold partial pivoting.
// order selects the fill-reducing column pre-ordering. pivotTol in (0, 1]
// controls the diagonal preference: the diagonal entry is kept as pivot when
// its magnitude is at least pivotTol times the column maximum (1 = classic
// partial pivoting).
func FactorLU(a *CSC, order Ordering, pivotTol float64) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: FactorLU needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if pivotTol <= 0 || pivotTol > 1 {
		pivotTol = 1
	}
	n := a.Cols
	q := Order(a, order)

	lp := make([]int, n+1)
	up := make([]int, n+1)
	li := make([]int, 0, 4*a.NNZ())
	lx := make([]float64, 0, 4*a.NNZ())
	ui := make([]int, 0, 4*a.NNZ())
	ux := make([]float64, 0, 4*a.NNZ())

	pinv := make([]int, n)
	for i := range pinv {
		pinv[i] = -1
	}
	x := make([]float64, n)
	xi := make([]int, 2*n)
	marked := make([]bool, n)
	pstack := make([]int, n)

	for k := 0; k < n; k++ {
		lp[k] = len(li)
		up[k] = len(ui)
		col := q[k]

		top := spSolveL(lp, li, lx, a, col, xi, pstack, x, pinv, marked)

		// Choose the pivot among not-yet-pivotal rows.
		ipiv := -1
		var amax float64 = -1
		for p := top; p < n; p++ {
			i := xi[p]
			if pinv[i] < 0 {
				if t := math.Abs(x[i]); t > amax {
					amax = t
					ipiv = i
				}
			} else {
				ui = append(ui, pinv[i])
				ux = append(ux, x[i])
			}
		}
		if ipiv == -1 || amax <= 0 {
			return nil, fmt.Errorf("%w: no pivot in column %d", ErrSingular, col)
		}
		// Prefer the diagonal when it is large enough (threshold pivoting).
		if pinv[col] < 0 && math.Abs(x[col]) >= amax*pivotTol {
			ipiv = col
		}
		pivot := x[ipiv]
		ui = append(ui, k)
		ux = append(ux, pivot)
		pinv[ipiv] = k
		li = append(li, ipiv)
		lx = append(lx, 1)
		for p := top; p < n; p++ {
			i := xi[p]
			if pinv[i] < 0 {
				li = append(li, i)
				lx = append(lx, x[i]/pivot)
			}
			x[i] = 0
			marked[i] = false
		}
	}
	lp[n] = len(li)
	up[n] = len(ui)
	// Remap L's row indices into pivotal order.
	for p := range li {
		li[p] = pinv[li[p]]
	}
	l := &CSC{Rows: n, Cols: n, Colptr: lp, Rowidx: li, Values: lx}
	u := &CSC{Rows: n, Cols: n, Colptr: up, Rowidx: ui, Values: ux}
	return &LU{n: n, l: l, u: u, pinv: pinv, q: q}, nil
}

// spSolveL solves L·x = A(:,col) for the sparse x, where L is the partially
// built factor addressed through (lp, li, lx) and pinv. It returns top such
// that xi[top:n] lists the nonzero pattern of x in topological order.
// Entries of marked touched here are reset by the caller.
func spSolveL(lp []int, li []int, lx []float64, a *CSC, col int, xi, pstack []int, x []float64, pinv []int, marked []bool) int {
	n := a.Cols
	top := n
	// DFS from every nonzero of A(:,col).
	for p := a.Colptr[col]; p < a.Colptr[col+1]; p++ {
		j := a.Rowidx[p]
		if marked[j] {
			continue
		}
		top = dfsL(j, lp, li, top, xi, pstack, pinv, marked)
	}
	// Clear x on the pattern, then scatter A(:,col).
	for p := top; p < n; p++ {
		x[xi[p]] = 0
	}
	for p := a.Colptr[col]; p < a.Colptr[col+1]; p++ {
		x[a.Rowidx[p]] = a.Values[p]
	}
	// Numeric sweep in topological order.
	for px := top; px < n; px++ {
		j := xi[px]
		jnew := pinv[j]
		if jnew < 0 {
			continue // row j not yet pivotal: no L column to eliminate with
		}
		xj := x[j] // L has unit diagonal (stored first), no division needed
		// jnew < k always holds here (only already-pivotal rows are swept),
		// so lp[jnew+1] is final.
		for p := lp[jnew] + 1; p < lp[jnew+1]; p++ {
			x[li[p]] -= lx[p] * xj
		}
	}
	return top
}

// dfsL performs a non-recursive depth-first search from node j over the graph
// of the partially built L (through pinv), pushing finished nodes onto
// xi[top:] in topological order.
func dfsL(j int, lp []int, li []int, top int, xi, pstack []int, pinv []int, marked []bool) int {
	head := 0
	xi[head] = j
	for head >= 0 {
		j = xi[head]
		jnew := pinv[j]
		if !marked[j] {
			marked[j] = true
			if jnew < 0 {
				pstack[head] = 0
			} else {
				pstack[head] = lp[jnew] + 1 // skip unit diagonal
			}
		}
		done := true
		var p2 int
		if jnew < 0 {
			p2 = 0
		} else {
			p2 = lp[jnew+1]
		}
		for p := pstack[head]; p < p2; p++ {
			i := li[p]
			if marked[i] {
				continue
			}
			pstack[head] = p + 1
			head++
			xi[head] = i
			done = false
			break
		}
		if done {
			head--
			top--
			xi[top] = j
		}
	}
	return top
}

// Solve computes x = A⁻¹ b, overwriting dst. dst and b may alias. It panics
// if the lengths do not match the factored dimension. The workspace comes
// from a shared pool; repeated solves allocate nothing.
func (f *LU) Solve(dst, b []float64) {
	if len(dst) != f.n || len(b) != f.n {
		panic("sparse: LU.Solve dimension mismatch")
	}
	w := getWork(f.n)
	f.SolveWith(dst, b, (*w)[:f.n])
	solveWork.Put(w)
}

// SolveWith is Solve with a caller-provided workspace of length n, allowing
// allocation-free repeated solves.
func (f *LU) SolveWith(dst, b, work []float64) {
	if len(work) != f.n {
		panic("sparse: LU.SolveWith workspace length mismatch")
	}
	// work = P·b
	for i := 0; i < f.n; i++ {
		work[f.pinv[i]] = b[i]
	}
	lsolveUnit(f.l, work)
	usolve(f.u, work)
	// dst(q) = work
	for k := 0; k < f.n; k++ {
		dst[f.q[k]] = work[k]
	}
}

// lsolveUnit solves L·x = x in place for unit lower triangular L with the
// diagonal stored first in each column.
func lsolveUnit(l *CSC, x []float64) {
	for j := 0; j < l.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := l.Colptr[j] + 1; p < l.Colptr[j+1]; p++ {
			x[l.Rowidx[p]] -= l.Values[p] * xj
		}
	}
}

// usolve solves U·x = x in place for upper triangular U with the diagonal
// stored last in each column.
func usolve(u *CSC, x []float64) {
	for j := u.Cols - 1; j >= 0; j-- {
		d := u.Values[u.Colptr[j+1]-1]
		xj := x[j] / d
		x[j] = xj
		if xj == 0 {
			continue
		}
		for p := u.Colptr[j]; p < u.Colptr[j+1]-1; p++ {
			x[u.Rowidx[p]] -= u.Values[p] * xj
		}
	}
}
