//go:build race

package sparse

// See race_off_test.go.
const raceEnabled = true
