package sparse

import (
	"fmt"
	"math"
)

// LDLT holds a sparse LDLᵀ factorization P·A·Pᵀ = L·D·Lᵀ of a symmetric
// matrix, computed without pivoting (suitable for symmetric positive or
// negative definite systems such as the conductance matrices of RC power
// grids with collapsed supplies).
type LDLT struct {
	n int
	l *CSC      // unit lower triangular, diagonal not stored
	d []float64 // diagonal of D
	p []int     // column k of the factorization is column p[k] of A
}

// N returns the dimension of the factored matrix.
func (f *LDLT) N() int { return f.n }

// L returns the unit lower triangular factor (unit diagonal not stored).
func (f *LDLT) L() *CSC { return f.l }

// D returns the diagonal of D.
func (f *LDLT) D() []float64 { return f.d }

// Perm returns the symmetric permutation: column k of the factorization is
// column p[k] of A.
func (f *LDLT) Perm() []int { return f.p }

// NNZ returns the number of stored entries in L plus D.
func (f *LDLT) NNZ() int { return f.l.NNZ() + f.n }

// EliminationTree computes the elimination tree of a symmetric matrix from
// its upper triangle. parent[k] == -1 marks a root.
func EliminationTree(a *CSC) []int {
	n := a.Cols
	parent := make([]int, n)
	ancestor := make([]int, n)
	for k := 0; k < n; k++ {
		parent[k] = -1
		ancestor[k] = -1
		for p := a.Colptr[k]; p < a.Colptr[k+1]; p++ {
			i := a.Rowidx[p]
			for i != -1 && i < k {
				next := ancestor[i]
				ancestor[i] = k
				if next == -1 {
					parent[i] = k
				}
				i = next
			}
		}
	}
	return parent
}

// etreeReach computes the nonzero pattern of row k of L: the nodes reachable
// from the entries of A(0:k, k) by walking up the elimination tree. It fills
// xi[top:n] in topological order (descendants before ancestors) and returns
// top. mark must be a k-stamped workspace: mark[i] == k means visited.
func etreeReach(a *CSC, k int, parent []int, xi []int, mark []int) int {
	n := a.Cols
	top := n
	mark[k] = k
	var stack [64]int
	for p := a.Colptr[k]; p < a.Colptr[k+1]; p++ {
		i := a.Rowidx[p]
		if i >= k {
			continue
		}
		// Walk up the tree collecting the unvisited path.
		path := stack[:0]
		for i != -1 && mark[i] != k {
			path = append(path, i)
			mark[i] = k
			i = parent[i]
		}
		// Push the path in reverse so xi[top:] stays topologically ordered.
		for len(path) > 0 {
			top--
			xi[top] = path[len(path)-1]
			path = path[:len(path)-1]
		}
	}
	return top
}

// FactorLDLT computes the LDLᵀ factorization of the symmetric matrix a with
// the given fill-reducing ordering. Only the structure and values of the
// stored upper triangle of the permuted matrix are used, so a must be
// symmetric. It returns ErrSingular when a zero pivot appears (the matrix is
// not definite).
func FactorLDLT(a *CSC, order Ordering) (*LDLT, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: FactorLDLT needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Cols
	perm := Order(a, order)
	ap := PermuteSym(a, perm)

	parent := EliminationTree(ap)
	// Dynamic per-column storage for L (rows > column index).
	colRows := make([][]int32, n)
	colVals := make([][]float64, n)
	d := make([]float64, n)

	y := make([]float64, n)
	xi := make([]int, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}

	for k := 0; k < n; k++ {
		top := etreeReach(ap, k, parent, xi, mark)
		// Scatter the upper part of column k and grab the diagonal.
		dk := 0.0
		for p := ap.Colptr[k]; p < ap.Colptr[k+1]; p++ {
			i := ap.Rowidx[p]
			switch {
			case i < k:
				y[i] = ap.Values[p]
			case i == k:
				dk = ap.Values[p]
			}
		}
		// Up-looking elimination along the pattern (topological order).
		for px := top; px < n; px++ {
			i := xi[px]
			yi := y[i]
			y[i] = 0
			lki := yi / d[i]
			rows := colRows[i]
			vals := colVals[i]
			for t := range rows {
				y[rows[t]] -= vals[t] * yi
			}
			dk -= lki * yi
			colRows[i] = append(rows, int32(k))
			colVals[i] = append(vals, lki)
		}
		if dk == 0 || math.IsNaN(dk) {
			return nil, fmt.Errorf("%w: zero pivot at column %d in LDLT", ErrSingular, k)
		}
		d[k] = dk
	}

	// Compress L into CSC (diagonal implied).
	nnz := 0
	for _, r := range colRows {
		nnz += len(r)
	}
	colptr := make([]int, n+1)
	rowidx := make([]int, nnz)
	values := make([]float64, nnz)
	pos := 0
	for j := 0; j < n; j++ {
		colptr[j] = pos
		for t := range colRows[j] {
			rowidx[pos] = int(colRows[j][t])
			values[pos] = colVals[j][t]
			pos++
		}
	}
	colptr[n] = pos
	l := &CSC{Rows: n, Cols: n, Colptr: colptr, Rowidx: rowidx, Values: values}
	return &LDLT{n: n, l: l, d: d, p: perm}, nil
}

// Solve computes x = A⁻¹ b, overwriting dst. dst and b may alias.
func (f *LDLT) Solve(dst, b []float64) {
	if len(dst) != f.n || len(b) != f.n {
		panic("sparse: LDLT.Solve dimension mismatch")
	}
	work := make([]float64, f.n)
	f.SolveWith(dst, b, work)
}

// SolveWith is Solve with a caller-provided workspace of length n.
func (f *LDLT) SolveWith(dst, b, work []float64) {
	if len(work) != f.n {
		panic("sparse: LDLT.SolveWith workspace length mismatch")
	}
	// work = Pᵀ·b (entry k of the permuted system is entry p[k] of the original).
	for k := 0; k < f.n; k++ {
		work[k] = b[f.p[k]]
	}
	l := f.l
	// Forward solve L·z = work (unit diagonal implied).
	for j := 0; j < f.n; j++ {
		xj := work[j]
		if xj == 0 {
			continue
		}
		for p := l.Colptr[j]; p < l.Colptr[j+1]; p++ {
			work[l.Rowidx[p]] -= l.Values[p] * xj
		}
	}
	// Diagonal solve.
	for j := 0; j < f.n; j++ {
		work[j] /= f.d[j]
	}
	// Backward solve Lᵀ·x = work.
	for j := f.n - 1; j >= 0; j-- {
		s := work[j]
		for p := l.Colptr[j]; p < l.Colptr[j+1]; p++ {
			s -= l.Values[p] * work[l.Rowidx[p]]
		}
		work[j] = s
	}
	// dst = P·work.
	for k := 0; k < f.n; k++ {
		dst[f.p[k]] = work[k]
	}
}
