package sparse

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// LDLT holds a sparse LDLᵀ factorization P·A·Pᵀ = L·D·Lᵀ of a symmetric
// matrix, computed without pivoting (suitable for symmetric positive or
// negative definite systems such as the conductance matrices of RC power
// grids with collapsed supplies).
//
// The factorization is split into a once-per-pattern symbolic analysis
// (Symbolic, shared by every factor of the same sparsity pattern) and the
// numeric values held here. The analysis decides between two numeric
// engines: the supernodal one stores L as dense column panels (snValues, one
// per supernode) and runs blocked kernels, the scalar fallback stores L
// entry-wise (values/valuesR) and runs the up-looking elimination. A factor
// is immutable through the solve API and safe for concurrent solves;
// RefactorInto mutates it and must not race with solves.
type LDLT struct {
	sym    *Symbolic
	values []float64 // L values, aligned with sym.rowidx (column-major; scalar engine)
	// valuesR mirrors values in row-major order (aligned with sym.rowind),
	// maintained for free by the refactorization: the level-scheduled
	// forward solve gathers rows contiguously from it instead of chasing
	// the rowpos indirection through the column-major array.
	valuesR []float64
	d       []float64 // diagonal of D
	y       []float64 // scalar refactorization scratch, length n, kept all-zero

	// Supernodal engine state: the concatenated dense panels and the
	// refactorization workspaces (row → panel-local scatter map, the
	// contiguous update accumulator, per-column update coefficients).
	// The workspaces are touched only by RefactorInto, which holds the
	// factor exclusively by contract.
	snValues []float64
	smap     []int32
	uptmp    []float64
	coeff    []float64

	// gbuf is the factor-owned below-block gather buffer for the supernodal
	// solves (8·maxRows: room for the widest multi-RHS block), claimed with
	// a CAS so the uncontended solve stays allocation-free even under the
	// race detector, where sync.Pool deliberately drops Puts. Concurrent
	// solves that lose the claim fall back to the shared pool.
	gbuf  []float64
	gbusy atomic.Bool
}

// getG claims the factor's gather buffer, falling back to the shared pool
// under contention. sz must not exceed len(gbuf). Release with putG.
//
//matex:noalloc
func (f *LDLT) getG(sz int) ([]float64, *[]float64) {
	if f.gbusy.CompareAndSwap(false, true) {
		return f.gbuf[:sz], nil
	}
	p := getWork(sz)
	return (*p)[:sz], p
}

//matex:noalloc
func (f *LDLT) putG(pooled *[]float64) {
	if pooled != nil {
		solveWork.Put(pooled)
	} else {
		f.gbusy.Store(false)
	}
}

// N returns the dimension of the factored matrix.
func (f *LDLT) N() int { return f.sym.n }

// Symbolic returns the shared pattern analysis behind this factor.
func (f *LDLT) Symbolic() *Symbolic { return f.sym }

// L materializes the unit lower triangular factor (unit diagonal not
// stored) as a CSC matrix. The pattern arrays are copied out of the compact
// symbolic form, so this allocates; it exists for inspection and tests, not
// for the solve path.
func (f *LDLT) L() *CSC {
	n := f.sym.n
	colptr := append([]int(nil), f.sym.colptr...)
	rowidx := make([]int, f.sym.lnz)
	for i, r := range f.sym.rowidx {
		rowidx[i] = int(r)
	}
	values := make([]float64, f.sym.lnz)
	if sn := f.sym.sn; sn != nil {
		for q := range values {
			values[q] = f.snValues[sn.scalarPos[q]]
		}
	} else {
		copy(values, f.values)
	}
	return &CSC{Rows: n, Cols: n, Colptr: colptr, Rowidx: rowidx, Values: values}
}

// D returns the diagonal of D.
func (f *LDLT) D() []float64 { return f.d }

// Perm returns the symmetric permutation: column k of the factorization is
// column p[k] of A.
func (f *LDLT) Perm() []int { return f.sym.perm }

// NNZ returns the number of stored entries in L plus D.
func (f *LDLT) NNZ() int { return f.sym.lnz + f.sym.n }

// EliminationTree computes the elimination tree of a symmetric matrix from
// its upper triangle. parent[k] == -1 marks a root.
func EliminationTree(a *CSC) []int {
	n := a.Cols
	parent := make([]int, n)
	ancestor := make([]int, n)
	for k := 0; k < n; k++ {
		parent[k] = -1
		ancestor[k] = -1
		for p := a.Colptr[k]; p < a.Colptr[k+1]; p++ {
			i := a.Rowidx[p]
			for i != -1 && i < k {
				next := ancestor[i]
				ancestor[i] = k
				if next == -1 {
					parent[i] = k
				}
				i = next
			}
		}
	}
	return parent
}

// FactorLDLT computes the LDLᵀ factorization of the symmetric matrix a with
// the given fill-reducing ordering: a symbolic analysis of the pattern
// followed by a numeric refactorization. Only the structure and values of
// the stored upper triangle of the permuted matrix are used, so a must be
// symmetric. It returns ErrSingular when a zero pivot appears (the matrix is
// not definite). Callers factorizing many matrices of one pattern should
// AnalyzeLDLT once and Refactor per matrix instead (the Cache does this
// automatically).
func FactorLDLT(a *CSC, order Ordering) (*LDLT, error) {
	sym, err := AnalyzeLDLT(a, order)
	if err != nil {
		return nil, err
	}
	return sym.Refactor(a)
}

// solveWork is the package-wide pool behind the workspace-less Solve entry
// points: one []float64 per concurrent solve, reused across factors (the
// slices are sized to the largest system seen and resliced per use).
var solveWork = sync.Pool{New: func() any { s := make([]float64, 0); return &s }}

//matex:noalloc
func getWork(n int) *[]float64 {
	w := solveWork.Get().(*[]float64)
	if cap(*w) < n {
		*w = make([]float64, n) //matex:alloc-ok(grow path: pool slice resized to the largest system seen)
	}
	return w
}

// Solve computes x = A⁻¹ b, overwriting dst. dst and b may alias. The
// workspace comes from a shared pool; repeated solves allocate nothing.
//
//matex:noalloc
func (f *LDLT) Solve(dst, b []float64) {
	if len(dst) != f.sym.n || len(b) != f.sym.n {
		panic("sparse: LDLT.Solve dimension mismatch")
	}
	w := getWork(f.sym.n)
	f.SolveWith(dst, b, (*w)[:f.sym.n])
	solveWork.Put(w)
}

// SolveWith is Solve with a caller-provided workspace of length n.
//
//matex:noalloc
func (f *LDLT) SolveWith(dst, b, work []float64) {
	n := f.sym.n
	if len(work) != n {
		panic("sparse: LDLT.SolveWith workspace length mismatch")
	}
	if f.sym.sn != nil {
		f.solveSN(dst, b, work)
		return
	}
	perm := f.sym.perm
	// work = Pᵀ·b (entry k of the permuted system is entry p[k] of the original).
	for k := 0; k < n; k++ {
		work[k] = b[perm[k]]
	}
	colptr, rowidx, values, d := f.sym.colptr, f.sym.rowidx, f.values, f.d
	// Forward solve L·z = work (unit diagonal implied), column scatter form.
	for j := 0; j < n; j++ {
		xj := work[j]
		if xj == 0 {
			continue
		}
		for q := colptr[j]; q < colptr[j+1]; q++ {
			work[rowidx[q]] -= values[q] * xj
		}
	}
	// Diagonal solve.
	for j := 0; j < n; j++ {
		work[j] /= d[j]
	}
	// Backward solve Lᵀ·x = work.
	for j := n - 1; j >= 0; j-- {
		s := work[j]
		for q := colptr[j]; q < colptr[j+1]; q++ {
			s -= values[q] * work[rowidx[q]]
		}
		work[j] = s
	}
	// dst = P·work.
	for k := 0; k < n; k++ {
		dst[perm[k]] = work[k]
	}
}

// parMinLNZ is the factor-fill crossover below which the goroutine fan-out
// costs more than the arithmetic it parallelizes, so ParSolveWith degrades
// to the sequential path.
const parMinLNZ = 32768

// ParallelizableSolve reports whether the task schedule makes a parallel
// solve worth attempting for this factor: enough fill to amortize the
// fan-out and a usable task partition (≥ 2 independent subtrees with the
// separator tail below a quarter of the work — cutTasks escalates its chunk
// bound to reach that, and leaves the schedule empty when the pattern's
// root separators make it unreachable). The supernodal engine schedules
// over the supernode elimination tree, the scalar engine over the nodal one.
func (f *LDLT) ParallelizableSolve() bool {
	sym := f.sym
	if sym.lnz < parMinLNZ {
		return false
	}
	if sym.sn != nil {
		return len(sym.sn.taskPtr) > 2
	}
	return len(sym.taskPtr) > 2
}

// ParSolveWith is SolveWith with the triangular solves scheduled over the
// elimination-tree task partition on up to workers goroutines: independent
// subtrees run concurrently in gather (dot-product) form — each row is
// finalized by reading only its descendants, so a task never touches
// another task's rows — and the separator tail of common ancestors runs
// sequentially after (forward) or before (backward) the fan-out. Under the
// supernodal engine the unit of scheduling is the supernode: tasks finalize
// whole panels, pulling descendant contributions through the update records.
// workers <= 1 and factors below the profitability crossover fall back to
// the sequential path entirely; the fan-out itself runs on a persistent
// worker pool and allocates nothing. Safe for concurrent use.
//
//matex:noalloc
func (f *LDLT) ParSolveWith(dst, b, work []float64, workers int) {
	n := f.sym.n
	if workers <= 1 || !f.ParallelizableSolve() {
		f.SolveWith(dst, b, work)
		return
	}
	if len(work) != n {
		panic("sparse: LDLT.ParSolveWith workspace length mismatch")
	}
	sym := f.sym
	perm := sym.perm
	for k := 0; k < n; k++ {
		work[k] = b[perm[k]]
	}
	d := f.d
	if sn := sym.sn; sn != nil {
		// L·z = b: subtree tasks fan out in gather form, barrier, then the
		// separator tail (also gather form — its update records reach into
		// the now-final task panels).
		f.runTasksPar(phaseFwdSN, work, workers)
		for _, t := range sn.tailSN {
			f.fwdOneSNGather(int(t), work)
		}
		for j := 0; j < n; j++ {
			work[j] /= d[j]
		}
		// Lᵀ·x = z: separator tail first (descending), then the task fan-out.
		g, pooled := f.getG(sn.maxRows)
		for i := len(sn.tailSN) - 1; i >= 0; i-- {
			f.bwdOneSN(int(sn.tailSN[i]), work, g)
		}
		f.putG(pooled)
		f.runTasksPar(phaseBwdSN, work, workers)
	} else {
		f.runTasksPar(phaseFwdScalar, work, workers)
		f.fwdRowsGather(sym.tailRows, work)
		for j := 0; j < n; j++ {
			work[j] /= d[j]
		}
		f.bwdRowsGather(sym.tailRows, work)
		f.runTasksPar(phaseBwdScalar, work, workers)
	}
	for k := 0; k < n; k++ {
		dst[perm[k]] = work[k]
	}
}

// fwdRowsGather finalizes a row range of the scalar forward solve in gather
// form (ascending order within the range).
//
//matex:noalloc
func (f *LDLT) fwdRowsGather(rows []int32, work []float64) {
	sym := f.sym
	valuesR, rowptr, rowind := f.valuesR, sym.rowptr, sym.rowind
	for _, k32 := range rows {
		k := int(k32)
		s := work[k]
		for p := rowptr[k]; p < rowptr[k+1]; p++ {
			s -= valuesR[p] * work[rowind[p]]
		}
		work[k] = s
	}
}

// bwdRowsGather finalizes a row range of the scalar backward solve in gather
// form, descending order: row i of Lᵀ is column i of L.
//
//matex:noalloc
func (f *LDLT) bwdRowsGather(rows []int32, work []float64) {
	sym := f.sym
	values, colptr, rowidx := f.values, sym.colptr, sym.rowidx
	for t := len(rows) - 1; t >= 0; t-- {
		i := int(rows[t])
		s := work[i]
		for q := colptr[i]; q < colptr[i+1]; q++ {
			s -= values[q] * work[rowidx[q]]
		}
		work[i] = s
	}
}

// Solve phases dispatched through the persistent worker pool.
const (
	phaseFwdScalar = iota
	phaseBwdScalar
	phaseFwdSN
	phaseBwdSN
)

// runTaskBody executes one task of the given phase: a row range (scalar) or
// a supernode range (supernodal) of the factor's task schedule.
//
//matex:noalloc
func (f *LDLT) runTaskBody(phase uint8, t int, work []float64) {
	switch phase {
	case phaseFwdScalar:
		sym := f.sym
		f.fwdRowsGather(sym.taskRows[sym.taskPtr[t]:sym.taskPtr[t+1]], work)
	case phaseBwdScalar:
		sym := f.sym
		f.bwdRowsGather(sym.taskRows[sym.taskPtr[t]:sym.taskPtr[t+1]], work)
	case phaseFwdSN:
		sn := f.sym.sn
		sns := sn.taskSN[sn.taskPtr[t]:sn.taskPtr[t+1]]
		for _, s := range sns {
			f.fwdOneSNGather(int(s), work)
		}
	case phaseBwdSN:
		sn := f.sym.sn
		sns := sn.taskSN[sn.taskPtr[t]:sn.taskPtr[t+1]]
		gw := getWork(sn.maxRows)
		g := (*gw)[:sn.maxRows]
		for i := len(sns) - 1; i >= 0; i-- {
			f.bwdOneSN(int(sns[i]), work, g)
		}
		solveWork.Put(gw)
	}
}

func (f *LDLT) ntasks() int {
	if sn := f.sym.sn; sn != nil {
		return len(sn.taskPtr) - 1
	}
	return len(f.sym.taskPtr) - 1
}

// parJob is one phase fan-out handed to the persistent workers: helpers and
// the submitting goroutine pull task indices from the shared cursor until
// the schedule is drained. Pooled so steady-state parallel solves allocate
// nothing.
type parJob struct {
	f      *LDLT
	work   []float64
	phase  uint8
	cursor atomic.Int64
	wg     sync.WaitGroup
}

//matex:noalloc
func (j *parJob) run() {
	n := j.f.ntasks()
	for {
		t := int(j.cursor.Add(1)) - 1
		if t >= n {
			return
		}
		j.f.runTaskBody(j.phase, t, j.work)
	}
}

var (
	parJobPool  = sync.Pool{New: func() any { return new(parJob) }}
	parWorkOnce sync.Once
	parWorkCh   chan *parJob
)

// startParWorkers launches the persistent solver worker pool. Workers idle
// on a channel between jobs; each queued reference to a job is one helper's
// participation in its fan-out.
func startParWorkers() {
	nw := runtime.GOMAXPROCS(0)
	if nw < 4 {
		nw = 4
	}
	parWorkCh = make(chan *parJob, nw)
	for i := 0; i < nw; i++ {
		go func() {
			for j := range parWorkCh {
				j.run()
				j.wg.Done()
			}
		}()
	}
}

// runTasksPar drains one phase's task schedule on up to workers goroutines
// (the caller plus workers-1 pool helpers), blocking until every task is
// done. With a single worker it degrades to a plain sequential loop.
//
//matex:noalloc
func (f *LDLT) runTasksPar(phase uint8, work []float64, workers int) {
	n := f.ntasks()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for t := 0; t < n; t++ {
			f.runTaskBody(phase, t, work)
		}
		return
	}
	parWorkOnce.Do(startParWorkers)
	j := parJobPool.Get().(*parJob)
	j.f, j.work, j.phase = f, work, phase
	j.cursor.Store(0)
	j.wg.Add(workers - 1)
	for i := 1; i < workers; i++ {
		parWorkCh <- j
	}
	j.run()
	j.wg.Wait()
	j.f, j.work = nil, nil
	parJobPool.Put(j)
}

// SolveMulti solves A·X = B for k right-hand sides in one traversal of the
// factor: the k solutions advance together through an interleaved panel, so
// every factor entry is loaded once per panel instead of once per
// right-hand side. dst and b must each hold k vectors of length n (dst[r]
// and b[r] may alias). The workspace comes from a shared pool.
//
//matex:noalloc
func (f *LDLT) SolveMulti(dst, b [][]float64) {
	n, k := f.sym.n, len(dst)
	if k == 0 {
		return
	}
	w := getWork(n * k)
	f.SolveMultiWith(dst, b, (*w)[:n*k])
	solveWork.Put(w)
}

// SolveMultiWith is SolveMulti with a caller-provided workspace of length
// n·k, allowing allocation-free repeated panel solves.
//
//matex:noalloc
func (f *LDLT) SolveMultiWith(dst, b [][]float64, work []float64) {
	n, k := f.sym.n, len(dst)
	if len(b) != k {
		panic("sparse: LDLT.SolveMulti needs matching panel widths")
	}
	if k == 0 {
		return
	}
	if len(work) != n*k {
		panic("sparse: LDLT.SolveMultiWith workspace length mismatch")
	}
	for r := 0; r < k; r++ {
		if len(dst[r]) != n || len(b[r]) != n {
			panic("sparse: LDLT.SolveMulti dimension mismatch")
		}
	}
	// Process the panel in blocks of bounded width — one traversal of the
	// factor's index/value arrays per block, fused per-entry updates, no
	// inner-loop bounds checks. The supernodal kernel is generic over the
	// block width and takes up to 8 right-hand sides, so a sweep's
	// full-width panel costs a single factor traversal; the scalar path
	// pairs a specialized 4-wide register kernel with a generic kernel for
	// the 1-3 leftovers.
	if f.sym.sn != nil {
		for lo := 0; lo < k; lo += 8 {
			hi := lo + 8
			if hi > k {
				hi = k
			}
			f.solvePanelSN(dst[lo:hi], b[lo:hi], work[:(hi-lo)*n])
		}
		return
	}
	for lo := 0; lo < k; lo += 4 {
		hi := lo + 4
		if hi > k {
			hi = k
		}
		if hi-lo == 4 {
			f.solvePanel4(dst[lo:hi], b[lo:hi], work[:4*n])
		} else {
			f.solvePanelN(dst[lo:hi], b[lo:hi], work[:(hi-lo)*n])
		}
	}
}

// solvePanel4 solves exactly four right-hand sides in one factor traversal.
//
//matex:noalloc
func (f *LDLT) solvePanel4(dst, b [][]float64, work []float64) {
	n := f.sym.n
	perm := f.sym.perm
	b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
	for i := 0; i < n; i++ {
		pi := perm[i]
		work[4*i] = b0[pi]
		work[4*i+1] = b1[pi]
		work[4*i+2] = b2[pi]
		work[4*i+3] = b3[pi]
	}
	colptr, rowidx, values, d := f.sym.colptr, f.sym.rowidx, f.values, f.d
	for j := 0; j < n; j++ {
		x0, x1, x2, x3 := work[4*j], work[4*j+1], work[4*j+2], work[4*j+3]
		for q := colptr[j]; q < colptr[j+1]; q++ {
			v := values[q]
			t := 4 * int(rowidx[q])
			work[t] -= v * x0
			work[t+1] -= v * x1
			work[t+2] -= v * x2
			work[t+3] -= v * x3
		}
	}
	// True divisions, so the panel matches the sequential solve bitwise
	// (a reciprocal multiply rounds differently, and the sweep engine
	// promises batched lanes reproduce solo runs exactly).
	for j := 0; j < n; j++ {
		dj := d[j]
		work[4*j] /= dj
		work[4*j+1] /= dj
		work[4*j+2] /= dj
		work[4*j+3] /= dj
	}
	for j := n - 1; j >= 0; j-- {
		x0, x1, x2, x3 := work[4*j], work[4*j+1], work[4*j+2], work[4*j+3]
		for q := colptr[j]; q < colptr[j+1]; q++ {
			v := values[q]
			t := 4 * int(rowidx[q])
			x0 -= v * work[t]
			x1 -= v * work[t+1]
			x2 -= v * work[t+2]
			x3 -= v * work[t+3]
		}
		work[4*j] = x0
		work[4*j+1] = x1
		work[4*j+2] = x2
		work[4*j+3] = x3
	}
	d0, d1, d2, d3 := dst[0], dst[1], dst[2], dst[3]
	for i := 0; i < n; i++ {
		pi := perm[i]
		d0[pi] = work[4*i]
		d1[pi] = work[4*i+1]
		d2[pi] = work[4*i+2]
		d3[pi] = work[4*i+3]
	}
}

// solvePanelN is the generic interleaved kernel for 1-3 leftover
// right-hand sides.
//
//matex:noalloc
func (f *LDLT) solvePanelN(dst, b [][]float64, work []float64) {
	n, k := f.sym.n, len(dst)
	perm := f.sym.perm
	for i := 0; i < n; i++ {
		pi := perm[i]
		row := work[i*k : i*k+k]
		for r := 0; r < k; r++ {
			row[r] = b[r][pi]
		}
	}
	colptr, rowidx, values, d := f.sym.colptr, f.sym.rowidx, f.values, f.d
	for j := 0; j < n; j++ {
		xj := work[j*k : j*k+k : j*k+k]
		for q := colptr[j]; q < colptr[j+1]; q++ {
			v := values[q]
			ti := int(rowidx[q]) * k
			tr := work[ti : ti+k : ti+k]
			for r := range tr {
				tr[r] -= v * xj[r]
			}
		}
	}
	for j := 0; j < n; j++ {
		dj := d[j]
		row := work[j*k : j*k+k]
		for r := range row {
			row[r] /= dj
		}
	}
	for j := n - 1; j >= 0; j-- {
		xj := work[j*k : j*k+k : j*k+k]
		for q := colptr[j]; q < colptr[j+1]; q++ {
			v := values[q]
			ti := int(rowidx[q]) * k
			tr := work[ti : ti+k : ti+k]
			for r := range xj {
				xj[r] -= v * tr[r]
			}
		}
	}
	for i := 0; i < n; i++ {
		pi := perm[i]
		row := work[i*k : i*k+k]
		for r := 0; r < k; r++ {
			dst[r][pi] = row[r]
		}
	}
}
