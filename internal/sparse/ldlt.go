package sparse

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// LDLT holds a sparse LDLᵀ factorization P·A·Pᵀ = L·D·Lᵀ of a symmetric
// matrix, computed without pivoting (suitable for symmetric positive or
// negative definite systems such as the conductance matrices of RC power
// grids with collapsed supplies).
//
// The factorization is split into a once-per-pattern symbolic analysis
// (Symbolic, shared by every factor of the same sparsity pattern) and the
// numeric values held here. A factor is immutable through the solve API and
// safe for concurrent solves; RefactorInto mutates it and must not race
// with solves.
type LDLT struct {
	sym    *Symbolic
	values []float64 // L values, aligned with sym.rowidx (column-major)
	// valuesR mirrors values in row-major order (aligned with sym.rowind),
	// maintained for free by the refactorization: the level-scheduled
	// forward solve gathers rows contiguously from it instead of chasing
	// the rowpos indirection through the column-major array.
	valuesR []float64
	d       []float64 // diagonal of D
	y       []float64 // refactorization scratch, length n, kept all-zero
}

// N returns the dimension of the factored matrix.
func (f *LDLT) N() int { return f.sym.n }

// Symbolic returns the shared pattern analysis behind this factor.
func (f *LDLT) Symbolic() *Symbolic { return f.sym }

// L materializes the unit lower triangular factor (unit diagonal not
// stored) as a CSC matrix. The pattern arrays are copied out of the compact
// symbolic form, so this allocates; it exists for inspection and tests, not
// for the solve path.
func (f *LDLT) L() *CSC {
	n := f.sym.n
	colptr := append([]int(nil), f.sym.colptr...)
	rowidx := make([]int, f.sym.lnz)
	for i, r := range f.sym.rowidx {
		rowidx[i] = int(r)
	}
	values := append([]float64(nil), f.values...)
	return &CSC{Rows: n, Cols: n, Colptr: colptr, Rowidx: rowidx, Values: values}
}

// D returns the diagonal of D.
func (f *LDLT) D() []float64 { return f.d }

// Perm returns the symmetric permutation: column k of the factorization is
// column p[k] of A.
func (f *LDLT) Perm() []int { return f.sym.perm }

// NNZ returns the number of stored entries in L plus D.
func (f *LDLT) NNZ() int { return f.sym.lnz + f.sym.n }

// EliminationTree computes the elimination tree of a symmetric matrix from
// its upper triangle. parent[k] == -1 marks a root.
func EliminationTree(a *CSC) []int {
	n := a.Cols
	parent := make([]int, n)
	ancestor := make([]int, n)
	for k := 0; k < n; k++ {
		parent[k] = -1
		ancestor[k] = -1
		for p := a.Colptr[k]; p < a.Colptr[k+1]; p++ {
			i := a.Rowidx[p]
			for i != -1 && i < k {
				next := ancestor[i]
				ancestor[i] = k
				if next == -1 {
					parent[i] = k
				}
				i = next
			}
		}
	}
	return parent
}

// FactorLDLT computes the LDLᵀ factorization of the symmetric matrix a with
// the given fill-reducing ordering: a symbolic analysis of the pattern
// followed by a numeric refactorization. Only the structure and values of
// the stored upper triangle of the permuted matrix are used, so a must be
// symmetric. It returns ErrSingular when a zero pivot appears (the matrix is
// not definite). Callers factorizing many matrices of one pattern should
// AnalyzeLDLT once and Refactor per matrix instead (the Cache does this
// automatically).
func FactorLDLT(a *CSC, order Ordering) (*LDLT, error) {
	sym, err := AnalyzeLDLT(a, order)
	if err != nil {
		return nil, err
	}
	return sym.Refactor(a)
}

// solveWork is the package-wide pool behind the workspace-less Solve entry
// points: one []float64 per concurrent solve, reused across factors (the
// slices are sized to the largest system seen and resliced per use).
var solveWork = sync.Pool{New: func() any { s := make([]float64, 0); return &s }}

func getWork(n int) *[]float64 {
	w := solveWork.Get().(*[]float64)
	if cap(*w) < n {
		*w = make([]float64, n)
	}
	return w
}

// Solve computes x = A⁻¹ b, overwriting dst. dst and b may alias. The
// workspace comes from a shared pool; repeated solves allocate nothing.
func (f *LDLT) Solve(dst, b []float64) {
	if len(dst) != f.sym.n || len(b) != f.sym.n {
		panic("sparse: LDLT.Solve dimension mismatch")
	}
	w := getWork(f.sym.n)
	f.SolveWith(dst, b, (*w)[:f.sym.n])
	solveWork.Put(w)
}

// SolveWith is Solve with a caller-provided workspace of length n.
func (f *LDLT) SolveWith(dst, b, work []float64) {
	n := f.sym.n
	if len(work) != n {
		panic("sparse: LDLT.SolveWith workspace length mismatch")
	}
	perm := f.sym.perm
	// work = Pᵀ·b (entry k of the permuted system is entry p[k] of the original).
	for k := 0; k < n; k++ {
		work[k] = b[perm[k]]
	}
	colptr, rowidx, values, d := f.sym.colptr, f.sym.rowidx, f.values, f.d
	// Forward solve L·z = work (unit diagonal implied), column scatter form.
	for j := 0; j < n; j++ {
		xj := work[j]
		if xj == 0 {
			continue
		}
		for q := colptr[j]; q < colptr[j+1]; q++ {
			work[rowidx[q]] -= values[q] * xj
		}
	}
	// Diagonal solve.
	for j := 0; j < n; j++ {
		work[j] /= d[j]
	}
	// Backward solve Lᵀ·x = work.
	for j := n - 1; j >= 0; j-- {
		s := work[j]
		for q := colptr[j]; q < colptr[j+1]; q++ {
			s -= values[q] * work[rowidx[q]]
		}
		work[j] = s
	}
	// dst = P·work.
	for k := 0; k < n; k++ {
		dst[perm[k]] = work[k]
	}
}

// parMinLNZ is the factor-fill crossover below which the goroutine fan-out
// costs more than the arithmetic it parallelizes, so ParSolveWith degrades
// to the sequential path.
const parMinLNZ = 32768

// ParallelizableSolve reports whether the etree task schedule makes a
// parallel solve worth attempting for this factor: enough fill to amortize
// the fan-out and a usable task partition (≥ 2 independent subtrees with
// the separator tail below a quarter of the work — buildTasks escalates its
// chunk bound to reach that, and leaves the schedule empty when the
// pattern's root separators make it unreachable).
func (f *LDLT) ParallelizableSolve() bool {
	sym := f.sym
	return sym.lnz >= parMinLNZ && len(sym.taskPtr) > 2
}

// ParSolveWith is SolveWith with the triangular solves scheduled over the
// elimination-tree task partition on up to workers goroutines: independent
// subtrees run concurrently in gather (dot-product) form — each row is
// finalized by reading only its descendants, so a task never touches
// another task's rows — and the separator tail of common ancestors runs
// sequentially after (forward) or before (backward) the fan-out. workers <=
// 1 and factors below the profitability crossover fall back to the
// sequential path entirely. Safe for concurrent use.
func (f *LDLT) ParSolveWith(dst, b, work []float64, workers int) {
	n := f.sym.n
	if workers > 1 && workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || !f.ParallelizableSolve() {
		f.SolveWith(dst, b, work)
		return
	}
	if len(work) != n {
		panic("sparse: LDLT.ParSolveWith workspace length mismatch")
	}
	sym := f.sym
	perm := sym.perm
	for k := 0; k < n; k++ {
		work[k] = b[perm[k]]
	}
	values, valuesR, d := f.values, f.valuesR, f.d
	rowptr, rowind := sym.rowptr, sym.rowind
	colptr, rowidx := sym.colptr, sym.rowidx

	// Forward gather for one row range (ascending order within the range).
	fwdRows := func(rows []int32) {
		for _, k32 := range rows {
			k := int(k32)
			s := work[k]
			for p := rowptr[k]; p < rowptr[k+1]; p++ {
				s -= valuesR[p] * work[rowind[p]]
			}
			work[k] = s
		}
	}
	// Backward gather for one row range, descending order: row i of Lᵀ is
	// column i of L.
	bwdRows := func(rows []int32) {
		for t := len(rows) - 1; t >= 0; t-- {
			i := int(rows[t])
			s := work[i]
			for q := colptr[i]; q < colptr[i+1]; q++ {
				s -= values[q] * work[rowidx[q]]
			}
			work[i] = s
		}
	}

	// L·z = b: tasks fan out, barrier, separator tail.
	runTasks(sym, workers, fwdRows)
	fwdRows(sym.tailRows)
	for j := 0; j < n; j++ {
		work[j] /= d[j]
	}
	// Lᵀ·x = z: separator tail first, then the task fan-out.
	bwdRows(sym.tailRows)
	runTasks(sym, workers, bwdRows)

	for k := 0; k < n; k++ {
		dst[perm[k]] = work[k]
	}
}

// runTasks fans the subtree tasks out over workers goroutines pulling from
// an atomic cursor, and waits for all of them.
func runTasks(sym *Symbolic, workers int, body func(rows []int32)) {
	ntasks := len(sym.taskPtr) - 1
	if workers > ntasks {
		workers = ntasks
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(cursor.Add(1)) - 1
				if t >= ntasks {
					return
				}
				body(sym.taskRows[sym.taskPtr[t]:sym.taskPtr[t+1]])
			}
		}()
	}
	for {
		t := int(cursor.Add(1)) - 1
		if t >= ntasks {
			break
		}
		body(sym.taskRows[sym.taskPtr[t]:sym.taskPtr[t+1]])
	}
	wg.Wait()
}

// SolveMulti solves A·X = B for k right-hand sides in one traversal of the
// factor: the k solutions advance together through an interleaved panel, so
// every factor entry is loaded once per panel instead of once per
// right-hand side. dst and b must each hold k vectors of length n (dst[r]
// and b[r] may alias). The workspace comes from a shared pool.
func (f *LDLT) SolveMulti(dst, b [][]float64) {
	n, k := f.sym.n, len(dst)
	if k == 0 {
		return
	}
	w := getWork(n * k)
	f.SolveMultiWith(dst, b, (*w)[:n*k])
	solveWork.Put(w)
}

// SolveMultiWith is SolveMulti with a caller-provided workspace of length
// n·k, allowing allocation-free repeated panel solves.
func (f *LDLT) SolveMultiWith(dst, b [][]float64, work []float64) {
	n, k := f.sym.n, len(dst)
	if len(b) != k {
		panic("sparse: LDLT.SolveMulti needs matching panel widths")
	}
	if k == 0 {
		return
	}
	if len(work) != n*k {
		panic("sparse: LDLT.SolveMultiWith workspace length mismatch")
	}
	for r := 0; r < k; r++ {
		if len(dst[r]) != n || len(b[r]) != n {
			panic("sparse: LDLT.SolveMulti dimension mismatch")
		}
	}
	// Process the panel in blocks of up to 4 right-hand sides. The 4-wide
	// block runs a specialized kernel holding the active solutions in
	// registers — one traversal of the factor's index/value arrays per
	// block, four fused updates per entry, no inner-loop bounds checks.
	for lo := 0; lo < k; lo += 4 {
		hi := lo + 4
		if hi > k {
			hi = k
		}
		if hi-lo == 4 {
			f.solvePanel4(dst[lo:hi], b[lo:hi], work[:4*n])
		} else {
			f.solvePanelN(dst[lo:hi], b[lo:hi], work[:(hi-lo)*n])
		}
	}
}

// solvePanel4 solves exactly four right-hand sides in one factor traversal.
func (f *LDLT) solvePanel4(dst, b [][]float64, work []float64) {
	n := f.sym.n
	perm := f.sym.perm
	b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
	for i := 0; i < n; i++ {
		pi := perm[i]
		work[4*i] = b0[pi]
		work[4*i+1] = b1[pi]
		work[4*i+2] = b2[pi]
		work[4*i+3] = b3[pi]
	}
	colptr, rowidx, values, d := f.sym.colptr, f.sym.rowidx, f.values, f.d
	for j := 0; j < n; j++ {
		x0, x1, x2, x3 := work[4*j], work[4*j+1], work[4*j+2], work[4*j+3]
		for q := colptr[j]; q < colptr[j+1]; q++ {
			v := values[q]
			t := 4 * int(rowidx[q])
			work[t] -= v * x0
			work[t+1] -= v * x1
			work[t+2] -= v * x2
			work[t+3] -= v * x3
		}
	}
	for j := 0; j < n; j++ {
		inv := 1 / d[j]
		work[4*j] *= inv
		work[4*j+1] *= inv
		work[4*j+2] *= inv
		work[4*j+3] *= inv
	}
	for j := n - 1; j >= 0; j-- {
		x0, x1, x2, x3 := work[4*j], work[4*j+1], work[4*j+2], work[4*j+3]
		for q := colptr[j]; q < colptr[j+1]; q++ {
			v := values[q]
			t := 4 * int(rowidx[q])
			x0 -= v * work[t]
			x1 -= v * work[t+1]
			x2 -= v * work[t+2]
			x3 -= v * work[t+3]
		}
		work[4*j] = x0
		work[4*j+1] = x1
		work[4*j+2] = x2
		work[4*j+3] = x3
	}
	d0, d1, d2, d3 := dst[0], dst[1], dst[2], dst[3]
	for i := 0; i < n; i++ {
		pi := perm[i]
		d0[pi] = work[4*i]
		d1[pi] = work[4*i+1]
		d2[pi] = work[4*i+2]
		d3[pi] = work[4*i+3]
	}
}

// solvePanelN is the generic interleaved kernel for 1-3 leftover
// right-hand sides.
func (f *LDLT) solvePanelN(dst, b [][]float64, work []float64) {
	n, k := f.sym.n, len(dst)
	perm := f.sym.perm
	for i := 0; i < n; i++ {
		pi := perm[i]
		row := work[i*k : i*k+k]
		for r := 0; r < k; r++ {
			row[r] = b[r][pi]
		}
	}
	colptr, rowidx, values, d := f.sym.colptr, f.sym.rowidx, f.values, f.d
	for j := 0; j < n; j++ {
		xj := work[j*k : j*k+k : j*k+k]
		for q := colptr[j]; q < colptr[j+1]; q++ {
			v := values[q]
			ti := int(rowidx[q]) * k
			tr := work[ti : ti+k : ti+k]
			for r := range tr {
				tr[r] -= v * xj[r]
			}
		}
	}
	for j := 0; j < n; j++ {
		inv := 1 / d[j]
		row := work[j*k : j*k+k]
		for r := range row {
			row[r] *= inv
		}
	}
	for j := n - 1; j >= 0; j-- {
		xj := work[j*k : j*k+k : j*k+k]
		for q := colptr[j]; q < colptr[j+1]; q++ {
			v := values[q]
			ti := int(rowidx[q]) * k
			tr := work[ti : ti+k : ti+k]
			for r := range xj {
				xj[r] -= v * tr[r]
			}
		}
	}
	for i := 0; i < n; i++ {
		pi := perm[i]
		row := work[i*k : i*k+k]
		for r := 0; r < k; r++ {
			dst[r][pi] = row[r]
		}
	}
}
