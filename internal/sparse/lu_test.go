package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// residual returns max_i |A x - b|_i.
func residual(a *CSC, x, b []float64) float64 {
	r := make([]float64, len(b))
	a.MulVec(r, x)
	var max float64
	for i := range r {
		if d := math.Abs(r[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

func TestLUSolveSmallKnown(t *testing.T) {
	// [2 1; 1 3] x = [3; 5] -> x = [4/5, 7/5]
	tr := NewTriplet(2, 2)
	tr.Add(0, 0, 2)
	tr.Add(0, 1, 1)
	tr.Add(1, 0, 1)
	tr.Add(1, 1, 3)
	a := tr.ToCSC()
	f, err := FactorLU(a, OrderNatural, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.Solve(x, []float64{3, 5})
	if !almostEqual(x[0], 0.8, 1e-14) || !almostEqual(x[1], 1.4, 1e-14) {
		t.Fatalf("x = %v, want [0.8 1.4]", x)
	}
}

func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, order := range []Ordering{OrderNatural, OrderRCM, OrderMinDegree} {
		for _, n := range []int{1, 2, 5, 20, 80} {
			a := randomSparse(rng, n, 0.15)
			f, err := FactorLU(a, order, 1.0)
			if err != nil {
				t.Fatalf("n=%d order=%v: %v", n, order, err)
			}
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			x := make([]float64, n)
			f.Solve(x, b)
			if r := residual(a, x, b); r > 1e-9 {
				t.Fatalf("n=%d order=%v: residual %g", n, order, r)
			}
		}
	}
}

func TestLUFactorsMultiply(t *testing.T) {
	// Verify P·A·Q = L·U entrywise via dense expansion.
	rng := rand.New(rand.NewSource(11))
	n := 15
	a := randomSparse(rng, n, 0.3)
	f, err := FactorLU(a, OrderRCM, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	l := f.L().Dense()
	u := f.U().Dense()
	ad := a.Dense()
	pinv, q := f.RowPerm(), f.ColPerm()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var lu float64
			for k := 0; k < n; k++ {
				lu += l[i][k] * u[k][j]
			}
			// (P·A·Q)[i][j] = A[ porig(i) ][ q[j] ] with pinv[porig(i)] = i.
			var paq float64
			for r := 0; r < n; r++ {
				if pinv[r] == i {
					paq = ad[r][q[j]]
				}
			}
			if !almostEqual(lu, paq, 1e-10) {
				t.Fatalf("LU(%d,%d) = %v, PAQ = %v", i, j, lu, paq)
			}
		}
	}
}

func TestLUSingularDetected(t *testing.T) {
	tr := NewTriplet(3, 3)
	tr.Add(0, 0, 1)
	tr.Add(1, 1, 1)
	// Column 2 is structurally empty.
	a := tr.ToCSC()
	if _, err := FactorLU(a, OrderNatural, 1.0); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	// Numerically singular: two identical rows.
	tr2 := NewTriplet(2, 2)
	tr2.Add(0, 0, 1)
	tr2.Add(0, 1, 2)
	tr2.Add(1, 0, 1)
	tr2.Add(1, 1, 2)
	if _, err := FactorLU(tr2.ToCSC(), OrderNatural, 1.0); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular for rank-1 matrix, got %v", err)
	}
}

func TestLUNonSquareRejected(t *testing.T) {
	tr := NewTriplet(2, 3)
	tr.Add(0, 0, 1)
	if _, err := FactorLU(tr.ToCSC(), OrderNatural, 1.0); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestLUPermutedIdentity(t *testing.T) {
	// A matrix that forces row pivoting: anti-diagonal.
	n := 6
	tr := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Add(i, n-1-i, float64(i+1))
	}
	a := tr.ToCSC()
	f, err := FactorLU(a, OrderNatural, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i)
	}
	x := make([]float64, n)
	f.Solve(x, b)
	if r := residual(a, x, b); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
}

// Property test: LU solve inverts random diagonally dominant systems for all
// orderings.
func TestQuickLUSolve(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		a := randomSparse(r, n, 0.2)
		lu, err := FactorLU(a, Ordering(r.Intn(3)), 1.0)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x := make([]float64, n)
		lu.Solve(x, b)
		return residual(a, x, b) < 1e-8
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLUSolveWithAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 10
	a := randomSparse(rng, n, 0.3)
	f, err := FactorLU(a, OrderNatural, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	f.Solve(want, b)
	// Aliased: dst == b.
	got := append([]float64(nil), b...)
	f.Solve(got, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aliased solve differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestLUThresholdPivoting(t *testing.T) {
	// With tol < 1 the diagonal should be kept when acceptable, producing
	// an identity row permutation for a diagonally dominant matrix.
	rng := rand.New(rand.NewSource(14))
	a := randomSparse(rng, 25, 0.2)
	f, err := FactorLU(a, OrderNatural, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f.RowPerm() {
		if v != i {
			t.Fatalf("diagonally dominant matrix pivoted row %d -> %d", i, v)
		}
	}
	b := make([]float64, 25)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, 25)
	f.Solve(x, b)
	if r := residual(a, x, b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

func BenchmarkLUFactorGrid(b *testing.B) {
	a := gridLaplacian(40, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FactorLU(a, OrderRCM, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLUSolveGrid(b *testing.B) {
	a := gridLaplacian(40, 40)
	f, err := FactorLU(a, OrderRCM, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	n := a.Rows
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	x := make([]float64, n)
	work := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SolveWith(x, rhs, work)
	}
}

// gridLaplacian builds the 5-point Laplacian of an nx-by-ny grid plus a
// positive diagonal shift (SPD), resembling a power-grid conductance matrix.
func gridLaplacian(nx, ny int) *CSC {
	n := nx * ny
	tr := NewTriplet(n, n)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			deg := 0.01 // ground leak keeps it nonsingular
			if x+1 < nx {
				j := id(x+1, y)
				tr.Add(i, j, -1)
				tr.Add(j, i, -1)
				deg++
			}
			if y+1 < ny {
				j := id(x, y+1)
				tr.Add(i, j, -1)
				tr.Add(j, i, -1)
				deg++
			}
			if x > 0 {
				deg++
			}
			if y > 0 {
				deg++
			}
			tr.Add(i, i, deg)
		}
	}
	return tr.ToCSC()
}
