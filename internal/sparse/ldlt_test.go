package sparse

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLDLTSolveSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, order := range []Ordering{OrderNatural, OrderRCM, OrderMinDegree} {
		for _, n := range []int{1, 2, 10, 50} {
			a := randomSPD(rng, n)
			f, err := FactorLDLT(a, order)
			if err != nil {
				t.Fatalf("n=%d order=%v: %v", n, order, err)
			}
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			x := make([]float64, n)
			f.Solve(x, b)
			if r := residual(a, x, b); r > 1e-9 {
				t.Fatalf("n=%d order=%v: residual %g", n, order, r)
			}
		}
	}
}

func TestLDLTMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randomSPD(rng, 30)
	fl, err := FactorLDLT(a, OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	fu, err := FactorLU(a, OrderRCM, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 30)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1 := make([]float64, 30)
	x2 := make([]float64, 30)
	fl.Solve(x1, b)
	fu.Solve(x2, b)
	for i := range x1 {
		if !almostEqual(x1[i], x2[i], 1e-9) {
			t.Fatalf("LDLT vs LU mismatch at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

func TestLDLTGridFillReduction(t *testing.T) {
	a := gridLaplacian(20, 20)
	fNat, err := FactorLDLT(a, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	fMD, err := FactorLDLT(a, OrderMinDegree)
	if err != nil {
		t.Fatal(err)
	}
	if fMD.NNZ() >= fNat.NNZ() {
		t.Logf("mindeg nnz %d, natural nnz %d (no reduction on this grid)", fMD.NNZ(), fNat.NNZ())
	}
	// Both must still solve correctly.
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i % 7)
	}
	x := make([]float64, n)
	fMD.Solve(x, b)
	if r := residual(a, x, b); r > 1e-8 {
		t.Fatalf("mindeg residual %g", r)
	}
}

func TestLDLTSingular(t *testing.T) {
	// Laplacian without ground leak is singular.
	n := 4
	tr := NewTriplet(n, n)
	for i := 0; i < n-1; i++ {
		tr.Add(i, i+1, -1)
		tr.Add(i+1, i, -1)
		tr.Add(i, i, 1)
		tr.Add(i+1, i+1, 1)
	}
	if _, err := FactorLDLT(tr.ToCSC(), OrderNatural); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestLDLTIndefinite(t *testing.T) {
	// LDLT without pivoting handles symmetric indefinite matrices as long as
	// no zero pivot appears: [0 1; 1 0] must fail, [2 1; 1 -3] must work.
	tr := NewTriplet(2, 2)
	tr.Add(0, 1, 1)
	tr.Add(1, 0, 1)
	if _, err := FactorLDLT(tr.ToCSC(), OrderNatural); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular for zero diagonal, got %v", err)
	}
	tr2 := NewTriplet(2, 2)
	tr2.Add(0, 0, 2)
	tr2.Add(0, 1, 1)
	tr2.Add(1, 0, 1)
	tr2.Add(1, 1, -3)
	f, err := FactorLDLT(tr2.ToCSC(), OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.Solve(x, []float64{1, 0})
	// Exact solution of [2 1;1 -3] x = [1;0] is x = [3/7, 1/7].
	if !almostEqual(x[0], 3.0/7, 1e-13) || !almostEqual(x[1], 1.0/7, 1e-13) {
		t.Fatalf("x = %v, want [3/7 1/7]", x)
	}
}

func TestEliminationTreeChain(t *testing.T) {
	// Tridiagonal matrix: etree is a chain 0 -> 1 -> 2 -> ... -> n-1.
	n := 6
	tr := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 2)
		if i+1 < n {
			tr.Add(i, i+1, -1)
			tr.Add(i+1, i, -1)
		}
	}
	parent := EliminationTree(tr.ToCSC())
	for i := 0; i < n-1; i++ {
		if parent[i] != i+1 {
			t.Fatalf("parent[%d] = %d, want %d", i, parent[i], i+1)
		}
	}
	if parent[n-1] != -1 {
		t.Fatalf("root parent = %d, want -1", parent[n-1])
	}
}

// Property: LDLT solves random SPD systems under random orderings.
func TestQuickLDLTSolve(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		a := randomSPD(r, n)
		ldl, err := FactorLDLT(a, Ordering(r.Intn(3)))
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x := make([]float64, n)
		ldl.Solve(x, b)
		return residual(a, x, b) < 1e-8
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(22))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFactorAutoPicksLDLTForSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randomSPD(rng, 20)
	f, err := Factor(a, FactorAuto, OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(*LDLT); !ok {
		t.Errorf("FactorAuto chose %T for SPD matrix, want *LDLT", f)
	}
	b := randomSparse(rng, 20, 0.2)
	f2, err := Factor(b, FactorAuto, OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f2.(*LU); !ok {
		t.Errorf("FactorAuto chose %T for unsymmetric matrix, want *LU", f2)
	}
}

func BenchmarkLDLTFactorGrid(b *testing.B) {
	a := gridLaplacian(40, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FactorLDLT(a, OrderRCM); err != nil {
			b.Fatal(err)
		}
	}
}
