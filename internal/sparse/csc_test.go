package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// randomSparse builds a random n-by-n matrix with a guaranteed dominant
// diagonal, so it is always nonsingular.
func randomSparse(rng *rand.Rand, n int, density float64) *CSC {
	t := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		rowAbs := 1.0
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				v := rng.NormFloat64()
				t.Add(i, j, v)
				rowAbs += math.Abs(v)
			}
		}
		t.Add(i, i, rowAbs+1)
	}
	return t.ToCSC()
}

// randomSPD builds a random symmetric positive definite matrix as a grid-like
// Laplacian plus a positive diagonal.
func randomSPD(rng *rand.Rand, n int) *CSC {
	t := NewTriplet(n, n)
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = 1 + rng.Float64()
	}
	for k := 0; k < 3*n; k++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		g := rng.Float64()
		t.Add(i, j, -g)
		t.Add(j, i, -g)
		diag[i] += g
		diag[j] += g
	}
	for i := 0; i < n; i++ {
		t.Add(i, i, diag[i])
	}
	return t.ToCSC()
}

func TestTripletToCSCSumsDuplicates(t *testing.T) {
	tr := NewTriplet(3, 3)
	tr.Add(0, 0, 1)
	tr.Add(0, 0, 2)
	tr.Add(2, 1, -1)
	tr.Add(1, 1, 4)
	tr.Add(2, 1, 0.5)
	m := tr.ToCSC()
	if got := m.At(0, 0); got != 3 {
		t.Errorf("At(0,0) = %v, want 3", got)
	}
	if got := m.At(2, 1); got != -0.5 {
		t.Errorf("At(2,1) = %v, want -0.5", got)
	}
	if got := m.At(1, 1); got != 4 {
		t.Errorf("At(1,1) = %v, want 4", got)
	}
	if got := m.At(0, 2); got != 0 {
		t.Errorf("At(0,2) = %v, want 0", got)
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", m.NNZ())
	}
}

// checkCSC asserts the full CSC invariant set every routine in this package
// relies on — At's binary search in particular assumes strictly sorted,
// duplicate-free row indices within each column. The actual checks live in
// the exported CheckCSC (invariants.go) so that the dist, transient, and
// serve tests can assert the same invariants without duplicating them.
func checkCSC(t *testing.T, m *CSC) {
	t.Helper()
	if err := CheckCSC(m); err != nil {
		t.Fatal(err)
	}
}

func TestCSCColumnsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	checkCSC(t, randomSparse(rng, 40, 0.2))
	checkCSC(t, randomSPD(rng, 30))
	checkCSC(t, Identity(7))
	// Derived matrices keep the invariants too.
	a := randomSparse(rng, 25, 0.15)
	b := randomSparse(rng, 25, 0.15)
	checkCSC(t, a.Transpose())
	checkCSC(t, Add(2, a, -3, b))
	checkCSC(t, a.Clone().Scale(0).DropZeros(0))
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomSparse(rng, 25, 0.3)
	d := m.Dense()
	x := make([]float64, 25)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 25)
	m.MulVec(y, x)
	for i := 0; i < 25; i++ {
		var want float64
		for j := 0; j < 25; j++ {
			want += d[i][j] * x[j]
		}
		if !almostEqual(y[i], want, 1e-12) {
			t.Fatalf("MulVec[%d] = %v, want %v", i, y[i], want)
		}
	}
}

func TestMulVecTMatchesTransposeMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomSparse(rng, 30, 0.2)
	mt := m.Transpose()
	x := make([]float64, 30)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, 30)
	y2 := make([]float64, 30)
	m.MulVecT(y1, x)
	mt.MulVec(y2, x)
	for i := range y1 {
		if !almostEqual(y1[i], y2[i], 1e-12) {
			t.Fatalf("MulVecT[%d] = %v, Transpose().MulVec = %v", i, y1[i], y2[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomSparse(rng, 20, 0.25)
	tt := m.Transpose().Transpose()
	if tt.NNZ() != m.NNZ() {
		t.Fatalf("NNZ changed: %d -> %d", m.NNZ(), tt.NNZ())
	}
	for j := 0; j < m.Cols; j++ {
		for p := m.Colptr[j]; p < m.Colptr[j+1]; p++ {
			if tt.Rowidx[p] != m.Rowidx[p] || tt.Values[p] != m.Values[p] {
				t.Fatalf("transpose involution mismatch at col %d", j)
			}
		}
	}
}

func TestAddLinearCombination(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSparse(rng, 15, 0.3)
	b := randomSparse(rng, 15, 0.3)
	c := Add(2, a, -3, b)
	da, db, dc := a.Dense(), b.Dense(), c.Dense()
	for i := 0; i < 15; i++ {
		for j := 0; j < 15; j++ {
			want := 2*da[i][j] - 3*db[i][j]
			if !almostEqual(dc[i][j], want, 1e-12) {
				t.Fatalf("Add mismatch at (%d,%d): got %v want %v", i, j, dc[i][j], want)
			}
		}
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(5)
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, 5)
	id.MulVec(y, x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("Identity.MulVec[%d] = %v", i, y[i])
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	spd := randomSPD(rng, 30)
	if !spd.IsSymmetric(0) {
		t.Error("randomSPD not symmetric")
	}
	asym := randomSparse(rng, 30, 0.2)
	if asym.IsSymmetric(1e-14) {
		t.Error("random matrix unexpectedly symmetric")
	}
}

func TestNorms(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Add(0, 0, 1)
	tr.Add(1, 0, -3)
	tr.Add(0, 1, 2)
	m := tr.ToCSC()
	if got := m.OneNorm(); got != 4 {
		t.Errorf("OneNorm = %v, want 4", got)
	}
	if got := m.InfNorm(); got != 3 {
		t.Errorf("InfNorm = %v, want 3", got)
	}
}

func TestDropZeros(t *testing.T) {
	tr := NewTriplet(3, 3)
	tr.Add(0, 0, 1e-20)
	tr.Add(1, 1, 2)
	tr.Add(2, 0, 1e-18)
	m := tr.ToCSC().DropZeros(1e-15)
	if m.NNZ() != 1 {
		t.Fatalf("NNZ after DropZeros = %d, want 1", m.NNZ())
	}
	if m.At(1, 1) != 2 {
		t.Errorf("surviving entry wrong")
	}
}

func TestScaleAndClone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomSparse(rng, 10, 0.3)
	c := m.Clone()
	c.Scale(2)
	for p := range m.Values {
		if !almostEqual(c.Values[p], 2*m.Values[p], 1e-15) {
			t.Fatalf("Scale mismatch at %d", p)
		}
	}
}

// Property: (A+B)x == Ax + Bx for random sparse A, B and dense x.
func TestQuickAddDistributes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(20)
		a := randomSparse(r, n, 0.3)
		b := randomSparse(r, n, 0.3)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		sum := Add(1, a, 1, b)
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		tmp := make([]float64, n)
		sum.MulVec(y1, x)
		a.MulVec(y2, x)
		b.MulVec(tmp, x)
		for i := range y2 {
			y2[i] += tmp[i]
		}
		for i := range y1 {
			if !almostEqual(y1[i], y2[i], 1e-10) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMulVecAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomSparse(rng, 12, 0.4)
	x := make([]float64, 12)
	dst := make([]float64, 12)
	want := make([]float64, 12)
	for i := range x {
		x[i] = rng.NormFloat64()
		dst[i] = rng.NormFloat64()
		want[i] = dst[i]
	}
	tmp := make([]float64, 12)
	m.MulVec(tmp, x)
	for i := range want {
		want[i] += 2.5 * tmp[i]
	}
	m.MulVecAdd(dst, 2.5, x)
	for i := range dst {
		if !almostEqual(dst[i], want[i], 1e-12) {
			t.Fatalf("MulVecAdd[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Identity(3).At(3, 0)
}
