package sparse

import (
	"math/rand"
	"sync"
	"testing"
)

// panelClose compares a batched solve against a solo solve. The panel
// kernels mirror the sequential solves' per-RHS operation order, so
// agreement is bitwise up to the sign of zero (a batched kernel may not
// skip the zero terms the sequential one does).
func panelClose(a, b float64) bool {
	return a == b
}

// panelTestFactor builds a small SPD system and its factorization.
func panelTestFactor(t *testing.T, n int, seed int64) (*CSC, Factorization) {
	t.Helper()
	a := randomSPD(rand.New(rand.NewSource(seed)), n)
	f, err := Factor(a, FactorAuto, OrderNatural)
	if err != nil {
		t.Fatalf("factor: %v", err)
	}
	return a, f
}

// TestPanelBrokerMatchesSolo drives k lanes through a broker, each solving
// its own right-hand sides against a shared factorization, and checks
// results are identical to solo solves while the broker actually batched.
func TestPanelBrokerMatchesSolo(t *testing.T) {
	const n, lanes, rounds = 60, 5, 12
	_, f := panelTestFactor(t, n, 1)

	type laneOut struct {
		got  [][]float64
		want [][]float64
	}
	outs := make([]laneOut, lanes)
	br := NewPanelBroker()
	var wg sync.WaitGroup
	for l := 0; l < lanes; l++ {
		ln := br.Join()
		wg.Add(1)
		go func(l int, ln *PanelLane) {
			defer wg.Done()
			defer ln.Leave()
			wf := ln.Wrap(f)
			rng := rand.New(rand.NewSource(int64(100 + l)))
			my := rounds + l%3 // uneven lane lengths: early leavers narrow panels
			for r := 0; r < my; r++ {
				b := make([]float64, n)
				for i := range b {
					b[i] = rng.NormFloat64()
				}
				want := make([]float64, n)
				f.Solve(want, b)
				got := make([]float64, n)
				wf.Solve(got, b)
				outs[l].got = append(outs[l].got, got)
				outs[l].want = append(outs[l].want, want)
			}
		}(l, ln)
	}
	wg.Wait()

	for l := range outs {
		for r := range outs[l].got {
			for i := range outs[l].got[r] {
				if !panelClose(outs[l].got[r][i], outs[l].want[r][i]) {
					t.Fatalf("lane %d round %d row %d: batched %g differs from solo %g", l, r, i, outs[l].got[r][i], outs[l].want[r][i])
				}
			}
		}
	}
	st := br.Stats()
	if st.Solves == 0 || st.Rounds == 0 {
		t.Fatalf("broker saw no traffic: %+v", st)
	}
	if st.Batched == 0 {
		t.Fatalf("no solves batched into panels: %+v", st)
	}
	if mw := st.MeanWidth(); mw < 2 {
		t.Fatalf("mean panel width %.2f < 2 with %d aligned lanes", mw, lanes)
	}
}

// TestPanelBrokerMixedFactors checks rounds split per underlying
// factorization even when lanes interleave two factors.
func TestPanelBrokerMixedFactors(t *testing.T) {
	const n, lanes = 40, 4
	_, f1 := panelTestFactor(t, n, 2)
	_, f2 := panelTestFactor(t, n, 3)

	br := NewPanelBroker()
	var wg sync.WaitGroup
	errs := make(chan string, lanes)
	for l := 0; l < lanes; l++ {
		ln := br.Join()
		wg.Add(1)
		go func(l int, ln *PanelLane) {
			defer wg.Done()
			defer ln.Leave()
			w1, w2 := ln.Wrap(f1), ln.Wrap(f2)
			rng := rand.New(rand.NewSource(int64(200 + l)))
			for r := 0; r < 10; r++ {
				// Odd lanes on odd rounds hit the other factor, so rounds
				// carry mixed-factor batches.
				wf, sf := w1, f1
				if (l+r)%2 == 1 {
					wf, sf = w2, f2
				}
				b := make([]float64, n)
				for i := range b {
					b[i] = rng.NormFloat64()
				}
				want := make([]float64, n)
				sf.Solve(want, b)
				got := make([]float64, n)
				wf.SolveWith(got, b, nil)
				for i := range got {
					if !panelClose(got[i], want[i]) {
						errs <- "batched result differs from solo"
						return
					}
				}
			}
		}(l, ln)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if st := br.Stats(); st.Batched == 0 {
		t.Fatalf("mixed-factor rounds never batched: %+v", st)
	}
}

// TestPanelBrokerMultiRHS checks a lane-side SolveMulti composes with
// cross-lane batching and that solves after Leave still execute.
func TestPanelBrokerMultiRHS(t *testing.T) {
	const n = 30
	_, f := panelTestFactor(t, n, 4)
	br := NewPanelBroker()
	ln := br.Join()
	wf := ln.Wrap(f)

	const k = 3
	rng := rand.New(rand.NewSource(9))
	b := make([][]float64, k)
	dst := make([][]float64, k)
	want := make([][]float64, k)
	for j := 0; j < k; j++ {
		b[j] = make([]float64, n)
		for i := range b[j] {
			b[j][i] = rng.NormFloat64()
		}
		dst[j] = make([]float64, n)
		want[j] = make([]float64, n)
		f.Solve(want[j], b[j])
	}
	mf, ok := wf.(MultiSolver)
	if !ok {
		t.Fatal("wrapped factorization lost MultiSolver")
	}
	mf.SolveMulti(dst, b)
	for j := range dst {
		for i := range dst[j] {
			if !panelClose(dst[j][i], want[j][i]) {
				t.Fatalf("rhs %d row %d: %g != %g", j, i, dst[j][i], want[j][i])
			}
		}
	}
	ln.Leave()
	// Post-Leave solves bypass the barrier rather than deadlocking.
	got := make([]float64, n)
	wf.Solve(got, b[0])
	for i := range got {
		if !panelClose(got[i], want[0][i]) {
			t.Fatal("post-Leave solve wrong")
		}
	}
	if st := br.Stats(); st.Batched < k {
		t.Fatalf("single-lane SolveMulti should batch k rhs: %+v", st)
	}
}
