// Package sparse implements the sparse linear algebra substrate used by the
// MATEX transient simulator: compressed sparse column (CSC) matrices, a
// triplet builder, fill-reducing orderings (reverse Cuthill-McKee and
// minimum degree), a left-looking sparse LU factorization with partial
// pivoting (Gilbert-Peierls), and an LDL^T factorization for symmetric
// systems.
//
// The package is self-contained (standard library only) and plays the role
// UMFPACK plays in the original MATEX implementation: one factorization at
// the beginning of a transient run, then pairs of forward and backward
// substitutions for every Krylov vector or trapezoidal step.
package sparse
