// Package sparse implements the sparse linear algebra substrate used by the
// MATEX transient simulator: compressed sparse column (CSC) matrices, a
// triplet builder, fill-reducing orderings (reverse Cuthill-McKee and
// bucketed minimum degree), a left-looking sparse LU factorization with
// partial pivoting (Gilbert-Peierls), and an LDL^T factorization for
// symmetric systems split into a once-per-pattern symbolic analysis
// (Symbolic) and an allocation-free numeric refactorization.
//
// The package is self-contained (standard library only) and plays the role
// UMFPACK plays in the original MATEX implementation: one symbolic analysis
// per sparsity pattern, one cheap numeric refactorization per matrix (all
// scalar shifts C + γG of a pattern share the analysis through the Cache's
// symbolic tier), then pairs of forward and backward substitutions for
// every Krylov vector or trapezoidal step — sequential, level-scheduled
// parallel (ParSolveWith), or blocked multi-RHS (SolveMulti).
package sparse
