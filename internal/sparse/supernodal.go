package sparse

import (
	"fmt"
	"math"
)

// The supernodal layer merges elimination-tree columns with (near-)identical
// patterns into supernodes — column panels stored dense — so the numeric
// refactorization and the triangular solves run on contiguous rank-k panel
// kernels instead of entry-at-a-time scalar arithmetic. The layout follows
// the CHOLMOD/SuperLU tradition: each supernode s spans a contiguous column
// range [c0, c1) of the permuted factor, its row list is the supernode's own
// columns followed by the below-block rows (the union of its columns'
// patterns, ascending), and its values live in one dense ns×w column-major
// panel inside a single shared array. Relaxed amalgamation pads a column's
// pattern up to the supernode union: padded entries are exact zeros (the
// fill pattern is closed, so every update product into a padded position has
// a structurally-zero factor), which keeps the supernodal factorization
// bit-compatible with the scalar one up to summation order.

// SupernodeMode selects how the analysis decides between the supernodal and
// scalar numeric engines.
type SupernodeMode int

const (
	// SNAuto (the zero value) builds the supernodal layout when the pattern
	// amalgamates well enough to pay for the panel machinery, and keeps the
	// scalar up-looking engine for tiny or irregular patterns.
	SNAuto SupernodeMode = iota
	// SNAlways forces the supernodal engine (tests and benchmarks).
	SNAlways
	// SNNever forces the scalar engine.
	SNNever
)

// SupernodeParams are the supernode detection and relaxed-amalgamation
// parameters of a symbolic analysis. They are part of the analysis identity:
// the factorization cache keys its symbolic tier by (pattern fingerprint,
// ordering, SupernodeParams), so analyses built under different panel
// parameters never alias.
type SupernodeParams struct {
	// Mode selects the engine (SNAuto/SNAlways/SNNever).
	Mode SupernodeMode
	// MaxWidth caps the panel width (columns per supernode). 0 selects the
	// default (32).
	MaxWidth int
	// RelaxFrac bounds relaxed amalgamation: two adjacent supernodes merge
	// only while the explicit zeros padded into the merged panel stay at or
	// below this fraction of its stored entries. 0 selects the default
	// (0.25); negative disables relaxation (fundamental supernodes only).
	RelaxFrac float64
}

// DefaultSupernodeParams returns the package defaults: auto engine choice,
// 32-column panels, 25% relaxation.
func DefaultSupernodeParams() SupernodeParams {
	return SupernodeParams{Mode: SNAuto, MaxWidth: 32, RelaxFrac: 0.25}
}

// norm resolves zero values to the defaults so that parameter sets compare
// canonically (cache keys, RefactorInto identity checks).
func (p SupernodeParams) norm() SupernodeParams {
	if p.MaxWidth <= 0 {
		p.MaxWidth = 32
	}
	if p.RelaxFrac == 0 {
		p.RelaxFrac = 0.25
	}
	if p.RelaxFrac < 0 {
		p.RelaxFrac = -1
	}
	return p
}

// snLayout is the supernodal view of a Symbolic analysis: the column
// partition, per-supernode row lists and panel offsets, the input scatter
// map, the descendant-update lists driving the left-looking factorization
// and the gather-form parallel forward solve, and the supernode-granular
// parallel task schedule. Immutable after construction.
type snLayout struct {
	nsuper int
	ptr    []int32 // supernode s spans permuted columns ptr[s]..ptr[s+1]
	colSn  []int32 // permuted column -> owning supernode

	// Row list of supernode s: rows[rowPtr[s]:rowPtr[s+1]], the s's own
	// columns first (the dense diagonal block) then the below-block rows,
	// ascending. valPtr[s] is the offset of s's ns×w column-major panel in
	// the factor's snValues array; column k of the panel stores rows
	// k..ns-1 (positions above the block diagonal are unused).
	rowPtr  []int
	rows    []int32
	valPtr  []int
	maxRows int // widest row list, sizing the solve gather buffers
	maxW    int // widest panel
	nzTotal int // total panel storage (== valPtr[nsuper])

	// Input scatter: entry q of supernode s's list draws a.Values[aSrc[q]]
	// onto panel offset aOff[q] (relative to valPtr[s]).
	aPtr []int
	aSrc []int32
	aOff []int32

	// Descendant updates: target supernode s receives, for each q in
	// updPtr[s]:updPtr[s+1], the rank-w_d update of descendant updSrc[q]
	// whose below rows updOff[q]:updEnd[q] fall inside s's column range.
	updPtr []int
	updSrc []int32
	updOff []int32
	updEnd []int32

	// scalarPos maps each position of the scalar column pattern
	// (Symbolic.colptr/rowidx plus the diagonal-free convention) to its
	// panel offset, for materializing L out of the panels.
	scalarPos []int

	// Supernode elimination tree and the coarsened parallel task schedule
	// over it (same cut discipline as the scalar schedule, panel-entry
	// weighted).
	parent            []int32
	taskPtr           []int
	taskSN            []int32
	tailSN            []int32
	parWork, tailWork int
}

// bytes estimates the resident size of the layout for cache accounting.
func (sn *snLayout) bytes() int64 {
	if sn == nil {
		return 0
	}
	return int64(len(sn.rows)+len(sn.aSrc)+len(sn.aOff)+len(sn.updSrc))*4 +
		int64(len(sn.scalarPos)+len(sn.rowPtr)+len(sn.valPtr))*8
}

// buildSupernodes detects fundamental supernodes on the freshly computed
// column pattern, applies relaxed amalgamation under params, and — when the
// engine decision lands supernodal — emits the full panel layout, scatter
// and update maps, and the supernode task schedule.
func (s *Symbolic) buildSupernodes(params SupernodeParams) {
	p := params.norm()
	n := s.n
	if p.Mode == SNNever || n == 0 {
		return
	}
	maxW := p.MaxWidth
	relax := p.RelaxFrac

	height := func(j int) int { return s.colptr[j+1] - s.colptr[j] }

	// Pass 1: fundamental supernode boundaries. Column j extends the run
	// when its predecessor's pattern is {j} ∪ pattern(j) — parent link plus
	// count match — capped at the panel width bound.
	type bounds struct{ c0, c1 int }
	var snB []bounds
	start := 0
	for j := 1; j <= n; j++ {
		if j == n || s.parent[j-1] != int32(j) || height(j-1) != height(j)+1 || j-start >= maxW {
			snB = append(snB, bounds{start, j})
			start = j
		}
	}

	// Pass 2: relaxed amalgamation of etree-adjacent runs. The running
	// group keeps its merged below-row list (rows ≥ the group end) and its
	// exact strictly-below entry count; a candidate merge recomputes both
	// and is accepted while the padded zeros stay under the relax bound.
	// The below list of a fundamental run is exactly the pattern of its
	// last column (nesting), which seeds each group for free.
	var (
		outPtr  = make([]int32, 1, len(snB)+1)
		rowPtr  = []int{0}
		rowsArr []int32
		curB    = make([]int32, 0, n)
		tmpB    = make([]int32, 0, n)
	)
	flush := func(c0, c1 int) {
		for j := c0; j < c1; j++ {
			rowsArr = append(rowsArr, int32(j))
		}
		rowsArr = append(rowsArr, curB...)
		rowPtr = append(rowPtr, len(rowsArr))
		outPtr = append(outPtr, int32(c1))
	}
	tailPattern := func(c1 int) []int32 {
		// pattern of column c1-1 as int32 (strictly-below rows, ascending)
		curB = curB[:0]
		for q := s.colptr[c1-1]; q < s.colptr[c1]; q++ {
			curB = append(curB, s.rowidx[q])
		}
		return curB
	}
	if len(snB) > 0 {
		g := snB[0]
		tailPattern(g.c1)
		act := 0
		for j := g.c0; j < g.c1; j++ {
			act += height(j)
		}
		for _, f := range snB[1:] {
			w := f.c1 - g.c0
			merged := false
			if w <= maxW && relax >= 0 && s.parent[g.c1-1] == int32(f.c0) {
				// Bm = (curB ≥ f.c1) ∪ pattern(f.c1-1), both ascending.
				tmpB = tmpB[:0]
				i := 0
				for i < len(curB) && int(curB[i]) < f.c1 {
					i++
				}
				qa, qb := i, s.colptr[f.c1-1]
				for qa < len(curB) || qb < s.colptr[f.c1] {
					switch {
					case qb >= s.colptr[f.c1] || (qa < len(curB) && curB[qa] < s.rowidx[qb]):
						tmpB = append(tmpB, curB[qa])
						qa++
					case qa >= len(curB) || s.rowidx[qb] < curB[qa]:
						tmpB = append(tmpB, s.rowidx[qb])
						qb++
					default:
						tmpB = append(tmpB, curB[qa])
						qa++
						qb++
					}
				}
				actNew := act
				for j := f.c0; j < f.c1; j++ {
					actNew += height(j)
				}
				stored := w*(w+1)/2 + w*len(tmpB)
				zeros := stored - (actNew + w)
				if float64(zeros) <= relax*float64(stored) {
					g.c1 = f.c1
					act = actNew
					curB, tmpB = tmpB, curB
					merged = true
				}
			}
			if !merged {
				flush(g.c0, g.c1)
				g = f
				tailPattern(g.c1)
				act = 0
				for j := g.c0; j < g.c1; j++ {
					act += height(j)
				}
			}
		}
		flush(g.c0, g.c1)
	}
	nsuper := len(outPtr) - 1

	// Engine decision: the panel machinery needs amalgamation to pay for
	// itself — measured, the blocked kernels beat the scalar up-looking
	// engine once panels average two columns or more, and lose below that
	// (narrow panels stream the same flops with extra bookkeeping). Tiny
	// systems and patterns that stay essentially scalar keep the
	// up-looking engine.
	if p.Mode == SNAuto && (n < 32 || 2*nsuper > n) {
		return
	}

	sn := &snLayout{
		nsuper: nsuper,
		ptr:    outPtr,
		rowPtr: rowPtr,
		rows:   rowsArr,
		colSn:  make([]int32, n),
	}
	sn.valPtr = make([]int, nsuper+1)
	for t := 0; t < nsuper; t++ {
		c0, c1 := int(sn.ptr[t]), int(sn.ptr[t+1])
		w := c1 - c0
		ns := sn.rowPtr[t+1] - sn.rowPtr[t]
		if ns > sn.maxRows {
			sn.maxRows = ns
		}
		if w > sn.maxW {
			sn.maxW = w
		}
		sn.valPtr[t+1] = sn.valPtr[t] + ns*w
		for j := c0; j < c1; j++ {
			sn.colSn[j] = int32(t)
		}
	}
	sn.nzTotal = sn.valPtr[nsuper]

	// Input scatter map. Upper-triangle entry (i ≤ k) of the permuted
	// matrix is, by symmetry, the lower-triangle entry at column i, row k —
	// it lands in column i's supernode. Bucket the entries by target
	// supernode, then resolve panel offsets supernode-major through a
	// row → local-index map.
	nnzU := len(s.aSrc)
	cnt := make([]int, nsuper+1)
	for k := 0; k < n; k++ {
		for q := s.aColptr[k]; q < s.aColptr[k+1]; q++ {
			cnt[sn.colSn[s.aRow[q]]+1]++
		}
	}
	for t := 0; t < nsuper; t++ {
		cnt[t+1] += cnt[t]
	}
	sn.aPtr = cnt
	sn.aSrc = make([]int32, nnzU)
	sn.aOff = make([]int32, nnzU)
	tmpCol := make([]int32, nnzU)
	next := make([]int, nsuper)
	copy(next, sn.aPtr[:nsuper])
	for k := 0; k < n; k++ {
		for q := s.aColptr[k]; q < s.aColptr[k+1]; q++ {
			i := s.aRow[q]
			t := sn.colSn[i]
			pos := next[t]
			next[t]++
			sn.aSrc[pos] = s.aSrc[q]
			sn.aOff[pos] = int32(k) // row, resolved to an offset below
			tmpCol[pos] = i
		}
	}
	sn.scalarPos = make([]int, s.lnz)
	smap := make([]int32, n)
	for t := 0; t < nsuper; t++ {
		c0 := int(sn.ptr[t])
		rb := sn.rowPtr[t]
		ns := sn.rowPtr[t+1] - rb
		for li, r := range sn.rows[rb : rb+ns] {
			smap[r] = int32(li)
		}
		for q := sn.aPtr[t]; q < sn.aPtr[t+1]; q++ {
			sn.aOff[q] = int32((int(tmpCol[q])-c0)*ns + int(smap[sn.aOff[q]]))
		}
		for j := c0; j < int(sn.ptr[t+1]); j++ {
			cb := sn.valPtr[t] + (j-c0)*ns
			for q := s.colptr[j]; q < s.colptr[j+1]; q++ {
				sn.scalarPos[q] = cb + int(smap[s.rowidx[q]])
			}
		}
	}

	// Descendant-update lists: each supernode's below rows, segmented by
	// owning ancestor supernode, become one (descendant, row span) record
	// on that ancestor.
	ucnt := make([]int, nsuper+1)
	for d := 0; d < nsuper; d++ {
		w := int(sn.ptr[d+1] - sn.ptr[d])
		below := sn.rows[sn.rowPtr[d]+w : sn.rowPtr[d+1]]
		for i := 0; i < len(below); {
			t := sn.colSn[below[i]]
			j := i + 1
			for j < len(below) && sn.colSn[below[j]] == t {
				j++
			}
			ucnt[t+1]++
			i = j
		}
	}
	for t := 0; t < nsuper; t++ {
		ucnt[t+1] += ucnt[t]
	}
	sn.updPtr = ucnt
	nupd := ucnt[nsuper]
	sn.updSrc = make([]int32, nupd)
	sn.updOff = make([]int32, nupd)
	sn.updEnd = make([]int32, nupd)
	unext := make([]int, nsuper)
	copy(unext, sn.updPtr[:nsuper])
	for d := 0; d < nsuper; d++ {
		w := int(sn.ptr[d+1] - sn.ptr[d])
		below := sn.rows[sn.rowPtr[d]+w : sn.rowPtr[d+1]]
		for i := 0; i < len(below); {
			t := sn.colSn[below[i]]
			j := i + 1
			for j < len(below) && sn.colSn[below[j]] == t {
				j++
			}
			pos := unext[t]
			unext[t]++
			sn.updSrc[pos] = int32(d)
			sn.updOff[pos] = int32(i)
			sn.updEnd[pos] = int32(j)
			i = j
		}
	}

	// Supernode elimination tree (parent of the last column owns the
	// parent supernode) and the panel-weighted parallel task schedule.
	sn.parent = make([]int32, nsuper)
	cost := make([]int64, nsuper)
	for t := 0; t < nsuper; t++ {
		c1 := int(sn.ptr[t+1])
		if pc := s.parent[c1-1]; pc == -1 {
			sn.parent[t] = -1
		} else {
			sn.parent[t] = sn.colSn[pc]
		}
		cost[t] = int64((sn.rowPtr[t+1] - sn.rowPtr[t]) * int(sn.ptr[t+1]-sn.ptr[t]))
	}
	var parW, tailW int64
	sn.taskPtr, sn.taskSN, sn.tailSN, parW, tailW = cutTasks(sn.parent, cost)
	sn.parWork, sn.tailWork = int(parW), int(tailW)

	s.sn = sn
}

// Supernodes returns the number of supernodes in the analysis (n when the
// scalar engine is active: every column its own supernode).
func (s *Symbolic) Supernodes() int {
	if s.sn == nil {
		return s.n
	}
	return s.sn.nsuper
}

// Supernodal reports whether the blocked panel engine serves this analysis's
// numeric factorization and solves.
func (s *Symbolic) Supernodal() bool { return s.sn != nil }

// SupernodeParams returns the (normalized) panel parameters the analysis was
// built under.
func (s *Symbolic) SupernodeParams() SupernodeParams { return s.params }

// refactorSN is the supernodal numeric factorization: scatter the input
// into zeroed panels, then left-looking over supernodes — apply every
// descendant's rank-w_d update with dense column kernels, then factor the
// panel in place (right-looking rank-1 sweeps inside the diagonal block,
// one contiguous scaled column at a time).
//
//matex:noalloc
func (s *Symbolic) refactorSN(f *LDLT, a *CSC) error {
	sn := s.sn
	sp := f.snValues
	for i := range sp {
		sp[i] = 0
	}
	av := a.Values
	for t := 0; t < sn.nsuper; t++ {
		base := sn.valPtr[t]
		for q := sn.aPtr[t]; q < sn.aPtr[t+1]; q++ {
			sp[base+int(sn.aOff[q])] += av[sn.aSrc[q]]
		}
	}
	smap, dv, coeff, tmp := f.smap, f.d, f.coeff, f.uptmp
	for t := 0; t < sn.nsuper; t++ {
		c0, c1 := int(sn.ptr[t]), int(sn.ptr[t+1])
		w := c1 - c0
		rb := sn.rowPtr[t]
		ns := sn.rowPtr[t+1] - rb
		rows := sn.rows[rb : rb+ns]
		base := sn.valPtr[t]
		for li, r := range rows {
			smap[r] = int32(li)
		}
		// Descendant updates: for each target column ct of this supernode
		// covered by descendant d, accumulate U(:,t) = Σ_k d_k·L(ct,k)·L(:,k)
		// over d's below rows (contiguous panel columns), then scatter once.
		for u := sn.updPtr[t]; u < sn.updPtr[t+1]; u++ {
			d := int(sn.updSrc[u])
			off1, off2 := int(sn.updOff[u]), int(sn.updEnd[u])
			dbase := sn.valPtr[d]
			drb := sn.rowPtr[d]
			nsd := sn.rowPtr[d+1] - drb
			wd := int(sn.ptr[d+1] - sn.ptr[d])
			c0d := int(sn.ptr[d])
			dbelow := sn.rows[drb+wd : drb+nsd]
			nb := len(dbelow)
			for tt := off1; tt < off2; tt++ {
				ct := int(dbelow[tt])
				cb := base + (ct-c0)*ns
				for k := 0; k < wd; k++ {
					coeff[k] = sp[dbase+k*nsd+wd+tt] * dv[c0d+k]
				}
				m := nb - tt
				acc := tmp[:m]
				// Rank-wd accumulate, source columns in pairs: each pass
				// streams two panel columns against one hot acc buffer,
				// halving the per-flop memory traffic of the rank-1 form.
				var k int
				if wd&1 == 1 {
					c0k := coeff[0]
					col := sp[dbase+wd+tt : dbase+wd+nb]
					for r := 0; r < m; r++ {
						acc[r] = c0k * col[r]
					}
					k = 1
				} else {
					c0k, c1k := coeff[0], coeff[1]
					col0 := sp[dbase+wd+tt : dbase+wd+nb]
					col1 := sp[dbase+nsd+wd+tt : dbase+nsd+wd+nb]
					for r := 0; r < m; r++ {
						acc[r] = c0k*col0[r] + c1k*col1[r]
					}
					k = 2
				}
				for ; k+1 < wd; k += 2 {
					c0k, c1k := coeff[k], coeff[k+1]
					col0 := sp[dbase+k*nsd+wd+tt : dbase+k*nsd+wd+nb]
					col1 := sp[dbase+(k+1)*nsd+wd+tt : dbase+(k+1)*nsd+wd+nb]
					for r := 0; r < m; r++ {
						acc[r] += c0k*col0[r] + c1k*col1[r]
					}
				}
				tr := dbelow[tt:]
				for r := 0; r < m; r++ {
					sp[cb+int(smap[tr[r]])] -= acc[r]
				}
			}
		}
		// Dense in-panel factorization.
		for k := 0; k < w; k++ {
			ck := base + k*ns
			dk := sp[ck+k]
			if dk == 0 || math.IsNaN(dk) {
				return fmt.Errorf("%w: zero pivot at column %d in LDLT", ErrSingular, c0+k) //matex:alloc-ok(singular-matrix error path; factorization is abandoned)
			}
			dv[c0+k] = dk
			inv := 1 / dk
			for j := k + 1; j < w; j++ {
				yj := sp[ck+j]
				if yj == 0 {
					continue
				}
				cjk := yj * inv
				colk := sp[ck+j : ck+ns]
				colj := sp[base+j*ns+j : base+j*ns+ns]
				for r := range colj {
					colj[r] -= cjk * colk[r]
				}
			}
			colk := sp[ck+k+1 : ck+ns]
			for r := range colk {
				colk[r] *= inv
			}
		}
	}
	return nil
}

// fwdSN runs the sequential supernodal forward solve L·z = work in place:
// per supernode, a dense unit-lower solve on the diagonal block while the
// below-block contribution accumulates contiguously in g, then one scatter
// through the row list — one random write per below row instead of one per
// factor entry.
//
//matex:noalloc
func (f *LDLT) fwdSN(work, g []float64) {
	sn := f.sym.sn
	sp := f.snValues
	for t := 0; t < sn.nsuper; t++ {
		c0 := int(sn.ptr[t])
		w := int(sn.ptr[t+1]) - c0
		rb := sn.rowPtr[t]
		ns := sn.rowPtr[t+1] - rb
		base := sn.valPtr[t]
		nb := ns - w
		// Unit-lower solve of the w×w diagonal block first, so the
		// below-block accumulate can run over final x values with its
		// panel columns streamed in pairs against the hot g buffer.
		for k := 0; k < w; k++ {
			xk := work[c0+k]
			if xk == 0 {
				continue
			}
			col := sp[base+k*ns : base+k*ns+w]
			for i := k + 1; i < w; i++ {
				work[c0+i] -= col[i] * xk
			}
		}
		if nb == 0 {
			continue
		}
		var k int
		if w&1 == 1 {
			x0 := work[c0]
			col := sp[base+w : base+ns]
			for i := 0; i < nb; i++ {
				g[i] = col[i] * x0
			}
			k = 1
		} else {
			x0, x1 := work[c0], work[c0+1]
			col0 := sp[base+w : base+ns]
			col1 := sp[base+ns+w : base+2*ns]
			for i := 0; i < nb; i++ {
				g[i] = col0[i]*x0 + col1[i]*x1
			}
			k = 2
		}
		for ; k+1 < w; k += 2 {
			x0, x1 := work[c0+k], work[c0+k+1]
			col0 := sp[base+k*ns+w : base+(k+1)*ns]
			col1 := sp[base+(k+1)*ns+w : base+(k+2)*ns]
			for i := 0; i < nb; i++ {
				g[i] += col0[i]*x0 + col1[i]*x1
			}
		}
		br := sn.rows[rb+w : rb+ns]
		for i, r := range br {
			work[r] -= g[i]
		}
	}
}

// bwdOneSN finalizes one supernode of the backward solve Lᵀ·x = work: gather
// the already-final ancestor rows once, then per column one contiguous dot
// down the panel.
//
//matex:noalloc
func (f *LDLT) bwdOneSN(t int, work, g []float64) {
	sn := f.sym.sn
	sp := f.snValues
	c0 := int(sn.ptr[t])
	w := int(sn.ptr[t+1]) - c0
	rb := sn.rowPtr[t]
	ns := sn.rowPtr[t+1] - rb
	base := sn.valPtr[t]
	nb := ns - w
	if nb > 0 {
		br := sn.rows[rb+w : rb+ns]
		for i, r := range br {
			g[i] = work[r]
		}
		// Below-block dots first: they read only final ancestor values, so
		// every column takes its dot independently — in pairs, sharing one
		// pass over the gathered g.
		var k int
		if w&1 == 1 {
			col := sp[base+w : base+ns]
			acc := 0.0
			for i := 0; i < nb; i++ {
				acc += col[i] * g[i]
			}
			work[c0] -= acc
			k = 1
		}
		for ; k+1 < w; k += 2 {
			col0 := sp[base+k*ns+w : base+(k+1)*ns]
			col1 := sp[base+(k+1)*ns+w : base+(k+2)*ns]
			acc0, acc1 := 0.0, 0.0
			for i := 0; i < nb; i++ {
				gi := g[i]
				acc0 += col0[i] * gi
				acc1 += col1[i] * gi
			}
			work[c0+k] -= acc0
			work[c0+k+1] -= acc1
		}
	}
	// Descending intra-block substitution over the (already below-adjusted)
	// right-hand sides.
	for k := w - 1; k >= 0; k-- {
		col := sp[base+k*ns : base+k*ns+w]
		acc := 0.0
		for i := k + 1; i < w; i++ {
			acc += col[i] * work[c0+i]
		}
		work[c0+k] -= acc
	}
}

// fwdOneSNGather finalizes one supernode of the forward solve in pure
// gather form — reading descendants' panels through the update records and
// writing only its own rows — which is what lets independent subtree tasks
// run concurrently without write conflicts.
//
//matex:noalloc
func (f *LDLT) fwdOneSNGather(t int, work []float64) {
	sn := f.sym.sn
	sp := f.snValues
	for u := sn.updPtr[t]; u < sn.updPtr[t+1]; u++ {
		d := int(sn.updSrc[u])
		off1, off2 := int(sn.updOff[u]), int(sn.updEnd[u])
		dbase := sn.valPtr[d]
		drb := sn.rowPtr[d]
		nsd := sn.rowPtr[d+1] - drb
		wd := int(sn.ptr[d+1] - sn.ptr[d])
		c0d := int(sn.ptr[d])
		dbelow := sn.rows[drb+wd : drb+nsd]
		// Adjacent below rows share the descendant's x loads (and sit on
		// the same panel cache lines), so take them in pairs.
		tt := off1
		for ; tt+1 < off2; tt += 2 {
			row := dbase + wd + tt
			acc0, acc1 := 0.0, 0.0
			for k := 0; k < wd; k++ {
				xk := work[c0d+k]
				acc0 += sp[row+k*nsd] * xk
				acc1 += sp[row+1+k*nsd] * xk
			}
			work[dbelow[tt]] -= acc0
			work[dbelow[tt+1]] -= acc1
		}
		if tt < off2 {
			row := dbase + wd + tt
			acc := 0.0
			for k := 0; k < wd; k++ {
				acc += sp[row+k*nsd] * work[c0d+k]
			}
			work[dbelow[tt]] -= acc
		}
	}
	c0 := int(sn.ptr[t])
	w := int(sn.ptr[t+1]) - c0
	ns := sn.rowPtr[t+1] - sn.rowPtr[t]
	base := sn.valPtr[t]
	for k := 0; k < w; k++ {
		xk := work[c0+k]
		if xk == 0 {
			continue
		}
		col := sp[base+k*ns:]
		for i := k + 1; i < w; i++ {
			work[c0+i] -= col[i] * xk
		}
	}
}

// solveSN is the sequential supernodal solve pipeline behind SolveWith.
//
//matex:noalloc
func (f *LDLT) solveSN(dst, b, work []float64) {
	n := f.sym.n
	sn := f.sym.sn
	perm := f.sym.perm
	for k := 0; k < n; k++ {
		work[k] = b[perm[k]]
	}
	g, pooled := f.getG(sn.maxRows)
	f.fwdSN(work, g)
	d := f.d
	for j := 0; j < n; j++ {
		work[j] /= d[j]
	}
	for t := sn.nsuper - 1; t >= 0; t-- {
		f.bwdOneSN(t, work, g)
	}
	f.putG(pooled)
	for k := 0; k < n; k++ {
		dst[perm[k]] = work[k]
	}
}

// solvePanelSN solves a panel of k (<= 8) interleaved right-hand sides
// through the supernodal factor in one traversal: work holds the solutions
// row-major (work[i*k+r]), g buffers k·maxRows below-block values. Every
// per-RHS operation runs in exactly the order the sequential
// fwdSN/diagonal/bwdOneSN path uses, so a panel solve is bitwise identical
// to k sequential solves — the sweep engine's batched lanes rely on that
// to reproduce solo runs exactly.
//
//matex:noalloc
func (f *LDLT) solvePanelSN(dst, b [][]float64, work []float64) {
	n, k := f.sym.n, len(dst)
	if k > 8 {
		panic("sparse: solvePanelSN panel wider than 8")
	}
	sn := f.sym.sn
	sp := f.snValues
	perm := f.sym.perm
	for i := 0; i < n; i++ {
		pi := perm[i]
		row := work[i*k : i*k+k]
		for r := 0; r < k; r++ {
			row[r] = b[r][pi]
		}
	}
	g, pooled := f.getG(sn.maxRows * k)
	// Forward.
	for t := 0; t < sn.nsuper; t++ {
		c0 := int(sn.ptr[t])
		w := int(sn.ptr[t+1]) - c0
		rb := sn.rowPtr[t]
		ns := sn.rowPtr[t+1] - rb
		base := sn.valPtr[t]
		nb := ns - w
		// Unit-lower solve of the w×w diagonal block.
		for kk := 0; kk < w; kk++ {
			xk := work[(c0+kk)*k : (c0+kk)*k+k : (c0+kk)*k+k]
			col := sp[base+kk*ns : base+kk*ns+w]
			for i := kk + 1; i < w; i++ {
				v := col[i]
				tr := work[(c0+i)*k : (c0+i)*k+k : (c0+i)*k+k]
				for r := range tr {
					tr[r] -= v * xk[r]
				}
			}
		}
		if nb == 0 {
			continue
		}
		// Below-block accumulate with columns streamed in pairs, exactly
		// as fwdSN associates the sums.
		var kk int
		if w&1 == 1 {
			x0 := work[c0*k : c0*k+k : c0*k+k]
			col := sp[base+w : base+ns]
			for i := 0; i < nb; i++ {
				v := col[i]
				tg := g[i*k : i*k+k : i*k+k]
				for r := range tg {
					tg[r] = v * x0[r]
				}
			}
			kk = 1
		} else {
			x0 := work[c0*k : c0*k+k : c0*k+k]
			x1 := work[(c0+1)*k : (c0+1)*k+k : (c0+1)*k+k]
			col0 := sp[base+w : base+ns]
			col1 := sp[base+ns+w : base+2*ns]
			for i := 0; i < nb; i++ {
				v0, v1 := col0[i], col1[i]
				tg := g[i*k : i*k+k : i*k+k]
				for r := range tg {
					tg[r] = v0*x0[r] + v1*x1[r]
				}
			}
			kk = 2
		}
		for ; kk+1 < w; kk += 2 {
			x0 := work[(c0+kk)*k : (c0+kk)*k+k : (c0+kk)*k+k]
			x1 := work[(c0+kk+1)*k : (c0+kk+1)*k+k : (c0+kk+1)*k+k]
			col0 := sp[base+kk*ns+w : base+(kk+1)*ns]
			col1 := sp[base+(kk+1)*ns+w : base+(kk+2)*ns]
			for i := 0; i < nb; i++ {
				v0, v1 := col0[i], col1[i]
				tg := g[i*k : i*k+k : i*k+k]
				for r := range tg {
					tg[r] += v0*x0[r] + v1*x1[r]
				}
			}
		}
		br := sn.rows[rb+w : rb+ns]
		for i, rr := range br {
			tw := work[int(rr)*k : int(rr)*k+k : int(rr)*k+k]
			tg := g[i*k : i*k+k]
			for r := range tw {
				tw[r] -= tg[r]
			}
		}
	}
	// Diagonal: true division, matching the sequential path's rounding.
	d := f.d
	for j := 0; j < n; j++ {
		dj := d[j]
		row := work[j*k : j*k+k]
		for r := range row {
			row[r] /= dj
		}
	}
	// Backward.
	var acc0, acc1 [8]float64
	for t := sn.nsuper - 1; t >= 0; t-- {
		c0 := int(sn.ptr[t])
		w := int(sn.ptr[t+1]) - c0
		rb := sn.rowPtr[t]
		ns := sn.rowPtr[t+1] - rb
		base := sn.valPtr[t]
		nb := ns - w
		if nb > 0 {
			br := sn.rows[rb+w : rb+ns]
			gb := g[:nb*k]
			for i, rr := range br {
				copy(gb[i*k:i*k+k], work[int(rr)*k:int(rr)*k+k])
			}
			// Below-block dots in column pairs, accumulated then applied
			// with one subtraction per unknown, as bwdOneSN does.
			var kk int
			if w&1 == 1 {
				col := sp[base+w : base+ns]
				a := acc0[:k]
				for r := range a {
					a[r] = 0
				}
				for i := 0; i < nb; i++ {
					v := col[i]
					sg := gb[i*k : i*k+k : i*k+k]
					for r := range a {
						a[r] += v * sg[r]
					}
				}
				xk := work[c0*k : c0*k+k : c0*k+k]
				for r := range a {
					xk[r] -= a[r]
				}
				kk = 1
			}
			for ; kk+1 < w; kk += 2 {
				col0 := sp[base+kk*ns+w : base+(kk+1)*ns]
				col1 := sp[base+(kk+1)*ns+w : base+(kk+2)*ns]
				a0, a1 := acc0[:k], acc1[:k]
				for r := 0; r < k; r++ {
					a0[r], a1[r] = 0, 0
				}
				for i := 0; i < nb; i++ {
					v0, v1 := col0[i], col1[i]
					sg := gb[i*k : i*k+k : i*k+k]
					for r := range sg {
						a0[r] += v0 * sg[r]
						a1[r] += v1 * sg[r]
					}
				}
				xk0 := work[(c0+kk)*k : (c0+kk)*k+k : (c0+kk)*k+k]
				xk1 := work[(c0+kk+1)*k : (c0+kk+1)*k+k : (c0+kk+1)*k+k]
				for r := 0; r < k; r++ {
					xk0[r] -= a0[r]
					xk1[r] -= a1[r]
				}
			}
		}
		// Descending intra-block substitution, dot-then-subtract.
		for kk := w - 1; kk >= 0; kk-- {
			col := sp[base+kk*ns : base+kk*ns+w]
			a := acc0[:k]
			for r := range a {
				a[r] = 0
			}
			for i := kk + 1; i < w; i++ {
				v := col[i]
				sr := work[(c0+i)*k : (c0+i)*k+k : (c0+i)*k+k]
				for r := range a {
					a[r] += v * sr[r]
				}
			}
			xk := work[(c0+kk)*k : (c0+kk)*k+k : (c0+kk)*k+k]
			for r := range a {
				xk[r] -= a[r]
			}
		}
	}
	f.putG(pooled)
	for i := 0; i < n; i++ {
		pi := perm[i]
		row := work[i*k : i*k+k]
		for r := 0; r < k; r++ {
			dst[r][pi] = row[r]
		}
	}
}
