package sparse

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// snScalarPair analyzes one pattern under both numeric engines.
func snScalarPair(t *testing.T, a *CSC, order Ordering) (snSym, scSym *Symbolic) {
	t.Helper()
	snSym, err := AnalyzeLDLTParams(a, order, SupernodeParams{Mode: SNAlways})
	if err != nil {
		t.Fatal(err)
	}
	if !snSym.Supernodal() {
		t.Fatalf("SNAlways analysis is not supernodal (order %v)", order)
	}
	scSym, err = AnalyzeLDLTParams(a, order, SupernodeParams{Mode: SNNever})
	if err != nil {
		t.Fatal(err)
	}
	if scSym.Supernodal() {
		t.Fatalf("SNNever analysis is supernodal (order %v)", order)
	}
	return snSym, scSym
}

func maxRelDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		scale := math.Max(math.Abs(a[i]), math.Abs(b[i]))
		if scale < 1 {
			scale = 1
		}
		if d := math.Abs(a[i]-b[i]) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// The supernodal engine must reproduce the scalar engine to roundoff on the
// γ-sweep harness (every shift of one pattern, every ordering): same D, same
// L values at every scalar pattern position, same solves.
func TestSupernodalMatchesScalarAcrossShifts(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	c, g := shiftFamily(rng, 14)
	base := Add(1, c, 1e-10, g)
	n := base.Rows
	for _, order := range []Ordering{OrderNatural, OrderRCM, OrderMinDegree, OrderND} {
		snSym, scSym := snScalarPair(t, base, order)
		var fSN, fSC *LDLT
		for shift := 0; shift < 10; shift++ {
			gamma := math.Exp(rng.Float64()*6 - 3)
			a := Add(1, c, gamma, g)
			var err error
			if fSN == nil {
				if fSN, err = snSym.Refactor(a); err != nil {
					t.Fatal(err)
				}
				if fSC, err = scSym.Refactor(a); err != nil {
					t.Fatal(err)
				}
			} else {
				if err = snSym.RefactorInto(fSN, a); err != nil {
					t.Fatal(err)
				}
				if err = scSym.RefactorInto(fSC, a); err != nil {
					t.Fatal(err)
				}
			}
			if d := maxRelDiff(fSN.D(), fSC.D()); d > 1e-14 {
				t.Fatalf("order %v shift %d: D diverges by %g", order, shift, d)
			}
			if d := maxRelDiff(fSN.L().Values, fSC.L().Values); d > 1e-14 {
				t.Fatalf("order %v shift %d: L diverges by %g", order, shift, d)
			}
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			x1 := make([]float64, n)
			x2 := make([]float64, n)
			fSN.Solve(x1, b)
			fSC.Solve(x2, b)
			if d := maxRelDiff(x1, x2); d > 1e-12 {
				t.Fatalf("order %v shift %d: solves diverge by %g", order, shift, d)
			}
			if r := residual(a, x1, b); r > 1e-9 {
				t.Fatalf("order %v shift %d: supernodal residual %g", order, shift, r)
			}
		}
	}
}

// Small and irregular patterns exercise panel-width edge cases: every n from
// 1 up, random patterns, forced supernodal engine.
func TestSupernodalSmallSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for n := 1; n <= 40; n++ {
		a := randomSPD(rng, n)
		snSym, scSym := snScalarPair(t, a, OrderRCM)
		fSN, err := snSym.Refactor(a)
		if err != nil {
			t.Fatal(err)
		}
		fSC, err := scSym.Refactor(a)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		fSN.Solve(x1, b)
		fSC.Solve(x2, b)
		if d := maxRelDiff(x1, x2); d > 1e-12 {
			t.Fatalf("n=%d: engines diverge by %g", n, d)
		}
	}
}

// Narrow panel widths stress the amalgamation bound and the in-panel
// factorization at every width from 1 (pure scalar layout) to wide.
func TestSupernodalWidthSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	a := meshSPD(12, 12)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ref := make([]float64, n)
	sc, err := AnalyzeLDLTParams(a, OrderMinDegree, SupernodeParams{Mode: SNNever})
	if err != nil {
		t.Fatal(err)
	}
	fsc, err := sc.Refactor(a)
	if err != nil {
		t.Fatal(err)
	}
	fsc.Solve(ref, b)
	for _, w := range []int{1, 2, 3, 5, 8, 17, 64} {
		sym, err := AnalyzeLDLTParams(a, OrderMinDegree, SupernodeParams{Mode: SNAlways, MaxWidth: w})
		if err != nil {
			t.Fatal(err)
		}
		f, err := sym.Refactor(a)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		f.Solve(x, b)
		if d := maxRelDiff(x, ref); d > 1e-12 {
			t.Fatalf("width %d: diverges by %g", w, d)
		}
	}
}

// The auto heuristic must pick the supernodal engine on the paper's
// dominant topology (2D power-grid meshes) and report its decision.
func TestSupernodalAutoEngagesOnMesh(t *testing.T) {
	// Nested dissection on a coupled mesh produces wide separator
	// supernodes — the shape the auto heuristic must hand to the panel
	// engine.
	a := meshSPD(48, 48)
	sym, err := AnalyzeLDLT(a, OrderND)
	if err != nil {
		t.Fatal(err)
	}
	if !sym.Supernodal() {
		t.Fatalf("auto heuristic kept the scalar engine on an ND-ordered 48x48 mesh (%d supernodes over %d columns)", sym.Supernodes(), sym.N())
	}
	if 2*sym.Supernodes() > sym.N() {
		t.Fatalf("weak amalgamation: %d supernodes for %d columns", sym.Supernodes(), sym.N())
	}
	if got := sym.SupernodeParams(); got != DefaultSupernodeParams().norm() {
		t.Fatalf("params not normalized defaults: %+v", got)
	}
	// A tiny system stays scalar under auto even though SNAlways would
	// build panels for it.
	small, err := AnalyzeLDLT(meshSPD(4, 4), OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	if small.Supernodal() {
		t.Fatal("auto heuristic built panels for a 16-node system")
	}
}

// Singular inputs must fail identically under both engines.
func TestSupernodalSingular(t *testing.T) {
	n := 40
	tr := NewTriplet(n, n)
	for i := 0; i < n-1; i++ {
		tr.Add(i, i+1, -1)
		tr.Add(i+1, i, -1)
		tr.Add(i, i, 1)
		tr.Add(i+1, i+1, 1)
	}
	a := tr.ToCSC()
	sym, err := AnalyzeLDLTParams(a, OrderNatural, SupernodeParams{Mode: SNAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sym.Refactor(a); err == nil {
		t.Fatal("supernodal engine factored a singular Laplacian")
	}
}

// The parallel and multi-RHS supernodal solves must agree with the
// sequential path under concurrent hammering: 16 goroutines mixing
// ParSolveWith, SolveWith and SolveMulti against one shared factor.
func TestSupernodalParSolveRace(t *testing.T) {
	a := multiDomainSPD(40, 4)
	n := a.Rows
	sym, err := AnalyzeLDLTParams(a, OrderMinDegree, SupernodeParams{Mode: SNAlways})
	if err != nil {
		t.Fatal(err)
	}
	f, err := sym.Refactor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !f.ParallelizableSolve() {
		t.Fatalf("4-domain mesh not parallelizable under supernodal schedule (lnz=%d tasks=%d)", sym.LNZ(), len(sym.sn.taskPtr)-1)
	}
	rng := rand.New(rand.NewSource(63))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	f.Solve(want, b)

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			x := make([]float64, n)
			work := make([]float64, n)
			for it := 0; it < 25; it++ {
				switch (g + it) % 3 {
				case 0:
					f.ParSolveWith(x, b, work, 4)
				case 1:
					f.SolveWith(x, b, work)
				default:
					dst := [][]float64{x}
					src := [][]float64{b}
					f.SolveMulti(dst, src)
				}
				if d := maxRelDiff(x, want); d > 1e-12 {
					errs <- "concurrent solve diverged"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// Supernodal multi-RHS panels of every width must match independent solves.
func TestSupernodalSolveMultiWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	a := meshSPD(13, 11)
	n := a.Rows
	sym, err := AnalyzeLDLTParams(a, OrderRCM, SupernodeParams{Mode: SNAlways})
	if err != nil {
		t.Fatal(err)
	}
	f, err := sym.Refactor(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 4, 5, 8, 9} {
		b := make([][]float64, k)
		dst := make([][]float64, k)
		want := make([][]float64, k)
		for r := 0; r < k; r++ {
			b[r] = make([]float64, n)
			for i := range b[r] {
				b[r][i] = rng.NormFloat64()
			}
			dst[r] = make([]float64, n)
			want[r] = make([]float64, n)
			f.Solve(want[r], b[r])
		}
		f.SolveMulti(dst, b)
		for r := 0; r < k; r++ {
			if d := maxRelDiff(dst[r], want[r]); d > 1e-12 {
				t.Fatalf("k=%d rhs %d: panel solve diverges by %g", k, r, d)
			}
		}
	}
}

// The supernodal refactorization and solves must stay allocation-free, the
// PR 4 guarantee carried over to the blocked engine — including the
// parallel fan-out, whose 405 B/op goroutine spawning this PR removed.
func TestSupernodalZeroAllocs(t *testing.T) {
	a := multiDomainSPD(40, 4)
	n := a.Rows
	sym, err := AnalyzeLDLTParams(a, OrderMinDegree, SupernodeParams{Mode: SNAlways})
	if err != nil {
		t.Fatal(err)
	}
	f, err := sym.Refactor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !f.ParallelizableSolve() {
		t.Fatal("expected parallelizable supernodal factor")
	}
	b := make([]float64, n)
	x := make([]float64, n)
	work := make([]float64, n)
	for i := range b {
		b[i] = float64(i%13) - 6
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := sym.RefactorInto(f, a); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("supernodal RefactorInto allocates %v/op", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		f.SolveWith(x, b, work)
	}); allocs != 0 {
		t.Errorf("supernodal SolveWith allocates %v/op", allocs)
	}
	if !raceEnabled {
		// The fan-out's job and task-buffer pools intentionally leak under
		// the race detector (sync.Pool drops Puts there).
		if allocs := testing.AllocsPerRun(50, func() {
			f.ParSolveWith(x, b, work, 4)
		}); allocs != 0 {
			t.Errorf("supernodal ParSolveWith allocates %v/op", allocs)
		}
	}
	mw := make([]float64, 4*n)
	dst := [][]float64{x, x, x, x}
	src := [][]float64{b, b, b, b}
	if allocs := testing.AllocsPerRun(50, func() {
		f.SolveMultiWith(dst, src, mw)
	}); allocs != 0 {
		t.Errorf("supernodal SolveMultiWith allocates %v/op", allocs)
	}
}
