package sparse

import "testing"

// fuzzMatrix decodes a byte stream into an n×n matrix: each 3-byte chunk
// stamps one entry (row, column, value). The triplet path itself is under
// test, so the result is validated before use.
func fuzzMatrix(t *testing.T, n int, entries []byte) *CSC {
	tb := NewTriplet(n, n)
	for k := 0; k+2 < len(entries); k += 3 {
		i := int(entries[k]) % n
		j := int(entries[k+1]) % n
		v := float64(int(entries[k+2]) - 128)
		tb.Add(i, j, v)
	}
	m := tb.ToCSC()
	if err := CheckCSC(m); err != nil {
		t.Fatalf("ToCSC broke the CSC invariants: %v", err)
	}
	return m
}

// FuzzCSCOps checks that the core pattern operations are closed under the
// CSC invariants (sorted, duplicate-free, in-range row indices) for
// arbitrary stamping sequences.
func FuzzCSCOps(f *testing.F) {
	f.Add(uint8(4), uint8(1), []byte{0, 0, 10, 1, 1, 200, 0, 1, 3}, 1.0, 1.0)
	f.Add(uint8(1), uint8(0), []byte{}, 0.0, 0.0)
	f.Add(uint8(7), uint8(3), []byte{6, 6, 1, 6, 0, 2, 0, 6, 2, 3, 3, 9}, 2.5, -0.5)
	f.Fuzz(func(t *testing.T, dim, rot uint8, entries []byte, alpha, beta float64) {
		n := int(dim)%8 + 1
		a := fuzzMatrix(t, n, entries)

		// Split the stream so the two operands differ.
		b := fuzzMatrix(t, n, entries[len(entries)/2:])

		sum := Add(alpha, a, beta, b)
		if err := CheckCSC(sum); err != nil {
			t.Fatalf("Add broke the CSC invariants: %v", err)
		}
		at := a.Transpose()
		if err := CheckCSC(at); err != nil {
			t.Fatalf("Transpose broke the CSC invariants: %v", err)
		}
		if att := at.Transpose(); att.NNZ() != a.NNZ() {
			t.Fatalf("double transpose changed nnz: %d != %d", att.NNZ(), a.NNZ())
		}

		// A rotation is always a valid permutation.
		p := make([]int, n)
		for i := range p {
			p[i] = (i + int(rot)) % n
		}
		perm := PermuteSym(a, p)
		if err := CheckCSC(perm); err != nil {
			t.Fatalf("PermuteSym broke the CSC invariants: %v", err)
		}
		if perm.NNZ() != a.NNZ() {
			t.Fatalf("PermuteSym changed nnz: %d != %d", perm.NNZ(), a.NNZ())
		}
	})
}

// FuzzParseOrdering checks the ordering-name parser never panics.
func FuzzParseOrdering(f *testing.F) {
	for _, s := range []string{"", "rcm", "natural", "mindegree", "amd", "RCM ", "0", "nested"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if ord, err := ParseOrdering(s); err == nil {
			_ = ord.Resolve() // accepted names must also resolve
		}
	})
}
