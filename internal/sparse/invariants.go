package sparse

import (
	"fmt"
	"math"
)

// This file is the always-compiled half of the matexdebug invariant layer:
// exported structural checkers that tests (and the debug hooks in
// debug_on.go) run against the package's core data structures. The checkers
// return an error describing the first violation instead of panicking so
// tests can report them with context; the matexdebug build-tag hooks wrap
// them in panics. CheckFactor is allocation-free on success so the hooks
// can sit inside RefactorInto without disturbing the AllocsPerRun gates.

// CheckCSC validates the structural invariants of a CSC matrix: consistent
// array lengths, a monotone column-pointer array spanning exactly the stored
// entries, and row indices in range, strictly ascending (sorted, no
// duplicates) within each column. It allocates nothing on success.
func CheckCSC(m *CSC) error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("sparse: CheckCSC: negative dimension %dx%d", m.Rows, m.Cols)
	}
	if len(m.Colptr) != m.Cols+1 {
		return fmt.Errorf("sparse: CheckCSC: len(Colptr) = %d, want Cols+1 = %d", len(m.Colptr), m.Cols+1)
	}
	if m.Colptr[0] != 0 {
		return fmt.Errorf("sparse: CheckCSC: Colptr[0] = %d, want 0", m.Colptr[0])
	}
	nnz := m.Colptr[m.Cols]
	if len(m.Rowidx) != nnz || len(m.Values) != nnz {
		return fmt.Errorf("sparse: CheckCSC: Colptr[Cols] = %d but len(Rowidx) = %d, len(Values) = %d",
			nnz, len(m.Rowidx), len(m.Values))
	}
	for j := 0; j < m.Cols; j++ {
		lo, hi := m.Colptr[j], m.Colptr[j+1]
		if lo > hi {
			return fmt.Errorf("sparse: CheckCSC: Colptr not monotone at column %d: %d > %d", j, lo, hi)
		}
		prev := -1
		for p := lo; p < hi; p++ {
			r := m.Rowidx[p]
			if r < 0 || r >= m.Rows {
				return fmt.Errorf("sparse: CheckCSC: row index %d out of range [0,%d) in column %d", r, m.Rows, j)
			}
			if r <= prev {
				return fmt.Errorf("sparse: CheckCSC: column %d rows not strictly ascending: %d after %d", j, r, prev)
			}
			prev = r
		}
	}
	return nil
}

// CheckPerm validates that p is a permutation of 0..n-1.
func CheckPerm(p []int, n int) error {
	if len(p) != n {
		return fmt.Errorf("sparse: CheckPerm: length %d, want %d", len(p), n)
	}
	seen := make([]bool, n)
	for k, v := range p {
		if v < 0 || v >= n {
			return fmt.Errorf("sparse: CheckPerm: p[%d] = %d out of range [0,%d)", k, v, n)
		}
		if seen[v] {
			return fmt.Errorf("sparse: CheckPerm: duplicate value %d at index %d", v, k)
		}
		seen[v] = true
	}
	return nil
}

// checkTaskSchedule validates a cutTasks execution schedule against its
// forest: every node appears exactly once across the tasks and the tail,
// nodes within one task are scheduled children-before-parents (a node whose
// parent shares its task must precede it), and no task node has a tail
// ancestor scheduled before the barrier would allow (the tail must be
// ascending, which in a parent>child forest implies children-first).
func checkTaskSchedule(parent []int32, taskPtr []int, taskNodes, tailNodes []int32) error {
	n := len(parent)
	if len(taskPtr) == 0 {
		return fmt.Errorf("sparse: checkTaskSchedule: empty taskPtr")
	}
	if len(taskNodes)+len(tailNodes) == 0 && n > 0 {
		// Empty schedule: the pattern had no exploitable parallelism. The
		// tail is then implicit (sequential solve); nothing to check.
		return nil
	}
	if len(taskNodes) != taskPtr[len(taskPtr)-1] {
		return fmt.Errorf("sparse: checkTaskSchedule: len(taskNodes) = %d, want taskPtr end %d",
			len(taskNodes), taskPtr[len(taskPtr)-1])
	}
	if len(taskNodes)+len(tailNodes) != n {
		return fmt.Errorf("sparse: checkTaskSchedule: schedule covers %d nodes, forest has %d",
			len(taskNodes)+len(tailNodes), n)
	}
	// taskOf[k]: owning task, or -1 for tail; pos[k]: position within it.
	taskOf := make([]int32, n)
	pos := make([]int32, n)
	for i := range taskOf {
		taskOf[i] = -2
	}
	for t := 0; t+1 < len(taskPtr); t++ {
		for q := taskPtr[t]; q < taskPtr[t+1]; q++ {
			k := taskNodes[q]
			if k < 0 || int(k) >= n {
				return fmt.Errorf("sparse: checkTaskSchedule: task node %d out of range", k)
			}
			if taskOf[k] != -2 {
				return fmt.Errorf("sparse: checkTaskSchedule: node %d scheduled twice", k)
			}
			taskOf[k] = int32(t)
			pos[k] = int32(q)
		}
	}
	prev := int32(-1)
	for _, k := range tailNodes {
		if k < 0 || int(k) >= n {
			return fmt.Errorf("sparse: checkTaskSchedule: tail node %d out of range", k)
		}
		if taskOf[k] != -2 {
			return fmt.Errorf("sparse: checkTaskSchedule: node %d scheduled twice", k)
		}
		if k <= prev {
			return fmt.Errorf("sparse: checkTaskSchedule: tail not ascending at node %d", k)
		}
		prev = k
		taskOf[k] = -1
	}
	for k := 0; k < n; k++ {
		p := parent[k]
		if p == -1 {
			continue
		}
		if int(p) <= k {
			return fmt.Errorf("sparse: checkTaskSchedule: parent[%d] = %d not above child", k, p)
		}
		// A task node's parent is either later in the same task or in the
		// tail (never in a different task: tasks are independent subtrees).
		if t := taskOf[k]; t >= 0 {
			switch pt := taskOf[p]; {
			case pt == -1:
				// parent in tail: runs after the forward barrier, fine.
			case pt == t:
				if pos[p] <= pos[k] {
					return fmt.Errorf("sparse: checkTaskSchedule: node %d scheduled before child %d in task %d", p, k, t)
				}
			default:
				return fmt.Errorf("sparse: checkTaskSchedule: child %d in task %d but parent %d in task %d", k, t, p, pt)
			}
		}
	}
	return nil
}

// CheckSymbolic validates the invariants of a symbolic analysis: the
// permutation and its inverse, the elimination-tree parent-above-child
// property, and the parallel-solve task schedules (scalar and, when the
// supernodal engine is active, supernodal).
func CheckSymbolic(s *Symbolic) error {
	if err := CheckPerm(s.perm, s.n); err != nil {
		return err
	}
	for k, v := range s.perm {
		if s.pinv[v] != k {
			return fmt.Errorf("sparse: CheckSymbolic: pinv is not the inverse of perm at %d", k)
		}
	}
	for k, p := range s.parent {
		if p != -1 && int(p) <= k {
			return fmt.Errorf("sparse: CheckSymbolic: etree parent[%d] = %d not above child", k, p)
		}
	}
	if err := checkTaskSchedule(s.parent, s.taskPtr, s.taskRows, s.tailRows); err != nil {
		return err
	}
	if sn := s.sn; sn != nil {
		if err := checkTaskSchedule(sn.parent, sn.taskPtr, sn.taskSN, sn.tailSN); err != nil {
			return err
		}
	}
	return nil
}

// CheckFactor validates the numeric invariants of a freshly refactorized
// LDLT: every diagonal pivot finite and nonzero, and — under the supernodal
// engine — the relaxed-amalgamation padding closure: any panel position not
// covered by the scalar pattern of its column holds an exact zero (padded
// below-diagonal positions are structurally zero because the fill pattern is
// closed; above-diagonal positions are never written after the initial
// clear). Allocation-free on success, so the matexdebug hook can run it
// inside RefactorInto without breaking the AllocsPerRun gates.
func CheckFactor(f *LDLT) error {
	s := f.sym
	for k, dk := range f.d {
		if dk == 0 || math.IsNaN(dk) || math.IsInf(dk, 0) {
			return fmt.Errorf("sparse: CheckFactor: pivot d[%d] = %v", k, dk)
		}
	}
	sn := s.sn
	if sn == nil {
		return nil
	}
	for t := 0; t < sn.nsuper; t++ {
		c0, c1 := int(sn.ptr[t]), int(sn.ptr[t+1])
		rb := sn.rowPtr[t]
		ns := sn.rowPtr[t+1] - rb
		rows := sn.rows[rb : rb+ns]
		base := sn.valPtr[t]
		for j := c0; j < c1; j++ {
			cb := base + (j-c0)*ns
			lo, hi := s.colptr[j], s.colptr[j+1]
			for li := 0; li < ns; li++ {
				r := int(rows[li])
				if r < j {
					// Above the diagonal inside the block: never written.
					if v := f.snValues[cb+li]; v != 0 {
						return fmt.Errorf("sparse: CheckFactor: supernode %d column %d: above-diagonal slot row %d holds %v", t, j, r, v)
					}
					continue
				}
				if r == j {
					continue // unit diagonal slot reused for D's pivot work
				}
				// Strictly below: must be padding-zero unless r is in the
				// scalar pattern of column j (binary search, rows ascending).
				a, b := lo, hi
				found := false
				for a < b {
					mid := int(uint(a+b) >> 1)
					switch ri := int(s.rowidx[mid]); {
					case ri < r:
						a = mid + 1
					case ri > r:
						b = mid
					default:
						found = true
						a = b
					}
				}
				if !found {
					if v := f.snValues[cb+li]; v != 0 {
						return fmt.Errorf("sparse: CheckFactor: supernode %d column %d: padded slot row %d holds %v (pattern closure violated)", t, j, r, v)
					}
				}
			}
		}
	}
	return nil
}
