package waveform

import (
	"math"
	"sort"
)

// SpotEps is the tolerance below which two transition spots are merged.
// PDN simulations run at nanosecond scale, so a femtosecond epsilon is far
// below any physically meaningful separation.
const SpotEps = 1e-18

// MergeSpots sorts the time points and removes near-duplicates (within eps).
// It always keeps 0 and tstop as the span endpoints when includeEnds is true.
func MergeSpots(spots []float64, tstop float64, eps float64, includeEnds bool) []float64 {
	if eps <= 0 {
		eps = SpotEps
	}
	pts := make([]float64, 0, len(spots)+2)
	for _, t := range spots {
		if t >= -eps && t <= tstop+eps {
			pts = append(pts, math.Max(0, math.Min(t, tstop)))
		}
	}
	if includeEnds {
		pts = append(pts, 0, tstop)
	}
	sort.Float64s(pts)
	out := pts[:0]
	for _, t := range pts {
		if len(out) == 0 || t-out[len(out)-1] > eps {
			out = append(out, t)
		}
	}
	return out
}

// LTS computes the local transition spots of a single waveform over
// [0, tstop], sorted and deduplicated, including the endpoints.
func LTS(w Waveform, tstop float64) []float64 {
	return MergeSpots(w.Transitions(nil, tstop), tstop, SpotEps, true)
}

// GTS computes the global transition spots: the union of all sources' LTS
// over [0, tstop] (paper definition), including the endpoints.
func GTS(ws []Waveform, tstop float64) []float64 {
	var all []float64
	for _, w := range ws {
		all = w.Transitions(all, tstop)
	}
	return MergeSpots(all, tstop, SpotEps, true)
}

// Snapshot returns GTS \ LTS for one source: the time points where the
// subtask for this source must emit a solution (for superposition) but can
// reuse its latest Krylov subspace instead of generating a new one.
func Snapshot(gts, lts []float64) []float64 {
	out := make([]float64, 0, len(gts))
	i := 0
	for _, t := range gts {
		for i < len(lts) && lts[i] < t-SpotEps {
			i++
		}
		if i < len(lts) && math.Abs(lts[i]-t) <= SpotEps {
			continue
		}
		out = append(out, t)
	}
	return out
}

// ContainsSpot reports whether t is one of the spots (within SpotEps),
// assuming spots is sorted.
func ContainsSpot(spots []float64, t float64) bool {
	i := sort.SearchFloat64s(spots, t-SpotEps)
	return i < len(spots) && math.Abs(spots[i]-t) <= SpotEps
}

// NextSpot returns the first spot strictly after t (beyond SpotEps),
// assuming spots is sorted. These lookups run once per grid point per
// segment in the transient solvers, so they binary-search rather than scan.
func NextSpot(spots []float64, t float64) (float64, bool) {
	i := sort.SearchFloat64s(spots, t+SpotEps)
	for i < len(spots) && spots[i] <= t+SpotEps {
		i++
	}
	if i < len(spots) {
		return spots[i], true
	}
	return 0, false
}
