package waveform

import (
	"math"
	"testing"
)

func TestSinValue(t *testing.T) {
	s := &Sin{VO: 1, VA: 0.5, Freq: 1e9, Delay: 1e-9}
	if s.Value(0.5e-9) != 1 {
		t.Error("before delay should be VO")
	}
	// Quarter period after delay: VO + VA.
	if got := s.Value(1e-9 + 0.25e-9); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("quarter period = %v, want 1.5", got)
	}
	// Damped: amplitude shrinks.
	d := &Sin{VA: 1, Freq: 1e9, Theta: 1e9}
	peak1 := d.Value(0.25e-9)
	peak2 := d.Value(1.25e-9)
	if math.Abs(peak2) >= math.Abs(peak1) {
		t.Errorf("damping failed: %v then %v", peak1, peak2)
	}
}

func TestSinValidateAndTransitions(t *testing.T) {
	if err := (&Sin{Freq: 0}).Validate(); err == nil {
		t.Error("zero frequency accepted")
	}
	if err := (&Sin{Freq: 1, Delay: -1}).Validate(); err == nil {
		t.Error("negative delay accepted")
	}
	s := &Sin{VA: 1, Freq: 1e9, SpotsPerPeriod: 8}
	spots := MergeSpots(s.Transitions(nil, 2e-9), 2e-9, 0, false)
	// Two periods at 8 spots each.
	if len(spots) < 15 || len(spots) > 18 {
		t.Errorf("spot count %d, want about 16", len(spots))
	}
}

func TestExpValue(t *testing.T) {
	e := &Exp{V1: 0, V2: 2, TD1: 1e-9, Tau1: 1e-10, TD2: 5e-9, Tau2: 2e-10}
	if e.Value(0.5e-9) != 0 {
		t.Error("before td1 should be V1")
	}
	// Far into the rise: ~V2.
	if got := e.Value(4e-9); math.Abs(got-2) > 1e-6 {
		t.Errorf("plateau = %v, want 2", got)
	}
	// Far into the decay: back to ~V1.
	if got := e.Value(20e-9); math.Abs(got) > 1e-6 {
		t.Errorf("decayed = %v, want 0", got)
	}
	// One tau into the rise: V2*(1-1/e).
	want := 2 * (1 - math.Exp(-1))
	if got := e.Value(1.1e-9); math.Abs(got-want) > 1e-12 {
		t.Errorf("one tau = %v, want %v", got, want)
	}
}

func TestExpValidate(t *testing.T) {
	if err := (&Exp{Tau1: 0, Tau2: 1}).Validate(); err == nil {
		t.Error("zero tau accepted")
	}
	if err := (&Exp{Tau1: 1, Tau2: 1, TD1: 2, TD2: 1}).Validate(); err == nil {
		t.Error("decay before rise accepted")
	}
}

func TestSmoothPiecewiseLinearApproximation(t *testing.T) {
	// Between densified transition spots, the linear interpolation of the
	// smooth source must stay within a small fraction of the amplitude —
	// that is the property the MATEX integrator relies on.
	s := &Sin{VA: 1, Freq: 1e9}
	spots := LTS(s, 3e-9)
	for i := 1; i < len(spots); i++ {
		t0, t1 := spots[i-1], spots[i]
		if t1-t0 < 1e-15 {
			continue
		}
		mid := (t0 + t1) / 2
		lin := (s.Value(t0) + s.Value(t1)) / 2
		if math.Abs(s.Value(mid)-lin) > 0.02 {
			t.Fatalf("PWL error %g at t=%g (spot gap %g)", s.Value(mid)-lin, mid, t1-t0)
		}
	}
}
