package waveform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDC(t *testing.T) {
	w := DC(1.8)
	if w.Value(0) != 1.8 || w.Value(1e-9) != 1.8 {
		t.Fatal("DC value wrong")
	}
	if got := w.Transitions(nil, 1); len(got) != 0 {
		t.Fatalf("DC transitions = %v", got)
	}
}

func TestPWLValue(t *testing.T) {
	w, err := NewPWL([]float64{0, 1, 3}, []float64{0, 10, 0})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {2, 5}, {3, 0}, {4, 0},
	}
	for _, c := range cases {
		if got := w.Value(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PWL(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestPWLValidation(t *testing.T) {
	if _, err := NewPWL([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("expected error for non-increasing times")
	}
	if _, err := NewPWL([]float64{0}, []float64{1, 2}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
	if _, err := NewPWL(nil, nil); err == nil {
		t.Error("expected error for empty PWL")
	}
}

func TestPulseValue(t *testing.T) {
	p := &Pulse{V1: 0, V2: 1, Delay: 1, Rise: 1, Width: 2, Fall: 1, Period: 10}
	cases := []struct{ t, want float64 }{
		{0, 0}, {1, 0}, {1.5, 0.5}, {2, 1}, {3.9, 1}, {4, 1}, {4.5, 0.5}, {5, 0}, {9, 0},
		// Second period starts at delay+period = 11.
		{11.5, 0.5}, {12.5, 1},
	}
	for _, c := range cases {
		if got := p.Value(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Pulse(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestPulseZeroRiseFall(t *testing.T) {
	p := &Pulse{V1: 0, V2: 2, Delay: 1, Rise: 0, Width: 1, Fall: 0}
	if p.Value(0.999) != 0 {
		t.Error("before delay")
	}
	if p.Value(1.5) != 2 {
		t.Error("during width")
	}
	if p.Value(2.5) != 0 {
		t.Error("after fall")
	}
}

func TestPulseValidate(t *testing.T) {
	if err := (&Pulse{Rise: -1}).Validate(); err == nil {
		t.Error("expected error for negative rise")
	}
	if err := (&Pulse{Rise: 1, Width: 1, Fall: 1, Period: 2}).Validate(); err == nil {
		t.Error("expected error for too-short period")
	}
	if err := (&Pulse{Rise: 1, Width: 1, Fall: 1, Period: 3}).Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPulseTransitions(t *testing.T) {
	p := &Pulse{V1: 0, V2: 1, Delay: 1, Rise: 1, Width: 2, Fall: 1, Period: 10}
	got := MergeSpots(p.Transitions(nil, 12), 12, 0, false)
	want := []float64{1, 2, 4, 5, 11, 12}
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("transitions = %v, want %v", got, want)
		}
	}
}

func TestLTSIncludesEndpoints(t *testing.T) {
	p := &Pulse{V1: 0, V2: 1, Delay: 2, Rise: 1, Width: 1, Fall: 1}
	lts := LTS(p, 10)
	if lts[0] != 0 || lts[len(lts)-1] != 10 {
		t.Fatalf("LTS endpoints missing: %v", lts)
	}
}

func TestGTSUnion(t *testing.T) {
	a := &Pulse{V2: 1, Delay: 1, Rise: 1, Width: 1, Fall: 1}
	b := &Pulse{V2: 1, Delay: 2, Rise: 1, Width: 1, Fall: 1}
	gts := GTS([]Waveform{a, b}, 10)
	// a: 1,2,3,4; b: 2,3,4,5; union with ends: 0,1,2,3,4,5,10.
	want := []float64{0, 1, 2, 3, 4, 5, 10}
	if len(gts) != len(want) {
		t.Fatalf("GTS = %v, want %v", gts, want)
	}
	for i := range want {
		if math.Abs(gts[i]-want[i]) > 1e-12 {
			t.Fatalf("GTS = %v, want %v", gts, want)
		}
	}
}

func TestSnapshot(t *testing.T) {
	gts := []float64{0, 1, 2, 3, 4, 5, 10}
	lts := []float64{0, 1, 2, 3, 4, 10}
	snap := Snapshot(gts, lts)
	if len(snap) != 1 || snap[0] != 5 {
		t.Fatalf("Snapshot = %v, want [5]", snap)
	}
}

func TestContainsSpot(t *testing.T) {
	spots := []float64{0, 1e-9, 2e-9}
	if !ContainsSpot(spots, 1e-9) {
		t.Error("missing spot")
	}
	if ContainsSpot(spots, 1.5e-9) {
		t.Error("phantom spot")
	}
}

func TestNextSpot(t *testing.T) {
	spots := []float64{0, 1e-10, 2e-10, 5e-10, 1e-9}
	// Reference: linear scan with the same strictly-after contract.
	ref := func(t0 float64) (float64, bool) {
		for _, s := range spots {
			if s > t0+SpotEps {
				return s, true
			}
		}
		return 0, false
	}
	for _, t0 := range []float64{-1e-9, 0, 1e-11, 1e-10, 1.5e-10, 5e-10 - SpotEps/2, 5e-10, 9.99e-10, 1e-9, 2e-9} {
		want, wok := ref(t0)
		got, gok := NextSpot(spots, t0)
		if got != want || gok != wok {
			t.Errorf("NextSpot(%g) = (%g, %v), want (%g, %v)", t0, got, gok, want, wok)
		}
	}
	if _, ok := NextSpot(nil, 0); ok {
		t.Error("NextSpot on empty list should report none")
	}
}

func TestScaledShifted(t *testing.T) {
	p := &Pulse{V1: 0, V2: 1, Delay: 1, Rise: 1, Width: 1, Fall: 1}
	s := Scaled{W: p, Gain: 3}
	if s.Value(2) != 3 {
		t.Errorf("Scaled.Value = %v", s.Value(2))
	}
	sh := Shifted{W: p, Offset: 5}
	if sh.Value(7) != p.Value(2) {
		t.Errorf("Shifted.Value = %v", sh.Value(7))
	}
	tr := sh.Transitions(nil, 20)
	if tr[0] != 6 {
		t.Errorf("Shifted first transition = %v, want 6", tr[0])
	}
}

func TestFeatureOf(t *testing.T) {
	p := &Pulse{Delay: 1, Rise: 2, Width: 3, Fall: 4, Period: 10}
	f, ok := FeatureOf(p)
	if !ok || f != (BumpFeature{1, 2, 3, 4, 10}) {
		t.Fatalf("FeatureOf = %+v, ok=%v", f, ok)
	}
	f2, ok := FeatureOf(Scaled{W: p, Gain: 2})
	if !ok || f2 != f {
		t.Fatal("Scaled should preserve feature")
	}
	f3, ok := FeatureOf(Shifted{W: p, Offset: 5})
	if !ok || f3.Delay != 6 {
		t.Fatalf("Shifted feature delay = %v", f3.Delay)
	}
	if _, ok := FeatureOf(DC(1)); ok {
		t.Error("DC should have no bump feature")
	}
}

func TestGroup(t *testing.T) {
	mk := func(delay float64, gain float64) Waveform {
		return Scaled{W: &Pulse{V2: 1, Delay: delay, Rise: 1e-10, Width: 1e-10, Fall: 1e-10}, Gain: gain}
	}
	ws := []Waveform{
		mk(1e-9, 1), mk(2e-9, 5), mk(1e-9, 2), mk(3e-9, 1), mk(2e-9, 0.5),
	}
	groups := Group(ws, 10e-9)
	if len(groups) != 3 {
		t.Fatalf("groups = %v, want 3 groups", groups)
	}
	// Same-delay sources grouped together regardless of gain.
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 2 {
		t.Fatalf("group 0 = %v", groups[0])
	}
	if len(groups[1]) != 2 {
		t.Fatalf("group 1 = %v", groups[1])
	}
}

func TestGroupPWLBySignature(t *testing.T) {
	w1, _ := NewPWL([]float64{0, 1, 2}, []float64{0, 1, 0})
	w2, _ := NewPWL([]float64{0, 1, 2}, []float64{0, 5, 0}) // same breakpoints
	w3, _ := NewPWL([]float64{0, 1.5, 2}, []float64{0, 1, 0})
	groups := Group([]Waveform{w1, w2, w3}, 10)
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2", groups)
	}
}

func TestSplitPeriodic(t *testing.T) {
	p := &Pulse{V2: 1, Delay: 1, Rise: 1, Width: 1, Fall: 1, Period: 5}
	bumps := SplitPeriodic(p, 12)
	if len(bumps) != 3 {
		t.Fatalf("bumps = %d, want 3 (delays 1, 6, 11)", len(bumps))
	}
	for i, b := range bumps {
		if b.Period != 0 {
			t.Error("split bumps must be single-shot")
		}
		if want := 1 + 5*float64(i); b.Delay != want {
			t.Errorf("bump %d delay = %v, want %v", i, b.Delay, want)
		}
	}
	single := &Pulse{V2: 1, Delay: 1}
	if got := SplitPeriodic(single, 10); len(got) != 1 || got[0] != single {
		t.Error("non-periodic pulse should return itself")
	}
}

func TestSortedFeatures(t *testing.T) {
	ws := []Waveform{
		&Pulse{Delay: 2, Rise: 1, Width: 1, Fall: 1},
		&Pulse{Delay: 1, Rise: 1, Width: 1, Fall: 1},
		&Pulse{Delay: 2, Rise: 1, Width: 1, Fall: 1}, // dup
		DC(5),
	}
	feats := SortedFeatures(ws)
	if len(feats) != 2 {
		t.Fatalf("features = %v", feats)
	}
	if feats[0].Delay != 1 || feats[1].Delay != 2 {
		t.Fatalf("features not sorted: %v", feats)
	}
}

// Property: superposition of group LTS unions equals GTS.
func TestQuickGroupLTSCoverGTS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		ws := make([]Waveform, n)
		for i := range ws {
			ws[i] = &Pulse{
				V2:    rng.Float64(),
				Delay: float64(rng.Intn(5)) * 1e-10,
				Rise:  1e-11 + float64(rng.Intn(3))*1e-11,
				Width: 1e-11,
				Fall:  2e-11,
			}
		}
		tstop := 2e-9
		gts := GTS(ws, tstop)
		groups := Group(ws, tstop)
		var all []float64
		for _, g := range groups {
			all = append(all, GroupLTS(ws, g, tstop)...)
		}
		merged := MergeSpots(all, tstop, SpotEps, true)
		if len(merged) != len(gts) {
			return false
		}
		for i := range merged {
			if math.Abs(merged[i]-gts[i]) > 1e-15 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: waveforms are piecewise linear between consecutive transition
// spots (midpoint value equals the average of the endpoints).
func TestQuickPiecewiseLinearBetweenSpots(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &Pulse{
			V1:     rng.Float64(),
			V2:     rng.Float64() * 5,
			Delay:  rng.Float64() * 2,
			Rise:   0.1 + rng.Float64(),
			Width:  0.1 + rng.Float64(),
			Fall:   0.1 + rng.Float64(),
			Period: 0,
		}
		tstop := 10.0
		lts := LTS(p, tstop)
		for i := 1; i < len(lts); i++ {
			t0, t1 := lts[i-1], lts[i]
			if t1-t0 < 1e-9 {
				continue
			}
			mid := (t0 + t1) / 2
			want := (p.Value(t0) + p.Value(t1)) / 2
			if math.Abs(p.Value(mid)-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
