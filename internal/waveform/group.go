package waveform

import (
	"fmt"
	"sort"
)

// BumpFeature identifies the shape of a pulse "bump" (paper Fig. 3): sources
// whose bumps share (t_delay, t_rise, t_fall, t_width, t_period) transition
// at the same local spots, so simulating them together costs no extra Krylov
// subspace generations.
type BumpFeature struct {
	Delay, Rise, Width, Fall, Period float64
}

// FeatureOf extracts the bump feature of a waveform. The second return is
// false for waveforms without a pulse feature (DC, generic PWL); those are
// grouped by their full transition signature instead.
func FeatureOf(w Waveform) (BumpFeature, bool) {
	switch s := w.(type) {
	case *Pulse:
		return BumpFeature{Delay: s.Delay, Rise: s.Rise, Width: s.Width, Fall: s.Fall, Period: s.Period}, true
	case Scaled:
		return FeatureOf(s.W)
	case Shifted:
		f, ok := FeatureOf(s.W)
		if ok {
			f.Delay += s.Offset
		}
		return f, ok
	default:
		return BumpFeature{}, false
	}
}

// signature builds a grouping key for non-pulse waveforms from their
// transition spots, so that e.g. identical PWL shapes still share a group.
func signature(w Waveform, tstop float64) string {
	spots := LTS(w, tstop)
	return fmt.Sprintf("%v", spots)
}

// Group assigns each waveform to a group of identical transition structure.
// It returns, for each group, the member indices. Deterministic: groups are
// ordered by first appearance.
func Group(ws []Waveform, tstop float64) [][]int {
	type key struct {
		feat BumpFeature
		sig  string
	}
	index := make(map[key]int)
	var groups [][]int
	for i, w := range ws {
		var k key
		if f, ok := FeatureOf(w); ok {
			k = key{feat: f}
		} else {
			k = key{sig: signature(w, tstop)}
		}
		g, ok := index[k]
		if !ok {
			g = len(groups)
			index[k] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], i)
	}
	return groups
}

// GroupLTS returns the union of the LTS of the group members.
func GroupLTS(ws []Waveform, members []int, tstop float64) []float64 {
	var all []float64
	for _, i := range members {
		all = ws[i].Transitions(all, tstop)
	}
	return MergeSpots(all, tstop, SpotEps, true)
}

// SplitPeriodic decomposes a periodic pulse into its individual bumps, each a
// single-shot pulse, so the "more aggressive" decomposition of the paper's
// Sec. 3.1 can group same-shape bumps from different sources. Bumps beyond
// tstop are discarded.
func SplitPeriodic(p *Pulse, tstop float64) []*Pulse {
	if p.Period <= 0 {
		return []*Pulse{p}
	}
	var bumps []*Pulse
	for start := p.Delay; start <= tstop; start += p.Period {
		bumps = append(bumps, &Pulse{
			V1: p.V1, V2: p.V2,
			Delay: start, Rise: p.Rise, Width: p.Width, Fall: p.Fall,
		})
	}
	return bumps
}

// SortedFeatures lists the distinct bump features among the waveforms in a
// stable order, for reporting (the paper's "Group #").
func SortedFeatures(ws []Waveform) []BumpFeature {
	seen := make(map[BumpFeature]bool)
	var feats []BumpFeature
	for _, w := range ws {
		if f, ok := FeatureOf(w); ok && !seen[f] {
			seen[f] = true
			feats = append(feats, f)
		}
	}
	sort.Slice(feats, func(i, j int) bool {
		a, b := feats[i], feats[j]
		switch {
		case a.Delay != b.Delay:
			return a.Delay < b.Delay
		case a.Rise != b.Rise:
			return a.Rise < b.Rise
		case a.Width != b.Width:
			return a.Width < b.Width
		case a.Fall != b.Fall:
			return a.Fall < b.Fall
		default:
			return a.Period < b.Period
		}
	})
	return feats
}
