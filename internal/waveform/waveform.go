// Package waveform models the time-varying sources driving a power
// distribution network: piecewise-linear (PWL) and SPICE-style pulse
// waveforms, the extraction of their transition spots (the paper's LTS —
// points where the input slope changes), the union over all sources (GTS),
// and the grouping of pulse "bump" features used by MATEX to decompose the
// simulation into subtasks (paper Fig. 3).
package waveform

import (
	"fmt"
	"math"
	"sort"
)

// Waveform is a scalar source value as a function of time. Implementations
// must be piecewise linear: between two consecutive transition spots the
// value varies with constant slope, which is what lets the matrix
// exponential integrator take a single step across the whole interval.
type Waveform interface {
	// Value returns the source value at time t.
	Value(t float64) float64
	// Transitions appends to dst the local transition spots in [0, tstop]:
	// the time points where the slope changes (including t=0 if the source
	// starts with a nonzero value or slope discontinuity).
	Transitions(dst []float64, tstop float64) []float64
}

// DC is a constant waveform.
type DC float64

// Value implements Waveform.
func (d DC) Value(t float64) float64 { return float64(d) }

// Transitions implements Waveform; a constant has no transition spots.
func (d DC) Transitions(dst []float64, tstop float64) []float64 { return dst }

// PWL is a piecewise-linear waveform through the given (T[i], V[i]) points.
// Before T[0] the value is V[0]; after T[len-1] it is V[len-1].
type PWL struct {
	T []float64
	V []float64
}

// NewPWL validates and returns a PWL waveform. Times must be strictly
// increasing and the two slices the same non-zero length.
func NewPWL(t, v []float64) (*PWL, error) {
	if len(t) == 0 || len(t) != len(v) {
		return nil, fmt.Errorf("waveform: PWL needs equal non-empty time/value slices, got %d/%d", len(t), len(v))
	}
	for i := 1; i < len(t); i++ {
		if t[i] <= t[i-1] {
			return nil, fmt.Errorf("waveform: PWL times must be strictly increasing at index %d (%g <= %g)", i, t[i], t[i-1])
		}
	}
	return &PWL{T: append([]float64(nil), t...), V: append([]float64(nil), v...)}, nil
}

// Value implements Waveform.
func (w *PWL) Value(t float64) float64 {
	n := len(w.T)
	if t <= w.T[0] {
		return w.V[0]
	}
	if t >= w.T[n-1] {
		return w.V[n-1]
	}
	// Binary search for the segment containing t.
	i := sort.SearchFloat64s(w.T, t)
	// w.T[i-1] < t <= w.T[i]
	t0, t1 := w.T[i-1], w.T[i]
	v0, v1 := w.V[i-1], w.V[i]
	return v0 + (v1-v0)*(t-t0)/(t1-t0)
}

// Transitions implements Waveform.
func (w *PWL) Transitions(dst []float64, tstop float64) []float64 {
	for _, t := range w.T {
		if t >= 0 && t <= tstop {
			dst = append(dst, t)
		}
	}
	return dst
}

// Pulse is a SPICE PULSE(v1 v2 td tr pw tf per) source: from V1 it rises to
// V2 over Rise starting at Delay, holds for Width, falls back over Fall, and
// repeats every Period (if Period > 0).
type Pulse struct {
	V1, V2 float64 // initial and pulsed value
	Delay  float64 // t_delay
	Rise   float64 // t_rise
	Width  float64 // t_width (time at V2)
	Fall   float64 // t_fall
	Period float64 // t_period; <= 0 means single pulse
}

// Validate checks the pulse timing parameters.
func (p *Pulse) Validate() error {
	if p.Rise < 0 || p.Fall < 0 || p.Width < 0 || p.Delay < 0 {
		return fmt.Errorf("waveform: pulse with negative timing: %+v", *p)
	}
	if p.Period > 0 && p.Period < p.Rise+p.Width+p.Fall {
		return fmt.Errorf("waveform: pulse period %g shorter than rise+width+fall %g", p.Period, p.Rise+p.Width+p.Fall)
	}
	return nil
}

// Value implements Waveform.
func (p *Pulse) Value(t float64) float64 {
	if t < p.Delay {
		return p.V1
	}
	tt := t - p.Delay
	if p.Period > 0 {
		tt = math.Mod(tt, p.Period)
	}
	switch {
	case tt < p.Rise:
		if p.Rise == 0 {
			return p.V2
		}
		return p.V1 + (p.V2-p.V1)*tt/p.Rise
	case tt < p.Rise+p.Width:
		return p.V2
	case tt < p.Rise+p.Width+p.Fall:
		if p.Fall == 0 {
			return p.V1
		}
		return p.V2 + (p.V1-p.V2)*(tt-p.Rise-p.Width)/p.Fall
	default:
		return p.V1
	}
}

// Transitions implements Waveform. Each bump contributes its four corners:
// delay, delay+rise, delay+rise+width, delay+rise+width+fall.
func (p *Pulse) Transitions(dst []float64, tstop float64) []float64 {
	start := p.Delay
	for {
		corners := [4]float64{
			start,
			start + p.Rise,
			start + p.Rise + p.Width,
			start + p.Rise + p.Width + p.Fall,
		}
		emitted := false
		for _, c := range corners {
			if c <= tstop {
				dst = append(dst, c)
				emitted = true
			}
		}
		if p.Period <= 0 || !emitted {
			return dst
		}
		start += p.Period
		if start > tstop {
			return dst
		}
	}
}

// Scaled wraps a waveform with a multiplicative gain.
type Scaled struct {
	W    Waveform
	Gain float64
}

// Value implements Waveform.
func (s Scaled) Value(t float64) float64 { return s.Gain * s.W.Value(t) }

// Transitions implements Waveform.
func (s Scaled) Transitions(dst []float64, tstop float64) []float64 {
	return s.W.Transitions(dst, tstop)
}

// ZeroBased subtracts a waveform's value at t=0, producing the zero-state
// transient part used by the MATEX superposition: the DC subtask carries
// u(0), each source-group subtask carries u(t)-u(0).
type ZeroBased struct {
	W Waveform
}

// Value implements Waveform.
func (z ZeroBased) Value(t float64) float64 { return z.W.Value(t) - z.W.Value(0) }

// Transitions implements Waveform.
func (z ZeroBased) Transitions(dst []float64, tstop float64) []float64 {
	return z.W.Transitions(dst, tstop)
}

// Shifted delays a waveform by Offset seconds.
type Shifted struct {
	W      Waveform
	Offset float64
}

// Value implements Waveform.
func (s Shifted) Value(t float64) float64 { return s.W.Value(t - s.Offset) }

// Transitions implements Waveform.
func (s Shifted) Transitions(dst []float64, tstop float64) []float64 {
	inner := s.W.Transitions(nil, tstop-s.Offset)
	for _, t := range inner {
		shifted := t + s.Offset
		if shifted >= 0 && shifted <= tstop {
			dst = append(dst, shifted)
		}
	}
	return dst
}
