package waveform

import (
	"fmt"
	"math"
)

// Smooth sources (SIN, EXP) are not piecewise linear, so they cannot be
// integrated exactly by the matrix-exponential step. They satisfy the
// Waveform contract by densifying their transition spots: between two
// consecutive spots the source is treated as linear, which bounds the local
// input-model error the same way SPICE breakpointing does. The spot density
// is chosen from the source's own characteristic time.

// Sin is a SPICE SIN(vo va freq td theta) source: offset VO, amplitude VA,
// frequency Freq, delay Delay and damping Theta.
type Sin struct {
	VO, VA float64
	Freq   float64
	Delay  float64
	Theta  float64
	// SpotsPerPeriod controls the transition densification (default 32).
	SpotsPerPeriod int
}

// Validate checks the source parameters.
func (s *Sin) Validate() error {
	if s.Freq <= 0 {
		return fmt.Errorf("waveform: SIN needs positive frequency, got %g", s.Freq)
	}
	if s.Delay < 0 || s.Theta < 0 {
		return fmt.Errorf("waveform: SIN with negative delay or damping")
	}
	return nil
}

// Value implements Waveform.
func (s *Sin) Value(t float64) float64 {
	if t < s.Delay {
		return s.VO
	}
	tt := t - s.Delay
	v := s.VA * math.Sin(2*math.Pi*s.Freq*tt)
	if s.Theta > 0 {
		v *= math.Exp(-tt * s.Theta)
	}
	return s.VO + v
}

// Transitions implements Waveform by sampling SpotsPerPeriod points per
// period from the delay to tstop.
func (s *Sin) Transitions(dst []float64, tstop float64) []float64 {
	if s.Freq <= 0 {
		return dst
	}
	spp := s.SpotsPerPeriod
	if spp <= 0 {
		spp = 32
	}
	step := 1 / (s.Freq * float64(spp))
	if s.Delay > 0 && s.Delay <= tstop {
		dst = append(dst, s.Delay)
	}
	for t := s.Delay; t <= tstop; t += step {
		dst = append(dst, t)
	}
	return dst
}

// Exp is a SPICE EXP(v1 v2 td1 tau1 td2 tau2) source: rise from V1 toward
// V2 starting at TD1 with time constant Tau1, then decay back toward V1
// starting at TD2 with time constant Tau2.
type Exp struct {
	V1, V2      float64
	TD1, Tau1   float64
	TD2, Tau2   float64
	SpotsPerTau int // transition densification (default 16 per tau)
}

// Validate checks the source parameters.
func (e *Exp) Validate() error {
	if e.Tau1 <= 0 || e.Tau2 <= 0 {
		return fmt.Errorf("waveform: EXP needs positive time constants")
	}
	if e.TD2 < e.TD1 {
		return fmt.Errorf("waveform: EXP decay must start after the rise (td2 %g < td1 %g)", e.TD2, e.TD1)
	}
	return nil
}

// Value implements Waveform (standard SPICE EXP semantics).
func (e *Exp) Value(t float64) float64 {
	v := e.V1
	if t >= e.TD1 {
		v += (e.V2 - e.V1) * (1 - math.Exp(-(t-e.TD1)/e.Tau1))
	}
	if t >= e.TD2 {
		v += (e.V1 - e.V2) * (1 - math.Exp(-(t-e.TD2)/e.Tau2))
	}
	return v
}

// Transitions implements Waveform: spots every tau/SpotsPerTau over the
// active intervals (about eight time constants each).
func (e *Exp) Transitions(dst []float64, tstop float64) []float64 {
	spt := e.SpotsPerTau
	if spt <= 0 {
		spt = 16
	}
	emit := func(start, tau float64) []float64 {
		if start > tstop {
			return dst
		}
		dst = append(dst, start)
		step := tau / float64(spt)
		end := math.Min(start+8*tau, tstop)
		for t := start; t <= end; t += step {
			dst = append(dst, t)
		}
		return dst
	}
	dst = emit(e.TD1, e.Tau1)
	dst = emit(e.TD2, e.Tau2)
	return dst
}
