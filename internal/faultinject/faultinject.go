// Package faultinject is the deterministic fault-injection harness behind
// the chaos test suites: a registry of named injection points threaded
// through the distributed transport (internal/dist) and the durable job
// journal (internal/serve), with no build tags — a nil *Registry compiles
// to a two-instruction no-op on every hot path, so production binaries pay
// nothing and tests arm exactly the faults they assert on.
//
// Faults are deterministic: a Plan either fires on an exact check count
// (After/Times) or probabilistically from a seeded PRNG, so a chaos run
// that found a bug replays bit-identically from its seed. Every injected
// failure surfaces as a typed *Error satisfying errors.Is(err, ErrInjected),
// which the suites use to separate "the fault we planted" from a real bug.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Point names one injection site. The constants below are the registered
// sites; Points enumerates them so the chaos suite can assert coverage.
type Point string

const (
	// DialFail fails a worker dial (pool construction, revival, health
	// probe) as if the host were unreachable.
	DialFail Point = "dial-fail"
	// RPCSever severs a worker connection mid-RPC from the client side, as
	// if the TCP session dropped while a reply was in flight.
	RPCSever Point = "rpc-sever"
	// WorkerCrash crashes a matexd worker process after N completed tasks:
	// the serving loop severs every connection without draining, exactly
	// what kill -9 looks like from the scheduler's side.
	WorkerCrash Point = "worker-crash"
	// CheckpointWrite fails a durable checkpoint append (torn disk write).
	CheckpointWrite Point = "checkpoint-write"
	// JournalAppend fails a job-journal append (disk full).
	JournalAppend Point = "journal-append"
)

// Points lists every registered injection point. The chaos suite iterates
// it to prove each point has at least one test injecting it.
var Points = []Point{DialFail, RPCSever, WorkerCrash, CheckpointWrite, JournalAppend}

// ErrInjected is the sentinel every injected fault matches via errors.Is,
// regardless of which Point produced it.
var ErrInjected = errors.New("faultinject: injected fault")

// Error is the typed error an armed point returns when it fires.
type Error struct {
	// Point is the site that fired.
	Point Point
	// Hit is the 1-based count of this firing at its point.
	Hit int
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: %s (injected fault #%d)", e.Point, e.Hit)
}

// Is makes errors.Is(err, ErrInjected) true for every injected fault.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// IsInjected reports whether err originates from an armed injection point.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// Plan decides when an armed point fires, counted in Check calls:
//
//   - After skips the first After checks (0 = fire from the first check).
//   - Times bounds how many checks fire after that (0 = every one).
//   - Prob, when in (0,1), gates each otherwise-eligible firing on the
//     registry's seeded PRNG — deterministic for a fixed seed and call
//     sequence.
type Plan struct {
	After int
	Times int
	Prob  float64
}

// rule is an armed plan with its live counters.
type rule struct {
	plan   Plan
	checks int
	fired  int
}

// Registry holds the armed plans and the seeded PRNG. The zero value is
// not used; construct with New. A nil *Registry is valid everywhere and
// never fires — the production configuration.
type Registry struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[Point]*rule
}

// New returns a registry whose probabilistic decisions derive from seed.
func New(seed int64) *Registry {
	return &Registry{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[Point]*rule),
	}
}

// Arm installs (or replaces) the plan for a point, resetting its counters.
func (r *Registry) Arm(p Point, plan Plan) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rules[p] = &rule{plan: plan}
}

// Disarm removes the plan for a point; its fired count is forgotten.
func (r *Registry) Disarm(p Point) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.rules, p)
}

// Check consults the point and returns a typed *Error when it fires, nil
// otherwise. Safe on a nil registry (always nil).
func (r *Registry) Check(p Point) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ru, ok := r.rules[p]
	if !ok {
		return nil
	}
	ru.checks++
	if ru.checks <= ru.plan.After {
		return nil
	}
	if ru.plan.Times > 0 && ru.fired >= ru.plan.Times {
		return nil
	}
	if ru.plan.Prob > 0 && ru.plan.Prob < 1 && r.rng.Float64() >= ru.plan.Prob {
		return nil
	}
	ru.fired++
	return &Error{Point: p, Hit: ru.fired}
}

// Hit reports whether the point fires at this check — Check for call sites
// that model the fault themselves (severing a connection) rather than
// returning an error. Safe on a nil registry (always false).
func (r *Registry) Hit(p Point) bool { return r.Check(p) != nil }

// Fired returns how many times the point has fired. Safe on nil (0).
func (r *Registry) Fired(p Point) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ru, ok := r.rules[p]; ok {
		return ru.fired
	}
	return 0
}

// Checks returns how many times the point has been consulted (armed points
// only). Safe on nil (0).
func (r *Registry) Checks(p Point) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ru, ok := r.rules[p]; ok {
		return ru.checks
	}
	return 0
}
