package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	for _, p := range Points {
		if err := r.Check(p); err != nil {
			t.Fatalf("nil registry fired %s: %v", p, err)
		}
		if r.Hit(p) {
			t.Fatalf("nil registry Hit(%s) = true", p)
		}
		if r.Fired(p) != 0 || r.Checks(p) != 0 {
			t.Fatalf("nil registry has counters for %s", p)
		}
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if err := r.Check(DialFail); err != nil {
			t.Fatalf("unarmed point fired: %v", err)
		}
	}
	if r.Checks(DialFail) != 0 {
		t.Fatalf("unarmed point counted checks: %d", r.Checks(DialFail))
	}
}

func TestAfterTimesWindow(t *testing.T) {
	r := New(1)
	r.Arm(RPCSever, Plan{After: 2, Times: 3})
	var fired []int
	for i := 1; i <= 10; i++ {
		if r.Check(RPCSever) != nil {
			fired = append(fired, i)
		}
	}
	want := []int{3, 4, 5}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
	if got := r.Fired(RPCSever); got != 3 {
		t.Fatalf("Fired = %d, want 3", got)
	}
	if got := r.Checks(RPCSever); got != 10 {
		t.Fatalf("Checks = %d, want 10", got)
	}
}

func TestTypedError(t *testing.T) {
	r := New(1)
	r.Arm(JournalAppend, Plan{Times: 1})
	err := r.Check(JournalAppend)
	if err == nil {
		t.Fatal("expected injected error")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("errors.Is(ErrInjected) = false for %v", err)
	}
	if !IsInjected(err) {
		t.Fatalf("IsInjected = false for %v", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != JournalAppend || fe.Hit != 1 {
		t.Fatalf("unexpected typed error: %+v", fe)
	}
	if IsInjected(errors.New("plain")) {
		t.Fatal("IsInjected matched a plain error")
	}
}

func TestProbDeterministicForSeed(t *testing.T) {
	run := func(seed int64) []bool {
		r := New(seed)
		r.Arm(WorkerCrash, Plan{Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = r.Hit(WorkerCrash)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at check %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical firing sequence (suspicious)")
	}
	any, all := false, true
	for _, f := range a {
		any = any || f
		all = all && f
	}
	if !any || all {
		t.Fatalf("Prob=0.5 over 64 checks fired degenerate pattern any=%v all=%v", any, all)
	}
}

func TestDisarmAndRearmResetsCounters(t *testing.T) {
	r := New(1)
	r.Arm(CheckpointWrite, Plan{Times: 2})
	r.Check(CheckpointWrite)
	r.Disarm(CheckpointWrite)
	if err := r.Check(CheckpointWrite); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if r.Fired(CheckpointWrite) != 0 {
		t.Fatal("Fired survives Disarm")
	}
	r.Arm(CheckpointWrite, Plan{After: 1, Times: 1})
	if err := r.Check(CheckpointWrite); err != nil {
		t.Fatal("re-armed counters not reset: fired on first check despite After=1")
	}
	if err := r.Check(CheckpointWrite); err == nil {
		t.Fatal("re-armed point never fired")
	}
}

func TestConcurrentChecksRace(t *testing.T) {
	r := New(7)
	r.Arm(DialFail, Plan{Prob: 0.3})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Check(DialFail)
				r.Fired(DialFail)
			}
		}()
	}
	wg.Wait()
	if got := r.Checks(DialFail); got != 8*200 {
		t.Fatalf("Checks = %d, want %d", got, 8*200)
	}
}
