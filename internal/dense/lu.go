package dense

import (
	"errors"
	"math"
)

// ErrSingular is returned when a dense factorization meets a zero pivot.
var ErrSingular = errors.New("dense: matrix is singular")

// LU is a dense LU factorization with partial pivoting, P·A = L·U stored
// packed in a single matrix.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// FactorLU factors the square matrix a (a is not modified).
func FactorLU(a *Matrix) (*LU, error) {
	if a.R != a.C {
		return nil, errors.New("dense: FactorLU needs a square matrix")
	}
	n := a.R
	lu := a.Clone()
	piv := make([]int, n)
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				max = v
				p = i
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		piv[k] = p
		if p != k {
			sign = -sign
			for j := 0; j < n; j++ {
				lu.Data[k*n+j], lu.Data[p*n+j] = lu.Data[p*n+j], lu.Data[k*n+j]
			}
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			l := lu.At(i, k) / pivot
			lu.Set(i, k, l)
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Data[i*n+j] -= l * lu.Data[k*n+j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve computes x = A⁻¹ b, returning a new slice.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.R
	if len(b) != n {
		panic("dense: LU.Solve dimension mismatch")
	}
	x := append([]float64(nil), b...)
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward (unit lower).
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : i*n+i]
		var s float64
		for j, l := range row {
			s += l * x[j]
		}
		x[i] -= s
	}
	// Backward.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveMatrix computes A⁻¹ B column by column.
func (f *LU) SolveMatrix(b *Matrix) *Matrix {
	n := f.lu.R
	if b.R != n {
		panic("dense: SolveMatrix dimension mismatch")
	}
	out := New(n, b.C)
	col := make([]float64, n)
	for j := 0; j < b.C; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		x := f.Solve(col)
		for i := 0; i < n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.R
	d := float64(f.sign)
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve computes x = A⁻¹ b for a dense square a (convenience wrapper).
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns A⁻¹.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveMatrix(Eye(a.R)), nil
}
