package dense

import (
	"errors"
	"math"
	"sort"
)

// SymEig computes the eigenvalues (ascending) and eigenvectors of a symmetric
// matrix with the cyclic Jacobi method. The columns of the returned matrix
// are the eigenvectors. a must be symmetric; only its lower triangle is
// trusted.
func SymEig(a *Matrix, tol float64, maxSweeps int) ([]float64, *Matrix, error) {
	if a.R != a.C {
		return nil, nil, errors.New("dense: SymEig needs a square matrix")
	}
	n := a.R
	if tol <= 0 {
		tol = 1e-12
	}
	if maxSweeps <= 0 {
		maxSweeps = 100
	}
	m := a.Clone()
	// Symmetrize defensively.
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	vecs := Eye(n)
	scale := m.FrobNorm()
	if scale == 0 {
		return make([]float64, n), vecs, nil
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if math.Sqrt(2*off) <= tol*scale {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) <= tol*scale/float64(n*n) {
					continue
				}
				app := m.At(p, p)
				aqq := m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply rotation J(p,q,θ)ᵀ M J(p,q,θ).
				for k := 0; k < n; k++ {
					mkp := m.At(k, p)
					mkq := m.At(k, q)
					m.Set(k, p, c*mkp-s*mkq)
					m.Set(k, q, s*mkp+c*mkq)
				}
				for k := 0; k < n; k++ {
					mpk := m.At(p, k)
					mqk := m.At(q, k)
					m.Set(p, k, c*mpk-s*mqk)
					m.Set(q, k, s*mpk+c*mqk)
				}
				for k := 0; k < n; k++ {
					vkp := vecs.At(k, p)
					vkq := vecs.At(k, q)
					vecs.Set(k, p, c*vkp-s*vkq)
					vecs.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	// Sort ascending, permuting eigenvector columns along.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return vals[idx[x]] < vals[idx[y]] })
	sorted := make([]float64, n)
	sortedVecs := New(n, n)
	for k, id := range idx {
		sorted[k] = vals[id]
		for i := 0; i < n; i++ {
			sortedVecs.Set(i, k, vecs.At(i, id))
		}
	}
	return sorted, sortedVecs, nil
}
