package dense

import "math"

// Padé approximant coefficients for expm (Higham, "The scaling and squaring
// method for the matrix exponential revisited", 2005). padeCoeffs[m] are the
// b_i for the degree-m diagonal approximant.
var padeCoeffs = map[int][]float64{
	3: {120, 60, 12, 1},
	5: {30240, 15120, 3360, 420, 30, 1},
	7: {17297280, 8648640, 1995840, 277200, 25200, 1512, 56, 1},
	9: {17643225600, 8821612800, 2075673600, 302702400, 30270240, 2162160, 110880, 3960, 90, 1},
	13: {64764752532480000, 32382376266240000, 7771770303897600, 1187353796428800,
		129060195264000, 10559470521600, 670442572800, 33522128640, 1323241920,
		40840800, 960960, 16380, 182, 1},
}

// theta_m bounds for backward-stable degree selection (Higham 2005, Table 2.3).
var padeTheta = map[int]float64{
	3:  1.495585217958292e-2,
	5:  2.539398330063230e-1,
	7:  9.504178996162932e-1,
	9:  2.097847961257068,
	13: 5.371920351148152,
}

// Expm returns e^A computed with the scaling-and-squaring Padé method, the
// same algorithm family as MATLAB's expm used by the paper for the small
// Hessenberg matrices H_m. A must be square.
func Expm(a *Matrix) (*Matrix, error) {
	if a.R != a.C {
		panic("dense: Expm needs a square matrix")
	}
	n := a.R
	if n == 0 {
		return New(0, 0), nil
	}
	if n == 1 {
		out := New(1, 1)
		out.Data[0] = math.Exp(a.Data[0])
		return out, nil
	}
	norm := a.OneNorm()
	for _, m := range []int{3, 5, 7, 9} {
		if norm <= padeTheta[m] {
			return padeExp(a, m)
		}
	}
	// Degree 13 with scaling and squaring.
	s := 0
	if norm > padeTheta[13] {
		s = int(math.Ceil(math.Log2(norm / padeTheta[13])))
	}
	scaled := a.Clone().Scale(math.Ldexp(1, -s))
	r, err := padeExp(scaled, 13)
	if err != nil {
		return nil, err
	}
	for i := 0; i < s; i++ {
		r = Mul(r, r)
	}
	return r, nil
}

// padeExp evaluates the degree-m diagonal Padé approximant r_m(A).
func padeExp(a *Matrix, m int) (*Matrix, error) {
	b := padeCoeffs[m]
	n := a.R
	id := Eye(n)
	a2 := Mul(a, a)
	var u, v *Matrix
	switch m {
	case 3, 5, 7, 9:
		// powers[k] = A^{2k}.
		powers := []*Matrix{id, a2}
		for 2*(len(powers)-1) < m-1 {
			powers = append(powers, Mul(powers[len(powers)-1], a2))
		}
		usum := New(n, n)
		vsum := New(n, n)
		for k := 0; 2*k+1 <= m; k++ {
			usum = Add(1, usum, b[2*k+1], powers[k])
		}
		for k := 0; 2*k <= m; k++ {
			vsum = Add(1, vsum, b[2*k], powers[k])
		}
		u = Mul(a, usum)
		v = vsum
	case 13:
		a4 := Mul(a2, a2)
		a6 := Mul(a4, a2)
		w1 := Add(b[13], a6, b[11], a4)
		w1 = Add(1, w1, b[9], a2)
		w2 := Add(b[7], a6, b[5], a4)
		w2 = Add(1, w2, b[3], a2)
		w2 = Add(1, w2, b[1], id)
		u = Mul(a, Add(1, Mul(a6, w1), 1, w2))
		z1 := Add(b[12], a6, b[10], a4)
		z1 = Add(1, z1, b[8], a2)
		z2 := Add(b[6], a6, b[4], a4)
		z2 = Add(1, z2, b[2], a2)
		z2 = Add(1, z2, b[0], id)
		v = Add(1, Mul(a6, z1), 1, z2)
	default:
		panic("dense: unsupported Padé degree")
	}
	// r = (V-U)⁻¹ (V+U).
	f, err := FactorLU(Add(1, v, -1, u))
	if err != nil {
		return nil, err
	}
	return f.SolveMatrix(Add(1, v, 1, u)), nil
}

// ExpmVec returns e^{tA}·v without forming e^{tA} when A is larger than the
// crossover (it still forms the exponential; the helper exists to keep call
// sites tidy and to allow future optimization).
func ExpmVec(a *Matrix, t float64, v []float64) ([]float64, error) {
	e, err := Expm(a.Clone().Scale(t))
	if err != nil {
		return nil, err
	}
	return e.MulVec(v), nil
}
