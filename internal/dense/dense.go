// Package dense implements small dense matrix kernels for the MATEX
// simulator: the matrix exponential by Padé approximation with scaling and
// squaring (the role MATLAB's expm plays in the paper), dense LU solves for
// Hessenberg-sized systems, and a Jacobi eigensolver used to verify
// stiffness measurements.
//
// The matrices here are the m-by-m Krylov projections (m is a few dozen at
// most), so clarity wins over blocking or vectorization tricks.
package dense

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	R, C int
	Data []float64 // len R*C, Data[i*C+j]
}

// New returns a zeroed r-by-c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("dense: negative dimension")
	}
	return &Matrix{R: r, C: c, Data: make([]float64, r*c)}
}

// Eye returns the n-by-n identity.
func Eye(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// FromRows builds a matrix from row slices (all the same length).
func FromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("dense: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{R: m.R, C: m.C, Data: append([]float64(nil), m.Data...)}
}

// Slice returns the top-left r-by-c submatrix as a copy.
func (m *Matrix) Slice(r, c int) *Matrix {
	if r > m.R || c > m.C {
		panic("dense: Slice out of range")
	}
	s := New(r, c)
	for i := 0; i < r; i++ {
		copy(s.Data[i*c:(i+1)*c], m.Data[i*m.C:i*m.C+c])
	}
	return s
}

// Mul returns a*b.
func Mul(a, b *Matrix) *Matrix {
	if a.C != b.R {
		panic(fmt.Sprintf("dense: Mul dimension mismatch %dx%d * %dx%d", a.R, a.C, b.R, b.C))
	}
	out := New(a.R, b.C)
	for i := 0; i < a.R; i++ {
		arow := a.Data[i*a.C : (i+1)*a.C]
		orow := out.Data[i*b.C : (i+1)*b.C]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Data[k*b.C : (k+1)*b.C]
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out
}

// MulVec returns a*x as a new vector.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.C {
		panic("dense: MulVec dimension mismatch")
	}
	y := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		row := m.Data[i*m.C : (i+1)*m.C]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Add returns alpha*a + beta*b.
func Add(alpha float64, a *Matrix, beta float64, b *Matrix) *Matrix {
	if a.R != b.R || a.C != b.C {
		panic("dense: Add dimension mismatch")
	}
	out := New(a.R, a.C)
	for i := range out.Data {
		out.Data[i] = alpha*a.Data[i] + beta*b.Data[i]
	}
	return out
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			t.Data[j*t.C+i] = m.Data[i*m.C+j]
		}
	}
	return t
}

// OneNorm returns the maximum absolute column sum.
func (m *Matrix) OneNorm() float64 {
	var max float64
	for j := 0; j < m.C; j++ {
		var s float64
		for i := 0; i < m.R; i++ {
			s += math.Abs(m.Data[i*m.C+j])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// InfNorm returns the maximum absolute row sum.
func (m *Matrix) InfNorm() float64 {
	var max float64
	for i := 0; i < m.R; i++ {
		var s float64
		for j := 0; j < m.C; j++ {
			s += math.Abs(m.Data[i*m.C+j])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// FrobNorm returns the Frobenius norm.
func (m *Matrix) FrobNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equalish reports element-wise equality within tol.
func Equalish(a, b *Matrix, tol float64) bool {
	if a.R != b.R || a.C != b.C {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}
