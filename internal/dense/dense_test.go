package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equalish(c, want, 1e-14) {
		t.Fatalf("Mul = %v, want %v", c.Data, want.Data)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := a.MulVec([]float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestTransposeAddScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	at := a.Transpose()
	if at.At(0, 1) != 3 || at.At(1, 0) != 2 {
		t.Fatal("Transpose wrong")
	}
	s := Add(2, a, -1, a)
	if !Equalish(s, a, 1e-15) {
		t.Fatal("2A - A != A")
	}
	c := a.Clone().Scale(3)
	if c.At(1, 1) != 12 {
		t.Fatal("Scale wrong")
	}
}

func TestNorms(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {-3, 4}})
	if a.OneNorm() != 6 {
		t.Errorf("OneNorm = %v", a.OneNorm())
	}
	if a.InfNorm() != 7 {
		t.Errorf("InfNorm = %v", a.InfNorm())
	}
	if math.Abs(a.FrobNorm()-math.Sqrt(30)) > 1e-14 {
		t.Errorf("FrobNorm = %v", a.FrobNorm())
	}
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 30} {
		a := randMatrix(rng, n)
		// Make well conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		r := a.MulVec(x)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-9 {
				t.Fatalf("n=%d residual[%d] = %g", n, i, r[i]-b[i])
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 8)
	for i := 0; i < 8; i++ {
		a.Set(i, i, a.At(i, i)+10)
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Equalish(Mul(a, inv), Eye(8), 1e-10) {
		t.Fatal("A·A⁻¹ != I")
	}
}

func TestDet(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 3}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-6) > 1e-14 {
		t.Errorf("Det = %v, want 6", f.Det())
	}
	// Pivoted determinant keeps its sign right.
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	f2, err := FactorLU(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f2.Det()+1) > 1e-14 {
		t.Errorf("Det = %v, want -1", f2.Det())
	}
}

func TestExpmZero(t *testing.T) {
	e, err := Expm(New(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !Equalish(e, Eye(3), 1e-15) {
		t.Fatal("expm(0) != I")
	}
}

func TestExpmDiagonal(t *testing.T) {
	a := New(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, -2)
	a.Set(2, 2, 10)
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []float64{math.E, math.Exp(-2), math.Exp(10)} {
		if math.Abs(e.At(i, i)-v) > 1e-9*v {
			t.Errorf("expm diag[%d] = %v, want %v", i, e.At(i, i), v)
		}
	}
}

func TestExpmNilpotent(t *testing.T) {
	// A = [[0,1],[0,0]] -> e^A = [[1,1],[0,1]] exactly.
	a := FromRows([][]float64{{0, 1}, {0, 0}})
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{1, 1}, {0, 1}})
	if !Equalish(e, want, 1e-14) {
		t.Fatalf("expm nilpotent = %v", e.Data)
	}
}

func TestExpmRotation(t *testing.T) {
	// A = [[0,-θ],[θ,0]] -> e^A is rotation by θ.
	theta := 1.3
	a := FromRows([][]float64{{0, -theta}, {theta, 0}})
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{
		{math.Cos(theta), -math.Sin(theta)},
		{math.Sin(theta), math.Cos(theta)},
	})
	if !Equalish(e, want, 1e-12) {
		t.Fatalf("expm rotation = %v, want %v", e.Data, want.Data)
	}
}

func TestExpmLargeNormScaling(t *testing.T) {
	// Stiff diagonal + coupling with norm far above theta13 exercises the
	// scaling-and-squaring path.
	a := FromRows([][]float64{{-1000, 1}, {0, -1}})
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: e^A = [[e^-1000, (e^-1 - e^-1000)/999], [0, e^-1]].
	if math.Abs(e.At(1, 1)-math.Exp(-1)) > 1e-12 {
		t.Errorf("e[1][1] = %v, want %v", e.At(1, 1), math.Exp(-1))
	}
	want01 := (math.Exp(-1) - math.Exp(-1000)) / 999
	if math.Abs(e.At(0, 1)-want01) > 1e-12 {
		t.Errorf("e[0][1] = %v, want %v", e.At(0, 1), want01)
	}
	if e.At(1, 0) != 0 {
		t.Errorf("e[1][0] = %v, want 0", e.At(1, 0))
	}
}

// Property: expm(A)·expm(-A) == I for random small matrices.
func TestQuickExpmInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randMatrix(rng, n)
		ea, err := Expm(a)
		if err != nil {
			return false
		}
		ena, err := Expm(a.Clone().Scale(-1))
		if err != nil {
			return false
		}
		return Equalish(Mul(ea, ena), Eye(n), 1e-8)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: expm(A/2)² == expm(A).
func TestQuickExpmSquaring(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randMatrix(rng, n)
		ea, err := Expm(a)
		if err != nil {
			return false
		}
		eh, err := Expm(a.Clone().Scale(0.5))
		if err != nil {
			return false
		}
		return Equalish(Mul(eh, eh), ea, 1e-8)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestExpmVec(t *testing.T) {
	a := FromRows([][]float64{{-1, 0}, {0, -2}})
	y, err := ExpmVec(a, 2, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-math.Exp(-2)) > 1e-12 || math.Abs(y[1]-math.Exp(-4)) > 1e-12 {
		t.Fatalf("ExpmVec = %v", y)
	}
}

func TestSymEigKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := SymEig(a, 1e-13, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-10 || math.Abs(vals[1]-3) > 1e-10 {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// Check A v = λ v for each column.
	for k := 0; k < 2; k++ {
		v := []float64{vecs.At(0, k), vecs.At(1, k)}
		av := a.MulVec(v)
		for i := range av {
			if math.Abs(av[i]-vals[k]*v[i]) > 1e-10 {
				t.Fatalf("A v != λ v for k=%d", k)
			}
		}
	}
}

func TestSymEigRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 12
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	vals, vecs, err := SymEig(a, 1e-13, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Trace preserved.
	var tr, sum float64
	for i := 0; i < n; i++ {
		tr += a.At(i, i)
		sum += vals[i]
	}
	if math.Abs(tr-sum) > 1e-9 {
		t.Errorf("trace %v != eigenvalue sum %v", tr, sum)
	}
	// Residual per eigenpair.
	for k := 0; k < n; k++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = vecs.At(i, k)
		}
		av := a.MulVec(v)
		for i := range av {
			if math.Abs(av[i]-vals[k]*v[i]) > 1e-8 {
				t.Fatalf("eigenpair %d residual too large", k)
			}
		}
	}
	// Ascending order.
	for k := 1; k < n; k++ {
		if vals[k] < vals[k-1] {
			t.Fatal("eigenvalues not sorted")
		}
	}
}

func TestSliceAndFromRowsPanics(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	s := a.Slice(1, 2)
	if s.At(0, 0) != 1 || s.At(0, 1) != 2 {
		t.Fatal("Slice wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1}, {2, 3}})
}

func BenchmarkExpm30(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := randMatrix(rng, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Expm(a); err != nil {
			b.Fatal(err)
		}
	}
}
