package dense

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// triDense expands (d, e) into the full symmetric tridiagonal matrix.
func triDense(d, e []float64) *Matrix {
	n := len(d)
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, d[i])
		if i+1 < n {
			m.Set(i, i+1, e[i])
			m.Set(i+1, i, e[i])
		}
	}
	return m
}

func TestSymTriEigMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 5, 8, 13, 21, 34} {
		for trial := 0; trial < 5; trial++ {
			d := make([]float64, n)
			e := make([]float64, n)
			for i := range d {
				d[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2))
			}
			for i := 0; i < n-1; i++ {
				e[i] = rng.NormFloat64()
			}
			a := triDense(d, e[:maxInt(n-1, 0)])
			scale := a.FrobNorm()
			if scale == 0 {
				scale = 1
			}

			dd := append([]float64(nil), d...)
			ee := append([]float64(nil), e...)
			z := Eye(n)
			if err := SymTriEig(dd, ee, z); err != nil {
				t.Fatalf("n=%d trial=%d: %v", n, trial, err)
			}

			// Eigenpair residual ‖A·q − λq‖ and orthonormality of Q.
			for k := 0; k < n; k++ {
				var res float64
				for i := 0; i < n; i++ {
					var s float64
					for j := 0; j < n; j++ {
						s += a.At(i, j) * z.At(j, k)
					}
					s -= dd[k] * z.At(i, k)
					res += s * s
				}
				if math.Sqrt(res) > 1e-10*scale {
					t.Errorf("n=%d trial=%d: eigenpair %d residual %g", n, trial, k, math.Sqrt(res))
				}
			}
			for i := 0; i < n; i++ {
				for j := i; j < n; j++ {
					var s float64
					for k := 0; k < n; k++ {
						s += z.At(k, i) * z.At(k, j)
					}
					want := 0.0
					if i == j {
						want = 1
					}
					if math.Abs(s-want) > 1e-10 {
						t.Errorf("n=%d trial=%d: QᵀQ[%d][%d] = %g", n, trial, i, j, s)
					}
				}
			}

			// Spectrum matches the Jacobi reference.
			ref, _, err := SymEig(a, 1e-14, 200)
			if err != nil {
				t.Fatal(err)
			}
			got := append([]float64(nil), dd...)
			sort.Float64s(got)
			for k := range ref {
				if math.Abs(got[k]-ref[k]) > 1e-9*scale {
					t.Errorf("n=%d trial=%d: eigenvalue %d = %g, Jacobi %g", n, trial, k, got[k], ref[k])
				}
			}
		}
	}
}

func TestSymTriEigClusteredAndZero(t *testing.T) {
	// Repeated eigenvalues and an all-zero matrix must not trip the QL sweep.
	d := []float64{2, 2, 2, 2}
	e := []float64{0, 0, 0}
	dd := append([]float64(nil), d...)
	ee := append(append([]float64(nil), e...), 0)
	z := Eye(4)
	if err := SymTriEig(dd, ee, z); err != nil {
		t.Fatal(err)
	}
	for _, v := range dd {
		if v != 2 {
			t.Errorf("clustered eigenvalue drifted to %g", v)
		}
	}
	zero := make([]float64, 3)
	if err := SymTriEig(zero, make([]float64, 3), Eye(3)); err != nil {
		t.Fatal(err)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
