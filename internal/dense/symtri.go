package dense

import (
	"errors"
	"math"
)

// ErrEigNoConvergence is returned when the implicit QL iteration fails to
// deflate a subdiagonal entry within the iteration budget.
var ErrEigNoConvergence = errors.New("dense: symmetric tridiagonal QL iteration did not converge")

// SymTriEig diagonalizes a symmetric tridiagonal matrix in place with the
// implicit-shift QL method (EISPACK tql2). It exists for the Lanczos fast
// path, where the Krylov projection is tridiagonal and the whole
// convergence-check/evaluation pipeline must run without heap allocations:
// unlike SymEig it takes every buffer from the caller and allocates nothing.
//
//   - d holds the diagonal on entry and the eigenvalues on return
//     (unsorted — callers treat the spectrum as a set).
//   - e holds the subdiagonal in e[0..n-2] on entry and is destroyed;
//     e must have length n (e[n-1] is scratch).
//   - z must be an n×n matrix; pass the identity to receive the
//     eigenvectors as columns, or an existing basis transform to accumulate
//     onto. Eigenvector k is the column z[:,k] for eigenvalue d[k].
func SymTriEig(d, e []float64, z *Matrix) error {
	n := len(d)
	if len(e) < n {
		panic("dense: SymTriEig needs len(e) >= len(d)")
	}
	if z.R != n || z.C != n {
		panic("dense: SymTriEig eigenvector matrix dimension mismatch")
	}
	if n <= 1 {
		return nil
	}
	e[n-1] = 0
	const maxIter = 50
	for l := 0; l < n; l++ {
		iter := 0
		for {
			// Find the first negligible subdiagonal at or after l.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= machEps*dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter++; iter > maxIter {
				return ErrEigNoConvergence
			}
			// Implicit Wilkinson shift.
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			i := m - 1
			for ; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					// Recover by deflating: annihilation underflowed.
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				// Accumulate the rotation into the eigenvector columns.
				zi := z.Data
				for k := 0; k < n; k++ {
					row := zi[k*z.C:]
					f := row[i+1]
					row[i+1] = s*row[i] + c*f
					row[i] = c*row[i] - s*f
				}
			}
			if r == 0 && i >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

// machEps is the double-precision unit roundoff.
const machEps = 2.220446049250313e-16
