package netlist

import (
	"bytes"
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/waveform"
)

// buildRoundTripDeck assembles a deck exercising every card the writer
// emits: all element kinds, every source shape, awkward float values
// (needing all 17 significant digits, huge/tiny magnitudes), .tran and
// .print cards.
func buildRoundTripDeck(t *testing.T) *Deck {
	t.Helper()
	c := circuit.New("round trip torture deck")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	// Values chosen to break lossy formatting: 1/3 needs 17 digits,
	// 0.1 is inexact in binary, the rest span the SI range.
	must(c.AddR("R1", "n1", "n2", 1.0/3.0))
	must(c.AddR("R2", "n2", "0", 1e6))
	must(c.AddR("Rsmall", "n1", "0", 25.4e-6))
	must(c.AddC("C1", "n1", "0", 0.1e-12))
	must(c.AddC("C2", "n2", "0", 2.2e-15))
	must(c.AddL("L1", "n2", "n3", 1e-9))
	c.AddV("V1", "vdd", "0", waveform.DC(1.8))
	c.AddV("Vexp", "n3", "0", &waveform.Exp{V1: 0, V2: 1.5, TD1: 1e-9, Tau1: 2e-10, TD2: 3e-9, Tau2: 4e-10})
	c.AddI("I1", "n1", "0", &waveform.Pulse{
		V1: 0, V2: 0.017 + 1.0/7.0, Delay: 1.1e-9, Rise: 0.123e-9,
		Fall: 0.456e-9, Width: 2.5e-9, Period: 7.77e-9,
	})
	pwl, err := waveform.NewPWL(
		[]float64{0, 1e-10, 1.0 / 3.0 * 1e-9, 5e-9},
		[]float64{0, 1e-3, 2.0 / 30000.0, 0})
	must(err)
	c.AddI("Ipwl", "n2", "0", pwl)
	c.AddI("Isin", "n3", "0", &waveform.Sin{VO: 0.5, VA: 0.25, Freq: 1e9, Delay: 2e-10, Theta: 1e7})
	return &Deck{
		Circuit:  c,
		TranStep: 1e-11,
		TranStop: 10.000000000000002e-9, // not representable at 12 digits
		Prints:   []string{"n1", "n2", "CasePreserved"},
	}
}

// TestWriteParseRoundTrip: Write → Parse must reproduce the same Deck —
// elements, PULSE/PWL/SIN/EXP/DC parameters, .tran window and .print
// cards — bit for bit.
func TestWriteParseRoundTrip(t *testing.T) {
	deck := buildRoundTripDeck(t)
	var buf bytes.Buffer
	if err := Write(&buf, deck); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-parsing written deck: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(got, deck) {
		t.Fatalf("round trip changed the deck:\nwritten:\n%s\ngot:  %#v\nwant: %#v", buf.String(), got, deck)
	}

	// A second Write of the re-parsed deck must be byte-identical (the
	// writer is a fixed point under its own output).
	var buf2 bytes.Buffer
	if err := Write(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("writer not idempotent:\nfirst:\n%s\nsecond:\n%s", buf.String(), buf2.String())
	}
}

// TestRoundTripRandomValues: shortest-representation formatting survives
// Write→Parse for adversarial float64 values, including denormals and
// values that need every significand bit.
func TestRoundTripRandomValues(t *testing.T) {
	// A deterministic xorshift so failures reproduce.
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	c := circuit.New("random values")
	var want []float64
	for i := 0; i < 200; i++ {
		v := math.Float64frombits(next())
		v = math.Abs(v)
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		// Keep magnitudes a resistor accepts (positive, finite).
		for v > 1e30 {
			v *= 1e-40
		}
		for v < 1e-30 {
			v *= 1e40
		}
		if err := c.AddR("R"+strconv.Itoa(len(want)), "a", "b", v); err != nil {
			t.Fatal(err)
		}
		want = append(want, v)
	}
	deck := &Deck{Circuit: c}
	var buf bytes.Buffer
	if err := Write(&buf, deck); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Circuit.Resistors) != len(want) {
		t.Fatalf("parsed %d resistors, wrote %d", len(got.Circuit.Resistors), len(want))
	}
	for i, r := range got.Circuit.Resistors {
		if r.R != want[i] {
			t.Fatalf("resistor %d: wrote %v (%b), parsed %v (%b)", i, want[i], want[i], r.R, r.R)
		}
	}
}

// TestParseValueSISuffixes: the SI-suffix edge cases the writer's plain
// scientific notation must coexist with — "meg" before "m", "mil", unit
// letters after the suffix, exponent forms.
func TestParseValueSISuffixes(t *testing.T) {
	// Suffixed expectations are mantissa × multiplier with a runtime
	// float64 multiply, matching the parser's arithmetic exactly (Go
	// constant expressions are exact, the parser's product is not: 3 *
	// 1e-15 at runtime is one ulp away from the literal 3e-15).
	cases := []struct {
		in         string
		mant, mult float64
	}{
		{"10p", 10, 1e-12},
		{"10ps", 10, 1e-12}, // trailing unit letter after suffix
		{"1.5meg", 1.5, 1e6},
		{"1.5MEG", 1.5, 1e6},
		{"1.5m", 1.5, 1e-3}, // "m" is milli, not mega
		{"25mil", 25, 25.4e-6},
		{"2.2u", 2.2, 1e-6},
		{"3f", 3, 1e-15},
		{"4t", 4, 1e12},
		{"5g", 5, 1e9},
		{"6k", 6, 1e3},
		{"7n", 7, 1e-9},
		{"0.5", 0.5, 1},
		{"1e-12", 1e-12, 1},
		{"1E-12", 1e-12, 1},
		{"1e+06", 1e6, 1}, // the writer's exponent spelling
		{"-2.5e-3", -2.5e-3, 1},
		{"3.3v", 3.3, 1}, // unit letter, no suffix
		{"100a", 100, 1}, // ampere unit letter
		{"1.25e2k", 1.25e2, 1e3},
	}
	for _, tc := range cases {
		got, err := ParseValue(tc.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", tc.in, err)
			continue
		}
		want := tc.mant
		if tc.mult != 1 {
			want = tc.mant * tc.mult
		}
		if got != want {
			t.Errorf("ParseValue(%q) = %g, want %g", tc.in, got, want)
		}
	}
	for _, bad := range []string{"", "x", "--3", "1..2", "e9"} {
		if v, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q) = %g, want error", bad, v)
		}
	}
}

// TestRoundTripThroughSuffixedDeck: a deck written with SI suffixes by
// hand parses to the same values the writer then re-emits losslessly.
func TestRoundTripThroughSuffixedDeck(t *testing.T) {
	in := `* suffixed deck
R1 a b 1.5k
C1 a 0 2.2u
L1 b 0 10n
I1 a 0 PULSE(0 1m 1n 100p 100p 2n 8n)
.tran 10p 8n
.print tran v(a)
.end
`
	d1, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d1); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	// Titles differ ("suffixed deck" is preserved) — compare the rest.
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("suffixed round trip changed the deck:\n%s\nd1: %#v\nd2: %#v", buf.String(), d1, d2)
	}
	if d2.Circuit.Resistors[0].R != 1500 {
		t.Fatalf("R = %g, want 1500", d2.Circuit.Resistors[0].R)
	}
	if d2.TranStop != 8e-9 {
		t.Fatalf("TranStop = %g, want 8e-9", d2.TranStop)
	}
}
