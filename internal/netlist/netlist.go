// Package netlist parses and writes the SPICE subset used by the IBM power
// grid benchmarks: R/C/L/V/I element cards with numeric SI suffixes, PULSE
// and PWL source specifications, comment and continuation lines, and the
// .tran/.print/.end control cards.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/waveform"
)

// Deck is a parsed netlist: the circuit plus its analysis directives.
type Deck struct {
	Circuit *circuit.Circuit
	// TranStep and TranStop come from the .tran card (0 when absent).
	TranStep, TranStop float64
	// Prints lists the node names from .print tran v(...) cards.
	Prints []string
}

// Parse reads a netlist deck.
func Parse(r io.Reader) (*Deck, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)

	// Join continuation lines ("+" prefix) into logical lines.
	var logical []string
	var lineNums []int
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimRight(sc.Text(), " \t\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "+") {
			if len(logical) == 0 {
				return nil, fmt.Errorf("netlist: line %d: continuation with no previous line", ln)
			}
			logical[len(logical)-1] += " " + strings.TrimSpace(line[1:])
			continue
		}
		logical = append(logical, strings.TrimSpace(line))
		lineNums = append(lineNums, ln)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}

	deck := &Deck{Circuit: circuit.New("")}
	for i, line := range logical {
		if err := parseLine(deck, line, i == 0); err != nil {
			return nil, fmt.Errorf("netlist: line %d: %w", lineNums[i], err)
		}
	}
	return deck, nil
}

func parseLine(deck *Deck, line string, first bool) error {
	if strings.HasPrefix(line, "*") {
		if first && deck.Circuit.Title == "" {
			deck.Circuit.Title = strings.TrimSpace(line[1:])
		}
		return nil
	}
	lower := strings.ToLower(line)
	if strings.HasPrefix(lower, ".") {
		return parseControl(deck, line, lower)
	}
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return fmt.Errorf("element card %q has too few fields", line)
	}
	name := fields[0]
	switch strings.ToLower(name[:1]) {
	case "r":
		if len(fields) < 4 {
			return fmt.Errorf("resistor %s needs two nodes and a value", name)
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return fmt.Errorf("resistor %s: %w", name, err)
		}
		return deck.Circuit.AddR(name, fields[1], fields[2], v)
	case "c":
		if len(fields) < 4 {
			return fmt.Errorf("capacitor %s needs two nodes and a value", name)
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return fmt.Errorf("capacitor %s: %w", name, err)
		}
		return deck.Circuit.AddC(name, fields[1], fields[2], v)
	case "l":
		if len(fields) < 4 {
			return fmt.Errorf("inductor %s needs two nodes and a value", name)
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return fmt.Errorf("inductor %s: %w", name, err)
		}
		return deck.Circuit.AddL(name, fields[1], fields[2], v)
	case "v":
		w, err := parseSource(strings.Join(fields[3:], " "))
		if err != nil {
			return fmt.Errorf("voltage source %s: %w", name, err)
		}
		deck.Circuit.AddV(name, fields[1], fields[2], w)
		return nil
	case "i":
		w, err := parseSource(strings.Join(fields[3:], " "))
		if err != nil {
			return fmt.Errorf("current source %s: %w", name, err)
		}
		deck.Circuit.AddI(name, fields[1], fields[2], w)
		return nil
	default:
		return fmt.Errorf("unsupported element %q", name)
	}
}

func parseControl(deck *Deck, line, lower string) error {
	fields := strings.Fields(lower)
	switch fields[0] {
	case ".end", ".op", ".options", ".option":
		return nil
	case ".tran":
		if len(fields) < 3 {
			return fmt.Errorf(".tran needs a step and stop time")
		}
		step, err := ParseValue(fields[1])
		if err != nil {
			return fmt.Errorf(".tran step: %w", err)
		}
		stop, err := ParseValue(fields[2])
		if err != nil {
			return fmt.Errorf(".tran stop: %w", err)
		}
		deck.TranStep, deck.TranStop = step, stop
		return nil
	case ".print":
		// .print tran v(node) v(node2) ... — keep the original case of node
		// names by re-scanning the raw line.
		raw := strings.Fields(line)
		for _, f := range raw[1:] {
			fl := strings.ToLower(f)
			if strings.HasPrefix(fl, "v(") && strings.HasSuffix(f, ")") {
				deck.Prints = append(deck.Prints, f[2:len(f)-1])
			}
		}
		return nil
	default:
		// Unknown control cards are ignored (the IBM decks carry a few).
		return nil
	}
}

// parseSource parses a source specification: a bare value (DC), "DC v",
// "PULSE(v1 v2 td tr tf pw per)", or "PWL(t1 v1 t2 v2 ...)".
func parseSource(spec string) (waveform.Waveform, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return nil, fmt.Errorf("empty source specification")
	}
	lower := strings.ToLower(s)
	switch {
	case strings.HasPrefix(lower, "pulse"):
		args, err := parenArgs(s)
		if err != nil {
			return nil, err
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("PULSE needs at least v1 v2, got %d args", len(args))
		}
		vals := make([]float64, 7)
		for i := 0; i < len(args) && i < 7; i++ {
			v, err := ParseValue(args[i])
			if err != nil {
				return nil, fmt.Errorf("PULSE arg %d: %w", i+1, err)
			}
			vals[i] = v
		}
		// SPICE order: V1 V2 TD TR TF PW PER.
		p := &waveform.Pulse{
			V1: vals[0], V2: vals[1], Delay: vals[2],
			Rise: vals[3], Fall: vals[4], Width: vals[5], Period: vals[6],
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return p, nil
	case strings.HasPrefix(lower, "pwl"):
		args, err := parenArgs(s)
		if err != nil {
			return nil, err
		}
		if len(args) == 0 || len(args)%2 != 0 {
			return nil, fmt.Errorf("PWL needs an even number of args, got %d", len(args))
		}
		ts := make([]float64, len(args)/2)
		vs := make([]float64, len(args)/2)
		for i := range ts {
			var err error
			if ts[i], err = ParseValue(args[2*i]); err != nil {
				return nil, fmt.Errorf("PWL time %d: %w", i, err)
			}
			if vs[i], err = ParseValue(args[2*i+1]); err != nil {
				return nil, fmt.Errorf("PWL value %d: %w", i, err)
			}
		}
		return waveform.NewPWL(ts, vs)
	case strings.HasPrefix(lower, "sin"):
		args, err := parenArgs(s)
		if err != nil {
			return nil, err
		}
		if len(args) < 3 {
			return nil, fmt.Errorf("SIN needs at least vo va freq, got %d args", len(args))
		}
		vals := make([]float64, 5)
		for i := 0; i < len(args) && i < 5; i++ {
			v, err := ParseValue(args[i])
			if err != nil {
				return nil, fmt.Errorf("SIN arg %d: %w", i+1, err)
			}
			vals[i] = v
		}
		w := &waveform.Sin{VO: vals[0], VA: vals[1], Freq: vals[2], Delay: vals[3], Theta: vals[4]}
		if err := w.Validate(); err != nil {
			return nil, err
		}
		return w, nil
	case strings.HasPrefix(lower, "exp"):
		args, err := parenArgs(s)
		if err != nil {
			return nil, err
		}
		if len(args) < 6 {
			return nil, fmt.Errorf("EXP needs v1 v2 td1 tau1 td2 tau2, got %d args", len(args))
		}
		vals := make([]float64, 6)
		for i := 0; i < 6; i++ {
			v, err := ParseValue(args[i])
			if err != nil {
				return nil, fmt.Errorf("EXP arg %d: %w", i+1, err)
			}
			vals[i] = v
		}
		w := &waveform.Exp{V1: vals[0], V2: vals[1], TD1: vals[2], Tau1: vals[3], TD2: vals[4], Tau2: vals[5]}
		if err := w.Validate(); err != nil {
			return nil, err
		}
		return w, nil
	case strings.HasPrefix(lower, "dc"):
		rest := strings.TrimSpace(s[2:])
		v, err := ParseValue(rest)
		if err != nil {
			return nil, fmt.Errorf("DC value: %w", err)
		}
		return waveform.DC(v), nil
	default:
		v, err := ParseValue(strings.Fields(s)[0])
		if err != nil {
			return nil, fmt.Errorf("source value: %w", err)
		}
		return waveform.DC(v), nil
	}
}

// parenArgs extracts the whitespace/comma separated arguments inside the
// first (...) group, tolerating "PULSE (" spacing and missing parentheses
// ("PULSE 0 1 ..." appears in the wild).
func parenArgs(s string) ([]string, error) {
	open := strings.IndexByte(s, '(')
	var inner string
	if open < 0 {
		// No parentheses: arguments follow the keyword.
		fs := strings.Fields(s)
		return fs[1:], nil
	}
	close := strings.LastIndexByte(s, ')')
	if close < open {
		return nil, fmt.Errorf("unbalanced parentheses in %q", s)
	}
	inner = s[open+1 : close]
	inner = strings.ReplaceAll(inner, ",", " ")
	return strings.Fields(inner), nil
}

// siSuffix maps SPICE magnitude suffixes to multipliers. "meg" must be
// matched before "m".
var siSuffix = []struct {
	suffix string
	mult   float64
}{
	{"meg", 1e6}, {"mil", 25.4e-6},
	{"t", 1e12}, {"g", 1e9}, {"k", 1e3},
	{"m", 1e-3}, {"u", 1e-6}, {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15},
}

// ParseValue parses a SPICE numeric literal with optional SI suffix and
// trailing unit letters (e.g. "10ps", "1.5MEG", "2.2u", "0.5").
func ParseValue(s string) (float64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" {
		return 0, fmt.Errorf("empty numeric literal")
	}
	// Split mantissa from the first alphabetic character that is not part of
	// an exponent.
	cut := len(t)
	for i := 0; i < len(t); i++ {
		ch := t[i]
		if ch >= 'a' && ch <= 'z' {
			if ch == 'e' && i+1 < len(t) && (t[i+1] == '+' || t[i+1] == '-' || (t[i+1] >= '0' && t[i+1] <= '9')) {
				continue // exponent
			}
			cut = i
			break
		}
	}
	mant, rest := t[:cut], t[cut:]
	v, err := strconv.ParseFloat(mant, 64)
	if err != nil {
		return 0, fmt.Errorf("bad numeric literal %q", s)
	}
	if rest == "" {
		return v, nil
	}
	for _, sfx := range siSuffix {
		if strings.HasPrefix(rest, sfx.suffix) {
			return v * sfx.mult, nil
		}
	}
	// Unknown trailing letters (e.g. "s", "v", "a" units) are ignored per
	// SPICE convention.
	return v, nil
}
