package netlist

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/matex-sim/matex/internal/waveform"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"10", 10}, {"10p", 10e-12}, {"10ps", 10e-12}, {"1.5n", 1.5e-9},
		{"2.2u", 2.2e-6}, {"3m", 3e-3}, {"4k", 4e3}, {"5MEG", 5e6},
		{"1e-9", 1e-9}, {"1E3", 1e3}, {"-0.5", -0.5}, {"1f", 1e-15},
		{"2g", 2e9}, {"7t", 7e12}, {"1.8v", 1.8}, {"100s", 100},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-15*math.Abs(c.want) {
			t.Errorf("ParseValue(%q) = %g, want %g", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "1..2"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q) should fail", bad)
		}
	}
}

const sampleDeck = `* ibmpg-style test deck
R1 n1_100_100 n1_100_200 1.5
r2 n1_100_200 0 2k
C1 n1_100_200 0 10f
L1 n1_100_100 n2_100_100 1p
V1 n2_100_100 0 1.8
i1 n1_100_200 0 PULSE(0 0.01 1n 0.1n 0.1n 2n 8n)
i2 n1_100_100 gnd PWL(0 0 1n 0.02 2n 0)
.tran 10p 10n
.print tran v(n1_100_200) v(n1_100_100)
.end
`

func TestParseSampleDeck(t *testing.T) {
	deck, err := Parse(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	c := deck.Circuit
	if c.Title != "ibmpg-style test deck" {
		t.Errorf("title = %q", c.Title)
	}
	if len(c.Resistors) != 2 || len(c.Capacitors) != 1 || len(c.Inductors) != 1 {
		t.Fatalf("element counts: R=%d C=%d L=%d", len(c.Resistors), len(c.Capacitors), len(c.Inductors))
	}
	if len(c.VSources) != 1 || len(c.ISources) != 2 {
		t.Fatalf("source counts: V=%d I=%d", len(c.VSources), len(c.ISources))
	}
	if c.Resistors[1].R != 2000 {
		t.Errorf("r2 = %v, want 2000", c.Resistors[1].R)
	}
	if math.Abs(c.Capacitors[0].C-10e-15) > 1e-12*10e-15 {
		t.Errorf("C1 = %v", c.Capacitors[0].C)
	}
	p, ok := c.ISources[0].Wave.(*waveform.Pulse)
	if !ok {
		t.Fatalf("i1 wave type %T", c.ISources[0].Wave)
	}
	near := func(got, want float64) bool { return math.Abs(got-want) <= 1e-12*math.Abs(want) }
	if !near(p.V2, 0.01) || !near(p.Delay, 1e-9) || !near(p.Rise, 0.1e-9) ||
		!near(p.Fall, 0.1e-9) || !near(p.Width, 2e-9) || !near(p.Period, 8e-9) {
		t.Errorf("pulse = %+v", *p)
	}
	if _, ok := c.ISources[1].Wave.(*waveform.PWL); !ok {
		t.Fatalf("i2 wave type %T", c.ISources[1].Wave)
	}
	if deck.TranStep != 10e-12 || deck.TranStop != 10e-9 {
		t.Errorf("tran = %g %g", deck.TranStep, deck.TranStop)
	}
	if len(deck.Prints) != 2 || deck.Prints[0] != "n1_100_200" {
		t.Errorf("prints = %v", deck.Prints)
	}
}

func TestParseContinuationLines(t *testing.T) {
	deck, err := Parse(strings.NewReader(
		"* cont\ni1 a 0 PULSE(0 1\n+ 1n 0.1n 0.1n\n+ 2n 8n)\nR1 a 0 1\n.end\n"))
	if err != nil {
		t.Fatal(err)
	}
	p := deck.Circuit.ISources[0].Wave.(*waveform.Pulse)
	if p.Period != 8e-9 {
		t.Errorf("pulse period = %v", p.Period)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"+ orphan continuation\n",
		"R1 a 0\n",     // missing value
		"R1 a 0 0\n",   // zero resistance
		"Q1 a b c 1\n", // unsupported element
		"V1 a 0 PULSE(0)\n",
		"I1 a 0 PWL(0 1 2)\n", // odd args
		"C1 a 0 xyz\n",
		".tran 1n\n", // missing stop
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	deck, err := Parse(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, deck); err != nil {
		t.Fatal(err)
	}
	deck2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	c1, c2 := deck.Circuit, deck2.Circuit
	if len(c1.Resistors) != len(c2.Resistors) || len(c1.ISources) != len(c2.ISources) ||
		len(c1.Capacitors) != len(c2.Capacitors) || len(c1.Inductors) != len(c2.Inductors) ||
		len(c1.VSources) != len(c2.VSources) {
		t.Fatal("element counts changed in round trip")
	}
	if deck2.TranStop != deck.TranStop || len(deck2.Prints) != len(deck.Prints) {
		t.Fatal("directives changed in round trip")
	}
	p1 := c1.ISources[0].Wave.(*waveform.Pulse)
	p2 := c2.ISources[0].Wave.(*waveform.Pulse)
	for _, pair := range [][2]float64{
		{p1.V1, p2.V1}, {p1.V2, p2.V2}, {p1.Delay, p2.Delay},
		{p1.Rise, p2.Rise}, {p1.Width, p2.Width}, {p1.Fall, p2.Fall}, {p1.Period, p2.Period},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-12*(1+math.Abs(pair[0])) {
			t.Fatalf("pulse changed: %+v vs %+v", *p1, *p2)
		}
	}
	// Values preserved exactly for a representative sample of times.
	for _, tt := range []float64{0, 0.5e-9, 1.05e-9, 3e-9, 9e-9} {
		w1 := c1.ISources[1].Wave
		w2 := c2.ISources[1].Wave
		if math.Abs(w1.Value(tt)-w2.Value(tt)) > 1e-15 {
			t.Fatalf("PWL value changed at t=%g", tt)
		}
	}
}

func TestBuild(t *testing.T) {
	deck, err := Parse(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := deck.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.N == 0 || sys.C.NNZ() == 0 || sys.G.NNZ() == 0 {
		t.Fatalf("degenerate system: N=%d", sys.N)
	}
}

func TestParsePulseWithoutParens(t *testing.T) {
	deck, err := Parse(strings.NewReader("i1 a 0 PULSE 0 1 1n 0.1n 0.1n 2n 8n\nR1 a 0 1\n.end\n"))
	if err != nil {
		t.Fatal(err)
	}
	p, ok := deck.Circuit.ISources[0].Wave.(*waveform.Pulse)
	if !ok || p.Period != 8e-9 {
		t.Fatalf("pulse = %+v", p)
	}
}

func TestParseDCKeyword(t *testing.T) {
	deck, err := Parse(strings.NewReader("V1 a 0 DC 1.8\nR1 a 0 1\n.end\n"))
	if err != nil {
		t.Fatal(err)
	}
	if dc, ok := deck.Circuit.VSources[0].Wave.(waveform.DC); !ok || float64(dc) != 1.8 {
		t.Fatalf("wave = %#v", deck.Circuit.VSources[0].Wave)
	}
}
