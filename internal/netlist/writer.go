package netlist

import (
	"bufio"
	"fmt"
	"io"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/waveform"
)

// Write emits the deck as a SPICE netlist readable by Parse (and by SPICE
// itself for the card subset used here).
func Write(w io.Writer, deck *Deck) error {
	bw := bufio.NewWriter(w)
	c := deck.Circuit
	title := c.Title
	if title == "" {
		title = "netlist"
	}
	fmt.Fprintf(bw, "* %s\n", title)
	for _, e := range c.Resistors {
		fmt.Fprintf(bw, "%s %s %s %.12g\n", e.Name, e.A, e.B, e.R)
	}
	for _, e := range c.Capacitors {
		fmt.Fprintf(bw, "%s %s %s %.12g\n", e.Name, e.A, e.B, e.C)
	}
	for _, e := range c.Inductors {
		fmt.Fprintf(bw, "%s %s %s %.12g\n", e.Name, e.A, e.B, e.L)
	}
	for _, e := range c.VSources {
		fmt.Fprintf(bw, "%s %s %s %s\n", e.Name, e.Pos, e.Neg, formatWave(e.Wave))
	}
	for _, e := range c.ISources {
		fmt.Fprintf(bw, "%s %s %s %s\n", e.Name, e.Pos, e.Neg, formatWave(e.Wave))
	}
	if deck.TranStop > 0 {
		fmt.Fprintf(bw, ".tran %.12g %.12g\n", deck.TranStep, deck.TranStop)
	}
	for _, p := range deck.Prints {
		fmt.Fprintf(bw, ".print tran v(%s)\n", p)
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

func formatWave(w waveform.Waveform) string {
	switch s := w.(type) {
	case waveform.DC:
		return fmt.Sprintf("%.12g", float64(s))
	case *waveform.Pulse:
		return fmt.Sprintf("PULSE(%.12g %.12g %.12g %.12g %.12g %.12g %.12g)",
			s.V1, s.V2, s.Delay, s.Rise, s.Fall, s.Width, s.Period)
	case *waveform.PWL:
		out := "PWL("
		for i := range s.T {
			if i > 0 {
				out += " "
			}
			out += fmt.Sprintf("%.12g %.12g", s.T[i], s.V[i])
		}
		return out + ")"
	case *waveform.Sin:
		return fmt.Sprintf("SIN(%.12g %.12g %.12g %.12g %.12g)", s.VO, s.VA, s.Freq, s.Delay, s.Theta)
	case *waveform.Exp:
		return fmt.Sprintf("EXP(%.12g %.12g %.12g %.12g %.12g %.12g)", s.V1, s.V2, s.TD1, s.Tau1, s.TD2, s.Tau2)
	case waveform.Scaled:
		// Scaled/Shifted wrappers have no SPICE spelling; emit the effective
		// waveform when it is a scaled pulse, else fall back to DC at 0.
		if p, ok := s.W.(*waveform.Pulse); ok {
			return formatWave(&waveform.Pulse{
				V1: s.Gain * p.V1, V2: s.Gain * p.V2,
				Delay: p.Delay, Rise: p.Rise, Width: p.Width, Fall: p.Fall, Period: p.Period,
			})
		}
		return fmt.Sprintf("%.12g", s.Value(0))
	default:
		return fmt.Sprintf("%.12g", w.Value(0))
	}
}

// Build stamps the deck's circuit with power-grid defaults (supplies
// collapsed) and returns the MNA system.
func (d *Deck) Build() (*circuit.System, error) {
	return circuit.Stamp(d.Circuit, circuit.StampOptions{CollapseSupplies: true})
}
