package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/waveform"
)

// fnum formats a float with the shortest decimal string that parses back
// to exactly the same float64. The writer used to round through %.12g,
// which silently perturbed values needing all 17 significant digits — a
// Write→Parse round trip then no longer reproduced the Deck bit for bit
// (the property the round-trip tests pin down).
func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Write emits the deck as a SPICE netlist readable by Parse (and by SPICE
// itself for the card subset used here). Numeric values round-trip
// exactly: re-parsing the output reproduces the same element values,
// source parameters and .tran window bit for bit.
func Write(w io.Writer, deck *Deck) error {
	bw := bufio.NewWriter(w)
	c := deck.Circuit
	title := c.Title
	if title == "" {
		title = "netlist"
	}
	fmt.Fprintf(bw, "* %s\n", title)
	for _, e := range c.Resistors {
		fmt.Fprintf(bw, "%s %s %s %s\n", e.Name, e.A, e.B, fnum(e.R))
	}
	for _, e := range c.Capacitors {
		fmt.Fprintf(bw, "%s %s %s %s\n", e.Name, e.A, e.B, fnum(e.C))
	}
	for _, e := range c.Inductors {
		fmt.Fprintf(bw, "%s %s %s %s\n", e.Name, e.A, e.B, fnum(e.L))
	}
	for _, e := range c.VSources {
		fmt.Fprintf(bw, "%s %s %s %s\n", e.Name, e.Pos, e.Neg, formatWave(e.Wave))
	}
	for _, e := range c.ISources {
		fmt.Fprintf(bw, "%s %s %s %s\n", e.Name, e.Pos, e.Neg, formatWave(e.Wave))
	}
	if deck.TranStop > 0 {
		fmt.Fprintf(bw, ".tran %s %s\n", fnum(deck.TranStep), fnum(deck.TranStop))
	}
	for _, p := range deck.Prints {
		fmt.Fprintf(bw, ".print tran v(%s)\n", p)
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

func formatWave(w waveform.Waveform) string {
	switch s := w.(type) {
	case waveform.DC:
		return fnum(float64(s))
	case *waveform.Pulse:
		return fmt.Sprintf("PULSE(%s %s %s %s %s %s %s)",
			fnum(s.V1), fnum(s.V2), fnum(s.Delay), fnum(s.Rise), fnum(s.Fall), fnum(s.Width), fnum(s.Period))
	case *waveform.PWL:
		out := "PWL("
		for i := range s.T {
			if i > 0 {
				out += " "
			}
			out += fnum(s.T[i]) + " " + fnum(s.V[i])
		}
		return out + ")"
	case *waveform.Sin:
		return fmt.Sprintf("SIN(%s %s %s %s %s)", fnum(s.VO), fnum(s.VA), fnum(s.Freq), fnum(s.Delay), fnum(s.Theta))
	case *waveform.Exp:
		return fmt.Sprintf("EXP(%s %s %s %s %s %s)", fnum(s.V1), fnum(s.V2), fnum(s.TD1), fnum(s.Tau1), fnum(s.TD2), fnum(s.Tau2))
	case waveform.Scaled:
		// Scaled/Shifted wrappers have no SPICE spelling; emit the effective
		// waveform when it is a scaled pulse, else fall back to DC at 0.
		if p, ok := s.W.(*waveform.Pulse); ok {
			return formatWave(&waveform.Pulse{
				V1: s.Gain * p.V1, V2: s.Gain * p.V2,
				Delay: p.Delay, Rise: p.Rise, Width: p.Width, Fall: p.Fall, Period: p.Period,
			})
		}
		return fnum(s.Value(0))
	default:
		return fnum(w.Value(0))
	}
}

// Build stamps the deck's circuit with power-grid defaults (supplies
// collapsed) and returns the MNA system.
func (d *Deck) Build() (*circuit.System, error) {
	return circuit.Stamp(d.Circuit, circuit.StampOptions{CollapseSupplies: true})
}
