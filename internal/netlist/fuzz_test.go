package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseRoundTrip drives the parser with arbitrary deck text. Decks the
// parser accepts must survive a write→parse→write round trip: the writer's
// output is itself a valid deck, and rewriting the reparsed deck reproduces
// it byte for byte (the writer is a canonical form).
func FuzzParseRoundTrip(f *testing.F) {
	f.Add([]byte("* title\nR1 n1 0 1k\nV1 n1 0 1\n.end\n"))
	f.Add([]byte("* pdn\nr1 a b 0.5\nc1 b 0 1e-12\ni1 b 0 PULSE(0 1m 0 1n 1n 5n 10n)\n.tran 1n 10n\n.print tran v(b)\n.end\n"))
	f.Add([]byte("* cont\nR1 n1 n2 1\n+ \nV1 n1 0 2\n.end\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		deck, err := Parse(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var out1 strings.Builder
		if err := Write(&out1, deck); err != nil {
			t.Fatalf("write of parsed deck failed: %v", err)
		}
		deck2, err := Parse(strings.NewReader(out1.String()))
		if err != nil {
			t.Fatalf("reparse of written deck failed: %v\ndeck:\n%s", err, out1.String())
		}
		var out2 strings.Builder
		if err := Write(&out2, deck2); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		if out1.String() != out2.String() {
			t.Fatalf("write→parse→write is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", out1.String(), out2.String())
		}
	})
}
