package netlist

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/matex-sim/matex/internal/waveform"
)

func TestParseSinSource(t *testing.T) {
	deck, err := Parse(strings.NewReader("i1 a 0 SIN(0.5 1m 1g 1n 2e8)\nR1 a 0 1\nC1 a 0 1p\n.end\n"))
	if err != nil {
		t.Fatal(err)
	}
	s, ok := deck.Circuit.ISources[0].Wave.(*waveform.Sin)
	if !ok {
		t.Fatalf("wave type %T", deck.Circuit.ISources[0].Wave)
	}
	if s.VO != 0.5 || s.VA != 1e-3 || s.Freq != 1e9 || math.Abs(s.Delay-1e-9) > 1e-21 || s.Theta != 2e8 {
		t.Fatalf("sin = %+v", *s)
	}
	// Short form without delay/theta.
	deck2, err := Parse(strings.NewReader("V1 a 0 SIN(0 1 60)\nR1 a 0 1\n.end\n"))
	if err != nil {
		t.Fatal(err)
	}
	s2 := deck2.Circuit.VSources[0].Wave.(*waveform.Sin)
	if s2.Freq != 60 || s2.Delay != 0 {
		t.Fatalf("sin short form = %+v", *s2)
	}
}

func TestParseExpSource(t *testing.T) {
	deck, err := Parse(strings.NewReader("i1 a 0 EXP(0 2m 1n 0.1n 3n 0.2n)\nR1 a 0 1\n.end\n"))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := deck.Circuit.ISources[0].Wave.(*waveform.Exp)
	if !ok {
		t.Fatalf("wave type %T", deck.Circuit.ISources[0].Wave)
	}
	if e.V2 != 2e-3 || math.Abs(e.TD2-3e-9) > 1e-21 {
		t.Fatalf("exp = %+v", *e)
	}
}

func TestSmoothSourceErrors(t *testing.T) {
	cases := []string{
		"i1 a 0 SIN(0 1)\nR1 a 0 1\n.end\n",                 // too few args
		"i1 a 0 SIN(0 1 0)\nR1 a 0 1\n.end\n",               // zero frequency
		"i1 a 0 EXP(0 1 1n 0.1n)\nR1 a 0 1\n.end\n",         // too few args
		"i1 a 0 EXP(0 1 2n 0.1n 1n 0.1n)\nR1 a 0 1\n.end\n", // decay before rise
		"i1 a 0 SIN(0 x 1)\nR1 a 0 1\n.end\n",               // bad literal
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSmoothRoundTrip(t *testing.T) {
	src := "* smooth\nR1 a 0 1\nC1 a 0 1p\ni1 a 0 SIN(0 0.001 1e9 1e-9 0)\ni2 a 0 EXP(0 0.002 1e-9 1e-10 3e-9 2e-10)\n.end\n"
	deck, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, deck); err != nil {
		t.Fatal(err)
	}
	deck2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	for _, tt := range []float64{0, 0.3e-9, 1.2e-9, 2.7e-9, 4e-9} {
		for k := 0; k < 2; k++ {
			v1 := deck.Circuit.ISources[k].Wave.Value(tt)
			v2 := deck2.Circuit.ISources[k].Wave.Value(tt)
			if math.Abs(v1-v2) > 1e-15 {
				t.Fatalf("source %d changed at t=%g: %g vs %g", k, tt, v1, v2)
			}
		}
	}
}
