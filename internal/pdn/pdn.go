// Package pdn generates the power-distribution-network workloads used by the
// MATEX experiments: regular RC(L) grid models with VDD pads and pulsed
// current loads (stand-ins for the proprietary IBM power grid benchmarks,
// scaled to laptop size with the same structure), stiff RC meshes with a
// controllable stiffness ratio (paper Table 1), and RC ladders with analytic
// solutions for validating the integrators.
package pdn

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/waveform"
)

// GridSpec describes a rectangular power-grid model. The grid has NX*NY
// nodes connected by segment resistances, a capacitance from every node to
// ground, VDD pads at regular intervals (ideal DC sources, optionally behind
// a package RL), and pulsed current loads at pseudo-random interior nodes.
type GridSpec struct {
	Name   string
	NX, NY int
	// RSeg is the metal segment resistance between adjacent nodes (ohms).
	RSeg float64
	// CNode is the decap/parasitic capacitance from each node to ground (F).
	CNode float64
	// VDD is the supply voltage at the pads.
	VDD float64
	// PadPitch places a pad every PadPitch nodes in both directions
	// (minimum 1 pad at each corner region).
	PadPitch int
	// PkgR / PkgL, when positive, insert a series package resistance and
	// inductance between each ideal pad source and the grid.
	PkgR, PkgL float64
	// NumLoads is the number of pulsed current loads.
	NumLoads int
	// NumGroups is the number of distinct bump shapes among the loads
	// (the paper's "Group #").
	NumGroups int
	// IPeak is the peak load current per source (A).
	IPeak float64
	// Tstop is the simulation window used to spread the bump delays (s).
	Tstop float64
	// Seed makes the generated benchmark deterministic.
	Seed int64
}

// NodeName returns the grid node naming, matching the IBM convention of
// layer_x_y names.
func NodeName(x, y int) string { return fmt.Sprintf("n1_%d_%d", x, y) }

// Build generates the circuit for the spec.
func (s GridSpec) Build() (*circuit.Circuit, error) {
	if s.NX < 2 || s.NY < 2 {
		return nil, fmt.Errorf("pdn: grid must be at least 2x2, got %dx%d", s.NX, s.NY)
	}
	if s.RSeg <= 0 || s.CNode <= 0 || s.VDD <= 0 {
		return nil, fmt.Errorf("pdn: RSeg, CNode and VDD must be positive")
	}
	if s.NumGroups <= 0 {
		s.NumGroups = 1
	}
	if s.PadPitch <= 0 {
		s.PadPitch = 8
	}
	rng := rand.New(rand.NewSource(s.Seed))
	c := circuit.New(s.Name)

	// Grid segments.
	nr := 0
	for y := 0; y < s.NY; y++ {
		for x := 0; x < s.NX; x++ {
			if x+1 < s.NX {
				nr++
				if err := c.AddR(fmt.Sprintf("Rh%d", nr), NodeName(x, y), NodeName(x+1, y), s.RSeg); err != nil {
					return nil, err
				}
			}
			if y+1 < s.NY {
				nr++
				if err := c.AddR(fmt.Sprintf("Rv%d", nr), NodeName(x, y), NodeName(x, y+1), s.RSeg); err != nil {
					return nil, err
				}
			}
		}
	}
	// Node capacitances.
	nc := 0
	for y := 0; y < s.NY; y++ {
		for x := 0; x < s.NX; x++ {
			nc++
			if err := c.AddC(fmt.Sprintf("Cn%d", nc), NodeName(x, y), circuit.Ground, s.CNode); err != nil {
				return nil, err
			}
		}
	}
	// Pads.
	np := 0
	for y := 0; y < s.NY; y += s.PadPitch {
		for x := 0; x < s.NX; x += s.PadPitch {
			np++
			if s.PkgR > 0 || s.PkgL > 0 {
				// Ideal source -> package R -> package L -> grid node.
				pad := fmt.Sprintf("pad%d", np)
				mid := fmt.Sprintf("pkg%d", np)
				c.AddV(fmt.Sprintf("Vdd%d", np), pad, circuit.Ground, waveform.DC(s.VDD))
				r := s.PkgR
				if r <= 0 {
					r = 1e-3
				}
				if err := c.AddR(fmt.Sprintf("Rpkg%d", np), pad, mid, r); err != nil {
					return nil, err
				}
				if s.PkgL > 0 {
					if err := c.AddL(fmt.Sprintf("Lpkg%d", np), mid, NodeName(x, y), s.PkgL); err != nil {
						return nil, err
					}
				} else {
					if err := c.AddR(fmt.Sprintf("Rpkg%db", np), mid, NodeName(x, y), 1e-3); err != nil {
						return nil, err
					}
				}
			} else {
				c.AddV(fmt.Sprintf("Vdd%d", np), NodeName(x, y), circuit.Ground, waveform.DC(s.VDD))
			}
		}
	}
	// Load currents with a limited set of bump shapes.
	feats := bumpFeatures(s.NumGroups, s.Tstop, rng)
	for i := 0; i < s.NumLoads; i++ {
		x := rng.Intn(s.NX)
		y := rng.Intn(s.NY)
		f := feats[rng.Intn(len(feats))]
		amp := s.IPeak * (0.5 + rng.Float64())
		c.AddI(fmt.Sprintf("Iload%d", i+1), NodeName(x, y), circuit.Ground, &waveform.Pulse{
			V1: 0, V2: amp,
			Delay: f.Delay, Rise: f.Rise, Width: f.Width, Fall: f.Fall, Period: f.Period,
		})
	}
	return c, nil
}

// bumpFeatures draws n distinct pulse shapes on a coarse timing lattice, so
// different groups still share some transition corners (as real switching
// activity aligned to a clock does).
func bumpFeatures(n int, tstop float64, rng *rand.Rand) []waveform.BumpFeature {
	if tstop <= 0 {
		tstop = 10e-9
	}
	quantum := tstop / 100 // 100 ps lattice for a 10 ns window
	rises := []float64{quantum, 2 * quantum}
	widths := []float64{2 * quantum, 4 * quantum, 8 * quantum}
	seen := make(map[waveform.BumpFeature]bool)
	var feats []waveform.BumpFeature
	for len(feats) < n {
		f := waveform.BumpFeature{
			Delay: float64(1+rng.Intn(60)) * quantum,
			Rise:  rises[rng.Intn(len(rises))],
			Width: widths[rng.Intn(len(widths))],
			Fall:  rises[rng.Intn(len(rises))],
		}
		if f.Delay+f.Rise+f.Width+f.Fall >= tstop {
			continue
		}
		if !seen[f] {
			seen[f] = true
			feats = append(feats, f)
		}
		if len(seen) > 10000 {
			break // lattice exhausted
		}
	}
	return feats
}

// Ladder builds an n-stage RC ladder driven by a unit step current into the
// far end: I -> [R - C] x n -> ground. Its analytic behaviour (single
// dominant time constant for n=1) validates the integrators.
func Ladder(n int, r, cap float64, drive waveform.Waveform) (*circuit.Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("pdn: ladder needs at least one stage")
	}
	c := circuit.New(fmt.Sprintf("rc ladder %d", n))
	node := func(i int) string {
		if i == 0 {
			return circuit.Ground
		}
		return fmt.Sprintf("n%d", i)
	}
	for i := 1; i <= n; i++ {
		if err := c.AddR(fmt.Sprintf("R%d", i), node(i), node(i-1), r); err != nil {
			return nil, err
		}
		if err := c.AddC(fmt.Sprintf("C%d", i), node(i), circuit.Ground, cap); err != nil {
			return nil, err
		}
	}
	c.AddI("Idrive", node(n), circuit.Ground, drive)
	return c, nil
}

// IBMCase names the synthetic stand-ins for the IBM power grid transient
// benchmarks. Scale multiplies the grid edge length (1.0 = the laptop-scale
// default documented in EXPERIMENTS.md).
func IBMCase(name string, scale float64) (GridSpec, error) {
	if scale <= 0 {
		scale = 1
	}
	base := map[string]GridSpec{
		"ibmpg1t": {NX: 30, NY: 30, NumLoads: 100, NumGroups: 20, Seed: 101},
		"ibmpg2t": {NX: 40, NY: 40, NumLoads: 200, NumGroups: 25, Seed: 102},
		"ibmpg3t": {NX: 60, NY: 60, NumLoads: 400, NumGroups: 30, Seed: 103},
		"ibmpg4t": {NX: 70, NY: 70, NumLoads: 400, NumGroups: 8, Seed: 104},
		"ibmpg5t": {NX: 80, NY: 80, NumLoads: 500, NumGroups: 30, Seed: 105},
		"ibmpg6t": {NX: 90, NY: 90, NumLoads: 600, NumGroups: 30, Seed: 106},
	}
	spec, ok := base[name]
	if !ok {
		return GridSpec{}, fmt.Errorf("pdn: unknown IBM case %q", name)
	}
	spec.Name = name
	spec.NX = int(math.Round(float64(spec.NX) * scale))
	spec.NY = int(math.Round(float64(spec.NY) * scale))
	spec.RSeg = 0.5
	spec.CNode = 1e-14
	spec.VDD = 1.8
	spec.PadPitch = 10
	spec.NumLoads = int(math.Round(float64(spec.NumLoads) * scale * scale))
	spec.IPeak = 5e-3
	spec.Tstop = 10e-9
	return spec, nil
}

// IBMSuite lists the six benchmark names in order.
func IBMSuite() []string {
	return []string{"ibmpg1t", "ibmpg2t", "ibmpg3t", "ibmpg4t", "ibmpg5t", "ibmpg6t"}
}
