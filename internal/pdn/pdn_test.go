package pdn

import (
	"math"
	"testing"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/waveform"
)

func TestGridBuildBasics(t *testing.T) {
	spec := GridSpec{
		Name: "test", NX: 8, NY: 8, RSeg: 1, CNode: 1e-14, VDD: 1.8,
		PadPitch: 4, NumLoads: 10, NumGroups: 3, IPeak: 1e-3, Tstop: 10e-9, Seed: 1,
	}
	c, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Capacitors); got != 64 {
		t.Errorf("caps = %d, want 64", got)
	}
	// 2 * 8 * 7 horizontal+vertical segments.
	if got := len(c.Resistors); got != 112 {
		t.Errorf("resistors = %d, want 112", got)
	}
	if got := len(c.ISources); got != 10 {
		t.Errorf("loads = %d, want 10", got)
	}
	if len(c.VSources) == 0 {
		t.Fatal("no pads generated")
	}
	// All loads share at most NumGroups bump shapes.
	feats := make(map[waveform.BumpFeature]bool)
	for _, src := range c.ISources {
		f, ok := waveform.FeatureOf(src.Wave)
		if !ok {
			t.Fatalf("load %s is not a pulse", src.Name)
		}
		feats[f] = true
	}
	if len(feats) > 3 {
		t.Errorf("distinct features = %d, want <= 3", len(feats))
	}
}

func TestGridDCNearVDD(t *testing.T) {
	spec := GridSpec{
		Name: "dc", NX: 10, NY: 10, RSeg: 0.5, CNode: 1e-14, VDD: 1.8,
		PadPitch: 5, NumLoads: 5, NumGroups: 2, IPeak: 1e-3, Tstop: 10e-9, Seed: 2,
	}
	c, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := circuit.Stamp(c, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := sys.DC(sparse.FactorAuto, sparse.OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	// At t=0 the pulse loads are off, so every node sits at VDD.
	for _, name := range sys.NodeNames() {
		v, err := sys.Voltage(x, name)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-1.8) > 1e-9 {
			t.Fatalf("DC voltage at %s = %v, want 1.8", name, v)
		}
	}
}

func TestGridWithPackageRL(t *testing.T) {
	spec := GridSpec{
		Name: "pkg", NX: 6, NY: 6, RSeg: 1, CNode: 1e-14, VDD: 1.0,
		PadPitch: 5, PkgR: 0.01, PkgL: 1e-12,
		NumLoads: 3, NumGroups: 2, IPeak: 1e-3, Tstop: 10e-9, Seed: 3,
	}
	c, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inductors) == 0 {
		t.Fatal("package inductors missing")
	}
	sys, err := circuit.Stamp(c, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := sys.DC(sparse.FactorAuto, sparse.OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sys.Voltage(x, NodeName(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1.0) > 1e-9 {
		t.Errorf("pad-adjacent DC voltage = %v, want 1.0 (inductor shorts in DC)", v)
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := (GridSpec{NX: 1, NY: 5}).Build(); err == nil {
		t.Error("1-wide grid accepted")
	}
	if _, err := (GridSpec{NX: 4, NY: 4}).Build(); err == nil {
		t.Error("zero RSeg accepted")
	}
}

func TestLadderAnalyticDC(t *testing.T) {
	// Single-stage ladder with DC drive I: V = -I*R at the driven node
	// (current source convention draws out of the node).
	c, err := Ladder(1, 100, 1e-12, waveform.DC(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := circuit.Stamp(c, circuit.StampOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := sys.DC(sparse.FactorAuto, sparse.OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sys.Voltage(x, "n1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v+0.1) > 1e-12 {
		t.Errorf("V(n1) = %v, want -0.1", v)
	}
}

func TestLadderValidation(t *testing.T) {
	if _, err := Ladder(0, 1, 1, waveform.DC(0)); err == nil {
		t.Error("zero-stage ladder accepted")
	}
}

func TestIBMCases(t *testing.T) {
	for _, name := range IBMSuite() {
		spec, err := IBMCase(name, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		c, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.NumElements() == 0 {
			t.Fatalf("%s: empty circuit", name)
		}
		sys, err := circuit.Stamp(c, circuit.StampOptions{CollapseSupplies: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, _, err := sys.DC(sparse.FactorAuto, sparse.OrderRCM); err != nil {
			t.Fatalf("%s: DC failed: %v", name, err)
		}
	}
	if _, err := IBMCase("nope", 1); err == nil {
		t.Error("unknown case accepted")
	}
}

func TestIBMCaseDeterministic(t *testing.T) {
	s1, _ := IBMCase("ibmpg1t", 0.5)
	s2, _ := IBMCase("ibmpg1t", 0.5)
	c1, err := s1.Build()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.ISources) != len(c2.ISources) {
		t.Fatal("load counts differ across builds")
	}
	for i := range c1.ISources {
		if c1.ISources[i].Pos != c2.ISources[i].Pos {
			t.Fatal("load placement not deterministic")
		}
	}
}

func TestStiffMeshStiffnessIncreasesWithSpread(t *testing.T) {
	var prev float64
	for _, spread := range []float64{1e2, 1e6} {
		spec := StiffMeshSpec{NX: 6, NY: 6, RSeg: 1, Spread: spread}
		c, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		sys, err := circuit.Stamp(c, circuit.StampOptions{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := Stiffness(sys, 300)
		if err != nil {
			t.Fatal(err)
		}
		if st <= prev {
			t.Fatalf("stiffness %g did not grow from %g at spread %g", st, prev, spread)
		}
		// Stiffness should be within a couple orders of the spread.
		if st < spread/100 || st > spread*100 {
			t.Errorf("stiffness %g far from spread %g", st, spread)
		}
		prev = st
	}
}

func TestStiffMeshValidation(t *testing.T) {
	if _, err := (StiffMeshSpec{NX: 1, NY: 2, Spread: 10}).Build(); err == nil {
		t.Error("tiny mesh accepted")
	}
	if _, err := (StiffMeshSpec{NX: 4, NY: 4, Spread: 0.5}).Build(); err == nil {
		t.Error("spread < 1 accepted")
	}
}

func TestTable1Cases(t *testing.T) {
	cases := Table1Cases()
	if len(cases) != 3 {
		t.Fatalf("Table1Cases = %d, want 3", len(cases))
	}
	for _, spec := range cases {
		c, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		if len(c.ISources) != 1 {
			t.Error("table 1 mesh should have exactly one drive")
		}
	}
}
