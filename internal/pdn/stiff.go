package pdn

import (
	"fmt"
	"math"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/waveform"
)

// StiffMeshSpec builds the stiff RC mesh cases of the paper's Table 1: an
// RC mesh whose node capacitances span many decades, so the eigenvalues of
// A = -C⁻¹G do too. Stiffness is defined as Re(λmin)/Re(λmax) (both
// negative), i.e. the ratio of the fastest to the slowest time constant.
type StiffMeshSpec struct {
	NX, NY int
	// RSeg is the mesh segment resistance.
	RSeg float64
	// CFast is the smallest node capacitance; it pins the fastest time
	// constant (and with it ‖hA‖, the work the standard Krylov subspace
	// must do). Default 5e-15 F.
	CFast float64
	// CBase, when set, overrides the largest node capacitance directly;
	// otherwise it is CFast·Spread.
	CBase float64
	// Spread sets the capacitance range; stiffness scales with Spread.
	Spread float64
	// Drive adds a pulsed current source at the mesh center.
	Drive waveform.Waveform
}

// Build generates the stiff RC mesh. Capacitances are log-spaced across the
// rows, so the mesh mixes fast and slow regions like the paper's "changing
// the entries of C, G".
func (s StiffMeshSpec) Build() (*circuit.Circuit, error) {
	if s.NX < 2 || s.NY < 2 {
		return nil, fmt.Errorf("pdn: stiff mesh must be at least 2x2")
	}
	if s.Spread < 1 {
		return nil, fmt.Errorf("pdn: spread must be >= 1, got %g", s.Spread)
	}
	cfast := s.CFast
	if cfast <= 0 {
		cfast = 1e-14
	}
	cbase := s.CBase
	if cbase <= 0 {
		cbase = cfast * s.Spread
	}
	c := circuit.New(fmt.Sprintf("stiff mesh %dx%d spread %.1e", s.NX, s.NY, s.Spread))
	n := 0
	for y := 0; y < s.NY; y++ {
		// Two capacitance clusters, one decade wide each: slow rows around
		// CBase and fast rows around CFast. This is what a stiff circuit
		// looks like in practice (fast parasitic poles far from the slow
		// behavioral ones); the fastest time constant (CFast·R) stays fixed
		// while Spread stretches the slow side, keeping ‖hA‖ — the work the
		// standard Krylov subspace must do — in the regime the paper's
		// Table 1 operates in (MEXP struggles but functions).
		frac := float64(y) / float64(s.NY-1)
		var cap float64
		if frac < 0.5 {
			cap = cbase * math.Pow(10, -2*frac) // slow cluster: [CBase/10, CBase]
		} else {
			cap = cfast * math.Pow(10, 2*(1-frac)) // fast cluster: [CFast, 10·CFast]
		}
		for x := 0; x < s.NX; x++ {
			n++
			if x+1 < s.NX {
				if err := c.AddR(fmt.Sprintf("Rh%d", n), NodeName(x, y), NodeName(x+1, y), s.RSeg); err != nil {
					return nil, err
				}
			}
			if y+1 < s.NY {
				if err := c.AddR(fmt.Sprintf("Rv%d", n), NodeName(x, y), NodeName(x, y+1), s.RSeg); err != nil {
					return nil, err
				}
			}
			if err := c.AddC(fmt.Sprintf("Cn%d", n), NodeName(x, y), circuit.Ground, cap); err != nil {
				return nil, err
			}
		}
	}
	// Anchor one corner to ground through a resistor so G is nonsingular.
	if err := c.AddR("Rgnd", NodeName(0, 0), circuit.Ground, s.RSeg); err != nil {
		return nil, err
	}
	if s.Drive != nil {
		// Drive the mesh center (the fast-cluster boundary): the response is
		// then a measurable fast transient riding on the slow background,
		// so all three methods integrate a real signal. The standard Krylov
		// subspace must cover the excited fast band (m grows with ‖hA‖ —
		// the paper's Sec. 3.3 observation), while the spectral transforms
		// get it from few dimensions.
		c.AddI("Idrive", NodeName(s.NX/2, s.NY/2), circuit.Ground, s.Drive)
	}
	return c, nil
}

// Stiffness estimates Re(λmin)/Re(λmax) of A = -C⁻¹G for a system with
// nonsingular C and G. It is SpectralEdges' ratio.
func Stiffness(sys *circuit.System, iters int) (float64, error) {
	fast, slow, err := SpectralEdges(sys, iters)
	if err != nil {
		return 0, err
	}
	return math.Abs(fast / slow), nil
}

// SpectralEdges estimates the magnitudes of the fastest and slowest
// eigenvalues of A = -C⁻¹G by power iteration on C⁻¹G (fastest) and on G⁻¹C
// (whose dominant eigenvalue is the slowest mode's time constant).
func SpectralEdges(sys *circuit.System, iters int) (fast, slow float64, err error) {
	if iters <= 0 {
		iters = 200
	}
	fc, err := sparse.Factor(sys.C, sparse.FactorAuto, sparse.OrderRCM)
	if err != nil {
		return 0, 0, fmt.Errorf("pdn: spectral edges need nonsingular C: %w", err)
	}
	fg, err := sparse.Factor(sys.G, sparse.FactorAuto, sparse.OrderRCM)
	if err != nil {
		return 0, 0, fmt.Errorf("pdn: spectral edges need nonsingular G: %w", err)
	}
	n := sys.N
	fast, err = powerIteration(n, iters, func(dst, v []float64) {
		// dst = C⁻¹ G v
		tmp := make([]float64, n)
		sys.G.MulVec(tmp, v)
		fc.Solve(dst, tmp)
	})
	if err != nil {
		return 0, 0, err
	}
	slowInv, err := powerIteration(n, iters, func(dst, v []float64) {
		// dst = G⁻¹ C v ; its dominant eigenvalue is 1/min|λ(C⁻¹G)|
		tmp := make([]float64, n)
		sys.C.MulVec(tmp, v)
		fg.Solve(dst, tmp)
	})
	if err != nil {
		return 0, 0, err
	}
	if slowInv == 0 {
		return 0, 0, fmt.Errorf("pdn: inverse power iteration degenerated")
	}
	return fast, 1 / slowInv, nil
}

// powerIteration estimates the dominant eigenvalue magnitude of the linear
// operator op.
func powerIteration(n, iters int, op func(dst, v []float64)) (float64, error) {
	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n)) * (1 + 0.001*float64(i%7))
	}
	var lambda float64
	for k := 0; k < iters; k++ {
		op(w, v)
		norm := vecNorm(w)
		if norm == 0 {
			return 0, fmt.Errorf("pdn: power iteration hit the null space")
		}
		lambda = norm
		for i := range v {
			v[i] = w[i] / norm
		}
	}
	return lambda, nil
}

func vecNorm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Table1Cases returns the three stiffness levels of the paper's Table 1.
// The spread is calibrated (the mesh topology adds a factor of ~1e2 between
// the capacitance ratio and the measured eigenvalue ratio) so the measured
// stiffness lands near the paper's 2.1e8 / 2.1e12 / 2.1e16.
func Table1Cases() []StiffMeshSpec {
	drive := &waveform.Pulse{V1: 0, V2: 1e-3, Delay: 0.02e-9, Rise: 0.01e-9, Width: 0.1e-9, Fall: 0.01e-9}
	mk := func(target float64) StiffMeshSpec {
		// Measured stiffness scales as ~1250x the capacitance spread on the
		// 20x20 two-cluster mesh (mesh topology factor).
		return StiffMeshSpec{NX: 20, NY: 20, RSeg: 1, Spread: target / 1250, Drive: drive}
	}
	return []StiffMeshSpec{mk(2.1e8), mk(2.1e12), mk(2.1e16)}
}
