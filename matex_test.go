package matex

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestFacadeEndToEnd drives the whole public API surface: netlist parsing,
// stamping, every integrator, the distributed runner, and netlist writing.
func TestFacadeEndToEnd(t *testing.T) {
	spec, err := IBMCase("ibmpg1t", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Stamp(ckt, StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	probes := []int{0, sys.NumNodes - 1}

	ref, err := Simulate(sys, TRFixed, Options{Tstop: 10e-9, Step: 5e-12, Probes: probes})
	if err != nil {
		t.Fatal(err)
	}
	// MEXP is excluded here deliberately: the paper itself never runs the
	// standard subspace on the IBM grids (h·‖A‖ ~ 1e5 there; Table 2
	// compares only TR(adpt), I-MATEX and R-MATEX). It is covered on its
	// own domain in TestFacadeBuilders and the Table 1 harness.
	for _, m := range []Method{BEFixed, TRAdaptive, IMATEX, RMATEX} {
		opts := Options{Tstop: 10e-9, Step: 10e-12, Probes: probes, Tol: 1e-7}
		if m == TRAdaptive {
			opts.Tol = 1e-4
		}
		res, err := Simulate(sys, m, opts)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		var maxErr float64
		for i, tt := range res.Times {
			for k := range probes {
				if d := math.Abs(res.Probes[i][k] - ref.InterpProbe(tt, k)); d > maxErr {
					maxErr = d
				}
			}
		}
		if maxErr > 2e-3 {
			t.Errorf("%v deviates %g from the TR reference", m, maxErr)
		}
	}

	dres, rep, err := SimulateDistributed(sys, DistConfig{Tstop: 10e-9, Tol: 1e-7, Probes: probes})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups < 2 || len(dres.Times) == 0 {
		t.Fatalf("degenerate distributed run: %d groups", rep.Groups)
	}
}

func TestFacadeNetlistRoundTrip(t *testing.T) {
	src := `* facade deck
R1 a b 1k
C1 b 0 1p
V1 a 0 1.8
i1 b 0 PULSE(0 1m 1n 0.1n 0.1n 2n 0)
.tran 10p 10n
.print tran v(b)
.end
`
	deck, err := ParseNetlist(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNetlist(&buf, deck); err != nil {
		t.Fatal(err)
	}
	deck2, err := ParseNetlist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(deck2.Circuit.Resistors) != 1 || len(deck2.Prints) != 1 {
		t.Fatal("round trip lost elements")
	}
	sys, err := Stamp(deck2.Circuit, StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sys, RMATEX, Options{Tstop: 10e-9, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) == 0 {
		t.Fatal("empty result")
	}
}

func TestFacadeBuilders(t *testing.T) {
	ckt := NewCircuit("builders")
	if err := ckt.AddR("r1", "n", "0", 50); err != nil {
		t.Fatal(err)
	}
	if err := ckt.AddC("c1", "n", "0", 1e-12); err != nil {
		t.Fatal(err)
	}
	pw, err := NewPWL([]float64{0, 1e-9, 2e-9}, []float64{0, 1e-3, 0})
	if err != nil {
		t.Fatal(err)
	}
	ckt.AddI("i1", "n", "0", pw)
	sys, err := Stamp(ckt, StampOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{RMATEX, MEXP} {
		res, err := Simulate(sys, m, Options{Tstop: 5e-9, Tol: 1e-9, Probes: []int{0}})
		if err != nil {
			t.Fatal(err)
		}
		// Peak drop roughly -I*R after the ramp (tau = 50 ps << 1 ns ramp).
		var minV float64
		for i := range res.Times {
			if v := res.Probes[i][0]; v < minV {
				minV = v
			}
		}
		if math.Abs(minV-(-0.05)) > 0.005 {
			t.Errorf("%v: peak drop %v, want about -0.05", m, minV)
		}
	}

	lad, err := Ladder(3, 100, 1e-12, DC(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	lsys, err := Stamp(lad, StampOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stiffness(lsys, 100); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeFactorCache drives the exported cache and solver-configuration
// surface: a shared FactorCache across plain and distributed runs, the
// ordering constants, and the stats counters.
func TestFacadeFactorCache(t *testing.T) {
	spec, err := IBMCase("ibmpg1t", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Stamp(ckt, StampOptions{CollapseSupplies: true})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewFactorCache(64 << 20)
	opts := Options{
		Tstop: 10e-9, Tol: 1e-7, Probes: []int{0},
		FactorKind: FactorAuto, Ordering: OrderRCM, Cache: cache,
	}
	if _, err := Simulate(sys, RMATEX, opts); err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sys, RMATEX, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Factorizations != 0 || res.Stats.CacheHits == 0 {
		t.Errorf("repeat run: %d factorizations, %d hits — want 0 and >0",
			res.Stats.Factorizations, res.Stats.CacheHits)
	}
	// The distributed scheduler shares the same cache: its DC solve and
	// subtasks hit the entries the plain runs created (same G, same C+γG).
	dres, _, err := SimulateDistributed(sys, DistConfig{
		Tstop: 10e-9, Tol: 1e-7, Probes: []int{0}, Cache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dres.Stats.Factorizations != 0 {
		t.Errorf("distributed run with warm cache factorized %d times, want 0",
			dres.Stats.Factorizations)
	}
	if st := cache.Stats(); st.Entries == 0 || st.Hits == 0 {
		t.Errorf("cache stats empty: %+v", st)
	}
}
