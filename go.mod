module github.com/matex-sim/matex

go 1.22
