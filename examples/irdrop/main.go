// IR-drop analysis: compare the fixed-step trapezoidal framework against
// R-MATEX on an IBM-style power grid, reporting both accuracy and the work
// each solver performs (the paper's Table 3 in miniature).
package main

import (
	"fmt"
	"log"
	"math"

	matex "github.com/matex-sim/matex"
)

func main() {
	spec, err := matex.IBMCase("ibmpg2t", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	ckt, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := matex.Stamp(ckt, matex.StampOptions{CollapseSupplies: true})
	if err != nil {
		log.Fatal(err)
	}
	probes := []int{0, sys.NumNodes / 4, sys.NumNodes / 2, sys.NumNodes - 1}

	// The TAU-contest baseline: trapezoidal, h = 10 ps, 1000 steps, one
	// factorization.
	tr, err := matex.Simulate(sys, matex.TRFixed, matex.Options{
		Tstop: 10e-9, Step: 10e-12, Probes: probes,
	})
	if err != nil {
		log.Fatal(err)
	}
	// R-MATEX: adaptive stepping between input transitions, subspace reuse.
	rm, err := matex.Simulate(sys, matex.RMATEX, matex.Options{
		Tstop: 10e-9, Probes: probes, Tol: 1e-7, Gamma: 1e-10,
	})
	if err != nil {
		log.Fatal(err)
	}

	var maxDiff float64
	for i, t := range rm.Times {
		for k := range probes {
			if d := math.Abs(rm.Probes[i][k] - tr.InterpProbe(t, k)); d > maxDiff {
				maxDiff = d
			}
		}
	}
	fmt.Printf("grid: %d unknowns, %d pulsed loads\n", sys.N, len(ckt.ISources))
	fmt.Printf("%-10s %14s %14s %12s %10s\n", "solver", "subst. pairs", "factorizations", "outputs", "transient")
	fmt.Printf("%-10s %14d %14d %12d %10v\n", "TR(10ps)",
		tr.Stats.SolvePairs, tr.Stats.Factorizations, len(tr.Times), tr.Stats.TransientTime.Round(1e5))
	fmt.Printf("%-10s %14d %14d %12d %10v\n", "R-MATEX",
		rm.Stats.SolvePairs, rm.Stats.Factorizations, len(rm.Times), rm.Stats.TransientTime.Round(1e5))
	fmt.Printf("max deviation between the two solutions: %.2e V (supply 1.8 V)\n", maxDiff)
}
