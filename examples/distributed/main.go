// Distributed MATEX: decompose a power grid's current sources by their
// pulse "bump" features (paper Fig. 3), run each group as an independent
// zero-state subtask, and superpose — first in-process, then over TCP
// workers on the loopback interface (the paper's Fig. 4 flow end to end).
package main

import (
	"fmt"
	"log"
	"math"
	"net"

	matex "github.com/matex-sim/matex"
	"github.com/matex-sim/matex/internal/dist"
)

func main() {
	spec, err := matex.IBMCase("ibmpg1t", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	ckt, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := matex.Stamp(ckt, matex.StampOptions{CollapseSupplies: true})
	if err != nil {
		log.Fatal(err)
	}
	probes := []int{0, sys.NumNodes / 2}

	// Show the decomposition: GTS vs per-group LTS.
	gts := sys.GTS(10e-9)
	tasks := dist.Partition(sys, 10e-9)
	fmt.Printf("global transition spots (GTS): %d points\n", len(gts))
	fmt.Printf("source groups (bump features): %d\n", len(tasks))
	for _, task := range tasks[:min(4, len(tasks))] {
		fmt.Printf("  group %d: %d sources\n", task.GroupID, len(task.InputIdx))
	}
	if len(tasks) > 4 {
		fmt.Printf("  ... and %d more groups\n", len(tasks)-4)
	}

	// In-process pool (one goroutine per group).
	local, rep, err := matex.SimulateDistributed(sys, matex.DistConfig{
		Method: matex.RMATEX, Tstop: 10e-9, Tol: 1e-7, Probes: probes,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-process: %d nodes, slowest node %v (transient %v)\n",
		rep.Groups, rep.MaxNodeTime.Round(1e5), rep.MaxNodeTrTime.Round(1e5))

	// Two TCP workers on loopback (stand-ins for cluster machines; in a real
	// deployment run `matexd -listen :9090` per machine).
	var addrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		go dist.Serve(l, matex.NewWorkerServer())
		addrs = append(addrs, l.Addr().String())
	}
	pool, err := matex.NewRPCPool(sys, addrs)
	if err != nil {
		log.Fatal(err)
	}
	remote, rep2, err := matex.SimulateDistributed(sys, matex.DistConfig{
		Method: matex.RMATEX, Tstop: 10e-9, Tol: 1e-7, Probes: probes, Pool: pool,
	})
	if err != nil {
		log.Fatal(err)
	}

	var maxDiff float64
	for i := range local.Times {
		for k := range probes {
			if d := math.Abs(local.Probes[i][k] - remote.Probes[i][k]); d > maxDiff {
				maxDiff = d
			}
		}
	}
	fmt.Printf("TCP workers: %d groups over %d workers, retried %d\n",
		rep2.Groups, len(addrs), rep2.Retried)
	fmt.Printf("in-process vs TCP max deviation: %.1e V (identical computation)\n", maxDiff)
}
