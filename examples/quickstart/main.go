// Quickstart: build a small power grid in code, simulate it with R-MATEX,
// and print the worst IR drop.
package main

import (
	"fmt"
	"log"

	matex "github.com/matex-sim/matex"
)

func main() {
	// A 20x20 on-chip power grid: 0.5 Ω segments, 10 fF per node, 1.8 V
	// pads every 10 nodes, and 40 pulsed current loads drawn from 8
	// distinct switching patterns.
	spec := matex.GridSpec{
		Name: "quickstart", NX: 20, NY: 20,
		RSeg: 0.5, CNode: 1e-14, VDD: 1.8, PadPitch: 10,
		NumLoads: 40, NumGroups: 8, IPeak: 3e-3, Tstop: 10e-9, Seed: 7,
	}
	ckt, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := matex.Stamp(ckt, matex.StampOptions{CollapseSupplies: true})
	if err != nil {
		log.Fatal(err)
	}

	// Probe every node so we can find the worst droop.
	probes := make([]int, sys.NumNodes)
	for i := range probes {
		probes[i] = i
	}
	res, err := matex.Simulate(sys, matex.RMATEX, matex.Options{
		Tstop: 10e-9, Probes: probes, Tol: 1e-6, Gamma: 1e-10,
	})
	if err != nil {
		log.Fatal(err)
	}

	worst := 1.8
	worstNode, worstTime := "", 0.0
	names := sys.NodeNames()
	for i, t := range res.Times {
		for k, name := range names {
			if v := res.Probes[i][k]; v < worst {
				worst, worstNode, worstTime = v, name, t
			}
		}
	}
	fmt.Printf("simulated %d nodes over 10 ns at %d transition spots\n", sys.NumNodes, len(res.Times))
	fmt.Printf("worst IR drop: %.2f mV at node %s, t = %.2f ns\n",
		(1.8-worst)*1e3, worstNode, worstTime*1e9)
	fmt.Printf("solver work: %d factorizations, %d substitution pairs, peak Krylov dim %d\n",
		res.Stats.Factorizations, res.Stats.SolvePairs, res.Stats.MP())
}
