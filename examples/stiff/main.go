// Stiffness study: sweep the stiffness of an RC mesh and watch the standard
// Krylov subspace (MEXP) grow while the rational subspace (R-MATEX) stays
// small — the paper's Table 1 in miniature.
package main

import (
	"fmt"
	"log"

	matex "github.com/matex-sim/matex"
)

func main() {
	drive := &matex.Pulse{V1: 0, V2: 1e-3, Delay: 0.02e-9, Rise: 0.01e-9, Width: 0.1e-9, Fall: 0.01e-9}
	fmt.Printf("%12s %22s %22s\n", "stiffness", "MEXP (m_a / m_p)", "R-MATEX (m_a / m_p)")
	for _, spread := range []float64{1e3, 1e6, 1e9} {
		spec := matex.StiffMeshSpec{NX: 12, NY: 12, RSeg: 1, Spread: spread, Drive: drive}
		ckt, err := spec.Build()
		if err != nil {
			log.Fatal(err)
		}
		sys, err := matex.Stamp(ckt, matex.StampOptions{})
		if err != nil {
			log.Fatal(err)
		}
		stiff, err := matex.Stiffness(sys, 300)
		if err != nil {
			log.Fatal(err)
		}
		var cells [2]string
		for i, m := range []matex.Method{matex.MEXP, matex.RMATEX} {
			opts := matex.Options{Tstop: 0.3e-9, Tol: 1e-7, Gamma: 5e-12}
			if m == matex.MEXP {
				opts.MaxStep = 5e-12 // the standard subspace needs bounded h·‖A‖
			}
			res, err := matex.Simulate(sys, m, opts)
			if err != nil {
				log.Fatal(err)
			}
			cells[i] = fmt.Sprintf("%6.1f / %3d", res.Stats.MA(), res.Stats.MP())
		}
		fmt.Printf("%12.1e %22s %22s\n", stiff, cells[0], cells[1])
	}
	fmt.Println("\nthe standard subspace chases the fast eigenvalues as stiffness grows;")
	fmt.Println("the shift-and-invert subspace keeps capturing the slow, dominant modes.")
}
