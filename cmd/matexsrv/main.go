// Command matexsrv is the MATEX simulation job service: a long-running
// HTTP daemon that accepts netlist-deck jobs, runs them through a bounded
// worker-pool queue over the shared factorization cache, and streams
// waveform samples incrementally as NDJSON (or SSE) while the integrators
// advance. SIGINT/SIGTERM drain gracefully: the listener closes, /readyz
// flips to 503, queued and running jobs finish (bounded by -grace), then
// the process exits 0. With -state-dir set, accepted jobs survive a crash:
// specs, periodic integrator checkpoints and results are journaled, and a
// restart on the same directory resumes interrupted jobs from their last
// checkpoint instead of step zero.
//
// A job spec with a "variants" list is a scenario sweep: all variants of
// the deck run as one batched computation (shared factorization lineage,
// cross-variant solve panels, collinear-variant sharing) and the job's
// stream interleaves every variant's samples, tagged by variant name and
// per-variant sequence number. POST /sweep (or /v1/sweep) is the
// dedicated endpoint; /v1/jobs accepts sweep specs too.
//
// Usage:
//
//	matexsrv -listen :8080
//	matexsrv -listen :8080 -workers 8 -queue 128 -cache-mb 512
//	matexsrv -listen :8080 -state-dir /var/lib/matex -checkpoint-every 128
//	matexsrv -dist-workers host1:9090,host2:9090   # matexd fan-out
//
// Submit and stream:
//
//	curl -s localhost:8080/v1/simulate -d '{"case":"ibmpg1t","scale":0.25}'
//	curl -s localhost:8080/v1/jobs -d @job.json      # queue, then
//	curl -s localhost:8080/v1/jobs/job-1/stream      # follow live
//	curl -s localhost:8080/sweep -d @sweep.json      # N variants, one run
//	curl -s localhost:8080/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/matex-sim/matex/internal/serve"
	"github.com/matex-sim/matex/internal/sparse"
)

func main() {
	listen := flag.String("listen", ":8080", "HTTP address to listen on")
	workers := flag.Int("workers", 0, "concurrently running jobs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "queued-job capacity; a full queue answers 429")
	cacheMB := flag.Int("cache-mb", 512, "shared factorization cache budget in MiB (<=0 selects the default)")
	distWorkers := flag.String("dist-workers", "", "comma-separated matexd TCP addresses for distributed jobs (empty = in-process pool)")
	order := flag.String("order", "default", "default fill-reducing ordering for jobs that do not set their own: default (=rcm), natural, rcm, mindeg, nd")
	grace := flag.Duration("grace", 30*time.Second, "drain budget after SIGINT/SIGTERM before running jobs are canceled")
	stateDir := flag.String("state-dir", "", "durable-job journal directory; jobs survive a crash and resume from their last checkpoint (empty = in-memory only)")
	cpEvery := flag.Int("checkpoint-every", 0, "journaled-checkpoint cadence in accepted integrator steps (0 = default 128; needs -state-dir)")
	flag.Parse()

	ord, err := sparse.ParseOrdering(*order)
	if err != nil {
		log.Fatalf("matexsrv: %v", err)
	}
	cfg := serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheBytes:      int64(*cacheMB) << 20,
		Ordering:        ord,
		StateDir:        *stateDir,
		CheckpointEvery: *cpEvery,
	}
	if *distWorkers != "" {
		cfg.DistAddrs = strings.Split(*distWorkers, ",")
	}
	s, err := serve.New(cfg)
	if err != nil {
		log.Fatalf("matexsrv: %v", err)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("matexsrv: %v", err)
	}
	fmt.Printf("matexsrv: listening on %s\n", l.Addr())

	httpSrv := &http.Server{Handler: s.Handler()}
	ctx, stop := serve.SignalContext(context.Background())
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "matexsrv: draining (signal received)")
		// Flip /readyz to 503 and stop the intake first, so a load balancer
		// health-checking this instance sees it unready for the whole drain
		// window while in-flight streams and jobs finish.
		s.BeginDrain()
		// Stop accepting requests; in-flight streams get the grace budget
		// to finish alongside the job-queue drain below.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "matexsrv: http shutdown: %v\n", err)
		}
	}()

	err = httpSrv.Serve(l)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("matexsrv: %v", err)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "matexsrv: exiting with canceled jobs: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("matexsrv: drained, exiting")
}
