// Command matexcheck runs the project-invariant static analyzer suite over
// the module: noalloc (//matex:noalloc hot paths stay allocation-free),
// poolhygiene (pool acquires release on every path), ctxflow (the serving
// tier threads contexts), errflow (no discarded errors in cmd/ and the
// HTTP tier), and docs (the matex facade and internal/sweep document every
// exported symbol). It exits non-zero when any finding survives the
// //matex: waiver annotations.
//
// Usage:
//
//	matexcheck ./...
//	matexcheck ./internal/sparse ./cmd/matex
package main

import (
	"fmt"
	"os"

	"github.com/matex-sim/matex/internal/check"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := check.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fatal(err)
	}
	findings := check.RunAll(pkgs)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "matexcheck: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "matexcheck:", err)
	os.Exit(1)
}
