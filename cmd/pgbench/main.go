// Command pgbench emits synthetic IBM-style power grid benchmark netlists
// (the stand-ins for the proprietary ibmpg*t decks, documented in
// DESIGN.md) in the SPICE subset that cmd/matex parses.
//
// Usage:
//
//	pgbench -case ibmpg1t > ibmpg1t.sp
//	pgbench -case ibmpg3t -scale 0.5 -probes 8 > small.sp
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/matex-sim/matex/internal/netlist"
	"github.com/matex-sim/matex/internal/pdn"
)

func main() {
	name := flag.String("case", "ibmpg1t", "benchmark name (ibmpg1t..ibmpg6t)")
	scale := flag.Float64("scale", 1.0, "grid-size multiplier")
	probes := flag.Int("probes", 4, "number of .print cards to emit")
	flag.Parse()

	spec, err := pdn.IBMCase(*name, *scale)
	if err != nil {
		fatal(err)
	}
	ckt, err := spec.Build()
	if err != nil {
		fatal(err)
	}
	deck := &netlist.Deck{Circuit: ckt, TranStep: 10e-12, TranStop: spec.Tstop}
	// Spread the probes across the grid diagonal.
	for i := 0; i < *probes; i++ {
		x := (i + 1) * spec.NX / (*probes + 1)
		y := (i + 1) * spec.NY / (*probes + 1)
		deck.Prints = append(deck.Prints, pdn.NodeName(x, y))
	}
	w := bufio.NewWriter(os.Stdout)
	if err := netlist.Write(w, deck); err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgbench:", err)
	os.Exit(1)
}
