// Command experiments regenerates the tables and figures of the MATEX paper
// (DAC 2014) on the synthetic benchmark suite and prints them in the paper's
// layout. EXPERIMENTS.md records its output next to the paper's numbers.
//
// Usage:
//
//	experiments -table 1            # Table 1 (stiff RC meshes)
//	experiments -table 2 -scale 0.5 # Table 2 at half grid size
//	experiments -table 3            # Table 3 (distributed vs fixed TR)
//	experiments -fig 5              # Fig. 5 error-vs-step sweep
//	experiments -all                # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/matex-sim/matex/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "paper table to regenerate (1, 2 or 3)")
	fig := flag.Int("fig", 0, "paper figure to regenerate (5)")
	gammaSweep := flag.Bool("gamma", false, "run the gamma-sensitivity ablation (Sec. 3.3.2 claim)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	scale := flag.Float64("scale", 1.0, "grid-size multiplier for the IBM-style benchmarks")
	designs := flag.String("designs", "", "comma-separated benchmark subset (default: full suite)")
	flag.Parse()

	if !*all && *table == 0 && *fig == 0 && !*gammaSweep {
		flag.Usage()
		os.Exit(2)
	}
	var names []string
	if *designs != "" {
		names = splitComma(*designs)
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *all || *table == 1 {
		rows, err := experiments.RunTable1(experiments.Table1Config{})
		if err != nil {
			fail(err)
		}
		experiments.PrintTable1(os.Stdout, rows)
		fmt.Println()
	}
	if *all || *table == 2 {
		rows, err := experiments.RunTable2(experiments.Table2Config{Designs: names, Scale: *scale})
		if err != nil {
			fail(err)
		}
		experiments.PrintTable2(os.Stdout, rows)
		fmt.Println()
	}
	if *all || *table == 3 {
		rows, err := experiments.RunTable3(experiments.Table3Config{Designs: names, Scale: *scale})
		if err != nil {
			fail(err)
		}
		experiments.PrintTable3(os.Stdout, rows)
		fmt.Println()
	}
	if *all || *fig == 5 {
		series, err := experiments.RunFig5(experiments.Fig5Config{})
		if err != nil {
			fail(err)
		}
		experiments.PrintFig5(os.Stdout, series)
		fmt.Println()
	}
	if *all || *gammaSweep {
		rows, err := experiments.RunGammaSweep(experiments.GammaConfig{})
		if err != nil {
			fail(err)
		}
		experiments.PrintGammaSweep(os.Stdout, rows)
	}
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
