// Command matexd is a MATEX worker daemon: it listens on TCP for subtasks
// from a scheduler (cmd/matex -workers, dist.NewRPCPool, or a matexsrv
// instance with -dist-workers), holds the circuits it has been sent, and
// runs each subtask with the requested circuit solver. Workers share
// nothing and only write results back — the paper's Fig. 4 node.
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight RPCs
// finish and answer over their still-open connections (bounded by -grace),
// new calls are refused with a draining error the scheduler retries on
// other workers, and the process exits 0.
//
// Usage:
//
//	matexd -listen :9090
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"

	"github.com/matex-sim/matex/internal/dist"
	"github.com/matex-sim/matex/internal/serve"
	"github.com/matex-sim/matex/internal/sparse"
)

func main() {
	listen := flag.String("listen", ":9090", "TCP address to listen on")
	cacheMB := flag.Int("cache-mb", 0, "factorization cache budget in MiB; <=0 selects the 512 MiB default (the worker cache is always on — it replaces per-subtask refactorization)")
	solvePar := flag.Int("solve-par", 0, "default goroutines for level-scheduled parallel triangular solves when a request does not set its own (0/1 = sequential)")
	order := flag.String("order", "default", "default fill-reducing ordering for requests that do not set their own: default (=rcm), natural, rcm, mindeg, nd")
	grace := flag.Duration("grace", dist.DefaultDrainGrace, "drain budget for in-flight RPCs after SIGINT/SIGTERM")
	flag.Parse()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("matexd: %v", err)
	}
	fmt.Printf("matexd: listening on %s\n", l.Addr())
	ord, err := sparse.ParseOrdering(*order)
	if err != nil {
		log.Fatalf("matexd: %v", err)
	}
	ws := dist.NewWorkerServerWithCache(sparse.NewCache(int64(*cacheMB) << 20))
	ws.SetSolveWorkers(*solvePar)
	ws.SetOrdering(ord)

	// The same signal-driven shutdown path as cmd/matexsrv: first signal
	// starts the drain, a second one kills the process the default way.
	ctx, stop := serve.SignalContext(context.Background())
	defer stop()
	if err := dist.ServeContext(ctx, l, ws, *grace); err != nil {
		log.Fatalf("matexd: %v", err)
	}
	if ctx.Err() != nil {
		fmt.Println("matexd: drained, exiting")
	}
}
