// Command matexd is a MATEX worker daemon: it listens on TCP for subtasks
// from a scheduler (cmd/matex -workers or dist.NewRPCPool), holds the
// circuits it has been sent, and runs each subtask with the requested
// circuit solver. Workers share nothing and only write results back — the
// paper's Fig. 4 node.
//
// Usage:
//
//	matexd -listen :9090
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"github.com/matex-sim/matex/internal/dist"
	"github.com/matex-sim/matex/internal/sparse"
)

func main() {
	listen := flag.String("listen", ":9090", "TCP address to listen on")
	cacheMB := flag.Int("cache-mb", 0, "factorization cache budget in MiB; <=0 selects the 512 MiB default (the worker cache is always on — it replaces per-subtask refactorization)")
	solvePar := flag.Int("solve-par", 0, "default goroutines for level-scheduled parallel triangular solves when a request does not set its own (0/1 = sequential)")
	flag.Parse()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("matexd: %v", err)
	}
	fmt.Printf("matexd: listening on %s\n", l.Addr())
	ws := dist.NewWorkerServerWithCache(sparse.NewCache(int64(*cacheMB) << 20))
	ws.SetSolveWorkers(*solvePar)
	if err := dist.Serve(l, ws); err != nil {
		log.Fatalf("matexd: %v", err)
	}
}
