// Command matex simulates a power distribution network netlist.
//
// It parses a SPICE-subset deck (the IBM power grid benchmark format), runs
// the selected transient integrator, and writes the probed node waveforms as
// tab-separated values.
//
// Usage:
//
//	matex -method rmatex -tstop 10n grid.sp
//	matex -method tr -step 10p grid.sp            # fixed-step trapezoidal
//	matex -method rmatex -distributed grid.sp     # bump-group decomposition
//	matex -method rmatex -workers host1:9090,host2:9090 grid.sp
//	matex -sweep corners.json grid.sp             # N variants, one batched run
//
// Probed nodes come from the deck's ".print tran v(...)" cards; without any,
// the first node of the deck is probed.
//
// -sweep FILE runs every scenario variant in FILE (a JSON array of sweep
// variant objects, or an object with a "variants" key — the same schema
// as the serving API's POST /sweep) through one batched computation: one
// factorization-cache lineage, cross-variant multi-RHS solve panels, and
// collinear-variant sharing. The TSV output gains a leading "variant"
// column; -stats adds the sweep's lane and panel report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/dist"
	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/netlist"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/sweep"
	"github.com/matex-sim/matex/internal/transient"
)

func main() {
	method := flag.String("method", "rmatex", "integrator: tr, be, fe, tradpt, mexp, imatex, rmatex")
	tstop := flag.Float64("tstop", 0, "simulation window in seconds (default: the deck's .tran stop)")
	step := flag.Float64("step", 0, "fixed step for tr/be/fe in seconds (default: the deck's .tran step)")
	tol := flag.Float64("tol", 1e-6, "Krylov error budget (MATEX) or LTE target (tradpt)")
	gamma := flag.Float64("gamma", 1e-10, "rational shift γ for rmatex")
	distributed := flag.Bool("distributed", false, "decompose sources by bump feature and superpose")
	workers := flag.String("workers", "", "comma-separated matexd TCP addresses (implies -distributed)")
	order := flag.String("order", "default", "fill-reducing ordering: default (=rcm), natural, rcm, mindeg, nd")
	krylovFlag := flag.String("krylov", "auto", "Krylov subspace process: auto (symmetric Lanczos fast path where eligible), arnoldi, lanczos")
	cacheMB := flag.Int("cache-mb", 256, "factorization cache budget in MiB (0 disables the cache)")
	solvePar := flag.Int("solve-par", 0, "goroutines for level-scheduled parallel triangular solves (0/1 = sequential; effective only when the factor's level schedule is wide enough)")
	stream := flag.Bool("stream", false, "emit each TSV row as the integrator produces it (unbuffered waveform streaming; non-distributed runs only)")
	stats := flag.Bool("stats", false, "print solver work statistics to stderr")
	sweepFile := flag.String("sweep", "", "JSON variant file: run every scenario variant of the deck as one batched sweep")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: matex [flags] netlist.sp")
		flag.Usage()
		os.Exit(2)
	}
	m, err := transient.ParseMethod(*method)
	if err != nil {
		fatal(err)
	}
	ord, err := sparse.ParseOrdering(*order)
	if err != nil {
		fatal(err)
	}
	km, err := krylov.ParseMethod(strings.ToLower(*krylovFlag))
	if err != nil {
		fatal(err)
	}
	var cache *sparse.Cache
	if *cacheMB > 0 {
		cache = sparse.NewCache(int64(*cacheMB) << 20)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	deck, err := netlist.Parse(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	sys, err := circuit.Stamp(deck.Circuit, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		fatal(err)
	}

	if *tstop == 0 {
		*tstop = deck.TranStop
	}
	if *tstop <= 0 {
		fatal(fmt.Errorf("no simulation window: pass -tstop or add a .tran card"))
	}
	if *step == 0 {
		*step = deck.TranStep
	}

	// Probes from .print cards, else the first node.
	probeNames := deck.Prints
	if len(probeNames) == 0 {
		names := sys.NodeNames()
		if len(names) > 0 {
			probeNames = names[:1]
		}
	}
	probes, kept, skipped, err := sys.ResolveProbes(probeNames)
	if err != nil {
		fatal(err)
	}
	for _, name := range skipped {
		fmt.Fprintf(os.Stderr, "matex: %s is a supply rail, skipping probe\n", name)
	}

	// -stream prints the TSV header up front and each row as the
	// integrator records it — the CLI face of the serving layer's
	// incremental waveform streaming. The buffered re-print at the end is
	// skipped; everything else (stats, exit codes) is unchanged.
	writeHeader := func() {
		fmt.Printf("time")
		for _, name := range kept {
			fmt.Printf("\tv(%s)", name)
		}
		fmt.Println()
	}
	// row may be nil/empty when every probe was skipped (all supply
	// rails): the table then has a time column only, as before.
	writeRow := func(t float64, row []float64) {
		fmt.Printf("%.6e", t)
		for k := range kept {
			if k < len(row) {
				fmt.Printf("\t%.9e", row[k])
			}
		}
		fmt.Println()
	}

	if *sweepFile != "" {
		if *distributed || *workers != "" {
			fatal(fmt.Errorf("-sweep and -distributed are mutually exclusive (a sweep batches within one process)"))
		}
		variants, err := loadVariants(*sweepFile)
		if err != nil {
			fatal(err)
		}
		runSweep(sys, variants, m, transient.Options{
			Tstop: *tstop, Step: *step, Tol: *tol, Gamma: *gamma, Probes: probes,
			Ordering: ord, Cache: cache, Krylov: km, SolveWorkers: *solvePar,
		}, kept, *stream, *stats)
		return
	}

	var res *transient.Result
	var rep *dist.Report
	if *distributed || *workers != "" {
		if *stream {
			fatal(fmt.Errorf("-stream applies to single-process runs only (the distributed superposition exists only after all groups land)"))
		}
		// The fixed-step methods need a step here just like the plain path
		// below; without this guard dist.Config would read the zero-value
		// TRFixed-without-Step as "unset" and silently run R-MATEX.
		if (m == transient.TRFixed || m == transient.BEFixed || m == transient.FEFixed) && *step <= 0 {
			fatal(fmt.Errorf("fixed-step method %q needs -step or a .tran step in the deck", *method))
		}
		cfg := dist.Config{
			Method: m, Tstop: *tstop, Step: *step, Tol: *tol, Gamma: *gamma, Probes: probes,
			Ordering: ord, Cache: cache, Krylov: km, SolveWorkers: *solvePar,
		}
		if *workers != "" {
			pool, err := dist.NewRPCPool(sys, strings.Split(*workers, ","))
			if err != nil {
				fatal(err)
			}
			cfg.Pool = pool
		}
		res, rep, err = dist.Run(sys, cfg)
	} else {
		opts := transient.Options{
			Tstop: *tstop, Step: *step, Tol: *tol, Gamma: *gamma, Probes: probes,
			Ordering: ord, Cache: cache, Krylov: km, SolveWorkers: *solvePar,
		}
		if *stream {
			writeHeader()
			opts.OnSample = writeRow
		}
		res, err = transient.Simulate(sys, m, opts)
	}
	if err != nil {
		fatal(err)
	}

	// TSV output (already emitted live under -stream).
	if !*stream {
		writeHeader()
		for i, t := range res.Times {
			var row []float64
			if i < len(res.Probes) {
				row = res.Probes[i]
			}
			writeRow(t, row)
		}
	}

	if *stats {
		if rep != nil {
			fmt.Fprintf(os.Stderr, "groups=%d retried=%d max_node_time=%v max_node_transient=%v\n",
				rep.Groups, rep.Retried, rep.MaxNodeTime, rep.MaxNodeTrTime)
		}
		s := &res.Stats
		fmt.Fprintf(os.Stderr, "factorizations=%d refactors=%d symbolic_hits=%d cache_hits=%d cache_misses=%d solve_pairs=%d spmvs=%d expm_evals=%d steps=%d m_a=%.1f m_p=%d lanczos_spots=%d/%d dc=%v factor=%v transient=%v\n",
			s.Factorizations, s.Refactors, s.SymbolicHits, s.CacheHits, s.CacheMisses, s.SolvePairs, s.SpMVs, s.ExpmEvals, s.Steps, s.MA(), s.MP(), s.LanczosSpots, len(s.KrylovDims), s.DCTime, s.FactorTime, s.TransientTime)
	}
}

// loadVariants reads a sweep variant file: either a bare JSON array of
// variants or an object with a "variants" field (the POST /sweep body
// shape, so one file serves both the CLI and curl).
func loadVariants(path string) ([]sweep.Variant, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var list []sweep.Variant
	if err := json.Unmarshal(b, &list); err == nil {
		return list, nil
	}
	var obj struct {
		Variants []sweep.Variant `json:"variants"`
	}
	if err := json.Unmarshal(b, &obj); err != nil {
		return nil, fmt.Errorf("parsing %s: want a JSON array of variants or {\"variants\": [...]}: %w", path, err)
	}
	return obj.Variants, nil
}

// runSweep executes the batched sweep and writes one TSV table with a
// leading variant column. Under -stream rows interleave across variants
// as their lanes advance (each variant's rows stay in time order);
// buffered output groups rows per variant.
func runSweep(sys *circuit.System, variants []sweep.Variant, m transient.Method, base transient.Options, kept []string, stream, stats bool) {
	writeHeader := func() {
		fmt.Printf("variant\ttime")
		for _, name := range kept {
			fmt.Printf("\tv(%s)", name)
		}
		fmt.Println()
	}
	writeRow := func(name string, t float64, row []float64) {
		fmt.Printf("%s\t%.6e", name, t)
		for k := range kept {
			if k < len(row) {
				fmt.Printf("\t%.9e", row[k])
			}
		}
		fmt.Println()
	}
	names := make([]string, len(variants))
	for i, v := range variants {
		if names[i] = v.Name; names[i] == "" {
			names[i] = fmt.Sprintf("v%d", i)
		}
	}
	opts := sweep.Options{Base: base, Method: m}
	if stream {
		writeHeader()
		// Lanes emit concurrently; the TSV writer is single-threaded.
		var mu sync.Mutex
		opts.OnVariantSample = func(v int, t float64, row []float64) {
			mu.Lock()
			writeRow(names[v], t, row)
			mu.Unlock()
		}
	}
	res, err := sweep.Run(sys, variants, opts)
	if err != nil {
		fatal(err)
	}
	if !stream {
		writeHeader()
		for v := range res.Variants {
			vr := &res.Variants[v]
			for i, t := range vr.Times {
				var row []float64
				if i < len(vr.Probes) {
					row = vr.Probes[i]
				}
				writeRow(vr.Name, t, row)
			}
		}
	}
	if stats {
		st := &res.Stats
		s := &st.Sim
		fmt.Fprintf(os.Stderr, "variants=%d lanes=%d shared=%d panel_rounds=%d panel_batched=%d mean_panel_width=%.2f\n",
			st.Variants, st.Lanes, st.SharedVariants, st.Panel.Rounds, st.Panel.Batched, st.Panel.MeanWidth())
		fmt.Fprintf(os.Stderr, "factorizations=%d refactors=%d symbolic_hits=%d cache_hits=%d cache_misses=%d solve_pairs=%d spmvs=%d steps=%d\n",
			s.Factorizations, s.Refactors, s.SymbolicHits, s.CacheHits, s.CacheMisses, s.SolvePairs, s.SpMVs, s.Steps)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "matex:", err)
	os.Exit(1)
}
