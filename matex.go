// Package matex is a transient simulator for power distribution networks
// (PDNs), reproducing "MATEX: A Distributed Framework for Transient
// Simulation of Power Distribution Networks" (Zhuang, Weng, Lin, Cheng —
// DAC 2014).
//
// The simulator integrates the MNA system C·x' = -G·x + B·u(t) with matrix
// exponential kernels evaluated in Krylov subspaces. Three subspace families
// are provided — standard (MEXP), inverted (I-MATEX) and rational/
// shift-and-invert (R-MATEX) — next to classic fixed-step and adaptive
// trapezoidal/backward-Euler baselines. The distributed front end partitions
// the input current sources by their pulse "bump" features, simulates each
// group as an independent zero-state subtask (in-process or over TCP), and
// superposes the results.
//
// Quick start:
//
//	spec, _ := matex.IBMCase("ibmpg1t", 1.0)
//	ckt, _ := spec.Build()
//	sys, _ := matex.Stamp(ckt, matex.StampOptions{CollapseSupplies: true})
//	res, _ := matex.Simulate(sys, matex.RMATEX, matex.Options{Tstop: 10e-9})
//
// See the examples directory for runnable programs and EXPERIMENTS.md for
// the paper reproduction harness.
package matex

import (
	"io"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/dist"
	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/netlist"
	"github.com/matex-sim/matex/internal/pdn"
	"github.com/matex-sim/matex/internal/serve"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/sweep"
	"github.com/matex-sim/matex/internal/transient"
	"github.com/matex-sim/matex/internal/waveform"
)

// Sparse solver configuration and the factorization cache.
type (
	// FactorKind selects the sparse factorization algorithm.
	FactorKind = sparse.FactorKind
	// Ordering selects the fill-reducing ordering strategy.
	Ordering = sparse.Ordering
	// FactorCache is a concurrency-safe, content-addressed factorization
	// cache with an LRU byte budget. Share one instance via Options.Cache /
	// DistConfig.Cache to eliminate redundant factorizations across
	// solvers, adaptive steps, and repeated or distributed runs.
	FactorCache = sparse.Cache
	// FactorCacheStats is a snapshot of cache effectiveness counters.
	FactorCacheStats = sparse.CacheStats
)

const (
	// FactorAuto tries LDLᵀ on symmetric matrices, falling back to LU.
	FactorAuto = sparse.FactorAuto
	// FactorGPLU always uses Gilbert-Peierls LU with partial pivoting.
	FactorGPLU = sparse.FactorGPLU
	// FactorLDLt always uses LDLᵀ.
	FactorLDLt = sparse.FactorLDLt

	// OrderDefault (the zero value) resolves to OrderRCM.
	OrderDefault = sparse.OrderDefault
	// OrderNatural keeps the input order.
	OrderNatural = sparse.OrderNatural
	// OrderRCM applies reverse Cuthill-McKee.
	OrderRCM = sparse.OrderRCM
	// OrderMinDegree applies a greedy minimum-degree ordering.
	OrderMinDegree = sparse.OrderMinDegree
)

// NewFactorCache returns a factorization cache bounded to roughly maxBytes
// of factor storage; maxBytes <= 0 selects the default budget.
func NewFactorCache(maxBytes int64) *FactorCache { return sparse.NewCache(maxBytes) }

// Circuit building and MNA assembly.
type (
	// Circuit is an element-level netlist (R, C, L, V, I cards).
	Circuit = circuit.Circuit
	// System is the assembled MNA description C·x' = -G·x + B·u(t).
	System = circuit.System
	// StampOptions controls MNA assembly.
	StampOptions = circuit.StampOptions
)

// NewCircuit returns an empty circuit with a title.
func NewCircuit(title string) *Circuit { return circuit.New(title) }

// Stamp assembles the MNA system from a circuit.
func Stamp(c *Circuit, opts StampOptions) (*System, error) { return circuit.Stamp(c, opts) }

// Waveforms.
type (
	// Waveform is a piecewise-linear source value over time.
	Waveform = waveform.Waveform
	// DC is a constant source.
	DC = waveform.DC
	// Pulse is a SPICE-style pulse source.
	Pulse = waveform.Pulse
	// PWL is a piecewise-linear source through given points.
	PWL = waveform.PWL
)

// NewPWL validates and builds a PWL waveform.
func NewPWL(t, v []float64) (*PWL, error) { return waveform.NewPWL(t, v) }

// Netlist I/O.
type (
	// Deck is a parsed netlist plus its analysis directives.
	Deck = netlist.Deck
)

// ParseNetlist reads a SPICE-subset netlist (IBM power grid format).
func ParseNetlist(r io.Reader) (*Deck, error) { return netlist.Parse(r) }

// WriteNetlist emits a deck in the same format.
func WriteNetlist(w io.Writer, d *Deck) error { return netlist.Write(w, d) }

// Transient simulation.
type (
	// Method selects an integrator.
	Method = transient.Method
	// Options configures a transient run.
	Options = transient.Options
	// Result is a transient solution trace with work statistics.
	Result = transient.Result
	// Stats reports solver work (factorizations, substitution pairs,
	// Krylov dimensions, phase timings).
	Stats = transient.Stats
	// KrylovMethod selects the subspace process for the MATEX methods
	// (Options.Krylov / DistConfig.Krylov).
	KrylovMethod = krylov.Method
)

// Krylov subspace processes.
const (
	// KrylovAuto (the default) takes the symmetric Lanczos fast path
	// whenever the stamped matrices are symmetric and the spot qualifies,
	// and Arnoldi otherwise.
	KrylovAuto = krylov.MethodAuto
	// KrylovArnoldi pins the full modified Gram-Schmidt reference process.
	KrylovArnoldi = krylov.MethodArnoldi
	// KrylovLanczos states the fast-path preference explicitly.
	KrylovLanczos = krylov.MethodLanczos
)

// Integrators.
const (
	// TRFixed is trapezoidal with fixed step and one factorization (the
	// TAU-contest framework the paper benchmarks against).
	TRFixed = transient.TRFixed
	// BEFixed is backward Euler with fixed step.
	BEFixed = transient.BEFixed
	// FEFixed is explicit forward Euler.
	FEFixed = transient.FEFixed
	// TRAdaptive is trapezoidal with LTE step control (re-factorizes on
	// every step change).
	TRAdaptive = transient.TRAdaptive
	// MEXP is the matrix-exponential solver on the standard Krylov subspace.
	MEXP = transient.MEXP
	// IMATEX uses the inverted Krylov subspace (regularization-free).
	IMATEX = transient.IMATEX
	// RMATEX uses the rational (shift-and-invert) Krylov subspace — the
	// paper's best performer.
	RMATEX = transient.RMATEX
)

// Simulate runs one integrator over the system.
func Simulate(sys *System, method Method, opts Options) (*Result, error) {
	return transient.Simulate(sys, method, opts)
}

// Distributed simulation.
type (
	// DistConfig configures a distributed MATEX run.
	DistConfig = dist.Config
	// DistReport carries per-node scheduling metrics.
	DistReport = dist.Report
	// Task is one superposition subtask.
	Task = dist.Task
	// WorkerServer is the net/rpc worker service hosted by cmd/matexd
	// (accept connections with dist.Serve).
	WorkerServer = dist.WorkerServer
)

// SimulateDistributed partitions the sources, fans subtasks out to workers
// and superposes the results (the paper's Fig. 4 flow).
func SimulateDistributed(sys *System, cfg DistConfig) (*Result, *DistReport, error) {
	return dist.Run(sys, cfg)
}

// NewRPCPool connects to matexd workers over TCP.
func NewRPCPool(sys *System, addrs []string) (dist.Pool, error) { return dist.NewRPCPool(sys, addrs) }

// NewWorkerServer returns a worker service for use with dist.Serve.
func NewWorkerServer() *WorkerServer { return dist.NewWorkerServer() }

// Scenario sweeps: N variants of one deck as a single batched run.
type (
	// SweepVariant describes one scenario of a base deck: load-source
	// rescaling (uniform, per-source, or deterministic Monte-Carlo) and/or
	// per-source waveform overrides. The zero SweepVariant reproduces the
	// base deck exactly.
	SweepVariant = sweep.Variant
	// SweepOverride is the JSON-friendly waveform spec of
	// SweepVariant.Overrides ("dc", "pulse" or "pwl").
	SweepOverride = sweep.Override
	// SweepOptions configures a sweep run: the shared base Options, the
	// integrator, streaming/checkpoint hooks, and switches for the
	// batching machinery.
	SweepOptions = sweep.Options
	// SweepResult is a completed sweep: one SweepVariantResult per
	// requested variant plus the batching statistics.
	SweepResult = sweep.Result
	// SweepVariantResult is one variant's waveform, exactly as a solo
	// transient run of that variant would record it.
	SweepVariantResult = sweep.VariantResult
	// SweepStats reports a sweep's sharing: lanes actually integrated,
	// variants served by linearity, folded solver counters, and the solve
	// panel histogram.
	SweepStats = sweep.Stats
	// PanelStats is the multi-RHS solve panel report of a sweep (rounds,
	// batched solves, width histogram).
	PanelStats = sparse.PanelStats
)

// SimulateSweep runs every variant of the deck as one batched sweep: all
// variants share a single symbolic analysis and factorization-cache
// lineage, concurrent lanes batch their Krylov triangular solves into
// multi-RHS panels, and variants whose load vectors are exact scalar
// multiples of another's are served by linearity instead of integration.
// Results are bitwise identical to simulating each variant alone.
func SimulateSweep(sys *System, variants []SweepVariant, opts SweepOptions) (*SweepResult, error) {
	return sweep.Run(sys, variants, opts)
}

// ValidateSweep checks a variant list against the system without running
// anything, surfacing the spec errors SimulateSweep would return.
func ValidateSweep(sys *System, variants []SweepVariant) error {
	return sweep.Validate(sys, variants)
}

// Serving: the HTTP simulation job service (see cmd/matexsrv).
type (
	// JobServer is the simulation job service: a bounded worker-pool queue
	// over the shared factorization cache with incremental NDJSON/SSE
	// waveform streaming. Expose JobServer.Handler() over HTTP and stop it
	// with Shutdown.
	JobServer = serve.Server
	// JobServerConfig configures a JobServer.
	JobServerConfig = serve.Config
	// JobSpec is one job submission (the POST /v1/jobs body).
	JobSpec = serve.JobSpec
	// Job is a queued or running simulation job.
	Job = serve.Job
)

// NewJobServer starts a job service's worker pool and returns it. The
// error is the durable journal's (JobServerConfig.StateDir); an in-memory
// server cannot fail.
func NewJobServer(cfg JobServerConfig) (*JobServer, error) { return serve.New(cfg) }

// Benchmark generators.
type (
	// GridSpec describes a rectangular power-grid model.
	GridSpec = pdn.GridSpec
	// StiffMeshSpec describes the stiff RC meshes of the paper's Table 1.
	StiffMeshSpec = pdn.StiffMeshSpec
)

// IBMCase returns the synthetic stand-in for an IBM power grid benchmark
// ("ibmpg1t" … "ibmpg6t"); scale multiplies the grid edge length.
func IBMCase(name string, scale float64) (GridSpec, error) { return pdn.IBMCase(name, scale) }

// IBMSuite lists the six benchmark names.
func IBMSuite() []string { return pdn.IBMSuite() }

// Ladder builds an n-stage RC ladder with a drive current (analytic
// validation workload).
func Ladder(n int, r, c float64, drive Waveform) (*Circuit, error) {
	return pdn.Ladder(n, r, c, drive)
}

// Stiffness measures Re(λmin)/Re(λmax) of -C⁻¹G by power iteration.
func Stiffness(sys *System, iters int) (float64, error) { return pdn.Stiffness(sys, iters) }
