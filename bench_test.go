package matex

import (
	"io"
	"testing"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/dist"
	"github.com/matex-sim/matex/internal/experiments"
	"github.com/matex-sim/matex/internal/pdn"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/transient"
	"github.com/matex-sim/matex/internal/waveform"
)

// The benchmarks regenerate each paper table/figure at reduced scale so the
// full suite stays laptop-friendly; cmd/experiments runs the full versions.
// One benchmark per table row family / figure, as the reproduction contract
// requires.

func benchSystem(b *testing.B, name string, scale float64) *circuit.System {
	b.Helper()
	spec, err := pdn.IBMCase(name, scale)
	if err != nil {
		b.Fatal(err)
	}
	ckt, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func stiffBenchSystem(b *testing.B, spread float64) *circuit.System {
	b.Helper()
	spec := pdn.StiffMeshSpec{
		NX: 8, NY: 8, RSeg: 1, CBase: 1e-12, Spread: spread,
		Drive: &waveform.Pulse{V1: 0, V2: 1e-3, Delay: 0.02e-9, Rise: 0.01e-9, Width: 0.1e-9, Fall: 0.01e-9},
	}
	ckt, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// --- Table 1: stiff RC mesh, MEXP vs I-MATEX vs R-MATEX ------------------

func benchTable1(b *testing.B, method transient.Method, spread float64) {
	sys := stiffBenchSystem(b, spread)
	evals := make([]float64, 0, 61)
	for t := 0.0; t <= 0.3e-9+1e-18; t += 5e-12 {
		evals = append(evals, t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := transient.Simulate(sys, method, transient.Options{
			Tstop: 0.3e-9, EvalTimes: evals, Tol: 1e-7, Gamma: 5e-12,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Stats.MA(), "m_a")
			b.ReportMetric(float64(res.Stats.MP()), "m_p")
		}
	}
}

func BenchmarkTable1_MEXP_Stiff1e8(b *testing.B)    { benchTable1(b, transient.MEXP, 2.1e8) }
func BenchmarkTable1_IMATEX_Stiff1e8(b *testing.B)  { benchTable1(b, transient.IMATEX, 2.1e8) }
func BenchmarkTable1_RMATEX_Stiff1e8(b *testing.B)  { benchTable1(b, transient.RMATEX, 2.1e8) }
func BenchmarkTable1_MEXP_Stiff1e12(b *testing.B)   { benchTable1(b, transient.MEXP, 2.1e12) }
func BenchmarkTable1_IMATEX_Stiff1e12(b *testing.B) { benchTable1(b, transient.IMATEX, 2.1e12) }
func BenchmarkTable1_RMATEX_Stiff1e12(b *testing.B) { benchTable1(b, transient.RMATEX, 2.1e12) }
func BenchmarkTable1_MEXP_Stiff1e16(b *testing.B)   { benchTable1(b, transient.MEXP, 2.1e16) }
func BenchmarkTable1_IMATEX_Stiff1e16(b *testing.B) { benchTable1(b, transient.IMATEX, 2.1e16) }
func BenchmarkTable1_RMATEX_Stiff1e16(b *testing.B) { benchTable1(b, transient.RMATEX, 2.1e16) }

// --- Table 2: IBM-style grids, adaptive TR vs I-MATEX vs R-MATEX ----------

func benchTable2(b *testing.B, method transient.Method) {
	sys := benchSystem(b, "ibmpg1t", 0.25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := transient.Options{Tstop: 10e-9, Tol: 1e-6}
		if method == transient.TRAdaptive {
			opts.Tol = 1e-4
		}
		if _, err := transient.Simulate(sys, method, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_TRAdaptive_ibmpg1t(b *testing.B) { benchTable2(b, transient.TRAdaptive) }
func BenchmarkTable2_IMATEX_ibmpg1t(b *testing.B)     { benchTable2(b, transient.IMATEX) }
func BenchmarkTable2_RMATEX_ibmpg1t(b *testing.B)     { benchTable2(b, transient.RMATEX) }

// BenchmarkTable2_TRAdaptiveCached_ibmpg1t is the cached counterpart of the
// TR(adpt) row: step quantization plus the shared factorization cache turn
// most re-factorizations into cache hits. Compare factorizations/cache_hits
// against BenchmarkTable2_TRAdaptive_ibmpg1t to see the Eq. 11 cost term
// shrink.
func BenchmarkTable2_TRAdaptiveCached_ibmpg1t(b *testing.B) {
	sys := benchSystem(b, "ibmpg1t", 0.25)
	cache := sparse.NewCache(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := transient.Simulate(sys, transient.TRAdaptive, transient.Options{
			Tstop: 10e-9, Tol: 1e-4, Cache: cache,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.Factorizations), "factorizations")
			b.ReportMetric(float64(res.Stats.CacheHits), "cache_hits")
		}
	}
}

// --- Table 3: fixed-step TR (1000 steps) vs distributed MATEX -------------

func BenchmarkTable3_TR1000_ibmpg1t(b *testing.B) {
	sys := benchSystem(b, "ibmpg1t", 0.25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := transient.Simulate(sys, transient.TRFixed, transient.Options{
			Tstop: 10e-9, Step: 10e-12,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.SolvePairs), "subst_pairs")
		}
	}
}

func BenchmarkTable3_MATEXDist_ibmpg1t(b *testing.B) {
	sys := benchSystem(b, "ibmpg1t", 0.25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rep, err := dist.Run(sys, dist.Config{
			Method: transient.RMATEX, Tstop: 10e-9, Tol: 1e-6, Gamma: 1e-10,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rep.Groups), "groups")
		}
	}
}

// BenchmarkTable3_MATEXDistCached_ibmpg1t reuses one factorization cache
// across iterations — the steady-state cost of a scheduler issuing repeated
// distributed runs (every run after the first is refactorization-free).
func BenchmarkTable3_MATEXDistCached_ibmpg1t(b *testing.B) {
	sys := benchSystem(b, "ibmpg1t", 0.25)
	cache := sparse.NewCache(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := dist.Run(sys, dist.Config{
			Method: transient.RMATEX, Tstop: 10e-9, Tol: 1e-6, Gamma: 1e-10, Cache: cache,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 1 && res.Stats.Factorizations != 0 {
			b.Fatalf("warm run performed %d factorizations, want 0", res.Stats.Factorizations)
		}
	}
}

// --- Fig. 5: rational-Krylov error vs step size ----------------------------

func BenchmarkFig5_ErrorSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series, err := experiments.RunFig5(experiments.Fig5Config{N: 12, Dims: []int{2, 4, 6}, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.PrintFig5(io.Discard, series)
		}
	}
}

// --- Ablations: design choices called out in DESIGN.md ---------------------

// Ablation: snapshot reuse. Disabling reuse would regenerate a subspace at
// every output point; we emulate the non-reuse cost by running R-MATEX with
// outputs only at transition spots vs a dense output grid, showing the
// per-snapshot cost stays substitution-free (time grows only with expm
// evaluations, not solves).
func BenchmarkAblation_SnapshotReuse_DenseOutputs(b *testing.B) {
	sys := benchSystem(b, "ibmpg1t", 0.25)
	evals := make([]float64, 0, 1001)
	for t := 0.0; t <= 10e-9+1e-18; t += 10e-12 {
		evals = append(evals, t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := transient.Simulate(sys, transient.RMATEX, transient.Options{
			Tstop: 10e-9, Tol: 1e-6, EvalTimes: evals,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.SolvePairs), "subst_pairs")
			b.ReportMetric(float64(res.Stats.ExpmEvals), "expm_evals")
		}
	}
}

// Ablation: fill-reducing ordering for the up-front factorization.
func benchOrdering(b *testing.B, order sparse.Ordering) {
	sys := benchSystem(b, "ibmpg2t", 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transient.Simulate(sys, transient.RMATEX, transient.Options{
			Tstop: 10e-9, Tol: 1e-6, Ordering: order,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Ordering_RCM(b *testing.B)    { benchOrdering(b, sparse.OrderRCM) }
func BenchmarkAblation_Ordering_MinDeg(b *testing.B) { benchOrdering(b, sparse.OrderMinDegree) }
